// Package cache8t is a trace-driven simulator of L1 data caches built from
// 8T SRAM cells, reproducing Farahani & Baniasadi, "Performance and Power
// Solutions for Caches Using 8T SRAM Cells" (MICRO 2012 workshops).
//
// Bit-interleaved 8T arrays cannot write part of a row without a
// Read-Modify-Write (RMW), which doubles array traffic for writes. The
// paper's fixes — Write Grouping (WG) and Write Grouping + Read Bypassing
// (WG+RB) — buffer the most recently written cache set in a Set-Buffer and
// retire grouped, non-silent writes with a single row operation.
//
// This package is the public facade: build a System from a Config, feed it
// Access values (by hand, from a workload generator, or from the pinlite
// instrumentation VM), and read back the array-traffic ledger. The paper's
// full evaluation lives in internal/experiments and is runnable via
// cmd/figures; the examples/ directory shows typical uses.
//
//	sys, err := cache8t.New(cache8t.DefaultConfig())
//	...
//	sys.Access(cache8t.Access{Kind: cache8t.Write, Addr: 0x1000, Size: 8, Data: 42})
//	res := sys.Finalize()
//	fmt.Println(res.ArrayAccesses())
package cache8t

import (
	"fmt"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/mem"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

// AccessKind distinguishes reads from writes.
type AccessKind uint8

const (
	// Read is a data-cache load.
	Read AccessKind = iota
	// Write is a data-cache store.
	Write
)

// Access is one L1-D request.
type Access struct {
	// Kind is Read or Write.
	Kind AccessKind
	// Addr is the byte address.
	Addr uint64
	// Size is the access width in bytes: 1, 2, 4, or 8.
	Size uint8
	// Data is the value stored (writes); silent-write detection compares
	// it against memory content.
	Data uint64
	// Gap is the number of non-memory instructions since the previous
	// access, used for per-instruction statistics. Zero is fine.
	Gap uint32
}

func (a Access) internal() trace.Access {
	return trace.Access{
		Kind: trace.Kind(a.Kind),
		Addr: a.Addr,
		Size: a.Size,
		Data: a.Data,
		Gap:  a.Gap,
	}
}

// Config selects the cache shape and write-path scheme.
type Config struct {
	// CacheSizeBytes, Ways, and BlockBytes shape the cache. The paper's
	// baseline is 64 KB, 4-way, 32 B.
	CacheSizeBytes int
	Ways           int
	BlockBytes     int
	// Replacement is "lru" (default), "fifo", "random", or "plru".
	Replacement string
	// Controller is the write-path scheme: "rmw" (8T baseline), "wg",
	// "wgrb" (the paper's techniques), "conventional" (6T reference),
	// "localrmw" (Park et al.), "word" (Chang et al.), or "coalesce"
	// (a block-granular coalescing write buffer).
	Controller string
	// BufferDepth is the number of Set-Buffer entries for wg/wgrb
	// (default 1, the paper's design).
	BufferDepth int
	// DisableSilentElision turns off the Dirty-bit silent-store
	// optimization (ablation).
	DisableSilentElision bool
	// NoWriteAllocate makes write misses bypass the cache (write-around)
	// instead of allocating a line; the paper's baseline allocates.
	NoWriteAllocate bool
	// Seed feeds the random replacement policy, if selected.
	Seed uint64
}

// DefaultConfig returns the paper's baseline: 64 KB / 4-way / 32 B LRU cache
// with the WG+RB controller.
func DefaultConfig() Config {
	return Config{
		CacheSizeBytes: 64 * 1024,
		Ways:           4,
		BlockBytes:     32,
		Replacement:    "lru",
		Controller:     "wgrb",
	}
}

// Result is the outcome of a simulation.
type Result struct {
	// Controller names the scheme that ran.
	Controller string

	// Reads and Writes count demand requests; Instructions counts the
	// instruction stream they were embedded in.
	Reads        uint64
	Writes       uint64
	Instructions uint64

	// ArrayReads and ArrayWrites are SRAM row operations — the paper's
	// "cache accesses".
	ArrayReads  uint64
	ArrayWrites uint64

	// Hits and Misses are functional cache events.
	Hits   uint64
	Misses uint64

	// Set-Buffer activity (wg/wgrb only).
	GroupedWrites    uint64
	SilentWrites     uint64
	BypassedReads    uint64
	BufferWritebacks uint64
}

// ArrayAccesses returns total SRAM row operations.
func (r Result) ArrayAccesses() uint64 { return r.ArrayReads + r.ArrayWrites }

// ReductionVs returns the fractional access reduction of r relative to a
// baseline result over the same request stream (1 - r/base).
func (r Result) ReductionVs(base Result) float64 {
	if base.ArrayAccesses() == 0 {
		return 0
	}
	return 1 - float64(r.ArrayAccesses())/float64(base.ArrayAccesses())
}

func resultFrom(res core.Result) Result {
	return Result{
		Controller:       res.Controller.String(),
		Reads:            res.Requests.Reads,
		Writes:           res.Requests.Writes,
		Instructions:     res.Requests.Instructions,
		ArrayReads:       res.ArrayReads,
		ArrayWrites:      res.ArrayWrites,
		Hits:             res.Cache.Hits(),
		Misses:           res.Cache.Misses(),
		GroupedWrites:    res.Counters.GroupedWrites,
		SilentWrites:     res.Counters.SilentWrites,
		BypassedReads:    res.Counters.BypassedReads,
		BufferWritebacks: res.Counters.BufferWritebacks,
	}
}

// System is a cache plus controller ready to consume accesses.
type System struct {
	ctrl core.Controller
	done bool
}

// New builds a System from cfg.
func New(cfg Config) (*System, error) {
	if cfg.Replacement == "" {
		cfg.Replacement = "lru"
	}
	policy, err := cache.ParsePolicy(cfg.Replacement)
	if err != nil {
		return nil, err
	}
	kind, err := core.ParseKind(cfg.Controller)
	if err != nil {
		return nil, err
	}
	c, err := cache.New(cache.Config{
		SizeBytes:       cfg.CacheSizeBytes,
		Ways:            cfg.Ways,
		BlockBytes:      cfg.BlockBytes,
		Policy:          policy,
		Seed:            cfg.Seed,
		NoWriteAllocate: cfg.NoWriteAllocate,
	}, mem.New())
	if err != nil {
		return nil, err
	}
	ctrl, err := core.New(kind, c, core.Options{
		BufferDepth:          cfg.BufferDepth,
		DisableSilentElision: cfg.DisableSilentElision,
	})
	if err != nil {
		return nil, err
	}
	return &System{ctrl: ctrl}, nil
}

// Access processes one request and returns the value read (reads) or now
// stored (writes).
func (s *System) Access(a Access) (uint64, error) {
	if s.done {
		return 0, fmt.Errorf("cache8t: system already finalized")
	}
	if a.Size != 1 && a.Size != 2 && a.Size != 4 && a.Size != 8 {
		return 0, fmt.Errorf("cache8t: access size %d not in {1,2,4,8}", a.Size)
	}
	return s.ctrl.Access(a.internal()), nil
}

// Finalize drains internal buffers and returns the result. The System must
// not be used afterwards.
func (s *System) Finalize() Result {
	if s.done {
		return Result{}
	}
	s.done = true
	return resultFrom(s.ctrl.Finalize())
}

// Workloads returns the names of the bundled SPEC CPU2006-like synthetic
// benchmarks.
func Workloads() []string { return workload.Names() }

// RunWorkload simulates n accesses of the named bundled workload under cfg
// and returns the result. Deterministic in (cfg, name, seed, n).
func RunWorkload(cfg Config, name string, seed uint64, n int) (Result, error) {
	gen, err := workload.Stream(name, seed)
	if err != nil {
		return Result{}, err
	}
	sys, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < n; i++ {
		a, _ := gen.Next()
		sys.ctrl.Access(a)
	}
	return sys.Finalize(), nil
}

// RunMix simulates n accesses of a multiprogrammed round-robin mix of the
// named workloads (quantum accesses per context switch) under cfg.
func RunMix(cfg Config, names []string, seed uint64, quantum, n int) (Result, error) {
	m, err := workload.NewMixByNames(names, seed, quantum)
	if err != nil {
		return Result{}, err
	}
	sys, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < n; i++ {
		a, _ := m.Next()
		sys.ctrl.Access(a)
	}
	return sys.Finalize(), nil
}

// Compare runs the same workload under the configured controller and under
// the RMW baseline, returning both results. The headline metric is
// technique.ReductionVs(baseline).
func Compare(cfg Config, name string, seed uint64, n int) (technique, baseline Result, err error) {
	technique, err = RunWorkload(cfg, name, seed, n)
	if err != nil {
		return Result{}, Result{}, err
	}
	base := cfg
	base.Controller = "rmw"
	baseline, err = RunWorkload(base, name, seed, n)
	if err != nil {
		return Result{}, Result{}, err
	}
	return technique, baseline, nil
}
