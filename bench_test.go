package cache8t

// The benchmark harness: one testing.B benchmark per paper table/figure
// (DESIGN.md §4). Each benchmark regenerates its artifact per iteration and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and prints the reproduced numbers
// (reduction percentages, inflation, CPI) alongside timing.

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/engine"
	"cache8t/internal/experiments"
	"cache8t/internal/sram"
	"cache8t/internal/stats"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

// benchConfig keeps per-iteration work bounded; the figures CLI uses larger
// budgets for the recorded tables.
func benchConfig() experiments.Config {
	cfg := experiments.Default()
	cfg.AccessesPerBench = 50_000
	return cfg
}

// meanPct digs the "MEAN (measured)" row out of a table and parses column
// col as a percentage ratio.
func meanPct(b *testing.B, tab *stats.Table, col int) float64 {
	b.Helper()
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[0], "MEAN (measured)") || r[0] == "MEAN" {
			v, err := strconv.ParseFloat(strings.TrimSuffix(r[col], "%"), 64)
			if err != nil {
				b.Fatal(err)
			}
			return v
		}
	}
	b.Fatalf("no MEAN row in %q", tab.Title)
	return 0
}

func runExperiment(b *testing.B, run func(experiments.Config) (*stats.Table, error)) *stats.Table {
	b.Helper()
	cfg := benchConfig()
	var tab *stats.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tab
}

func BenchmarkFig3AccessFrequency(b *testing.B) {
	tab := runExperiment(b, experiments.Fig3)
	b.ReportMetric(meanPct(b, tab, 1), "reads%/instr")
	b.ReportMetric(meanPct(b, tab, 2), "writes%/instr")
}

func BenchmarkFig4ConsecutiveScenarios(b *testing.B) {
	tab := runExperiment(b, experiments.Fig4)
	b.ReportMetric(meanPct(b, tab, 5), "same-set%")
}

func BenchmarkFig5SilentWrites(b *testing.B) {
	tab := runExperiment(b, experiments.Fig5)
	b.ReportMetric(meanPct(b, tab, 1), "silent%")
}

func BenchmarkRMWTrafficInflation(b *testing.B) {
	tab := runExperiment(b, experiments.RMWInflation)
	b.ReportMetric(meanPct(b, tab, 3), "inflation%")
}

func BenchmarkFig8Example(b *testing.B) {
	cfg := benchConfig()
	g := cache.MustGeometry(cfg.Cache.SizeBytes, cfg.Cache.Ways, cfg.Cache.BlockBytes)
	stream := experiments.Fig8Stream(g)
	var total uint64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.WGRB, cfg.Cache, cfg.Opts, trace.FromSlice(stream), 0)
		if err != nil {
			b.Fatal(err)
		}
		total = res.ArrayAccesses()
	}
	b.ReportMetric(float64(total), "wgrb-accesses")
}

func BenchmarkFig9Reduction(b *testing.B) {
	tab := runExperiment(b, experiments.Fig9)
	b.ReportMetric(meanPct(b, tab, 1), "WG%")
	b.ReportMetric(meanPct(b, tab, 2), "WG+RB%")
}

func BenchmarkFig10BlockSize(b *testing.B) {
	tab := runExperiment(b, experiments.Fig10)
	b.ReportMetric(meanPct(b, tab, 1), "WG%")
	b.ReportMetric(meanPct(b, tab, 2), "WG+RB%")
}

func BenchmarkFig11CacheSize(b *testing.B) {
	tab := runExperiment(b, experiments.Fig11)
	b.ReportMetric(meanPct(b, tab, 1), "WG32K%")
	b.ReportMetric(meanPct(b, tab, 3), "WG128K%")
}

func BenchmarkAreaOverhead(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Area(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerfPower(b *testing.B) {
	cfg := benchConfig()
	cfg.AccessesPerBench = 20_000 // five controllers per benchmark
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PerfPower(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNoSilent(b *testing.B) {
	cfg := benchConfig()
	cfg.AccessesPerBench = 20_000
	var tab *stats.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.AblationSilent(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(meanPct(b, tab, 3), "elision-delta%")
}

func BenchmarkAblationBufferDepth(b *testing.B) {
	cfg := benchConfig()
	cfg.AccessesPerBench = 20_000
	var tab *stats.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.AblationDepth(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(meanPct(b, tab, 1), "depth1%")
	b.ReportMetric(meanPct(b, tab, 4), "depth8%")
}

func BenchmarkAblationRelatedWork(b *testing.B) {
	cfg := benchConfig()
	cfg.AccessesPerBench = 20_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRelated(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArrayOps measures the raw event-ledger cost of the RMW sequence —
// the unit the whole evaluation counts (E10).
func BenchmarkArrayOps(b *testing.B) {
	arr, err := sram.NewArray(sram.ArrayConfig{
		Cell: sram.EightT, Rows: 512, Cols: 1024, Interleave: 4, Subarrays: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		arr.RMW()
	}
	if arr.ArrayAccesses() != 2*uint64(b.N) {
		b.Fatal("RMW accounting drifted")
	}
}

// BenchmarkSimulationThroughput measures end-to-end simulation speed through
// the public API: accesses simulated per second under WG+RB.
func BenchmarkSimulationThroughput(b *testing.B) {
	prof, err := workload.ProfileByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	accs, err := workload.Take(prof, 1, 100_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.WGRB, cache.DefaultConfig(), core.Options{}, trace.FromSlice(accs), 0)
		if err != nil {
			b.Fatal(err)
		}
		if res.Requests.Accesses() != 100_000 {
			b.Fatal("short run")
		}
	}
	b.ReportMetric(float64(100_000*b.N)/b.Elapsed().Seconds(), "accesses/s")
}

func BenchmarkPortsSimulation(b *testing.B) {
	cfg := benchConfig()
	cfg.AccessesPerBench = 20_000
	var tab *stats.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Ports(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = tab
}

func BenchmarkGroupSizes(b *testing.B) {
	cfg := benchConfig()
	var tab *stats.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Groups(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Mean writes per group is the last column of the MEAN row.
	for _, r := range tab.Rows {
		if r[0] == "MEAN" {
			v, err := strconv.ParseFloat(r[len(r)-1], 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(v, "writes/group")
		}
	}
}

func BenchmarkECCInterleaving(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ECC(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiprogrammedMix(b *testing.B) {
	cfg := benchConfig()
	cfg.AccessesPerBench = 30_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Mix(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGovernedDVFS(b *testing.B) {
	cfg := benchConfig()
	var tab *stats.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.DVFS(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(meanPctRow(b, tab, "WG+RB", 3), "8T-saving%")
}

// meanPctRow parses a percentage cell from a named row.
func meanPctRow(b *testing.B, tab *stats.Table, name string, col int) float64 {
	b.Helper()
	for _, r := range tab.Rows {
		if r[0] == name {
			v, err := strconv.ParseFloat(strings.TrimSuffix(r[col], "%"), 64)
			if err != nil {
				b.Fatal(err)
			}
			return v
		}
	}
	b.Fatalf("no row %q", name)
	return 0
}

func BenchmarkAllocPolicy(b *testing.B) {
	cfg := benchConfig()
	cfg.AccessesPerBench = 30_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Alloc(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSweep pits the serial execution path against the worker
// pool on a Figure 9-shaped workload (RMW+WG+WGRB over several benchmarks)
// and reports throughput in simulated accesses per second — the perf
// baseline future scaling PRs measure against.
func BenchmarkEngineSweep(b *testing.B) {
	profs := workload.Profiles()[:8]
	const perBench = 30_000
	streams, err := workload.Materialize(profs, 1, perBench)
	if err != nil {
		b.Fatal(err)
	}
	kinds := []core.Kind{core.RMW, core.WG, core.WGRB}
	shape := cache.DefaultConfig()
	var jobs []engine.Job[core.Result]
	for _, accs := range streams {
		jobs = append(jobs, core.Jobs(kinds, shape, core.Options{}, accs)...)
	}
	accessesPerRun := float64(perBench * len(jobs))

	pool := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		pool = append(pool, n)
	}
	for _, workers := range pool {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := engine.New[core.Result](engine.Config{Workers: workers})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				outs, err := eng.Run(context.Background(), jobs)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := engine.Values(outs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(accessesPerRun*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
		})
	}
}

func BenchmarkFillsCounting(b *testing.B) {
	cfg := benchConfig()
	cfg.AccessesPerBench = 30_000
	var tab *stats.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Fills(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(meanPctRow(b, tab, "requests + fills/evictions", 2), "WG+RB-with-fills%")
}
