package cache8t

import (
	"testing"
)

func TestNewValidatesConfig(t *testing.T) {
	bad := []Config{
		{CacheSizeBytes: 1000, Ways: 4, BlockBytes: 32, Controller: "rmw"},
		{CacheSizeBytes: 1024, Ways: 4, BlockBytes: 32, Controller: "nope"},
		{CacheSizeBytes: 1024, Ways: 4, BlockBytes: 32, Controller: "rmw", Replacement: "mru"},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestAccessRoundTrip(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Access(Access{Kind: Write, Addr: 0x100, Size: 8, Data: 77}); err != nil {
		t.Fatal(err)
	}
	got, err := sys.Access(Access{Kind: Read, Addr: 0x100, Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Fatalf("read back %d, want 77", got)
	}
	res := sys.Finalize()
	if res.Reads != 1 || res.Writes != 1 {
		t.Fatalf("result counts = %+v", res)
	}
	if res.Controller != "WG+RB" {
		t.Fatalf("controller = %q", res.Controller)
	}
}

func TestAccessValidation(t *testing.T) {
	sys, _ := New(DefaultConfig())
	if _, err := sys.Access(Access{Kind: Read, Size: 3}); err == nil {
		t.Fatal("size 3 accepted")
	}
	sys.Finalize()
	if _, err := sys.Access(Access{Kind: Read, Size: 8}); err == nil {
		t.Fatal("access after Finalize accepted")
	}
	if res := sys.Finalize(); res.Reads != 0 {
		t.Fatal("double Finalize returned data")
	}
}

func TestWorkloadsList(t *testing.T) {
	names := Workloads()
	if len(names) != 25 {
		t.Fatalf("got %d workloads, want 25", len(names))
	}
}

func TestRunWorkloadDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := RunWorkload(cfg, "gcc", 7, 20000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkload(cfg, "gcc", 7, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same run differed:\n%+v\n%+v", a, b)
	}
	if _, err := RunWorkload(cfg, "nope", 7, 100); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestCompareShowsReduction(t *testing.T) {
	tech, base, err := Compare(DefaultConfig(), "bwaves", 1, 50000)
	if err != nil {
		t.Fatal(err)
	}
	red := tech.ReductionVs(base)
	if red < 0.40 || red > 0.65 {
		t.Fatalf("bwaves WG+RB reduction = %.3f, expected around 0.5", red)
	}
	if tech.GroupedWrites == 0 || tech.BypassedReads == 0 {
		t.Fatalf("Set-Buffer counters empty: %+v", tech)
	}
	if base.ArrayAccesses() <= base.Reads+base.Writes {
		t.Fatal("RMW baseline should exceed one access per request")
	}
}

func TestReductionVsZeroBase(t *testing.T) {
	if (Result{}).ReductionVs(Result{}) != 0 {
		t.Fatal("zero baseline should give 0")
	}
}

func TestDepthAndAblationKnobs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferDepth = 4
	if _, err := RunWorkload(cfg, "lbm", 1, 5000); err != nil {
		t.Fatal(err)
	}
	cfg.BufferDepth = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative depth accepted")
	}
	cfg = DefaultConfig()
	cfg.DisableSilentElision = true
	if _, err := RunWorkload(cfg, "lbm", 1, 5000); err != nil {
		t.Fatal(err)
	}
}
