package cache8t

import (
	"fmt"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/energy"
	"cache8t/internal/sram"
	"cache8t/internal/timing"
	"cache8t/internal/workload"
)

// DVFSPoint is one operating level of a voltage/frequency sweep for a run.
type DVFSPoint struct {
	// VoltageV and FreqMHz define the level (frequency from an alpha-power
	// delay model anchored at 1.0 V / 2000 MHz).
	VoltageV float64
	FreqMHz  float64
	// SixTReachable and EightTReachable say whether a cache built from
	// each cell can operate at this level (its Vmin): the paper's §1
	// motivation is that the 6T cache walls off the lowest levels.
	SixTReachable   bool
	EightTReachable bool
	// EnergyPerAccessNJ is the modeled total (dynamic + leakage) cache
	// energy per demand access at this level, for the configured
	// controller on an 8T array.
	EnergyPerAccessNJ float64
	// CPI is the modeled cycles per instruction (frequency-independent in
	// this model; voltage only changes how many wall-clock seconds a cycle
	// takes).
	CPI float64
}

// DVFSSweep simulates n accesses of the named workload under cfg once, then
// prices the run across `levels` operating points descending from nominal
// voltage to just above threshold. It reports which points each cell kind
// can reach and the 8T energy at each reachable point.
func DVFSSweep(cfg Config, name string, seed uint64, n, levels int) ([]DVFSPoint, error) {
	if levels < 2 {
		return nil, fmt.Errorf("cache8t: need at least 2 DVFS levels, got %d", levels)
	}
	kind, err := core.ParseKind(cfg.Controller)
	if err != nil {
		return nil, err
	}
	if cfg.Replacement == "" {
		cfg.Replacement = "lru"
	}
	policy, err := cache.ParsePolicy(cfg.Replacement)
	if err != nil {
		return nil, err
	}
	gen, err := workload.Stream(name, seed)
	if err != nil {
		return nil, err
	}
	res, err := core.Run(kind, cache.Config{
		SizeBytes:  cfg.CacheSizeBytes,
		Ways:       cfg.Ways,
		BlockBytes: cfg.BlockBytes,
		Policy:     policy,
		Seed:       cfg.Seed,
	}, core.Options{
		BufferDepth:          cfg.BufferDepth,
		DisableSilentElision: cfg.DisableSilentElision,
	}, gen, n)
	if err != nil {
		return nil, err
	}

	ap := sram.DefaultAlphaPower()
	// Sweep down to just above the device threshold so the table spans
	// both cells' Vmin.
	points, err := ap.Levels(ap.VthVolts+0.05, levels)
	if err != nil {
		return nil, err
	}
	tp := timing.DefaultParams()
	trep, err := timing.Evaluate(res, tp)
	if err != nil {
		return nil, err
	}
	out := make([]DVFSPoint, 0, len(points))
	for _, pt := range points {
		dp := DVFSPoint{
			VoltageV:        pt.VoltageV,
			FreqMHz:         pt.FreqMHz,
			SixTReachable:   pt.VoltageV >= sram.SixT.VminVolts(),
			EightTReachable: pt.VoltageV >= sram.EightT.VminVolts(),
			CPI:             trep.CPI(),
		}
		if dp.EightTReachable {
			erep, err := energy.Evaluate(res, pt, tp)
			if err != nil {
				return nil, err
			}
			dp.EnergyPerAccessNJ = energy.PerAccessJ(erep, res.Requests.Accesses()) * 1e9
		}
		out = append(out, dp)
	}
	return out, nil
}
