module cache8t

go 1.22
