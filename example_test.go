package cache8t_test

import (
	"fmt"

	"cache8t"
)

// The three-line version of the paper: write a value, read it back, and see
// that the read never touched the SRAM array — the Set-Buffer served it.
func ExampleNew() {
	sys, err := cache8t.New(cache8t.DefaultConfig())
	if err != nil {
		panic(err)
	}
	if _, err := sys.Access(cache8t.Access{Kind: cache8t.Write, Addr: 0x40, Size: 8, Data: 7}); err != nil {
		panic(err)
	}
	v, err := sys.Access(cache8t.Access{Kind: cache8t.Read, Addr: 0x40, Size: 8})
	if err != nil {
		panic(err)
	}
	res := sys.Finalize()
	fmt.Println("value:", v)
	fmt.Println("bypassed reads:", res.BypassedReads)
	// Output:
	// value: 7
	// bypassed reads: 1
}

// Compare reproduces the headline measurement for one benchmark: array
// traffic under WG+RB against the RMW baseline.
func ExampleCompare() {
	tech, base, err := cache8t.Compare(cache8t.DefaultConfig(), "bwaves", 1, 100_000)
	if err != nil {
		panic(err)
	}
	red := tech.ReductionVs(base)
	fmt.Println("reduction over 50%:", red > 0.5)
	fmt.Println("baseline pays >1 access/request:",
		base.ArrayAccesses() > base.Reads+base.Writes)
	// Output:
	// reduction over 50%: true
	// baseline pays >1 access/request: true
}

// Replay drives a kernel trace from the instrumentation VM through a chosen
// controller — the Pin-methodology loop in miniature.
func ExampleReplay() {
	accs, err := cache8t.TraceKernel("memset", 0)
	if err != nil {
		panic(err)
	}
	cfg := cache8t.DefaultConfig()
	cfg.Controller = "wg"
	res, err := cache8t.Replay(cfg, accs)
	if err != nil {
		panic(err)
	}
	// 4096 sequential 8-byte stores, 4 per 32B block: 1024 groups, each one
	// row read (fill) + one row write (write-back).
	fmt.Println("array accesses:", res.ArrayAccesses())
	fmt.Println("grouped writes:", res.GroupedWrites)
	// Output:
	// array accesses: 2048
	// grouped writes: 3072
}
