package energy

import (
	"testing"

	"cache8t/internal/sram"
)

func govLevels(t *testing.T) []sram.OperatingPoint {
	t.Helper()
	ap := sram.DefaultAlphaPower()
	levels, err := ap.Levels(0.36, 12)
	if err != nil {
		t.Fatal(err)
	}
	return levels
}

func lowDemandTrace() []Epoch {
	// A bursty phone-like demand trace: mostly idle-ish with bursts.
	var out []Epoch
	for i := 0; i < 50; i++ {
		d := 0.15
		if i%10 == 0 {
			d = 0.9
		}
		out = append(out, Epoch{DemandFrac: d, Ops: 100_000})
	}
	return out
}

func TestGovernValidation(t *testing.T) {
	levels := govLevels(t)
	if _, err := Govern(nil, nil, sram.EightT, 1e-12, 1e-3); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := Govern([]Epoch{{DemandFrac: 2, Ops: 1}}, levels, sram.EightT, 1e-12, 1e-3); err == nil {
		t.Error("demand > 1 accepted")
	}
	if _, err := Govern([]Epoch{{DemandFrac: 0, Ops: 1}}, levels, sram.EightT, 1e-12, 1e-3); err == nil {
		t.Error("zero demand accepted")
	}
}

func TestGovernEightTBeatsSixTOnLowDemand(t *testing.T) {
	// The paper's §1 story: the 6T cache's Vmin walls off the low levels,
	// so at low demand the 6T system runs hotter than it needs to.
	levels := govLevels(t)
	const opE, leakW = 1e-11, 1e-3
	six, err := Govern(lowDemandTrace(), levels, sram.SixT, opE, leakW)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Govern(lowDemandTrace(), levels, sram.EightT, opE, leakW)
	if err != nil {
		t.Fatal(err)
	}
	if eight.EnergyJ >= six.EnergyJ {
		t.Errorf("8T energy %.3e not below 6T %.3e", eight.EnergyJ, six.EnergyJ)
	}
	if eight.MeanVoltage >= six.MeanVoltage {
		t.Errorf("8T mean voltage %.3f not below 6T %.3f", eight.MeanVoltage, six.MeanVoltage)
	}
	if six.FloorEpochs == 0 {
		t.Error("6T never hit its voltage floor on a low-demand trace")
	}
	if eight.FloorEpochs >= six.FloorEpochs {
		t.Errorf("8T floor epochs %d not below 6T %d", eight.FloorEpochs, six.FloorEpochs)
	}
}

func TestGovernHighDemandEqualizesCells(t *testing.T) {
	// At sustained full demand the governor sits at nominal for both cells
	// and the Vmin advantage vanishes.
	levels := govLevels(t)
	trace := []Epoch{{DemandFrac: 1.0, Ops: 1_000_000}}
	six, err := Govern(trace, levels, sram.SixT, 1e-11, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Govern(trace, levels, sram.EightT, 1e-11, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if six.EnergyJ != eight.EnergyJ {
		t.Errorf("full-demand energies differ: 6T %.3e, 8T %.3e", six.EnergyJ, eight.EnergyJ)
	}
	if six.MeanVoltage != eight.MeanVoltage {
		t.Error("full-demand voltages differ")
	}
}

func TestGovernMoreLevelsNeverHurt(t *testing.T) {
	// §1: more levels -> closer to the optimal point. Energy with a
	// 16-level table must be <= energy with a 4-level table (same range).
	ap := sram.DefaultAlphaPower()
	coarse, err := ap.Levels(0.36, 4)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := ap.Levels(0.36, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Govern(lowDemandTrace(), coarse, sram.EightT, 1e-11, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Govern(lowDemandTrace(), fine, sram.EightT, 1e-11, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if f.EnergyJ > c.EnergyJ {
		t.Errorf("16 levels (%.3e J) worse than 4 levels (%.3e J)", f.EnergyJ, c.EnergyJ)
	}
}

func TestGovernUnreachableCell(t *testing.T) {
	// A table living entirely below the 6T floor is unusable for 6T.
	ap := sram.DefaultAlphaPower()
	all, err := ap.Levels(0.40, 8)
	if err != nil {
		t.Fatal(err)
	}
	low := all[len(all)-2:] // bottom two levels, below 0.7V
	if _, err := Govern(lowDemandTrace(), low, sram.SixT, 1e-11, 1e-3); err == nil {
		t.Error("6T accepted a sub-Vmin-only table")
	}
	if _, err := Govern(lowDemandTrace(), low, sram.EightT, 1e-11, 1e-3); err != nil {
		t.Errorf("8T rejected reachable levels: %v", err)
	}
}
