package energy

import (
	"fmt"

	"cache8t/internal/sram"
)

// DVFS governor simulation, quantifying the paper's §1 framing: "DVFS
// switches between predefined voltage levels dynamically according to the
// required performance and power demand. The more the number of voltage
// levels the higher the chances of operating at the optimal voltage and
// frequency level. Among the different levels, the minimum voltage level
// (Vmin) assuring correct operation limits the lowest operating voltage" —
// and the cache's cell type decides that Vmin.

// Epoch is one scheduling interval of a demand trace.
type Epoch struct {
	// DemandFrac is the performance the workload needs this epoch, as a
	// fraction of nominal frequency (0..1].
	DemandFrac float64
	// Ops is the number of cache operations the epoch performs.
	Ops uint64
}

// GovernorResult aggregates a governed run.
type GovernorResult struct {
	// EnergyJ is total cache energy across all epochs.
	EnergyJ float64
	// MeanVoltage is the ops-weighted average operating voltage.
	MeanVoltage float64
	// FloorEpochs counts epochs whose demand could have used a lower level
	// than the cell's Vmin allowed — energy left on the table.
	FloorEpochs int
}

// Govern runs a demand trace against a DVFS table restricted to levels the
// cell can reach. Each epoch runs at the lowest reachable level whose
// frequency meets demand (or the highest level if none does). Energy per op
// scales as V^2 from its nominal value; leakage power scales with V^2 and
// accrues over the epoch's wall time at the chosen frequency.
func Govern(epochs []Epoch, levels []sram.OperatingPoint, cell sram.CellKind,
	opEnergyNominalJ, leakageNominalW float64) (GovernorResult, error) {
	if len(levels) == 0 {
		return GovernorResult{}, fmt.Errorf("energy: empty DVFS table")
	}
	nominal := levels[0]
	if nominal.VoltageV <= 0 || nominal.FreqMHz <= 0 {
		return GovernorResult{}, fmt.Errorf("energy: bad nominal level %v", nominal)
	}
	// Reachable levels for this cell, preserving descending order.
	reach := make([]sram.OperatingPoint, 0, len(levels))
	for _, l := range levels {
		if l.VoltageV >= cell.VminVolts() {
			reach = append(reach, l)
		}
	}
	if len(reach) == 0 {
		return GovernorResult{}, fmt.Errorf("energy: no level reachable above %v Vmin %.2f",
			cell, cell.VminVolts())
	}
	var out GovernorResult
	var totalOps uint64
	var voltOps float64
	for _, e := range epochs {
		if e.DemandFrac <= 0 || e.DemandFrac > 1 {
			return GovernorResult{}, fmt.Errorf("energy: demand %v out of (0,1]", e.DemandFrac)
		}
		needMHz := e.DemandFrac * nominal.FreqMHz
		// Lowest reachable level meeting demand: scan from the bottom.
		chosen := reach[0]
		for i := len(reach) - 1; i >= 0; i-- {
			if reach[i].FreqMHz >= needMHz {
				chosen = reach[i]
				break
			}
		}
		// Was a lower level desirable but walled off by Vmin? (Only
		// meaningful when the full table had something below.)
		if chosen.VoltageV == reach[len(reach)-1].VoltageV &&
			levels[len(levels)-1].VoltageV < reach[len(reach)-1].VoltageV &&
			chosen.FreqMHz > needMHz {
			out.FloorEpochs++
		}
		scale := chosen.VoltageV / nominal.VoltageV
		dyn := float64(e.Ops) * opEnergyNominalJ * scale * scale
		seconds := float64(e.Ops) / (chosen.FreqMHz * 1e6)
		leak := leakageNominalW * scale * scale * seconds
		out.EnergyJ += dyn + leak
		voltOps += chosen.VoltageV * float64(e.Ops)
		totalOps += e.Ops
	}
	if totalOps > 0 {
		out.MeanVoltage = voltOps / float64(totalOps)
	}
	return out, nil
}
