package energy

import (
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/sram"
	"cache8t/internal/timing"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

func nominal() sram.OperatingPoint {
	return sram.OperatingPoint{VoltageV: 1.0, FreqMHz: 2000}
}

func runBench(t *testing.T, kind core.Kind, name string, n int) core.Result {
	t.Helper()
	p, err := workload.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	accs, err := workload.Take(p, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(kind, cache.DefaultConfig(), core.Options{}, trace.FromSlice(accs), 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEvaluateValidation(t *testing.T) {
	res := runBench(t, core.RMW, "mcf", 1000)
	if _, err := Evaluate(res, sram.OperatingPoint{}, timing.DefaultParams()); err == nil {
		t.Error("zero operating point accepted")
	}
	if _, err := Evaluate(res, nominal(), timing.Params{}); err == nil {
		t.Error("zero timing params accepted")
	}
}

func TestEnergyOrderingAcrossControllers(t *testing.T) {
	// §5.5: WG and WG+RB "replace power hungry cache accesses with
	// accessing a smaller and hence more power efficient structure" — so
	// total energy must order WG+RB < WG < RMW.
	tp := timing.DefaultParams()
	var joules [3]float64
	for i, k := range []core.Kind{core.RMW, core.WG, core.WGRB} {
		rep, err := Evaluate(runBench(t, k, "bwaves", 80000), nominal(), tp)
		if err != nil {
			t.Fatal(err)
		}
		if rep.DynamicJ <= 0 || rep.LeakageJ <= 0 || rep.Seconds <= 0 {
			t.Fatalf("%v: non-positive energy components %+v", k, rep)
		}
		joules[i] = rep.TotalJ()
	}
	if !(joules[2] < joules[1] && joules[1] < joules[0]) {
		t.Errorf("energy ordering violated: RMW %.3e, WG %.3e, WG+RB %.3e",
			joules[0], joules[1], joules[2])
	}
}

func TestVoltageScalingCutsEnergy(t *testing.T) {
	res := runBench(t, core.WGRB, "gcc", 40000)
	tp := timing.DefaultParams()
	hi, err := Evaluate(res, sram.OperatingPoint{VoltageV: 1.0, FreqMHz: 2000}, tp)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Evaluate(res, sram.OperatingPoint{VoltageV: 0.5, FreqMHz: 400}, tp)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo.DynamicJ < hi.DynamicJ/3) {
		t.Errorf("halving voltage cut dynamic energy only %.3e -> %.3e", hi.DynamicJ, lo.DynamicJ)
	}
	// Lower frequency means longer runtime, so leakage per run can rise —
	// just require it stays positive and finite.
	if lo.LeakageJ <= 0 {
		t.Error("leakage vanished at low voltage")
	}
}

func TestPerAccessJ(t *testing.T) {
	if PerAccessJ(Report{DynamicJ: 10}, 0) != 0 {
		t.Error("zero accesses should give 0")
	}
	if got := PerAccessJ(Report{DynamicJ: 10, LeakageJ: 2}, 4); got != 3 {
		t.Errorf("PerAccessJ = %v", got)
	}
}

func TestSweepMarksSixTWall(t *testing.T) {
	res := runBench(t, core.WGRB, "mcf", 20000)
	ap := sram.DefaultAlphaPower()
	points, err := ap.Levels(0.40, 8) // descends below the 6T Vmin of 0.7
	if err != nil {
		t.Fatal(err)
	}
	six, err := Sweep(res, sram.SixT, points, timing.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Sweep(res, sram.EightT, points, timing.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sixReach, eightReach := 0, 0
	for i := range points {
		if six[i].Reachable {
			sixReach++
			if six[i].Report.TotalJ() <= 0 {
				t.Error("reachable point has zero energy")
			}
		}
		if eight[i].Reachable {
			eightReach++
		}
	}
	if eightReach <= sixReach {
		t.Errorf("8T reaches %d points, 6T %d — 8T must reach more (the paper's premise)",
			eightReach, sixReach)
	}
	// The lowest 8T-reachable point must beat the lowest 6T-reachable
	// point on dynamic energy.
	var sixBest, eightBest float64
	for i := len(points) - 1; i >= 0; i-- {
		if sixBest == 0 && six[i].Reachable {
			sixBest = six[i].Report.DynamicJ
		}
		if eightBest == 0 && eight[i].Reachable {
			eightBest = eight[i].Report.DynamicJ
		}
	}
	if !(eightBest < sixBest) {
		t.Errorf("8T floor dynamic energy %.3e not below 6T floor %.3e", eightBest, sixBest)
	}
}

func TestEvaluateCell(t *testing.T) {
	res := runBench(t, core.WGRB, "bwaves", 40000)
	tp := timing.DefaultParams()
	base, err := Evaluate(res, nominal(), tp)
	if err != nil {
		t.Fatal(err)
	}

	// Repricing under the cell the run simulated with is exact identity.
	same, err := EvaluateCell(res, sram.EightT, nominal(), tp)
	if err != nil {
		t.Fatal(err)
	}
	if same != base {
		t.Fatalf("EvaluateCell(8T) = %+v, want the Evaluate baseline %+v", same, base)
	}

	// The 9T reprice keeps the event ledger and trades dynamic for static:
	// a heavier read bit line, roughly half the leakage.
	nine, err := EvaluateCell(res, sram.NineT, nominal(), tp)
	if err != nil {
		t.Fatal(err)
	}
	if nine.DynamicJ <= base.DynamicJ {
		t.Errorf("9T dynamic %.3e not above 8T %.3e", nine.DynamicJ, base.DynamicJ)
	}
	ratio := nine.LeakageJ / base.LeakageJ
	if ratio < 0.50 || ratio > 0.60 {
		t.Errorf("9T leakage ratio = %.3f, want ~0.55", ratio)
	}

	// The Vmin gate is per-cell: 0.30 V is reachable for 9T, not for 8T.
	low := sram.OperatingPoint{VoltageV: 0.30, FreqMHz: 400}
	if _, err := EvaluateCell(res, sram.NineT, low, tp); err != nil {
		t.Errorf("9T rejected 0.30 V above its 0.28 V floor: %v", err)
	}
	if _, err := EvaluateCell(res, sram.EightT, low, tp); err == nil {
		t.Error("8T accepted 0.30 V below its 0.35 V floor")
	}
}
