// Package energy aggregates a run's circuit-event ledger into joules and
// watts, and sweeps DVFS operating points — quantifying the paper's §5.5
// power commentary and the §1 motivation (8T cells unlock low-voltage
// levels that 6T caches cannot reach).
package energy

import (
	"fmt"

	"cache8t/internal/core"
	"cache8t/internal/sram"
	"cache8t/internal/timing"
)

// Report is the energy accounting of one run at one operating point.
type Report struct {
	Point sram.OperatingPoint

	// DynamicJ is switched energy over the whole run.
	DynamicJ float64
	// LeakageJ is static energy over the run's modeled wall time.
	LeakageJ float64
	// Seconds is the modeled wall time (cycles / frequency).
	Seconds float64
}

// TotalJ returns dynamic + leakage energy.
func (r Report) TotalJ() float64 { return r.DynamicJ + r.LeakageJ }

// PerAccessJ returns total energy per demand access.
func PerAccessJ(r Report, accesses uint64) float64 {
	if accesses == 0 {
		return 0
	}
	return r.TotalJ() / float64(accesses)
}

// Evaluate prices res at the given operating point. The energy model is
// rebuilt at the point's voltage; wall time comes from the timing model at
// the point's frequency.
func Evaluate(res core.Result, point sram.OperatingPoint, tp timing.Params) (Report, error) {
	// No Vmin gate here: reachability is the caller's axis (Sweep and the
	// DVFS experiments track it per cell and price unreachable points as a
	// what-if), unlike EvaluateCell where the swapped cell makes the floor
	// part of the question.
	return evaluateConfig(res, res.Events.Config(), point, tp)
}

// EvaluateCell prices res as if the array were built from cell instead of
// the cell it simulated with — the same event ledger repriced under a
// different bit-cell energy profile (e.g. the near-threshold 9T variant,
// arXiv:1812.10011). The event mix is cell-independent (controllers count
// circuit phases, not joules), so swapping the cell here is exact, not an
// approximation. Points below the cell's Vmin are rejected: they are
// unreachable for that technology.
func EvaluateCell(res core.Result, cell sram.CellKind, point sram.OperatingPoint, tp timing.Params) (Report, error) {
	if point.VoltageV > 0 && point.VoltageV < cell.VminVolts() {
		return Report{}, fmt.Errorf("energy: %.2f V is below the %s cell's Vmin %.2f V", point.VoltageV, cell, cell.VminVolts())
	}
	cfg := res.Events.Config()
	cfg.Cell = cell
	return evaluateConfig(res, cfg, point, tp)
}

// evaluateConfig is the shared pricing body behind Evaluate and EvaluateCell.
func evaluateConfig(res core.Result, cfg sram.ArrayConfig, point sram.OperatingPoint, tp timing.Params) (Report, error) {
	if point.VoltageV <= 0 || point.FreqMHz <= 0 {
		return Report{}, fmt.Errorf("energy: invalid operating point %v", point)
	}
	em, err := sram.NewEnergyModel(cfg, point.VoltageV)
	if err != nil {
		return Report{}, err
	}
	trep, err := timing.Evaluate(res, tp)
	if err != nil {
		return Report{}, err
	}
	seconds := trep.Cycles / (point.FreqMHz * 1e6)
	return Report{
		Point:    point,
		DynamicJ: em.DynamicEnergy(res.Events),
		LeakageJ: em.LeakagePower() * seconds,
		Seconds:  seconds,
	}, nil
}

// SweepPoint is one row of a DVFS sweep.
type SweepPoint struct {
	Point     sram.OperatingPoint
	Report    Report
	Reachable bool // false when the point is below the cell's Vmin
}

// Sweep prices res across a DVFS table for a cache built from cell,
// marking unreachable points (below the cell's Vmin) — the 6T wall.
func Sweep(res core.Result, cell sram.CellKind, points []sram.OperatingPoint, tp timing.Params) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(points))
	for _, pt := range points {
		sp := SweepPoint{Point: pt, Reachable: pt.VoltageV >= cell.VminVolts()}
		if sp.Reachable {
			rep, err := Evaluate(res, pt, tp)
			if err != nil {
				return nil, err
			}
			sp.Report = rep
		}
		out = append(out, sp)
	}
	return out, nil
}
