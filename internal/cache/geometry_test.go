package cache

import "testing"

func TestNewGeometryBaseline(t *testing.T) {
	g, err := NewGeometry(64*1024, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if g.Sets != 512 {
		t.Errorf("Sets = %d, want 512", g.Sets)
	}
	if g.SetBytes() != 128 {
		t.Errorf("SetBytes = %d, want 128 (paper §5.4)", g.SetBytes())
	}
}

func TestNewGeometryRejectsBadShapes(t *testing.T) {
	cases := []struct{ size, ways, block int }{
		{1000, 4, 32},      // size not pow2
		{1024, 3, 32},      // ways not pow2
		{1024, 4, 24},      // block not pow2
		{1024, 4, 4},       // block too small
		{64, 4, 32},        // size < one set
		{0, 4, 32},         // zero size
		{64 * 1024, 0, 32}, // zero ways
	}
	for _, c := range cases {
		if _, err := NewGeometry(c.size, c.ways, c.block); err == nil {
			t.Errorf("NewGeometry(%d,%d,%d) accepted", c.size, c.ways, c.block)
		}
	}
}

func TestMustGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGeometry did not panic")
		}
	}()
	MustGeometry(1000, 4, 32)
}

func TestAddressDecomposition(t *testing.T) {
	g := MustGeometry(64*1024, 4, 32)
	addr := uint64(0x12345678)
	// 32 B blocks -> 5 offset bits; 512 sets -> 9 index bits.
	if got := g.BlockOffset(addr); got != int(addr&31) {
		t.Errorf("BlockOffset = %d", got)
	}
	if got := g.SetIndex(addr); got != int((addr>>5)&511) {
		t.Errorf("SetIndex = %d", got)
	}
	if got := g.Tag(addr); got != addr>>14 {
		t.Errorf("Tag = %#x", got)
	}
	if got := g.BlockBase(addr); got != addr&^uint64(31) {
		t.Errorf("BlockBase = %#x", got)
	}
}

func TestDecompositionRecomposition(t *testing.T) {
	g := MustGeometry(32*1024, 8, 64)
	for _, addr := range []uint64{0, 63, 64, 0xdeadbeef, 1 << 47} {
		rebuilt := (g.Tag(addr)<<log2(g.Sets)|uint64(g.SetIndex(addr)))<<g.blockShift + uint64(g.BlockOffset(addr))
		if rebuilt != addr {
			t.Errorf("addr %#x decomposes to %#x", addr, rebuilt)
		}
	}
}

func TestTagBits(t *testing.T) {
	g := MustGeometry(64*1024, 4, 32)
	// 48-bit PA - 5 offset - 9 index = 34 tag bits.
	if got := g.TagBits(48); got != 34 {
		t.Errorf("TagBits(48) = %d, want 34", got)
	}
	if got := g.TagBits(10); got != 0 {
		t.Errorf("TagBits(10) = %d, want 0 (clamped)", got)
	}
}

func TestTagBufferBitsUnder150(t *testing.T) {
	// Paper §5.4: Tag-Buffer "less than 150 bits assuming 48 bits physical
	// address" for the 64 KB baseline.
	g := MustGeometry(64*1024, 4, 32)
	bits := g.TagBufferBits(48)
	if bits >= 150 {
		t.Errorf("TagBufferBits = %d, want < 150", bits)
	}
	if bits < 100 {
		t.Errorf("TagBufferBits = %d suspiciously small", bits)
	}
}

func TestGeometryString(t *testing.T) {
	g := MustGeometry(64*1024, 4, 32)
	if got := g.String(); got != "64KB/4way/32B (512 sets)" {
		t.Errorf("String = %q", got)
	}
}
