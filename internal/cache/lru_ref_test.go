package cache

import (
	"testing"

	"cache8t/internal/mem"
	"cache8t/internal/rng"
)

// refLRU is an independent, obviously-correct LRU set model: a slice of
// tags ordered most-recent-first, used to cross-check the cache's victim
// choices hit-for-hit and miss-for-miss.
type refLRU struct {
	ways int
	tags []uint64
}

func (r *refLRU) access(tag uint64) (hit bool, evicted uint64, didEvict bool) {
	for i, tg := range r.tags {
		if tg == tag {
			copy(r.tags[1:i+1], r.tags[:i])
			r.tags[0] = tag
			return true, 0, false
		}
	}
	if len(r.tags) == r.ways {
		evicted = r.tags[len(r.tags)-1]
		didEvict = true
		r.tags = r.tags[:len(r.tags)-1]
	}
	r.tags = append([]uint64{tag}, r.tags...)
	return false, evicted, didEvict
}

func TestLRUAgainstReferenceModel(t *testing.T) {
	cfg := Config{SizeBytes: 2048, Ways: 4, BlockBytes: 32, Policy: LRU}
	c, err := New(cfg, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	g := c.Geometry()
	refs := make([]*refLRU, g.Sets)
	for i := range refs {
		refs[i] = &refLRU{ways: g.Ways}
	}
	r := rng.New(31)
	for step := 0; step < 50000; step++ {
		// Confined tag space per set so hits are common.
		set := r.Intn(g.Sets)
		tag := uint64(r.Intn(7))
		addr := (tag<<uint(log2(g.Sets))|uint64(set))<<g.blockShift + uint64(r.Intn(g.BlockBytes/8)*8)
		_, _, hit := c.Ensure(addr, r.Bool(0.3))
		refHit, _, _ := refs[set].access(tag)
		if hit != refHit {
			t.Fatalf("step %d: cache hit=%v, reference hit=%v (set %d tag %d)",
				step, hit, refHit, set, tag)
		}
	}
}
