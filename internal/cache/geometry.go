package cache

import "fmt"

// Geometry describes a set-associative cache shape and provides address
// decomposition. The paper's baseline is 64 KB, 4-way, 32 B blocks (§5.1);
// Figures 10 and 11 vary block size and capacity.
type Geometry struct {
	SizeBytes  int // total data capacity
	Ways       int // associativity
	BlockBytes int // line size
	Sets       int // derived: SizeBytes / (Ways * BlockBytes)

	blockShift uint
	setMask    uint64
}

func isPow2(x int) bool { return x > 0 && x&(x-1) == 0 }

func log2(x int) uint {
	var n uint
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// NewGeometry validates and derives a cache geometry.
func NewGeometry(sizeBytes, ways, blockBytes int) (Geometry, error) {
	switch {
	case !isPow2(sizeBytes):
		return Geometry{}, fmt.Errorf("cache: size %d is not a power of two", sizeBytes)
	case !isPow2(ways):
		return Geometry{}, fmt.Errorf("cache: ways %d is not a power of two", ways)
	case !isPow2(blockBytes) || blockBytes < 8:
		return Geometry{}, fmt.Errorf("cache: block size %d must be a power of two >= 8", blockBytes)
	case sizeBytes < ways*blockBytes:
		return Geometry{}, fmt.Errorf("cache: size %d smaller than one set (%d ways x %d B)", sizeBytes, ways, blockBytes)
	}
	sets := sizeBytes / (ways * blockBytes)
	return Geometry{
		SizeBytes:  sizeBytes,
		Ways:       ways,
		BlockBytes: blockBytes,
		Sets:       sets,
		blockShift: log2(blockBytes),
		setMask:    uint64(sets - 1),
	}, nil
}

// MustGeometry is NewGeometry that panics on invalid input; for tests and
// package-level defaults.
func MustGeometry(sizeBytes, ways, blockBytes int) Geometry {
	g, err := NewGeometry(sizeBytes, ways, blockBytes)
	if err != nil {
		panic(err)
	}
	return g
}

// SetIndex returns the set an address maps to.
func (g Geometry) SetIndex(addr uint64) int {
	return int((addr >> g.blockShift) & g.setMask)
}

// Tag returns the tag bits of an address.
func (g Geometry) Tag(addr uint64) uint64 {
	return addr >> (g.blockShift + log2(g.Sets))
}

// BlockBase returns the address of the first byte of addr's block.
func (g Geometry) BlockBase(addr uint64) uint64 {
	return addr &^ (uint64(g.BlockBytes) - 1)
}

// BlockOffset returns addr's offset within its block.
func (g Geometry) BlockOffset(addr uint64) int {
	return int(addr & (uint64(g.BlockBytes) - 1))
}

// SetBytes returns the size of one set's data (the Set-Buffer capacity,
// paper §5.4: 128 B for the 64 KB/4-way/32 B baseline).
func (g Geometry) SetBytes() int { return g.Ways * g.BlockBytes }

// TagBits returns the number of tag bits per block for a physical address of
// paBits bits (paper §5.4 assumes 48).
func (g Geometry) TagBits(paBits int) int {
	bits := paBits - int(g.blockShift) - int(log2(g.Sets))
	if bits < 0 {
		return 0
	}
	return bits
}

// TagBufferBits returns the storage cost of the Tag-Buffer in bits: the set
// index plus one tag per way, plus the Dirty bit and a valid bit (paper §5.4:
// "less than 150 bits" for the baseline at 48-bit PA).
func (g Geometry) TagBufferBits(paBits int) int {
	return int(log2(g.Sets)) + g.Ways*g.TagBits(paBits) + 2
}

// String renders like "64KB/4way/32B (512 sets)".
func (g Geometry) String() string {
	return fmt.Sprintf("%dKB/%dway/%dB (%d sets)", g.SizeBytes/1024, g.Ways, g.BlockBytes, g.Sets)
}
