// Package cache implements the functional set-associative L1 data cache the
// controllers in internal/core operate on: write-allocate, write-back, with
// real line data so silent-write detection and memory-image verification are
// exact rather than statistical.
//
// The cache is purely functional (hits, misses, data movement). How many
// *SRAM array* operations a request costs is the controllers' concern — the
// whole point of the paper is that the same functional request stream can be
// served with very different array traffic.
package cache

import (
	"encoding/binary"
	"fmt"

	"cache8t/internal/mem"
	"cache8t/internal/rng"
)

// Line is one cache block: metadata plus data bytes.
type Line struct {
	Tag   uint64
	Valid bool
	Dirty bool
	Data  []byte
}

// Stats counts functional cache events.
type Stats struct {
	ReadHits    uint64
	ReadMisses  uint64
	WriteHits   uint64
	WriteMisses uint64
	Fills       uint64
	Evictions   uint64
	Writebacks  uint64
}

// Hits returns total hits.
func (s Stats) Hits() uint64 { return s.ReadHits + s.WriteHits }

// Misses returns total misses.
func (s Stats) Misses() uint64 { return s.ReadMisses + s.WriteMisses }

// Accesses returns total requests.
func (s Stats) Accesses() uint64 { return s.Hits() + s.Misses() }

// MissRate returns misses / accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Accesses())
}

// Listener observes the cache's externally visible block traffic: the fills
// and write-backs a next level of the hierarchy would see. Both fire with
// the block's base address; Writeback also carries the victim's data (valid
// only for the duration of the call). Per-miss order is deterministic:
// the victim's Writeback (if dirty) strictly precedes the Fill that evicted
// it. Functional stats are unaffected by whether a listener is attached.
type Listener interface {
	Fill(blockAddr uint64)
	Writeback(blockAddr uint64, data []byte)
}

// Config configures a Cache.
type Config struct {
	SizeBytes  int
	Ways       int
	BlockBytes int
	Policy     PolicyKind
	// Seed feeds the Random replacement policy; ignored by others.
	Seed uint64
	// NoWriteAllocate makes write misses bypass the cache (write-around to
	// memory) instead of filling a line. The paper's baseline allocates;
	// this knob drives the allocation-policy sensitivity experiment.
	NoWriteAllocate bool
}

// DefaultConfig is the paper's baseline: 64 KB, 4-way, 32 B blocks, LRU.
func DefaultConfig() Config {
	return Config{SizeBytes: 64 * 1024, Ways: 4, BlockBytes: 32, Policy: LRU}
}

// Cache is a set-associative, write-back data cache backed by a shadow
// memory; write-allocate by default, write-around when Config.NoWriteAllocate
// is set.
type Cache struct {
	geom     Geometry
	sets     [][]Line
	policies []policy
	// rand is the RNG shared by every set's Random replacement policy
	// (unused by the deterministic policies). Retained so checkpointing can
	// capture and restore its state.
	rand     *rng.Xoshiro256
	backing  *mem.Memory
	stats    Stats
	noAlloc  bool
	listener Listener
}

// SetListener attaches (or, with nil, detaches) the block-traffic observer.
// At most one listener is supported; internal/hier uses it to drive an L2.
func (c *Cache) SetListener(l Listener) { c.listener = l }

// New builds a cache over backing memory.
func New(cfg Config, backing *mem.Memory) (*Cache, error) {
	geom, err := NewGeometry(cfg.SizeBytes, cfg.Ways, cfg.BlockBytes)
	if err != nil {
		return nil, err
	}
	if backing == nil {
		return nil, fmt.Errorf("cache: nil backing memory")
	}
	r := rng.New(cfg.Seed)
	c := &Cache{
		geom:     geom,
		sets:     make([][]Line, geom.Sets),
		policies: make([]policy, geom.Sets),
		rand:     r,
		backing:  backing,
		noAlloc:  cfg.NoWriteAllocate,
	}
	data := make([]byte, geom.Sets*geom.Ways*geom.BlockBytes)
	for s := range c.sets {
		ways := make([]Line, geom.Ways)
		for w := range ways {
			ways[w].Data, data = data[:geom.BlockBytes], data[geom.BlockBytes:]
		}
		c.sets[s] = ways
		c.policies[s] = newPolicy(cfg.Policy, geom.Ways, r)
	}
	return c, nil
}

// Geometry returns the cache shape.
func (c *Cache) Geometry() Geometry { return c.geom }

// Stats returns a copy of the functional event counters.
func (c *Cache) Stats() Stats { return c.stats }

// RestoreStats replaces the functional event counters, for checkpoint
// restore.
func (c *Cache) RestoreStats(s Stats) { c.stats = s }

// PolicyState returns set s's replacement state as an opaque word slice
// (empty for stateless policies). Paired with RestorePolicyState.
func (c *Cache) PolicyState(s int) []uint32 { return c.policies[s].state() }

// RestorePolicyState replaces set s's replacement state with one captured by
// PolicyState on a cache of the same configuration.
func (c *Cache) RestorePolicyState(s int, st []uint32) error {
	return c.policies[s].restore(st)
}

// RNGState returns the state of the RNG shared by the Random replacement
// policy. Paired with RestoreRNGState.
func (c *Cache) RNGState() [4]uint64 { return c.rand.State() }

// RestoreRNGState replaces the shared replacement RNG's state.
func (c *Cache) RestoreRNGState(s [4]uint64) { c.rand.Restore(s) }

// Backing returns the cache's backing memory.
func (c *Cache) Backing() *mem.Memory { return c.backing }

// NoWriteAllocate reports whether write misses bypass the cache.
func (c *Cache) NoWriteAllocate() bool { return c.noAlloc }

// WriteAround performs a write-around for a write miss under the
// no-write-allocate policy: the data goes straight to memory and the miss
// is accounted, with no fill and no replacement update. The caller must
// have established via Probe that addr's block is not resident; bytes that
// straddle into a *resident* neighbour block are written into that line so
// the freshest copy stays unique.
func (c *Cache) WriteAround(addr uint64, size uint8, data uint64) {
	c.stats.WriteMisses++
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], data)
	for i := 0; i < int(size); i++ {
		b := addr + uint64(i)
		if set, way, hit := c.Probe(b); hit {
			l := &c.sets[set][way]
			off := c.geom.BlockOffset(b)
			if l.Data[off] != buf[i] {
				l.Data[off] = buf[i]
				l.Dirty = true
			}
			continue
		}
		c.backing.StoreByte(b, buf[i])
	}
}

// Probe looks up addr without side effects. It returns the set index, the
// way holding the block (-1 on miss), and whether it hit.
func (c *Cache) Probe(addr uint64) (set, way int, hit bool) {
	set = c.geom.SetIndex(addr)
	tag := c.geom.Tag(addr)
	for w := range c.sets[set] {
		if l := &c.sets[set][w]; l.Valid && l.Tag == tag {
			return set, w, true
		}
	}
	return set, -1, false
}

// Ensure makes addr's block resident: on a miss it evicts a victim (writing
// back dirty data) and fills from backing memory. It updates replacement
// state and hit/miss counters according to isWrite. It returns the set, the
// way now holding the block, and whether the request hit.
func (c *Cache) Ensure(addr uint64, isWrite bool) (set, way int, hit bool) {
	set, way, hit = c.Probe(addr)
	switch {
	case hit && isWrite:
		c.stats.WriteHits++
	case hit:
		c.stats.ReadHits++
	case isWrite:
		c.stats.WriteMisses++
	default:
		c.stats.ReadMisses++
	}
	if hit {
		c.policies[set].Touch(way)
		return set, way, true
	}
	way = c.fill(set, c.geom.Tag(addr), c.geom.BlockBase(addr))
	return set, way, false
}

// fill victimizes a way in set and loads the block at base into it.
func (c *Cache) fill(set int, tag, base uint64) int {
	way := -1
	for w := range c.sets[set] {
		if !c.sets[set][w].Valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = c.policies[set].Victim()
		c.evict(set, way)
	}
	l := &c.sets[set][way]
	c.backing.Read(base, l.Data)
	l.Tag = tag
	l.Valid = true
	l.Dirty = false
	c.stats.Fills++
	if c.listener != nil {
		c.listener.Fill(base)
	}
	c.policies[set].Insert(way)
	return way
}

// evict writes back way's line if dirty and invalidates it.
func (c *Cache) evict(set, way int) {
	l := &c.sets[set][way]
	if !l.Valid {
		return
	}
	if l.Dirty {
		base := c.lineBase(set, l.Tag)
		c.backing.Write(base, l.Data)
		c.stats.Writebacks++
		if c.listener != nil {
			c.listener.Writeback(base, l.Data)
		}
	}
	l.Valid = false
	l.Dirty = false
	c.stats.Evictions++
}

// lineBase reconstructs the block base address of a resident line.
func (c *Cache) lineBase(set int, tag uint64) uint64 {
	return (tag<<log2(c.geom.Sets) | uint64(set)) << c.geom.blockShift
}

// ReadWord reads size bytes at addr from the resident line (set, way).
// The caller must have established residency via Ensure.
func (c *Cache) ReadWord(set, way int, addr uint64, size uint8) uint64 {
	l := &c.sets[set][way]
	off := c.geom.BlockOffset(addr)
	var buf [8]byte
	n := copy(buf[:size], l.Data[off:])
	if n < int(size) {
		// Access straddles a block boundary; fetch the spill bytes from
		// the next block via backing-consistent path. Workload generators
		// emit aligned accesses, so this path is defensive.
		spill := c.readSpill(addr+uint64(n), int(size)-n)
		copy(buf[n:size], spill)
	}
	return binary.LittleEndian.Uint64(buf[:])
}

func (c *Cache) readSpill(addr uint64, n int) []byte {
	out := make([]byte, n)
	if set, way, hit := c.Probe(addr); hit {
		off := c.geom.BlockOffset(addr)
		copy(out, c.sets[set][way].Data[off:off+n])
		return out
	}
	c.backing.Read(addr, out)
	return out
}

// WriteWord writes the low size bytes of data at addr into the resident line
// (set, way), marking it dirty if the content changed. It reports whether the
// write was silent (stored value identical to the previous content).
func (c *Cache) WriteWord(set, way int, addr uint64, size uint8, data uint64) (silent bool) {
	l := &c.sets[set][way]
	off := c.geom.BlockOffset(addr)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], data)
	n := int(size)
	if off+n > len(l.Data) {
		// Straddling store: write the spill through to backing memory so
		// the architectural image stays exact. Defensive; see ReadWord.
		spill := n - (len(l.Data) - off)
		c.writeSpill(addr+uint64(n-spill), buf[n-spill:n])
		n -= spill
	}
	changed := false
	for i := 0; i < n; i++ {
		if l.Data[off+i] != buf[i] {
			changed = true
			l.Data[off+i] = buf[i]
		}
	}
	if changed {
		l.Dirty = true
	}
	return !changed
}

func (c *Cache) writeSpill(addr uint64, src []byte) {
	if set, way, hit := c.Probe(addr); hit {
		off := c.geom.BlockOffset(addr)
		copy(c.sets[set][way].Data[off:], src)
		c.sets[set][way].Dirty = true
		return
	}
	c.backing.Write(addr, src)
}

// PeekWord reads size bytes at addr from wherever the freshest copy lives
// (cache line if resident, else backing memory), without touching stats or
// replacement state. Used by verification.
func (c *Cache) PeekWord(addr uint64, size uint8) uint64 {
	var buf [8]byte
	for i := 0; i < int(size); i++ {
		buf[i] = c.peekByte(addr + uint64(i))
	}
	return binary.LittleEndian.Uint64(buf[:])
}

func (c *Cache) peekByte(addr uint64) byte {
	if set, way, hit := c.Probe(addr); hit {
		return c.sets[set][way].Data[c.geom.BlockOffset(addr)]
	}
	return c.backing.LoadByte(addr)
}

// Set returns the lines of set s. Controllers use this to model the
// Set-Buffer (a copy of one whole set row); mutating the returned slice
// mutates the cache.
func (c *Cache) Set(s int) []Line { return c.sets[s] }

// SnapshotSet deep-copies set s — filling the Set-Buffer.
func (c *Cache) SnapshotSet(s int) []Line {
	src := c.sets[s]
	out := make([]Line, len(src))
	data := make([]byte, len(src)*c.geom.BlockBytes)
	for w := range src {
		out[w] = src[w]
		out[w].Data, data = data[:c.geom.BlockBytes], data[c.geom.BlockBytes:]
		copy(out[w].Data, src[w].Data)
	}
	return out
}

// SnapshotSetInto copies set s into dst, reusing dst's line buffers — the
// steady-state Set-Buffer refill, which must not allocate on the hot path.
// dst must have come from SnapshotSet on a cache of the same shape; anything
// else (nil included) falls back to a fresh snapshot.
func (c *Cache) SnapshotSetInto(s int, dst []Line) []Line {
	src := c.sets[s]
	if len(dst) != len(src) {
		return c.SnapshotSet(s)
	}
	for w := range src {
		data := dst[w].Data
		if len(data) != c.geom.BlockBytes {
			return c.SnapshotSet(s)
		}
		copy(data, src[w].Data)
		dst[w] = src[w]
		dst[w].Data = data
	}
	return dst
}

// RestoreSet copies buffered lines back into set s — the Set-Buffer
// write-back. Only data and dirty bits move; the protocol in internal/core
// guarantees no structural (tag/valid) change can occur while a set is
// buffered.
func (c *Cache) RestoreSet(s int, lines []Line) {
	dst := c.sets[s]
	for w := range dst {
		copy(dst[w].Data, lines[w].Data)
		dst[w].Dirty = lines[w].Dirty
		dst[w].Tag = lines[w].Tag
		dst[w].Valid = lines[w].Valid
	}
}

// FlushAll writes every dirty line back to memory and invalidates the cache.
func (c *Cache) FlushAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.evict(s, w)
		}
	}
}

// WritebackAll writes every dirty line back to memory, leaving lines valid.
// Attached listeners see these write-backs too — a final drain is real
// downstream traffic, and reporting it keeps the listener's ledger
// consistent with Stats.Writebacks.
func (c *Cache) WritebackAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.Valid && l.Dirty {
				base := c.lineBase(s, l.Tag)
				c.backing.Write(base, l.Data)
				l.Dirty = false
				c.stats.Writebacks++
				if c.listener != nil {
					c.listener.Writeback(base, l.Data)
				}
			}
		}
	}
}
