package cache

import (
	"testing"

	"cache8t/internal/rng"
)

func TestPolicyKindString(t *testing.T) {
	for k, want := range map[PolicyKind]string{
		LRU: "LRU", FIFO: "FIFO", Random: "Random", TreePLRU: "TreePLRU",
	} {
		if k.String() != want {
			t.Errorf("%v.String() = %q", want, k.String())
		}
	}
	if PolicyKind(99).String() != "PolicyKind(99)" {
		t.Error("unknown kind string")
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]PolicyKind{
		"lru": LRU, "LRU": LRU, "fifo": FIFO, "random": Random, "plru": TreePLRU,
	} {
		got, err := ParsePolicy(name)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParsePolicy("mru"); err == nil {
		t.Error("ParsePolicy accepted unknown name")
	}
}

func TestLRUVictimOrdering(t *testing.T) {
	s := newLRUState(4)
	// Fresh state: victim is the initial tail.
	if got := s.Victim(); got != 3 {
		t.Fatalf("initial victim = %d", got)
	}
	s.Touch(3)
	if got := s.Victim(); got != 2 {
		t.Fatalf("victim after touch(3) = %d", got)
	}
	// Touch everything but way 1; way 1 becomes LRU.
	s.Touch(0)
	s.Touch(2)
	s.Touch(3)
	if got := s.Victim(); got != 1 {
		t.Fatalf("victim = %d, want 1", got)
	}
	s.Insert(1)
	if got := s.Victim(); got != 0 {
		t.Fatalf("victim after insert(1) = %d, want 0", got)
	}
}

func TestFIFOIgnoresTouch(t *testing.T) {
	s := newFIFOState(3)
	if got := s.Victim(); got != 0 {
		t.Fatalf("initial FIFO victim = %d", got)
	}
	s.Touch(0) // must not refresh
	if got := s.Victim(); got != 0 {
		t.Fatalf("FIFO victim after touch = %d", got)
	}
	s.Insert(0) // refill moves it to the back
	if got := s.Victim(); got != 1 {
		t.Fatalf("FIFO victim after insert = %d", got)
	}
}

func TestRandomVictimInRange(t *testing.T) {
	s := &randomState{ways: 4, r: rng.New(9)}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := s.Victim()
		if v < 0 || v >= 4 {
			t.Fatalf("random victim %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Errorf("random victim only covered %d ways", len(seen))
	}
}

func TestPLRUNeverEvictsMostRecent(t *testing.T) {
	for _, ways := range []int{1, 2, 4, 8, 16} {
		s := newPLRUState(ways)
		for i := 0; i < 100; i++ {
			way := i % ways
			s.Touch(way)
			if ways > 1 && s.Victim() == way {
				t.Fatalf("ways=%d: PLRU victim is the just-touched way %d", ways, way)
			}
		}
	}
}

func TestPLRUFullRotation(t *testing.T) {
	// Touch every way; successive victims must cycle through all ways when
	// each victim is immediately re-touched (scan pattern).
	const ways = 8
	s := newPLRUState(ways)
	for w := 0; w < ways; w++ {
		s.Touch(w)
	}
	seen := map[int]bool{}
	for i := 0; i < ways; i++ {
		v := s.Victim()
		seen[v] = true
		s.Touch(v)
	}
	if len(seen) != ways {
		t.Errorf("PLRU scan visited %d/%d ways", len(seen), ways)
	}
}

func TestNewPolicyPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	newPolicy(PolicyKind(42), 4, rng.New(0))
}
