package cache

import (
	"testing"
	"testing/quick"

	"cache8t/internal/mem"
	"cache8t/internal/rng"
)

func newTestCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func smallConfig() Config {
	return Config{SizeBytes: 1024, Ways: 2, BlockBytes: 32, Policy: LRU}
}

func TestNewRejectsNilBacking(t *testing.T) {
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Fatal("nil backing accepted")
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ways = 3
	if _, err := New(cfg, mem.New()); err == nil {
		t.Fatal("bad geometry accepted")
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := newTestCache(t, smallConfig())
	_, _, hit := c.Ensure(0x100, false)
	if hit {
		t.Fatal("cold access hit")
	}
	_, _, hit = c.Ensure(0x104, false) // same block
	if !hit {
		t.Fatal("same-block access missed")
	}
	st := c.Stats()
	if st.ReadMisses != 1 || st.ReadHits != 1 || st.Fills != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := newTestCache(t, smallConfig())
	set, way, _ := c.Ensure(0x200, true)
	if silent := c.WriteWord(set, way, 0x200, 4, 0xcafebabe); silent {
		t.Fatal("first write of nonzero value reported silent")
	}
	set, way, hit := c.Ensure(0x200, false)
	if !hit {
		t.Fatal("read after write missed")
	}
	if got := c.ReadWord(set, way, 0x200, 4); got != 0xcafebabe {
		t.Fatalf("ReadWord = %#x", got)
	}
}

func TestSilentWriteDetection(t *testing.T) {
	c := newTestCache(t, smallConfig())
	set, way, _ := c.Ensure(0x300, true)
	c.WriteWord(set, way, 0x300, 4, 7)
	if silent := c.WriteWord(set, way, 0x300, 4, 7); !silent {
		t.Fatal("rewrite of identical value not silent")
	}
	if silent := c.WriteWord(set, way, 0x300, 4, 8); silent {
		t.Fatal("changing write reported silent")
	}
	// Writing zero to a freshly filled zero block is silent and must not dirty.
	c2 := newTestCache(t, smallConfig())
	set, way, _ = c2.Ensure(0x400, true)
	if silent := c2.WriteWord(set, way, 0x400, 8, 0); !silent {
		t.Fatal("zero-over-zero not silent")
	}
	if c2.Set(set)[way].Dirty {
		t.Fatal("silent write dirtied the line")
	}
}

func TestEvictionWritesBackDirtyData(t *testing.T) {
	cfg := smallConfig() // 1 KB, 2-way, 32 B -> 16 sets
	backing := mem.New()
	c, err := New(cfg, backing)
	if err != nil {
		t.Fatal(err)
	}
	// Three blocks mapping to set 0 in a 2-way cache force an eviction.
	g := c.Geometry()
	stride := uint64(g.Sets * g.BlockBytes)
	set, way, _ := c.Ensure(0, true)
	c.WriteWord(set, way, 0, 8, 0x1111)
	c.Ensure(stride, false)
	c.Ensure(2*stride, false) // evicts block 0 (LRU)
	if got := backing.ReadWord(0, 8); got != 0x1111 {
		t.Fatalf("dirty eviction lost data: memory holds %#x", got)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Writebacks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The evicted block must re-miss and see its written data.
	set, way, hit := c.Ensure(0, false)
	if hit {
		t.Fatal("evicted block reported hit")
	}
	if got := c.ReadWord(set, way, 0, 8); got != 0x1111 {
		t.Fatalf("refilled data = %#x", got)
	}
}

func TestCleanEvictionSkipsWriteback(t *testing.T) {
	c := newTestCache(t, smallConfig())
	g := c.Geometry()
	stride := uint64(g.Sets * g.BlockBytes)
	c.Ensure(0, false)
	c.Ensure(stride, false)
	c.Ensure(2*stride, false)
	st := c.Stats()
	if st.Evictions != 1 || st.Writebacks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProbeHasNoSideEffects(t *testing.T) {
	c := newTestCache(t, smallConfig())
	c.Probe(0x500)
	if st := c.Stats(); st.Accesses() != 0 || st.Fills != 0 {
		t.Fatalf("Probe mutated stats: %+v", st)
	}
	set, way, hit := c.Probe(0x500)
	if hit || way != -1 || set != c.Geometry().SetIndex(0x500) {
		t.Fatalf("Probe = (%d,%d,%v)", set, way, hit)
	}
}

func TestFlushAllMakesMemoryConsistent(t *testing.T) {
	backing := mem.New()
	c, err := New(smallConfig(), backing)
	if err != nil {
		t.Fatal(err)
	}
	set, way, _ := c.Ensure(0x40, true)
	c.WriteWord(set, way, 0x40, 4, 99)
	if backing.ReadWord(0x40, 4) == 99 {
		t.Fatal("write-back cache leaked to memory early")
	}
	c.FlushAll()
	if got := backing.ReadWord(0x40, 4); got != 99 {
		t.Fatalf("after flush memory = %d", got)
	}
	if _, _, hit := c.Probe(0x40); hit {
		t.Fatal("flushed line still resident")
	}
}

func TestWritebackAllKeepsLinesValid(t *testing.T) {
	backing := mem.New()
	c, err := New(smallConfig(), backing)
	if err != nil {
		t.Fatal(err)
	}
	set, way, _ := c.Ensure(0x80, true)
	c.WriteWord(set, way, 0x80, 4, 123)
	c.WritebackAll()
	if got := backing.ReadWord(0x80, 4); got != 123 {
		t.Fatalf("memory = %d", got)
	}
	if _, _, hit := c.Probe(0x80); !hit {
		t.Fatal("WritebackAll invalidated the line")
	}
	if c.Set(set)[way].Dirty {
		t.Fatal("line still dirty after WritebackAll")
	}
}

func TestSnapshotRestoreSet(t *testing.T) {
	c := newTestCache(t, smallConfig())
	set, way, _ := c.Ensure(0x20, true)
	c.WriteWord(set, way, 0x20, 4, 5)
	snap := c.SnapshotSet(set)
	// Mutating the snapshot must not touch the cache.
	snap[way].Data[0] = 0xff
	if c.Set(set)[way].Data[0] == 0xff {
		t.Fatal("snapshot aliases cache storage")
	}
	// Restore pushes buffered data back.
	c.RestoreSet(set, snap)
	if c.Set(set)[way].Data[0] != 0xff {
		t.Fatal("RestoreSet did not copy data")
	}
}

func TestPeekWordSeesFreshestCopy(t *testing.T) {
	backing := mem.New()
	backing.WriteWord(0x1000, 4, 1)
	c, err := New(smallConfig(), backing)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.PeekWord(0x1000, 4); got != 1 {
		t.Fatalf("peek through to memory = %d", got)
	}
	set, way, _ := c.Ensure(0x1000, true)
	c.WriteWord(set, way, 0x1000, 4, 2)
	if got := c.PeekWord(0x1000, 4); got != 2 {
		t.Fatalf("peek of dirty line = %d", got)
	}
	if backing.ReadWord(0x1000, 4) != 1 {
		t.Fatal("peek flushed the line")
	}
}

func TestFillLoadsFromBacking(t *testing.T) {
	backing := mem.New()
	backing.WriteWord(0x2000, 8, 0xfeedface)
	c, err := New(smallConfig(), backing)
	if err != nil {
		t.Fatal(err)
	}
	set, way, _ := c.Ensure(0x2000, false)
	if got := c.ReadWord(set, way, 0x2000, 8); got != 0xfeedface {
		t.Fatalf("filled data = %#x", got)
	}
}

// TestAgainstFlatMemoryModel is the core functional property test: a cache in
// front of memory must be observationally identical to a flat memory, for
// every replacement policy.
func TestAgainstFlatMemoryModel(t *testing.T) {
	for _, pol := range []PolicyKind{LRU, FIFO, Random, TreePLRU} {
		t.Run(pol.String(), func(t *testing.T) {
			cfg := Config{SizeBytes: 512, Ways: 2, BlockBytes: 32, Policy: pol, Seed: 7}
			c, err := New(cfg, mem.New())
			if err != nil {
				t.Fatal(err)
			}
			ref := mem.New()
			r := rng.New(101)
			sizes := []uint8{1, 2, 4, 8}
			for i := 0; i < 20000; i++ {
				size := sizes[r.Intn(4)]
				// Aligned addresses within a tight footprint to force
				// heavy eviction traffic.
				addr := uint64(r.Intn(4096/int(size))) * uint64(size)
				if r.Bool(0.5) {
					data := r.Uint64()
					set, way, _ := c.Ensure(addr, true)
					c.WriteWord(set, way, addr, size, data)
					ref.WriteWord(addr, size, data)
				} else {
					set, way, _ := c.Ensure(addr, false)
					got := c.ReadWord(set, way, addr, size)
					want := ref.ReadWord(addr, size)
					if got != want {
						t.Fatalf("step %d: read %#x+%d = %#x, want %#x (policy %v)",
							i, addr, size, got, want, pol)
					}
				}
			}
			// After a full flush the memory images must agree.
			c.FlushAll()
			if !c.Backing().Equal(ref) {
				t.Fatal("flushed image differs from reference memory")
			}
		})
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{ReadHits: 6, ReadMisses: 2, WriteHits: 1, WriteMisses: 1}
	if s.Hits() != 7 || s.Misses() != 3 || s.Accesses() != 10 {
		t.Fatalf("derived stats wrong: %+v", s)
	}
	if got := s.MissRate(); got != 0.3 {
		t.Fatalf("MissRate = %v", got)
	}
	if (Stats{}).MissRate() != 0 {
		t.Fatal("empty MissRate nonzero")
	}
}

func TestLineBaseRoundTripProperty(t *testing.T) {
	c := newTestCache(t, smallConfig())
	g := c.Geometry()
	f := func(addr uint64) bool {
		base := g.BlockBase(addr)
		return c.lineBase(g.SetIndex(addr), g.Tag(addr)) == base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
