package cache

import (
	"fmt"

	"cache8t/internal/rng"
)

// PolicyKind selects a replacement policy.
type PolicyKind uint8

const (
	// LRU evicts the least recently used way (the paper's policy, §5.1).
	LRU PolicyKind = iota
	// FIFO evicts the oldest-filled way.
	FIFO
	// Random evicts a uniformly random way.
	Random
	// TreePLRU is the tree pseudo-LRU approximation common in hardware.
	TreePLRU
)

// String names the policy.
func (k PolicyKind) String() string {
	switch k {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	case TreePLRU:
		return "TreePLRU"
	default:
		return fmt.Sprintf("PolicyKind(%d)", uint8(k))
	}
}

// ParsePolicy converts a name (as used on CLI flags) to a PolicyKind.
func ParsePolicy(name string) (PolicyKind, error) {
	switch name {
	case "lru", "LRU":
		return LRU, nil
	case "fifo", "FIFO":
		return FIFO, nil
	case "random", "Random":
		return Random, nil
	case "plru", "PLRU", "treeplru", "TreePLRU":
		return TreePLRU, nil
	default:
		return 0, fmt.Errorf("cache: unknown replacement policy %q", name)
	}
}

// policy tracks replacement state for one set.
type policy interface {
	// Touch records a hit on way.
	Touch(way int)
	// Insert records a fill into way.
	Insert(way int)
	// Victim picks the way to evict.
	Victim() int
	// state returns the per-set replacement state as an opaque word slice
	// (empty when the policy keeps none), for checkpoint serialization.
	state() []uint32
	// restore replaces the state with one captured by state, validating
	// shape and invariants so a corrupt checkpoint fails closed.
	restore(st []uint32) error
}

func newPolicy(kind PolicyKind, ways int, r *rng.Xoshiro256) policy {
	switch kind {
	case LRU:
		return newLRUState(ways)
	case FIFO:
		return newFIFOState(ways)
	case Random:
		return &randomState{ways: ways, r: r}
	case TreePLRU:
		return newPLRUState(ways)
	default:
		panic("cache: invalid policy kind")
	}
}

// lruState keeps ways ordered from most- to least-recently used.
type lruState struct {
	order []int // order[0] is MRU
}

func newLRUState(ways int) *lruState {
	s := &lruState{order: make([]int, ways)}
	for i := range s.order {
		s.order[i] = i
	}
	return s
}

func (s *lruState) moveToFront(way int) {
	for i, w := range s.order {
		if w == way {
			copy(s.order[1:i+1], s.order[:i])
			s.order[0] = way
			return
		}
	}
}

func (s *lruState) Touch(way int)  { s.moveToFront(way) }
func (s *lruState) Insert(way int) { s.moveToFront(way) }
func (s *lruState) Victim() int    { return s.order[len(s.order)-1] }

func (s *lruState) state() []uint32 { return waysToWords(s.order) }

func (s *lruState) restore(st []uint32) error {
	order, err := wordsToPerm(st, len(s.order))
	if err != nil {
		return fmt.Errorf("cache: LRU state: %w", err)
	}
	s.order = order
	return nil
}

// fifoState evicts in fill order; hits do not refresh position.
type fifoState struct {
	queue []int
}

func newFIFOState(ways int) *fifoState {
	s := &fifoState{queue: make([]int, ways)}
	for i := range s.queue {
		s.queue[i] = i
	}
	return s
}

func (s *fifoState) Touch(int) {}

func (s *fifoState) Insert(way int) {
	for i, w := range s.queue {
		if w == way {
			copy(s.queue[i:], s.queue[i+1:])
			s.queue[len(s.queue)-1] = way
			return
		}
	}
}

func (s *fifoState) Victim() int { return s.queue[0] }

func (s *fifoState) state() []uint32 { return waysToWords(s.queue) }

func (s *fifoState) restore(st []uint32) error {
	queue, err := wordsToPerm(st, len(s.queue))
	if err != nil {
		return fmt.Errorf("cache: FIFO state: %w", err)
	}
	s.queue = queue
	return nil
}

type randomState struct {
	ways int
	r    *rng.Xoshiro256
}

func (s *randomState) Touch(int)   {}
func (s *randomState) Insert(int)  {}
func (s *randomState) Victim() int { return s.r.Intn(s.ways) }

// Random keeps no per-set state; the shared RNG is checkpointed once via
// Cache.RNGState.
func (s *randomState) state() []uint32 { return nil }

func (s *randomState) restore(st []uint32) error {
	if len(st) != 0 {
		return fmt.Errorf("cache: Random state: want 0 words, got %d", len(st))
	}
	return nil
}

// plruState is a binary-tree pseudo-LRU: one bit per internal node pointing
// toward the colder half. Requires power-of-two ways (guaranteed by Geometry).
type plruState struct {
	bits []bool // heap-ordered internal nodes; len = ways-1
	ways int
}

func newPLRUState(ways int) *plruState {
	return &plruState{bits: make([]bool, ways-1), ways: ways}
}

// Touch flips the path bits away from way so the tree points elsewhere.
func (s *plruState) Touch(way int) {
	node := 0
	lo, hi := 0, s.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			s.bits[node] = true // point at the right (cold) half
			node = 2*node + 1
			hi = mid
		} else {
			s.bits[node] = false
			node = 2*node + 2
			lo = mid
		}
	}
}

func (s *plruState) Insert(way int) { s.Touch(way) }

// Victim follows the cold pointers to a leaf. A true bit means "the cold
// half is the right one" (set by Touch on a left-half hit), so Victim
// descends right on true and left on false.
func (s *plruState) Victim() int {
	node := 0
	lo, hi := 0, s.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s.bits[node] {
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}

func (s *plruState) state() []uint32 {
	st := make([]uint32, len(s.bits))
	for i, b := range s.bits {
		if b {
			st[i] = 1
		}
	}
	return st
}

func (s *plruState) restore(st []uint32) error {
	if len(st) != len(s.bits) {
		return fmt.Errorf("cache: PLRU state: want %d words, got %d", len(s.bits), len(st))
	}
	for i, w := range st {
		if w > 1 {
			return fmt.Errorf("cache: PLRU state: word %d is %d, want 0 or 1", i, w)
		}
		s.bits[i] = w == 1
	}
	return nil
}

// waysToWords widens a way-index slice for the opaque state encoding.
func waysToWords(ws []int) []uint32 {
	out := make([]uint32, len(ws))
	for i, w := range ws {
		out[i] = uint32(w)
	}
	return out
}

// wordsToPerm narrows words back to way indices, requiring an exact
// permutation of [0, ways) — the invariant both LRU order and FIFO queue
// maintain.
func wordsToPerm(st []uint32, ways int) ([]int, error) {
	if len(st) != ways {
		return nil, fmt.Errorf("want %d words, got %d", ways, len(st))
	}
	out := make([]int, ways)
	seen := make([]bool, ways)
	for i, w := range st {
		if int(w) >= ways || seen[w] {
			return nil, fmt.Errorf("words are not a permutation of [0,%d)", ways)
		}
		seen[w] = true
		out[i] = int(w)
	}
	return out, nil
}
