package cache

import (
	"fmt"

	"cache8t/internal/rng"
)

// PolicyKind selects a replacement policy.
type PolicyKind uint8

const (
	// LRU evicts the least recently used way (the paper's policy, §5.1).
	LRU PolicyKind = iota
	// FIFO evicts the oldest-filled way.
	FIFO
	// Random evicts a uniformly random way.
	Random
	// TreePLRU is the tree pseudo-LRU approximation common in hardware.
	TreePLRU
)

// String names the policy.
func (k PolicyKind) String() string {
	switch k {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	case TreePLRU:
		return "TreePLRU"
	default:
		return fmt.Sprintf("PolicyKind(%d)", uint8(k))
	}
}

// ParsePolicy converts a name (as used on CLI flags) to a PolicyKind.
func ParsePolicy(name string) (PolicyKind, error) {
	switch name {
	case "lru", "LRU":
		return LRU, nil
	case "fifo", "FIFO":
		return FIFO, nil
	case "random", "Random":
		return Random, nil
	case "plru", "PLRU", "treeplru", "TreePLRU":
		return TreePLRU, nil
	default:
		return 0, fmt.Errorf("cache: unknown replacement policy %q", name)
	}
}

// policy tracks replacement state for one set.
type policy interface {
	// Touch records a hit on way.
	Touch(way int)
	// Insert records a fill into way.
	Insert(way int)
	// Victim picks the way to evict.
	Victim() int
}

func newPolicy(kind PolicyKind, ways int, r *rng.Xoshiro256) policy {
	switch kind {
	case LRU:
		return newLRUState(ways)
	case FIFO:
		return newFIFOState(ways)
	case Random:
		return &randomState{ways: ways, r: r}
	case TreePLRU:
		return newPLRUState(ways)
	default:
		panic("cache: invalid policy kind")
	}
}

// lruState keeps ways ordered from most- to least-recently used.
type lruState struct {
	order []int // order[0] is MRU
}

func newLRUState(ways int) *lruState {
	s := &lruState{order: make([]int, ways)}
	for i := range s.order {
		s.order[i] = i
	}
	return s
}

func (s *lruState) moveToFront(way int) {
	for i, w := range s.order {
		if w == way {
			copy(s.order[1:i+1], s.order[:i])
			s.order[0] = way
			return
		}
	}
}

func (s *lruState) Touch(way int)  { s.moveToFront(way) }
func (s *lruState) Insert(way int) { s.moveToFront(way) }
func (s *lruState) Victim() int    { return s.order[len(s.order)-1] }

// fifoState evicts in fill order; hits do not refresh position.
type fifoState struct {
	queue []int
}

func newFIFOState(ways int) *fifoState {
	s := &fifoState{queue: make([]int, ways)}
	for i := range s.queue {
		s.queue[i] = i
	}
	return s
}

func (s *fifoState) Touch(int) {}

func (s *fifoState) Insert(way int) {
	for i, w := range s.queue {
		if w == way {
			copy(s.queue[i:], s.queue[i+1:])
			s.queue[len(s.queue)-1] = way
			return
		}
	}
}

func (s *fifoState) Victim() int { return s.queue[0] }

type randomState struct {
	ways int
	r    *rng.Xoshiro256
}

func (s *randomState) Touch(int)   {}
func (s *randomState) Insert(int)  {}
func (s *randomState) Victim() int { return s.r.Intn(s.ways) }

// plruState is a binary-tree pseudo-LRU: one bit per internal node pointing
// toward the colder half. Requires power-of-two ways (guaranteed by Geometry).
type plruState struct {
	bits []bool // heap-ordered internal nodes; len = ways-1
	ways int
}

func newPLRUState(ways int) *plruState {
	return &plruState{bits: make([]bool, ways-1), ways: ways}
}

// Touch flips the path bits away from way so the tree points elsewhere.
func (s *plruState) Touch(way int) {
	node := 0
	lo, hi := 0, s.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			s.bits[node] = true // point at the right (cold) half
			node = 2*node + 1
			hi = mid
		} else {
			s.bits[node] = false
			node = 2*node + 2
			lo = mid
		}
	}
}

func (s *plruState) Insert(way int) { s.Touch(way) }

// Victim follows the cold pointers to a leaf. A true bit means "the cold
// half is the right one" (set by Touch on a left-half hit), so Victim
// descends right on true and left on false.
func (s *plruState) Victim() int {
	node := 0
	lo, hi := 0, s.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s.bits[node] {
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}
