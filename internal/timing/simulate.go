package timing

import (
	"cache8t/internal/core"
)

// SimReport is the outcome of the cycle-accurate port simulation — the
// discrete counterpart of the analytic Report, with the same CPI semantics.
type SimReport struct {
	Instructions uint64
	Cycles       uint64
	// ReadStallCycles counts cycles the core waited on read data beyond
	// the issue cycle.
	ReadStallCycles uint64
	// PortConflictCycles counts cycles requests waited for a busy port.
	PortConflictCycles uint64
	// AvgReadLatency is issue-to-data for demand reads, in cycles.
	AvgReadLatency float64
}

// CPI returns simulated cycles per instruction.
func (r SimReport) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// Simulate replays a request-level operation log cycle by cycle against the
// 8T array's two ports.
//
// Machine model (deliberately simple and fully deterministic):
//
//   - An in-order core issues one instruction per cycle; the Gap preceding
//     each request advances time by that many cycles.
//   - The array has one read port and one write port (the 8T property).
//     Each row read holds the read port for one cycle; each row write holds
//     the write port for one cycle. A request needing both (an RMW) runs
//     its read phase first, then its write phase — during which time both
//     ports are serially occupied, which is exactly why RMW "makes
//     servicing one read and one write operation simultaneously
//     impossible" (§2).
//   - Demand reads block the core until data returns: port wait + access
//     latency (ArrayReadLatency for the array, SetBufLatency from the
//     Set-Buffer). Writes retire through a store buffer: the core moves on
//     after the issue cycle while the ports stay reserved.
func Simulate(ops []core.PortOp, params Params) (SimReport, error) {
	if err := params.Validate(); err != nil {
		return SimReport{}, err
	}
	var rep SimReport
	var now uint64 // core clock
	var readFree, writeFree uint64
	var readLatencySum uint64
	var reads uint64

	for _, op := range ops {
		now += uint64(op.Gap) // non-memory instructions
		rep.Instructions += uint64(op.Gap) + 1
		issue := now
		now++ // the memory instruction's own issue cycle

		// Port acquisition for the array work this request needs.
		start := issue
		if op.ReadRows > 0 && readFree > start {
			start = readFree
		}
		if op.WriteRows > 0 && writeFree > start {
			start = writeFree
		}
		if start > issue {
			rep.PortConflictCycles += start - issue
		}
		if op.ReadRows > 0 {
			readFree = start + uint64(op.ReadRows)
		}
		if op.WriteRows > 0 {
			// Write phases follow any read phase of the same request.
			writeFree = start + uint64(op.ReadRows) + uint64(op.WriteRows)
		}

		if op.IsRead {
			reads++
			var done uint64
			switch {
			case op.ReadRows > 0:
				done = start + uint64(params.ArrayReadLatency)
			case op.SetBufOps > 0:
				done = issue + uint64(params.SetBufLatency)
			default:
				done = issue + 1
			}
			lat := done - issue
			readLatencySum += lat
			if done > now {
				rep.ReadStallCycles += done - now
				now = done
			}
		}
		// Writes: the core does not wait; ports stay reserved via
		// readFree/writeFree.
	}
	rep.Cycles = now
	if rep.Cycles < rep.Instructions {
		rep.Cycles = rep.Instructions
	}
	if reads > 0 {
		rep.AvgReadLatency = float64(readLatencySum) / float64(reads)
	}
	return rep, nil
}
