// Package timing puts numbers on the paper's §5.5 performance commentary
// with a deterministic analytical model over a run's event counts.
//
// The model assumes an in-order core issuing one instruction per cycle, an
// 8T array whose separate read/write word lines allow one read and one write
// per cycle — except that an RMW's read phase occupies the read port, which
// is precisely the conflict the paper blames RMW for. Reads are on the
// critical path (their latency beyond one cycle stalls the core); writes are
// buffered and off the critical path, costing only port conflicts.
package timing

import (
	"fmt"

	"cache8t/internal/core"
)

// Params are the latency assumptions, in cycles.
type Params struct {
	// ArrayReadLatency is a demand read served by the SRAM array
	// (precharge + row read / sense).
	ArrayReadLatency int
	// SetBufLatency is a read served from the Set-Buffer (a latch row next
	// to the write drivers; §5.5: "access latency to the Set-Buffer is less
	// than the cache latency").
	SetBufLatency int
	// Subarrays is the bank count used to discount conflicts for
	// LocalRMW-style results (Park et al. contain the write-back to one
	// sub-array, so only reads targeting that bank conflict).
	Subarrays int
}

// DefaultParams returns the latencies used throughout the experiments:
// 2-cycle array reads, 1-cycle Set-Buffer hits, 4 sub-arrays.
func DefaultParams() Params {
	return Params{ArrayReadLatency: 2, SetBufLatency: 1, Subarrays: 4}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.ArrayReadLatency < 1:
		return fmt.Errorf("timing: ArrayReadLatency %d < 1", p.ArrayReadLatency)
	case p.SetBufLatency < 1:
		return fmt.Errorf("timing: SetBufLatency %d < 1", p.SetBufLatency)
	case p.SetBufLatency > p.ArrayReadLatency:
		return fmt.Errorf("timing: Set-Buffer slower than the array (%d > %d)",
			p.SetBufLatency, p.ArrayReadLatency)
	case p.Subarrays < 1:
		return fmt.Errorf("timing: Subarrays %d < 1", p.Subarrays)
	}
	return nil
}

// Report is the modeled performance of one run.
type Report struct {
	// Instructions is the ideal-core cycle count (1 IPC, zero-latency
	// memory).
	Instructions uint64
	// ReadStallCycles is the exposed read latency beyond one cycle.
	ReadStallCycles float64
	// ConflictStallCycles models demand reads delayed because a write-path
	// row read (RMW read phase or Set-Buffer fill) held the read port.
	ConflictStallCycles float64
	// Cycles is the modeled total.
	Cycles float64
	// AvgReadLatency is the mean demand-read latency in cycles.
	AvgReadLatency float64
	// ReadPortUtilization and WritePortUtilization are port-busy fractions
	// of total cycles.
	ReadPortUtilization  float64
	WritePortUtilization float64
}

// CPI returns modeled cycles per instruction.
func (r Report) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return r.Cycles / float64(r.Instructions)
}

// Speedup returns how much faster this report is than base (base CPI / CPI).
func (r Report) Speedup(base Report) float64 {
	if r.CPI() == 0 {
		return 0
	}
	return base.CPI() / r.CPI()
}

// Evaluate models the run described by res under params.
func Evaluate(res core.Result, params Params) (Report, error) {
	if err := params.Validate(); err != nil {
		return Report{}, err
	}
	instr := res.Requests.Instructions
	demandReads := res.Counters.DemandReads
	bypassed := res.Counters.BypassedReads
	arrayDemandReads := demandReads - bypassed

	rep := Report{Instructions: instr}

	// Exposed read latency: every demand read costs its latency; one cycle
	// of it is the issue slot already counted in Instructions.
	rep.ReadStallCycles = float64(arrayDemandReads)*float64(params.ArrayReadLatency-1) +
		float64(bypassed)*float64(params.SetBufLatency-1)
	if demandReads > 0 {
		rep.AvgReadLatency = (float64(arrayDemandReads)*float64(params.ArrayReadLatency) +
			float64(bypassed)*float64(params.SetBufLatency)) / float64(demandReads)
	}

	// Write-path row reads steal the read port from demand reads. Each one
	// collides with a demand read with probability equal to the demand-read
	// density; Park-style local write-back confines the collision to one of
	// Subarrays banks.
	writePathReads := res.Events.ReadPortBusy() - arrayDemandReads
	if instr > 0 {
		density := float64(demandReads) / float64(instr)
		conflicts := float64(writePathReads) * density
		if res.LocalWriteback {
			conflicts /= float64(params.Subarrays)
		}
		rep.ConflictStallCycles = conflicts
	}

	rep.Cycles = float64(instr) + rep.ReadStallCycles + rep.ConflictStallCycles
	if rep.Cycles > 0 {
		rep.ReadPortUtilization = float64(res.Events.ReadPortBusy()) / rep.Cycles
		rep.WritePortUtilization = float64(res.Events.WritePortBusy()) / rep.Cycles
	}
	return rep, nil
}
