package timing

import (
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

func runKind(t *testing.T, kind core.Kind, accs []trace.Access) core.Result {
	t.Helper()
	res, err := core.Run(kind, cache.DefaultConfig(), core.Options{}, trace.FromSlice(accs), 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func benchStream(t *testing.T, name string, n int) []trace.Access {
	t.Helper()
	p, err := workload.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	accs, err := workload.Take(p, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	return accs
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{ArrayReadLatency: 0, SetBufLatency: 1, Subarrays: 1},
		{ArrayReadLatency: 2, SetBufLatency: 0, Subarrays: 1},
		{ArrayReadLatency: 1, SetBufLatency: 2, Subarrays: 1},
		{ArrayReadLatency: 2, SetBufLatency: 1, Subarrays: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if _, err := Evaluate(core.Result{}, Params{}); err == nil {
		t.Error("Evaluate accepted zero params")
	}
}

func TestCPIOrderingAcrossControllers(t *testing.T) {
	// §5.5 quantified: RMW is the slowest (write-path port conflicts +
	// full-latency reads); WG removes most conflicts; WG+RB additionally
	// shortens read latency. Conventional 6T has no RMW at all.
	accs := benchStream(t, "bwaves", 100000)
	params := DefaultParams()
	cpi := map[core.Kind]float64{}
	for _, k := range []core.Kind{core.Conventional, core.RMW, core.LocalRMW, core.WG, core.WGRB} {
		rep, err := Evaluate(runKind(t, k, accs), params)
		if err != nil {
			t.Fatal(err)
		}
		cpi[k] = rep.CPI()
	}
	if !(cpi[core.WGRB] < cpi[core.WG]) {
		t.Errorf("WG+RB CPI %.4f not below WG %.4f", cpi[core.WGRB], cpi[core.WG])
	}
	if !(cpi[core.WG] < cpi[core.RMW]) {
		t.Errorf("WG CPI %.4f not below RMW %.4f", cpi[core.WG], cpi[core.RMW])
	}
	if !(cpi[core.LocalRMW] < cpi[core.RMW]) {
		t.Errorf("LocalRMW CPI %.4f not below RMW %.4f", cpi[core.LocalRMW], cpi[core.RMW])
	}
	if !(cpi[core.Conventional] < cpi[core.RMW]) {
		t.Errorf("Conventional CPI %.4f not below RMW %.4f", cpi[core.Conventional], cpi[core.RMW])
	}
	for k, v := range cpi {
		if v < 1 {
			t.Errorf("%v CPI %.4f below 1 (impossible for in-order issue)", k, v)
		}
	}
}

func TestAvgReadLatencyDropsWithBypass(t *testing.T) {
	accs := benchStream(t, "gamess", 100000) // read-bypass-friendly
	params := DefaultParams()
	wg, _ := Evaluate(runKind(t, core.WG, accs), params)
	rb, _ := Evaluate(runKind(t, core.WGRB, accs), params)
	if !(rb.AvgReadLatency < wg.AvgReadLatency) {
		t.Errorf("WG+RB avg read latency %.3f not below WG %.3f",
			rb.AvgReadLatency, wg.AvgReadLatency)
	}
	if wg.AvgReadLatency != float64(params.ArrayReadLatency) {
		t.Errorf("WG avg read latency %.3f, want %d (no bypass)",
			wg.AvgReadLatency, params.ArrayReadLatency)
	}
}

func TestConflictStallsComeFromWritePathReads(t *testing.T) {
	// A pure-read stream has zero conflict stalls under any controller.
	var reads []trace.Access
	for i := 0; i < 1000; i++ {
		reads = append(reads, trace.Access{Kind: trace.Read, Addr: uint64(i * 8), Size: 8, Gap: 2})
	}
	rep, err := Evaluate(runKind(t, core.RMW, reads), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConflictStallCycles != 0 {
		t.Errorf("pure-read stream has %f conflict stalls", rep.ConflictStallCycles)
	}
}

func TestReportDerived(t *testing.T) {
	r := Report{Instructions: 100, Cycles: 150}
	if r.CPI() != 1.5 {
		t.Errorf("CPI = %v", r.CPI())
	}
	base := Report{Instructions: 100, Cycles: 300}
	if got := r.Speedup(base); got != 2 {
		t.Errorf("Speedup = %v", got)
	}
	var zero Report
	if zero.CPI() != 0 || zero.Speedup(base) != 0 {
		t.Error("zero report derived values nonzero")
	}
}

func TestPortUtilizationBounds(t *testing.T) {
	accs := benchStream(t, "lbm", 50000)
	for _, k := range []core.Kind{core.RMW, core.WG, core.WGRB} {
		rep, err := Evaluate(runKind(t, k, accs), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if rep.ReadPortUtilization < 0 || rep.ReadPortUtilization > 1 {
			t.Errorf("%v read-port utilization %.3f out of [0,1]", k, rep.ReadPortUtilization)
		}
		if rep.WritePortUtilization < 0 || rep.WritePortUtilization > 1 {
			t.Errorf("%v write-port utilization %.3f out of [0,1]", k, rep.WritePortUtilization)
		}
	}
}

func TestWGImprovesReadPortAvailability(t *testing.T) {
	// §4.1: "Besides RMW operation frequency reduction, WG increases read
	// port availability."
	accs := benchStream(t, "bwaves", 100000)
	rmw, _ := Evaluate(runKind(t, core.RMW, accs), DefaultParams())
	wg, _ := Evaluate(runKind(t, core.WG, accs), DefaultParams())
	if !(wg.ReadPortUtilization < rmw.ReadPortUtilization) {
		t.Errorf("WG read-port utilization %.3f not below RMW %.3f",
			wg.ReadPortUtilization, rmw.ReadPortUtilization)
	}
}
