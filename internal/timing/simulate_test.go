package timing

import (
	"math"
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

func loggedRun(t *testing.T, kind core.Kind, accs []trace.Access) (core.Result, []core.PortOp) {
	t.Helper()
	res, log, err := core.RunLogged(kind, cache.DefaultConfig(), core.Options{}, trace.FromSlice(accs), 0)
	if err != nil {
		t.Fatal(err)
	}
	return res, log
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(nil, Params{}); err == nil {
		t.Fatal("zero params accepted")
	}
	rep, err := Simulate(nil, DefaultParams())
	if err != nil || rep.Cycles != 0 {
		t.Fatalf("empty simulation: %+v, %v", rep, err)
	}
}

func TestSimulateHandExample(t *testing.T) {
	// Two back-to-back RMW writes then a dependent read: the second write
	// must wait for the first's ports, and the read must wait for the
	// second write's read phase.
	ops := []core.PortOp{
		{IsRead: false, ReadRows: 1, WriteRows: 1}, // issue 0, read port 0-1, write port 1-2
		{IsRead: false, ReadRows: 1, WriteRows: 1}, // issue 1, waits: read port free at 1, write at 2 -> start 2
		{IsRead: true, ReadRows: 1, Gap: 0},        // issue 2, read port free at 3 -> start 3, done 5
	}
	rep, err := Simulate(ops, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instructions != 3 {
		t.Fatalf("instructions = %d", rep.Instructions)
	}
	if rep.PortConflictCycles != 2 {
		t.Fatalf("conflict cycles = %d, want 2 (1 for the write, 1 for the read)", rep.PortConflictCycles)
	}
	// Read issued at cycle 2, starts at 3, data at 3+2=5.
	if rep.AvgReadLatency != 3 {
		t.Fatalf("avg read latency = %v, want 3", rep.AvgReadLatency)
	}
	if rep.Cycles != 5 {
		t.Fatalf("cycles = %d, want 5", rep.Cycles)
	}
}

func TestSimulateGroupedWritesAreFree(t *testing.T) {
	// A grouped write (no array activity) never conflicts or stalls.
	ops := []core.PortOp{
		{IsRead: false, ReadRows: 1, WriteRows: 0}, // buffer fill
		{IsRead: false}, // grouped
		{IsRead: false}, // grouped
	}
	rep, err := Simulate(ops, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PortConflictCycles != 0 || rep.ReadStallCycles != 0 {
		t.Fatalf("grouped writes stalled: %+v", rep)
	}
	if rep.Cycles != 3 {
		t.Fatalf("cycles = %d, want 3 (pure issue)", rep.Cycles)
	}
}

func TestSimulateBypassedReadLatency(t *testing.T) {
	ops := []core.PortOp{
		{IsRead: true, SetBufOps: 1},
		{IsRead: true, ReadRows: 1},
	}
	p := DefaultParams()
	rep, err := Simulate(ops, p)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(p.SetBufLatency+p.ArrayReadLatency) / 2
	if rep.AvgReadLatency != want {
		t.Fatalf("avg read latency = %v, want %v", rep.AvgReadLatency, want)
	}
}

func TestRunLoggedMatchesResultTotals(t *testing.T) {
	p, err := workload.ProfileByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	accs, err := workload.Take(p, 1, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []core.Kind{core.RMW, core.WG, core.WGRB} {
		res, log := loggedRun(t, kind, accs)
		if len(log) != len(accs) {
			t.Fatalf("%v: %d ops for %d accesses", kind, len(log), len(accs))
		}
		var rr, ww uint64
		for _, op := range log {
			rr += uint64(op.ReadRows)
			ww += uint64(op.WriteRows)
		}
		// Finalize's buffer drain may add writes not attributed to any
		// request; everything else must reconcile exactly.
		if rr != res.ArrayReads {
			t.Errorf("%v: logged reads %d != result %d", kind, rr, res.ArrayReads)
		}
		if ww > res.ArrayWrites || res.ArrayWrites-ww > 1 {
			t.Errorf("%v: logged writes %d vs result %d", kind, ww, res.ArrayWrites)
		}
	}
}

func TestSimulatedOrderingMatchesAnalytic(t *testing.T) {
	// The discrete simulation and the analytic model must agree on the
	// §5.5 ordering: WG+RB < WG < RMW on cycles; and their CPIs should be
	// within a few percent of each other.
	p, err := workload.ProfileByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	accs, err := workload.Take(p, 1, 50000)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	cpiSim := map[core.Kind]float64{}
	cpiAna := map[core.Kind]float64{}
	for _, kind := range []core.Kind{core.RMW, core.WG, core.WGRB} {
		res, log := loggedRun(t, kind, accs)
		sim, err := Simulate(log, params)
		if err != nil {
			t.Fatal(err)
		}
		ana, err := Evaluate(res, params)
		if err != nil {
			t.Fatal(err)
		}
		cpiSim[kind] = sim.CPI()
		cpiAna[kind] = ana.CPI()
		if d := math.Abs(sim.CPI()-ana.CPI()) / ana.CPI(); d > 0.10 {
			t.Errorf("%v: simulated CPI %.4f vs analytic %.4f (%.1f%% apart)",
				kind, sim.CPI(), ana.CPI(), d*100)
		}
	}
	if !(cpiSim[core.WGRB] < cpiSim[core.WG] && cpiSim[core.WG] < cpiSim[core.RMW]) {
		t.Errorf("simulated CPI ordering violated: RMW %.4f WG %.4f WGRB %.4f",
			cpiSim[core.RMW], cpiSim[core.WG], cpiSim[core.WGRB])
	}
}

func TestSimulateCyclesNeverBelowInstructions(t *testing.T) {
	ops := []core.PortOp{{IsRead: false, Gap: 10}, {IsRead: false, Gap: 10}}
	rep, err := Simulate(ops, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles < rep.Instructions {
		t.Fatalf("cycles %d below instructions %d", rep.Cycles, rep.Instructions)
	}
}
