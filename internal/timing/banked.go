package timing

import (
	"fmt"

	"cache8t/internal/core"
)

// SimulateBanked is the sub-array-aware variant of Simulate, modeling Park
// et al.'s local write-back (§2): the array is split into banks with
// per-bank ports, so a write-path row operation only blocks requests that
// target the *same* bank. With localWriteback=false it degenerates to a
// single global port pair per operation type (the plain RMW organization,
// where the shared write-back drivers at the bottom of the global RBLs
// serialize everything).
func SimulateBanked(ops []core.PortOp, params Params, banks int, localWriteback bool) (SimReport, error) {
	if err := params.Validate(); err != nil {
		return SimReport{}, err
	}
	if banks < 1 {
		return SimReport{}, fmt.Errorf("timing: banks %d < 1", banks)
	}
	var rep SimReport
	var now uint64
	readFree := make([]uint64, banks)
	writeFree := make([]uint64, banks)
	var globalReadFree, globalWriteFree uint64
	var readLatencySum uint64
	var reads uint64

	for _, op := range ops {
		now += uint64(op.Gap)
		rep.Instructions += uint64(op.Gap) + 1
		issue := now
		now++

		bank := int(op.Bank) % banks
		start := issue
		if op.ReadRows > 0 {
			if localWriteback {
				if readFree[bank] > start {
					start = readFree[bank]
				}
			} else if globalReadFree > start {
				start = globalReadFree
			}
		}
		if op.WriteRows > 0 {
			if localWriteback {
				if writeFree[bank] > start {
					start = writeFree[bank]
				}
			} else if globalWriteFree > start {
				start = globalWriteFree
			}
		}
		if start > issue {
			rep.PortConflictCycles += start - issue
		}
		if op.ReadRows > 0 {
			end := start + uint64(op.ReadRows)
			if localWriteback {
				readFree[bank] = end
			} else {
				globalReadFree = end
			}
		}
		if op.WriteRows > 0 {
			end := start + uint64(op.ReadRows) + uint64(op.WriteRows)
			if localWriteback {
				writeFree[bank] = end
			} else {
				globalWriteFree = end
			}
		}

		if op.IsRead {
			reads++
			var done uint64
			switch {
			case op.ReadRows > 0:
				done = start + uint64(params.ArrayReadLatency)
			case op.SetBufOps > 0:
				done = issue + uint64(params.SetBufLatency)
			default:
				done = issue + 1
			}
			readLatencySum += done - issue
			if done > now {
				rep.ReadStallCycles += done - now
				now = done
			}
		}
	}
	rep.Cycles = now
	if rep.Cycles < rep.Instructions {
		rep.Cycles = rep.Instructions
	}
	if reads > 0 {
		rep.AvgReadLatency = float64(readLatencySum) / float64(reads)
	}
	return rep, nil
}
