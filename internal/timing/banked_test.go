package timing

import (
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

func TestSimulateBankedValidation(t *testing.T) {
	if _, err := SimulateBanked(nil, Params{}, 4, true); err == nil {
		t.Error("zero params accepted")
	}
	if _, err := SimulateBanked(nil, DefaultParams(), 0, true); err == nil {
		t.Error("zero banks accepted")
	}
}

func TestBankedResolvesCrossBankConflicts(t *testing.T) {
	// Two queued RMWs in bank 0 followed by a demand read in bank 1: with
	// global ports the backed-up write path delays the read; with
	// sub-array-local write-back the read's bank is idle.
	ops := []core.PortOp{
		{IsRead: false, ReadRows: 1, WriteRows: 1, Bank: 0},
		{IsRead: false, ReadRows: 1, WriteRows: 1, Bank: 0},
		{IsRead: true, ReadRows: 1, Bank: 1},
	}
	global, err := SimulateBanked(ops, DefaultParams(), 4, false)
	if err != nil {
		t.Fatal(err)
	}
	local, err := SimulateBanked(ops, DefaultParams(), 4, true)
	if err != nil {
		t.Fatal(err)
	}
	// Global: the second RMW waits a cycle for the write port, then the
	// read waits a cycle for the read port (same shape as the plain
	// simulator's hand example).
	if global.PortConflictCycles != 2 {
		t.Errorf("global conflicts = %d, want 2", global.PortConflictCycles)
	}
	// Local: only the same-bank write-write conflict survives.
	if local.PortConflictCycles != 1 {
		t.Errorf("local conflicts = %d, want 1", local.PortConflictCycles)
	}
	if local.Cycles >= global.Cycles {
		t.Errorf("local write-back not faster: %d vs %d cycles", local.Cycles, global.Cycles)
	}
}

func TestBankedSameBankStillConflicts(t *testing.T) {
	// Park et al.'s caveat: "the sub-array performing write-back is not
	// available to any other cache access" — a same-bank read gains
	// nothing from locality.
	ops := []core.PortOp{
		{IsRead: false, ReadRows: 1, WriteRows: 1, Bank: 2},
		{IsRead: false, ReadRows: 1, WriteRows: 1, Bank: 2},
		{IsRead: true, ReadRows: 1, Bank: 2},
	}
	local, err := SimulateBanked(ops, DefaultParams(), 4, true)
	if err != nil {
		t.Fatal(err)
	}
	global, err := SimulateBanked(ops, DefaultParams(), 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if local.PortConflictCycles != global.PortConflictCycles {
		t.Errorf("same-bank stream should see identical conflicts: local %d, global %d",
			local.PortConflictCycles, global.PortConflictCycles)
	}
	if local.PortConflictCycles == 0 {
		t.Error("same-bank read sailed through a busy sub-array")
	}
}

func TestBankedDegeneratesToSimulate(t *testing.T) {
	// With localWriteback=false the banked model must agree with the plain
	// simulator exactly.
	p, err := workload.ProfileByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	accs, err := workload.Take(p, 1, 20000)
	if err != nil {
		t.Fatal(err)
	}
	_, log, err := core.RunLogged(core.RMW, defaultCacheConfig(), core.Options{}, trace.FromSlice(accs), 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Simulate(log, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	banked, err := SimulateBanked(log, DefaultParams(), 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if plain != banked {
		t.Errorf("global banked run diverged from plain:\n%+v\n%+v", plain, banked)
	}
}

func TestLocalRMWBeatsRMWUnderBankedSimulation(t *testing.T) {
	// End to end: the Park et al. organization must show fewer conflict
	// cycles than plain RMW on a real workload, while plain WG+RB beats
	// both (it removes the write-path row reads altogether).
	p, err := workload.ProfileByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	accs, err := workload.Take(p, 1, 50000)
	if err != nil {
		t.Fatal(err)
	}
	run := func(kind core.Kind, local bool) SimReport {
		_, log, err := core.RunLogged(kind, defaultCacheConfig(), core.Options{}, trace.FromSlice(accs), 0)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := SimulateBanked(log, DefaultParams(), 4, local)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rmw := run(core.RMW, false)
	localRMW := run(core.LocalRMW, true)
	wgrb := run(core.WGRB, false)
	if localRMW.PortConflictCycles >= rmw.PortConflictCycles {
		t.Errorf("local write-back conflicts %d not below RMW %d",
			localRMW.PortConflictCycles, rmw.PortConflictCycles)
	}
	if !(wgrb.Cycles < localRMW.Cycles && localRMW.Cycles < rmw.Cycles) {
		t.Errorf("cycle ordering violated: RMW %d, LocalRMW %d, WG+RB %d",
			rmw.Cycles, localRMW.Cycles, wgrb.Cycles)
	}
}

func defaultCacheConfig() cache.Config { return cache.DefaultConfig() }
