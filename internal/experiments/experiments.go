// Package experiments regenerates every table and figure in the paper's
// evaluation (plus the ablations DESIGN.md calls out). Each experiment is a
// named runner producing a stats.Table whose rows are benchmarks and whose
// final rows carry the measured mean next to the paper's reported value, so
// paper-vs-measured comparison is part of the output itself.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/engine"
	"cache8t/internal/stats"
	"cache8t/internal/workload"
)

// Config scopes an experiment run.
type Config struct {
	// AccessesPerBench is the stream length simulated per benchmark. The
	// paper runs 10 B instructions per benchmark; our generators are
	// stationary, so a few hundred thousand accesses give stable statistics
	// (DESIGN.md §6).
	AccessesPerBench int
	// Seed drives every generator; same seed, same tables.
	Seed uint64
	// Cache is the baseline cache shape (§5.1: 64 KB, 4-way, 32 B, LRU).
	Cache cache.Config
	// Opts tunes the controllers.
	Opts core.Options
	// Workers bounds the engine fan-out used by the grid helpers (0 means
	// one per CPU). Tables are identical for every value — the engine
	// aggregates by submission index — so this is purely a speed knob.
	Workers int
	// Stream runs every benchmark from a freshly opened generator stream
	// instead of a materialized slice, so memory stays constant regardless of
	// AccessesPerBench. Generators are deterministic, so tables are
	// bit-identical in both modes; streaming trades the one-time generation
	// cost per re-open for the slice's footprint.
	Stream bool
	// Context, when non-nil, cancels in-flight simulations; cmd/figures
	// wires its -timeout flag here.
	Context context.Context
	// Shards, when > 1, runs each set-local controller as Shards concurrent
	// set-partitions (core.RunSharded). Controllers with cross-set state and
	// Random-policy caches fall back to the serial driver automatically, so
	// tables are bit-identical for every value — like Workers, purely a
	// speed knob.
	Shards int
}

// ctx returns the run's context, defaulting to Background.
func (c Config) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// Default returns the paper's baseline configuration.
func Default() Config {
	return Config{
		AccessesPerBench: 400_000,
		Seed:             1,
		Cache:            cache.DefaultConfig(),
	}
}

// geometry returns the configured cache geometry.
func (c Config) geometry() cache.Geometry {
	return cache.MustGeometry(c.Cache.SizeBytes, c.Cache.Ways, c.Cache.BlockBytes)
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the CLI handle: "fig3" ... "fig11", "rmw", "area", "perf",
	// "ablation-silent", "ablation-depth", "ablation-related".
	ID string
	// Title describes the artifact and its paper anchor.
	Title string
	// Run produces the table.
	Run func(Config) (*stats.Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig3", Title: "Figure 3: read/write access frequency per instruction", Run: Fig3},
		{ID: "fig4", Title: "Figure 4: consecutive same-set access scenarios", Run: Fig4},
		{ID: "fig5", Title: "Figure 5: silent write frequency", Run: Fig5},
		{ID: "rmw", Title: "§1/§5: RMW cache-access inflation over conventional writes", Run: RMWInflation},
		{ID: "fig8", Title: "Figure 8: worked request-stream example", Run: Fig8},
		{ID: "fig9", Title: "Figure 9: access reduction, 64KB/4w/32B", Run: Fig9},
		{ID: "fig10", Title: "Figure 10: access reduction, 32KB/4w/64B blocks", Run: Fig10},
		{ID: "fig11", Title: "Figure 11: access reduction vs cache size (32KB, 128KB)", Run: Fig11},
		{ID: "area", Title: "§5.4: area overhead of the Set-Buffer and Tag-Buffer", Run: Area},
		{ID: "perf", Title: "§5.5 quantified: timing and energy across controllers", Run: PerfPower},
		{ID: "ports", Title: "E9b: cycle-accurate port simulation vs analytic model", Run: Ports},
		{ID: "groups", Title: "write-group size distribution under WG", Run: Groups},
		{ID: "ecc", Title: "§2: bit interleaving vs multi-bit soft errors (SEC-DED)", Run: ECC},
		{ID: "mix", Title: "multiprogrammed mixes: context switches vs the Set-Buffer", Run: Mix},
		{ID: "dvfs", Title: "§1 quantified: governed cache energy, 6T wall vs 8T floor", Run: DVFS},
		{ID: "alloc", Title: "allocation-policy sensitivity (write-allocate vs write-around)", Run: Alloc},
		{ID: "fills", Title: "counting-convention sensitivity: include miss traffic", Run: Fills},
		{ID: "hier", Title: "two-level hierarchy: L2-visible traffic per L1 scheme", Run: Hier},
		{ID: "ablation-silent", Title: "A1: WG with silent-write elision disabled", Run: AblationSilent},
		{ID: "ablation-depth", Title: "A2: Set-Buffer depth sweep", Run: AblationDepth},
		{ID: "ablation-related", Title: "A3: related-work comparison (RMW/LocalRMW/WordGranularity/WG+RB)", Run: AblationRelated},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// sources builds one trace source per benchmark profile in cfg's mode:
// materialized (replayable cached slices) or streaming (fresh generators per
// open, constant memory).
func (c Config) sources() []*workload.Source {
	return workload.Sources(workload.Profiles(), c.Seed, c.AccessesPerBench, c.Stream)
}

// forEachBench runs fn over every benchmark profile with its trace source.
// In materialized mode the slices are generated up front through the engine
// (parallel across profiles) exactly as before sources existed; fn itself
// runs serially in profile order because the callers' closures append table
// rows in place.
func forEachBench(cfg Config, fn func(prof workload.Profile, src *workload.Source) error) error {
	srcs := cfg.sources()
	if !cfg.Stream {
		jobs := make([]engine.Job[int], len(srcs))
		for i, src := range srcs {
			src := src
			jobs[i] = engine.Job[int]{
				Label:  src.Profile().Name,
				Weight: int64(cfg.AccessesPerBench),
				Fn: func(context.Context) (int, error) {
					accs, err := src.Accesses()
					return len(accs), err
				},
			}
		}
		if _, err := engine.Map(cfg.ctx(), engine.Config{Workers: cfg.Workers}, jobs); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	for _, src := range srcs {
		if err := fn(src.Profile(), src); err != nil {
			return fmt.Errorf("experiments: %s: %w", src.Profile().Name, err)
		}
	}
	return nil
}

// benchMap fans fn out across the benchmark suite on the engine — one job
// per profile, covering both trace generation and simulation — and returns
// the per-benchmark values in profile order. It is the parallel counterpart
// of forEachBench for experiments whose per-benchmark work is pure, and the
// path the heavy reduction figures run on.
func benchMap[T any](cfg Config, fn func(prof workload.Profile, src *workload.Source) (T, error)) ([]T, error) {
	srcs := cfg.sources()
	jobs := make([]engine.Job[T], len(srcs))
	for i, src := range srcs {
		src := src
		jobs[i] = engine.Job[T]{
			Label:  src.Profile().Name,
			Weight: int64(cfg.AccessesPerBench),
			Fn: func(ctx context.Context) (T, error) {
				return fn(src.Profile(), src)
			},
		}
	}
	return engine.Map(cfg.ctx(), engine.Config{Workers: cfg.Workers}, jobs)
}

// runSource drives one controller kind over a fresh open of src on the
// batched streaming path. Materialized sources replay their cached slice
// (zero-copy batches), streaming sources regenerate; either way the result
// is identical.
func runSource(cfg Config, kind core.Kind, shape cache.Config, opts core.Options, src *workload.Source) (core.Result, error) {
	s, err := src.Stream()
	if err != nil {
		return core.Result{}, err
	}
	return core.RunShardedContext(cfg.ctx(), kind, shape, opts, s, 0, 0, cfg.Shards)
}

// runKinds drives several controller kinds over src. With sharding off the
// kinds share a single decode of the stream (core.RunEachStream broadcast);
// with Shards > 1 each kind instead runs set-sharded over its own fresh
// open. Either way results are identical to serial per-kind runs.
func runKinds(cfg Config, kinds []core.Kind, shape cache.Config, opts core.Options, src *workload.Source) ([]core.Result, error) {
	if cfg.Shards > 1 {
		out := make([]core.Result, len(kinds))
		for i, k := range kinds {
			res, err := runSource(cfg, k, shape, opts, src)
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}
	return core.RunEachStream(cfg.ctx(), kinds, shape, opts, src.Stream, 0, 0)
}

// reductions runs the benchmark trace through RMW, WG, and WG+RB over the
// given cache shape and returns the two access-frequency reductions. The
// three controllers run serially: callers already parallelize across
// benchmarks, the outer axis with 25-way width.
func reductions(cfg Config, shape cache.Config, src *workload.Source) (wg, wgrb float64, err error) {
	res, err := runKinds(cfg, []core.Kind{core.RMW, core.WG, core.WGRB}, shape, cfg.Opts, src)
	if err != nil {
		return 0, 0, err
	}
	base := res[0].ArrayAccesses()
	return stats.Reduction(res[1].ArrayAccesses(), base),
		stats.Reduction(res[2].ArrayAccesses(), base), nil
}
