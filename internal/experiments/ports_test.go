package experiments

import (
	"math"
	"strconv"
	"testing"

	"cache8t/internal/stats"
)

func cell(t *testing.T, tab *stats.Table, name string, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row(t, tab, name)[col], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPortsSimulatedVsAnalytic(t *testing.T) {
	cfg := testConfig()
	cfg.AccessesPerBench = 20_000
	tab, err := Ports(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"RMW", "LocalRMW", "WG", "WG+RB"} {
		sim := cell(t, tab, scheme, 1)
		ana := cell(t, tab, scheme, 2)
		if sim < 1 || ana < 1 {
			t.Errorf("%s: CPI below 1 (sim %.4f, ana %.4f)", scheme, sim, ana)
		}
		if d := math.Abs(sim-ana) / ana; d > 0.12 {
			t.Errorf("%s: models disagree by %.1f%% (sim %.4f, ana %.4f)", scheme, d*100, sim, ana)
		}
	}
	// Simulated orderings: WG+RB fastest, RMW slowest, RMW has the most
	// conflict cycles.
	if !(cell(t, tab, "WG+RB", 1) < cell(t, tab, "WG", 1) && cell(t, tab, "WG", 1) < cell(t, tab, "RMW", 1)) {
		t.Error("simulated CPI ordering violated")
	}
	if cell(t, tab, "RMW", 3) <= cell(t, tab, "WG+RB", 3) {
		t.Errorf("RMW conflict rate %.2f not above WG+RB %.2f",
			cell(t, tab, "RMW", 3), cell(t, tab, "WG+RB", 3))
	}
}

func TestGroupsDistribution(t *testing.T) {
	cfg := testConfig()
	cfg.AccessesPerBench = 20_000
	tab, err := Groups(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 26 {
		t.Fatalf("groups table has %d rows", len(tab.Rows))
	}
	// Shares per row sum to ~100%.
	for _, r := range tab.Rows {
		var sum float64
		for col := 1; col <= 5; col++ {
			sum += parsePct(t, r[col])
		}
		if math.Abs(sum-1) > 0.02 {
			t.Errorf("%s: group shares sum to %.3f", r[0], sum)
		}
	}
	// bwaves (long write bursts) must out-group mcf (pointer chaser).
	bw := cell(t, tab, "bwaves", 6)
	mcf := cell(t, tab, "mcf", 6)
	if bw <= mcf {
		t.Errorf("bwaves mean group %.2f not above mcf %.2f", bw, mcf)
	}
	if mean := cell(t, tab, "MEAN", 6); mean < 1 {
		t.Errorf("mean group size %.2f below 1", mean)
	}
}
