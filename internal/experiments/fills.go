package experiments

import (
	"cache8t/internal/core"
	"cache8t/internal/stats"
	"cache8t/internal/workload"
)

// Fills answers the natural reviewer question about the paper's counting
// convention: its Pin tool counts request traffic only, ignoring the array
// operations that miss handling performs (line fills are partial-row writes
// — themselves RMWs on an interleaved 8T array — and dirty evictions read
// the row out). This experiment re-runs Figure 9 with miss traffic counted
// and shows the reductions shrink but survive.
func Fills(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("Counting-convention sensitivity: reductions with miss traffic included",
		"counting", "WG", "WG+RB")
	for _, countFills := range []bool{false, true} {
		opts := cfg.Opts
		opts.CountFillTraffic = countFills
		var wgSum, rbSum float64
		n := 0
		err := forEachBench(cfg, func(prof workload.Profile, src *workload.Source) error {
			n++
			res, err := runKinds(cfg, []core.Kind{core.RMW, core.WG, core.WGRB}, cfg.Cache, opts, src)
			if err != nil {
				return err
			}
			base := res[0].ArrayAccesses()
			wgSum += stats.Reduction(res[1].ArrayAccesses(), base)
			rbSum += stats.Reduction(res[2].ArrayAccesses(), base)
			return nil
		})
		if err != nil {
			return nil, err
		}
		name := "requests only (paper)"
		if countFills {
			name = "requests + fills/evictions"
		}
		t.AddRowf(name, stats.Pct(wgSum/float64(n)), stats.Pct(rbSum/float64(n)))
	}
	return t, nil
}
