package experiments

import "testing"

func TestFillsExperiment(t *testing.T) {
	cfg := testConfig()
	cfg.AccessesPerBench = 40_000
	tab, err := Fills(cfg)
	if err != nil {
		t.Fatal(err)
	}
	paper := row(t, tab, "requests only (paper)")
	full := row(t, tab, "requests + fills/evictions")
	for col := 1; col <= 2; col++ {
		p := parsePct(t, paper[col])
		f := parsePct(t, full[col])
		if f >= p {
			t.Errorf("col %d: counting fills should shrink the reduction (%.3f vs %.3f)", col, f, p)
		}
		if f <= 0.1 {
			t.Errorf("col %d: reduction %.3f collapsed with fills counted", col, f)
		}
	}
}
