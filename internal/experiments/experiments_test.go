package experiments

import (
	"strconv"
	"strings"
	"testing"

	"cache8t/internal/stats"
)

// testConfig keeps runtimes modest; statistics are stationary so shapes
// already hold at this budget.
func testConfig() Config {
	cfg := Default()
	cfg.AccessesPerBench = 60_000
	return cfg
}

// parsePct turns "27.3%" into 0.273.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parsePct(%q): %v", s, err)
	}
	return v / 100
}

// row finds the first row whose first cell equals name.
func row(t *testing.T, tab *stats.Table, name string) []string {
	t.Helper()
	for _, r := range tab.Rows {
		if r[0] == name {
			return r
		}
	}
	t.Fatalf("table %q has no row %q", tab.Title, name)
	return nil
}

func TestRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%q) failed: %v", e.ID, err)
		}
	}
	if len(seen) != 21 {
		t.Errorf("registry has %d experiments, want 21", len(seen))
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestFig3Shape(t *testing.T) {
	tab, err := Fig3(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 25 benchmarks + measured mean + paper mean.
	if len(tab.Rows) != 27 {
		t.Fatalf("Fig3 has %d rows", len(tab.Rows))
	}
	mean := row(t, tab, "MEAN (measured)")
	reads := parsePct(t, mean[1])
	writes := parsePct(t, mean[2])
	if reads < 0.22 || reads > 0.30 {
		t.Errorf("mean reads %.3f outside anchor band around 0.26", reads)
	}
	if writes < 0.10 || writes > 0.18 {
		t.Errorf("mean writes %.3f outside anchor band around 0.14", writes)
	}
	bw := row(t, tab, "bwaves")
	if parsePct(t, bw[2]) < 0.22 {
		t.Errorf("bwaves writes %.3f, paper says > 22%%", parsePct(t, bw[2]))
	}
}

func TestFig4Shape(t *testing.T) {
	tab, err := Fig4(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	mean := row(t, tab, "MEAN (measured)")
	ss := parsePct(t, mean[5])
	if ss < 0.20 || ss > 0.40 {
		t.Errorf("mean same-set %.3f outside band around 0.27", ss)
	}
	// bwaves carries the largest WW share.
	bwWW := parsePct(t, row(t, tab, "bwaves")[4])
	for _, r := range tab.Rows[:25] {
		if r[0] == "bwaves" {
			continue
		}
		if ww := parsePct(t, r[4]); ww >= bwWW {
			t.Errorf("%s WW %.3f >= bwaves %.3f", r[0], ww, bwWW)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	tab, err := Fig5(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	mean := parsePct(t, row(t, tab, "MEAN (measured)")[1])
	if mean < 0.38 || mean > 0.50 {
		t.Errorf("mean silent %.3f outside band around 0.44", mean)
	}
	bw := parsePct(t, row(t, tab, "bwaves")[1])
	if bw < 0.72 || bw > 0.82 {
		t.Errorf("bwaves silent %.3f, paper ~0.77", bw)
	}
}

func TestRMWInflationShape(t *testing.T) {
	tab, err := RMWInflation(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	mean := parsePct(t, row(t, tab, "MEAN (measured)")[3])
	max := parsePct(t, row(t, tab, "MAX (measured)")[3])
	if mean < 0.25 || mean > 0.40 {
		t.Errorf("mean inflation %.3f outside band around 0.32", mean)
	}
	if max < mean {
		t.Errorf("max %.3f below mean %.3f", max, mean)
	}
	if max < 0.40 || max > 0.55 {
		t.Errorf("max inflation %.3f, paper 0.47", max)
	}
}

func TestFig8Totals(t *testing.T) {
	tab, err := Fig8(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"Conventional": "9",
		"RMW":          "13",
		"WG":           "9",
		"WG+RB":        "5",
	}
	for scheme, total := range want {
		if got := row(t, tab, scheme)[3]; got != total {
			t.Errorf("%s total = %s, want %s", scheme, got, total)
		}
	}
}

func meanReductions(t *testing.T, tab *stats.Table, wgCol, rbCol int) (wg, rb float64) {
	t.Helper()
	mean := row(t, tab, "MEAN (measured)")
	return parsePct(t, mean[wgCol]), parsePct(t, mean[rbCol])
}

func TestFig9Shape(t *testing.T) {
	tab, err := Fig9(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	wg, rb := meanReductions(t, tab, 1, 2)
	if wg < 0.22 || wg > 0.36 {
		t.Errorf("mean WG reduction %.3f outside band around paper 0.27", wg)
	}
	if rb < 0.28 || rb > 0.43 {
		t.Errorf("mean WG+RB reduction %.3f outside band around paper 0.33", rb)
	}
	if rb <= wg {
		t.Errorf("WG+RB %.3f not above WG %.3f", rb, wg)
	}
	// WG+RB beats WG on every benchmark (paper: "WG+RB outperforms WG in
	// all benchmarks"), and bwaves is the WG extreme (~47%).
	bwWG := parsePct(t, row(t, tab, "bwaves")[1])
	for _, r := range tab.Rows[:25] {
		rwg, rrb := parsePct(t, r[1]), parsePct(t, r[2])
		if rrb < rwg {
			t.Errorf("%s: WG+RB %.3f below WG %.3f", r[0], rrb, rwg)
		}
		if r[0] != "bwaves" && rwg >= bwWG {
			t.Errorf("%s WG %.3f >= bwaves %.3f", r[0], rwg, bwWG)
		}
	}
	if bwWG < 0.42 || bwWG > 0.56 {
		t.Errorf("bwaves WG reduction %.3f, paper 0.47", bwWG)
	}
}

func TestFig10BlockSizeHelps(t *testing.T) {
	cfg := testConfig()
	t9, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t10, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wg9, rb9 := meanReductions(t, t9, 1, 2)
	wg10, rb10 := meanReductions(t, t10, 1, 2)
	if wg10 <= wg9 {
		t.Errorf("64B blocks: WG %.3f not above 32B %.3f (paper: 29%% > 27%%)", wg10, wg9)
	}
	if rb10 <= rb9 {
		t.Errorf("64B blocks: WG+RB %.3f not above 32B %.3f (paper: 37%% > 33%%)", rb10, rb9)
	}
}

func TestFig11CacheSizeInsensitive(t *testing.T) {
	tab, err := Fig11(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	mean := row(t, tab, "MEAN (measured)")
	wg32, rb32 := parsePct(t, mean[1]), parsePct(t, mean[2])
	wg128, rb128 := parsePct(t, mean[3]), parsePct(t, mean[4])
	if d := wg32 - wg128; d < -0.02 || d > 0.02 {
		t.Errorf("WG cache-size delta %.4f, paper shows ~0.3 points", d)
	}
	if d := rb32 - rb128; d < -0.02 || d > 0.02 {
		t.Errorf("WG+RB cache-size delta %.4f, paper shows ~0.5 points", d)
	}
}

func TestAreaTable(t *testing.T) {
	tab, err := Area(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := row(t, tab, "Set-Buffer size")[1]; got != "128 B" {
		t.Errorf("Set-Buffer size = %s, want 128 B", got)
	}
	// The exact ratio is 1024/524288 = 0.195%, which renders as "0.2%".
	if got := parsePct(t, row(t, tab, "Set-Buffer / cache storage")[1]); got > 0.002 {
		t.Errorf("storage ratio %.4f, paper < 0.2%%", got)
	}
	bits := row(t, tab, "Tag-Buffer size")[1]
	if !strings.HasSuffix(bits, " bits") {
		t.Fatalf("Tag-Buffer row = %q", bits)
	}
	n, err := strconv.Atoi(strings.TrimSuffix(bits, " bits"))
	if err != nil || n >= 150 || n < 100 {
		t.Errorf("Tag-Buffer bits = %q, paper < 150", bits)
	}
}

func TestPerfPowerOrdering(t *testing.T) {
	tab, err := PerfPower(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cpi := func(name string) float64 {
		v, err := strconv.ParseFloat(row(t, tab, name)[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	nj := func(name string) float64 {
		v, err := strconv.ParseFloat(row(t, tab, name)[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if !(cpi("WG+RB") < cpi("WG") && cpi("WG") < cpi("RMW")) {
		t.Errorf("CPI ordering violated: RMW %.4f WG %.4f WG+RB %.4f",
			cpi("RMW"), cpi("WG"), cpi("WG+RB"))
	}
	if !(nj("WG+RB") < nj("WG") && nj("WG") < nj("RMW")) {
		t.Errorf("energy ordering violated: RMW %.4f WG %.4f WG+RB %.4f",
			nj("RMW"), nj("WG"), nj("WG+RB"))
	}
}

func TestAblationSilentContribution(t *testing.T) {
	tab, err := AblationSilent(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	mean := row(t, tab, "MEAN")
	on, off := parsePct(t, mean[1]), parsePct(t, mean[2])
	if on <= off {
		t.Errorf("silent elision contributes nothing: on %.3f, off %.3f", on, off)
	}
}

func TestAblationDepthMonotone(t *testing.T) {
	tab, err := AblationDepth(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	mean := row(t, tab, "MEAN")
	prev := -1.0
	for i := 1; i < len(mean); i++ {
		v := parsePct(t, mean[i])
		if v < prev-0.005 { // allow sub-half-point noise
			t.Errorf("depth sweep not monotone at column %d: %.3f after %.3f", i, v, prev)
		}
		prev = v
	}
}

func TestAblationRelatedRuns(t *testing.T) {
	tab, err := AblationRelated(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("related-work table has %d rows", len(tab.Rows))
	}
	acc := func(name string) float64 {
		v, err := strconv.ParseFloat(row(t, tab, name)[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Traffic: WordGranularity pays exactly 1 access per request (no RMW);
	// WG+RB drops below that because bypassed reads and grouped writes cost
	// zero array accesses; LocalRMW matches RMW on traffic.
	if !(acc("WG+RB") < acc("WordGranularity") && acc("WordGranularity") < acc("RMW")) {
		t.Errorf("traffic ordering violated: wgrb %.3f, word %.3f, rmw %.3f",
			acc("WG+RB"), acc("WordGranularity"), acc("RMW"))
	}
	if acc("LocalRMW") != acc("RMW") {
		t.Errorf("LocalRMW traffic %.3f != RMW %.3f", acc("LocalRMW"), acc("RMW"))
	}
	// A4: set-granular grouping beats the block-granular write buffer.
	if acc("WG") >= acc("Coalesce") {
		t.Errorf("WG traffic %.3f not below Coalesce %.3f", acc("WG"), acc("Coalesce"))
	}
}

func TestAllExperimentsRenderAndCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is slow")
	}
	cfg := testConfig()
	cfg.AccessesPerBench = 20_000
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			out := tab.String()
			if len(out) == 0 || !strings.Contains(out, tab.Columns[0]) {
				t.Error("empty render")
			}
			var b strings.Builder
			if err := tab.CSV(&b); err != nil {
				t.Fatal(err)
			}
		})
	}
}
