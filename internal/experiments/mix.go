package experiments

import (
	"fmt"

	"cache8t/internal/core"
	"cache8t/internal/stats"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

// Mix stresses the single-entry Set-Buffer with multiprogramming (an
// extension beyond the paper, which evaluates solo benchmarks): pairs of
// benchmarks share the cache in round-robin quanta, and the table reports
// WG+RB reduction for the solo mean, the mix at several context-switch
// quanta, and the mix with a 4-entry Set-Buffer (ablation A2's cure).
func Mix(cfg Config) (*stats.Table, error) {
	pairs := [][2]string{
		{"bwaves", "mcf"},
		{"lbm", "gcc"},
		{"wrf", "gamess"},
		{"hmmer", "astar"},
	}
	quanta := []int{10, 100, 1000}
	cols := []string{"pair", "solo mean"}
	for _, q := range quanta {
		cols = append(cols, fmt.Sprintf("mix q=%d", q))
	}
	cols = append(cols, "mix q=10, depth 4")
	t := stats.NewTable("Multiprogrammed mixes — WG+RB reduction vs RMW", cols...)

	reduction := func(accs []trace.Access, opts core.Options) (float64, error) {
		res, err := core.RunAll([]core.Kind{core.RMW, core.WGRB}, cfg.Cache, opts, accs)
		if err != nil {
			return 0, err
		}
		return stats.Reduction(res[1].ArrayAccesses(), res[0].ArrayAccesses()), nil
	}

	for _, pair := range pairs {
		var soloSum float64
		for _, name := range pair {
			gen, err := workload.Stream(name, cfg.Seed)
			if err != nil {
				return nil, err
			}
			accs := trace.Collect(trace.NewLimit(gen, uint64(cfg.AccessesPerBench)), 0)
			red, err := reduction(accs, cfg.Opts)
			if err != nil {
				return nil, err
			}
			soloSum += red
		}
		row := []any{pair[0] + "+" + pair[1], stats.Pct(soloSum / 2)}
		var smallQ []trace.Access
		for _, q := range quanta {
			m, err := workload.NewMixByNames(pair[:], cfg.Seed, q)
			if err != nil {
				return nil, err
			}
			accs := trace.Collect(trace.NewLimit(m, uint64(cfg.AccessesPerBench)), 0)
			if q == quanta[0] {
				smallQ = accs
			}
			red, err := reduction(accs, cfg.Opts)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.Pct(red))
		}
		deepOpts := cfg.Opts
		deepOpts.BufferDepth = 4
		deep, err := reduction(smallQ, deepOpts)
		if err != nil {
			return nil, err
		}
		row = append(row, stats.Pct(deep))
		t.AddRowf(row...)
	}
	return t, nil
}
