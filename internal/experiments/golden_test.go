package experiments

import "testing"

// Golden renders for the fully deterministic, workload-independent tables.
// These lock the exact output a user of cmd/figures sees, so accidental
// changes to counting or rendering surface immediately.

func TestFig8Golden(t *testing.T) {
	tab, err := Fig8(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := `Figure 8 — worked example: array accesses per scheme
scheme        array reads  array writes  total
----------------------------------------------
Conventional  5            4             9    
RMW           9            4             13   
WG            7            2             9    
WG+RB         4            1             5    
`
	if got := tab.String(); got != want {
		t.Errorf("Fig8 render changed:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestECCGolden(t *testing.T) {
	tab, err := ECC(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := `§2 — bit interleaving vs multi-bit soft errors (SEC-DED per 64-bit word)
interleave  max correctable burst (analytic)  fault-injection check  needs RMW for writes
-----------------------------------------------------------------------------------------
1           1 bits                            all words recovered    false               
2           2 bits                            all words recovered    true                
4           4 bits                            all words recovered    true                
8           8 bits                            all words recovered    true                
`
	if got := tab.String(); got != want {
		t.Errorf("ECC render changed:\n got:\n%s\nwant:\n%s", got, want)
	}
}
