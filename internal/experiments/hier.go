package experiments

import (
	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/hier"
	"cache8t/internal/stats"
	"cache8t/internal/workload"
)

// The two-level experiment quantifies what the paper's single-level figures
// deliberately abstract away: the traffic an L1 write scheme presents to the
// level below it. The functional refill/write-back stream is identical for
// every L1 controller (DESIGN.md §5's functional-equivalence invariant), so
// the only per-scheme component of the L2-visible total is the WG family's
// premature Set-Buffer write-backs — RMW and WG+RB sit at the functional
// floor, plain WG above it by exactly its premature count.

// HierL2Shape returns the default second-level shape the two-level
// experiment drives: 256 KB, 8-way, LRU, sharing the L1's block size (the
// same defaults internal/server applies to a bare `l2` spec block).
func HierL2Shape(l1 cache.Config) cache.Config {
	return cache.Config{
		SizeBytes:  256 * 1024,
		Ways:       8,
		BlockBytes: l1.BlockBytes,
		Policy:     cache.LRU,
	}
}

// HierKinds are the L1 schemes the two-level comparison runs, in column
// order: the RMW baseline and the two write-grouping variants.
func HierKinds() []core.Kind { return []core.Kind{core.RMW, core.WG, core.WGRB} }

// HierPoint is one benchmark's downstream traffic under one L1 scheme.
type HierPoint struct {
	// Refills/Writebacks/PrematureWBs split the event stream; the first two
	// are kind-independent, the third is the scheme's whole delta.
	Refills      uint64
	Writebacks   uint64
	PrematureWBs uint64
	// L2Visible is the total traffic presented downstream and PerRequest its
	// demand-normalized form.
	L2Visible  uint64
	PerRequest float64
	// L2ArrayAccesses is the second-level controller's own array total under
	// the synthesized stream.
	L2ArrayAccesses uint64
}

// HierRow groups one benchmark's points across the compared L1 schemes, in
// HierKinds order.
type HierRow struct {
	Points []HierPoint
}

// HierMatrix runs every benchmark through a two-level hierarchy once per L1
// scheme in HierKinds, fanned out across the engine, and returns rows in
// profile order. The L2 is HierL2Shape under an RMW controller throughout —
// the comparison varies only the L1 scheme. Hierarchy runs are serial by
// construction, so cfg.Shards does not apply; materialized and streaming
// sources produce identical rows like everywhere else.
func HierMatrix(cfg Config) ([]HierRow, error) {
	l2 := HierL2Shape(cfg.Cache)
	return benchMap(cfg, func(prof workload.Profile, src *workload.Source) (HierRow, error) {
		row := HierRow{Points: make([]HierPoint, 0, len(HierKinds()))}
		for _, k := range HierKinds() {
			s, err := src.Stream()
			if err != nil {
				return HierRow{}, err
			}
			res, err := hier.RunContext(cfg.ctx(), hier.Config{
				L1Kind: k,
				L1:     cfg.Cache,
				Opts:   cfg.Opts,
				L2Kind: core.RMW,
				L2:     l2,
			}, s, 0, 0)
			if err != nil {
				return HierRow{}, err
			}
			row.Points = append(row.Points, HierPoint{
				Refills:         res.Traffic.Refills,
				Writebacks:      res.Traffic.Writebacks,
				PrematureWBs:    res.Traffic.PrematureWBs,
				L2Visible:       res.L2Visible(),
				PerRequest:      res.L2VisiblePerRequest(),
				L2ArrayAccesses: res.L2.ArrayAccesses(),
			})
		}
		return row, nil
	})
}

// Hier renders the two-level comparison: per-benchmark L2-visible traffic
// per L1 scheme, with WG's surplus over the functional floor isolated in the
// final column.
func Hier(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("Two-level hierarchy — L2-visible traffic per L1 scheme (L2 256KB/8w RMW)",
		"benchmark", "RMW", "WG", "WG+RB", "WG premature WBs")
	rows, err := HierMatrix(cfg)
	if err != nil {
		return nil, err
	}
	var prem []float64
	for i, prof := range workload.Profiles() {
		p := rows[i].Points
		t.AddRowf(prof.Name, p[0].L2Visible, p[1].L2Visible, p[2].L2Visible, p[1].PrematureWBs)
		prem = append(prem, float64(p[1].PrematureWBs))
	}
	t.AddRowf("MEAN (measured)", "", "", "", stats.Mean(prem))
	return t, nil
}
