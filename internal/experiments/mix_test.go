package experiments

import "testing"

func TestMixExperiment(t *testing.T) {
	cfg := testConfig()
	cfg.AccessesPerBench = 40_000
	tab, err := Mix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("mix table has %d rows", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		solo := parsePct(t, r[1])
		q10 := parsePct(t, r[2])
		q1000 := parsePct(t, r[4])
		deep := parsePct(t, r[5])
		if q10 >= solo {
			t.Errorf("%s: q=10 mix %.3f not below solo %.3f", r[0], q10, solo)
		}
		if q1000 < q10 {
			t.Errorf("%s: longer quanta should recover reduction (q10 %.3f, q1000 %.3f)", r[0], q10, q1000)
		}
		if deep <= q10 {
			t.Errorf("%s: depth 4 %.3f did not beat depth 1 %.3f at q=10", r[0], deep, q10)
		}
	}
}
