package experiments

import "testing"

func TestDVFSExperiment(t *testing.T) {
	cfg := testConfig()
	cfg.AccessesPerBench = 40_000
	tab, err := DVFS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("dvfs table has %d rows", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		saving := parsePct(t, r[3])
		if saving <= 0.1 {
			t.Errorf("%s: 8T saving %.3f suspiciously small on a low-demand trace", r[0], saving)
		}
	}
	// The RMW row's absolute energies must exceed WG+RB's on both cells
	// (fewer array ops per request under WG+RB).
	for col := 1; col <= 2; col++ {
		rmw := cell(t, tab, "RMW", col)
		wgrb := cell(t, tab, "WG+RB", col)
		if rmw <= wgrb {
			t.Errorf("column %d: RMW energy %.4f not above WG+RB %.4f", col, rmw, wgrb)
		}
	}
}
