package experiments

import (
	"fmt"

	"cache8t/internal/core"
	"cache8t/internal/energy"
	"cache8t/internal/sram"
	"cache8t/internal/stats"
	"cache8t/internal/timing"
	"cache8t/internal/workload"
)

// Area reproduces §5.4: the Set-Buffer stores one cache set (128 B on the
// baseline, < 0.2% of the cache's storage) and the Tag-Buffer is under 150
// bits at a 48-bit physical address.
func Area(cfg Config) (*stats.Table, error) {
	g := cfg.geometry()
	const paBits = 48
	setBufBits := g.SetBytes() * 8
	tagBufBits := g.TagBufferBits(paBits)
	cacheBits := cfg.Cache.SizeBytes * 8
	t := stats.NewTable("§5.4 — storage and area overhead of WG/WG+RB ("+g.String()+", 48-bit PA)",
		"quantity", "value", "paper")
	t.AddRowf("Set-Buffer size", fmt.Sprintf("%d B", g.SetBytes()), "128 B (one set)")
	t.AddRowf("Set-Buffer / cache storage",
		stats.Pct(float64(setBufBits)/float64(cacheBits)), "< 0.2%")
	t.AddRowf("Tag-Buffer size", fmt.Sprintf("%d bits", tagBufBits), "< 150 bits")
	for _, node := range []int{65, 45, 32, 22} {
		rep, err := sram.ComputeArea(sram.EightT, node, cacheBits, setBufBits, tagBufBits)
		if err != nil {
			return nil, err
		}
		t.AddRowf(fmt.Sprintf("total added area @ %dnm (latch-sized)", node),
			stats.Pct(rep.TotalOverhead()), "not reported")
	}
	ratio45, err := sram.AreaRatio(45)
	if err != nil {
		return nil, err
	}
	ratio22, err := sram.AreaRatio(22)
	if err != nil {
		return nil, err
	}
	t.AddRowf("8T/6T cell area @45nm", fmt.Sprintf("%.2fx", ratio45), "compact beyond 45nm")
	t.AddRowf("8T/6T cell area @22nm", fmt.Sprintf("%.2fx", ratio22), "compact beyond 45nm")
	return t, nil
}

// PerfPower quantifies §5.5 with the timing and energy models: CPI, average
// read latency, read-port utilization, and energy per access for each
// controller, averaged across benchmarks at the nominal operating point.
func PerfPower(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("§5.5 quantified — timing and energy (mean over benchmarks, 1.0V/2000MHz)",
		"scheme", "CPI", "avg read latency", "read-port util", "nJ/access")
	kinds := []core.Kind{core.Conventional, core.RMW, core.LocalRMW, core.WG, core.WGRB}
	point := sram.OperatingPoint{VoltageV: 1.0, FreqMHz: 2000}
	tp := timing.DefaultParams()
	sums := make(map[core.Kind]*[4]float64)
	for _, k := range kinds {
		sums[k] = &[4]float64{}
	}
	n := 0
	err := forEachBench(cfg, func(prof workload.Profile, src *workload.Source) error {
		n++
		for _, k := range kinds {
			res, err := runSource(cfg, k, cfg.Cache, cfg.Opts, src)
			if err != nil {
				return err
			}
			trep, err := timing.Evaluate(res, tp)
			if err != nil {
				return err
			}
			erep, err := energy.Evaluate(res, point, tp)
			if err != nil {
				return err
			}
			s := sums[k]
			s[0] += trep.CPI()
			s[1] += trep.AvgReadLatency
			s[2] += trep.ReadPortUtilization
			s[3] += energy.PerAccessJ(erep, res.Requests.Accesses()) * 1e9
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, k := range kinds {
		s := sums[k]
		t.AddRowf(k.String(),
			fmt.Sprintf("%.4f", s[0]/float64(n)),
			fmt.Sprintf("%.3f", s[1]/float64(n)),
			stats.Pct(s[2]/float64(n)),
			fmt.Sprintf("%.4f", s[3]/float64(n)))
	}
	return t, nil
}

// AblationSilent isolates the Dirty-bit silent-write optimization (A1):
// WG with and without elision, mean reduction vs RMW.
func AblationSilent(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("A1 — contribution of silent-write elision to WG",
		"benchmark", "WG", "WG (no silent elision)", "delta")
	var on, off []float64
	err := forEachBench(cfg, func(prof workload.Profile, src *workload.Source) error {
		base, err := runSource(cfg, core.RMW, cfg.Cache, cfg.Opts, src)
		if err != nil {
			return err
		}
		wgOn, err := runSource(cfg, core.WG, cfg.Cache, cfg.Opts, src)
		if err != nil {
			return err
		}
		noSilent := cfg.Opts
		noSilent.DisableSilentElision = true
		wgOff, err := runSource(cfg, core.WG, cfg.Cache, noSilent, src)
		if err != nil {
			return err
		}
		rOn := stats.Reduction(wgOn.ArrayAccesses(), base.ArrayAccesses())
		rOff := stats.Reduction(wgOff.ArrayAccesses(), base.ArrayAccesses())
		t.AddRowf(prof.Name, stats.Pct(rOn), stats.Pct(rOff), stats.Pct(rOn-rOff))
		on = append(on, rOn)
		off = append(off, rOff)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRowf("MEAN", stats.Pct(stats.Mean(on)), stats.Pct(stats.Mean(off)),
		stats.Pct(stats.Mean(on)-stats.Mean(off)))
	return t, nil
}

// AblationDepth sweeps the Set-Buffer entry count (A2): the paper's buffer
// is a single entry; deeper buffers group write streams that interleave
// across sets.
func AblationDepth(cfg Config) (*stats.Table, error) {
	depths := []int{1, 2, 4, 8}
	cols := []string{"benchmark"}
	for _, d := range depths {
		cols = append(cols, fmt.Sprintf("WG+RB depth %d", d))
	}
	t := stats.NewTable("A2 — Set-Buffer depth sweep (reduction vs RMW)", cols...)
	sums := make([]float64, len(depths))
	n := 0
	err := forEachBench(cfg, func(prof workload.Profile, src *workload.Source) error {
		n++
		base, err := runSource(cfg, core.RMW, cfg.Cache, cfg.Opts, src)
		if err != nil {
			return err
		}
		row := []any{prof.Name}
		for i, d := range depths {
			opts := cfg.Opts
			opts.BufferDepth = d
			res, err := runSource(cfg, core.WGRB, cfg.Cache, opts, src)
			if err != nil {
				return err
			}
			red := stats.Reduction(res.ArrayAccesses(), base.ArrayAccesses())
			row = append(row, stats.Pct(red))
			sums[i] += red
		}
		t.AddRowf(row...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	mean := []any{"MEAN"}
	for _, s := range sums {
		mean = append(mean, stats.Pct(s/float64(n)))
	}
	t.AddRowf(mean...)
	return t, nil
}

// AblationRelated compares the paper's techniques with the related-work
// alternatives (§2): Park et al.'s sub-array-local RMW and Chang et al.'s
// word-granularity non-interleaved organization, on traffic, modeled CPI,
// and energy.
func AblationRelated(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("A3 — related-work comparison (mean over benchmarks)",
		"scheme", "array accesses / request", "CPI", "nJ/access", "caveat")
	kinds := []core.Kind{core.RMW, core.LocalRMW, core.WordGranularity, core.Coalesce, core.WG, core.WGRB}
	caveats := map[core.Kind]string{
		core.RMW:             "baseline",
		core.LocalRMW:        "sub-array busy during write-back",
		core.WordGranularity: "needs multi-bit ECC (no interleaving)",
		core.Coalesce:        "block-granular write buffer (A4)",
		core.WG:              "paper",
		core.WGRB:            "paper",
	}
	point := sram.OperatingPoint{VoltageV: 1.0, FreqMHz: 2000}
	tp := timing.DefaultParams()
	sums := make(map[core.Kind]*[3]float64)
	for _, k := range kinds {
		sums[k] = &[3]float64{}
	}
	n := 0
	err := forEachBench(cfg, func(prof workload.Profile, src *workload.Source) error {
		n++
		for _, k := range kinds {
			res, err := runSource(cfg, k, cfg.Cache, cfg.Opts, src)
			if err != nil {
				return err
			}
			trep, err := timing.Evaluate(res, tp)
			if err != nil {
				return err
			}
			erep, err := energy.Evaluate(res, point, tp)
			if err != nil {
				return err
			}
			s := sums[k]
			s[0] += res.AccessesPerRequest()
			s[1] += trep.CPI()
			s[2] += energy.PerAccessJ(erep, res.Requests.Accesses()) * 1e9
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, k := range kinds {
		s := sums[k]
		t.AddRowf(k.String(),
			fmt.Sprintf("%.3f", s[0]/float64(n)),
			fmt.Sprintf("%.4f", s[1]/float64(n)),
			fmt.Sprintf("%.4f", s[2]/float64(n)),
			caveats[k])
	}
	return t, nil
}
