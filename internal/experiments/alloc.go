package experiments

import (
	"fmt"

	"cache8t/internal/core"
	"cache8t/internal/stats"
	"cache8t/internal/workload"
)

// Alloc measures how the write-allocation policy changes the picture (an
// extension: the paper assumes write-allocate). Under no-write-allocate,
// missing stores bypass the array entirely, shrinking the RMW baseline —
// so both absolute traffic and the relative WG+RB reduction move. The table
// reports array accesses per request for RMW and WG+RB under both policies
// and the reduction each policy yields.
func Alloc(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("Allocation-policy sensitivity (mean over benchmarks)",
		"policy", "RMW acc/req", "WG+RB acc/req", "WG+RB reduction")
	for _, noAlloc := range []bool{false, true} {
		shape := cfg.Cache
		shape.NoWriteAllocate = noAlloc
		var rmwSum, rbSum, redSum float64
		n := 0
		err := forEachBench(cfg, func(prof workload.Profile, src *workload.Source) error {
			n++
			res, err := runKinds(cfg, []core.Kind{core.RMW, core.WGRB}, shape, cfg.Opts, src)
			if err != nil {
				return err
			}
			rmwSum += res[0].AccessesPerRequest()
			rbSum += res[1].AccessesPerRequest()
			redSum += stats.Reduction(res[1].ArrayAccesses(), res[0].ArrayAccesses())
			return nil
		})
		if err != nil {
			return nil, err
		}
		name := "write-allocate (paper)"
		if noAlloc {
			name = "no-write-allocate"
		}
		t.AddRowf(name,
			fmt.Sprintf("%.3f", rmwSum/float64(n)),
			fmt.Sprintf("%.3f", rbSum/float64(n)),
			stats.Pct(redSum/float64(n)))
	}
	return t, nil
}
