package experiments

import "testing"

func TestECCExperiment(t *testing.T) {
	tab, err := ECC(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("ecc table has %d rows", len(tab.Rows))
	}
	// Interleave k absorbs a k-bit burst; every fault injection recovers.
	want := map[string]string{"1": "1 bits", "2": "2 bits", "4": "4 bits", "8": "8 bits"}
	for il, burst := range want {
		r := row(t, tab, il)
		if r[1] != burst {
			t.Errorf("interleave %s: analytic burst %q, want %q", il, r[1], burst)
		}
		if r[2] != "all words recovered" {
			t.Errorf("interleave %s: fault injection %q", il, r[2])
		}
	}
	// The §2 tension: only the non-interleaved organization avoids RMW.
	if row(t, tab, "1")[3] != "false" {
		t.Error("non-interleaved array should not need RMW")
	}
	if row(t, tab, "4")[3] != "true" {
		t.Error("interleaved 8T array must need RMW")
	}
}
