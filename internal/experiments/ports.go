package experiments

import (
	"fmt"

	"cache8t/internal/core"
	"cache8t/internal/stats"
	"cache8t/internal/timing"
	"cache8t/internal/workload"
)

// Ports cross-validates the §5.5 performance story with the cycle-accurate
// port simulator: per controller, the mean simulated CPI next to the
// analytic model's CPI, plus simulated port-conflict cycles per
// kilo-instruction. The two models were built independently (closed-form
// expectation vs discrete replay), so their agreement is a check on both.
func Ports(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("E9b — cycle-accurate port simulation vs analytic model (means)",
		"scheme", "CPI (simulated)", "CPI (analytic)", "conflict cycles/kilo-instr", "avg read latency (sim)")
	kinds := []core.Kind{core.RMW, core.LocalRMW, core.WG, core.WGRB}
	params := timing.DefaultParams()
	type agg struct{ sim, ana, conf, lat float64 }
	sums := map[core.Kind]*agg{}
	for _, k := range kinds {
		sums[k] = &agg{}
	}
	n := 0
	err := forEachBench(cfg, func(prof workload.Profile, src *workload.Source) error {
		n++
		for _, k := range kinds {
			stream, err := src.Stream()
			if err != nil {
				return err
			}
			res, log, err := core.RunLogged(k, cfg.Cache, cfg.Opts, stream, 0)
			if err != nil {
				return err
			}
			sim, err := timing.SimulateBanked(log, params, params.Subarrays, res.LocalWriteback)
			if err != nil {
				return err
			}
			ana, err := timing.Evaluate(res, params)
			if err != nil {
				return err
			}
			s := sums[k]
			s.sim += sim.CPI()
			s.ana += ana.CPI()
			if sim.Instructions > 0 {
				s.conf += 1000 * float64(sim.PortConflictCycles) / float64(sim.Instructions)
			}
			s.lat += sim.AvgReadLatency
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, k := range kinds {
		s := sums[k]
		t.AddRowf(k.String(),
			fmt.Sprintf("%.4f", s.sim/float64(n)),
			fmt.Sprintf("%.4f", s.ana/float64(n)),
			fmt.Sprintf("%.2f", s.conf/float64(n)),
			fmt.Sprintf("%.3f", s.lat/float64(n)))
	}
	return t, nil
}

// Groups measures the write-group size distribution WG actually achieves —
// the direct quantification of "grouping write accesses ... during short
// intervals" (§4.1). Columns are the share of groups at each size, plus the
// mean buffered writes per group.
func Groups(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("Write-group size distribution under WG (per benchmark)",
		"benchmark", "1", "2", "3-4", "5-8", "9+", "mean writes/group")
	labels := 5
	var meanSum float64
	var totals [5]uint64
	n := 0
	err := forEachBench(cfg, func(prof workload.Profile, src *workload.Source) error {
		n++
		res, err := runSource(cfg, core.WG, cfg.Cache, cfg.Opts, src)
		if err != nil {
			return err
		}
		var groups uint64
		for _, g := range res.Counters.GroupSizes {
			groups += g
		}
		row := []any{prof.Name}
		for i := 0; i < labels; i++ {
			totals[i] += res.Counters.GroupSizes[i]
			row = append(row, stats.Pct(stats.Ratio(res.Counters.GroupSizes[i], groups)))
		}
		mean := res.Counters.MeanGroupSize()
		meanSum += mean
		row = append(row, fmt.Sprintf("%.2f", mean))
		t.AddRowf(row...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var grand uint64
	for _, v := range totals {
		grand += v
	}
	row := []any{"MEAN"}
	for i := 0; i < labels; i++ {
		row = append(row, stats.Pct(stats.Ratio(totals[i], grand)))
	}
	row = append(row, fmt.Sprintf("%.2f", meanSum/float64(n)))
	t.AddRowf(row...)
	return t, nil
}
