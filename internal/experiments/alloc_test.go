package experiments

import "testing"

func TestAllocExperiment(t *testing.T) {
	cfg := testConfig()
	cfg.AccessesPerBench = 40_000
	tab, err := Alloc(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("alloc table has %d rows", len(tab.Rows))
	}
	allocRMW := cell(t, tab, "write-allocate (paper)", 1)
	noAllocRMW := cell(t, tab, "no-write-allocate", 1)
	if noAllocRMW >= allocRMW {
		t.Errorf("no-allocate RMW traffic %.3f not below allocate %.3f", noAllocRMW, allocRMW)
	}
	for _, r := range tab.Rows {
		red := parsePct(t, r[3])
		if red <= 0.1 {
			t.Errorf("%s: WG+RB reduction %.3f suspiciously small", r[0], red)
		}
	}
}
