package experiments

import (
	"fmt"

	"cache8t/internal/core"
	"cache8t/internal/energy"
	"cache8t/internal/sram"
	"cache8t/internal/stats"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

// DVFS runs the §1 motivation end to end with the governor: a bursty demand
// trace is governed over a 12-level DVFS table, for each combination of
// cell (6T wall vs 8T) and write path (RMW tax vs WG+RB), using per-op
// energies measured from a real workload run. The bottom-right cell —
// 8T + WG+RB — is the paper's proposal; the table shows what each piece
// buys.
func DVFS(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("§1 quantified — governed cache energy on a bursty demand trace (mJ)",
		"write path", "6T cache", "8T cache", "8T saving")

	// Demand trace: mostly low demand with periodic bursts, the regime
	// DVFS exists for.
	var epochs []energy.Epoch
	for i := 0; i < 60; i++ {
		d := 0.2
		if i%12 < 2 {
			d = 0.95
		}
		epochs = append(epochs, energy.Epoch{DemandFrac: d, Ops: 200_000})
	}
	ap := sram.DefaultAlphaPower()
	levels, err := ap.Levels(sram.EightT.VminVolts(), 12)
	if err != nil {
		return nil, err
	}

	// Per-op energy at nominal from a representative workload run.
	prof, err := workload.ProfileByName("gcc")
	if err != nil {
		return nil, err
	}
	accs, err := workload.Take(prof, cfg.Seed, cfg.AccessesPerBench)
	if err != nil {
		return nil, err
	}
	for _, kind := range []core.Kind{core.RMW, core.WGRB} {
		res, err := core.Run(kind, cfg.Cache, cfg.Opts, trace.FromSlice(accs), 0)
		if err != nil {
			return nil, err
		}
		em, err := sram.NewEnergyModel(res.Events.Config(), 1.0)
		if err != nil {
			return nil, err
		}
		opE := em.DynamicEnergy(res.Events) / float64(res.Requests.Accesses())
		leakW := em.LeakagePower()
		six, err := energy.Govern(epochs, levels, sram.SixT, opE, leakW)
		if err != nil {
			return nil, err
		}
		eight, err := energy.Govern(epochs, levels, sram.EightT, opE, leakW)
		if err != nil {
			return nil, err
		}
		t.AddRowf(kind.String(),
			fmt.Sprintf("%.4f", six.EnergyJ*1e3),
			fmt.Sprintf("%.4f", eight.EnergyJ*1e3),
			stats.Pct(1-eight.EnergyJ/six.EnergyJ))
	}
	return t, nil
}
