package experiments

import (
	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/stats"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

// Fig3 reproduces Figure 3: read and write frequency as a fraction of
// executed instructions. Paper anchors: 26% reads / 14% writes on average;
// bwaves above 22% writes.
func Fig3(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("Figure 3 — memory access frequency (fraction of instructions)",
		"benchmark", "reads/instr", "writes/instr")
	g := cfg.geometry()
	var reads, writes []float64
	err := forEachBench(cfg, func(prof workload.Profile, src *workload.Source) error {
		s, err := src.Stream()
		if err != nil {
			return err
		}
		an := core.Analyze(s, g, 0)
		t.AddRowf(prof.Name, stats.Pct(an.Stats.ReadFrac()), stats.Pct(an.Stats.WriteFrac()))
		reads = append(reads, an.Stats.ReadFrac())
		writes = append(writes, an.Stats.WriteFrac())
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRowf("MEAN (measured)", stats.Pct(stats.Mean(reads)), stats.Pct(stats.Mean(writes)))
	t.AddRow("MEAN (paper)", "26.0%", "14.0%")
	return t, nil
}

// Fig4 reproduces Figure 4: the breakdown of consecutive accesses to the
// same cache set into RR/RW/WR/WW. Paper anchors: ~27% of consecutive
// accesses land in the same set on average; RR and WW dominate; bwaves has
// the largest WW share (~24%).
func Fig4(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("Figure 4 — consecutive same-set access scenarios (share of all pairs)",
		"benchmark", "RR", "RW", "WR", "WW", "same-set total")
	g := cfg.geometry()
	var rr, rw, wr, ww, ss []float64
	err := forEachBench(cfg, func(prof workload.Profile, src *workload.Source) error {
		s, err := src.Stream()
		if err != nil {
			return err
		}
		an := core.Analyze(s, g, 0)
		t.AddRowf(prof.Name, stats.Pct(an.RR()), stats.Pct(an.RW()),
			stats.Pct(an.WR()), stats.Pct(an.WW()), stats.Pct(an.SameSetFrac()))
		rr = append(rr, an.RR())
		rw = append(rw, an.RW())
		wr = append(wr, an.WR())
		ww = append(ww, an.WW())
		ss = append(ss, an.SameSetFrac())
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRowf("MEAN (measured)", stats.Pct(stats.Mean(rr)), stats.Pct(stats.Mean(rw)),
		stats.Pct(stats.Mean(wr)), stats.Pct(stats.Mean(ww)), stats.Pct(stats.Mean(ss)))
	t.AddRow("MEAN (paper)", "", "", "", "", "~27%")
	return t, nil
}

// Fig5 reproduces Figure 5: silent write frequency. Paper anchors: >42% of
// writes silent on average; bwaves ~77%.
func Fig5(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("Figure 5 — silent write frequency (share of writes)",
		"benchmark", "silent writes")
	g := cfg.geometry()
	var silent []float64
	err := forEachBench(cfg, func(prof workload.Profile, src *workload.Source) error {
		s, err := src.Stream()
		if err != nil {
			return err
		}
		an := core.Analyze(s, g, 0)
		t.AddRowf(prof.Name, stats.Pct(an.SilentFrac()))
		silent = append(silent, an.SilentFrac())
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRowf("MEAN (measured)", stats.Pct(stats.Mean(silent)))
	t.AddRow("MEAN (paper)", ">42%")
	return t, nil
}

// InflationRow is one benchmark's RMW-vs-conventional array traffic:
// absolute totals plus the relative increase, the §1 headline quantity.
type InflationRow struct {
	Conventional uint64
	RMW          uint64
	Increase     float64
}

// InflationMatrix runs every benchmark through the Conventional and RMW
// controllers on the baseline shape and returns rows in profile order. It is
// the machine-readable core of RMWInflation, shared with the regression
// harness so goldens pin exactly what the table prints.
func InflationMatrix(cfg Config) ([]InflationRow, error) {
	return benchMap(cfg, func(prof workload.Profile, src *workload.Source) (InflationRow, error) {
		res, err := runKinds(cfg, []core.Kind{core.Conventional, core.RMW}, cfg.Cache, cfg.Opts, src)
		if err != nil {
			return InflationRow{}, err
		}
		conv, rmw := res[0].ArrayAccesses(), res[1].ArrayAccesses()
		return InflationRow{
			Conventional: conv,
			RMW:          rmw,
			Increase:     float64(rmw)/float64(conv) - 1,
		}, nil
	})
}

// RMWInflation reproduces the §1 claim: "RMW increases cache access
// frequency by more than 32% on average (max 47%)" relative to a
// conventional write path.
func RMWInflation(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("RMW cache-access inflation vs conventional single-access writes",
		"benchmark", "conventional", "RMW", "increase")
	rows, err := InflationMatrix(cfg)
	if err != nil {
		return nil, err
	}
	var incs []float64
	for i, prof := range workload.Profiles() {
		r := rows[i]
		t.AddRowf(prof.Name, r.Conventional, r.RMW, stats.Pct(r.Increase))
		incs = append(incs, r.Increase)
	}
	t.AddRowf("MEAN (measured)", "", "", stats.Pct(stats.Mean(incs)))
	t.AddRowf("MAX (measured)", "", "", stats.Pct(stats.Max(incs)))
	t.AddRow("MEAN (paper)", "", "", ">32%")
	t.AddRow("MAX (paper)", "", "", "47%")
	return t, nil
}

// Fig8 reproduces the §4.3 worked example (see DESIGN.md E11 for the stream
// reconstruction): array-access totals per controller for the literal
// request stream Ra Wb Wb Rb Rb Wb Wa Rb Ra with a silent Wa.
func Fig8(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("Figure 8 — worked example: array accesses per scheme",
		"scheme", "array reads", "array writes", "total")
	stream := Fig8Stream(cfg.geometry())
	for _, k := range []core.Kind{core.Conventional, core.RMW, core.WG, core.WGRB} {
		res, err := core.Run(k, cfg.Cache, cfg.Opts, trace.FromSlice(stream), 0)
		if err != nil {
			return nil, err
		}
		t.AddRowf(k.String(), res.ArrayReads, res.ArrayWrites, res.ArrayAccesses())
	}
	return t, nil
}

// Fig8Stream is the reconstructed §4.3 example stream over two sets a and b.
func Fig8Stream(g cache.Geometry) []trace.Access {
	addrA := uint64(0)
	addrB := uint64(g.BlockBytes)
	r := func(addr uint64) trace.Access {
		return trace.Access{Kind: trace.Read, Addr: addr, Size: 4}
	}
	w := func(addr, val uint64) trace.Access {
		return trace.Access{Kind: trace.Write, Addr: addr, Size: 4, Data: val}
	}
	return []trace.Access{
		r(addrA), w(addrB, 1), w(addrB, 2), r(addrB), r(addrB),
		w(addrB, 3), w(addrA, 0), r(addrB), r(addrA),
	}
}

// ReductionPair is one benchmark's WG and WG+RB access-frequency reductions
// versus the RMW baseline — the quantity Figures 9-11 chart.
type ReductionPair struct{ WG, WGRB float64 }

// ReductionMatrix runs every benchmark through RMW/WG/WGRB over the given
// cache shape and returns the reduction pairs in profile order, fanned out
// across the engine. Figures 9-11 and cmd/regress both build on it, so the
// golden artifacts pin exactly the numbers the tables print.
func ReductionMatrix(cfg Config, shape cache.Config) ([]ReductionPair, error) {
	return benchMap(cfg, func(prof workload.Profile, src *workload.Source) (ReductionPair, error) {
		wg, rb, err := reductions(cfg, shape, src)
		return ReductionPair{WG: wg, WGRB: rb}, err
	})
}

// reductionFigure builds a Figure 9/10-style table for one cache shape. The
// 25 benchmarks fan out across the engine; rows land in profile order.
func reductionFigure(cfg Config, title string, shape cache.Config, paperWG, paperRB string) (*stats.Table, error) {
	pairs, err := ReductionMatrix(cfg, shape)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(title, "benchmark", "WG", "WG+RB")
	var wgs, rbs []float64
	for i, prof := range workload.Profiles() {
		t.AddRowf(prof.Name, stats.Pct(pairs[i].WG), stats.Pct(pairs[i].WGRB))
		wgs = append(wgs, pairs[i].WG)
		rbs = append(rbs, pairs[i].WGRB)
	}
	t.AddRowf("MEAN (measured)", stats.Pct(stats.Mean(wgs)), stats.Pct(stats.Mean(rbs)))
	t.AddRow("MEAN (paper)", paperWG, paperRB)
	return t, nil
}

// Fig9 reproduces Figure 9: cache access frequency reduction on the
// baseline 64 KB / 4-way / 32 B cache. Paper: WG 27%, WG+RB 33% on average;
// bwaves up to 47% under WG.
func Fig9(cfg Config) (*stats.Table, error) {
	return reductionFigure(cfg,
		"Figure 9 — access-frequency reduction vs RMW (64KB/4w/32B)",
		cfg.Cache, "27%", "33%")
}

// Fig10 reproduces Figure 10: the same reduction with a 32 KB cache and
// 64 B blocks. Paper: WG 29%, WG+RB 37% — larger blocks raise Set-Buffer
// hit rates.
func Fig10(cfg Config) (*stats.Table, error) {
	shape := cfg.Cache
	shape.SizeBytes = 32 * 1024
	shape.BlockBytes = 64
	return reductionFigure(cfg,
		"Figure 10 — access-frequency reduction vs RMW (32KB/4w/64B)",
		shape, "29%", "37%")
}

// Fig11 reproduces Figure 11: reduction at 32 KB and 128 KB capacities with
// 32 B blocks. Paper: WG 26.9%/26.6% and WG+RB 32.6%/32.1% — essentially
// insensitive to capacity.
func Fig11(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("Figure 11 — access-frequency reduction vs cache size (4w/32B)",
		"benchmark", "WG 32KB", "WG+RB 32KB", "WG 128KB", "WG+RB 128KB")
	small := cfg.Cache
	small.SizeBytes = 32 * 1024
	big := cfg.Cache
	big.SizeBytes = 128 * 1024
	pairs, err := benchMap(cfg, func(prof workload.Profile, src *workload.Source) ([2]ReductionPair, error) {
		ws, rs, err := reductions(cfg, small, src)
		if err != nil {
			return [2]ReductionPair{}, err
		}
		wb, rb, err := reductions(cfg, big, src)
		if err != nil {
			return [2]ReductionPair{}, err
		}
		return [2]ReductionPair{{ws, rs}, {wb, rb}}, nil
	})
	if err != nil {
		return nil, err
	}
	var wgS, rbS, wgB, rbB []float64
	for i, prof := range workload.Profiles() {
		sm, bg := pairs[i][0], pairs[i][1]
		t.AddRowf(prof.Name, stats.Pct(sm.WG), stats.Pct(sm.WGRB), stats.Pct(bg.WG), stats.Pct(bg.WGRB))
		wgS = append(wgS, sm.WG)
		rbS = append(rbS, sm.WGRB)
		wgB = append(wgB, bg.WG)
		rbB = append(rbB, bg.WGRB)
	}
	t.AddRowf("MEAN (measured)", stats.Pct(stats.Mean(wgS)), stats.Pct(stats.Mean(rbS)),
		stats.Pct(stats.Mean(wgB)), stats.Pct(stats.Mean(rbB)))
	t.AddRow("MEAN (paper)", "26.9%", "32.6%", "26.6%", "32.1%")
	return t, nil
}
