package experiments

import (
	"testing"

	"cache8t/internal/workload"
)

// TestHierMatrixFloor pins the two-level experiment's core claim on every
// benchmark: the functional refill/write-back stream is identical across L1
// schemes, so RMW and WG+RB share the L2-visible floor and plain WG sits
// above it by exactly its premature write-backs.
func TestHierMatrixFloor(t *testing.T) {
	cfg := testConfig()
	cfg.AccessesPerBench = 20_000
	rows, err := HierMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	profs := workload.Profiles()
	if len(rows) != len(profs) {
		t.Fatalf("got %d rows, want %d", len(rows), len(profs))
	}
	var sawPremature bool
	for i, row := range rows {
		name := profs[i].Name
		if len(row.Points) != len(HierKinds()) {
			t.Fatalf("%s: got %d points, want %d", name, len(row.Points), len(HierKinds()))
		}
		rmw, wg, wgrb := row.Points[0], row.Points[1], row.Points[2]
		for _, p := range row.Points {
			if p.Refills != rmw.Refills || p.Writebacks != rmw.Writebacks {
				t.Errorf("%s: functional stream diverged across kinds: %+v vs %+v", name, p, rmw)
			}
		}
		if rmw.PrematureWBs != 0 || wgrb.PrematureWBs != 0 {
			t.Errorf("%s: RMW/WGRB premature WBs %d/%d, want 0", name, rmw.PrematureWBs, wgrb.PrematureWBs)
		}
		if wg.L2Visible != rmw.L2Visible+wg.PrematureWBs {
			t.Errorf("%s: WG L2-visible %d != floor %d + premature %d", name, wg.L2Visible, rmw.L2Visible, wg.PrematureWBs)
		}
		if wgrb.L2Visible != rmw.L2Visible {
			t.Errorf("%s: WGRB L2-visible %d != RMW %d", name, wgrb.L2Visible, rmw.L2Visible)
		}
		if wg.PrematureWBs > 0 {
			sawPremature = true
		}
	}
	if !sawPremature {
		t.Error("no benchmark produced premature write-backs; WG's delta is untested")
	}
}

// TestHierTableShape checks the rendered experiment: 25 benchmark rows plus
// the measured mean.
func TestHierTableShape(t *testing.T) {
	cfg := testConfig()
	cfg.AccessesPerBench = 5_000
	tab, err := Hier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(workload.Profiles()) + 1; len(tab.Rows) != want {
		t.Fatalf("Hier has %d rows, want %d", len(tab.Rows), want)
	}
	row(t, tab, "MEAN (measured)")
}
