package experiments

import (
	"fmt"

	"cache8t/internal/sram"
	"cache8t/internal/stats"
)

// ECC quantifies the §2 motivation chain: bit interleaving exists so that
// SEC-DED per word survives spatially clustered soft-error bursts, and that
// same interleaving is what creates the column-selection problem RMW (and
// the paper's WG/WG+RB) exists to manage. The table reports, for each
// interleaving degree, the widest adjacent-bit burst that per-word SEC-DED
// still corrects, cross-checked by fault injection on the bit-level array.
func ECC(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("§2 — bit interleaving vs multi-bit soft errors (SEC-DED per 64-bit word)",
		"interleave", "max correctable burst (analytic)", "fault-injection check", "needs RMW for writes")
	for _, il := range []int{1, 2, 4, 8} {
		maxBurst := 0
		for width := 1; width <= 2*il; width++ {
			o, err := sram.BurstImpact(il, width)
			if err != nil {
				return nil, err
			}
			if o.Correctable {
				maxBurst = width
			}
		}
		check, err := injectAndDecode(il, maxBurst)
		if err != nil {
			return nil, err
		}
		arrCfg := sram.ArrayConfig{
			Cell: sram.EightT, Rows: 4, Cols: 64 * il, Interleave: il, Subarrays: 1,
		}
		t.AddRowf(fmt.Sprintf("%d", il), fmt.Sprintf("%d bits", maxBurst), check,
			fmt.Sprintf("%v", arrCfg.NeedsRMW()))
	}
	return t, nil
}

// injectAndDecode writes known words into a bit-level row, injects a burst
// of the given width, and reports whether per-word SEC-DED recovered every
// word.
func injectAndDecode(interleave, width int) (string, error) {
	cfg := sram.ArrayConfig{
		Cell: sram.EightT, Rows: 4, Cols: 64 * interleave, Interleave: interleave, Subarrays: 1,
	}
	arr, err := sram.NewBitArray(cfg, 1)
	if err != nil {
		return "", err
	}
	vals := make([]uint64, interleave)
	codes := make([]sram.ECCWord, interleave)
	for w := range vals {
		vals[w] = 0x0123456789abcdef * uint64(w+1)
		if err := arr.ReadRowToLatches(0); err != nil {
			return "", err
		}
		if err := arr.WriteWordRMW(0, w, bitsOfWord(vals[w], 64)); err != nil {
			return "", err
		}
		codes[w] = sram.ECCEncode(vals[w])
	}
	if _, err := arr.InjectUpset(0, 0, width); err != nil {
		return "", err
	}
	for w := range vals {
		stored, err := arr.ReadWord(0, w)
		if err != nil {
			return "", err
		}
		code := codes[w]
		code.Data = wordOfBits(stored)
		got, status := sram.ECCDecode(code)
		if status == sram.ECCDetected || got != vals[w] {
			return fmt.Sprintf("FAILED at word %d (%v)", w, status), nil
		}
	}
	return "all words recovered", nil
}

func bitsOfWord(v uint64, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = v>>i&1 == 1
	}
	return out
}

func wordOfBits(bs []bool) uint64 {
	var v uint64
	for i, b := range bs {
		if b {
			v |= 1 << i
		}
	}
	return v
}
