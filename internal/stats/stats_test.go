package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{2, 4, 6}); !almost(got, 4) {
		t.Errorf("Mean = %v, want 4", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almost(got, 10) {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	// Non-positive values are skipped.
	if got := GeoMean([]float64{0, 1, 100}); !almost(got, 10) {
		t.Errorf("GeoMean with zero = %v, want 10", got)
	}
	if got := GeoMean([]float64{0, -3}); got != 0 {
		t.Errorf("GeoMean all-nonpositive = %v, want 0", got)
	}
}

func TestMinMaxStddev(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if got := Stddev([]float64{2, 2, 2}); !almost(got, 0) {
		t.Errorf("Stddev constant = %v", got)
	}
	if got := Stddev([]float64{1, 3}); !almost(got, 1) {
		t.Errorf("Stddev = %v, want 1", got)
	}
}

func TestPercentAndRatio(t *testing.T) {
	if got := Percent(0.273); got != "27.3%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Ratio(1, 0); got != 0 {
		t.Errorf("Ratio div-by-zero = %v", got)
	}
	if got := Ratio(3, 4); !almost(got, 0.75) {
		t.Errorf("Ratio = %v", got)
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(73, 100); !almost(got, 0.27) {
		t.Errorf("Reduction = %v, want 0.27", got)
	}
	if got := Reduction(100, 0); got != 0 {
		t.Errorf("Reduction zero-before = %v", got)
	}
	if got := Reduction(120, 100); !almost(got, -0.2) {
		t.Errorf("Reduction inflation = %v, want -0.2", got)
	}
}

func TestSetOrderAndMerge(t *testing.T) {
	s := NewSet()
	s.Inc("b")
	s.Add("a", 5)
	s.Inc("b")
	cs := s.Counters()
	if len(cs) != 2 || cs[0].Name != "b" || cs[0].Value != 2 || cs[1].Name != "a" || cs[1].Value != 5 {
		t.Fatalf("Counters = %+v", cs)
	}
	other := NewSet()
	other.Add("a", 1)
	other.Add("c", 7)
	s.Merge(other)
	if s.Get("a") != 6 || s.Get("c") != 7 {
		t.Fatalf("after merge: a=%d c=%d", s.Get("a"), s.Get("c"))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); !almost(got, 3) {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(xs, 0.25); !almost(got, 2) {
		t.Errorf("q25 = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5)
	}
	h.Observe(-1)
	h.Observe(10)
	h.Observe(11)
	if h.Count() != 13 {
		t.Errorf("Count = %d", h.Count())
	}
	for i := 0; i < h.Buckets(); i++ {
		if h.Bucket(i) != 1 {
			t.Errorf("bucket %d = %d, want 1", i, h.Bucket(i))
		}
	}
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Errorf("outliers = %d/%d", under, over)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "Bench", "Value")
	tab.AddRow("bwaves", "47.0%")
	tab.AddRowf("mcf", Pct(0.205))
	out := tab.String()
	for _, want := range []string{"Demo", "Bench", "bwaves", "47.0%", "mcf", "20.5%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Errorf("line count = %d: %q", len(lines), lines)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("x,y", `say "hi"`)
	var b strings.Builder
	if err := tab.CSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestBars(t *testing.T) {
	out := Bars("t", []string{"aa", "b"}, []float64{1, 0.5}, 10)
	if !strings.Contains(out, "##########") {
		t.Errorf("full bar missing:\n%s", out)
	}
	if !strings.Contains(out, "#####") || !strings.Contains(out, "50.0%") {
		t.Errorf("half bar missing:\n%s", out)
	}
	// Over-unity and negative ratios are clamped.
	out = Bars("", []string{"x", "y"}, []float64{2, -1}, 4)
	if !strings.Contains(out, "####") || !strings.Contains(out, "0.0%") {
		t.Errorf("clamping failed:\n%s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := NewTable("Demo", "a", "b")
	tab.AddRow("x|y", "2")
	var b strings.Builder
	if err := tab.Markdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"**Demo**", "| a | b |", "|---|---|", `x\|y`} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
