package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table with an optional title. It is
// the rendering vehicle for every reproduced figure and table: each paper
// figure becomes one Table whose rows are benchmarks and whose columns are
// the series in the figure.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Cells beyond the column count are dropped; missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row where each cell is produced by fmt.Sprint on the
// corresponding value, formatting floats as percentages when they arrive as
// the Pct wrapper type.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case Pct:
			row = append(row, Percent(float64(v)))
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		default:
			row = append(row, fmt.Sprint(c))
		}
	}
	t.AddRow(row...)
}

// Pct marks a float64 as a 0..1 ratio to be rendered as a percentage.
type Pct float64

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		// strings.Builder writes cannot fail; keep the error path honest.
		return err.Error()
	}
	return b.String()
}

// CSV writes the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV(w io.Writer) error {
	writeRec := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRec(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRec(row); err != nil {
			return err
		}
	}
	return nil
}

// Bars renders a horizontal ASCII bar chart for a set of labeled 0..1 ratios,
// imitating the bar-per-benchmark figures in the paper. width is the length
// of a 100% bar.
func Bars(title string, labels []string, ratios []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, l := range labels {
		r := 0.0
		if i < len(ratios) {
			r = ratios[i]
		}
		if r < 0 {
			r = 0
		}
		n := int(r*float64(width) + 0.5)
		if n > width {
			n = width
		}
		fmt.Fprintf(&b, "%-*s |%s%s %s\n", labelWidth, l,
			strings.Repeat("#", n), strings.Repeat(" ", width-n), Percent(r))
	}
	return b.String()
}

// Markdown writes the table as a GitHub-flavored markdown table (title as a
// bold caption line when present).
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("**")
		b.WriteString(t.Title)
		b.WriteString("**\n\n")
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	b.WriteString("|")
	b.WriteString(strings.Repeat("---|", len(t.Columns)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
