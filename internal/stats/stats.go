// Package stats provides the small numeric and reporting utilities shared by
// the experiment harness: means, percentage helpers, counter sets, aligned
// text tables, CSV emission, and ASCII bar charts for figure-style output.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. Non-positive entries make a
// geometric mean undefined; they are skipped, matching common practice in
// architecture papers when a benchmark reports a zero.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		logSum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percent formats ratio (0..1) as a percentage string like "27.3%".
func Percent(ratio float64) string {
	return fmt.Sprintf("%.1f%%", ratio*100)
}

// Ratio returns num/den, or 0 when den is 0. Event-count denominators are
// zero only for empty runs, where 0 is the honest answer.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Reduction returns 1 - after/before: the fractional reduction of a count.
func Reduction(after, before uint64) float64 {
	if before == 0 {
		return 0
	}
	return 1 - float64(after)/float64(before)
}

// Counter is a named monotonically increasing event count.
type Counter struct {
	Name  string
	Value uint64
}

// Set is an ordered collection of named counters. Order is insertion order so
// reports are stable.
type Set struct {
	order  []string
	counts map[string]uint64
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{counts: make(map[string]uint64)}
}

// Add increments counter name by n, creating it if absent.
func (s *Set) Add(name string, n uint64) {
	if _, ok := s.counts[name]; !ok {
		s.order = append(s.order, name)
	}
	s.counts[name] += n
}

// Inc increments counter name by 1.
func (s *Set) Inc(name string) { s.Add(name, 1) }

// Get returns the value of counter name (0 if absent).
func (s *Set) Get(name string) uint64 { return s.counts[name] }

// Counters returns the counters in insertion order.
func (s *Set) Counters() []Counter {
	out := make([]Counter, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, Counter{Name: name, Value: s.counts[name]})
	}
	return out
}

// Merge adds every counter of other into s.
func (s *Set) Merge(other *Set) {
	for _, c := range other.Counters() {
		s.Add(c.Name, c.Value)
	}
}

// Quantile returns the q-quantile (0..1) of xs using linear interpolation.
// xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-width bucket histogram over [min, max).
type Histogram struct {
	min, max float64
	buckets  []uint64
	under    uint64
	over     uint64
	count    uint64
	sum      float64
}

// NewHistogram returns a histogram with n buckets over [min, max).
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{min: min, max: max, buckets: make([]uint64, n)}
}

// Observe records x.
func (h *Histogram) Observe(x float64) {
	h.count++
	h.sum += x
	switch {
	case x < h.min:
		h.under++
	case x >= h.max:
		h.over++
	default:
		idx := int((x - h.min) / (h.max - h.min) * float64(len(h.buckets)))
		if idx >= len(h.buckets) { // float edge
			idx = len(h.buckets) - 1
		}
		h.buckets[idx]++
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Outliers returns the number of observations below min and at or above max.
func (h *Histogram) Outliers() (under, over uint64) { return h.under, h.over }
