package stats

import (
	"fmt"
	"sort"

	"cache8t/internal/rng"
)

// CI is a bootstrap confidence interval for a mean.
type CI struct {
	Mean  float64
	Low   float64
	High  float64
	Level float64 // e.g. 0.95
}

// String renders like "27.3% [26.1%, 28.4%] @95%".
func (c CI) String() string {
	return fmt.Sprintf("%.1f%% [%.1f%%, %.1f%%] @%.0f%%",
		c.Mean*100, c.Low*100, c.High*100, c.Level*100)
}

// BootstrapMeanCI computes a percentile-bootstrap confidence interval for
// the mean of xs: resamples datasets of the same size with replacement and
// takes the (1-level)/2 quantiles of the resampled means. Deterministic in
// seed. Used by EXPERIMENTS.md to say how tight the 25-benchmark means are.
func BootstrapMeanCI(xs []float64, level float64, resamples int, seed uint64) (CI, error) {
	if len(xs) == 0 {
		return CI{}, fmt.Errorf("stats: empty sample")
	}
	if level <= 0 || level >= 1 {
		return CI{}, fmt.Errorf("stats: confidence level %v out of (0,1)", level)
	}
	if resamples < 10 {
		return CI{}, fmt.Errorf("stats: need at least 10 resamples, got %d", resamples)
	}
	r := rng.New(seed)
	means := make([]float64, resamples)
	for i := range means {
		var sum float64
		for j := 0; j < len(xs); j++ {
			sum += xs[r.Intn(len(xs))]
		}
		means[i] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	lo := int(alpha * float64(resamples))
	hi := int((1 - alpha) * float64(resamples))
	if hi >= resamples {
		hi = resamples - 1
	}
	return CI{Mean: Mean(xs), Low: means[lo], High: means[hi], Level: level}, nil
}
