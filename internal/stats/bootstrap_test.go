package stats

import (
	"strings"
	"testing"
)

func TestBootstrapValidation(t *testing.T) {
	if _, err := BootstrapMeanCI(nil, 0.95, 100, 1); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 0, 100, 1); err == nil {
		t.Error("zero level accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 0.95, 5, 1); err == nil {
		t.Error("too few resamples accepted")
	}
}

func TestBootstrapBracketsMean(t *testing.T) {
	xs := []float64{0.25, 0.27, 0.29, 0.31, 0.26, 0.33, 0.24, 0.28, 0.30, 0.27}
	ci, err := BootstrapMeanCI(xs, 0.95, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !(ci.Low <= ci.Mean && ci.Mean <= ci.High) {
		t.Fatalf("interval does not bracket the mean: %+v", ci)
	}
	if ci.High-ci.Low <= 0 {
		t.Fatal("degenerate interval")
	}
	// For this spread the 95% CI stays within a couple of points.
	if ci.High-ci.Low > 0.05 {
		t.Errorf("interval suspiciously wide: %+v", ci)
	}
}

func TestBootstrapConstantSample(t *testing.T) {
	xs := []float64{0.4, 0.4, 0.4, 0.4}
	ci, err := BootstrapMeanCI(xs, 0.95, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Low != 0.4 || ci.High != 0.4 || ci.Mean != 0.4 {
		t.Fatalf("constant sample CI = %+v", ci)
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	a, _ := BootstrapMeanCI(xs, 0.9, 500, 42)
	b, _ := BootstrapMeanCI(xs, 0.9, 500, 42)
	if a != b {
		t.Fatal("same seed gave different intervals")
	}
}

func TestCIString(t *testing.T) {
	ci := CI{Mean: 0.273, Low: 0.261, High: 0.284, Level: 0.95}
	s := ci.String()
	for _, want := range []string{"27.3%", "26.1%", "28.4%", "95%"} {
		if !strings.Contains(s, want) {
			t.Errorf("CI string %q missing %q", s, want)
		}
	}
}
