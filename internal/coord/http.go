package coord

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"

	"cache8t/internal/server"
)

// Handler returns the coordinator's HTTP API. It deliberately rhymes with
// the worker API: /v1/sweeps is to sweeps what /v1/jobs is to jobs, with the
// same status envelope, error envelope, and lifecycle verbs.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", c.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", c.handleList)
	mux.HandleFunc("GET /v1/sweeps/{id}", c.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/result", c.handleResult)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", c.handleCancel)
	mux.HandleFunc("POST /v1/workers", c.handleRegisterWorker)
	mux.HandleFunc("GET /v1/workers", c.handleWorkers)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

// apiErr mirrors the worker API's JSON error envelope.
type apiErr struct {
	Error  string              `json:"error"`
	State  server.State        `json:"state,omitempty"`
	Fields []server.FieldError `json:"fields,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// clientID identifies the submitter for rate limiting: the X-Client-ID
// header when set (cooperating clients name themselves), else the remote
// host so distinct machines get distinct buckets.
func clientID(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get("X-Client-ID")); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// handleSubmit accepts a sweep: 202 with the sweep status, 400 on a
// malformed or invalid spec (field-level errors), 413 past the body limit,
// 429 when rate-limited or the active-sweep table is full, 503 while
// draining. A sweep whose merged ledger is already in the CAS short-circuits
// to succeeded without a single dispatch — the sweep-level analogue of the
// worker's cache hit on submit.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !c.accepting.Load() {
		c.met.sweepsRejected.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, apiErr{Error: "coordinator is draining; not accepting sweeps"})
		return
	}
	if !c.lim.allow(clientID(r), c.clk.Now()) {
		c.met.rateLimited.Add(1)
		c.met.sweepsRejected.Add(1)
		writeJSON(w, http.StatusTooManyRequests, apiErr{Error: "rate limit exceeded; retry later"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSweepSpecBytes))
	if err != nil {
		c.met.sweepsRejected.Add(1)
		writeJSON(w, http.StatusRequestEntityTooLarge,
			apiErr{Error: fmt.Sprintf("sweep spec exceeds the %d-byte limit", maxSweepSpecBytes)})
		return
	}
	spec, err := DecodeSweepSpec(body)
	if err != nil {
		c.met.sweepsRejected.Add(1)
		writeJSON(w, http.StatusBadRequest, apiErr{Error: err.Error()})
		return
	}
	if err := spec.Validate(); err != nil {
		c.met.sweepsRejected.Add(1)
		if se, ok := err.(*SweepError); ok {
			writeJSON(w, http.StatusBadRequest, apiErr{Error: "invalid sweep spec", Fields: se.Fields})
		} else {
			writeJSON(w, http.StatusBadRequest, apiErr{Error: err.Error()})
		}
		return
	}
	hash, err := spec.Hash()
	if err != nil {
		c.met.sweepsRejected.Add(1)
		writeJSON(w, http.StatusInternalServerError, apiErr{Error: err.Error()})
		return
	}
	points := spec.Points()

	c.mu.Lock()
	if c.active >= c.cfg.MaxActiveSweeps {
		c.mu.Unlock()
		c.met.sweepsRejected.Add(1)
		writeJSON(w, http.StatusTooManyRequests,
			apiErr{Error: fmt.Sprintf("%d sweeps already active; retry later", c.cfg.MaxActiveSweeps)})
		return
	}
	c.seq++
	id := fmt.Sprintf("s-%06d", c.seq)
	s := newSweep(c.baseCtx, id, spec, hash, points, c.clk.Now())
	c.sweeps[id] = s
	c.order = append(c.order, id)
	c.active++
	c.mu.Unlock()
	c.met.sweepsSubmitted.Add(1)

	// Persist the canonical spec before the journal record that references
	// it, so recovery can always resolve the key it replays.
	if c.cache != nil {
		if canon, err := spec.Canonical(); err == nil {
			c.cache.Put("sweep:"+hash, canon)
		}
	}
	c.journalSweep(s, server.StateQueued, "")

	if c.cache != nil {
		if blob, _, ok := c.cache.Get("ledger:" + hash); ok {
			if l, err := DecodeLedger(blob); err == nil && l.Points == points {
				s.start(c.clk.Now())
				s.done.Store(int64(points))
				s.cached.Store(int64(points))
				c.met.pointsCached.Add(int64(points))
				c.finishSweep(s, server.StateSucceeded, "", blob)
				writeJSON(w, http.StatusAccepted, s.status(c.clk.Now()))
				return
			}
		}
	}
	c.sweepWG.Add(1)
	go c.runSweep(s)
	writeJSON(w, http.StatusAccepted, s.status(c.clk.Now()))
}

// lookup finds a sweep by path id.
func (c *Coordinator) lookup(r *http.Request) *Sweep {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sweeps[r.PathValue("id")]
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	now := c.clk.Now()
	c.mu.Lock()
	out := make([]SweepStatus, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.sweeps[id].status(now))
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": out, "count": len(out)})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	s := c.lookup(r)
	if s == nil {
		writeJSON(w, http.StatusNotFound, apiErr{Error: "no such sweep"})
		return
	}
	writeJSON(w, http.StatusOK, s.status(c.clk.Now()))
}

// handleResult serves the merged canonical ledger: 200 once succeeded, 409
// with the current state otherwise.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	s := c.lookup(r)
	if s == nil {
		writeJSON(w, http.StatusNotFound, apiErr{Error: "no such sweep"})
		return
	}
	if st := s.State(); st != server.StateSucceeded {
		writeJSON(w, http.StatusConflict, apiErr{Error: "sweep has no result", State: st})
		return
	}
	merged := s.Merged()
	if merged == nil && c.cache != nil {
		// Recovered sweep whose ledger lives only in the CAS.
		if blob, _, ok := c.cache.Get("ledger:" + s.Hash); ok {
			merged = blob
		}
	}
	if merged == nil {
		writeJSON(w, http.StatusNotFound, apiErr{Error: "merged ledger evicted from the result cache"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(merged)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	s := c.lookup(r)
	if s == nil {
		writeJSON(w, http.StatusNotFound, apiErr{Error: "no such sweep"})
		return
	}
	if st := s.State(); st.Terminal() {
		writeJSON(w, http.StatusConflict, apiErr{Error: "sweep already finished", State: st})
		return
	}
	c.finishSweep(s, server.StateCancelled, "", nil)
	writeJSON(w, http.StatusOK, s.status(c.clk.Now()))
}

// handleRegisterWorker adds a worker to the fleet: 201 when new, 200 when
// already registered (registration is idempotent by URL).
func (c *Coordinator) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4096))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, apiErr{Error: "registration body too large"})
		return
	}
	var req struct {
		URL string `json:"url"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.URL == "" {
		writeJSON(w, http.StatusBadRequest, apiErr{Error: `registration body must be {"url": "http://host:port"}`})
		return
	}
	added, err := c.reg.add(req.URL)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiErr{Error: err.Error()})
		return
	}
	code := http.StatusOK
	if added {
		code = http.StatusCreated
	}
	writeJSON(w, code, map[string]any{"workers": c.reg.snapshot(c.clk.Now()), "count": c.reg.size()})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"workers": c.reg.snapshot(c.clk.Now()), "count": c.reg.size()})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "version": c.cfg.Version, "workers": c.reg.size(),
	})
}

// handleReadyz reports readiness to do useful work: accepting sweeps AND at
// least one registered worker.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case !c.accepting.Load():
		writeJSON(w, http.StatusServiceUnavailable, apiErr{Error: "draining"})
	case c.reg.size() == 0:
		writeJSON(w, http.StatusServiceUnavailable, apiErr{Error: "no workers registered"})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	}
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	active := c.active
	c.mu.Unlock()
	journalBytes := int64(-1)
	if c.journal != nil {
		journalBytes = c.journal.Bytes()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.met.render(w, c.reg.snapshot(c.clk.Now()), active, c.accepting.Load(), journalBytes)
}
