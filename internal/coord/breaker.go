package coord

import (
	"sync"
	"time"
)

// breaker is a per-worker circuit breaker. Threshold consecutive failures
// open it for Cooldown — while open, the picker skips the worker, so a dead
// box stops absorbing dispatches (and their timeouts) almost immediately.
// After the cooldown one probe dispatch is let through (half-open): success
// closes the breaker, failure re-opens it for another cooldown. Health
// feeds in from two sides through the same success/failure entry points:
// real dispatch outcomes, and — when Config.ProbeInterval is set — the
// active /healthz prober in prober.go, which keeps the breaker honest even
// while no sweep is dispatching.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int // consecutive failures
	openUntil time.Time
	probing   bool   // a half-open probe is in flight
	opens     uint64 // cumulative open transitions, for metrics
}

// allow reports whether a dispatch may be sent now. In half-open state only
// one probe is admitted at a time.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return true // closed
	}
	if now.Before(b.openUntil) {
		return false // open
	}
	if b.probing {
		return false // half-open, probe already out
	}
	b.probing = true
	return true
}

// success closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records one failed dispatch, reporting whether this transition
// opened the breaker (closed/half-open → open).
func (b *breaker) failure(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	wasOpen := b.fails >= b.threshold && now.Before(b.openUntil)
	b.probing = false
	b.fails++
	if b.fails >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
		if !wasOpen {
			b.opens++
			return true
		}
	}
	return false
}

// state names the breaker's position for the workers listing.
func (b *breaker) state(now time.Time) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.fails < b.threshold:
		return "closed"
	case now.Before(b.openUntil):
		return "open"
	default:
		return "half-open"
	}
}

// openCount returns the cumulative open transitions.
func (b *breaker) openCount() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
