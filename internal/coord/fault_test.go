package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cache8t/internal/server"
)

// testTimeout bounds every wait in this package's tests. It is a failure
// deadline, not a sleep: passing tests never block on it.
const testTimeout = 30 * time.Second

// tinySweep is the standard fault-test matrix: one controller, one
// workload, the given seeds — len(seeds) points, each fast to simulate.
func tinySweep(seeds ...uint64) SweepSpec {
	return SweepSpec{
		Controllers: []string{"wgrb"},
		Workloads:   []string{"bwaves"},
		Seeds:       seeds,
		N:           400,
	}
}

// fakeWorker is a minimal in-process stand-in for a sramd worker speaking
// just enough of the job API for the dispatch loop: submit computes the
// artifact synchronously (via the same server.Execute the real daemon uses)
// and answers with a terminal job status. Fault hooks inject HTTP failure
// codes, hangs, connection resets, and artifact corruption at exactly the
// point the scenario needs.
type fakeWorker struct {
	t  *testing.T
	hs *httptest.Server

	mu      sync.Mutex
	submits int
	seq     int
	arts    map[string][]byte

	// onSubmit, when set, sees each submission (0-based) first and reports
	// whether it fully handled the response.
	onSubmit func(n int, w http.ResponseWriter, r *http.Request) bool
	// tamper, when set, substitutes the spec actually simulated — the
	// returned artifact is then internally consistent but carries the wrong
	// config hash, which is what a corrupted result looks like on the wire.
	tamper func(spec server.JobSpec) server.JobSpec
}

func newFakeWorker(t *testing.T) *fakeWorker {
	fw := &fakeWorker{t: t, arts: map[string][]byte{}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", fw.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", fw.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", fw.handleResult)
	fw.hs = httptest.NewServer(mux)
	t.Cleanup(fw.hs.Close)
	return fw
}

func (fw *fakeWorker) url() string { return fw.hs.URL }

func (fw *fakeWorker) submitCount() int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.submits
}

func (fw *fakeWorker) handleSubmit(w http.ResponseWriter, r *http.Request) {
	fw.mu.Lock()
	n := fw.submits
	fw.submits++
	hook := fw.onSubmit
	tamper := fw.tamper
	fw.mu.Unlock()
	if hook != nil && hook(n, w, r) {
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	var spec server.JobSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiErr{Error: err.Error()})
		return
	}
	spec.Normalize()
	run := spec
	if tamper != nil {
		run = tamper(spec)
	}
	art, err := server.Execute(r.Context(), run, run.Workload, nil)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiErr{Error: err.Error()})
		return
	}
	fw.mu.Lock()
	fw.seq++
	id := fmt.Sprintf("j-%d", fw.seq)
	fw.arts[id] = art
	fw.mu.Unlock()
	writeJSON(w, http.StatusAccepted, server.JobStatus{ID: id, State: server.StateSucceeded})
}

func (fw *fakeWorker) handleStatus(w http.ResponseWriter, r *http.Request) {
	fw.mu.Lock()
	_, ok := fw.arts[r.PathValue("id")]
	fw.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, apiErr{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, server.JobStatus{ID: r.PathValue("id"), State: server.StateSucceeded})
}

func (fw *fakeWorker) handleResult(w http.ResponseWriter, r *http.Request) {
	fw.mu.Lock()
	art, ok := fw.arts[r.PathValue("id")]
	fw.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, apiErr{Error: "no such job"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(art)
}

// failCodes returns an onSubmit hook that answers the first len(codes)
// submissions with the given HTTP statuses, then behaves normally.
func failCodes(codes ...int) func(int, http.ResponseWriter, *http.Request) bool {
	return func(n int, w http.ResponseWriter, r *http.Request) bool {
		if n < len(codes) {
			writeJSON(w, codes[n], apiErr{Error: fmt.Sprintf("injected %d", codes[n])})
			return true
		}
		return false
	}
}

// hangForever blocks until the client gives up (attempt timeout). The body
// is drained first: the net/http server only watches for a client abort once
// the handler has consumed the request, so an undrained hang would outlive
// the cancelled dispatch and wedge the listener's Close.
func hangForever(n int, w http.ResponseWriter, r *http.Request) bool {
	io.Copy(io.Discard, r.Body)
	<-r.Context().Done()
	return true
}

// resetConn kills the TCP connection without an HTTP response — a worker
// dying mid-job.
func resetConn(n int, w http.ResponseWriter, r *http.Request) bool {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("fake worker: response writer is not a hijacker")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		panic(err)
	}
	conn.Close()
	return true
}

// harness wires a Coordinator into an httptest listener and, when the
// config carries a fakeClock, co-drives that clock while polling.
type harness struct {
	t   *testing.T
	c   *Coordinator
	hs  *httptest.Server
	clk *fakeClock
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	clk, _ := cfg.Clock.(*fakeClock)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})
	return &harness{t: t, c: c, hs: hs, clk: clk}
}

// fastCfg is the fault-test baseline: fake clock, generous attempt deadline
// (so only the injected fault ever times an attempt out), tight backoff,
// breaker effectively disabled unless the scenario wants it.
func fastCfg(clk *fakeClock, workers ...string) Config {
	return Config{
		Workers:          workers,
		Clock:            clk,
		PointTimeout:     10 * time.Minute,
		PollInterval:     10 * time.Millisecond,
		PointAttempts:    5,
		BackoffBase:      50 * time.Millisecond,
		BackoffCap:       200 * time.Millisecond,
		BreakerThreshold: 100,
		BreakerCooldown:  time.Hour,
		JitterSeed:       3,
	}
}

func (h *harness) do(method, path string, body []byte, hdr map[string]string) (int, []byte) {
	h.t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, h.hs.URL+path, rd)
	if err != nil {
		h.t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	return resp.StatusCode, b
}

func (h *harness) submit(spec SweepSpec) SweepStatus {
	h.t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		h.t.Fatal(err)
	}
	code, body := h.do(http.MethodPost, "/v1/sweeps", b, nil)
	if code != http.StatusAccepted {
		h.t.Fatalf("submit: status %d: %s", code, body)
	}
	var st SweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		h.t.Fatal(err)
	}
	return st
}

func (h *harness) status(id string) SweepStatus {
	h.t.Helper()
	code, body := h.do(http.MethodGet, "/v1/sweeps/"+id, nil, nil)
	if code != http.StatusOK {
		h.t.Fatalf("status %s: %d: %s", id, code, body)
	}
	var st SweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		h.t.Fatal(err)
	}
	return st
}

func (h *harness) result(id string) []byte {
	h.t.Helper()
	code, body := h.do(http.MethodGet, "/v1/sweeps/"+id+"/result", nil, nil)
	if code != http.StatusOK {
		h.t.Fatalf("result %s: %d: %s", id, code, body)
	}
	return body
}

// waitTerminal polls the sweep until terminal, advancing the fake clock by
// step each poll so backoffs, timeouts, and cooldowns elapse. The microsleep
// between polls is a scheduler yield, not a timing dependency.
func (h *harness) waitTerminal(id string, step time.Duration) SweepStatus {
	h.t.Helper()
	deadline := time.Now().Add(testTimeout)
	for {
		st := h.status(id)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("sweep %s stuck in state %s", id, st.State)
		}
		if h.clk != nil {
			h.clk.Advance(step)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// requireSerialLedger asserts got is byte-identical to the in-process
// serial run of spec — the sweep-level determinism contract.
func requireSerialLedger(t *testing.T, spec SweepSpec, got []byte) {
	t.Helper()
	want, err := ExecuteSerial(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged ledger differs from serial in-process run (%d vs %d bytes)", len(got), len(want))
	}
}

func TestDispatchRetriesFlakyWorker(t *testing.T) {
	// A worker answering 429, 503, 500 on its first three submissions must
	// cost three redispatches and zero correctness: the fourth attempt
	// lands and the ledger matches the serial run.
	fw := newFakeWorker(t)
	fw.onSubmit = failCodes(http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusInternalServerError)
	clk := newFakeClock()
	h := newHarness(t, fastCfg(clk, fw.url()))

	st := h.submit(tinySweep(1))
	st = h.waitTerminal(st.ID, 100*time.Millisecond)
	if st.State != server.StateSucceeded {
		t.Fatalf("sweep %s: %s (%s)", st.ID, st.State, st.Error)
	}
	if st.Retries != 3 {
		t.Fatalf("retries = %d, want 3 (one per injected failure)", st.Retries)
	}
	if got := h.c.met.redispatches.Load(); got != 3 {
		t.Fatalf("redispatches metric = %d, want 3", got)
	}
	if got := fw.submitCount(); got != 4 {
		t.Fatalf("worker saw %d submissions, want 4", got)
	}
	requireSerialLedger(t, tinySweep(1), h.result(st.ID))
}

func TestDispatchTimesOutHangingWorker(t *testing.T) {
	// A worker that accepts the connection and never answers must cost one
	// attempt deadline, then the point lands on the healthy worker.
	hung := newFakeWorker(t)
	hung.onSubmit = hangForever
	good := newFakeWorker(t)
	clk := newFakeClock()
	cfg := fastCfg(clk, hung.url(), good.url())
	cfg.PointTimeout = time.Minute
	h := newHarness(t, cfg)

	st := h.submit(tinySweep(1))
	st = h.waitTerminal(st.ID, 10*time.Second)
	if st.State != server.StateSucceeded {
		t.Fatalf("sweep %s: %s (%s)", st.ID, st.State, st.Error)
	}
	if st.Retries < 1 {
		t.Fatalf("retries = %d, want >= 1 (the timed-out attempt)", st.Retries)
	}
	if got := good.submitCount(); got != 1 {
		t.Fatalf("healthy worker saw %d submissions, want 1", got)
	}
	requireSerialLedger(t, tinySweep(1), h.result(st.ID))
}

func TestDispatchSurvivesConnectionReset(t *testing.T) {
	// A worker dying mid-request (TCP reset, no HTTP response) is a retry,
	// not a sweep failure.
	dead := newFakeWorker(t)
	dead.onSubmit = resetConn
	good := newFakeWorker(t)
	clk := newFakeClock()
	h := newHarness(t, fastCfg(clk, dead.url(), good.url()))

	st := h.submit(tinySweep(1))
	st = h.waitTerminal(st.ID, 100*time.Millisecond)
	if st.State != server.StateSucceeded {
		t.Fatalf("sweep %s: %s (%s)", st.ID, st.State, st.Error)
	}
	if st.Retries < 1 {
		t.Fatalf("retries = %d, want >= 1", st.Retries)
	}
	requireSerialLedger(t, tinySweep(1), h.result(st.ID))
}

func TestCorruptArtifactIsRedispatchedNeverMerged(t *testing.T) {
	// A worker returning a well-formed artifact for the WRONG simulation
	// (hash mismatch) must be treated as corrupt: the point re-dispatches
	// and the merged ledger carries only verified bytes.
	lying := newFakeWorker(t)
	lying.tamper = func(spec server.JobSpec) server.JobSpec {
		spec.Seed += 1000
		return spec
	}
	good := newFakeWorker(t)
	clk := newFakeClock()
	h := newHarness(t, fastCfg(clk, lying.url(), good.url()))

	st := h.submit(tinySweep(1))
	st = h.waitTerminal(st.ID, 100*time.Millisecond)
	if st.State != server.StateSucceeded {
		t.Fatalf("sweep %s: %s (%s)", st.ID, st.State, st.Error)
	}
	if got := h.c.met.corruptArtifacts.Load(); got < 1 {
		t.Fatalf("corrupt-artifact metric = %d, want >= 1", got)
	}
	if st.Retries < 1 {
		t.Fatalf("retries = %d, want >= 1", st.Retries)
	}
	requireSerialLedger(t, tinySweep(1), h.result(st.ID))
}

func TestBreakerOpensOnDeadWorker(t *testing.T) {
	// With a single always-failing worker and threshold 2, the breaker must
	// open after exactly 2 dispatches; the remaining attempts see "no
	// worker available" instead of hammering the corpse.
	dead := newFakeWorker(t)
	dead.onSubmit = failCodes(500, 500, 500, 500, 500, 500, 500, 500)
	clk := newFakeClock()
	cfg := fastCfg(clk, dead.url())
	cfg.BreakerThreshold = 2
	h := newHarness(t, cfg)

	st := h.submit(tinySweep(1))
	st = h.waitTerminal(st.ID, 20*time.Millisecond)
	if st.State != server.StateFailed {
		t.Fatalf("sweep %s: %s, want failed", st.ID, st.State)
	}
	if !strings.Contains(st.Error, "no worker available") {
		t.Fatalf("error %q does not mention worker exhaustion", st.Error)
	}
	if got := dead.submitCount(); got != 2 {
		t.Fatalf("dead worker saw %d submissions, want 2 (breaker threshold)", got)
	}
	if got := h.c.met.breakerOpens.Load(); got != 1 {
		t.Fatalf("breaker-opens metric = %d, want 1", got)
	}
	code, body := h.do(http.MethodGet, "/v1/workers", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("workers: %d", code)
	}
	var fleet struct {
		Workers []WorkerStatus `json:"workers"`
	}
	if err := json.Unmarshal(body, &fleet); err != nil {
		t.Fatal(err)
	}
	if len(fleet.Workers) != 1 || fleet.Workers[0].Breaker != "open" {
		t.Fatalf("workers listing = %s, want one open breaker", body)
	}
}

func TestBreakerHalfOpenProbeRecloses(t *testing.T) {
	// After the cooldown one probe is admitted; when the worker has
	// recovered, the probe succeeds and the breaker closes again.
	flaky := newFakeWorker(t)
	flaky.onSubmit = failCodes(500, 500)
	clk := newFakeClock()
	cfg := fastCfg(clk, flaky.url())
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Second
	cfg.PointAttempts = 8
	h := newHarness(t, cfg)

	st := h.submit(tinySweep(1))
	st = h.waitTerminal(st.ID, 300*time.Millisecond)
	if st.State != server.StateSucceeded {
		t.Fatalf("sweep %s: %s (%s)", st.ID, st.State, st.Error)
	}
	if got := flaky.submitCount(); got != 3 {
		t.Fatalf("worker saw %d submissions, want 3 (2 failures + 1 successful probe)", got)
	}
	requireSerialLedger(t, tinySweep(1), h.result(st.ID))
}

func TestRateLimitPerClient(t *testing.T) {
	// Burst 1, negligible refill: a client's second submission bounces with
	// 429 while a differently identified client still gets through.
	good := newFakeWorker(t)
	clk := newFakeClock()
	cfg := fastCfg(clk, good.url())
	cfg.SweepRate = 1e-9
	cfg.SweepBurst = 1
	h := newHarness(t, cfg)

	first := h.submit(tinySweep(1))
	b, _ := json.Marshal(tinySweep(2))
	code, body := h.do(http.MethodPost, "/v1/sweeps", b, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second submit: status %d (%s), want 429", code, body)
	}
	if got := h.c.met.rateLimited.Load(); got != 1 {
		t.Fatalf("rate-limited metric = %d, want 1", got)
	}
	code, body = h.do(http.MethodPost, "/v1/sweeps", b, map[string]string{"X-Client-ID": "other-tenant"})
	if code != http.StatusAccepted {
		t.Fatalf("other client submit: status %d (%s), want 202", code, body)
	}
	var second SweepStatus
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{first.ID, second.ID} {
		if st := h.waitTerminal(id, 50*time.Millisecond); st.State != server.StateSucceeded {
			t.Fatalf("sweep %s: %s (%s)", id, st.State, st.Error)
		}
	}
}

func TestCancelSweepMidFlight(t *testing.T) {
	// DELETE on a running sweep cancels it: in-flight dispatches abort, the
	// state is terminal-sticky, and the result endpoint answers 409.
	hung := newFakeWorker(t)
	hung.onSubmit = hangForever
	clk := newFakeClock()
	h := newHarness(t, fastCfg(clk, hung.url()))

	st := h.submit(tinySweep(1))
	code, body := h.do(http.MethodDelete, "/v1/sweeps/"+st.ID, nil, nil)
	if code != http.StatusOK {
		t.Fatalf("cancel: %d: %s", code, body)
	}
	if got := h.waitTerminal(st.ID, 10*time.Millisecond); got.State != server.StateCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", got.State)
	}
	if code, _ := h.do(http.MethodGet, "/v1/sweeps/"+st.ID+"/result", nil, nil); code != http.StatusConflict {
		t.Fatalf("result of cancelled sweep: %d, want 409", code)
	}
	if code, _ := h.do(http.MethodDelete, "/v1/sweeps/"+st.ID, nil, nil); code != http.StatusConflict {
		t.Fatalf("second cancel: %d, want 409", code)
	}
	if got := h.c.met.sweepsCancelled.Load(); got != 1 {
		t.Fatalf("cancelled metric = %d, want 1", got)
	}
}

func TestSubmitRejections(t *testing.T) {
	good := newFakeWorker(t)
	clk := newFakeClock()
	h := newHarness(t, fastCfg(clk, good.url()))

	if code, _ := h.do(http.MethodPost, "/v1/sweeps", []byte(`{not json`), nil); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d, want 400", code)
	}
	if code, body := h.do(http.MethodPost, "/v1/sweeps", []byte(`{"n":100,"bogus":1}`), nil); code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d (%s), want 400", code, body)
	}
	code, body := h.do(http.MethodPost, "/v1/sweeps", []byte(`{"n":100}`), nil)
	if code != http.StatusBadRequest {
		t.Fatalf("empty axes: %d, want 400", code)
	}
	var e apiErr
	if err := json.Unmarshal(body, &e); err != nil || len(e.Fields) == 0 {
		t.Fatalf("empty-axes rejection carries no field errors: %s", body)
	}

	h.c.accepting.Store(false)
	b, _ := json.Marshal(tinySweep(1))
	if code, _ := h.do(http.MethodPost, "/v1/sweeps", b, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d, want 503", code)
	}
	h.c.accepting.Store(true)
}

func TestMultiPointSweepFansOutAcrossFleet(t *testing.T) {
	// Several points, several workers, parallel dispatch: every worker gets
	// work and the merged ledger still matches the serial run exactly.
	w1, w2, w3 := newFakeWorker(t), newFakeWorker(t), newFakeWorker(t)
	clk := newFakeClock()
	cfg := fastCfg(clk, w1.url(), w2.url(), w3.url())
	cfg.DispatchParallel = 3
	h := newHarness(t, cfg)

	spec := tinySweep(1, 2, 3, 4, 5, 6)
	st := h.submit(spec)
	if st.Points != 6 {
		t.Fatalf("points = %d, want 6", st.Points)
	}
	st = h.waitTerminal(st.ID, 50*time.Millisecond)
	if st.State != server.StateSucceeded {
		t.Fatalf("sweep %s: %s (%s)", st.ID, st.State, st.Error)
	}
	if st.Done != 6 {
		t.Fatalf("done = %d, want 6", st.Done)
	}
	total := w1.submitCount() + w2.submitCount() + w3.submitCount()
	if total != 6 {
		t.Fatalf("fleet saw %d submissions, want 6", total)
	}
	for i, fw := range []*fakeWorker{w1, w2, w3} {
		if fw.submitCount() == 0 {
			t.Fatalf("worker %d saw no work despite round-robin over 6 points", i+1)
		}
	}
	requireSerialLedger(t, spec, h.result(st.ID))
}
