package coord

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced Clock: After registers a waiter that
// fires when Advance moves the clock past its due time. Tests drive every
// timing decision in the dispatch loop — attempt deadlines, poll ticks,
// backoff waits, breaker cooldowns — without one real sleep.
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	// An arbitrary fixed epoch: nothing in the coordinator depends on wall
	// time, only on durations.
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock and fires every waiter that has come due. Waiter
// channels are buffered, so firing an abandoned waiter never blocks.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	rest := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			w.ch <- c.now
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
}

func TestFakeClockFiresInOrder(t *testing.T) {
	clk := newFakeClock()
	a := clk.After(10 * time.Millisecond)
	b := clk.After(30 * time.Millisecond)
	clk.Advance(20 * time.Millisecond)
	select {
	case <-a:
	default:
		t.Fatal("10ms waiter did not fire after 20ms advance")
	}
	select {
	case <-b:
		t.Fatal("30ms waiter fired after only 20ms")
	default:
	}
	clk.Advance(20 * time.Millisecond)
	select {
	case <-b:
	default:
		t.Fatal("30ms waiter did not fire after 40ms total")
	}
	if got := clk.Now().Sub(time.Unix(1_700_000_000, 0)); got != 40*time.Millisecond {
		t.Fatalf("clock advanced %v, want 40ms", got)
	}
}
