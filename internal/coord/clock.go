package coord

import "time"

// Clock abstracts time for the dispatch loop — attempt timeouts, poll
// ticks, backoff waits, breaker cooldowns, rate-limiter refills — so the
// fault-injection tests drive every one of them through a fake clock with
// no real sleeps, matching the existing lifecycle-test style.
type Clock interface {
	Now() time.Time
	// After fires once d has elapsed on this clock.
	After(d time.Duration) <-chan time.Time
}

// realClock is the production Clock.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
