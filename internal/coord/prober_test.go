package coord

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestProberDrivesBreaker exercises the active health prober on a fake
// clock: a worker that stops answering /healthz has its breaker opened by
// probes alone (no dispatch ever sent), and once it answers again one probe
// success closes the breaker — without waiting out the cooldown.
func TestProberDrivesBreaker(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" || !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	clk := newFakeClock()
	c, err := New(Config{
		Workers:          []string{srv.URL},
		Clock:            clk,
		ProbeInterval:    time.Second,
		BreakerThreshold: 3,
		// A cooldown far longer than the test advances: the only way the
		// breaker closes again is a probe success, which is the property
		// under test.
		BreakerCooldown: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())

	// advanceUntil keeps ticking the fake clock until cond holds. Probes run
	// on real goroutines against the httptest server, so the test polls;
	// re-advancing is harmless — an advance that lands before the prober
	// re-arms its timer is simply absorbed by the next one.
	advanceUntil := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			clk.Advance(time.Second)
			time.Sleep(time.Millisecond)
		}
	}

	// Healthy worker: probes succeed, breaker stays closed.
	advanceUntil("first successful probe", func() bool { return c.met.probesOK.Load() >= 1 })
	if st := c.reg.snapshot(clk.Now())[0].Breaker; st != "closed" {
		t.Fatalf("breaker %q after successful probes, want closed", st)
	}

	// Kill the worker: threshold consecutive probe failures must open the
	// breaker with zero dispatches involved.
	healthy.Store(false)
	advanceUntil("breaker opened by probes", func() bool { return c.met.breakerOpens.Load() >= 1 })
	if got := c.met.probesFailed.Load(); got < 3 {
		t.Fatalf("breaker opened after %d failed probes, want >= threshold 3", got)
	}
	if st := c.reg.snapshot(clk.Now())[0].Breaker; st != "open" {
		t.Fatalf("breaker %q after probe failures, want open", st)
	}
	if w := c.reg.pick(clk.Now()); w != nil {
		t.Fatal("picker handed out a worker whose breaker the prober opened")
	}

	// Revive the worker: the next probe success closes the breaker even
	// though the hour-long cooldown has not elapsed.
	healthy.Store(true)
	before := c.met.probesOK.Load()
	advanceUntil("probe success after recovery", func() bool { return c.met.probesOK.Load() > before })
	advanceUntil("breaker closed by probe", func() bool {
		return c.reg.snapshot(clk.Now())[0].Breaker == "closed"
	})
	if w := c.reg.pick(clk.Now()); w == nil {
		t.Fatal("picker still refuses the recovered worker")
	}
}

// TestProberDisabledByDefault pins that a zero ProbeInterval starts no
// prober: the clock never ticks, and no probe counters move.
func TestProberDisabledByDefault(t *testing.T) {
	clk := newFakeClock()
	c, err := New(Config{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	clk.Advance(time.Hour)
	time.Sleep(5 * time.Millisecond)
	if n := c.met.probesOK.Load() + c.met.probesFailed.Load(); n != 0 {
		t.Fatalf("prober ran %d probes with ProbeInterval unset", n)
	}
}
