package coord

import (
	"fmt"
	"testing"
)

// FuzzSweepSpec pins the decomposition contract on arbitrary input: decode
// and validation never panic, and for every spec that validates, Decompose
// yields exactly Points() cells, each individually valid, each drawn from
// the spec's axes, all distinct — which by counting means the full matrix
// is covered exactly once.
func FuzzSweepSpec(f *testing.F) {
	f.Add([]byte(`{"controllers":["wgrb"],"workloads":["bwaves"],"n":1000}`))
	f.Add([]byte(`{"controllers":["rmw","wg","wgrb"],"workloads":["bwaves","mcf"],"seeds":[1,2,3],"n":50000}`))
	f.Add([]byte(`{"controllers":["conv"],"workloads":["bwaves"],"n":10,"sizes_kb":[32,64],"ways":[2,4],"block_bytes":[32,64],"buffer_depths":[1,2,4]}`))
	f.Add([]byte(`{"controllers":["wgrb"],"workloads":["bwaves"],"n":100,"policy":"fifo","vdd":0.9,"freq_mhz":1000}`))
	f.Add([]byte(`{"controllers":[""],"workloads":[""],"n":-1}`))
	f.Add([]byte(`{"controllers":["rmw","wg","wgrb","ts"],"workloads":["bwaves"],"n":1000,"hierarchy":true}`))
	f.Add([]byte(`{"controllers":["wg"],"workloads":["bwaves"],"n":100,"hierarchy":true,"l2":{"controller":"ts","cache":{"size_kb":512,"ways":16}}}`))
	f.Add([]byte(`{"controllers":["wg"],"workloads":["bwaves"],"n":100,"l2":{"controller":"rmw"}}`))
	f.Add([]byte(`{"controllers":["a","a"],"workloads":["b"],"n":1,"seeds":[0,0]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"n":100} trailing`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSweepSpec(data)
		if err != nil {
			return
		}
		n := spec.Points() // must never panic, even pre-validation
		if err := spec.Validate(); err != nil {
			if _, ok := err.(*SweepError); !ok {
				t.Fatalf("Validate returned non-SweepError %T: %v", err, err)
			}
			return
		}
		points, err := spec.Decompose()
		if err != nil {
			t.Fatalf("valid spec failed to decompose: %v", err)
		}
		if n < 0 || len(points) != n {
			t.Fatalf("decomposed %d points, Points() = %d", len(points), n)
		}
		inAxis := func(vals []string, v string) bool {
			for _, x := range vals {
				if x == v {
					return true
				}
			}
			return false
		}
		inInts := func(vals []int, v int) bool {
			for _, x := range vals {
				if x == v {
					return true
				}
			}
			return false
		}
		seen := map[string]bool{}
		for i, p := range points {
			if p.Index != i {
				t.Fatalf("point %d carries index %d", i, p.Index)
			}
			if err := p.Spec.Validate(false); err != nil {
				t.Fatalf("decomposed point %d fails single-job validation: %v", i, err)
			}
			if !inAxis(spec.Controllers, p.Spec.Controller) ||
				!inAxis(spec.Workloads, p.Spec.Workload) ||
				!inInts(spec.SizesKB, p.Spec.Cache.SizeKB) ||
				!inInts(spec.Ways, p.Spec.Cache.Ways) ||
				!inInts(spec.BlockBytes, p.Spec.Cache.BlockBytes) ||
				!inInts(spec.BufferDepths, p.Spec.Options.BufferDepth) {
				t.Fatalf("point %d drawn from outside the axes: %+v", i, p.Spec)
			}
			seedOK := false
			for _, s := range spec.Seeds {
				if s == p.Spec.Seed {
					seedOK = true
				}
			}
			if !seedOK {
				t.Fatalf("point %d seed %d not in axis %v", i, p.Spec.Seed, spec.Seeds)
			}
			key := fmt.Sprintf("%s|%s|%d|%d|%d|%d|%d", p.Spec.Controller, p.Spec.Workload,
				p.Spec.Seed, p.Spec.Cache.SizeKB, p.Spec.Cache.Ways,
				p.Spec.Cache.BlockBytes, p.Spec.Options.BufferDepth)
			if seen[key] {
				t.Fatalf("matrix cell %s decomposed twice", key)
			}
			seen[key] = true
		}
	})
}
