package coord

import (
	"context"
	"encoding/json"
	"fmt"

	"cache8t/internal/report"
	"cache8t/internal/server"
)

// LedgerTool is the Tool field the merged sweep ledger carries.
const LedgerTool = "sramd-coord"

// Ledger is the wire shape of a merged sweep result: the sweep's identity
// plus every point's canonical artifact, in decomposition order. It is the
// coordinator's unit of determinism: artifacts are slotted by point index,
// never by completion order, so any dispatch/completion interleaving merges
// to the same canonical bytes — the permutation-invariance property the
// merge tests pin.
type Ledger struct {
	Schema int    `json:"schema"`
	Tool   string `json:"tool"`
	// SweepHash is the sha256 of the canonical sweep spec.
	SweepHash string `json:"sweep_hash"`
	Points    int    `json:"points"`
	// Artifacts holds one canonical per-point artifact per matrix cell, in
	// decomposition order.
	Artifacts []json.RawMessage `json:"artifacts"`
}

// MergeLedger assembles the canonical sweep ledger from per-point artifact
// bytes indexed by point position. Every slot must be filled with a
// decodable artifact — the dispatcher verifies config hashes before bytes
// get here, and the decode re-check makes "a corrupt artifact is never
// merged" a property of the merge itself, not just of the dispatch loop.
func MergeLedger(sweepHash string, arts [][]byte) ([]byte, error) {
	raws := make([]json.RawMessage, len(arts))
	for i, a := range arts {
		if len(a) == 0 {
			return nil, fmt.Errorf("coord: merge: point %d has no artifact", i)
		}
		if _, err := report.Decode(a); err != nil {
			return nil, fmt.Errorf("coord: merge: point %d artifact: %w", i, err)
		}
		raws[i] = json.RawMessage(a)
	}
	return report.Canonical(Ledger{
		Schema:    report.SchemaVersion,
		Tool:      LedgerTool,
		SweepHash: sweepHash,
		Points:    len(arts),
		Artifacts: raws,
	})
}

// DecodeLedger parses merged ledger bytes, rejecting other schemas.
func DecodeLedger(b []byte) (*Ledger, error) {
	var l Ledger
	if err := json.Unmarshal(b, &l); err != nil {
		return nil, fmt.Errorf("coord: ledger: %w", err)
	}
	if l.Schema != report.SchemaVersion {
		return nil, fmt.Errorf("coord: ledger schema %d, want %d", l.Schema, report.SchemaVersion)
	}
	if l.Points != len(l.Artifacts) {
		return nil, fmt.Errorf("coord: ledger claims %d points but carries %d artifacts", l.Points, len(l.Artifacts))
	}
	return &l, nil
}

// ExecuteSerial is the in-process reference for a coordinated sweep:
// decompose, run every point serially in decomposition order through
// server.Execute (the same runner the workers use), merge. A coordinated
// fan-out of the same spec must produce byte-identical ledger bytes — the
// determinism contract extended one level up, gated by the coord tests and
// `make coord-smoke`.
func ExecuteSerial(ctx context.Context, spec SweepSpec) ([]byte, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	points, err := spec.Decompose()
	if err != nil {
		return nil, err
	}
	arts := make([][]byte, len(points))
	for i, p := range points {
		b, err := server.Execute(ctx, p.Spec, p.Source, nil)
		if err != nil {
			return nil, fmt.Errorf("coord: serial point %d: %w", p.Index, err)
		}
		arts[i] = b
	}
	return MergeLedger(hash, arts)
}
