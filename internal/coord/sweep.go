package coord

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"cache8t/internal/server"
)

// Sweep is one submitted matrix: the validated spec, its content address,
// and the mutable lifecycle state the HTTP handlers observe. It reuses the
// job server's state machine (queued → running → succeeded|failed|cancelled,
// terminal states sticky) so clients, the journal, and the docs speak one
// vocabulary.
type Sweep struct {
	ID string
	// Spec is the validated, normalized sweep as submitted.
	Spec SweepSpec
	// Hash is the sha256 of the canonical sweep spec — the sweep's identity
	// in the journal and the key of its merged ledger in the CAS.
	Hash string
	// PointCount is the matrix size.
	PointCount int

	ctx    context.Context
	cancel context.CancelFunc

	// done counts points with a verified artifact; cached counts the subset
	// served from the CAS without a dispatch; retries counts re-dispatched
	// attempts. All live progress for status polling.
	done    atomic.Int64
	cached  atomic.Int64
	retries atomic.Int64

	mu        sync.Mutex
	state     server.State
	errText   string
	merged    []byte // canonical ledger bytes, set on success
	recovered bool
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// newSweep builds a queued sweep whose context descends from parent.
func newSweep(parent context.Context, id string, spec SweepSpec, hash string, points int, now time.Time) *Sweep {
	ctx, cancel := context.WithCancel(parent)
	return &Sweep{
		ID:         id,
		Spec:       spec,
		Hash:       hash,
		PointCount: points,
		ctx:        ctx,
		cancel:     cancel,
		state:      server.StateQueued,
		submitted:  now,
	}
}

// start moves queued → running, refusing when the sweep was cancelled first.
func (s *Sweep) start(now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != server.StateQueued {
		return false
	}
	s.state = server.StateRunning
	s.started = now
	return true
}

// finish applies the terminal transition exactly once, reporting whether
// this call was it.
func (s *Sweep) finish(state server.State, errText string, merged []byte, now time.Time) bool {
	s.mu.Lock()
	if s.state.Terminal() {
		s.mu.Unlock()
		return false
	}
	s.state = state
	s.errText = errText
	s.merged = merged
	s.finished = now
	s.mu.Unlock()
	s.cancel()
	return true
}

// State returns the current lifecycle state.
func (s *Sweep) State() server.State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Merged returns the canonical ledger bytes (nil unless succeeded).
func (s *Sweep) Merged() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.merged
}

// markRecovered flags the sweep as replayed from the journal, before it is
// reachable from handlers.
func (s *Sweep) markRecovered() {
	s.mu.Lock()
	s.recovered = true
	s.mu.Unlock()
}

// SweepStatus is the wire form of a sweep's observable state.
type SweepStatus struct {
	ID        string       `json:"id"`
	State     server.State `json:"state"`
	SweepHash string       `json:"sweep_hash"`
	Spec      SweepSpec    `json:"spec"`
	// Points is the matrix size; Done counts points with verified artifacts
	// so far; Cached is the subset served from the CAS without dispatching;
	// Retries counts re-dispatched attempts.
	Points  int `json:"points"`
	Done    int `json:"done"`
	Cached  int `json:"cached,omitempty"`
	Retries int `json:"retries,omitempty"`
	// Recovered marks a sweep replayed from the journal after a restart.
	Recovered       bool    `json:"recovered,omitempty"`
	Error           string  `json:"error,omitempty"`
	SubmittedUnixMS int64   `json:"submitted_unix_ms"`
	QueueMS         float64 `json:"queue_ms,omitempty"`
	RunMS           float64 `json:"run_ms,omitempty"`
}

// status snapshots the sweep for the API; now supplies the clock for the
// running-duration readout.
func (s *Sweep) status(now time.Time) SweepStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SweepStatus{
		ID:              s.ID,
		State:           s.state,
		SweepHash:       s.Hash,
		Spec:            s.Spec,
		Points:          s.PointCount,
		Done:            int(s.done.Load()),
		Cached:          int(s.cached.Load()),
		Retries:         int(s.retries.Load()),
		Recovered:       s.recovered,
		Error:           s.errText,
		SubmittedUnixMS: s.submitted.UnixMilli(),
	}
	if !s.started.IsZero() {
		st.QueueMS = float64(s.started.Sub(s.submitted).Microseconds()) / 1e3
		end := s.finished
		if end.IsZero() {
			end = now
		}
		st.RunMS = float64(end.Sub(s.started).Microseconds()) / 1e3
	}
	return st
}
