// Package coord is the distributed front half of simulation-as-a-service:
// a coordinator that accepts sweep (matrix) specs, decomposes them into
// single-point jobs, fans the points across a fleet of registered sramd
// workers over the existing HTTP job API, and merges the per-point
// artifacts into one canonical sweep ledger. Failures are recoverable
// events, not sweep killers: failed or timed-out dispatches retry with
// jittered exponential backoff, a per-worker circuit breaker keeps a dead
// worker from absorbing every retry, and a corrupt artifact (config-hash
// mismatch) is re-dispatched elsewhere and never merged. The coordinator's
// only state is its sweep table, journaled through the internal/server
// journal plus the rescache CAS, so a killed coordinator recovers its
// sweeps mid-flight — already-finished points are found in the CAS and
// never re-simulated. Workers stay stateless and unchanged on the wire.
//
// The determinism contract extends one level up: a coordinated sweep's
// merged ledger is byte-identical to ExecuteSerial's in-process serial run
// of the same spec, in any dispatch or completion order. DESIGN.md §13
// documents the state machine, the retry policy, and the merge argument.
package coord

import (
	"bytes"
	"encoding/json"
	"fmt"

	"cache8t/internal/report"
	"cache8t/internal/server"
)

// MaxPoints bounds how many single-point jobs one sweep may decompose into.
// It keeps one spec from fanning a near-unbounded cross product over the
// fleet; larger studies submit several sweeps.
const MaxPoints = 4096

// SweepSpec is the wire description of one experiment matrix: the cross
// product of every axis below, each cell a single-point server.JobSpec.
// Scalar knobs (n, policy, options, operating point) apply to every cell.
type SweepSpec struct {
	// Controllers are the schemes to sweep (core.ParseKind names). Required.
	Controllers []string `json:"controllers"`
	// Workloads are the bundled benchmark profiles to sweep. Required —
	// sweeps are workload-driven; trace uploads stay single-job.
	Workloads []string `json:"workloads"`
	// Seeds are the workload master seeds (default [1]).
	Seeds []uint64 `json:"seeds,omitempty"`
	// N is the accesses simulated per point. Required (> 0).
	N int `json:"n"`
	// SizesKB, Ways, BlockBytes span the cache geometries (defaults
	// [64], [4], [32] — the paper's baseline shape).
	SizesKB    []int `json:"sizes_kb,omitempty"`
	Ways       []int `json:"ways,omitempty"`
	BlockBytes []int `json:"block_bytes,omitempty"`
	// BufferDepths spans the Set-Buffer depth axis (default [1]).
	BufferDepths []int `json:"buffer_depths,omitempty"`
	// Policy is the replacement policy for every cell (default "lru").
	Policy string `json:"policy,omitempty"`
	// Controller option toggles, applied to every cell.
	DisableSilentElision bool `json:"disable_silent_elision,omitempty"`
	CountFillTraffic     bool `json:"count_fill_traffic,omitempty"`
	// VDD and FreqMHz set the operating point (defaults 1.0 V / 2000 MHz).
	VDD     float64 `json:"vdd,omitempty"`
	FreqMHz float64 `json:"freq_mhz,omitempty"`
	// Hierarchy makes every cell a two-level L1→L2 job; L2 (optional)
	// configures the second level for every cell, with zero fields taking
	// the single-job defaults. Scalar knobs, not axes — a sweep varies the
	// L1 while the L2 stays fixed.
	Hierarchy bool           `json:"hierarchy,omitempty"`
	L2        *server.L2Spec `json:"l2,omitempty"`
}

// Point is one decomposed cell of the matrix: its deterministic position in
// decomposition order, the fully normalized single-point spec, the resolved
// source, and the config hash its artifact must carry. The hash is what the
// dispatcher verifies on every fetched artifact and what keys the result
// cache, so a point finished in a previous coordinator life is never
// re-simulated.
type Point struct {
	Index      int
	Spec       server.JobSpec
	Source     string
	ConfigHash string
}

// DecodeSweepSpec parses a JSON sweep spec strictly — unknown fields,
// trailing data, and type mismatches are errors — and fills the defaults.
// The result still needs Validate before it can decompose.
func DecodeSweepSpec(b []byte) (SweepSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s SweepSpec
	if err := dec.Decode(&s); err != nil {
		return SweepSpec{}, fmt.Errorf("coord: sweep spec: %w", err)
	}
	if dec.More() {
		return SweepSpec{}, fmt.Errorf("coord: sweep spec: trailing data after JSON object")
	}
	s.Normalize()
	return s, nil
}

// Normalize fills zero axes with the paper's baseline defaults. Idempotent,
// so accepted specs round-trip through Canonical byte-for-byte.
func (s *SweepSpec) Normalize() {
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{1}
	}
	if len(s.SizesKB) == 0 {
		s.SizesKB = []int{64}
	}
	if len(s.Ways) == 0 {
		s.Ways = []int{4}
	}
	if len(s.BlockBytes) == 0 {
		s.BlockBytes = []int{32}
	}
	if len(s.BufferDepths) == 0 {
		s.BufferDepths = []int{1}
	}
	if s.Policy == "" {
		s.Policy = "lru"
	}
	if s.VDD == 0 {
		s.VDD = 1.0
	}
	if s.FreqMHz == 0 {
		s.FreqMHz = 2000
	}
}

// Points returns the matrix size (the product of every axis length), or -1
// when the product overflows past MaxPoints — callers only need "too big".
func (s SweepSpec) Points() int {
	n := 1
	for _, l := range []int{len(s.Controllers), len(s.Workloads), len(s.Seeds),
		len(s.SizesKB), len(s.Ways), len(s.BlockBytes), len(s.BufferDepths)} {
		n *= l
		if n > MaxPoints || n < 0 {
			return -1
		}
	}
	return n
}

// SweepError is the field-level validation failure of a SweepSpec; the API
// renders Fields into the 400 body exactly like server.SpecError.
type SweepError struct {
	Fields []server.FieldError
}

// Error implements error.
func (e *SweepError) Error() string {
	msg := "coord: invalid sweep spec:"
	for _, f := range e.Fields {
		msg += " " + f.Field + ": " + f.Msg + ";"
	}
	return msg[:len(msg)-1]
}

// Validate checks the sweep: every axis non-empty and duplicate-free (so
// the decomposition covers the matrix exactly once), the product within
// MaxPoints, and every decomposed cell a valid single-point job spec.
// Per-cell failures are reported with the cell's axis coordinates; after a
// few the rest are elided — a bad axis value usually fails every cell it
// touches.
func (s SweepSpec) Validate() error {
	var fields []server.FieldError
	add := func(field, format string, args ...any) {
		fields = append(fields, server.FieldError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}

	if len(s.Controllers) == 0 {
		add("controllers", "required: at least one controller kind")
	}
	if len(s.Workloads) == 0 {
		add("workloads", "required: at least one bundled workload")
	}
	if s.N <= 0 {
		add("n", "must be > 0 (accesses per point)")
	}
	checkDup := func(field string, vals []string) {
		seen := map[string]bool{}
		for _, v := range vals {
			if seen[v] {
				add(field, "duplicate value %q (each cell must appear exactly once)", v)
			}
			seen[v] = true
		}
	}
	checkDup("controllers", s.Controllers)
	checkDup("workloads", s.Workloads)
	checkDupInts := func(field string, vals []int) {
		seen := map[int]bool{}
		for _, v := range vals {
			if seen[v] {
				add(field, "duplicate value %d (each cell must appear exactly once)", v)
			}
			seen[v] = true
		}
	}
	checkDupInts("sizes_kb", s.SizesKB)
	checkDupInts("ways", s.Ways)
	checkDupInts("block_bytes", s.BlockBytes)
	checkDupInts("buffer_depths", s.BufferDepths)
	seenSeeds := map[uint64]bool{}
	for _, v := range s.Seeds {
		if seenSeeds[v] {
			add("seeds", "duplicate value %d (each cell must appear exactly once)", v)
		}
		seenSeeds[v] = true
	}
	if s.L2 != nil && !s.Hierarchy {
		add("l2", "only valid with hierarchy: true")
	}
	if s.Points() < 0 {
		add("", "matrix exceeds the %d-point cap; split the study into several sweeps", MaxPoints)
	}
	if len(fields) > 0 {
		return &SweepError{Fields: fields}
	}

	// Every cell must be a job the workers will accept; validate through the
	// exact single-point path so coordinator and worker can never disagree.
	const maxCellErrors = 8
	s.forEachCell(func(idx int, js server.JobSpec) {
		if len(fields) >= maxCellErrors {
			return
		}
		if err := js.Validate(false); err != nil {
			add(fmt.Sprintf("cell[%d]", idx), "%s/%s seed=%d %dKB/%dw/%dB depth=%d: %v",
				js.Controller, js.Workload, js.Seed, js.Cache.SizeKB, js.Cache.Ways,
				js.Cache.BlockBytes, js.Options.BufferDepth, err)
		}
	})
	if len(fields) > 0 {
		return &SweepError{Fields: fields}
	}
	return nil
}

// forEachCell walks the matrix in the canonical decomposition order:
// controller (outermost) → workload → seed → size → ways → block → depth.
func (s SweepSpec) forEachCell(fn func(idx int, js server.JobSpec)) {
	idx := 0
	for _, ctrl := range s.Controllers {
		for _, wl := range s.Workloads {
			for _, seed := range s.Seeds {
				for _, size := range s.SizesKB {
					for _, ways := range s.Ways {
						for _, block := range s.BlockBytes {
							for _, depth := range s.BufferDepths {
								js := server.JobSpec{
									Controller: ctrl,
									Workload:   wl,
									N:          s.N,
									Seed:       seed,
									Cache: server.CacheSpec{
										SizeKB: size, Ways: ways, BlockBytes: block, Policy: s.Policy,
									},
									Options: server.OptionsSpec{
										BufferDepth:          depth,
										DisableSilentElision: s.DisableSilentElision,
										CountFillTraffic:     s.CountFillTraffic,
									},
									VDD:     s.VDD,
									FreqMHz: s.FreqMHz,
								}
								if s.Hierarchy {
									js.Hierarchy = true
									if s.L2 != nil {
										// Deep-copy per cell: Normalize fills the L2
										// block size from the cell's L1 block, so
										// cells must not share one L2Spec.
										l2 := *s.L2
										js.L2 = &l2
									}
								}
								js.Normalize()
								fn(idx, js)
								idx++
							}
						}
					}
				}
			}
		}
	}
}

// Decompose materializes the matrix into its single-point jobs, in the
// canonical order forEachCell defines, each stamped with the config hash
// its artifact must carry. The spec must have passed Validate.
func (s SweepSpec) Decompose() ([]Point, error) {
	n := s.Points()
	if n < 0 {
		return nil, fmt.Errorf("coord: matrix exceeds the %d-point cap", MaxPoints)
	}
	points := make([]Point, 0, n)
	var hashErr error
	s.forEachCell(func(idx int, js server.JobSpec) {
		hash, err := report.Hash(server.ConfigMap(js, js.Workload))
		if err != nil && hashErr == nil {
			hashErr = err
		}
		points = append(points, Point{Index: idx, Spec: js, Source: js.Workload, ConfigHash: hash})
	})
	if hashErr != nil {
		return nil, hashErr
	}
	return points, nil
}

// Canonical renders the sweep spec as canonical JSON; Hash is its content
// address — the sweep's identity in the journal and the CAS.
func (s SweepSpec) Canonical() ([]byte, error) {
	return report.Canonical(s)
}

// Hash returns the sweep's content address (sha256 of Canonical).
func (s SweepSpec) Hash() (string, error) {
	return report.Hash(s)
}
