package coord

import (
	"fmt"
	"io"
	"sync/atomic"
)

// coordMetrics is the coordinator's cumulative counter set, rendered by
// /metrics in Prometheus text exposition format.
type coordMetrics struct {
	sweepsSubmitted atomic.Int64
	sweepsRejected  atomic.Int64 // bounced by rate limit, validation, or drain
	sweepsSucceeded atomic.Int64
	sweepsFailed    atomic.Int64
	sweepsCancelled atomic.Int64
	sweepsRecovered atomic.Int64 // replayed from the journal at startup

	pointsDispatched atomic.Int64 // dispatch attempts sent to workers
	pointsSucceeded  atomic.Int64 // points finished with a verified artifact
	pointsCached     atomic.Int64 // points served from the CAS, never dispatched
	redispatches     atomic.Int64 // failed/timed-out attempts retried elsewhere
	corruptArtifacts atomic.Int64 // fetched artifacts rejected by hash verification
	rateLimited      atomic.Int64 // submissions bounced by the token bucket
	breakerOpens     atomic.Int64 // worker breaker open transitions
	probesOK         atomic.Int64 // active health probes that saw a 200
	probesFailed     atomic.Int64 // active health probes that errored or timed out
}

// render writes the Prometheus exposition. workers and activeSweeps come
// from live coordinator state.
func (m *coordMetrics) render(w io.Writer, workers []WorkerStatus, activeSweeps int, accepting bool, journalBytes int64) {
	up := 0
	if accepting {
		up = 1
	}
	fmt.Fprintf(w, "# HELP coord_accepting Whether the coordinator is accepting new sweeps (0 while draining).\n")
	fmt.Fprintf(w, "# TYPE coord_accepting gauge\ncoord_accepting %d\n", up)
	fmt.Fprintf(w, "# HELP coord_sweeps_active Sweeps currently queued or dispatching.\n")
	fmt.Fprintf(w, "# TYPE coord_sweeps_active gauge\ncoord_sweeps_active %d\n", activeSweeps)

	fmt.Fprintf(w, "# HELP coord_sweeps_total Terminal sweeps by state, plus accepted/rejected/recovered submissions.\n")
	fmt.Fprintf(w, "# TYPE coord_sweeps_total counter\n")
	fmt.Fprintf(w, "coord_sweeps_total{state=\"submitted\"} %d\n", m.sweepsSubmitted.Load())
	fmt.Fprintf(w, "coord_sweeps_total{state=\"rejected\"} %d\n", m.sweepsRejected.Load())
	fmt.Fprintf(w, "coord_sweeps_total{state=\"succeeded\"} %d\n", m.sweepsSucceeded.Load())
	fmt.Fprintf(w, "coord_sweeps_total{state=\"failed\"} %d\n", m.sweepsFailed.Load())
	fmt.Fprintf(w, "coord_sweeps_total{state=\"cancelled\"} %d\n", m.sweepsCancelled.Load())
	fmt.Fprintf(w, "coord_sweeps_total{state=\"recovered\"} %d\n", m.sweepsRecovered.Load())

	fmt.Fprintf(w, "# HELP coord_points_total Point dispatch accounting across all sweeps.\n")
	fmt.Fprintf(w, "# TYPE coord_points_total counter\n")
	fmt.Fprintf(w, "coord_points_total{event=\"dispatched\"} %d\n", m.pointsDispatched.Load())
	fmt.Fprintf(w, "coord_points_total{event=\"succeeded\"} %d\n", m.pointsSucceeded.Load())
	fmt.Fprintf(w, "coord_points_total{event=\"cached\"} %d\n", m.pointsCached.Load())

	fmt.Fprintf(w, "# HELP coord_redispatches_total Failed or timed-out dispatch attempts that were retried.\n")
	fmt.Fprintf(w, "# TYPE coord_redispatches_total counter\ncoord_redispatches_total %d\n", m.redispatches.Load())
	fmt.Fprintf(w, "# HELP coord_corrupt_artifacts_total Fetched artifacts rejected by config-hash verification (never merged).\n")
	fmt.Fprintf(w, "# TYPE coord_corrupt_artifacts_total counter\ncoord_corrupt_artifacts_total %d\n", m.corruptArtifacts.Load())
	fmt.Fprintf(w, "# HELP coord_rate_limited_total Sweep submissions bounced by the per-client token bucket.\n")
	fmt.Fprintf(w, "# TYPE coord_rate_limited_total counter\ncoord_rate_limited_total %d\n", m.rateLimited.Load())
	fmt.Fprintf(w, "# HELP coord_breaker_opens_total Worker circuit-breaker open transitions.\n")
	fmt.Fprintf(w, "# TYPE coord_breaker_opens_total counter\ncoord_breaker_opens_total %d\n", m.breakerOpens.Load())
	fmt.Fprintf(w, "# HELP coord_probes_total Active /healthz probes by result.\n")
	fmt.Fprintf(w, "# TYPE coord_probes_total counter\n")
	fmt.Fprintf(w, "coord_probes_total{result=\"ok\"} %d\n", m.probesOK.Load())
	fmt.Fprintf(w, "coord_probes_total{result=\"failed\"} %d\n", m.probesFailed.Load())

	fmt.Fprintf(w, "# HELP coord_workers Registered workers by breaker state.\n")
	fmt.Fprintf(w, "# TYPE coord_workers gauge\n")
	byState := map[string]int{"closed": 0, "open": 0, "half-open": 0}
	for _, ws := range workers {
		byState[ws.Breaker]++
	}
	for _, st := range []string{"closed", "half-open", "open"} {
		fmt.Fprintf(w, "coord_workers{breaker=%q} %d\n", st, byState[st])
	}

	if journalBytes >= 0 {
		fmt.Fprintf(w, "# HELP coord_journal_bytes Current size of the sweep journal file.\n")
		fmt.Fprintf(w, "# TYPE coord_journal_bytes gauge\ncoord_journal_bytes %d\n", journalBytes)
	}
}
