package coord

import (
	"fmt"
	"strings"
	"testing"

	"cache8t/internal/report"
)

func TestDecodeSweepSpecStrict(t *testing.T) {
	if _, err := DecodeSweepSpec([]byte(`{"controllers":["wgrb"],"workloads":["bwaves"],"n":100,"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := DecodeSweepSpec([]byte(`{"n":100} trailing`)); err == nil {
		t.Fatal("trailing data accepted")
	}
	s, err := DecodeSweepSpec([]byte(`{"controllers":["wgrb"],"workloads":["bwaves"],"n":100}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Seeds) != 1 || s.Seeds[0] != 1 || s.SizesKB[0] != 64 || s.Ways[0] != 4 ||
		s.BlockBytes[0] != 32 || s.BufferDepths[0] != 1 || s.Policy != "lru" ||
		s.VDD != 1.0 || s.FreqMHz != 2000 {
		t.Fatalf("defaults not applied: %+v", s)
	}
}

func TestSweepValidateRejects(t *testing.T) {
	cases := []struct {
		name  string
		spec  SweepSpec
		field string
	}{
		{"no controllers", SweepSpec{Workloads: []string{"bwaves"}, N: 10}, "controllers"},
		{"no workloads", SweepSpec{Controllers: []string{"wgrb"}, N: 10}, "workloads"},
		{"zero n", SweepSpec{Controllers: []string{"wgrb"}, Workloads: []string{"bwaves"}}, "n"},
		{"dup controller", SweepSpec{Controllers: []string{"wgrb", "wgrb"}, Workloads: []string{"bwaves"}, N: 10}, "controllers"},
		{"dup seed", SweepSpec{Controllers: []string{"wgrb"}, Workloads: []string{"bwaves"}, N: 10, Seeds: []uint64{3, 3}}, "seeds"},
		{"bad controller", SweepSpec{Controllers: []string{"no-such-scheme"}, Workloads: []string{"bwaves"}, N: 10}, "cell[0]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := tc.spec
			spec.Normalize()
			err := spec.Validate()
			if err == nil {
				t.Fatal("validated")
			}
			se, ok := err.(*SweepError)
			if !ok {
				t.Fatalf("error type %T: %v", err, err)
			}
			found := false
			for _, f := range se.Fields {
				if f.Field == tc.field {
					found = true
				}
			}
			if !found {
				t.Fatalf("no field error for %q in %v", tc.field, err)
			}
		})
	}
}

func TestSweepValidateCapsMatrix(t *testing.T) {
	seeds := make([]uint64, MaxPoints+1)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	spec := SweepSpec{Controllers: []string{"wgrb"}, Workloads: []string{"bwaves"}, N: 10, Seeds: seeds}
	spec.Normalize()
	err := spec.Validate()
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("oversized matrix: %v", err)
	}
	if spec.Points() != -1 {
		t.Fatalf("Points() = %d, want -1 past the cap", spec.Points())
	}
}

func TestDecomposeCoversMatrixExactlyOnce(t *testing.T) {
	spec := SweepSpec{
		Controllers:  []string{"rmw", "wg", "wgrb"},
		Workloads:    []string{"bwaves", "mcf"},
		Seeds:        []uint64{1, 2},
		N:            100,
		SizesKB:      []int{32, 64},
		BufferDepths: []int{1, 2},
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	points, err := spec.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * 2 * 2 * 2 * 2
	if len(points) != want || spec.Points() != want {
		t.Fatalf("decomposed %d points, want %d", len(points), want)
	}
	seen := map[string]bool{}
	hashes := map[string]bool{}
	for i, p := range points {
		if p.Index != i {
			t.Fatalf("point %d carries index %d", i, p.Index)
		}
		if p.Source != p.Spec.Workload {
			t.Fatalf("point %d: source %q != workload %q", i, p.Source, p.Spec.Workload)
		}
		key := fmt.Sprintf("%s/%s/%d/%d/%d", p.Spec.Controller, p.Spec.Workload, p.Spec.Seed,
			p.Spec.Cache.SizeKB, p.Spec.Options.BufferDepth)
		if seen[key] {
			t.Fatalf("cell %s decomposed twice", key)
		}
		seen[key] = true
		if p.ConfigHash == "" || hashes[p.ConfigHash] {
			t.Fatalf("point %d: config hash %q empty or duplicated", i, p.ConfigHash)
		}
		hashes[p.ConfigHash] = true
	}
	// len(seen) == product and every key is drawn from the axes, so by
	// counting, every matrix cell appears exactly once.
	if len(seen) != want {
		t.Fatalf("covered %d distinct cells, want %d", len(seen), want)
	}
}

func TestSweepHashIsCanonical(t *testing.T) {
	a := SweepSpec{Controllers: []string{"wgrb"}, Workloads: []string{"bwaves"}, N: 100}
	a.Normalize()
	b, err := DecodeSweepSpec([]byte(`{"controllers":["wgrb"],"workloads":["bwaves"],"n":100,"seeds":[1],"policy":"lru"}`))
	if err != nil {
		t.Fatal(err)
	}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("normalized-equal specs hash differently: %s vs %s", ha, hb)
	}
	c := a
	c.N = 101
	if hc, _ := c.Hash(); hc == ha {
		t.Fatal("different N, same hash")
	}
	canon, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if h, err := report.Hash(a); err != nil || h != ha {
		t.Fatalf("Hash disagrees with report.Hash over Canonical %s: %v", canon, err)
	}
}

// TestSweepHierarchyDecomposition pins the hierarchy knobs: every cell of a
// hierarchy sweep is a valid two-level job, the L2 block defaults to each
// cell's own L1 block size (so cells must not share one L2Spec), and a bare
// l2 without hierarchy is rejected at the sweep level.
func TestSweepHierarchyDecomposition(t *testing.T) {
	spec, err := DecodeSweepSpec([]byte(
		`{"controllers":["rmw","wg"],"workloads":["bwaves"],"n":100,"block_bytes":[32,64],"hierarchy":true,"l2":{"controller":"ts","cache":{"size_kb":512}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	points, err := spec.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("expected 4 points, got %d", len(points))
	}
	for _, p := range points {
		js := p.Spec
		if !js.Hierarchy || js.L2 == nil {
			t.Fatalf("cell %d is not a hierarchy job: %+v", p.Index, js)
		}
		if js.L2.Controller != "ts" || js.L2.Cache.SizeKB != 512 {
			t.Errorf("cell %d lost the sweep's L2 knobs: %+v", p.Index, js.L2)
		}
		if js.L2.Cache.BlockBytes != js.Cache.BlockBytes {
			t.Errorf("cell %d: L2 block %d != cell L1 block %d",
				p.Index, js.L2.Cache.BlockBytes, js.Cache.BlockBytes)
		}
	}
	// Cells on different L1 block axes must have gotten different L2 blocks.
	if points[0].Spec.L2.Cache.BlockBytes == points[1].Spec.L2.Cache.BlockBytes {
		t.Error("cells share one L2 block size across the block axis — L2Spec was not deep-copied")
	}

	bad := spec
	bad.Hierarchy = false
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "l2") {
		t.Errorf("l2 without hierarchy accepted: %v", err)
	}
}
