package coord

import (
	"net/http"
	"sync"
)

// This file is the active health prober (ROADMAP item 2a). Without it, a
// worker's breaker only moves when real dispatches hit the worker: a box
// that dies between sweeps is discovered by burning dispatch attempts, and
// one that recovers waits for a half-open probe dispatch to close its
// breaker. The prober adds a background signal: every ProbeInterval it GETs
// each worker's /healthz and feeds the outcome into that worker's breaker
// through the same success/failure entry points a dispatch uses — so a dead
// worker's breaker opens within threshold×interval even on an idle
// coordinator, and a recovered worker's breaker closes from a cheap probe
// instead of absorbing (and possibly failing) a real point.

// probeLoop ticks on the coordinator's clock until shutdown. The loop
// re-arms only after the slowest probe of a cycle resolves, so cycles never
// pile up on a slow fleet.
func (c *Coordinator) probeLoop() {
	defer c.proberWG.Done()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-c.clk.After(c.cfg.ProbeInterval):
		}
		c.probeOnce()
	}
}

// probeOnce probes every registered worker concurrently and waits for the
// cycle to finish.
func (c *Coordinator) probeOnce() {
	var wg sync.WaitGroup
	for _, w := range c.reg.all() {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			c.probeWorker(w)
		}(w)
	}
	wg.Wait()
}

// probeWorker GETs one worker's /healthz, bounded by one ProbeInterval on
// the coordinator's clock, and feeds the breaker. Probes deliberately skip
// breaker.allow: an open breaker keeps real dispatches away, but probing
// must continue through the open window — a probe success is exactly what
// lets a recovered worker rejoin the fleet without waiting out a cooldown.
func (c *Coordinator) probeWorker(w *worker) {
	deadline := c.clk.Now().Add(c.cfg.ProbeInterval)
	_, code, err := c.doBounded(c.baseCtx, http.MethodGet, w.url+"/healthz", nil, deadline)
	if err == nil && code == http.StatusOK {
		c.met.probesOK.Add(1)
		w.brk.success()
		return
	}
	c.met.probesFailed.Add(1)
	if w.brk.failure(c.clk.Now()) {
		c.met.breakerOpens.Add(1)
	}
}
