package coord

import (
	"sync"
	"time"
)

// maxLimiterClients caps the per-client bucket table; past it the stalest
// bucket is evicted. Fairness degrades gracefully for the evicted client (a
// fresh bucket means a fresh burst), which beats unbounded memory for a
// field an untrusted caller controls.
const maxLimiterClients = 4096

// limiter enforces per-client sweep-submission fairness with one token
// bucket per client id: capacity burst, refilled at rate tokens/second on
// the coordinator's clock. A nil *limiter admits everything.
type limiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	clients map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newLimiter builds a limiter, or nil when rate is unlimited (<= 0).
func newLimiter(rate float64, burst int) *limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &limiter{rate: rate, burst: float64(burst), clients: map[string]*bucket{}}
}

// allow takes one token from client's bucket, reporting whether one was
// available at now.
func (l *limiter) allow(client string, now time.Time) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.clients[client]
	if b == nil {
		if len(l.clients) >= maxLimiterClients {
			l.evictStalest()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictStalest drops the least-recently-refilled bucket. Called under mu.
func (l *limiter) evictStalest() {
	var victim string
	var oldest time.Time
	first := true
	for id, b := range l.clients {
		if first || b.last.Before(oldest) {
			victim, oldest, first = id, b.last, false
		}
	}
	delete(l.clients, victim)
}
