package coord

import (
	"fmt"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// worker is one registered sramd instance: its base URL, its circuit
// breaker, and cumulative dispatch accounting.
type worker struct {
	url string
	brk *breaker

	dispatched atomic.Uint64
	succeeded  atomic.Uint64
	failed     atomic.Uint64
}

// WorkerStatus is the wire form of one registry entry for GET /v1/workers.
type WorkerStatus struct {
	URL string `json:"url"`
	// Breaker is "closed" (healthy), "open" (skipped), or "half-open" (one
	// probe dispatch in flight).
	Breaker      string `json:"breaker"`
	Dispatched   uint64 `json:"dispatched"`
	Succeeded    uint64 `json:"succeeded"`
	Failed       uint64 `json:"failed"`
	BreakerOpens uint64 `json:"breaker_opens,omitempty"`
}

// registry is the worker fleet: registration, round-robin picking that
// skips open breakers, and status snapshots.
type registry struct {
	threshold int
	cooldown  time.Duration

	mu      sync.Mutex
	workers []*worker
	byURL   map[string]*worker
	next    int
}

func newRegistry(threshold int, cooldown time.Duration) *registry {
	return &registry{threshold: threshold, cooldown: cooldown, byURL: map[string]*worker{}}
}

// normalizeWorkerURL validates and canonicalizes a worker base URL.
func normalizeWorkerURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("coord: worker url %q: %w", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("coord: worker url %q: need http(s)://host[:port]", raw)
	}
	return raw, nil
}

// add registers a worker, reporting whether it was new (registration is
// idempotent by URL).
func (r *registry) add(rawURL string) (bool, error) {
	u, err := normalizeWorkerURL(rawURL)
	if err != nil {
		return false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byURL[u] != nil {
		return false, nil
	}
	w := &worker{url: u, brk: &breaker{threshold: r.threshold, cooldown: r.cooldown}}
	r.workers = append(r.workers, w)
	r.byURL[u] = w
	return true, nil
}

// pick returns the next worker in round-robin order whose breaker admits a
// dispatch at now, or nil when every breaker is open — the dispatcher then
// backs off and retries, by which time a cooldown may have elapsed.
func (r *registry) pick(now time.Time) *worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < len(r.workers); i++ {
		w := r.workers[r.next%len(r.workers)]
		r.next++
		if w.brk.allow(now) {
			return w
		}
	}
	return nil
}

// all returns a snapshot of the fleet in registration order; the health
// prober iterates it outside the registry lock.
func (r *registry) all() []*worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*worker(nil), r.workers...)
}

// size returns the fleet size.
func (r *registry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.workers)
}

// snapshot lists every worker's status in registration order.
func (r *registry) snapshot(now time.Time) []WorkerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerStatus, len(r.workers))
	for i, w := range r.workers {
		out[i] = WorkerStatus{
			URL:          w.url,
			Breaker:      w.brk.state(now),
			Dispatched:   w.dispatched.Load(),
			Succeeded:    w.succeeded.Load(),
			Failed:       w.failed.Load(),
			BreakerOpens: w.brk.openCount(),
		}
	}
	return out
}
