package coord

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"cache8t/internal/rescache"
	"cache8t/internal/server"
)

// newWorkerServer spins up a real in-process sramd worker (the full job
// server, not a fake) behind an httptest listener.
func newWorkerServer(t *testing.T) string {
	t.Helper()
	srv, err := server.New(server.Config{Workers: 2, Version: "coord-test"})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return hs.URL
}

func TestCoordinatedSweepMatchesSerialByteForByte(t *testing.T) {
	// The acceptance criterion end to end: a 3-worker coordinated fan-out
	// (real job servers, real HTTP, parallel dispatch, round-robin
	// scheduling) produces a merged ledger byte-identical to the serial
	// in-process run of the same sweep.
	workers := []string{newWorkerServer(t), newWorkerServer(t), newWorkerServer(t)}
	h := newHarness(t, Config{
		Workers:          workers,
		DispatchParallel: 4,
		PollInterval:     2 * time.Millisecond,
		JitterSeed:       7,
	})

	spec := SweepSpec{
		Controllers: []string{"rmw", "wgrb"},
		Workloads:   []string{"bwaves"},
		Seeds:       []uint64{1, 2, 3},
		N:           400,
	}
	st := h.submit(spec)
	st = h.waitTerminal(st.ID, 0) // real clock: waitTerminal only polls
	if st.State != server.StateSucceeded {
		t.Fatalf("sweep %s: %s (%s)", st.ID, st.State, st.Error)
	}
	if st.Done != 6 || st.Points != 6 {
		t.Fatalf("done %d/%d, want 6/6", st.Done, st.Points)
	}
	requireSerialLedger(t, spec, h.result(st.ID))
}

func TestCoordinatorRecoversSweepFromJournal(t *testing.T) {
	// Crash recovery: a coordinator that died with a sweep journaled but
	// unfinished must, on restart, re-dispatch the sweep — resuming, not
	// restarting, because points already in the CAS are never re-simulated.
	dir := t.TempDir()
	cache, err := rescache.Open(rescache.Config{Dir: filepath.Join(dir, "cas")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cache.Close() })
	jdir := filepath.Join(dir, "journal")

	spec := tinySweep(1, 2, 3)
	spec.Normalize()
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	points, err := spec.Decompose()
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the dead coordinator's footprint: canonical spec in the CAS,
	// a queued record in the journal, and point 0 already finished.
	canon, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cache.Put("sweep:"+hash, canon)
	art0, err := server.Execute(context.Background(), points[0].Spec, points[0].Source, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(points[0].ConfigHash, art0)
	j, _, err := server.OpenRecordJournal(jdir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendRecord(server.Record{Job: "s-000001", State: server.StateQueued, SpecKey: hash}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	h := newHarness(t, Config{
		Workers:      []string{newWorkerServer(t)},
		Cache:        cache,
		JournalDir:   jdir,
		PollInterval: 2 * time.Millisecond,
		JitterSeed:   9,
	})
	if got := h.c.met.sweepsRecovered.Load(); got != 1 {
		t.Fatalf("recovered metric = %d, want 1", got)
	}
	st := h.waitTerminal("s-000001", 0)
	if st.State != server.StateSucceeded {
		t.Fatalf("recovered sweep: %s (%s)", st.State, st.Error)
	}
	if !st.Recovered {
		t.Fatal("status does not carry recovered flag")
	}
	if st.Cached < 1 {
		t.Fatalf("cached = %d, want >= 1 (point 0 was pre-finished)", st.Cached)
	}
	merged := h.result("s-000001")
	requireSerialLedger(t, spec, merged)

	// A fresh submission after recovery continues the id sequence.
	st2 := h.submit(tinySweep(9))
	if st2.ID != "s-000002" {
		t.Fatalf("post-recovery id = %s, want s-000002", st2.ID)
	}
	if got := h.waitTerminal(st2.ID, 0); got.State != server.StateSucceeded {
		t.Fatalf("post-recovery sweep: %s (%s)", got.State, got.Error)
	}

	// Second life: everything terminal now, so a restarted coordinator
	// re-registers both sweeps and serves the merged ledger from the CAS.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	h.c.Shutdown(ctx)
	cancel()

	c2, err := New(Config{Cache: cache, JournalDir: jdir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		c2.Shutdown(ctx)
	}()
	s2 := c2.lookupByID("s-000001")
	if s2 == nil {
		t.Fatal("terminal sweep lost on second recovery")
	}
	if st := s2.State(); st != server.StateSucceeded {
		t.Fatalf("second-life state = %s, want succeeded", st)
	}
	if got := s2.Merged(); !bytes.Equal(got, merged) {
		t.Fatalf("second-life ledger differs (%d vs %d bytes)", len(got), len(merged))
	}
}

// lookupByID is a test helper around the sweep table.
func (c *Coordinator) lookupByID(id string) *Sweep {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sweeps[id]
}

func TestSubmitShortCircuitsOnCachedLedger(t *testing.T) {
	// Submitting a sweep whose merged ledger is already content-addressed
	// in the CAS finishes succeeded without touching a single worker — the
	// sweep-level analogue of the worker's cached submit.
	dir := t.TempDir()
	cache, err := rescache.Open(rescache.Config{Dir: filepath.Join(dir, "cas")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cache.Close() })

	spec := tinySweep(4)
	want, err := ExecuteSerial(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	specN := spec
	specN.Normalize()
	hash, err := specN.Hash()
	if err != nil {
		t.Fatal(err)
	}
	cache.Put("ledger:"+hash, want)

	// No workers registered at all: any dispatch attempt would fail.
	h := newHarness(t, Config{Cache: cache, JitterSeed: 11})
	st := h.submit(spec)
	st = h.waitTerminal(st.ID, 0)
	if st.State != server.StateSucceeded {
		t.Fatalf("cached sweep: %s (%s)", st.State, st.Error)
	}
	if st.Cached != st.Points || st.Done != st.Points {
		t.Fatalf("cached %d done %d, want both == points %d", st.Cached, st.Done, st.Points)
	}
	if got := h.result(st.ID); !bytes.Equal(got, want) {
		t.Fatal("short-circuited ledger differs from the cached bytes")
	}
	if got := h.c.met.pointsDispatched.Load(); got != 0 {
		t.Fatalf("dispatched %d points for a fully cached sweep", got)
	}
}
