package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cache8t/internal/report"
	"cache8t/internal/rescache"
	"cache8t/internal/server"
)

// maxResponseBytes bounds any single worker response body the coordinator
// will buffer (artifacts are a few KB; this is a containment limit).
const maxResponseBytes = 8 << 20

// maxSweepSpecBytes bounds a submitted sweep spec body.
const maxSweepSpecBytes = 1 << 20

// errCorrupt marks a fetched artifact that failed config-hash verification.
// Such a result is re-dispatched (the hash names the exact simulation the
// point requires, so a mismatch means the worker returned the wrong or
// damaged bytes) and never reaches the merge.
var errCorrupt = errors.New("artifact failed config-hash verification")

// Config parameterizes a Coordinator. Zero values get production defaults;
// tests inject a fake Clock and tight timeouts.
type Config struct {
	// Workers are base URLs of sramd workers registered at startup. More can
	// join later via POST /v1/workers.
	Workers []string
	// DispatchParallel caps concurrently in-flight point dispatches per
	// sweep (default 4).
	DispatchParallel int
	// MaxActiveSweeps caps concurrently non-terminal sweeps (default 8).
	MaxActiveSweeps int
	// PointTimeout bounds one dispatch attempt end to end — submit, poll,
	// fetch (default 2m).
	PointTimeout time.Duration
	// PollInterval spaces job-status polls within an attempt (default 25ms).
	PollInterval time.Duration
	// PointAttempts caps dispatch attempts per point before the sweep fails
	// (default 5).
	PointAttempts int
	// BackoffBase and BackoffCap shape the jittered exponential backoff
	// between attempts: base×2^n capped, then jittered into [d/2, d]
	// (defaults 100ms / 5s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BreakerThreshold consecutive failures open a worker's breaker for
	// BreakerCooldown (defaults 3 / 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ProbeInterval, when > 0, starts the active health prober: every
	// interval each worker's /healthz is probed (each probe bounded by one
	// interval) and the outcome feeds that worker's circuit breaker exactly
	// like a dispatch outcome. 0 (the default) disables active probing;
	// health then comes only from real dispatches.
	ProbeInterval time.Duration
	// SweepRate and SweepBurst configure the per-client submission token
	// bucket (rate <= 0 disables limiting; default burst 4).
	SweepRate  float64
	SweepBurst int
	// Cache is the result cache. Per-point artifacts are stored under their
	// config hash (shared with the workers' key scheme), sweep specs under
	// "sweep:<hash>", merged ledgers under "ledger:<hash>".
	Cache *rescache.Cache
	// JournalDir, when set, makes the sweep table durable through the same
	// journal idiom the job server uses. Requires Cache with a disk tier.
	JournalDir string
	// Clock abstracts time; tests inject a fake (default wall clock).
	Clock Clock
	// HTTPClient performs worker requests (default a fresh client; per-call
	// deadlines come from PointTimeout, not a client timeout).
	HTTPClient *http.Client
	// JitterSeed seeds the backoff jitter RNG for reproducible tests
	// (default 1; jitter de-synchronizes concurrent retries either way).
	JitterSeed int64
	// Version is reported by /healthz.
	Version string
}

func (cfg Config) withDefaults() Config {
	if cfg.DispatchParallel <= 0 {
		cfg.DispatchParallel = 4
	}
	if cfg.MaxActiveSweeps <= 0 {
		cfg.MaxActiveSweeps = 8
	}
	if cfg.PointTimeout <= 0 {
		cfg.PointTimeout = 2 * time.Minute
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 25 * time.Millisecond
	}
	if cfg.PointAttempts <= 0 {
		cfg.PointAttempts = 5
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 5 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.SweepBurst <= 0 {
		cfg.SweepBurst = 4
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 1
	}
	return cfg
}

// Coordinator owns the sweep table and the dispatch loop. All its state
// beyond the journal is in memory; workers hold no coordinator state at all.
type Coordinator struct {
	cfg   Config
	clk   Clock
	reg   *registry
	lim   *limiter
	httpc *http.Client
	cache *rescache.Cache

	journal *server.Journal
	met     coordMetrics

	rngMu sync.Mutex
	rng   *rand.Rand

	baseCtx    context.Context
	baseCancel context.CancelFunc
	accepting  atomic.Bool
	sweepWG    sync.WaitGroup
	proberWG   sync.WaitGroup

	mu     sync.Mutex
	sweeps map[string]*Sweep
	order  []string
	seq    int
	active int // non-terminal sweeps
}

// New builds a Coordinator, registers cfg.Workers, and — when JournalDir is
// set — replays the sweep journal: terminal sweeps re-appear with their
// ledgers served from the CAS, non-terminal sweeps resume dispatching, with
// already-finished points found under their config hashes and never
// re-simulated.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.JournalDir != "" && (cfg.Cache == nil || !cfg.Cache.HasDisk()) {
		return nil, fmt.Errorf("coord: JournalDir requires a result cache with a disk tier")
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:        cfg,
		clk:        cfg.Clock,
		reg:        newRegistry(cfg.BreakerThreshold, cfg.BreakerCooldown),
		lim:        newLimiter(cfg.SweepRate, cfg.SweepBurst),
		httpc:      cfg.HTTPClient,
		cache:      cfg.Cache,
		rng:        rand.New(rand.NewSource(cfg.JitterSeed)),
		baseCtx:    ctx,
		baseCancel: cancel,
		sweeps:     map[string]*Sweep{},
	}
	c.accepting.Store(true)
	for _, u := range cfg.Workers {
		if _, err := c.reg.add(u); err != nil {
			cancel()
			return nil, err
		}
	}
	if cfg.JournalDir != "" {
		j, recs, err := server.OpenRecordJournal(cfg.JournalDir)
		if err != nil {
			cancel()
			return nil, err
		}
		c.journal = j
		c.recover(recs)
	}
	if cfg.ProbeInterval > 0 {
		c.proberWG.Add(1)
		go c.probeLoop()
	}
	return c, nil
}

// parseSweepID extracts the sequence number from a "s-%06d" sweep id.
func parseSweepID(id string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(id, "s-%06d", &n); err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// recover rebuilds the sweep table from compacted journal records. Terminal
// sweeps are re-registered as-is (ledger from the CAS); non-terminal sweeps
// whose canonical spec survives in the CAS are re-dispatched from scratch —
// per-point cache hits make the re-dispatch resume, not restart. A
// non-terminal sweep whose spec is gone fails explicitly rather than
// vanishing.
func (c *Coordinator) recover(recs []server.Record) {
	now := c.clk.Now()
	for _, rec := range recs {
		n, ok := parseSweepID(rec.Job)
		if !ok {
			continue
		}
		if n > c.seq {
			c.seq = n
		}
		var spec SweepSpec
		specOK := false
		if blob, _, ok := c.cache.Get("sweep:" + rec.SpecKey); ok {
			if sp, err := DecodeSweepSpec(blob); err == nil {
				spec, specOK = sp, true
			}
		}
		points := 0
		if specOK {
			points = spec.Points()
		}
		s := newSweep(c.baseCtx, rec.Job, spec, rec.SpecKey, points, now)
		s.markRecovered()
		c.mu.Lock()
		c.sweeps[s.ID] = s
		c.order = append(c.order, s.ID)
		c.mu.Unlock()
		switch {
		case rec.State.Terminal():
			var merged []byte
			if rec.State == server.StateSucceeded {
				if blob, _, ok := c.cache.Get("ledger:" + rec.SpecKey); ok {
					merged = blob
				}
				s.done.Store(int64(points))
			}
			s.finish(rec.State, rec.Error, merged, now)
		case !specOK:
			c.met.sweepsRecovered.Add(1)
			c.mu.Lock()
			c.active++
			c.mu.Unlock()
			c.finishSweep(s, server.StateFailed, "sweep spec lost from result cache; cannot resume", nil)
		default:
			c.met.sweepsRecovered.Add(1)
			c.mu.Lock()
			c.active++
			c.mu.Unlock()
			c.sweepWG.Add(1)
			go c.runSweep(s)
		}
	}
}

// Shutdown drains: no new sweeps are accepted, in-flight sweeps run to
// completion. When ctx expires first, remaining sweeps are cancelled.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.accepting.Store(false)
	done := make(chan struct{})
	go func() {
		c.sweepWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		c.baseCancel()
		<-done
	}
	c.baseCancel()
	c.proberWG.Wait()
	if c.journal != nil {
		c.journal.Close()
	}
	return err
}

// journalSweep appends one sweep transition (no-op without a journal).
func (c *Coordinator) journalSweep(s *Sweep, state server.State, errText string) {
	if c.journal == nil {
		return
	}
	c.journal.AppendRecord(server.Record{
		Job:      s.ID,
		State:    state,
		SpecKey:  s.Hash,
		Error:    errText,
		Accesses: uint64(s.done.Load()),
		UnixMS:   c.clk.Now().UnixMilli(),
	})
}

// finishSweep applies a terminal transition once: sweep state, journal,
// metrics, ledger persistence, active-count accounting.
func (c *Coordinator) finishSweep(s *Sweep, state server.State, errText string, merged []byte) {
	if !s.finish(state, errText, merged, c.clk.Now()) {
		return
	}
	if state == server.StateSucceeded && merged != nil && c.cache != nil {
		c.cache.Put("ledger:"+s.Hash, merged)
	}
	c.journalSweep(s, state, errText)
	switch state {
	case server.StateSucceeded:
		c.met.sweepsSucceeded.Add(1)
	case server.StateFailed:
		c.met.sweepsFailed.Add(1)
	case server.StateCancelled:
		c.met.sweepsCancelled.Add(1)
	}
	c.mu.Lock()
	c.active--
	c.mu.Unlock()
}

// runSweep is one sweep's lifecycle: decompose, fan the points over the
// fleet under the dispatch-parallel cap, slot every verified artifact by
// point index, merge. Slotting by index — never completion order — is what
// makes the merged ledger independent of scheduling.
func (c *Coordinator) runSweep(s *Sweep) {
	defer c.sweepWG.Done()
	if !s.start(c.clk.Now()) {
		return
	}
	c.journalSweep(s, server.StateRunning, "")
	points, err := s.Spec.Decompose()
	if err != nil {
		c.finishSweep(s, server.StateFailed, err.Error(), nil)
		return
	}
	arts := make([][]byte, len(points))
	errs := make([]error, len(points))
	sem := make(chan struct{}, c.cfg.DispatchParallel)
	var wg sync.WaitGroup
	for i := range points {
		if s.ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			arts[i], errs[i] = c.dispatchPoint(s, points[i])
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			c.finishSweep(s, server.StateFailed, fmt.Sprintf("point %d: %v", i, e), nil)
			return
		}
	}
	if s.ctx.Err() != nil {
		// Cancelled between scheduling loops; the DELETE handler already
		// applied the terminal transition, this is belt and braces.
		c.finishSweep(s, server.StateCancelled, "", nil)
		return
	}
	merged, err := MergeLedger(s.Hash, arts)
	if err != nil {
		c.finishSweep(s, server.StateFailed, err.Error(), nil)
		return
	}
	c.finishSweep(s, server.StateSucceeded, "", merged)
}

// dispatchPoint produces one point's verified artifact: result-cache first,
// then up to PointAttempts dispatches across the fleet with jittered
// exponential backoff between attempts. Every failure mode — HTTP error
// status, timeout, connection reset, corrupt artifact — lands here as an
// error and is retried, preferentially on a different worker (round-robin
// plus the failing worker's breaker filling up).
func (c *Coordinator) dispatchPoint(s *Sweep, p Point) ([]byte, error) {
	if c.cache != nil {
		if blob, _, ok := c.cache.Get(p.ConfigHash); ok {
			if art, err := report.Decode(blob); err == nil && art.ConfigHash == p.ConfigHash {
				c.met.pointsCached.Add(1)
				s.cached.Add(1)
				s.done.Add(1)
				return blob, nil
			}
		}
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.PointAttempts; attempt++ {
		if err := s.ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			c.met.redispatches.Add(1)
			s.retries.Add(1)
			if err := c.backoffWait(s.ctx, attempt-1); err != nil {
				return nil, err
			}
		}
		w := c.reg.pick(c.clk.Now())
		if w == nil {
			lastErr = errors.New("no worker available (fleet empty or every breaker open)")
			continue
		}
		art, err := c.runOnWorker(s.ctx, w, p)
		if err == nil {
			w.succeeded.Add(1)
			w.brk.success()
			c.met.pointsSucceeded.Add(1)
			s.done.Add(1)
			if c.cache != nil {
				c.cache.Put(p.ConfigHash, art)
			}
			return art, nil
		}
		lastErr = err
		if errors.Is(err, errCorrupt) {
			c.met.corruptArtifacts.Add(1)
		}
		w.failed.Add(1)
		if w.brk.failure(c.clk.Now()) {
			c.met.breakerOpens.Add(1)
		}
	}
	return nil, fmt.Errorf("gave up after %d attempts: %w", c.cfg.PointAttempts, lastErr)
}

// backoffWait sleeps (on the coordinator's clock) for the nth backoff:
// base×2^n capped at BackoffCap, jittered into [d/2, d] so concurrent
// retries spread out instead of stampeding a recovering worker.
func (c *Coordinator) backoffWait(ctx context.Context, n int) error {
	d := c.cfg.BackoffBase << uint(n)
	if d <= 0 || d > c.cfg.BackoffCap {
		d = c.cfg.BackoffCap
	}
	c.rngMu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d/2) + 1))
	c.rngMu.Unlock()
	d = d/2 + j
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-c.clk.After(d):
		return nil
	}
}

// runOnWorker is one dispatch attempt end to end: submit the point's job,
// poll to terminal, fetch the artifact, verify its config hash. The whole
// attempt shares one PointTimeout deadline on the coordinator's clock.
func (c *Coordinator) runOnWorker(ctx context.Context, w *worker, p Point) ([]byte, error) {
	c.met.pointsDispatched.Add(1)
	w.dispatched.Add(1)
	deadline := c.clk.Now().Add(c.cfg.PointTimeout)

	specBody, err := json.Marshal(p.Spec)
	if err != nil {
		return nil, err
	}
	body, code, err := c.doBounded(ctx, http.MethodPost, w.url+"/v1/jobs", specBody, deadline)
	if err != nil {
		return nil, fmt.Errorf("submit to %s: %w", w.url, err)
	}
	if code != http.StatusAccepted {
		return nil, fmt.Errorf("submit to %s: status %d: %s", w.url, code, strings.TrimSpace(string(body)))
	}
	var js server.JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		return nil, fmt.Errorf("submit to %s: bad status body: %w", w.url, err)
	}
	for !js.State.Terminal() {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-c.clk.After(c.cfg.PollInterval):
		}
		if !c.clk.Now().Before(deadline) {
			return nil, fmt.Errorf("point timed out after %s on %s", c.cfg.PointTimeout, w.url)
		}
		body, code, err = c.doBounded(ctx, http.MethodGet, w.url+"/v1/jobs/"+js.ID, nil, deadline)
		if err != nil {
			return nil, fmt.Errorf("poll %s on %s: %w", js.ID, w.url, err)
		}
		if code != http.StatusOK {
			return nil, fmt.Errorf("poll %s on %s: status %d: %s", js.ID, w.url, code, strings.TrimSpace(string(body)))
		}
		if err := json.Unmarshal(body, &js); err != nil {
			return nil, fmt.Errorf("poll %s on %s: bad status body: %w", js.ID, w.url, err)
		}
	}
	if js.State != server.StateSucceeded {
		return nil, fmt.Errorf("job %s on %s %s: %s", js.ID, w.url, js.State, js.Error)
	}
	body, code, err = c.doBounded(ctx, http.MethodGet, w.url+"/v1/jobs/"+js.ID+"/result", nil, deadline)
	if err != nil {
		return nil, fmt.Errorf("fetch %s on %s: %w", js.ID, w.url, err)
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("fetch %s on %s: status %d: %s", js.ID, w.url, code, strings.TrimSpace(string(body)))
	}
	art, err := report.Decode(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %s on %s: %v", errCorrupt, js.ID, w.url, err)
	}
	if art.ConfigHash != p.ConfigHash {
		return nil, fmt.Errorf("%w: %s on %s: got %s want %s", errCorrupt, js.ID, w.url, art.ConfigHash, p.ConfigHash)
	}
	return body, nil
}

type httpResult struct {
	body []byte
	code int
	err  error
}

// doBounded performs one HTTP exchange bounded by the attempt deadline on
// the coordinator's clock: the request runs in a goroutine and this call
// selects on completion, the clock, and ctx. On timeout the request context
// is cancelled, so a hung worker costs the deadline, never a goroutine.
func (c *Coordinator) doBounded(ctx context.Context, method, url string, reqBody []byte, deadline time.Time) ([]byte, int, error) {
	remaining := deadline.Sub(c.clk.Now())
	if remaining <= 0 {
		return nil, 0, fmt.Errorf("attempt deadline exceeded")
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan httpResult, 1)
	go func() {
		var rd io.Reader
		if reqBody != nil {
			rd = bytes.NewReader(reqBody)
		}
		req, err := http.NewRequestWithContext(rctx, method, url, rd)
		if err != nil {
			ch <- httpResult{err: err}
			return
		}
		if reqBody != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			ch <- httpResult{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
		if err != nil {
			ch <- httpResult{err: err}
			return
		}
		if len(b) > maxResponseBytes {
			ch <- httpResult{err: fmt.Errorf("response exceeds %d bytes", maxResponseBytes)}
			return
		}
		ch <- httpResult{body: b, code: resp.StatusCode}
	}()
	select {
	case r := <-ch:
		return r.body, r.code, r.err
	case <-c.clk.After(remaining):
		cancel()
		<-ch // the cancelled request returns promptly
		return nil, 0, fmt.Errorf("request timed out")
	case <-ctx.Done():
		cancel()
		<-ch
		return nil, 0, ctx.Err()
	}
}
