package coord

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"cache8t/internal/server"
)

// buildArts runs every point of spec serially and returns the per-point
// artifact bytes in decomposition order, plus the sweep hash.
func buildArts(t *testing.T, spec SweepSpec) (string, [][]byte) {
	t.Helper()
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	points, err := spec.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	arts := make([][]byte, len(points))
	for i, p := range points {
		b, err := server.Execute(context.Background(), p.Spec, p.Source, nil)
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		arts[i] = b
	}
	return hash, arts
}

func TestMergeLedgerPermutationInvariant(t *testing.T) {
	// The coordinator's half of the determinism contract: artifacts are
	// slotted by point index, so ANY completion order fills the slot table
	// to the same canonical ledger bytes. This is the quick-check over
	// randomized completion orders; the fault and e2e tests exercise the
	// same property through real scheduling.
	spec := SweepSpec{
		Controllers: []string{"rmw", "wgrb"},
		Workloads:   []string{"bwaves"},
		Seeds:       []uint64{1, 2},
		N:           300,
	}
	hash, arts := buildArts(t, spec)
	want, err := MergeLedger(hash, arts)
	if err != nil {
		t.Fatal(err)
	}

	pr := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		slots := make([][]byte, len(arts))
		for _, i := range pr.Perm(len(arts)) {
			slots[i] = arts[i] // completion in permuted order, slotting by index
		}
		got, err := MergeLedger(hash, slots)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: permuted completion order changed the merged bytes", trial)
		}
	}

	serial, err := ExecuteSerial(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, want) {
		t.Fatal("ExecuteSerial differs from MergeLedger over the same artifacts")
	}

	l, err := DecodeLedger(want)
	if err != nil {
		t.Fatal(err)
	}
	if l.SweepHash != hash || l.Points != len(arts) || l.Tool != LedgerTool {
		t.Fatalf("decoded ledger header %+v", l)
	}
}

func TestMergeLedgerRejectsHolesAndCorruption(t *testing.T) {
	spec := tinySweep(1, 2)
	hash, arts := buildArts(t, spec)

	hole := make([][]byte, len(arts))
	copy(hole, arts)
	hole[1] = nil
	if _, err := MergeLedger(hash, hole); err == nil {
		t.Fatal("merged a ledger with a missing artifact")
	}

	corrupt := make([][]byte, len(arts))
	copy(corrupt, arts)
	flipped := bytes.Replace(arts[0], []byte(`"reads"`), []byte(`"rAads"`), 1)
	if bytes.Equal(flipped, arts[0]) {
		// The artifact body is an implementation detail; if the marker is
		// not present, damage the bytes cruder.
		flipped = append([]byte{}, arts[0]...)
		flipped[len(flipped)/2] ^= 0x01
	}
	corrupt[0] = flipped
	if _, err := MergeLedger(hash, corrupt); err == nil {
		t.Fatal("merged a ledger containing a corrupt artifact")
	}
}

func TestDecodeLedgerRejectsBadHeaders(t *testing.T) {
	if _, err := DecodeLedger([]byte(`{`)); err == nil {
		t.Fatal("decoded malformed JSON")
	}
	if _, err := DecodeLedger([]byte(`{"schema":99,"tool":"sramd-coord","points":0,"artifacts":[]}`)); err == nil {
		t.Fatal("decoded wrong schema")
	}
	if _, err := DecodeLedger([]byte(`{"schema":1,"tool":"sramd-coord","points":3,"artifacts":[]}`)); err == nil {
		t.Fatal("decoded points/artifacts mismatch")
	}
}
