package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"cache8t/internal/trace"
)

// State is a job's position in the lifecycle state machine:
//
//	queued → running → succeeded | failed | cancelled
//
// plus the queued → cancelled shortcut for jobs deleted before a worker
// picks them up. Terminal states never change.
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCancelled
}

// progressNotifyStride is how many decoded accesses pass between SSE
// progress wake-ups. Counting is per access (one atomic add); notification
// is throttled so a million-access job broadcasts dozens of events, not a
// million.
const progressNotifyStride = 1 << 16

// Job is one submitted simulation: the validated spec, the resolved input
// source, and the mutable lifecycle state the HTTP handlers observe.
type Job struct {
	// ID is the server-assigned job identifier.
	ID string
	// Spec is the validated, normalized spec as submitted.
	Spec JobSpec
	// Source names the input ("bwaves", or "trace:sha256:…" for uploads).
	Source string
	// ConfigHash is the sha256 the finished artifact's config will carry,
	// computed at submit time so clients can correlate before completion.
	ConfigHash string

	// tracePath is the spooled upload backing a trace job ("" = workload).
	tracePath string
	// bytesIngested is the spooled trace size in bytes (0 = workload).
	bytesIngested int64

	// ctx cancels the job (DELETE, server drain-kill); cancel is its handle.
	ctx    context.Context
	cancel context.CancelFunc

	// accesses counts decoded accesses — live progress for status and SSE.
	accesses atomic.Uint64

	mu        sync.Mutex
	state     State
	errText   string
	artifact  []byte // canonical artifact bytes, set on success
	cached    bool   // artifact served from the result cache, not computed
	recovered bool   // job replayed from the journal after a restart
	notifyCh  chan struct{}
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// newJob builds a queued job whose context descends from parent.
func newJob(parent context.Context, id string, spec JobSpec, source, configHash string) *Job {
	ctx, cancel := context.WithCancel(parent)
	return &Job{
		ID:         id,
		Spec:       spec,
		Source:     source,
		ConfigHash: configHash,
		ctx:        ctx,
		cancel:     cancel,
		state:      StateQueued,
		notifyCh:   make(chan struct{}),
		submitted:  time.Now(),
	}
}

// watch returns a channel closed on the next state or progress change.
// Grab the channel before reading status: updates between the two are then
// guaranteed to re-close a channel the caller already holds.
func (j *Job) watch() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.notifyCh
}

// changed wakes every watcher.
func (j *Job) changed() {
	j.mu.Lock()
	close(j.notifyCh)
	j.notifyCh = make(chan struct{})
	j.mu.Unlock()
}

// start moves queued → running. It refuses (returning false) when the job
// was cancelled while still in the queue.
func (j *Job) start() bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	j.changed()
	return true
}

// finish moves the job to a terminal state exactly once, reporting whether
// this call was the transition. Idempotence is what lets DELETE race the
// worker without double-counting metrics or WaitGroup releases.
func (j *Job) finish(state State, errText string, artifact []byte) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.errText = errText
	j.artifact = artifact
	j.finished = time.Now()
	j.mu.Unlock()
	j.cancel() // release the context either way
	j.changed()
	return true
}

// markCached flags the job as served from the result cache. The artifact
// bytes are byte-identical to a computed run — the identity tests pin that
// — so this is pure provenance, surfaced as `"cached": true` in status.
func (j *Job) markCached() {
	j.mu.Lock()
	j.cached = true
	j.mu.Unlock()
}

// markRecovered flags the job as replayed from the journal after a restart,
// surfaced as `"recovered": true` in status and as the SSE "recovered"
// event. Set during recovery, before the job is reachable from handlers.
func (j *Job) markRecovered() {
	j.mu.Lock()
	j.recovered = true
	j.mu.Unlock()
}

// IsRecovered reports whether the job was replayed from the journal.
func (j *Job) IsRecovered() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recovered
}

// Artifact returns the canonical artifact bytes (nil unless succeeded).
func (j *Job) Artifact() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.artifact
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// JobStatus is the wire form of a job's observable state.
type JobStatus struct {
	ID         string  `json:"id"`
	State      State   `json:"state"`
	Spec       JobSpec `json:"spec"`
	Source     string  `json:"source"`
	ConfigHash string  `json:"config_hash"`
	// Accesses is live progress: accesses decoded so far (== the total once
	// the job succeeds).
	Accesses      uint64 `json:"accesses"`
	BytesIngested int64  `json:"bytes_ingested,omitempty"`
	// Cached marks an artifact served from the result cache rather than
	// simulated; the bytes are identical either way.
	Cached bool `json:"cached,omitempty"`
	// Recovered marks a job replayed from the journal after a daemon restart.
	Recovered bool   `json:"recovered,omitempty"`
	Error     string `json:"error,omitempty"`
	// SubmittedUnixMS stamps submission; QueueMS and RunMS split the job's
	// life between waiting and executing (running jobs report RunMS so far).
	SubmittedUnixMS int64   `json:"submitted_unix_ms"`
	QueueMS         float64 `json:"queue_ms,omitempty"`
	RunMS           float64 `json:"run_ms,omitempty"`
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:              j.ID,
		State:           j.state,
		Spec:            j.Spec,
		Source:          j.Source,
		ConfigHash:      j.ConfigHash,
		Accesses:        j.accesses.Load(),
		BytesIngested:   j.bytesIngested,
		Cached:          j.cached,
		Recovered:       j.recovered,
		Error:           j.errText,
		SubmittedUnixMS: j.submitted.UnixMilli(),
	}
	if !j.started.IsZero() {
		st.QueueMS = float64(j.started.Sub(j.submitted).Microseconds()) / 1e3
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.RunMS = float64(end.Sub(j.started).Microseconds()) / 1e3
	}
	return st
}

// countingStream counts every access a job decodes and wakes SSE watchers
// once per notify stride. It is the wrap RunSpec hangs on the job's stream.
type countingStream struct {
	inner trace.Stream
	job   *Job
}

// Next implements trace.Stream.
func (c *countingStream) Next() (trace.Access, bool) {
	a, ok := c.inner.Next()
	if ok {
		if n := c.job.accesses.Add(1); n%progressNotifyStride == 0 {
			c.job.changed()
		}
	}
	return a, ok
}

// Err surfaces the inner stream's decode error, preserving the ErrStream
// contract for spooled trace uploads so mid-stream corruption fails the job
// instead of truncating it silently.
func (c *countingStream) Err() error {
	if es, ok := c.inner.(trace.ErrStream); ok {
		return es.Err()
	}
	return nil
}
