package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
)

// lockFile is the advisory daemon lock's file name inside a locked dir.
const lockFile = "sramd.lock"

// AcquireDirLock claims dir for this process: it verifies the directory is
// writable (creating it if needed) and takes an advisory pid lock, so a
// daemon pointed at a read-only path or at another live daemon's journal
// fails fast at startup with a clear error instead of corrupting shared
// state or dying mid-job. A lock left behind by a kill -9 (its pid no
// longer runs) is detected as stale and taken over — that is exactly the
// crash-recovery path. The returned release removes the lock; call it on
// clean shutdown only, so a crashed daemon's successor sees the stale lock
// and recovers.
func AcquireDirLock(dir string) (release func(), err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("directory %s is not usable: %w", dir, err)
	}
	// Writability probe: MkdirAll succeeds on an existing read-only
	// directory, so prove write access with a real file.
	probe, err := os.CreateTemp(dir, "sramd-probe-*")
	if err != nil {
		return nil, fmt.Errorf("directory %s is not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())

	path := filepath.Join(dir, lockFile)
	for attempt := 0; ; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintf(f, "%d\n", os.Getpid())
			f.Close()
			return func() { os.Remove(path) }, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("cannot lock %s: %w", dir, err)
		}
		pid, perr := readLockPid(path)
		if perr == nil && pidAlive(pid) {
			return nil, fmt.Errorf("directory %s is locked by running sramd pid %d; stop it or use a different directory", dir, pid)
		}
		if attempt > 0 {
			// The stale lock was removed and reappeared: a concurrent starter
			// won the O_EXCL race. Treat it as live rather than looping.
			return nil, fmt.Errorf("directory %s is locked by another starting sramd", dir)
		}
		// Stale lock (unreadable, or its pid is gone): the previous daemon
		// crashed. Remove it and retry the exclusive create once.
		os.Remove(path)
	}
}

// readLockPid parses the pid a lock file records.
func readLockPid(path string) (int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(strings.TrimSpace(string(b)))
}

// pidAlive reports whether pid names a running process, via the portable
// signal-0 probe. EPERM means the process exists but belongs to another
// user — alive for locking purposes.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	proc, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = proc.Signal(syscall.Signal(0))
	return err == nil || err == syscall.EPERM
}
