package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// rec is shorthand for building journal records in tests.
func rec(job string, state State, mut ...func(*journalRecord)) journalRecord {
	r := journalRecord{V: journalVersion, Job: job, State: state}
	for _, m := range mut {
		m(&r)
	}
	return r
}

func encodeRecords(t *testing.T, recs []journalRecord) []byte {
	t.Helper()
	var buf []byte
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	return buf
}

// TestDecodeJournalLongestPrefix pins the recovery contract: everything
// before the first malformed line is kept, everything at and after it is
// dropped, and a torn (newline-less) tail never counts.
func TestDecodeJournalLongestPrefix(t *testing.T) {
	valid := encodeRecords(t, []journalRecord{
		rec("j-000001", StateQueued, func(r *journalRecord) { r.SpecKey = "ab12" }),
		rec("j-000001", StateRunning),
	})
	cases := []struct {
		label string
		data  []byte
		want  int
	}{
		{"empty", nil, 0},
		{"clean", valid, 2},
		{"torn tail", append(append([]byte{}, valid...), `{"v":1,"job":"j-00`...), 2},
		{"garbage line", append(append([]byte{}, valid...), "not json\n"...), 2},
		{"garbage then valid", append([]byte("not json\n"), valid...), 0},
		{"wrong version", append(append([]byte{}, valid...), `{"v":9,"job":"j-000002","state":"queued"}`+"\n"...), 2},
		{"unknown state", append(append([]byte{}, valid...), `{"v":1,"job":"j-000002","state":"paused"}`+"\n"...), 2},
		{"missing job", append(append([]byte{}, valid...), `{"v":1,"state":"queued"}`+"\n"...), 2},
		{"binary noise", []byte{0, 1, 2, 0xff, '\n'}, 0},
	}
	for _, tc := range cases {
		if got := decodeJournal(tc.data); len(got) != tc.want {
			t.Errorf("%s: decoded %d records, want %d", tc.label, len(got), tc.want)
		}
	}
}

// TestCompactRecordsTerminalSticky pins the out-of-order guard: a fast job's
// terminal record can hit the journal before its queued record (submit
// appends outside the server lock), and replay must not resurrect it.
func TestCompactRecordsTerminalSticky(t *testing.T) {
	recs := []journalRecord{
		rec("j-000001", StateRunning),
		rec("j-000001", StateSucceeded, func(r *journalRecord) { r.Accesses = 500; r.Cached = true }),
		rec("j-000001", StateQueued, func(r *journalRecord) { r.SpecKey = "ab12"; r.Source = "bwaves"; r.UnixMS = 7 }),
	}
	out := compactRecords(recs)
	if len(out) != 1 {
		t.Fatalf("compacted to %d records, want 1", len(out))
	}
	got := out[0]
	if got.State != StateSucceeded || got.Accesses != 500 || !got.Cached {
		t.Errorf("terminal state not sticky: %+v", got)
	}
	if got.SpecKey != "ab12" || got.Source != "bwaves" || got.UnixMS != 7 {
		t.Errorf("spec fields not merged from late queued record: %+v", got)
	}
}

// TestCompactRecordsOrderAndMerge checks submission order survives and that
// a normal lifecycle folds to its terminal record.
func TestCompactRecordsOrderAndMerge(t *testing.T) {
	recs := []journalRecord{
		rec("j-000001", StateQueued, func(r *journalRecord) { r.SpecKey = "aa"; r.UnixMS = 1 }),
		rec("j-000002", StateQueued, func(r *journalRecord) { r.SpecKey = "bb"; r.UnixMS = 2 }),
		rec("j-000001", StateRunning),
		rec("j-000002", StateRunning),
		rec("j-000002", StateFailed, func(r *journalRecord) { r.Error = "boom"; r.Accesses = 9 }),
	}
	out := compactRecords(recs)
	if len(out) != 2 || out[0].Job != "j-000001" || out[1].Job != "j-000002" {
		t.Fatalf("order not preserved: %+v", out)
	}
	if out[0].State != StateRunning || out[0].SpecKey != "aa" || out[0].UnixMS != 1 {
		t.Errorf("j-000001 merged wrong: %+v", out[0])
	}
	if out[1].State != StateFailed || out[1].Error != "boom" || out[1].Accesses != 9 {
		t.Errorf("j-000002 merged wrong: %+v", out[1])
	}
}

// TestJournalCompactionOnOpen writes a chatty journal, reopens it, and
// requires the on-disk file to shrink to one line per job while replay sees
// the merged state. A torn tail must survive neither the decode nor the
// compaction rewrite.
func TestJournalCompactionOnOpen(t *testing.T) {
	dir := t.TempDir()
	j1, recs, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	for _, r := range []journalRecord{
		rec("j-000001", StateQueued, func(r *journalRecord) { r.SpecKey = "aa" }),
		rec("j-000001", StateRunning),
		rec("j-000001", StateSucceeded, func(r *journalRecord) { r.Accesses = 100 }),
		rec("j-000002", StateQueued, func(r *journalRecord) { r.SpecKey = "bb" }),
		rec("j-000002", StateRunning),
	} {
		if err := j1.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn final append.
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"v":1,"job":"j-0000`)
	f.Close()

	j2, recs, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	if recs[0].Job != "j-000001" || recs[0].State != StateSucceeded || recs[0].Accesses != 100 {
		t.Errorf("j-000001 replay: %+v", recs[0])
	}
	if recs[1].Job != "j-000002" || recs[1].State != StateRunning || recs[1].SpecKey != "bb" {
		t.Errorf("j-000002 replay: %+v", recs[1])
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 2 {
		t.Errorf("compacted journal has %d lines, want 2:\n%s", lines, data)
	}
	if int64(len(data)) != j2.Bytes() {
		t.Errorf("Bytes() = %d, file is %d", j2.Bytes(), len(data))
	}
}

// FuzzJournal hammers the replay decoder with arbitrary bytes: it must never
// panic, must only return valid records, and the decoded prefix must
// round-trip (re-encode → re-decode → identical), which is exactly what the
// on-open compaction rewrite relies on. Wired into `make fuzz-smoke` and CI.
func FuzzJournal(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(`{"v":1,"job":"j-000001","state":"queued","spec_key":"ab","source":"bwaves","unix_ms":5}` + "\n"))
	f.Add([]byte(`{"v":1,"job":"j-000001","state":"queued"}` + "\n" + `{"v":1,"job":"j-000001","state":"succeeded","accesses":7,"cached":true}` + "\n"))
	f.Add([]byte(`{"v":1,"job":"j-000001","state":"queued"}` + "\n" + `{"v":1,"job":"j-0`))
	f.Add([]byte(`{"v":2,"job":"j-000001","state":"queued"}` + "\n"))
	f.Add([]byte(`{"v":1,"job":"","state":"queued"}` + "\n"))
	f.Add([]byte(`{"v":1,"job":"j-000001","state":"paused"}` + "\n"))
	f.Add([]byte("\x00\x01\xff\n"))
	f.Add([]byte("[]\n{}\ntrue\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs := decodeJournal(data)
		for i, r := range recs {
			if !r.valid() {
				t.Fatalf("record %d invalid: %+v", i, r)
			}
		}
		var buf []byte
		for _, r := range recs {
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			buf = append(buf, b...)
			buf = append(buf, '\n')
		}
		again := decodeJournal(buf)
		if len(again) != len(recs) || (len(recs) > 0 && !reflect.DeepEqual(again, recs)) {
			t.Fatalf("round trip changed records:\n%+v\nvs\n%+v", recs, again)
		}
		if out := compactRecords(recs); len(out) > len(recs) {
			t.Fatalf("compaction grew the record set: %d -> %d", len(recs), len(out))
		}
	})
}

// TestAcquireDirLock pins the daemon-lock lifecycle: acquire, conflict with
// a live holder, release, stale-lock takeover.
func TestAcquireDirLock(t *testing.T) {
	dir := t.TempDir()
	release, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// The lock records this process's pid — a second acquire must refuse.
	if _, err := AcquireDirLock(dir); err == nil {
		t.Fatal("second acquire succeeded while the lock is held by a live pid")
	} else if !strings.Contains(err.Error(), "locked by running sramd") {
		t.Fatalf("conflict error not descriptive: %v", err)
	}
	release()
	release2, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatalf("reacquire after release: %v", err)
	}
	release2()

	// A stale lock — pid that no longer runs — is taken over.
	if err := os.WriteFile(filepath.Join(dir, lockFile), []byte("999999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	release3, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatalf("stale-lock takeover: %v", err)
	}
	release3()

	// An unreadable-pid lock is equally stale.
	if err := os.WriteFile(filepath.Join(dir, lockFile), []byte("not a pid"), 0o644); err != nil {
		t.Fatal(err)
	}
	release4, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatalf("garbled-lock takeover: %v", err)
	}
	release4()
}

// TestAcquireDirLockUnwritable pins the fail-fast path for a read-only
// directory.
func TestAcquireDirLockUnwritable(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("running as root: chmod 0500 does not block writes")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if _, err := AcquireDirLock(dir); err == nil {
		t.Fatal("acquire succeeded on a read-only directory")
	} else if !strings.Contains(err.Error(), "not writable") {
		t.Fatalf("unwritable error not descriptive: %v", err)
	}
}

// TestRetainRecords pins the retention filter's edges: only terminal,
// timestamped, out-of-window records are dropped; a zero window keeps all.
func TestRetainRecords(t *testing.T) {
	now := time.Unix(10_000, 0)
	old := now.Add(-2 * time.Hour).UnixMilli()
	fresh := now.Add(-time.Minute).UnixMilli()
	recs := []journalRecord{
		{V: 1, Job: "j-1", State: StateSucceeded, UnixMS: old}, // aged out
		{V: 1, Job: "j-2", State: StateFailed, UnixMS: fresh},  // in window
		{V: 1, Job: "j-3", State: StateRunning, UnixMS: old},   // live: kept
		{V: 1, Job: "j-4", State: StateCancelled},              // no stamp: kept
	}
	got := retainRecords(append([]journalRecord(nil), recs...), time.Hour, now)
	if len(got) != 3 || got[0].Job != "j-2" || got[1].Job != "j-3" || got[2].Job != "j-4" {
		t.Fatalf("retainRecords kept %+v", got)
	}
	if got := retainRecords(append([]journalRecord(nil), recs...), 0, now); len(got) != len(recs) {
		t.Fatalf("zero window dropped records: %+v", got)
	}
}
