package server

import (
	"bytes"
	"testing"
)

// FuzzJobSpec fuzzes the wire decoder and validator with arbitrary bytes.
// Two properties are pinned:
//
//  1. DecodeSpec and Validate never panic, whatever the input — the daemon
//     parses these bytes off the public socket.
//  2. Every accepted spec round-trips through its canonical encoding:
//     decode(Canonical(spec)) re-encodes to the same bytes. This is what
//     makes the submit-time config hash stable and the spec safe to echo
//     back through the API.
func FuzzJobSpec(f *testing.F) {
	for _, seed := range []string{
		`{"controller":"wgrb","workload":"bwaves","n":50000}`,
		`{"controller":"rmw","workload":"mcf","n":1,"seed":18446744073709551615,"shards":8}`,
		`{"controller":"wg","workload":"gcc","n":10,"cache":{"size_kb":32,"ways":8,"block_bytes":64,"policy":"plru"},"options":{"buffer_depth":4,"disable_silent_elision":true,"count_fill_traffic":true},"batch":512,"vdd":0.85,"freq_mhz":1500.5}`,
		`{"controller":"conventional"}`,
		`{}`,
		`null`,
		`{"controller":"wgrb","n":-1,"vdd":-0}`,
		`{"controller":"wgrb","workload":"bwaves","n":1e3}`,
		`{"controller":"wgrb"} trailing`,
		`[1,2]`,
		`{"controller":"wgrb","unknown":true}`,
		`{"n":1,"n":2,"controller":"rmw"}`,
		`{"controller":"wg","workload":"bwaves","n":1000,"hierarchy":true}`,
		`{"controller":"ts","workload":"mcf","n":500,"hierarchy":true,"l2":{"controller":"wgrb","cache":{"size_kb":512,"ways":16,"block_bytes":64},"options":{"buffer_depth":2}}}`,
		`{"controller":"rmw","workload":"gcc","n":10,"l2":{"controller":"rmw"}}`,
		`{"controller":"rmw","workload":"gcc","n":10,"hierarchy":true,"shards":4}`,
		`{"controller":"rmw","workload":"gcc","n":10,"hierarchy":true,"l2":{"cache":{"block_bytes":4}}}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		spec, err := DecodeSpec(b)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		// Validation must never panic either, whichever source mode.
		spec.Validate(false)
		spec.Validate(true)

		c1, err := spec.Canonical()
		if err != nil {
			t.Fatalf("accepted spec failed to encode: %v (%+v)", err, spec)
		}
		spec2, err := DecodeSpec(c1)
		if err != nil {
			t.Fatalf("canonical encoding of an accepted spec failed to decode: %v\n%s", err, c1)
		}
		c2, err := spec2.Canonical()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonical round trip drifted:\n%s\nvs\n%s", c1, c2)
		}
	})
}
