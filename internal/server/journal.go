package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The job journal makes the job table survive a process kill: every state
// transition (queued → running → succeeded|failed|cancelled) is appended as
// one JSON line and fsynced before the transition is acknowledged. Specs are
// not duplicated into the journal — they live in the rescache CAS under
// "spec:<config-hash>", so a journal record carries only the hash. On open
// the journal is replayed (longest valid prefix: a torn final write or
// corrupt tail drops silently, pinned by FuzzJournal) and compacted to one
// record per job via the same temp-file→fsync→rename idiom the disk CAS
// uses, so the file stays bounded by the job table, not by job churn.

// journalVersion is the record schema version; decodeJournal rejects
// records from other versions rather than guessing at their fields.
const journalVersion = 1

// journalFile is the journal's file name inside Config.JournalDir.
const journalFile = "journal.log"

// journalRecord is one JSON line of the journal. A submission writes a full
// record (spec key, source, trace spool path); later transitions write only
// the job id, the new state, and terminal provenance — replay merges them.
type journalRecord struct {
	V     int    `json:"v"`
	Job   string `json:"job"`
	State State  `json:"state"`
	// SpecKey is the job's config hash; the canonical spec bytes live in
	// the result cache under "spec:<SpecKey>", and a succeeded artifact
	// under "<SpecKey>" itself.
	SpecKey    string `json:"spec_key,omitempty"`
	Source     string `json:"source,omitempty"`
	TracePath  string `json:"trace_path,omitempty"`
	TraceBytes int64  `json:"trace_bytes,omitempty"`
	Cached     bool   `json:"cached,omitempty"`
	Accesses   uint64 `json:"accesses,omitempty"`
	Error      string `json:"error,omitempty"`
	UnixMS     int64  `json:"unix_ms,omitempty"`
}

// valid reports whether a decoded record is structurally usable.
func (r journalRecord) valid() bool {
	if r.V != journalVersion || r.Job == "" {
		return false
	}
	switch r.State {
	case StateQueued, StateRunning, StateSucceeded, StateFailed, StateCancelled:
		return true
	default:
		return false
	}
}

// decodeJournal parses data into the longest valid prefix of records. The
// first malformed line — torn tail from a kill mid-append, corruption,
// interleaved garbage — ends the replay; everything before it is kept,
// everything after is dropped. It never panics on any input (FuzzJournal).
func decodeJournal(data []byte) []journalRecord {
	var out []journalRecord
	for len(data) > 0 {
		line := data
		if i := indexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			// No trailing newline: the final append was torn. Drop it.
			break
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || !rec.valid() {
			break
		}
		out = append(out, rec)
	}
	return out
}

// indexByte is bytes.IndexByte without pulling the import into the hot list
// above it. (Kept trivial; the journal is not a hot path.)
func indexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// compactRecords merges a replayed record sequence into one record per job,
// in first-seen (submission) order. State transitions apply in record order
// with one guard: terminal states are sticky, so a late-arriving "queued"
// record (submit and first-run records can land out of order around a very
// fast job) can never resurrect a finished job.
func compactRecords(recs []journalRecord) []journalRecord {
	byJob := map[string]*journalRecord{}
	var order []string
	for _, rec := range recs {
		cur := byJob[rec.Job]
		if cur == nil {
			r := rec
			byJob[rec.Job] = &r
			order = append(order, rec.Job)
			continue
		}
		if rec.SpecKey != "" {
			cur.SpecKey = rec.SpecKey
		}
		if rec.Source != "" {
			cur.Source = rec.Source
		}
		if rec.TracePath != "" {
			cur.TracePath = rec.TracePath
		}
		if rec.TraceBytes != 0 {
			cur.TraceBytes = rec.TraceBytes
		}
		if rec.UnixMS != 0 && cur.UnixMS == 0 {
			cur.UnixMS = rec.UnixMS
		}
		if cur.State.Terminal() {
			continue
		}
		cur.State = rec.State
		cur.Cached = cur.Cached || rec.Cached
		if rec.Accesses != 0 {
			cur.Accesses = rec.Accesses
		}
		if rec.Error != "" {
			cur.Error = rec.Error
		}
	}
	out := make([]journalRecord, 0, len(order))
	for _, id := range order {
		out = append(out, *byJob[id])
	}
	return out
}

// retainRecords applies the retention window to compacted records: terminal
// records older than the window go, everything else stays, submission order
// preserved.
func retainRecords(recs []journalRecord, retain time.Duration, now time.Time) []journalRecord {
	if retain <= 0 {
		return recs
	}
	cutoff := now.Add(-retain).UnixMilli()
	out := recs[:0]
	for _, r := range recs {
		if r.State.Terminal() && r.UnixMS != 0 && r.UnixMS < cutoff {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Journal is the crash-safe append log. Appends fsync before returning, so
// an acknowledged transition survives kill -9; Open compacts on every start.
type Journal struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	bytes int64
	// frozen (tests only) silently drops appends — the hook crash tests use
	// to simulate a kill between an in-memory transition and its record.
	frozen bool
}

// OpenJournal opens (creating if needed) the journal in dir, replays it,
// compacts it in place, and returns the merged per-job records in
// submission order.
func OpenJournal(dir string) (*Journal, []journalRecord, error) {
	return openJournal(dir, 0, time.Time{})
}

// OpenJournalRetain is OpenJournal with a retention window (ROADMAP 5c):
// terminal records whose first-seen submit time is older than retain before
// now are dropped during the open-time compaction — the GC point every
// journal passes through — so ancient finished-job history stops accreting
// across daemon lifetimes. Live (queued/running) records are never aged
// out, whatever their age; neither are records that carry no timestamp.
// retain <= 0 keeps everything, exactly like OpenJournal. Dropping a record
// forgets only the job id: its artifact, if any, stays in the result cache
// until the CAS evicts it on its own budget.
func OpenJournalRetain(dir string, retain time.Duration, now time.Time) (*Journal, []journalRecord, error) {
	return openJournal(dir, retain, now)
}

func openJournal(dir string, retain time.Duration, now time.Time) (*Journal, []journalRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	recs := retainRecords(compactRecords(decodeJournal(data)), retain, now)
	var buf []byte
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if err := writeFileAtomic(path, buf); err != nil {
		return nil, nil, fmt.Errorf("journal: compact: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{path: path, f: f, bytes: int64(len(buf))}, recs, nil
}

// Record is the exported view of one compacted journal record, for
// components outside the job server that persist their own state machine
// through the same crash-safe journal — the sweep coordinator
// (internal/coord) journals its sweep table this way. It carries the subset
// of journalRecord that is not job-server specific: an id, a lifecycle
// state, the CAS key of the canonical spec, and terminal provenance.
type Record struct {
	Job      string
	State    State
	SpecKey  string
	Error    string
	Accesses uint64
	UnixMS   int64
}

// OpenRecordJournal opens dir's journal exactly like OpenJournal — replay,
// longest-valid-prefix, per-id compaction, atomic rewrite — and returns the
// compacted records in exported form, in submission order.
func OpenRecordJournal(dir string) (*Journal, []Record, error) {
	j, recs, err := OpenJournal(dir)
	if err != nil {
		return nil, nil, err
	}
	out := make([]Record, len(recs))
	for i, r := range recs {
		out[i] = Record{Job: r.Job, State: r.State, SpecKey: r.SpecKey,
			Error: r.Error, Accesses: r.Accesses, UnixMS: r.UnixMS}
	}
	return j, out, nil
}

// AppendRecord journals one exported record (fsynced, like Append).
func (j *Journal) AppendRecord(r Record) error {
	return j.Append(journalRecord{
		V:        journalVersion,
		Job:      r.Job,
		State:    r.State,
		SpecKey:  r.SpecKey,
		Error:    r.Error,
		Accesses: r.Accesses,
		UnixMS:   r.UnixMS,
	})
}

// Append writes one record and fsyncs. The record is durable when Append
// returns nil.
func (j *Journal) Append(rec journalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.frozen {
		return nil
	}
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.bytes += int64(len(line))
	return nil
}

// Bytes returns the journal file's current size, for /metrics.
func (j *Journal) Bytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bytes
}

// Close releases the append handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// freeze (tests only) makes every later Append a silent no-op, simulating a
// crash that loses transitions written after this point.
func (j *Journal) freeze() {
	j.mu.Lock()
	j.frozen = true
	j.mu.Unlock()
}

// writeFileAtomic is the crash-safe write: temp file in the same directory,
// write, fsync, rename over the target, fsync the directory — the same
// idiom internal/rescache/disk.go uses for CAS blobs.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "tmp-journal-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
