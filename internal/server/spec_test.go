package server

import (
	"bytes"
	"strings"
	"testing"
)

func TestDecodeSpecDefaults(t *testing.T) {
	spec, err := DecodeSpec([]byte(`{"controller":"wgrb","workload":"bwaves","n":1000}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Cache.SizeKB != 64 || spec.Cache.Ways != 4 || spec.Cache.BlockBytes != 32 || spec.Cache.Policy != "lru" {
		t.Fatalf("baseline cache defaults not applied: %+v", spec.Cache)
	}
	if spec.Options.BufferDepth != 1 {
		t.Fatalf("BufferDepth default = %d, want 1", spec.Options.BufferDepth)
	}
	if spec.VDD != 1.0 || spec.FreqMHz != 2000 {
		t.Fatalf("operating-point defaults = %v V / %v MHz", spec.VDD, spec.FreqMHz)
	}
	if err := spec.Validate(false); err != nil {
		t.Fatalf("baseline spec should validate: %v", err)
	}
}

func TestDecodeSpecStrict(t *testing.T) {
	for _, tc := range []struct {
		name, body string
	}{
		{"unknown field", `{"controller":"wgrb","workloadd":"bwaves"}`},
		{"trailing data", `{"controller":"wgrb"} {"x":1}`},
		{"type mismatch", `{"controller":42}`},
		{"not an object", `[1,2,3]`},
		{"empty", ``},
	} {
		if _, err := DecodeSpec([]byte(tc.body)); err == nil {
			t.Errorf("%s: DecodeSpec accepted %q", tc.name, tc.body)
		}
	}
}

// TestValidateFieldErrors pins that every rejection names the failing field —
// the contract the API's 400 responses are built on.
func TestValidateFieldErrors(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*JobSpec)
		hasTrace bool
		fields   []string // fields that must appear in the SpecError
	}{
		{
			name:   "unknown controller",
			mutate: func(s *JobSpec) { s.Controller = "bogus" },
			fields: []string{"controller"},
		},
		{
			name:   "missing controller",
			mutate: func(s *JobSpec) { s.Controller = "" },
			fields: []string{"controller"},
		},
		{
			name:   "unknown workload",
			mutate: func(s *JobSpec) { s.Workload = "nonesuch" },
			fields: []string{"workload"},
		},
		{
			name:   "workload job needs n",
			mutate: func(s *JobSpec) { s.N = 0 },
			fields: []string{"n"},
		},
		{
			name:     "workload and trace together",
			mutate:   func(s *JobSpec) {},
			hasTrace: true,
			fields:   []string{"workload"},
		},
		{
			name:   "cache size over cap",
			mutate: func(s *JobSpec) { s.Cache.SizeKB = MaxCacheKB + 1 },
			fields: []string{"cache.size_kb"},
		},
		{
			name:   "non-power-of-two geometry",
			mutate: func(s *JobSpec) { s.Cache.BlockBytes = 33 },
			fields: []string{"cache"},
		},
		{
			name:   "bad policy",
			mutate: func(s *JobSpec) { s.Cache.Policy = "mru" },
			fields: []string{"cache.policy"},
		},
		{
			name:   "shards on cross-set controller",
			mutate: func(s *JobSpec) { s.Controller = "wgrb"; s.Shards = 4 },
			fields: []string{"shards"},
		},
		{
			name:   "shards with random replacement",
			mutate: func(s *JobSpec) { s.Controller = "rmw"; s.Shards = 4; s.Cache.Policy = "random" },
			fields: []string{"shards"},
		},
		{
			name:   "several at once",
			mutate: func(s *JobSpec) { s.Controller = "bogus"; s.N = -1; s.Batch = -5; s.VDD = -0.9 },
			fields: []string{"controller", "n", "batch", "vdd"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := JobSpec{Controller: "wgrb", Workload: "bwaves", N: 1000}
			spec.Normalize()
			tc.mutate(&spec)
			err := spec.Validate(tc.hasTrace)
			if err == nil {
				t.Fatalf("Validate accepted %+v", spec)
			}
			se, ok := err.(*SpecError)
			if !ok {
				t.Fatalf("Validate returned %T, want *SpecError", err)
			}
			for _, want := range tc.fields {
				found := false
				for _, f := range se.Fields {
					if f.Field == want {
						found = true
					}
				}
				if !found {
					t.Errorf("no error for field %q in %v", want, se)
				}
			}
		})
	}
}

// TestValidShardedSpec pins that set-local controllers may shard.
func TestValidShardedSpec(t *testing.T) {
	for _, kind := range []string{"conventional", "word", "rmw", "localrmw"} {
		spec := JobSpec{Controller: kind, Workload: "bwaves", N: 1000, Shards: 4}
		spec.Normalize()
		if err := spec.Validate(false); err != nil {
			t.Errorf("%s with shards should validate: %v", kind, err)
		}
	}
}

// TestSpecCanonicalRoundTrip pins the property the fuzzer explores: an
// accepted spec's canonical encoding decodes back to the same canonical
// bytes.
func TestSpecCanonicalRoundTrip(t *testing.T) {
	bodies := []string{
		`{"controller":"wgrb","workload":"bwaves","n":50000}`,
		`{"controller":"rmw","workload":"mcf","n":123,"seed":99,"shards":8,"batch":512}`,
		`{"controller":"wg","workload":"gcc","n":10,"cache":{"size_kb":32,"ways":8,"block_bytes":64,"policy":"plru"},"options":{"buffer_depth":4,"disable_silent_elision":true},"vdd":0.85,"freq_mhz":1500}`,
	}
	for _, body := range bodies {
		spec, err := DecodeSpec([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		c1, err := spec.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		spec2, err := DecodeSpec(c1)
		if err != nil {
			t.Fatalf("canonical bytes failed to decode: %v\n%s", err, c1)
		}
		c2, err := spec2.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c1, c2) {
			t.Errorf("round trip drifted for %s:\n%s\nvs\n%s", body, c1, c2)
		}
	}
}

func TestSpecErrorMessage(t *testing.T) {
	err := &SpecError{Fields: []FieldError{{Field: "n", Msg: "must be >= 0"}, {Field: "vdd", Msg: "must be positive"}}}
	msg := err.Error()
	for _, want := range []string{"n: must be >= 0", "vdd: must be positive"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}
