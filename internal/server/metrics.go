package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"cache8t/internal/rescache"
)

// latencyBuckets are the upper bounds (seconds) of the per-kind job latency
// histogram — log-spaced from a millisecond to ten seconds, plus +Inf.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// serverMetrics is the daemon's cumulative counter set, rendered by
// /metrics in Prometheus text exposition format. Counters are atomics;
// the per-kind histograms take a mutex on job completion only.
type serverMetrics struct {
	submitted atomic.Int64 // jobs accepted onto the queue
	rejected  atomic.Int64 // submissions bounced by backpressure (429/413/503)
	succeeded atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64
	inflight  atomic.Int64
	accesses  atomic.Int64 // accesses simulated by terminal jobs
	bytesIn   atomic.Int64 // trace bytes spooled from uploads
	busyNanos atomic.Int64 // summed job run time, for accesses/sec

	recovered    atomic.Int64 // jobs replayed from the journal at startup
	ckptWritten  atomic.Int64 // controller checkpoints persisted to the CAS
	ckptRestored atomic.Int64 // jobs resumed from a checkpoint (vs restarted)

	mu     sync.Mutex
	byKind map[string]*latencyHist
}

// latencyHist is one controller kind's job-latency histogram.
type latencyHist struct {
	counts []int64 // one per latencyBuckets entry
	inf    int64
	sum    float64
	n      int64
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{byKind: map[string]*latencyHist{}}
}

// observe records one terminal job: its controller kind, run seconds, and
// accesses simulated.
func (m *serverMetrics) observe(kind string, seconds float64, accesses uint64, state State) {
	switch state {
	case StateSucceeded:
		m.succeeded.Add(1)
	case StateFailed:
		m.failed.Add(1)
	case StateCancelled:
		m.cancelled.Add(1)
	}
	m.accesses.Add(int64(accesses))
	m.busyNanos.Add(int64(seconds * 1e9))
	m.mu.Lock()
	h := m.byKind[kind]
	if h == nil {
		h = &latencyHist{counts: make([]int64, len(latencyBuckets))}
		m.byKind[kind] = h
	}
	for i, le := range latencyBuckets {
		if seconds <= le {
			h.counts[i]++
		}
	}
	h.inf++
	h.sum += seconds
	h.n++
	m.mu.Unlock()
}

// journalStats is the durability snapshot render emits when the daemon runs
// with a job journal (nil otherwise — the sramd_journal_* and recovery
// series are then absent).
type journalStats struct {
	// Bytes is the journal file's current size.
	Bytes int64
}

// render writes the Prometheus text exposition. queueDepth and queueCap come
// from the server's live channel state; cache is the result cache snapshot
// (nil when caching is disabled — the rescache_* series are then absent);
// journal is the durability snapshot (nil when journaling is disabled).
func (m *serverMetrics) render(w io.Writer, queueDepth, queueCap int, accepting bool, cache *rescache.Snapshot, journal *journalStats) {
	up := 0
	if accepting {
		up = 1
	}
	fmt.Fprintf(w, "# HELP sramd_accepting Whether the daemon is accepting new jobs (0 while draining).\n")
	fmt.Fprintf(w, "# TYPE sramd_accepting gauge\nsramd_accepting %d\n", up)
	fmt.Fprintf(w, "# HELP sramd_queue_depth Jobs waiting on the bounded queue.\n")
	fmt.Fprintf(w, "# TYPE sramd_queue_depth gauge\nsramd_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "# TYPE sramd_queue_capacity gauge\nsramd_queue_capacity %d\n", queueCap)
	fmt.Fprintf(w, "# HELP sramd_jobs_inflight Jobs currently executing.\n")
	fmt.Fprintf(w, "# TYPE sramd_jobs_inflight gauge\nsramd_jobs_inflight %d\n", m.inflight.Load())

	fmt.Fprintf(w, "# HELP sramd_jobs_total Terminal jobs by state, plus accepted and rejected submissions.\n")
	fmt.Fprintf(w, "# TYPE sramd_jobs_total counter\n")
	fmt.Fprintf(w, "sramd_jobs_total{state=\"submitted\"} %d\n", m.submitted.Load())
	fmt.Fprintf(w, "sramd_jobs_total{state=\"rejected\"} %d\n", m.rejected.Load())
	fmt.Fprintf(w, "sramd_jobs_total{state=\"succeeded\"} %d\n", m.succeeded.Load())
	fmt.Fprintf(w, "sramd_jobs_total{state=\"failed\"} %d\n", m.failed.Load())
	fmt.Fprintf(w, "sramd_jobs_total{state=\"cancelled\"} %d\n", m.cancelled.Load())

	fmt.Fprintf(w, "# HELP sramd_accesses_total Accesses simulated by terminal jobs.\n")
	fmt.Fprintf(w, "# TYPE sramd_accesses_total counter\nsramd_accesses_total %d\n", m.accesses.Load())
	fmt.Fprintf(w, "# HELP sramd_bytes_ingested_total Trace bytes spooled from uploads.\n")
	fmt.Fprintf(w, "# TYPE sramd_bytes_ingested_total counter\nsramd_bytes_ingested_total %d\n", m.bytesIn.Load())
	if busy := float64(m.busyNanos.Load()) / 1e9; busy > 0 {
		fmt.Fprintf(w, "# HELP sramd_accesses_per_second Simulated accesses per busy second across terminal jobs.\n")
		fmt.Fprintf(w, "# TYPE sramd_accesses_per_second gauge\nsramd_accesses_per_second %g\n",
			float64(m.accesses.Load())/busy)
	}

	if journal != nil {
		fmt.Fprintf(w, "# HELP sramd_recovered_jobs_total Jobs replayed from the journal at startup.\n")
		fmt.Fprintf(w, "# TYPE sramd_recovered_jobs_total counter\nsramd_recovered_jobs_total %d\n", m.recovered.Load())
		fmt.Fprintf(w, "# HELP sramd_checkpoints_written_total Controller checkpoints persisted to the result cache.\n")
		fmt.Fprintf(w, "# TYPE sramd_checkpoints_written_total counter\nsramd_checkpoints_written_total %d\n", m.ckptWritten.Load())
		fmt.Fprintf(w, "# HELP sramd_checkpoints_restored_total Recovered jobs resumed from a checkpoint instead of restarting.\n")
		fmt.Fprintf(w, "# TYPE sramd_checkpoints_restored_total counter\nsramd_checkpoints_restored_total %d\n", m.ckptRestored.Load())
		fmt.Fprintf(w, "# HELP sramd_journal_bytes Current size of the job journal file.\n")
		fmt.Fprintf(w, "# TYPE sramd_journal_bytes gauge\nsramd_journal_bytes %d\n", journal.Bytes)
	}

	if cache != nil {
		fmt.Fprintf(w, "# HELP rescache_hits_total Result-cache hits by serving tier.\n")
		fmt.Fprintf(w, "# TYPE rescache_hits_total counter\n")
		fmt.Fprintf(w, "rescache_hits_total{tier=\"memory\"} %d\n", cache.MemHits)
		fmt.Fprintf(w, "rescache_hits_total{tier=\"disk\"} %d\n", cache.DiskHits)
		fmt.Fprintf(w, "# HELP rescache_misses_total Result-cache misses (jobs actually simulated).\n")
		fmt.Fprintf(w, "# TYPE rescache_misses_total counter\nrescache_misses_total %d\n", cache.Misses)
		fmt.Fprintf(w, "# HELP rescache_dedup_total Jobs that shared an identical in-flight computation (singleflight).\n")
		fmt.Fprintf(w, "# TYPE rescache_dedup_total counter\nrescache_dedup_total %d\n", cache.Dedups)
		fmt.Fprintf(w, "# HELP rescache_bytes_served_total Artifact bytes served from the cache.\n")
		fmt.Fprintf(w, "# TYPE rescache_bytes_served_total counter\nrescache_bytes_served_total %d\n", cache.BytesServed)
		fmt.Fprintf(w, "# HELP rescache_put_errors_total Disk-tier writes that failed (memory tier still served).\n")
		fmt.Fprintf(w, "# TYPE rescache_put_errors_total counter\nrescache_put_errors_total %d\n", cache.PutErrors)
		fmt.Fprintf(w, "# HELP rescache_mem_entries Artifacts resident in the memory tier.\n")
		fmt.Fprintf(w, "# TYPE rescache_mem_entries gauge\nrescache_mem_entries %d\n", cache.MemEntries)
		fmt.Fprintf(w, "# HELP rescache_mem_bytes Bytes resident in the memory tier.\n")
		fmt.Fprintf(w, "# TYPE rescache_mem_bytes gauge\nrescache_mem_bytes %d\n", cache.MemBytes)
		fmt.Fprintf(w, "# TYPE rescache_mem_cap_bytes gauge\nrescache_mem_cap_bytes %d\n", cache.MemCapBytes)
		fmt.Fprintf(w, "# HELP rescache_evictions_total Entries evicted by tier.\n")
		fmt.Fprintf(w, "# TYPE rescache_evictions_total counter\n")
		fmt.Fprintf(w, "rescache_evictions_total{tier=\"memory\"} %d\n", cache.MemEvictions)
		fmt.Fprintf(w, "rescache_evictions_total{tier=\"disk\"} %d\n", cache.DiskEvictions)
		if cache.Dir != "" {
			fmt.Fprintf(w, "# HELP rescache_disk_entries Blobs resident in the disk CAS.\n")
			fmt.Fprintf(w, "# TYPE rescache_disk_entries gauge\nrescache_disk_entries %d\n", cache.DiskEntries)
			fmt.Fprintf(w, "# HELP rescache_disk_bytes Bytes resident in the disk CAS.\n")
			fmt.Fprintf(w, "# TYPE rescache_disk_bytes gauge\nrescache_disk_bytes %d\n", cache.DiskBytes)
			fmt.Fprintf(w, "# TYPE rescache_disk_cap_bytes gauge\nrescache_disk_cap_bytes %d\n", cache.DiskCapBytes)
			fmt.Fprintf(w, "# HELP rescache_corrupt_total Blobs or key links rejected by integrity re-verification.\n")
			fmt.Fprintf(w, "# TYPE rescache_corrupt_total counter\nrescache_corrupt_total %d\n", cache.DiskCorrupt)
		}
	}

	m.mu.Lock()
	kinds := make([]string, 0, len(m.byKind))
	for k := range m.byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(w, "# HELP sramd_job_seconds Job run latency by controller kind.\n")
	fmt.Fprintf(w, "# TYPE sramd_job_seconds histogram\n")
	for _, k := range kinds {
		h := m.byKind[k]
		for i, le := range latencyBuckets {
			fmt.Fprintf(w, "sramd_job_seconds_bucket{controller=%q,le=%q} %d\n", k, fmt.Sprint(le), h.counts[i])
		}
		fmt.Fprintf(w, "sramd_job_seconds_bucket{controller=%q,le=\"+Inf\"} %d\n", k, h.inf)
		fmt.Fprintf(w, "sramd_job_seconds_sum{controller=%q} %g\n", k, h.sum)
		fmt.Fprintf(w, "sramd_job_seconds_count{controller=%q} %d\n", k, h.n)
	}
	m.mu.Unlock()
}
