package server

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cache8t/internal/report"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

// testTimeout bounds every wait in this file. It is a failure deadline, not
// a sleep: passing tests never block on it.
const testTimeout = 30 * time.Second

// gate interposes on every job's stream: the job blocks after `after`
// accesses until release is closed (or its context is cancelled), and
// entered is closed the first time any job reaches the gate. It is how the
// lifecycle tests hold a job mid-run without sleeping.
type gate struct {
	after   int
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGate(after int) *gate {
	return &gate{after: after, entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gate) wrap(ctx context.Context, j *Job, s trace.Stream) trace.Stream {
	return &gatedStream{inner: s, ctx: ctx, g: g}
}

type gatedStream struct {
	inner trace.Stream
	ctx   context.Context
	g     *gate
	n     int
}

func (s *gatedStream) Next() (trace.Access, bool) {
	if s.n == s.g.after {
		s.g.once.Do(func() { close(s.g.entered) })
		select {
		case <-s.g.release:
		case <-s.ctx.Done():
			return trace.Access{}, false
		}
	}
	s.n++
	return s.inner.Next()
}

func (s *gatedStream) Err() error {
	if es, ok := s.inner.(trace.ErrStream); ok {
		return es.Err()
	}
	return nil
}

// testServer wires a Server into an httptest listener.
type testServer struct {
	t   *testing.T
	srv *Server
	hs  *httptest.Server
}

func newTestServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	ts := &testServer{t: t, srv: srv, hs: hs}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
		defer cancel()
		srv.Shutdown(ctx) // idempotent; tests that shut down already are no-ops
		hs.Close()
	})
	return ts
}

// submit POSTs a JSON spec and returns the HTTP status code with the decoded
// body (JobStatus on 202, apiError otherwise, both as raw bytes too).
func (ts *testServer) submit(body string) (int, []byte) {
	ts.t.Helper()
	resp, err := http.Post(ts.hs.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		ts.t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		ts.t.Fatal(err)
	}
	return resp.StatusCode, b
}

// submitJob submits and requires a 202, returning the job status.
func (ts *testServer) submitJob(body string) JobStatus {
	ts.t.Helper()
	code, b := ts.submit(body)
	if code != http.StatusAccepted {
		ts.t.Fatalf("submit returned %d: %s", code, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		ts.t.Fatal(err)
	}
	if st.ID == "" || st.State != StateQueued || st.ConfigHash == "" {
		ts.t.Fatalf("bad 202 status: %+v", st)
	}
	return st
}

// waitTerminal follows the job's SSE stream until a terminal event —
// event-driven, no polling, no sleeps.
func (ts *testServer) waitTerminal(id string) JobStatus {
	ts.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.hs.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		ts.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		ts.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ts.t.Fatalf("events: %s", resp.Status)
	}
	sawEvent := false
	sc := bufio.NewScanner(resp.Body)
	var st JobStatus
	for sc.Scan() {
		line := sc.Text()
		if line == "event: status" {
			sawEvent = true
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
			ts.t.Fatalf("bad SSE data line: %v", err)
		}
		if st.State.Terminal() {
			if !sawEvent {
				ts.t.Fatal("SSE data arrived without an event: status line")
			}
			return st
		}
	}
	ts.t.Fatalf("event stream for %s ended in state %q (err %v)", id, st.State, sc.Err())
	return st
}

func (ts *testServer) get(path string) (int, []byte) {
	ts.t.Helper()
	resp, err := http.Get(ts.hs.URL + path)
	if err != nil {
		ts.t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func (ts *testServer) cancel(id string) (int, []byte) {
	ts.t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.hs.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		ts.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		ts.t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// TestSubmitPollResult is the happy path: submit → poll status → SSE wait →
// fetch result — and the tentpole's identity pin: the fetched artifact is
// byte-identical to an in-process serial run of the same spec.
func TestSubmitPollResult(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	const body = `{"controller":"wgrb","workload":"bwaves","n":20000}`
	st := ts.submitJob(body)

	code, b := ts.get("/v1/jobs/" + st.ID)
	if code != http.StatusOK {
		t.Fatalf("status poll: %d: %s", code, b)
	}

	final := ts.waitTerminal(st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	if final.Accesses != 20000 {
		t.Fatalf("progress counter = %d, want 20000", final.Accesses)
	}
	if final.RunMS <= 0 || final.SubmittedUnixMS == 0 {
		t.Fatalf("missing timings: %+v", final)
	}

	code, got := ts.get("/v1/jobs/" + st.ID + "/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d: %s", code, got)
	}
	spec, err := DecodeSpec([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	local, err := Execute(context.Background(), spec, spec.Workload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, local) {
		t.Fatalf("daemon artifact differs from local serial run:\n%s\nvs\n%s", got, local)
	}
	art, err := report.Decode(got)
	if err != nil {
		t.Fatal(err)
	}
	if art.ConfigHash != st.ConfigHash {
		t.Fatalf("submit-time config hash %s != artifact hash %s", st.ConfigHash, art.ConfigHash)
	}

	code, lst := ts.get("/v1/jobs")
	if code != http.StatusOK || !strings.Contains(string(lst), st.ID) {
		t.Fatalf("job list: %d: %s", code, lst)
	}
}

// TestShardedJobMatchesSerial pins end-to-end execution equivalence through
// the service: a set-sharded daemon job returns the exact bytes of a serial
// in-process run. Shards are execution knobs, not result knobs, so they stay
// out of the config hash.
func TestShardedJobMatchesSerial(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	st := ts.submitJob(`{"controller":"rmw","workload":"bwaves","n":20000,"shards":4}`)
	final := ts.waitTerminal(st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("sharded job ended %s: %s", final.State, final.Error)
	}
	_, got := ts.get("/v1/jobs/" + st.ID + "/result")

	serial, err := DecodeSpec([]byte(`{"controller":"rmw","workload":"bwaves","n":20000}`))
	if err != nil {
		t.Fatal(err)
	}
	local, err := Execute(context.Background(), serial, serial.Workload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, local) {
		t.Fatal("sharded daemon artifact differs from serial local artifact")
	}
}

// TestTraceUpload exercises the multipart path: the trace bytes are spooled,
// the source is content-addressed, and the result matches a local replay of
// the same bytes.
func TestTraceUpload(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, SpoolDir: t.TempDir()})

	prof, err := workload.ProfileByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	accs, err := workload.Take(prof, 7, 3000)
	if err != nil {
		t.Fatal(err)
	}
	var enc bytes.Buffer
	if _, err := trace.WriteAll(&enc, trace.FromSlice(accs), 0); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(enc.Bytes())
	wantSource := "trace:sha256:" + hex.EncodeToString(sum[:])

	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	pw, _ := mw.CreateFormField("spec")
	fmt.Fprint(pw, `{"controller":"wgrb"}`)
	fw, _ := mw.CreateFormFile("trace", "upload.c8tt")
	fw.Write(enc.Bytes())
	mw.Close()

	resp, err := http.Post(ts.hs.URL+"/v1/jobs", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("multipart submit: %d: %s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.Source != wantSource {
		t.Fatalf("source = %q, want %q", st.Source, wantSource)
	}
	if st.BytesIngested != int64(enc.Len()) {
		t.Fatalf("bytes ingested = %d, want %d", st.BytesIngested, enc.Len())
	}

	final := ts.waitTerminal(st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("trace job ended %s: %s", final.State, final.Error)
	}
	if final.Accesses != 3000 {
		t.Fatalf("trace job replayed %d accesses, want 3000", final.Accesses)
	}
	_, got := ts.get("/v1/jobs/" + st.ID + "/result")

	spec, err := DecodeSpec([]byte(`{"controller":"wgrb"}`))
	if err != nil {
		t.Fatal(err)
	}
	local, err := Execute(context.Background(), spec, wantSource, func() (trace.Stream, error) {
		return trace.NewAnyReader(bytes.NewReader(enc.Bytes()))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, local) {
		t.Fatal("trace-job artifact differs from local replay of the same bytes")
	}
}

// TestCancelMidRun holds a job at the gate, cancels it over the API, and
// requires the cancelled terminal state; the result endpoint then reports
// the conflict.
func TestCancelMidRun(t *testing.T) {
	g := newGate(100)
	ts := newTestServer(t, Config{Workers: 1, testWrapStream: g.wrap})
	st := ts.submitJob(`{"controller":"wgrb","workload":"bwaves","n":1000000}`)

	<-g.entered // the job is mid-run, blocked at the gate

	code, b := ts.get("/v1/jobs/" + st.ID + "/result")
	if code != http.StatusAccepted {
		t.Fatalf("result of a running job: %d: %s", code, b)
	}

	if code, b := ts.cancel(st.ID); code != http.StatusOK {
		t.Fatalf("cancel: %d: %s", code, b)
	}
	final := ts.waitTerminal(st.ID)
	if final.State != StateCancelled {
		t.Fatalf("job ended %s, want cancelled", final.State)
	}

	code, b = ts.get("/v1/jobs/" + st.ID + "/result")
	if code != http.StatusConflict {
		t.Fatalf("result of a cancelled job: %d: %s", code, b)
	}
	// Cancelling again is idempotent.
	if code, _ := ts.cancel(st.ID); code != http.StatusOK {
		t.Fatalf("second cancel: %d", code)
	}
}

// TestQueueFull pins the 429 backpressure contract with Workers:1 and a
// one-deep queue: one job held running at the gate, one queued, the third
// refused. Cancelling the queued job frees its slot without a worker.
func TestQueueFull(t *testing.T) {
	g := newGate(10)
	ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, testWrapStream: g.wrap})
	const body = `{"controller":"wgrb","workload":"bwaves","n":100000}`

	running := ts.submitJob(body)
	<-g.entered // worker is occupied; the queue is empty again

	queued := ts.submitJob(body)

	code, b := ts.submit(body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d: %s", code, b)
	}
	var ae struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(b, &ae); err != nil || !strings.Contains(ae.Error, "queue full") {
		t.Fatalf("429 body = %s", b)
	}

	// A queued job cancels immediately — no worker ever touches it.
	if code, _ := ts.cancel(queued.ID); code != http.StatusOK {
		t.Fatalf("cancel queued: %d", code)
	}
	if final := ts.waitTerminal(queued.ID); final.State != StateCancelled {
		t.Fatalf("queued job ended %s, want cancelled", final.State)
	}

	close(g.release)
	if final := ts.waitTerminal(running.ID); final.State != StateSucceeded {
		t.Fatalf("running job ended %s: %s", final.State, final.Error)
	}
}

// TestOversizedBody pins the 413 limit.
func TestOversizedBody(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 128})
	code, b := ts.submit(`{"controller":"wgrb","workload":"bwaves","n":1000,"cache":{"policy":"` + strings.Repeat("x", 4096) + `"}}`)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit: %d: %s", code, b)
	}
	if !strings.Contains(string(b), "128-byte limit") {
		t.Fatalf("413 body should name the limit: %s", b)
	}
}

// TestOversizedSpec pins the 1 MiB spec cap for both submission forms: a
// plain JSON body and a multipart "spec" part over the cap are rejected with
// an explicit 413, not buffered in memory or truncated into a confusing
// JSON decode 400.
func TestOversizedSpec(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	big := `{"controller":"wgrb","workload":"bwaves","n":1000,"cache":{"policy":"` +
		strings.Repeat("x", maxSpecBytes) + `"}}`

	code, b := ts.submit(big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized JSON spec: %d: %s", code, b)
	}
	if !strings.Contains(string(b), "1 MiB") {
		t.Fatalf("413 body should name the spec limit: %s", b)
	}

	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	pw, _ := mw.CreateFormField("spec")
	io.WriteString(pw, big)
	mw.Close()
	resp, err := http.Post(ts.hs.URL+"/v1/jobs", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized multipart spec: %d: %s", resp.StatusCode, rb)
	}
	if !strings.Contains(string(rb), "1 MiB") {
		t.Fatalf("413 body should name the spec limit: %s", rb)
	}
}

// TestSubmitRace hammers concurrent submissions against a tiny queue while
// listing jobs throughout — a regression test for the queue-full unwind
// race, where a rejected submission truncated a concurrent submission's id
// off the order slice, leaving a dangling id that panicked GET /v1/jobs.
func TestSubmitRace(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2, QueueDepth: 1})
	const body = `{"controller":"rmw","workload":"bwaves","n":2000}`

	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := http.Post(ts.hs.URL+"/v1/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusTooManyRequests {
					errs <- fmt.Errorf("submit during storm: %d: %s", resp.StatusCode, b)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	list := func() {
		t.Helper()
		resp, err := http.Get(ts.hs.URL + "/v1/jobs")
		if err != nil {
			t.Fatalf("list during submit storm: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list during submit storm: %d", resp.StatusCode)
		}
	}
	for {
		list()
		select {
		case <-done:
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
			list()
			return
		default:
		}
	}
}

// TestMalformedSpec pins the 400 contract: field-level errors for invalid
// specs, a plain error for unparseable bodies.
func TestMalformedSpec(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})

	code, b := ts.submit(`{"controller":"bogus","workload":"bwaves","n":-5,"shards":-1}`)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid spec: %d: %s", code, b)
	}
	var ae apiError
	if err := json.Unmarshal(b, &ae); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, f := range ae.Fields {
		got[f.Field] = true
	}
	for _, want := range []string{"controller", "n", "shards"} {
		if !got[want] {
			t.Errorf("400 response missing field error for %q: %s", want, b)
		}
	}

	for _, body := range []string{`{not json`, `{"controller":"wgrb","bogus_field":1}`} {
		if code, b := ts.submit(body); code != http.StatusBadRequest {
			t.Errorf("body %q: %d: %s", body, code, b)
		}
	}

	if code, b := ts.get("/v1/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d: %s", code, b)
	}
}

// TestGracefulDrain pins the clean half of shutdown: a running job is
// allowed to finish, Shutdown returns nil, and new submissions get 503.
func TestGracefulDrain(t *testing.T) {
	g := newGate(10)
	ts := newTestServer(t, Config{Workers: 1, testWrapStream: g.wrap})
	st := ts.submitJob(`{"controller":"wgrb","workload":"bwaves","n":5000}`)
	<-g.entered

	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- ts.srv.Shutdown(ctx) }()
	close(g.release)
	if err := <-done; err != nil {
		t.Fatalf("drain returned %v, want nil", err)
	}

	if final := ts.waitTerminal(st.ID); final.State != StateSucceeded {
		t.Fatalf("drained job ended %s: %s", final.State, final.Error)
	}
	if code, b := ts.submit(`{"controller":"wgrb","workload":"bwaves","n":10}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while drained: %d: %s", code, b)
	}
	if code, b := ts.get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(string(b), "draining") {
		t.Fatalf("readyz after drain: %d: %s", code, b)
	}
}

// TestDrainDeadlineKills pins the other half: an expired drain deadline
// cancels in-flight jobs instead of waiting for them.
func TestDrainDeadlineKills(t *testing.T) {
	g := newGate(10)
	ts := newTestServer(t, Config{Workers: 1, testWrapStream: g.wrap})
	st := ts.submitJob(`{"controller":"wgrb","workload":"bwaves","n":1000000}`)
	<-g.entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already-expired deadline: the kill path, with no waiting
	if err := ts.srv.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("Shutdown = %v, want context.Canceled", err)
	}
	if final := ts.waitTerminal(st.ID); final.State != StateCancelled {
		t.Fatalf("killed job ended %s, want cancelled", final.State)
	}
}

// TestHealthAndMetrics pins the probe endpoints and the metric names the
// issue requires the exposition to carry.
func TestHealthAndMetrics(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, Version: "v-test"})
	st := ts.submitJob(`{"controller":"wgrb","workload":"bwaves","n":5000}`)
	if final := ts.waitTerminal(st.ID); final.State != StateSucceeded {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}

	code, b := ts.get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var h struct {
		Status  string `json:"status"`
		Version string `json:"version"`
		Schema  int    `json:"schema"`
	}
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version != "v-test" || h.Schema != report.SchemaVersion {
		t.Fatalf("healthz body: %s", b)
	}

	if code, b := ts.get("/readyz"); code != http.StatusOK || !strings.Contains(string(b), "ready") {
		t.Fatalf("readyz: %d: %s", code, b)
	}

	_, m := ts.get("/metrics")
	text := string(m)
	for _, want := range []string{
		"sramd_queue_depth ",
		"sramd_queue_capacity ",
		"sramd_jobs_inflight ",
		`sramd_jobs_total{state="succeeded"} 1`,
		"sramd_accesses_total 5000",
		"sramd_bytes_ingested_total ",
		"sramd_accesses_per_second ",
		`sramd_job_seconds_count{controller="wgrb"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestJobTimeout pins the per-job deadline: a gated job with a tiny timeout
// fails with a timeout error instead of hanging. The gate releases on the
// engine's deadline context, so no real time is wasted beyond the timeout
// itself.
func TestJobTimeout(t *testing.T) {
	g := newGate(10)
	ts := newTestServer(t, Config{Workers: 1, JobTimeout: 10 * time.Millisecond, testWrapStream: g.wrap})
	st := ts.submitJob(`{"controller":"wgrb","workload":"bwaves","n":1000000}`)
	<-g.entered
	final := ts.waitTerminal(st.ID)
	if final.State != StateFailed || !strings.Contains(final.Error, "timeout") {
		t.Fatalf("timed-out job ended %s: %q", final.State, final.Error)
	}
}

// TestHierarchyJobIdentity is the hierarchy acceptance contract: a hierarchy
// spec submitted to the daemon returns an artifact byte-identical to an
// in-process serial Execute of the same spec, with both levels' ledgers and
// the merged traffic metrics inside.
func TestHierarchyJobIdentity(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	body := `{"controller":"wg","workload":"bwaves","n":20000,"hierarchy":true,"l2":{"controller":"ts","cache":{"size_kb":512}}}`
	st := ts.submitJob(body)
	if fin := ts.waitTerminal(st.ID); fin.State != StateSucceeded {
		t.Fatalf("hierarchy job ended %s: %q", fin.State, fin.Error)
	}
	code, blob := ts.get("/v1/jobs/" + st.ID + "/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d: %s", code, blob)
	}

	spec, err := DecodeSpec([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(false); err != nil {
		t.Fatal(err)
	}
	want, err := Execute(context.Background(), spec, spec.Workload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatal("daemon hierarchy artifact differs from in-process Execute")
	}

	art, err := report.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Controllers) != 2 || art.Controllers[0].Controller != "L1:WG" || art.Controllers[1].Controller != "L2:TS" {
		t.Fatalf("unexpected ledgers: %+v", art.Controllers)
	}
	for _, m := range []string{"l1_miss_rate", "l2_miss_rate", "refills", "writebacks", "premature_wbs", "l2_visible", "l2_visible_per_request"} {
		if _, ok := art.Metrics[m]; !ok {
			t.Errorf("artifact missing metric %q", m)
		}
	}
	if art.Config["hierarchy"] != "true" || art.Config["l2_controller"] != "ts" {
		t.Errorf("hierarchy config keys missing: %v", art.Config)
	}
	if art.Metrics["l2_visible"] != art.Metrics["refills"]+art.Metrics["writebacks"]+art.Metrics["premature_wbs"] {
		t.Errorf("l2_visible %v is not the event-stream total", art.Metrics["l2_visible"])
	}
	if art.Metrics["premature_wbs"] == 0 {
		t.Error("WG L1 reported zero premature write-backs")
	}
}

// TestHierarchySpecRejections pins the hierarchy-specific validation: l2
// without hierarchy, sharded hierarchy jobs, and bogus L2 fields all fail
// with named field errors.
func TestHierarchySpecRejections(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	for _, tc := range []struct{ body, field string }{
		{`{"controller":"rmw","workload":"bwaves","n":100,"l2":{"controller":"rmw"}}`, "l2"},
		{`{"controller":"rmw","workload":"bwaves","n":100,"hierarchy":true,"shards":4}`, "shards"},
		{`{"controller":"rmw","workload":"bwaves","n":100,"hierarchy":true,"l2":{"controller":"bogus"}}`, "l2.controller"},
		{`{"controller":"rmw","workload":"bwaves","n":100,"hierarchy":true,"l2":{"cache":{"ways":3}}}`, "l2.cache"},
	} {
		code, b := ts.submit(tc.body)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: got %d: %s", tc.body, code, b)
		}
		var ae apiError
		if err := json.Unmarshal(b, &ae); err != nil {
			t.Fatal(err)
		}
		found := false
		for _, f := range ae.Fields {
			if f.Field == tc.field {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no error on field %q: %+v", tc.body, tc.field, ae.Fields)
		}
	}
}
