package server

import (
	"context"
	"errors"
	"fmt"

	"cache8t/internal/core"
	"cache8t/internal/energy"
	"cache8t/internal/hier"
	"cache8t/internal/report"
	"cache8t/internal/sram"
	"cache8t/internal/timing"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

// OpenSource returns the stream opener for a validated spec with no uploaded
// trace: a fresh deterministic generator per open, bounded inside the run by
// spec.N.
func OpenSource(spec JobSpec) func() (trace.Stream, error) {
	return func() (trace.Stream, error) {
		return workload.Stream(spec.Workload, spec.Seed)
	}
}

// RunSpec executes a validated spec over the stream from open and returns the
// controller result. Shards and batch come from the spec; RunShardedContext
// degrades to the serial streaming driver when shards <= 1, so there is one
// execution path for every job. wrap, when non-nil, interposes on the opened
// stream — the daemon hangs its progress counter there.
func RunSpec(ctx context.Context, spec JobSpec, open func() (trace.Stream, error), wrap func(trace.Stream) trace.Stream) (core.Result, error) {
	kind, err := core.ParseKind(spec.Controller)
	if err != nil {
		return core.Result{}, err
	}
	cfg, err := spec.CacheConfig()
	if err != nil {
		return core.Result{}, err
	}
	if open == nil {
		open = OpenSource(spec)
	}
	s, err := open()
	if err != nil {
		return core.Result{}, err
	}
	if wrap != nil {
		s = wrap(s)
	}
	return core.RunShardedContext(ctx, kind, cfg, spec.CoreOptions(), s, spec.N, spec.Batch, spec.Shards)
}

// RunSpecDurable executes a validated spec with checkpointing: sink receives
// a serialized controller snapshot every `every` batches, and resumeBlob,
// when non-nil, restarts the run from a previously written snapshot instead
// of access zero. resumed reports whether the checkpoint was actually used —
// an unreadable or mismatched blob (core.ErrBadCheckpoint) falls back to a
// straight run from a freshly opened stream, since checkpoints are an
// optimization and the determinism contract makes the two byte-identical.
// Any other resume error is a genuine run failure and propagates.
//
// Checkpointing rides the serial streaming driver, so this path ignores
// spec.Shards; callers gate on Shards <= 1.
func RunSpecDurable(ctx context.Context, spec JobSpec, open func() (trace.Stream, error), wrap func(trace.Stream) trace.Stream, resumeBlob []byte, every int, sink core.CheckpointSink) (res core.Result, resumed bool, err error) {
	kind, err := core.ParseKind(spec.Controller)
	if err != nil {
		return core.Result{}, false, err
	}
	cfg, err := spec.CacheConfig()
	if err != nil {
		return core.Result{}, false, err
	}
	if open == nil {
		open = OpenSource(spec)
	}
	openWrapped := func() (trace.Stream, error) {
		s, err := open()
		if err != nil {
			return nil, err
		}
		if wrap != nil {
			s = wrap(s)
		}
		return s, nil
	}
	if resumeBlob != nil {
		s, err := openWrapped()
		if err != nil {
			return core.Result{}, false, err
		}
		res, err := core.ResumeStreamContext(ctx, resumeBlob, s, spec.N, spec.Batch, every, sink)
		if err == nil {
			return res, true, nil
		}
		if !errors.Is(err, core.ErrBadCheckpoint) {
			return core.Result{}, false, err
		}
		// Fall through: the blob does not describe this run (corrupt, wrong
		// version, wrong geometry). Restart from scratch on a fresh stream.
	}
	s, err := openWrapped()
	if err != nil {
		return core.Result{}, false, err
	}
	res, err = core.RunStreamCheckpointedContext(ctx, kind, cfg, spec.CoreOptions(), s, spec.N, spec.Batch, every, sink)
	return res, false, err
}

// ConfigMap flattens the result-shaping knobs of a spec into the artifact's
// config map. Execution knobs (shards, batch) are deliberately absent: they
// cannot change results — the sharding and streaming equivalence tests pin
// that — so a sharded daemon run and a serial local rerun hash identically.
func ConfigMap(spec JobSpec, source string) map[string]string {
	m := map[string]string{
		"source":                  source,
		"controller":              spec.Controller,
		"n":                       fmt.Sprint(spec.N),
		"seed":                    fmt.Sprint(spec.Seed),
		"cache_size_bytes":        fmt.Sprint(spec.Cache.SizeKB * 1024),
		"cache_ways":              fmt.Sprint(spec.Cache.Ways),
		"cache_block_bytes":       fmt.Sprint(spec.Cache.BlockBytes),
		"cache_policy":            spec.Cache.Policy,
		"buffer_depth":            fmt.Sprint(spec.Options.BufferDepth),
		"silent_elision_disabled": fmt.Sprint(spec.Options.DisableSilentElision),
		"count_fill_traffic":      fmt.Sprint(spec.Options.CountFillTraffic),
		"vdd":                     fmt.Sprint(spec.VDD),
		"freq_mhz":                fmt.Sprint(spec.FreqMHz),
	}
	// Hierarchy keys exist only on hierarchy jobs so every pre-existing
	// single-level spec keeps its config hash (and its cached results).
	if spec.Hierarchy && spec.L2 != nil {
		m["hierarchy"] = "true"
		m["l2_controller"] = spec.L2.Controller
		m["l2_size_bytes"] = fmt.Sprint(spec.L2.Cache.SizeKB * 1024)
		m["l2_ways"] = fmt.Sprint(spec.L2.Cache.Ways)
		m["l2_block_bytes"] = fmt.Sprint(spec.L2.Cache.BlockBytes)
		m["l2_policy"] = spec.L2.Cache.Policy
		m["l2_buffer_depth"] = fmt.Sprint(spec.L2.Options.BufferDepth)
		m["l2_silent_elision_disabled"] = fmt.Sprint(spec.L2.Options.DisableSilentElision)
		m["l2_count_fill_traffic"] = fmt.Sprint(spec.L2.Options.CountFillTraffic)
	}
	return m
}

// RunHierSpec executes a validated hierarchy spec over the stream from open
// and returns the two-level result. Hierarchy runs are serial — Validate
// rejects shards > 1 — and poll ctx per batch like every other driver.
func RunHierSpec(ctx context.Context, spec JobSpec, open func() (trace.Stream, error), wrap func(trace.Stream) trace.Stream) (hier.Result, error) {
	cfg, err := spec.HierConfig()
	if err != nil {
		return hier.Result{}, err
	}
	if open == nil {
		open = OpenSource(spec)
	}
	s, err := open()
	if err != nil {
		return hier.Result{}, err
	}
	if wrap != nil {
		s = wrap(s)
	}
	return hier.RunContext(ctx, cfg, s, spec.N, spec.Batch)
}

// Artifact assembles the deterministic run artifact for a finished job: the
// spec's config map, the controller's full event ledger, and the modeled
// scalar metrics. Wall-clock and engine snapshots are deliberately left
// unset — an artifact fetched from the daemon must be byte-identical to one
// built by an in-process serial run of the same spec, and only fully
// deterministic fields can promise that. Timings live on the job status
// instead.
func Artifact(spec JobSpec, source string, res core.Result) *report.Artifact {
	art := report.New("sramd", spec.Seed)
	art.Config = ConfigMap(spec, source)
	art.AddController(res)
	art.SetMetric("accesses_per_request", res.AccessesPerRequest())
	art.SetMetric("miss_rate", res.Cache.MissRate())
	tp := timing.DefaultParams()
	if trep, err := timing.Evaluate(res, tp); err == nil {
		art.SetMetric("cpi", trep.CPI())
		art.SetMetric("avg_read_latency_cycles", trep.AvgReadLatency)
	}
	if erep, err := energy.Evaluate(res, sram.OperatingPoint{VoltageV: spec.VDD, FreqMHz: spec.FreqMHz}, timing.DefaultParams()); err == nil {
		art.SetMetric("dynamic_j", erep.DynamicJ)
		art.SetMetric("leakage_j", erep.LeakageJ)
	}
	return art
}

// HierArtifact assembles the deterministic artifact for a finished hierarchy
// job: both levels' full event ledgers (controller names prefixed "L1:" and
// "L2:"), the merged traffic metrics, and per-level modeled scalars. Like
// Artifact, only fully deterministic fields are set, so a daemon-fetched
// hierarchy artifact is byte-identical to an in-process Execute of the same
// spec.
func HierArtifact(spec JobSpec, source string, res hier.Result) *report.Artifact {
	art := report.New("sramd", spec.Seed)
	art.Config = ConfigMap(spec, source)
	l1 := report.Ledger(res.L1)
	l1.Controller = "L1:" + l1.Controller
	l2 := report.Ledger(res.L2)
	l2.Controller = "L2:" + l2.Controller
	art.Controllers = append(art.Controllers, l1, l2)

	art.SetMetric("l1_accesses_per_request", res.L1.AccessesPerRequest())
	art.SetMetric("l1_miss_rate", res.L1.Cache.MissRate())
	art.SetMetric("l2_accesses_per_request", res.L2.AccessesPerRequest())
	art.SetMetric("l2_miss_rate", res.L2.Cache.MissRate())
	art.SetMetric("refills", float64(res.Traffic.Refills))
	art.SetMetric("writebacks", float64(res.Traffic.Writebacks))
	art.SetMetric("premature_wbs", float64(res.Traffic.PrematureWBs))
	art.SetMetric("l2_visible", float64(res.L2Visible()))
	art.SetMetric("l2_visible_per_request", res.L2VisiblePerRequest())
	point := sram.OperatingPoint{VoltageV: spec.VDD, FreqMHz: spec.FreqMHz}
	if erep, err := energy.Evaluate(res.L1, point, timing.DefaultParams()); err == nil {
		art.SetMetric("l1_dynamic_j", erep.DynamicJ)
		art.SetMetric("l1_leakage_j", erep.LeakageJ)
	}
	if erep, err := energy.Evaluate(res.L2, point, timing.DefaultParams()); err == nil {
		art.SetMetric("l2_dynamic_j", erep.DynamicJ)
		art.SetMetric("l2_leakage_j", erep.LeakageJ)
	}
	return art
}

// Execute is the in-process reference runner: it runs a validated spec to
// completion and returns the encoded canonical artifact. The daemon's job
// path and Execute share RunSpec/RunHierSpec and Artifact/HierArtifact, so
// the bytes a client fetches from `GET /v1/jobs/{id}/result` are identical
// to the bytes Execute produces for the same spec and source — the
// end-to-end identity the smoke test and cmd/sramload verify.
func Execute(ctx context.Context, spec JobSpec, source string, open func() (trace.Stream, error)) ([]byte, error) {
	if spec.Hierarchy {
		res, err := RunHierSpec(ctx, spec, open, nil)
		if err != nil {
			return nil, err
		}
		return report.Encode(HierArtifact(spec, source, res))
	}
	res, err := RunSpec(ctx, spec, open, nil)
	if err != nil {
		return nil, err
	}
	return report.Encode(Artifact(spec, source, res))
}
