package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"mime/multipart"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"cache8t/internal/rescache"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

// newCache opens a rescache for a server test, closed after the server
// shuts down (t.Cleanup runs LIFO, so registering first closes last).
func newCache(t *testing.T, cfg rescache.Config) *rescache.Cache {
	t.Helper()
	rc, err := rescache.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	return rc
}

// submitTerminal submits and decodes a 202 without insisting on the queued
// state — a cache hit is already terminal in the submit response.
func (ts *testServer) submitTerminal(body string) JobStatus {
	ts.t.Helper()
	code, b := ts.submit(body)
	if code != http.StatusAccepted {
		ts.t.Fatalf("submit returned %d: %s", code, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		ts.t.Fatal(err)
	}
	return st
}

// TestCacheHitIdentity is the tentpole property: hit ≡ miss ≡ in-process
// serial. The first submission computes; the second short-circuits the
// queue, finishes succeeded in its 202 response with cached=true, never
// touches the engine, and serves byte-identical artifact bytes.
func TestCacheHitIdentity(t *testing.T) {
	rc := newCache(t, rescache.Config{Dir: t.TempDir()})
	var executions atomic.Int32
	cfg := Config{Workers: 2, Cache: rc}
	cfg.testWrapStream = func(ctx context.Context, j *Job, s trace.Stream) trace.Stream {
		executions.Add(1)
		return s
	}
	ts := newTestServer(t, cfg)
	const body = `{"controller":"wgrb","workload":"bwaves","n":20000}`

	first := ts.submitJob(body)
	if final := ts.waitTerminal(first.ID); final.State != StateSucceeded || final.Cached {
		t.Fatalf("first run: state=%s cached=%v, want fresh success", final.State, final.Cached)
	}
	_, missBytes := ts.get("/v1/jobs/" + first.ID + "/result")

	second := ts.submitTerminal(body)
	if second.State != StateSucceeded || !second.Cached {
		t.Fatalf("repeat submission: state=%s cached=%v, want immediate cached success", second.State, second.Cached)
	}
	if second.ID == first.ID {
		t.Fatal("cache hit reused the first job's ID")
	}
	if second.ConfigHash != first.ConfigHash {
		t.Fatalf("config hash changed across identical submissions: %s vs %s", second.ConfigHash, first.ConfigHash)
	}
	code, hitBytes := ts.get("/v1/jobs/" + second.ID + "/result")
	if code != http.StatusOK {
		t.Fatalf("cached result fetch: %d: %s", code, hitBytes)
	}
	if !bytes.Equal(hitBytes, missBytes) {
		t.Fatalf("cache-hit artifact differs from the uncached run:\n%s\nvs\n%s", hitBytes, missBytes)
	}

	spec, err := DecodeSpec([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	local, err := Execute(context.Background(), spec, spec.Workload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hitBytes, local) {
		t.Fatal("cache-hit artifact differs from the in-process serial run")
	}

	if n := executions.Load(); n != 1 {
		t.Fatalf("engine executed %d times for two identical submissions, want 1", n)
	}
	_, metrics := ts.get("/metrics")
	for _, want := range []string{
		`rescache_hits_total{tier="memory"} 1`,
		"rescache_misses_total 1",
		fmt.Sprintf("rescache_bytes_served_total %d", len(missBytes)),
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestCacheSingleflight holds the first of two concurrent identical jobs
// at the gate: the second must ride the first's computation (exactly one
// engine execution) and still succeed with the same bytes.
func TestCacheSingleflight(t *testing.T) {
	rc := newCache(t, rescache.Config{})
	g := newGate(500)
	var executions atomic.Int32
	cfg := Config{Workers: 2, Cache: rc}
	cfg.testWrapStream = func(ctx context.Context, j *Job, s trace.Stream) trace.Stream {
		executions.Add(1)
		return g.wrap(ctx, j, s)
	}
	ts := newTestServer(t, cfg)
	const body = `{"controller":"rmw","workload":"bwaves","n":20000}`

	leader := ts.submitJob(body)
	<-g.entered // the leader is mid-simulation; nothing is cached yet
	follower := ts.submitJob(body)
	close(g.release)

	lFinal := ts.waitTerminal(leader.ID)
	fFinal := ts.waitTerminal(follower.ID)
	if lFinal.State != StateSucceeded || fFinal.State != StateSucceeded {
		t.Fatalf("states: leader=%s follower=%s, want both succeeded", lFinal.State, fFinal.State)
	}
	if lFinal.Cached {
		t.Fatal("the computing leader was marked cached")
	}
	if !fFinal.Cached {
		t.Fatal("the deduplicated follower was not marked cached")
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("engine executed %d times for two concurrent identical jobs, want 1", n)
	}
	_, lb := ts.get("/v1/jobs/" + leader.ID + "/result")
	_, fb := ts.get("/v1/jobs/" + follower.ID + "/result")
	if !bytes.Equal(lb, fb) {
		t.Fatal("singleflighted jobs returned different artifact bytes")
	}
	_, metrics := ts.get("/metrics")
	for _, want := range []string{"rescache_misses_total 1", "rescache_dedup_total 1"} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestCorruptBlobRecomputed flips a byte in the stored CAS blob: the next
// identical submission must detect the damage, evict it, rerun the
// simulation, and serve correct bytes — never the corrupted ones.
func TestCorruptBlobRecomputed(t *testing.T) {
	dir := t.TempDir()
	// MemBytes 1: artifacts never fit the memory tier, so every repeat
	// exercises the disk read path under test.
	rc := newCache(t, rescache.Config{Dir: dir, MemBytes: 1})
	ts := newTestServer(t, Config{Workers: 1, Cache: rc})
	const body = `{"controller":"wgrb","workload":"bwaves","n":5000}`

	first := ts.submitJob(body)
	if final := ts.waitTerminal(first.ID); final.State != StateSucceeded {
		t.Fatalf("first run ended %s: %s", final.State, final.Error)
	}
	_, want := ts.get("/v1/jobs/" + first.ID + "/result")

	blobDir := filepath.Join(dir, "blobs", "sha256")
	entries, err := os.ReadDir(blobDir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("want exactly one CAS blob, got %d (err %v)", len(entries), err)
	}
	blobPath := filepath.Join(blobDir, entries[0].Name())
	raw, err := os.ReadFile(blobPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(blobPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// The repeat must NOT be served from cache: the read path rejects the
	// corrupt blob, so this is a normal queued job that recomputes.
	second := ts.submitTerminal(body)
	if second.Cached {
		t.Fatal("corrupted blob was served as a cache hit")
	}
	final := ts.waitTerminal(second.ID)
	if final.State != StateSucceeded {
		t.Fatalf("recompute ended %s: %s", final.State, final.Error)
	}
	if final.Cached {
		t.Fatal("job after corruption was marked cached; it must have recomputed")
	}
	_, got := ts.get("/v1/jobs/" + second.ID + "/result")
	if !bytes.Equal(got, want) {
		t.Fatal("recomputed artifact differs from the original")
	}
	if _, err := os.Stat(blobPath); err != nil {
		t.Fatalf("recomputed blob not re-stored in the CAS: %v", err)
	}
	if fresh, err := os.ReadFile(blobPath); err != nil || bytes.Equal(fresh, raw) {
		t.Fatal("CAS still holds the corrupted bytes")
	}
	_, metrics := ts.get("/metrics")
	if !strings.Contains(string(metrics), "rescache_corrupt_total 1") {
		t.Fatalf("/metrics missing rescache_corrupt_total 1:\n%s", metrics)
	}
}

// traceBody builds a multipart submission with a generated trace upload.
func traceBody(t *testing.T, spec string, n int) (*bytes.Buffer, string) {
	t.Helper()
	prof, err := workload.ProfileByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	accs, err := workload.Take(prof, 7, n)
	if err != nil {
		t.Fatal(err)
	}
	var enc bytes.Buffer
	if _, err := trace.WriteAll(&enc, trace.FromSlice(accs), 0); err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	pw, _ := mw.CreateFormField("spec")
	fmt.Fprint(pw, spec)
	fw, _ := mw.CreateFormFile("trace", "upload.c8tt")
	fw.Write(enc.Bytes())
	mw.Close()
	return &body, mw.FormDataContentType()
}

// spoolFiles lists leftover spooled traces in dir.
func spoolFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "sramd-trace-*"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestSpoolCleanup pins the spool-leak fix across every terminal path a
// trace job can take: computed success, mid-run cancellation, and the
// cache-hit short-circuit (which never reaches a worker, so it must clean
// up at submit).
func TestSpoolCleanup(t *testing.T) {
	spool := t.TempDir()
	rc := newCache(t, rescache.Config{})
	g := newGate(500)
	var curGate atomic.Pointer[gate]
	curGate.Store(g)
	cfg := Config{Workers: 1, SpoolDir: spool, Cache: rc}
	cfg.testWrapStream = func(ctx context.Context, j *Job, s trace.Stream) trace.Stream {
		return curGate.Load().wrap(ctx, j, s)
	}
	ts := newTestServer(t, cfg)

	submitTrace := func(spec string, n int) JobStatus {
		t.Helper()
		body, ct := traceBody(t, spec, n)
		resp, err := http.Post(ts.hs.URL+"/v1/jobs", ct, body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("trace submit: %d", resp.StatusCode)
		}
		return st
	}

	// Path 1: computed success.
	close(g.release) // first job runs through the gate unimpeded
	st := submitTrace(`{"controller":"wgrb"}`, 3000)
	if final := ts.waitTerminal(st.ID); final.State != StateSucceeded {
		t.Fatalf("trace job ended %s: %s", final.State, final.Error)
	}
	if left := spoolFiles(t, spool); len(left) != 0 {
		t.Fatalf("spool leak after success: %v", left)
	}

	// Path 2: cache hit at submit — same bytes, same spec, so the config
	// hash (which folds in the trace digest) matches and the job finishes
	// terminal in the submit response without ever reaching a worker.
	hit := submitTrace(`{"controller":"wgrb"}`, 3000)
	if hit.State != StateSucceeded || !hit.Cached {
		t.Fatalf("repeat trace submission: state=%s cached=%v, want cached success", hit.State, hit.Cached)
	}
	if left := spoolFiles(t, spool); len(left) != 0 {
		t.Fatalf("spool leak after cache hit: %v", left)
	}

	// Path 3: cancelled mid-run. A different spec so it misses the cache;
	// a fresh gate holds it mid-simulation.
	g2 := newGate(500)
	curGate.Store(g2)
	st = submitTrace(`{"controller":"rmw"}`, 3000)
	<-g2.entered
	if code, b := ts.cancel(st.ID); code != http.StatusOK {
		t.Fatalf("cancel: %d: %s", code, b)
	}
	if final := ts.waitTerminal(st.ID); final.State != StateCancelled {
		t.Fatalf("cancelled trace job ended %s", final.State)
	}
	if left := spoolFiles(t, spool); len(left) != 0 {
		t.Fatalf("spool leak after cancellation: %v", left)
	}
}
