package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cache8t/internal/rescache"
)

// openTestCache opens a disk-backed result cache under dir and schedules it
// to close after the servers using it have shut down (t.Cleanup is LIFO, so
// register the cache before the server).
func openTestCache(t *testing.T, dir string) *rescache.Cache {
	t.Helper()
	c, err := rescache.Open(rescache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// submitAccepted submits a spec and requires only a 202: on a journaled
// server the submit fsyncs between enqueue and response, so a fast job's
// 202 snapshot may already be past queued — unlike submitJob, this helper
// does not insist on the initial state.
func submitAccepted(ts *testServer, body string) JobStatus {
	ts.t.Helper()
	code, b := ts.submit(body)
	if code != http.StatusAccepted {
		ts.t.Fatalf("submit returned %d: %s", code, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		ts.t.Fatal(err)
	}
	if st.ID == "" || st.ConfigHash == "" {
		ts.t.Fatalf("bad 202 status: %+v", st)
	}
	return st
}

// collectEvents follows a job's SSE stream to the end and reports what a
// re-subscribing watcher observes: whether a "recovered" event preceded the
// status stream, the terminal status, and how many terminal status frames
// arrived (the reconnection contract demands exactly one).
func collectEvents(ts *testServer, id string) (final JobStatus, sawRecovered bool, terminalFrames int) {
	ts.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.hs.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		ts.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		ts.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ts.t.Fatalf("events: %s", resp.Status)
	}
	event := ""
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
			if event == "recovered" {
				sawRecovered = true
			}
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var st JobStatus
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
			ts.t.Fatalf("bad SSE data line: %v", err)
		}
		if event == "status" && st.State.Terminal() {
			terminalFrames++
			final = st
		}
	}
	if err := sc.Err(); err != nil {
		ts.t.Fatalf("event stream read: %v", err)
	}
	return final, sawRecovered, terminalFrames
}

// TestRestartPreservesTerminalJobs is the baseline durability property: a
// daemon restart keeps finished jobs visible — same ids, same order, same
// states, same artifact bytes — with `recovered: true` provenance.
func TestRestartPreservesTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	jdir := filepath.Join(dir, "journal")
	cdir := filepath.Join(dir, "cas")
	const body = `{"controller":"rmw","workload":"bwaves","n":2000}`

	cache1 := openTestCache(t, cdir)
	ts1 := newTestServer(t, Config{Workers: 1, Cache: cache1, JournalDir: jdir})
	stA := submitAccepted(ts1, body)
	if fin := ts1.waitTerminal(stA.ID); fin.State != StateSucceeded {
		t.Fatalf("job A ended %s: %s", fin.State, fin.Error)
	}
	// A repeat submission finishes from the cache — also journaled.
	code, b := ts1.submit(body)
	if code != http.StatusAccepted {
		t.Fatalf("repeat submit: %d: %s", code, b)
	}
	var stB JobStatus
	if err := json.Unmarshal(b, &stB); err != nil {
		t.Fatal(err)
	}
	if stB.State != StateSucceeded || !stB.Cached {
		t.Fatalf("repeat submit not served from cache: %+v", stB)
	}
	_, wantArtifact := ts1.get("/v1/jobs/" + stA.ID + "/result")

	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	if err := ts1.srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.hs.Close()
	cache1.Close()

	cache2 := openTestCache(t, cdir)
	ts2 := newTestServer(t, Config{Workers: 1, Cache: cache2, JournalDir: jdir})

	code, lst := ts2.get("/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("list after restart: %d: %s", code, lst)
	}
	var jobs []JobStatus
	if err := json.Unmarshal(lst, &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].ID != stA.ID || jobs[1].ID != stB.ID {
		t.Fatalf("job table after restart: %+v", jobs)
	}
	for _, j := range jobs {
		if j.State != StateSucceeded || !j.Recovered {
			t.Errorf("job %s after restart: state %s recovered %v", j.ID, j.State, j.Recovered)
		}
	}
	if jobs[0].Accesses != 2000 {
		t.Errorf("job A accesses after restart = %d, want 2000", jobs[0].Accesses)
	}
	if !jobs[1].Cached {
		t.Errorf("job B lost its cached provenance: %+v", jobs[1])
	}
	// The artifact is refetched from the CAS by config hash.
	code, got := ts2.get("/v1/jobs/" + stA.ID + "/result")
	if code != http.StatusOK {
		t.Fatalf("result after restart: %d: %s", code, got)
	}
	if !bytes.Equal(got, wantArtifact) {
		t.Fatal("artifact bytes changed across restart")
	}
	if code, m := ts2.get("/metrics"); code != http.StatusOK ||
		!strings.Contains(string(m), "sramd_recovered_jobs_total 2") {
		t.Fatalf("recovered-jobs metric missing:\n%s", m)
	}
}

// TestCrashRecoveryResumesFromCheckpoint is the tentpole end to end, inside
// the package: a job is killed mid-run (journal frozen to simulate the
// crash, so its terminal transition is lost), and the restarted server
// re-runs it from its latest checkpoint to an artifact byte-identical to an
// uninterrupted in-process run. It doubles as the SSE reconnection test: a
// watcher re-subscribing after the restart sees a "recovered" event and
// exactly one terminal status.
func TestCrashRecoveryResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	jdir := filepath.Join(dir, "journal")
	cdir := filepath.Join(dir, "cas")
	const body = `{"controller":"wgrb","workload":"bwaves","n":3000,"batch":64}`

	cache1 := openTestCache(t, cdir)
	g := newGate(1000)
	ts1 := newTestServer(t, Config{
		Workers: 1, Cache: cache1, JournalDir: jdir, CheckpointEvery: 1,
		testWrapStream: g.wrap,
	})
	st := submitAccepted(ts1, body)
	<-g.entered // mid-run: ~15 batches fed, each synchronously checkpointed

	// Crash: every transition after this point is lost to the journal. The
	// cancel tears the run down in-memory (its cancelled record is dropped),
	// so the journal's last word is "running" — exactly a kill -9's view.
	ts1.srv.journal.freeze()
	ts1.cancel(st.ID)
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	if err := ts1.srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.hs.Close()
	cache1.Close()

	cache2 := openTestCache(t, cdir)
	ts2 := newTestServer(t, Config{Workers: 1, Cache: cache2, JournalDir: jdir, CheckpointEvery: 1})

	// The job survived the crash under its original id, re-ran, and
	// succeeded. The re-subscribed watcher sees the recovered marker and one
	// terminal event — no lost "succeeded", no duplicate terminal.
	final, sawRecovered, terminals := collectEvents(ts2, st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("recovered job ended %s: %s", final.State, final.Error)
	}
	if !final.Recovered {
		t.Error("terminal status lost the recovered flag")
	}
	if !sawRecovered {
		t.Error("re-subscribed watcher saw no recovered event")
	}
	if terminals != 1 {
		t.Errorf("watcher saw %d terminal status frames, want exactly 1", terminals)
	}
	if final.Accesses != 3000 {
		t.Errorf("recovered run accesses = %d, want 3000", final.Accesses)
	}

	// Byte-identity through crash + resume: the artifact equals a straight
	// in-process run of the same spec.
	code, got := ts2.get("/v1/jobs/" + st.ID + "/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d: %s", code, got)
	}
	spec, err := DecodeSpec([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Execute(context.Background(), spec, spec.Workload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered artifact differs from an uninterrupted run")
	}

	code, m := ts2.get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"sramd_recovered_jobs_total 1",
		"sramd_checkpoints_restored_total 1",
		"sramd_journal_bytes",
	} {
		if !strings.Contains(string(m), want) {
			t.Errorf("metrics missing %q:\n%s", want, m)
		}
	}
}

// TestRecoverySpecMissing pins the degraded path: a journaled unfinished job
// whose spec blob did not survive (CAS evicted or wiped) must fail with an
// explicit error, not vanish from the table or wedge the queue.
func TestRecoverySpecMissing(t *testing.T) {
	dir := t.TempDir()
	jdir := filepath.Join(dir, "journal")
	if err := os.MkdirAll(jdir, 0o755); err != nil {
		t.Fatal(err)
	}
	line := `{"v":1,"job":"j-000007","state":"running","spec_key":"deadbeef","source":"bwaves","unix_ms":5}` + "\n"
	if err := os.WriteFile(filepath.Join(jdir, journalFile), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	cache := openTestCache(t, filepath.Join(dir, "cas"))
	ts := newTestServer(t, Config{Workers: 1, Cache: cache, JournalDir: jdir})

	code, b := ts.get("/v1/jobs/j-000007")
	if code != http.StatusOK {
		t.Fatalf("status: %d: %s", code, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !st.Recovered || !strings.Contains(st.Error, "spec missing") {
		t.Fatalf("unrecoverable job status: %+v", st)
	}
	// New submissions must not collide with the recovered id space. (The 202
	// snapshot may already show a later state — a journaled submit fsyncs
	// between enqueue and response, so a fast job can be past queued.)
	code, b = ts.submit(`{"controller":"rmw","workload":"bwaves","n":1000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit after recovery: %d: %s", code, b)
	}
	var next JobStatus
	if err := json.Unmarshal(b, &next); err != nil {
		t.Fatal(err)
	}
	if next.ID <= "j-000007" {
		t.Fatalf("new job id %s does not advance past recovered ids", next.ID)
	}
}

// TestNewJournalRequiresDiskCache pins the misconfiguration guard: a journal
// without a persistent CAS cannot hold specs or checkpoints, so New must
// refuse rather than degrade silently.
func TestNewJournalRequiresDiskCache(t *testing.T) {
	dir := t.TempDir()
	if _, err := New(Config{JournalDir: dir}); err == nil {
		t.Fatal("New accepted JournalDir with no cache")
	}
	memOnly, err := rescache.Open(rescache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer memOnly.Close()
	if _, err := New(Config{JournalDir: dir, Cache: memOnly}); err == nil {
		t.Fatal("New accepted JournalDir with a memory-only cache")
	}
}

// TestRecoveredResultGone pins the 410 contract: a recovered succeeded job
// whose artifact was evicted from the CAS reports Gone, not a server error.
func TestRecoveredResultGone(t *testing.T) {
	dir := t.TempDir()
	jdir := filepath.Join(dir, "journal")
	if err := os.MkdirAll(jdir, 0o755); err != nil {
		t.Fatal(err)
	}
	line := fmt.Sprintf(`{"v":1,"job":"j-000003","state":"succeeded","spec_key":"%s","accesses":12}`+"\n",
		strings.Repeat("ab", 32))
	if err := os.WriteFile(filepath.Join(jdir, journalFile), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	cache := openTestCache(t, filepath.Join(dir, "cas"))
	ts := newTestServer(t, Config{Workers: 1, Cache: cache, JournalDir: jdir})

	code, b := ts.get("/v1/jobs/j-000003/result")
	if code != http.StatusGone {
		t.Fatalf("result of artifact-less recovered job: %d (want 410): %s", code, b)
	}
}

// TestJournalRetentionPreservesLiveJobs pins the retention GC (ROADMAP 5c):
// with JournalRetain set, a restart forgets terminal jobs older than the
// window — they leave the job table and the compacted journal file — while
// a live job of the same age is recovered and re-run, never aged out.
func TestJournalRetentionPreservesLiveJobs(t *testing.T) {
	dir := t.TempDir()
	jdir := filepath.Join(dir, "journal")
	cdir := filepath.Join(dir, "cas")
	const body = `{"controller":"rmw","workload":"bwaves","n":2000}`

	cache1 := openTestCache(t, cdir)
	ts1 := newTestServer(t, Config{Workers: 1, Cache: cache1, JournalDir: jdir})
	stA := submitAccepted(ts1, body)
	if fin := ts1.waitTerminal(stA.ID); fin.State != StateSucceeded {
		t.Fatalf("job A ended %s: %s", fin.State, fin.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	if err := ts1.srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.hs.Close()
	cache1.Close()

	// Backdate every record past the retention window, and graft in a live
	// (queued) job of the same age reusing job A's pinned spec: retention
	// must drop the finished job and keep the live one.
	path := filepath.Join(jdir, journalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := compactRecords(decodeJournal(data))
	if len(recs) != 1 || recs[0].SpecKey == "" || !recs[0].State.Terminal() {
		t.Fatalf("journal did not compact to one finished job: %q", data)
	}
	old := time.Now().Add(-2 * time.Hour).UnixMilli()
	live := recs[0]
	live.Job = "j-000099"
	live.State = StateQueued
	live.Accesses = 0
	live.Cached = false
	recs = append(recs, live)
	var buf bytes.Buffer
	for _, rec := range recs {
		rec.UnixMS = old
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	cache2 := openTestCache(t, cdir)
	ts2 := newTestServer(t, Config{Workers: 1, Cache: cache2, JournalDir: jdir, JournalRetain: time.Hour})

	code, b := ts2.get("/v1/jobs/" + stA.ID)
	if code != http.StatusNotFound {
		t.Fatalf("aged-out terminal job still served: %d: %s", code, b)
	}
	fin := ts2.waitTerminal("j-000099")
	if fin.State != StateSucceeded || !fin.Recovered {
		t.Fatalf("live job after retention restart: state %s recovered %v: %s", fin.State, fin.Recovered, fin.Error)
	}
	code, lst := ts2.get("/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("list: %d: %s", code, lst)
	}
	var jobs []JobStatus
	if err := json.Unmarshal(lst, &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "j-000099" {
		t.Fatalf("job table after retention restart: %+v", jobs)
	}

	// The GC is durable: the compacted file no longer mentions the old job,
	// so a later open without retention cannot resurrect it.
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), stA.ID) {
		t.Fatalf("compacted journal still mentions the aged-out job:\n%s", data)
	}
}
