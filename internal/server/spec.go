package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/report"
	"cache8t/internal/workload"
)

// MaxCacheKB bounds the cache size a job may request. The paper's shapes top
// out at 128 KB; 64 MiB leaves three orders of magnitude of headroom for
// sensitivity studies while keeping one malicious spec from allocating a
// multi-gigabyte set array inside the daemon.
const MaxCacheKB = 64 * 1024

// JobSpec is the wire description of one simulation job: which controller to
// run, over which input (a bundled workload by name, or a trace uploaded
// alongside the spec), on what cache shape, with which execution knobs.
// Execution knobs (shards, batch) never change results — only the wall-clock
// — so they are excluded from the artifact's config hash.
type JobSpec struct {
	// Controller is the scheme to simulate (core.ParseKind names).
	Controller string `json:"controller"`
	// Workload names a bundled benchmark profile. Empty means the job replays
	// an uploaded trace instead; exactly one of the two sources must be set.
	Workload string `json:"workload,omitempty"`
	// N bounds the accesses simulated. Required (> 0) for workload jobs —
	// synthetic streams are unbounded — and optional for trace jobs, where 0
	// replays the whole trace.
	N int `json:"n,omitempty"`
	// Seed is the workload master seed.
	Seed uint64 `json:"seed,omitempty"`
	// Cache is the cache shape; zero fields take the paper's baseline.
	Cache CacheSpec `json:"cache"`
	// Options are the controller behaviour knobs.
	Options OptionsSpec `json:"options"`
	// Shards > 1 set-shards the run (set-local controllers only; the spec is
	// rejected, not silently degraded, when the controller cannot shard).
	Shards int `json:"shards,omitempty"`
	// Batch is the streaming batch length in accesses (0 = default).
	Batch int `json:"batch,omitempty"`
	// VDD and FreqMHz set the operating point for the energy metrics
	// (defaults 1.0 V / 2000 MHz).
	VDD     float64 `json:"vdd,omitempty"`
	FreqMHz float64 `json:"freq_mhz,omitempty"`
}

// CacheSpec is the cache geometry portion of a JobSpec.
type CacheSpec struct {
	SizeKB     int    `json:"size_kb,omitempty"`
	Ways       int    `json:"ways,omitempty"`
	BlockBytes int    `json:"block_bytes,omitempty"`
	Policy     string `json:"policy,omitempty"`
}

// OptionsSpec is the controller-option portion of a JobSpec.
type OptionsSpec struct {
	BufferDepth          int  `json:"buffer_depth,omitempty"`
	DisableSilentElision bool `json:"disable_silent_elision,omitempty"`
	CountFillTraffic     bool `json:"count_fill_traffic,omitempty"`
}

// FieldError locates one validation failure within a spec.
type FieldError struct {
	Field string `json:"field"`
	Msg   string `json:"msg"`
}

// SpecError is the field-level validation failure of a JobSpec. The API
// renders Fields directly into the 400 response body.
type SpecError struct {
	Fields []FieldError
}

// Error implements error.
func (e *SpecError) Error() string {
	parts := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		parts[i] = f.Field + ": " + f.Msg
	}
	return "server: invalid spec: " + strings.Join(parts, "; ")
}

// DecodeSpec parses a JSON job spec strictly — unknown fields, trailing
// data, and type mismatches are errors, not silent drops — and fills the
// baseline defaults. The result still needs Validate before it can run.
func DecodeSpec(b []byte) (JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return JobSpec{}, fmt.Errorf("server: spec: %w", err)
	}
	if dec.More() {
		return JobSpec{}, fmt.Errorf("server: spec: trailing data after JSON object")
	}
	s.Normalize()
	return s, nil
}

// Normalize fills zero fields with the paper's baseline defaults. It is
// idempotent, which is what makes accepted specs round-trip through
// Canonical byte-for-byte.
func (s *JobSpec) Normalize() {
	if s.Cache.SizeKB == 0 {
		s.Cache.SizeKB = 64
	}
	if s.Cache.Ways == 0 {
		s.Cache.Ways = 4
	}
	if s.Cache.BlockBytes == 0 {
		s.Cache.BlockBytes = 32
	}
	if s.Cache.Policy == "" {
		s.Cache.Policy = "lru"
	}
	if s.Options.BufferDepth == 0 {
		s.Options.BufferDepth = 1
	}
	if s.VDD == 0 {
		s.VDD = 1.0
	}
	if s.FreqMHz == 0 {
		s.FreqMHz = 2000
	}
}

// Validate checks every field and returns a *SpecError naming each failure.
// hasTrace says whether the submission carried a trace upload, which decides
// the workload/n requirements.
func (s JobSpec) Validate(hasTrace bool) error {
	var fields []FieldError
	add := func(field, format string, args ...any) {
		fields = append(fields, FieldError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}

	kind, kindErr := core.ParseKind(s.Controller)
	if s.Controller == "" {
		add("controller", "required (one of conventional|rmw|localrmw|word|coalesce|wg|wgrb)")
	} else if kindErr != nil {
		add("controller", "%v", kindErr)
	}

	switch {
	case hasTrace && s.Workload != "":
		add("workload", "must be empty when a trace is uploaded (one source per job)")
	case !hasTrace && s.Workload == "":
		add("workload", "required when no trace is uploaded (see workload names via sramsim -list)")
	case !hasTrace:
		if _, err := workload.ProfileByName(s.Workload); err != nil {
			add("workload", "%v", err)
		}
	}

	switch {
	case s.N < 0:
		add("n", "must be >= 0")
	case !hasTrace && s.Workload != "" && s.N == 0:
		add("n", "must be > 0 for workload jobs (synthetic streams are unbounded)")
	}

	pol, polErr := cache.ParsePolicy(s.Cache.Policy)
	if polErr != nil {
		add("cache.policy", "%v", polErr)
	}
	switch {
	case s.Cache.SizeKB < 0:
		add("cache.size_kb", "must be positive")
	case s.Cache.SizeKB > MaxCacheKB:
		add("cache.size_kb", "%d KB exceeds the service cap of %d KB", s.Cache.SizeKB, MaxCacheKB)
	default:
		if _, err := cache.NewGeometry(s.Cache.SizeKB*1024, s.Cache.Ways, s.Cache.BlockBytes); err != nil {
			add("cache", "%v", err)
		}
	}

	if s.Options.BufferDepth < 0 {
		add("options.buffer_depth", "must be >= 0")
	}
	switch {
	case s.Shards < 0:
		add("shards", "must be >= 0")
	case s.Shards > 1 && kindErr == nil && !kind.SetLocal():
		add("shards", "controller %v keeps cross-set state and cannot be set-sharded; drop shards or pick conventional|word|rmw|localrmw", kind)
	case s.Shards > 1 && polErr == nil && pol == cache.Random:
		add("shards", "random replacement draws every set's victims from one shared RNG stream and cannot be set-sharded")
	}
	if s.Batch < 0 {
		add("batch", "must be >= 0")
	}
	if s.VDD < 0 {
		add("vdd", "must be positive")
	}
	if s.FreqMHz < 0 {
		add("freq_mhz", "must be positive")
	}

	if len(fields) > 0 {
		return &SpecError{Fields: fields}
	}
	return nil
}

// Canonical renders the spec as canonical JSON (sorted keys, stable number
// literals). Decoding canonical bytes and re-encoding them reproduces the
// input exactly — the round-trip property FuzzJobSpec pins.
func (s JobSpec) Canonical() ([]byte, error) {
	return report.Canonical(s)
}

// CacheConfig translates the validated spec into the cache configuration.
func (s JobSpec) CacheConfig() (cache.Config, error) {
	pol, err := cache.ParsePolicy(s.Cache.Policy)
	if err != nil {
		return cache.Config{}, err
	}
	return cache.Config{
		SizeBytes:  s.Cache.SizeKB * 1024,
		Ways:       s.Cache.Ways,
		BlockBytes: s.Cache.BlockBytes,
		Policy:     pol,
		Seed:       s.Seed,
	}, nil
}

// CoreOptions translates the validated spec into controller options.
func (s JobSpec) CoreOptions() core.Options {
	return core.Options{
		BufferDepth:          s.Options.BufferDepth,
		DisableSilentElision: s.Options.DisableSilentElision,
		CountFillTraffic:     s.Options.CountFillTraffic,
	}
}
