package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/hier"
	"cache8t/internal/report"
	"cache8t/internal/workload"
)

// MaxCacheKB bounds the cache size a job may request. The paper's shapes top
// out at 128 KB; 64 MiB leaves three orders of magnitude of headroom for
// sensitivity studies while keeping one malicious spec from allocating a
// multi-gigabyte set array inside the daemon.
const MaxCacheKB = 64 * 1024

// JobSpec is the wire description of one simulation job: which controller to
// run, over which input (a bundled workload by name, or a trace uploaded
// alongside the spec), on what cache shape, with which execution knobs.
// Execution knobs (shards, batch) never change results — only the wall-clock
// — so they are excluded from the artifact's config hash.
type JobSpec struct {
	// Controller is the scheme to simulate (core.ParseKind names).
	Controller string `json:"controller"`
	// Workload names a bundled benchmark profile. Empty means the job replays
	// an uploaded trace instead; exactly one of the two sources must be set.
	Workload string `json:"workload,omitempty"`
	// N bounds the accesses simulated. Required (> 0) for workload jobs —
	// synthetic streams are unbounded — and optional for trace jobs, where 0
	// replays the whole trace.
	N int `json:"n,omitempty"`
	// Seed is the workload master seed.
	Seed uint64 `json:"seed,omitempty"`
	// Cache is the cache shape; zero fields take the paper's baseline.
	Cache CacheSpec `json:"cache"`
	// Options are the controller behaviour knobs.
	Options OptionsSpec `json:"options"`
	// Shards > 1 set-shards the run (set-local controllers only; the spec is
	// rejected, not silently degraded, when the controller cannot shard).
	Shards int `json:"shards,omitempty"`
	// Batch is the streaming batch length in accesses (0 = default).
	Batch int `json:"batch,omitempty"`
	// VDD and FreqMHz set the operating point for the energy metrics
	// (defaults 1.0 V / 2000 MHz).
	VDD     float64 `json:"vdd,omitempty"`
	FreqMHz float64 `json:"freq_mhz,omitempty"`
	// Hierarchy turns the job into a two-level run (internal/hier): the
	// spec's Controller/Cache/Options describe the L1, and the L2 block the
	// second level driven by the L1's refill/write-back stream. Hierarchy
	// jobs run serially (Shards must be <= 1).
	Hierarchy bool `json:"hierarchy,omitempty"`
	// L2 configures the second level. Only valid — and only defaulted by
	// Normalize — when Hierarchy is set.
	L2 *L2Spec `json:"l2,omitempty"`
}

// L2Spec is the second-level portion of a hierarchy JobSpec.
type L2Spec struct {
	// Controller is the L2 scheme (core.ParseKind names; default rmw).
	Controller string `json:"controller,omitempty"`
	// Cache is the L2 shape; zero fields default to a 256 KB, 8-way cache
	// with the L1's block size.
	Cache CacheSpec `json:"cache"`
	// Options are the L2 controller knobs.
	Options OptionsSpec `json:"options"`
}

// CacheSpec is the cache geometry portion of a JobSpec.
type CacheSpec struct {
	SizeKB     int    `json:"size_kb,omitempty"`
	Ways       int    `json:"ways,omitempty"`
	BlockBytes int    `json:"block_bytes,omitempty"`
	Policy     string `json:"policy,omitempty"`
}

// OptionsSpec is the controller-option portion of a JobSpec.
type OptionsSpec struct {
	BufferDepth          int  `json:"buffer_depth,omitempty"`
	DisableSilentElision bool `json:"disable_silent_elision,omitempty"`
	CountFillTraffic     bool `json:"count_fill_traffic,omitempty"`
}

// FieldError locates one validation failure within a spec.
type FieldError struct {
	Field string `json:"field"`
	Msg   string `json:"msg"`
}

// SpecError is the field-level validation failure of a JobSpec. The API
// renders Fields directly into the 400 response body.
type SpecError struct {
	Fields []FieldError
}

// Error implements error.
func (e *SpecError) Error() string {
	parts := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		parts[i] = f.Field + ": " + f.Msg
	}
	return "server: invalid spec: " + strings.Join(parts, "; ")
}

// DecodeSpec parses a JSON job spec strictly — unknown fields, trailing
// data, and type mismatches are errors, not silent drops — and fills the
// baseline defaults. The result still needs Validate before it can run.
func DecodeSpec(b []byte) (JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return JobSpec{}, fmt.Errorf("server: spec: %w", err)
	}
	if dec.More() {
		return JobSpec{}, fmt.Errorf("server: spec: trailing data after JSON object")
	}
	s.Normalize()
	return s, nil
}

// Normalize fills zero fields with the paper's baseline defaults. It is
// idempotent, which is what makes accepted specs round-trip through
// Canonical byte-for-byte.
func (s *JobSpec) Normalize() {
	if s.Cache.SizeKB == 0 {
		s.Cache.SizeKB = 64
	}
	if s.Cache.Ways == 0 {
		s.Cache.Ways = 4
	}
	if s.Cache.BlockBytes == 0 {
		s.Cache.BlockBytes = 32
	}
	if s.Cache.Policy == "" {
		s.Cache.Policy = "lru"
	}
	if s.Options.BufferDepth == 0 {
		s.Options.BufferDepth = 1
	}
	if s.VDD == 0 {
		s.VDD = 1.0
	}
	if s.FreqMHz == 0 {
		s.FreqMHz = 2000
	}
	// The L2 block is defaulted only for hierarchy jobs: a bare `l2` on a
	// single-level spec stays as submitted so Validate can name the
	// inconsistency instead of papering over it.
	if s.Hierarchy {
		if s.L2 == nil {
			s.L2 = &L2Spec{}
		}
		if s.L2.Controller == "" {
			s.L2.Controller = "rmw"
		}
		if s.L2.Cache.SizeKB == 0 {
			s.L2.Cache.SizeKB = 256
		}
		if s.L2.Cache.Ways == 0 {
			s.L2.Cache.Ways = 8
		}
		if s.L2.Cache.BlockBytes == 0 {
			s.L2.Cache.BlockBytes = s.Cache.BlockBytes
		}
		if s.L2.Cache.Policy == "" {
			s.L2.Cache.Policy = "lru"
		}
		if s.L2.Options.BufferDepth == 0 {
			s.L2.Options.BufferDepth = 1
		}
	}
}

// Validate checks every field and returns a *SpecError naming each failure.
// hasTrace says whether the submission carried a trace upload, which decides
// the workload/n requirements.
func (s JobSpec) Validate(hasTrace bool) error {
	var fields []FieldError
	add := func(field, format string, args ...any) {
		fields = append(fields, FieldError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}

	kind, kindErr := core.ParseKind(s.Controller)
	if s.Controller == "" {
		add("controller", "required (one of conventional|rmw|localrmw|word|coalesce|wg|wgrb|ts)")
	} else if kindErr != nil {
		add("controller", "%v", kindErr)
	}

	switch {
	case hasTrace && s.Workload != "":
		add("workload", "must be empty when a trace is uploaded (one source per job)")
	case !hasTrace && s.Workload == "":
		add("workload", "required when no trace is uploaded (see workload names via sramsim -list)")
	case !hasTrace:
		if _, err := workload.ProfileByName(s.Workload); err != nil {
			add("workload", "%v", err)
		}
	}

	switch {
	case s.N < 0:
		add("n", "must be >= 0")
	case !hasTrace && s.Workload != "" && s.N == 0:
		add("n", "must be > 0 for workload jobs (synthetic streams are unbounded)")
	}

	pol, polErr := cache.ParsePolicy(s.Cache.Policy)
	if polErr != nil {
		add("cache.policy", "%v", polErr)
	}
	switch {
	case s.Cache.SizeKB < 0:
		add("cache.size_kb", "must be positive")
	case s.Cache.SizeKB > MaxCacheKB:
		add("cache.size_kb", "%d KB exceeds the service cap of %d KB", s.Cache.SizeKB, MaxCacheKB)
	default:
		if _, err := cache.NewGeometry(s.Cache.SizeKB*1024, s.Cache.Ways, s.Cache.BlockBytes); err != nil {
			add("cache", "%v", err)
		}
	}

	if s.Options.BufferDepth < 0 {
		add("options.buffer_depth", "must be >= 0")
	}

	switch {
	case s.Hierarchy:
		if s.L2 == nil {
			add("l2", "required when hierarchy is set (Normalize fills the defaults)")
			break
		}
		if s.L2.Controller == "" {
			add("l2.controller", "required (one of conventional|rmw|localrmw|word|coalesce|wg|wgrb|ts)")
		} else if _, err := core.ParseKind(s.L2.Controller); err != nil {
			add("l2.controller", "%v", err)
		}
		if _, err := cache.ParsePolicy(s.L2.Cache.Policy); err != nil {
			add("l2.cache.policy", "%v", err)
		}
		switch {
		case s.L2.Cache.SizeKB < 0:
			add("l2.cache.size_kb", "must be positive")
		case s.L2.Cache.SizeKB > MaxCacheKB:
			add("l2.cache.size_kb", "%d KB exceeds the service cap of %d KB", s.L2.Cache.SizeKB, MaxCacheKB)
		default:
			if _, err := cache.NewGeometry(s.L2.Cache.SizeKB*1024, s.L2.Cache.Ways, s.L2.Cache.BlockBytes); err != nil {
				add("l2.cache", "%v", err)
			}
		}
		if s.L2.Cache.BlockBytes != 0 && s.L2.Cache.BlockBytes < 8 {
			add("l2.cache.block_bytes", "must be at least 8 (the synthesized L2 stream uses 8-byte words)")
		}
		if s.L2.Options.BufferDepth < 0 {
			add("l2.options.buffer_depth", "must be >= 0")
		}
	case s.L2 != nil:
		add("l2", "only valid on hierarchy jobs; set hierarchy: true or drop the block")
	}

	switch {
	case s.Shards < 0:
		add("shards", "must be >= 0")
	case s.Shards > 1 && s.Hierarchy:
		add("shards", "hierarchy jobs are serial: the L1 listener drives the L2 on every fill and eviction, so there is no set partition to shard")
	case s.Shards > 1 && kindErr == nil && !kind.SetLocal():
		add("shards", "controller %v keeps cross-set state and cannot be set-sharded; drop shards or pick conventional|word|rmw|localrmw", kind)
	case s.Shards > 1 && polErr == nil && pol == cache.Random:
		add("shards", "random replacement draws every set's victims from one shared RNG stream and cannot be set-sharded")
	}
	if s.Batch < 0 {
		add("batch", "must be >= 0")
	}
	if s.VDD < 0 {
		add("vdd", "must be positive")
	}
	if s.FreqMHz < 0 {
		add("freq_mhz", "must be positive")
	}

	if len(fields) > 0 {
		return &SpecError{Fields: fields}
	}
	return nil
}

// Canonical renders the spec as canonical JSON (sorted keys, stable number
// literals). Decoding canonical bytes and re-encoding them reproduces the
// input exactly — the round-trip property FuzzJobSpec pins.
func (s JobSpec) Canonical() ([]byte, error) {
	return report.Canonical(s)
}

// CacheConfig translates the validated spec into the cache configuration.
func (s JobSpec) CacheConfig() (cache.Config, error) {
	pol, err := cache.ParsePolicy(s.Cache.Policy)
	if err != nil {
		return cache.Config{}, err
	}
	return cache.Config{
		SizeBytes:  s.Cache.SizeKB * 1024,
		Ways:       s.Cache.Ways,
		BlockBytes: s.Cache.BlockBytes,
		Policy:     pol,
		Seed:       s.Seed,
	}, nil
}

// CoreOptions translates the validated spec into controller options.
func (s JobSpec) CoreOptions() core.Options {
	return core.Options{
		BufferDepth:          s.Options.BufferDepth,
		DisableSilentElision: s.Options.DisableSilentElision,
		CountFillTraffic:     s.Options.CountFillTraffic,
	}
}

// HierConfig translates a validated hierarchy spec into the two-level run
// configuration.
func (s JobSpec) HierConfig() (hier.Config, error) {
	if !s.Hierarchy || s.L2 == nil {
		return hier.Config{}, fmt.Errorf("server: not a hierarchy spec")
	}
	l1Kind, err := core.ParseKind(s.Controller)
	if err != nil {
		return hier.Config{}, err
	}
	l1Cfg, err := s.CacheConfig()
	if err != nil {
		return hier.Config{}, err
	}
	l2Kind, err := core.ParseKind(s.L2.Controller)
	if err != nil {
		return hier.Config{}, err
	}
	l2Pol, err := cache.ParsePolicy(s.L2.Cache.Policy)
	if err != nil {
		return hier.Config{}, err
	}
	return hier.Config{
		L1Kind: l1Kind,
		L1:     l1Cfg,
		Opts:   s.CoreOptions(),
		L2Kind: l2Kind,
		L2: cache.Config{
			SizeBytes:  s.L2.Cache.SizeKB * 1024,
			Ways:       s.L2.Cache.Ways,
			BlockBytes: s.L2.Cache.BlockBytes,
			Policy:     l2Pol,
			Seed:       s.Seed,
		},
		L2Opts: core.Options{
			BufferDepth:          s.L2.Options.BufferDepth,
			DisableSilentElision: s.L2.Options.DisableSilentElision,
			CountFillTraffic:     s.L2.Options.CountFillTraffic,
		},
	}, nil
}
