// Package server turns the simulation stack into a long-running service:
// an HTTP API that accepts experiment specs and trace uploads, enqueues
// them on a bounded job queue executed through internal/engine, and exposes
// the full async lifecycle — submit, status, result, cancel, an SSE progress
// stream, health/readiness probes, and Prometheus metrics. cmd/sramd is the
// daemon around it; cmd/sramload drives it under load and verifies that a
// fetched artifact is byte-identical to an in-process serial run of the
// same spec (see Execute). DESIGN.md §10 documents the job state machine,
// the backpressure limits, and the SSE contract.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cache8t/internal/engine"
	"cache8t/internal/report"
	"cache8t/internal/rescache"
	"cache8t/internal/trace"
)

// Config tunes a Server. The zero value serves with sensible defaults.
type Config struct {
	// Workers bounds concurrently executing jobs (<= 0: one per CPU).
	Workers int
	// QueueDepth bounds jobs waiting to run; a full queue rejects submissions
	// with 429 (<= 0: 64).
	QueueDepth int
	// MaxBodyBytes bounds a submission body, spec plus trace upload; larger
	// bodies are rejected with 413 (<= 0: 256 MiB).
	MaxBodyBytes int64
	// JobTimeout, when positive, bounds each job's run time via the engine;
	// an expired job fails with a timeout error.
	JobTimeout time.Duration
	// SpoolDir receives streamed trace uploads ("" = os.TempDir()). Uploads
	// are spooled to disk, never buffered in memory, and removed when their
	// job reaches a terminal state.
	SpoolDir string
	// Version is reported by /healthz ("" = report.GitSHA()).
	Version string
	// Cache, when set, memoizes job results by config hash: a submission
	// whose hash is already cached short-circuits the queue and finishes
	// succeeded with `cached: true`; concurrent identical jobs singleflight
	// through one engine execution. nil disables caching entirely. The
	// server does not own the cache — the caller closes it after Shutdown.
	Cache *rescache.Cache
	// JournalDir, when set, makes jobs durable: every state transition is
	// fsynced to an append-only journal there, specs are pinned into the
	// result cache, and New replays the journal — re-registering terminal
	// jobs and re-enqueueing unfinished ones — so the job table survives a
	// kill -9. Requires Cache with a disk tier (New errors otherwise).
	JournalDir string
	// CheckpointEvery, when positive and journaling is on, snapshots each
	// serial job's full controller state into the result cache every that
	// many batches; a recovered running job resumes from its latest snapshot
	// instead of re-simulating from access zero. DESIGN.md §12 documents the
	// blob format and the byte-identity guarantee.
	CheckpointEvery int
	// JournalRetain, when positive and journaling is on, is the terminal-job
	// retention window: on open, journal records of jobs that finished
	// (succeeded/failed/cancelled) and were submitted more than this long ago
	// are garbage-collected by the compaction pass, so restart forgets
	// ancient history instead of replaying it forever. Live jobs are never
	// aged out. 0 keeps terminal records until their journal is deleted.
	JournalRetain time.Duration

	// testWrapStream, when set (package tests only), interposes on every
	// job's stream after the progress counter — the hook tests use to gate a
	// job mid-run without sleeping.
	testWrapStream func(ctx context.Context, j *Job, s trace.Stream) trace.Stream
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.SpoolDir == "" {
		c.SpoolDir = os.TempDir()
	}
	if c.Version == "" {
		c.Version = report.GitSHA()
	}
	return c
}

// Server is the simulation-as-a-service core: job store, bounded queue,
// worker pool, and HTTP handlers. Create with New, mount Handler, stop with
// Shutdown.
type Server struct {
	cfg Config
	// Version is the build identifier /healthz reports.
	Version string

	eng     *engine.Engine[[]byte]
	met     *serverMetrics
	cache   *rescache.Cache
	journal *Journal
	queue   chan *Job

	baseCtx    context.Context
	baseCancel context.CancelFunc
	accepting  atomic.Bool
	stopOnce   sync.Once
	stop       chan struct{}
	workers    sync.WaitGroup
	jobWG      sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID uint64
}

// New builds a Server, replays the job journal when one is configured, and
// starts the worker pool. It errors when JournalDir is set without a result
// cache with a disk tier — the journal stores specs, checkpoints, and
// artifacts in the CAS, so durability without persistence is a misconfig,
// not something to degrade silently.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		Version: cfg.Version,
		eng:     engine.New[[]byte](engine.Config{Workers: 1, JobTimeout: cfg.JobTimeout}),
		met:     newServerMetrics(),
		cache:   cfg.Cache,
		queue:   make(chan *Job, cfg.QueueDepth),
		stop:    make(chan struct{}),
		jobs:    map[string]*Job{},
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())

	var pending []*Job
	if cfg.JournalDir != "" {
		if cfg.Cache == nil || !cfg.Cache.HasDisk() {
			return nil, errors.New("server: JournalDir requires a result cache with a disk tier")
		}
		journal, recs, err := OpenJournalRetain(cfg.JournalDir, cfg.JournalRetain, time.Now())
		if err != nil {
			return nil, err
		}
		s.journal = journal
		pending = s.recoverJobs(recs)
	}

	s.accepting.Store(true)
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	// Re-enqueue unfinished recovered jobs in journal (submission) order.
	// Done from a goroutine so recovery never deadlocks on a queue smaller
	// than the backlog — workers are live and drain it.
	if len(pending) > 0 {
		go func() {
			for _, j := range pending {
				select {
				case s.queue <- j:
				case <-s.stop:
					return
				}
			}
		}()
	}
	return s, nil
}

// recoverJobs rebuilds the job table from the compacted journal: terminal
// jobs are re-registered as-is (artifact refetched lazily from the cache),
// queued and running jobs are returned for re-enqueueing, and unfinished
// jobs whose spec or spooled trace did not survive the crash fail with an
// explicit error rather than vanishing. Runs before the worker pool starts,
// so no lock ordering applies yet.
func (s *Server) recoverJobs(recs []journalRecord) []*Job {
	var pending []*Job
	for _, rec := range recs {
		var n uint64
		if _, err := fmt.Sscanf(rec.Job, "j-%d", &n); err == nil && n > s.nextID {
			s.nextID = n
		}
		var spec JobSpec
		specOK := false
		if rec.SpecKey != "" {
			if blob, _, ok := s.cache.Get("spec:" + rec.SpecKey); ok {
				if dec, err := DecodeSpec(blob); err == nil {
					spec, specOK = dec, true
				}
			}
		}
		j := newJob(s.baseCtx, rec.Job, spec, rec.Source, rec.SpecKey)
		j.markRecovered()
		if rec.UnixMS != 0 {
			j.submitted = time.UnixMilli(rec.UnixMS)
		}
		j.tracePath = rec.TracePath
		j.bytesIngested = rec.TraceBytes
		s.met.recovered.Add(1)

		switch {
		case rec.State.Terminal():
			// Reinstate the terminal state directly: no WaitGroup, no metrics
			// re-observation (counters are per-process), context released.
			j.state = rec.State
			j.errText = rec.Error
			j.cached = rec.Cached
			j.accesses.Store(rec.Accesses)
			j.cancel()
		case !specOK:
			j.state = StateFailed
			j.errText = "cannot recover job: spec missing from the result cache"
			j.cancel()
			s.journalState(j, StateFailed, j.errText)
		case rec.TracePath != "" && !fileExists(rec.TracePath):
			j.state = StateFailed
			j.errText = "cannot recover job: spooled trace no longer exists"
			j.cancel()
			s.journalState(j, StateFailed, j.errText)
		default:
			// Unfinished job with its inputs intact: back to the queue. A job
			// that was running re-runs, resuming from its latest checkpoint
			// when one survives (see execute).
			j.state = StateQueued
			s.jobWG.Add(1)
			pending = append(pending, j)
		}
		s.jobs[rec.Job] = j
		s.order = append(s.order, rec.Job)
	}
	return pending
}

// fileExists reports whether path names an existing file.
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// Shutdown drains the server: new submissions are refused immediately,
// queued and in-flight jobs run to completion, and the call returns once
// everything is terminal. If ctx expires first, every remaining job is
// cancelled, the drain completes with those jobs in state "cancelled", and
// ctx's error is returned. Always stops the worker pool; safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.accepting.Store(false)
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseCancel()
		<-drained
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.workers.Wait()
	if s.journal != nil {
		s.journal.Close()
	}
	return err
}

// journalSubmit makes an accepted job durable: the canonical spec bytes go
// into the CAS under "spec:<hash>" (so recovery can rebuild the job), then
// the queued record is fsynced. Runtime journal errors are deliberately
// swallowed — the job still runs this process; durability degrades, service
// does not.
func (s *Server) journalSubmit(j *Job) {
	if s.journal == nil {
		return
	}
	if b, err := j.Spec.Canonical(); err == nil {
		s.cache.Put("spec:"+j.ConfigHash, b)
	}
	s.journal.Append(journalRecord{
		V:          journalVersion,
		Job:        j.ID,
		State:      StateQueued,
		SpecKey:    j.ConfigHash,
		Source:     j.Source,
		TracePath:  j.tracePath,
		TraceBytes: j.bytesIngested,
		UnixMS:     time.Now().UnixMilli(),
	})
}

// journalState fsyncs one state transition for a journaled job.
func (s *Server) journalState(j *Job, state State, errText string) {
	if s.journal == nil {
		return
	}
	rec := journalRecord{
		V:        journalVersion,
		Job:      j.ID,
		State:    state,
		Accesses: j.accesses.Load(),
		Error:    errText,
	}
	if state.Terminal() {
		j.mu.Lock()
		rec.Cached = j.cached
		j.mu.Unlock()
	}
	s.journal.Append(rec)
}

// worker executes queued jobs until the server stops.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case j := <-s.queue:
			s.runJob(j)
		case <-s.stop:
			return
		}
	}
}

// runJob drives one job through the engine: start, execute with timeout and
// panic containment, classify the outcome, account metrics.
func (s *Server) runJob(j *Job) {
	if !j.start() {
		return // cancelled while queued; finishJob already ran
	}
	s.journalState(j, StateRunning, "")
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	outs, _ := s.eng.Run(j.ctx, []engine.Job[[]byte]{{
		Label:  j.ID,
		Weight: int64(j.Spec.N),
		Fn: func(ctx context.Context) ([]byte, error) {
			return s.executeBytes(ctx, j)
		},
	}})
	out := outs[0]
	switch {
	case j.ctx.Err() != nil:
		// DELETE or drain-kill. A cancelled stream can also surface as a
		// clean early EOF, so the job context outranks the outcome.
		s.finishJob(j, StateCancelled, "cancelled", nil)
	case out.Err != nil && errors.Is(out.Err, context.DeadlineExceeded):
		s.finishJob(j, StateFailed, fmt.Sprintf("job timeout after %v", s.cfg.JobTimeout), nil)
	case out.Err != nil:
		s.finishJob(j, StateFailed, out.Err.Error(), nil)
	default:
		s.finishJob(j, StateSucceeded, "", out.Value)
	}
}

// executeBytes produces the job's encoded canonical artifact, through the
// result cache when one is configured. Do covers the race the submit-time
// check cannot: identical jobs already in flight when this one was
// enqueued. A leader computes (and populates both tiers); a follower
// shares the leader's bytes and is marked cached — byte-identity between
// the two is exactly the determinism contract the identity tests pin.
// Do also re-checks the tiers, catching a twin that finished while this
// job sat queued.
func (s *Server) executeBytes(ctx context.Context, j *Job) ([]byte, error) {
	if s.cache == nil {
		return s.executeEncoded(ctx, j)
	}
	blob, cached, err := s.cache.Do(ctx, j.ConfigHash, func() ([]byte, error) {
		return s.executeEncoded(ctx, j)
	})
	if cached {
		j.markCached()
	}
	return blob, err
}

// executeEncoded runs the job and encodes its artifact to the canonical
// bytes every caller (HTTP result, cache blob) serves verbatim.
func (s *Server) executeEncoded(ctx context.Context, j *Job) ([]byte, error) {
	art, err := s.execute(ctx, j)
	if err != nil {
		return nil, err
	}
	return report.Encode(art)
}

// execute opens the job's source, hangs the progress counter on it, and runs
// the spec. It runs on a worker goroutine inside the engine's containment.
func (s *Server) execute(ctx context.Context, j *Job) (*report.Artifact, error) {
	open := OpenSource(j.Spec)
	if j.tracePath != "" {
		f, err := os.Open(j.tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		open = func() (trace.Stream, error) { return trace.NewAnyReader(f) }
	}
	wrap := func(st trace.Stream) trace.Stream {
		var out trace.Stream = &countingStream{inner: st, job: j}
		if s.cfg.testWrapStream != nil {
			out = s.cfg.testWrapStream(ctx, j, out)
		}
		return out
	}
	// Hierarchy jobs run the two-level driver. They are excluded from the
	// checkpoint path below — the snapshot codec covers one controller and
	// one cache, not an L1/L2 pair — so a recovered hierarchy job re-runs
	// from access zero, which the determinism contract makes byte-identical.
	if j.Spec.Hierarchy {
		res, err := RunHierSpec(ctx, j.Spec, open, wrap)
		if err != nil {
			return nil, err
		}
		return HierArtifact(j.Spec, j.Source, res), nil
	}
	// Checkpointing rides the serial streaming driver, so sharded jobs (and
	// servers without a journal) take the plain path. A recovered job looks
	// for its latest snapshot under "ckpt:<job-id>" — job ids survive
	// restarts, so the key does too — and resumes mid-trace when the blob is
	// intact; otherwise it re-simulates from access zero, which the
	// determinism contract makes byte-identical.
	if s.journal != nil && s.cfg.CheckpointEvery > 0 && j.Spec.Shards <= 1 {
		var resumeBlob []byte
		if j.IsRecovered() {
			if blob, _, ok := s.cache.Get("ckpt:" + j.ID); ok {
				resumeBlob = blob
			}
		}
		sink := func(blob []byte, accesses uint64) error {
			s.cache.Put("ckpt:"+j.ID, blob)
			s.met.ckptWritten.Add(1)
			return nil
		}
		res, resumed, err := RunSpecDurable(ctx, j.Spec, open, wrap, resumeBlob, s.cfg.CheckpointEvery, sink)
		if err != nil {
			return nil, err
		}
		if resumed {
			s.met.ckptRestored.Add(1)
		}
		return Artifact(j.Spec, j.Source, res), nil
	}
	res, err := RunSpec(ctx, j.Spec, open, wrap)
	if err != nil {
		return nil, err
	}
	return Artifact(j.Spec, j.Source, res), nil
}

// finishJob applies the terminal transition once: job state, queue
// accounting, metrics, spool cleanup.
func (s *Server) finishJob(j *Job, state State, errText string, artifact []byte) {
	if !j.finish(state, errText, artifact) {
		return
	}
	s.journalState(j, state, errText)
	st := j.Status()
	s.met.observe(j.Spec.Controller, st.RunMS/1e3, st.Accesses, state)
	if j.tracePath != "" {
		os.Remove(j.tracePath)
	}
	s.jobWG.Done()
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error  string       `json:"error"`
	State  State        `json:"state,omitempty"`
	Fields []FieldError `json:"fields,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleSubmit accepts a job: a JSON spec body for workload jobs, or a
// multipart body with a "spec" part and a "trace" part whose bytes are
// streamed straight to the spool file (sniffed later by trace.NewAnyReader —
// gzip, binary C8TT, and text all work). Responses: 202 with the job status,
// 400 on a malformed or invalid spec (field-level errors), 413 when the body
// exceeds MaxBodyBytes or the spec alone exceeds maxSpecBytes, 429 when the
// queue is full, 503 while draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.accepting.Load() {
		s.met.rejected.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is draining; not accepting jobs"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

	spec, source, tracePath, traceBytes, err := s.readSubmission(r)
	if err != nil {
		s.met.rejected.Add(1)
		if tracePath != "" {
			os.Remove(tracePath)
		}
		var maxErr *http.MaxBytesError
		var specErr *SpecError
		switch {
		case errors.As(err, &maxErr):
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{Error: fmt.Sprintf("body exceeds the %d-byte limit", maxErr.Limit)})
		case errors.Is(err, errSpecTooLarge):
			writeJSON(w, http.StatusRequestEntityTooLarge, apiError{Error: err.Error()})
		case errors.As(err, &specErr):
			writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid spec", Fields: specErr.Fields})
		default:
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		}
		return
	}

	hash, err := report.Hash(ConfigMap(spec, source))
	if err != nil {
		s.met.rejected.Add(1)
		if tracePath != "" {
			os.Remove(tracePath)
		}
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}

	// Submit-time cache check: a hit never touches the queue. The job is
	// registered (so status/result/list work as for any job) and finished
	// succeeded in one stroke, with the stored canonical bytes as its
	// artifact and `cached: true` as provenance. The 202 response already
	// carries the terminal status. Misses are not counted here — the job may
	// still dedup against an in-flight twin; executeBytes classifies it.
	if s.cache != nil {
		if blob, _, ok := s.cache.Get(hash); ok {
			s.mu.Lock()
			if !s.accepting.Load() {
				s.mu.Unlock()
				s.refuseDraining(w, tracePath)
				return
			}
			s.nextID++
			id := fmt.Sprintf("j-%06d", s.nextID)
			j := newJob(s.baseCtx, id, spec, source, hash)
			j.tracePath = tracePath
			j.bytesIngested = traceBytes
			j.markCached()
			s.jobs[id] = j
			s.order = append(s.order, id)
			s.jobWG.Add(1)
			s.mu.Unlock()
			s.met.submitted.Add(1)
			s.met.bytesIn.Add(traceBytes)
			s.journalSubmit(j)
			s.finishJob(j, StateSucceeded, "", blob)
			w.Header().Set("Location", "/v1/jobs/"+id)
			writeJSON(w, http.StatusAccepted, j.Status())
			return
		}
	}

	s.mu.Lock()
	if !s.accepting.Load() {
		s.mu.Unlock()
		s.met.rejected.Add(1)
		if tracePath != "" {
			os.Remove(tracePath)
		}
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is draining; not accepting jobs"})
		return
	}
	s.nextID++
	id := fmt.Sprintf("j-%06d", s.nextID)
	j := newJob(s.baseCtx, id, spec, source, hash)
	j.tracePath = tracePath
	j.bytesIngested = traceBytes
	// jobWG must be incremented before a worker can possibly finish the job.
	s.jobWG.Add(1)
	// The enqueue stays under s.mu — with a default arm it cannot block — so
	// the job is registered if and only if it was enqueued; there is no unwind
	// window for a concurrent submission to interleave with.
	select {
	case s.queue <- j:
		s.jobs[id] = j
		s.order = append(s.order, id)
		s.mu.Unlock()
		s.met.submitted.Add(1)
		s.met.bytesIn.Add(traceBytes)
		s.journalSubmit(j)
		w.Header().Set("Location", "/v1/jobs/"+id)
		writeJSON(w, http.StatusAccepted, j.Status())
	default:
		s.mu.Unlock()
		s.jobWG.Done()
		if tracePath != "" {
			os.Remove(tracePath)
		}
		s.met.rejected.Add(1)
		writeJSON(w, http.StatusTooManyRequests,
			apiError{Error: fmt.Sprintf("job queue full (%d queued); retry later", cap(s.queue))})
	}
}

// refuseDraining rejects a submission that lost the race with Shutdown,
// cleaning up any spooled trace.
func (s *Server) refuseDraining(w http.ResponseWriter, tracePath string) {
	s.met.rejected.Add(1)
	if tracePath != "" {
		os.Remove(tracePath)
	}
	writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is draining; not accepting jobs"})
}

// maxSpecBytes bounds a JSON job spec, whether it arrives as a plain body or
// as the multipart "spec" part. Traces may be huge; specs never are, and the
// spec is the only submission data read into memory.
const maxSpecBytes = 1 << 20

// errSpecTooLarge marks a spec body over maxSpecBytes; handleSubmit maps it
// to 413.
var errSpecTooLarge = errors.New("spec exceeds the 1 MiB limit")

// readSpecBytes reads at most maxSpecBytes from r, failing explicitly —
// rather than truncating into a confusing JSON decode error — when more is
// present.
func readSpecBytes(r io.Reader) ([]byte, error) {
	b, err := io.ReadAll(io.LimitReader(r, maxSpecBytes+1))
	if err != nil {
		return nil, err
	}
	if len(b) > maxSpecBytes {
		return nil, errSpecTooLarge
	}
	return b, nil
}

// readSubmission decodes the spec (and spools a trace upload, when present)
// from the request body, returning the validated spec and resolved source.
func (s *Server) readSubmission(r *http.Request) (spec JobSpec, source, tracePath string, traceBytes int64, err error) {
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	sawSpec := false
	if ct == "multipart/form-data" {
		mr, merr := r.MultipartReader()
		if merr != nil {
			return spec, "", "", 0, fmt.Errorf("bad multipart body: %w", merr)
		}
		var traceSum string
		for {
			part, perr := mr.NextPart()
			if perr == io.EOF {
				break
			}
			if perr != nil {
				return spec, "", tracePath, traceBytes, fmt.Errorf("bad multipart body: %w", perr)
			}
			switch part.FormName() {
			case "spec":
				b, rerr := readSpecBytes(part)
				if rerr != nil {
					return spec, "", tracePath, traceBytes, rerr
				}
				if spec, err = DecodeSpec(b); err != nil {
					return spec, "", tracePath, traceBytes, err
				}
				sawSpec = true
			case "trace":
				if tracePath != "" {
					return spec, "", tracePath, traceBytes, fmt.Errorf("duplicate trace part")
				}
				f, cerr := os.CreateTemp(s.cfg.SpoolDir, "sramd-trace-*")
				if cerr != nil {
					return spec, "", "", 0, cerr
				}
				h := sha256.New()
				n, cpErr := io.Copy(io.MultiWriter(f, h), part)
				f.Close()
				tracePath, traceBytes = f.Name(), n
				if cpErr != nil {
					return spec, "", tracePath, traceBytes, cpErr
				}
				traceSum = hex.EncodeToString(h.Sum(nil))
			default:
				return spec, "", tracePath, traceBytes, fmt.Errorf("unknown multipart part %q (want spec, trace)", part.FormName())
			}
		}
		if !sawSpec {
			return spec, "", tracePath, traceBytes, fmt.Errorf(`multipart body missing the "spec" part`)
		}
		if tracePath != "" {
			source = "trace:sha256:" + traceSum
		}
	} else {
		b, rerr := readSpecBytes(r.Body)
		if rerr != nil {
			return spec, "", "", 0, rerr
		}
		if spec, err = DecodeSpec(b); err != nil {
			return spec, "", "", 0, err
		}
	}
	if err = spec.Validate(tracePath != ""); err != nil {
		return spec, "", tracePath, traceBytes, err
	}
	if source == "" {
		source = spec.Workload
	}
	return spec, source, tracePath, traceBytes, nil
}

// lookup resolves a job ID, writing the 404 itself when absent.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no job %q", r.PathValue("id"))})
	}
	return j
}

// handleList returns every job's status in submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].Status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handleStatus returns one job's status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

// handleResult returns the canonical artifact of a succeeded job, 202 with
// the status while the job is still queued or running, and 409 for failed
// or cancelled jobs.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	st := j.Status()
	switch st.State {
	case StateSucceeded:
		blob := j.Artifact()
		if blob == nil && s.cache != nil {
			// A recovered succeeded job carries no artifact bytes in memory;
			// refetch them from the cache by config hash. 410 (not 500) when
			// the CAS evicted them: the job genuinely succeeded, the bytes
			// are genuinely gone, and resubmitting recomputes them.
			blob, _, _ = s.cache.Get(j.ConfigHash)
		}
		if blob == nil {
			writeJSON(w, http.StatusGone, apiError{
				Error: fmt.Sprintf("job %s succeeded but its artifact is no longer cached; resubmit to recompute", j.ID),
				State: st.State})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(blob)
	case StateFailed, StateCancelled:
		writeJSON(w, http.StatusConflict, apiError{
			Error: fmt.Sprintf("job %s is %s: %s", j.ID, st.State, st.Error), State: st.State})
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

// handleCancel cancels a job: queued jobs become terminal immediately,
// running jobs get their context cancelled (the simulation polls it per
// batch). Idempotent — cancelling a terminal job returns its status.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if j.State() == StateQueued {
		s.finishJob(j, StateCancelled, "cancelled before start", nil)
	} else {
		j.cancel()
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents streams the job's lifecycle as server-sent events: one
// "status" event with the JobStatus JSON immediately, another on every state
// change and progress stride, and a final one at the terminal state, after
// which the stream closes. The contract is documented in DESIGN.md §10.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, apiError{Error: "response writer cannot stream"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// A re-subscribing watcher that lost its connection to a daemon restart
	// learns it is looking at a replayed job before the status stream
	// begins.
	if j.IsRecovered() {
		if b, err := json.Marshal(j.Status()); err == nil {
			fmt.Fprintf(w, "event: recovered\ndata: %s\n\n", b)
			fl.Flush()
		}
	}
	for {
		// Grab the notify channel before snapshotting: an update landing
		// between the two re-closes a channel we already hold, so nothing is
		// missed.
		ch := j.watch()
		st := j.Status()
		b, err := json.Marshal(st)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: status\ndata: %s\n\n", b)
		fl.Flush()
		if st.State.Terminal() {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

// handleHealthz reports liveness plus build identity: version (git SHA) and
// the artifact schema this daemon writes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"version": s.Version,
		"schema":  report.SchemaVersion,
	})
}

// handleReadyz is the routing probe: 200 while accepting, 503 once draining.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.accepting.Load() {
		w.Write([]byte("ready\n"))
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	w.Write([]byte("draining\n"))
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var snap *rescache.Snapshot
	if s.cache != nil {
		v := s.cache.Snapshot()
		snap = &v
	}
	var jstats *journalStats
	if s.journal != nil {
		jstats = &journalStats{Bytes: s.journal.Bytes()}
	}
	s.met.render(w, len(s.queue), cap(s.queue), s.accepting.Load(), snap, jstats)
}
