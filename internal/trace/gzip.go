package trace

import (
	"bufio"
	"compress/gzip"
	"io"
	"strings"
)

// Gzip framing for trace files: traces compress extremely well (delta
// encoding leaves mostly small varints), so the CLIs write .c8tt.gz when
// asked and auto-detect on read.

// gzipMagic is the two-byte gzip header.
var gzipMagic = [2]byte{0x1f, 0x8b}

// IsGzipPath reports whether a file name asks for gzip framing.
func IsGzipPath(path string) bool {
	return strings.HasSuffix(path, ".gz") || strings.HasSuffix(path, ".gzip")
}

// GzWriter wraps a Writer whose output is gzip-compressed. Close flushes
// both layers.
type GzWriter struct {
	*Writer
	gz *gzip.Writer
}

// NewGzWriter returns a trace writer that gzip-compresses its output.
func NewGzWriter(w io.Writer) *GzWriter {
	gz := gzip.NewWriter(w)
	return &GzWriter{Writer: NewWriter(gz), gz: gz}
}

// Close flushes the trace encoding and terminates the gzip stream.
func (g *GzWriter) Close() error {
	if err := g.Flush(); err != nil {
		return err
	}
	return g.gz.Close()
}

// NewAutoReader returns a Reader over r, transparently unwrapping a gzip
// layer if one is present.
func NewAutoReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(2)
	if err == nil && len(head) == 2 && head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, err
		}
		return NewReader(gz), nil
	}
	// Not gzip (or too short to tell): decode as a plain trace; header
	// validation happens on the first Next.
	return NewReader(br), nil
}

// NewAnyReader returns a streaming decoder over r for any trace framing:
// a gzip layer is unwrapped transparently, then the payload is sniffed as
// binary (the C8TT magic) or, failing that, decoded as the text format.
// This is what lets every CLI replay .c8tt, .c8tt.gz, and .txt traces
// through the same batched pipeline.
func NewAnyReader(r io.Reader) (ErrStream, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	if head, err := br.Peek(2); err == nil && len(head) == 2 &&
		head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, err
		}
		br = bufio.NewReaderSize(gz, 1<<16)
	}
	// Binary header validation happens on the first Next; the sniff here
	// only routes between the binary and text decoders.
	if head, err := br.Peek(4); err == nil && len(head) == 4 && [4]byte(head) == magic {
		return NewReader(br), nil
	}
	return NewTextReader(br), nil
}

// WriteAllAuto encodes a stream like WriteAll, gzip-compressing when
// compress is true.
func WriteAllAuto(w io.Writer, s Stream, max int, compress bool) (uint64, error) {
	if !compress {
		return WriteAll(w, s, max)
	}
	gw := NewGzWriter(w)
	n := 0
	for max <= 0 || n < max {
		a, ok := s.Next()
		if !ok {
			break
		}
		if err := gw.Write(a); err != nil {
			return gw.Count(), err
		}
		n++
	}
	return gw.Count(), gw.Close()
}

// ReadAllAuto decodes an entire trace, auto-detecting gzip framing.
func ReadAllAuto(r io.Reader) ([]Access, error) {
	tr, err := NewAutoReader(r)
	if err != nil {
		return nil, err
	}
	var out []Access
	for {
		a, ok := tr.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	return out, tr.Err()
}
