package trace

// Single-decode batch broadcast: one decoder goroutine fills reference-
// counted batch slabs that fan out to any number of consumers. Where a
// Batcher serves exactly one consumer from one reusable buffer, a Broadcast
// serves N consumers from a small fixed pool of slabs — the trace is decoded
// (or generated) exactly once no matter how many controllers or shards
// consume it, and steady-state operation allocates nothing: slabs circulate
// decoder → subscribers → free list, recycled when the last subscriber
// releases them.
//
// Lifecycle of one slab:
//
//  1. the decoder receives it from the free list,
//  2. fills it (native ReadBatch, per-access Next, or — for slice sources —
//     a zero-copy subslice view) and sets its reference count to the
//     subscriber count,
//  3. sends it to every subscriber's channel,
//  4. each subscriber reads the view, then releases it on its next Next (or
//     on Stop); the final release returns the slab to the free list.
//
// The pool depth bounds decoder read-ahead: with k slabs the decoder is at
// most k batches ahead of the slowest subscriber, so memory stays constant
// for arbitrarily long streams.

import (
	"sync/atomic"
)

// DefaultBroadcastSlabs is the slab-pool depth used when callers pass
// slabs <= 0: enough for the decoder to work one batch ahead of consumers
// without ballooning read-ahead memory.
const DefaultBroadcastSlabs = 4

// slab is one pooled batch buffer plus its fan-out reference count.
type slab struct {
	// buf is the owned decode buffer; nil for zero-copy slice views.
	buf []Access
	// view is what subscribers read: buf[:n], or a subslice of a
	// SliceStream's backing array. Read-only for subscribers.
	view []Access
	// refs counts subscribers that have not yet released the slab.
	refs atomic.Int32
}

// Broadcast decodes src once and fans identical batches out to a fixed set
// of subscribers. Construction starts the decoder goroutine; every
// subscriber must either drain its Subscription to the end or Stop it, or
// the slab pool runs dry and the decoder stalls.
type Broadcast struct {
	src   Stream
	fast  BatchSource  // non-nil when src decodes batches natively
	slice *SliceStream // non-nil when src is an in-memory slice: zero-copy
	size  int
	subs  []*Subscription
	free  chan *slab
	quit  chan struct{} // closed when every subscriber has stopped early
	done  chan struct{} // closed when the decoder goroutine exits
	live  atomic.Int32  // subscribers that have not stopped
	err   error         // decode error; published by closing the sub channels
}

// NewBroadcast returns a running Broadcast over src with nsubs subscribers,
// batch length size (<= 0 means DefaultBatchSize), and a pool of slabs
// buffers (<= 0 means DefaultBroadcastSlabs). Like Batcher, slice sources
// are served zero-copy; everything else decodes into the pooled slabs.
func NewBroadcast(src Stream, size, nsubs, slabs int) *Broadcast {
	if size <= 0 {
		size = DefaultBatchSize
	}
	if slabs <= 0 {
		slabs = DefaultBroadcastSlabs
	}
	if nsubs < 1 {
		nsubs = 1
	}
	b := &Broadcast{
		src:  src,
		size: size,
		free: make(chan *slab, slabs),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	switch s := src.(type) {
	case *SliceStream:
		b.slice = s
	case BatchSource:
		b.fast = s
	}
	for i := 0; i < slabs; i++ {
		b.free <- &slab{}
	}
	b.subs = make([]*Subscription, nsubs)
	for i := range b.subs {
		// Channel capacity = pool depth: the decoder can always hand off a
		// filled slab without waiting for the subscriber to be mid-receive.
		b.subs[i] = &Subscription{b: b, ch: make(chan *slab, slabs)}
	}
	b.live.Store(int32(nsubs))
	go b.pump()
	return b
}

// Sub returns subscriber i. Each Subscription is single-consumer: exactly
// one goroutine may call its methods.
func (b *Broadcast) Sub(i int) *Subscription { return b.subs[i] }

// Err surfaces the source's decode error. Valid once every Subscription has
// returned ok == false; nil for a cleanly exhausted source.
func (b *Broadcast) Err() error { return b.err }

// Stop stops every subscription that is still open, releasing its slabs and
// letting the decoder exit early, then waits for the decoder goroutine to
// finish: once Stop returns, the source is no longer being read and may be
// closed. It must only be called once no other goroutine is using the
// subscriptions (after joining the consumers); it is how an aborted run
// avoids decoding the rest of the stream.
func (b *Broadcast) Stop() {
	for _, s := range b.subs {
		s.Stop()
	}
	<-b.done
}

// pump is the decoder loop: fill a free slab, reference it once per
// subscriber, hand it to everyone. Closing the subscriber channels (after
// b.err is set) is what publishes end-of-stream, so subscribers observing
// a closed channel also observe the final err value.
func (b *Broadcast) pump() {
	defer func() {
		for _, s := range b.subs {
			close(s.ch)
		}
		close(b.done)
	}()
	for {
		var sl *slab
		select {
		case <-b.quit:
			return
		case sl = <-b.free:
		}
		if n := b.fill(sl); n == 0 {
			if es, ok := b.src.(ErrStream); ok {
				b.err = es.Err()
			}
			return
		}
		sl.refs.Store(int32(len(b.subs)))
		for _, s := range b.subs {
			// Never deadlocks: a stopped subscription has a drainer emptying
			// its channel, and quit only closes once every subscription has
			// stopped — at which point all channels are drained.
			s.ch <- sl
		}
	}
}

// fill loads the next batch into sl and returns its length (0 = exhausted
// or errored source).
func (b *Broadcast) fill(sl *slab) int {
	if b.slice != nil {
		sl.view = b.slice.nextBatch(b.size)
		return len(sl.view)
	}
	if sl.buf == nil {
		sl.buf = make([]Access, b.size)
	}
	var n int
	if b.fast != nil {
		n = b.fast.ReadBatch(sl.buf)
	} else {
		for n < len(sl.buf) {
			a, ok := b.src.Next()
			if !ok {
				break
			}
			sl.buf[n] = a
			n++
		}
	}
	sl.view = sl.buf[:n]
	return n
}

// release recycles sl once the last subscriber lets go of it.
func (b *Broadcast) release(sl *slab) {
	if sl.refs.Add(-1) == 0 {
		select {
		case b.free <- sl:
		default:
			// Free list full — only possible after an early Stop abandoned
			// refs; dropping the slab is fine, the decoder is exiting.
		}
	}
}

// Subscription is one consumer's view of a Broadcast. The slice returned by
// Next is valid only until the next Next (or Stop) call and must be treated
// as read-only — it is shared with every other subscriber.
type Subscription struct {
	b    *Broadcast
	ch   chan *slab
	cur  *slab
	done bool
}

// Next releases the previous batch and returns the next one. ok is false
// when the stream is exhausted, errored (check the Broadcast's Err), or the
// subscription was stopped.
func (s *Subscription) Next() ([]Access, bool) {
	s.releaseCur()
	if s.done {
		return nil, false
	}
	sl, ok := <-s.ch
	if !ok {
		s.done = true
		return nil, false
	}
	s.cur = sl
	return sl.view, true
}

// Err surfaces the source's decode error; valid once Next has returned
// ok == false.
func (s *Subscription) Err() error { return s.b.err }

// Stop abandons the subscription early: the current batch is released and a
// drainer keeps the channel flowing (releasing every remaining slab) so the
// other subscribers and the decoder never stall. Once every subscription is
// stopped the decoder exits without decoding the rest of the stream. Stop is
// idempotent; a cleanly exhausted subscription ignores it. Like Next, it may
// only be called by the consuming goroutine (or after that goroutine has
// been joined).
func (s *Subscription) Stop() {
	if s.done {
		return
	}
	s.done = true
	s.releaseCur()
	go func() {
		for sl := range s.ch {
			s.b.release(sl)
		}
	}()
	if s.b.live.Add(-1) == 0 {
		close(s.b.quit)
	}
}

func (s *Subscription) releaseCur() {
	if s.cur != nil {
		sl := s.cur
		s.cur = nil
		s.b.release(sl)
	}
}
