package trace

import "testing"

func TestFilterFoldsGaps(t *testing.T) {
	in := []Access{
		{Kind: Read, Gap: 2, Size: 4},  // dropped: 3 instructions
		{Kind: Write, Gap: 1, Size: 4}, // kept: gap becomes 1 + 3
		{Kind: Write, Gap: 0, Size: 4}, // kept
		{Kind: Read, Gap: 5, Size: 4},  // dropped: 6 instructions
	}
	got := Collect(OnlyWrites(FromSlice(in)), 0)
	if len(got) != 2 {
		t.Fatalf("kept %d accesses", len(got))
	}
	if got[0].Gap != 4 {
		t.Errorf("first gap = %d, want 4 (1 + dropped 3)", got[0].Gap)
	}
	if got[1].Gap != 0 {
		t.Errorf("second gap = %d", got[1].Gap)
	}
	// Instruction totals are preserved minus the dropped tail.
	var st Stats
	for _, a := range got {
		st.Observe(a)
	}
	if st.Instructions != 6 { // 3 dropped + kept 2 + trailing drop lost
		t.Errorf("instructions = %d, want 6", st.Instructions)
	}
}

func TestOnlyReads(t *testing.T) {
	in := []Access{{Kind: Read, Size: 4}, {Kind: Write, Size: 4}, {Kind: Read, Size: 4}}
	got := Collect(OnlyReads(FromSlice(in)), 0)
	if len(got) != 2 {
		t.Fatalf("kept %d", len(got))
	}
	for _, a := range got {
		if a.Kind != Read {
			t.Fatal("write leaked through OnlyReads")
		}
	}
}

func TestOffsetRemap(t *testing.T) {
	in := []Access{{Addr: 0x100, Size: 4}, {Addr: 0x200, Size: 4}}
	got := Collect(Offset(FromSlice(in), 0x1000), 0)
	if got[0].Addr != 0x1100 || got[1].Addr != 0x1200 {
		t.Fatalf("remapped addrs %#x %#x", got[0].Addr, got[1].Addr)
	}
}

func TestConcat(t *testing.T) {
	a := FromSlice([]Access{{Addr: 1, Size: 4}})
	b := FromSlice(nil)
	c := FromSlice([]Access{{Addr: 2, Size: 4}, {Addr: 3, Size: 4}})
	got := Collect(NewConcat(a, b, c), 0)
	if len(got) != 3 || got[0].Addr != 1 || got[2].Addr != 3 {
		t.Fatalf("concat = %v", got)
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	a := FromSlice([]Access{{Addr: 1, Size: 4}, {Addr: 3, Size: 4}, {Addr: 5, Size: 4}})
	b := FromSlice([]Access{{Addr: 2, Size: 4}})
	got := Collect(NewInterleave(a, b), 0)
	want := []uint64{1, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("interleave yielded %d", len(got))
	}
	for i, w := range want {
		if got[i].Addr != w {
			t.Fatalf("position %d = %d, want %d", i, got[i].Addr, w)
		}
	}
}

func TestInterleaveEmpty(t *testing.T) {
	iv := NewInterleave(FromSlice(nil), FromSlice(nil))
	if _, ok := iv.Next(); ok {
		t.Fatal("empty interleave yielded an access")
	}
}
