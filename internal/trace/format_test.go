package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, in []Access) []Access {
	t.Helper()
	var buf bytes.Buffer
	n, err := WriteAll(&buf, FromSlice(in), 0)
	if err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	if n != uint64(len(in)) {
		t.Fatalf("wrote %d, want %d", n, len(in))
	}
	out, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	return out
}

func TestRoundTripBasic(t *testing.T) {
	in := []Access{
		{Kind: Read, Addr: 0x1000, Size: 4, Data: 42, Gap: 3},
		{Kind: Write, Addr: 0x1004, Size: 4, Data: 0xffffffffffffffff, Gap: 0},
		{Kind: Write, Addr: 0x800, Size: 8, Data: 7, Gap: 1000},
		{Kind: Read, Addr: 0, Size: 1, Data: 0, Gap: 0},
		{Kind: Read, Addr: 1 << 47, Size: 2, Data: 1, Gap: 12},
	}
	out := roundTrip(t, in)
	if len(out) != len(in) {
		t.Fatalf("got %d accesses, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("access %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	out := roundTrip(t, nil)
	if len(out) != 0 {
		t.Fatalf("empty trace decoded to %d accesses", len(out))
	}
}

func TestRoundTripProperty(t *testing.T) {
	sizes := []uint8{1, 2, 4, 8}
	f := func(raw []struct {
		Addr uint64
		Data uint64
		Gap  uint32
		Sel  uint8
	}) bool {
		in := make([]Access, len(raw))
		for i, r := range raw {
			in[i] = Access{
				Kind: Kind(r.Sel & 1),
				Size: sizes[(r.Sel>>1)&3],
				Addr: r.Addr,
				Data: r.Data,
				Gap:  r.Gap,
			}
		}
		var buf bytes.Buffer
		if _, err := WriteAll(&buf, FromSlice(in), 0); err != nil {
			return false
		}
		out, err := ReadAll(&buf)
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriterRejectsBadSize(t *testing.T) {
	tw := NewWriter(&bytes.Buffer{})
	if err := tw.Write(Access{Size: 3}); err == nil {
		t.Fatal("size 3 accepted")
	}
}

func TestReaderBadMagic(t *testing.T) {
	_, err := ReadAll(bytes.NewReader([]byte("NOPE!")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	_, err = ReadAll(bytes.NewReader(nil))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("empty input err = %v, want ErrBadMagic", err)
	}
}

func TestReaderBadVersion(t *testing.T) {
	data := append(append([]byte{}, magic[:]...), 99)
	_, err := ReadAll(bytes.NewReader(data))
	if err == nil {
		t.Fatal("version 99 accepted")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, FromSlice([]Access{{Size: 4, Addr: 0x123456789, Gap: 5, Data: 9}}), 0); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop mid-record (after header+head byte, inside the varints).
	_, err := ReadAll(bytes.NewReader(full[:len(full)-1]))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestFlushOnlyHeaderIsValidEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(&buf)
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestZigzag(t *testing.T) {
	for _, d := range []int64{0, 1, -1, 1 << 40, -(1 << 40), -9e18} {
		if got := unzigzag(zigzag(d)); got != d {
			t.Errorf("zigzag round trip %d -> %d", d, got)
		}
	}
}

func TestSequentialCompression(t *testing.T) {
	// A sequential 4-byte stride stream should compress well below the
	// naive 22-byte record encoding: this guards the delta encoding.
	var in []Access
	for i := 0; i < 1000; i++ {
		in = append(in, Access{Kind: Read, Size: 4, Addr: 0x10000 + uint64(4*i), Gap: 2, Data: 1})
	}
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, FromSlice(in), 0); err != nil {
		t.Fatal(err)
	}
	if perRec := float64(buf.Len()) / 1000; perRec > 6 {
		t.Errorf("sequential encoding uses %.1f bytes/record, want <= 6", perRec)
	}
}

func BenchmarkWriter(b *testing.B) {
	accesses := make([]Access, 4096)
	for i := range accesses {
		accesses[i] = Access{Kind: Kind(i & 1), Size: 4, Addr: uint64(i * 64), Gap: 3, Data: uint64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := WriteAll(&buf, FromSlice(accesses), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReader(b *testing.B) {
	accesses := make([]Access, 4096)
	for i := range accesses {
		accesses[i] = Access{Kind: Kind(i & 1), Size: 4, Addr: uint64(i * 64), Gap: 3, Data: uint64(i)}
	}
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, FromSlice(accesses), 0); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadAll(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
