package trace

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// modRoute routes by address modulo shards — every access to exactly one
// shard, deterministically.
func modRoute(shards int) RouteFunc {
	return func(batch []Access, dst []int32) {
		for i := range batch {
			dst[i] = int32((batch[i].Addr >> 3) % uint64(shards))
		}
	}
}

// drainFeed collects every access a feed delivers, copying out of the
// recycled slabs.
func drainFeed(f *ShardFeed) []Access {
	var got []Access
	for {
		cols, ok := f.Next()
		if !ok {
			return got
		}
		got = cols.Accesses(got)
	}
}

// fanOutRouted drains every shard concurrently and returns what each saw.
func fanOutRouted(b *RouteBroadcast, shards int) [][]Access {
	got := make([][]Access, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = drainFeed(b.Shard(i))
		}(i)
	}
	wg.Wait()
	return got
}

// wantPartition checks that each shard saw exactly its own subsequence of
// want, in stream order.
func wantPartition(t *testing.T, got [][]Access, want []Access, route func(Access) int) {
	t.Helper()
	idx := make([]int, len(got))
	for _, a := range want {
		k := route(a)
		if idx[k] >= len(got[k]) {
			t.Fatalf("shard %d: ran out at access %v (saw %d)", k, a, len(got[k]))
		}
		if got[k][idx[k]] != a {
			t.Fatalf("shard %d: access %d = %v, want %v", k, idx[k], got[k][idx[k]], a)
		}
		idx[k]++
	}
	for k := range got {
		if idx[k] != len(got[k]) {
			t.Fatalf("shard %d: saw %d accesses, want %d", k, len(got[k]), idx[k])
		}
	}
}

func TestRouteBroadcastPartitionSlice(t *testing.T) {
	want := broadcastAccesses(10_000)
	const shards = 4
	b := NewRouteBroadcast(FromSlice(want), modRoute(shards), 256, shards, 0)
	got := fanOutRouted(b, shards)
	wantPartition(t, got, want, func(a Access) int { return int((a.Addr >> 3) % shards) })
	if err := b.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil", err)
	}
}

func TestRouteBroadcastPartitionBatchSource(t *testing.T) {
	want := broadcastAccesses(5_000)
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, FromSlice(want), 0); err != nil {
		t.Fatal(err)
	}
	const shards = 3
	b := NewRouteBroadcast(NewReader(bytes.NewReader(buf.Bytes())), modRoute(shards), 128, shards, 2)
	got := fanOutRouted(b, shards)
	wantPartition(t, got, want, func(a Access) int { return int((a.Addr >> 3) % shards) })
	if err := b.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil", err)
	}
}

func TestRouteBroadcastPartitionGenericStream(t *testing.T) {
	want := broadcastAccesses(3_000)
	const shards = 2
	// Limit wraps the slice in a plain Stream, forcing the per-access Next
	// fill path.
	b := NewRouteBroadcast(NewLimit(FromSlice(want), uint64(len(want))), modRoute(shards), 100, shards, 0)
	got := fanOutRouted(b, shards)
	wantPartition(t, got, want, func(a Access) int { return int((a.Addr >> 3) % shards) })
}

func TestRouteBroadcastShardOwnsNothing(t *testing.T) {
	// Route-filtered fan-out where one shard owns zero of the address space:
	// its feed must close promptly with zero deliveries while the others
	// split the whole stream.
	want := broadcastAccesses(4_000)
	const shards = 3
	route := func(batch []Access, dst []int32) {
		for i := range batch {
			dst[i] = int32((batch[i].Addr >> 3) % 2) // shard 2 never named
		}
	}
	b := NewRouteBroadcast(FromSlice(want), route, 128, shards, 0)
	got := fanOutRouted(b, shards)
	if len(got[2]) != 0 {
		t.Fatalf("unrouted shard saw %d accesses, want 0", len(got[2]))
	}
	if len(got[0])+len(got[1]) != len(want) {
		t.Fatalf("shards 0+1 saw %d accesses, want %d", len(got[0])+len(got[1]), len(want))
	}
	wantPartition(t, got[:2], want, func(a Access) int { return int((a.Addr >> 3) % 2) })
}

func TestRouteBroadcastRouteErrorAborts(t *testing.T) {
	want := broadcastAccesses(1_000)
	const refuseAt = 437
	route := func(batch []Access, dst []int32) {
		for i := range batch {
			if batch[i].Addr == want[refuseAt].Addr {
				dst[i] = -1
				continue
			}
			dst[i] = 0
		}
	}
	b := NewRouteBroadcast(FromSlice(want), route, 64, 2, 0)
	got := fanOutRouted(b, 2)
	var re *RouteError
	if err := b.Err(); !errors.As(err, &re) {
		t.Fatalf("Err() = %v, want *RouteError", err)
	}
	if re.Access != want[refuseAt] {
		t.Fatalf("RouteError.Access = %v, want %v", re.Access, want[refuseAt])
	}
	// Everything routed before the refusal is still delivered (flushed), and
	// nothing at or past it.
	if len(got[0]) != refuseAt {
		t.Fatalf("shard 0 saw %d accesses, want the %d before the refusal", len(got[0]), refuseAt)
	}
}

func TestRouteBroadcastDecodeError(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, FromSlice(broadcastAccesses(2_000)), 0); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	const shards = 2
	b := NewRouteBroadcast(NewReader(bytes.NewReader(full[:len(full)-1])), modRoute(shards), 64, shards, 0)
	got := fanOutRouted(b, shards)
	if err := b.Err(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("Err() = %v, want ErrUnexpectedEOF", err)
	}
	for i := 0; i < shards; i++ {
		if err := b.Shard(i).Err(); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("shard %d Err() = %v, want ErrUnexpectedEOF", i, err)
		}
	}
	// The decoded prefix is still partitioned correctly.
	if len(got[0])+len(got[1]) == 0 {
		t.Fatal("no prefix delivered before the decode error")
	}
}

func TestRouteBroadcastEarlyStopOneShard(t *testing.T) {
	// One shard abandons mid-stream while holding a slab; the others must
	// still see their full partition and the decoder must not stall.
	want := broadcastAccesses(20_000)
	const shards = 3
	b := NewRouteBroadcast(FromSlice(want), modRoute(shards), 128, shards, 0)
	got := make([][]Access, shards)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f := b.Shard(0)
		if cols, ok := f.Next(); !ok || cols.Len() == 0 {
			t.Error("shard 0: no first slab")
		}
		// Stop while cur is still held — mid-batch abandonment.
		f.Stop()
		f.Stop() // idempotent
	}()
	for i := 1; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = drainFeed(b.Shard(i))
		}(i)
	}
	wg.Wait()
	for i := 1; i < shards; i++ {
		var mine []Access
		for _, a := range want {
			if int((a.Addr>>3)%shards) == i {
				mine = append(mine, a)
			}
		}
		if len(got[i]) != len(mine) {
			t.Fatalf("shard %d saw %d accesses, want %d", i, len(got[i]), len(mine))
		}
		for j := range mine {
			if got[i][j] != mine[j] {
				t.Fatalf("shard %d access %d = %v, want %v", i, j, got[i][j], mine[j])
			}
		}
	}
}

func TestRouteBroadcastAllStopEarly(t *testing.T) {
	src := FromSlice(broadcastAccesses(1 << 20))
	const shards = 2
	b := NewRouteBroadcast(src, modRoute(shards), 64, shards, 0)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := b.Shard(i)
			f.Next()
			f.Stop()
		}(i)
	}
	wg.Wait()
	b.Stop()
	if src.pos == len(src.accesses) {
		t.Error("decoder drained the whole stream despite every shard stopping")
	}
}

func TestRouteBroadcastBackpressure(t *testing.T) {
	// The per-shard slab ring bounds decoder read-ahead: a slow consumer
	// holds the decoder up once the free list runs dry. The source counts
	// what has been decoded, and the invariant below must hold at every
	// instant, so sampling it cannot flake.
	const (
		size  = 64
		slabs = 2
		total = 100_000
	)
	var produced atomic.Int64
	src := Func(func() (Access, bool) {
		n := produced.Add(1)
		if n > total {
			return Access{}, false
		}
		return Access{Addr: uint64(n), Size: 1}, true
	})
	b := NewRouteBroadcast(src, modRoute(1), size, 1, slabs)
	f := b.Shard(0)
	consumed := 0
	// In flight at most: the decoder's AoS batch being routed, the open fill
	// slab, every slab in the ring, and the consumer's current slab.
	const bound = (slabs + 3) * size
	for i := 0; i < 20; i++ {
		cols, ok := f.Next()
		if !ok {
			t.Fatal("stream ran dry during backpressure check")
		}
		consumed += cols.Len()
		time.Sleep(time.Millisecond) // let the decoder run as far as it can
		if p := int(produced.Load()); p > consumed+bound {
			t.Fatalf("decoder %d accesses ahead of consumer (produced %d, consumed %d), want <= %d",
				p-consumed, p, consumed, bound)
		}
	}
	f.Stop()
	b.Stop()
}

func TestRouteBroadcastSteadyStateNoAlloc(t *testing.T) {
	// Slabs circulate decoder → consumer → free list and the routing pass
	// reuses its dst buffer: once the rings are primed, consuming the rest
	// of the stream allocates nothing on any goroutine.
	want := broadcastAccesses(512 * 200)
	b := NewRouteBroadcast(FromSlice(want), modRoute(2), 512, 2, 0)
	f0, f1 := b.Shard(0), b.Shard(1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		drainFeed(f1)
	}()
	if _, ok := f0.Next(); !ok {
		t.Fatal("no first slab")
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, ok := f0.Next(); !ok {
			t.Fatal("stream ran dry mid-measurement")
		}
	}); n > 0 {
		t.Errorf("steady-state Next allocates %.1f times per slab, want 0", n)
	}
	f0.Stop()
	wg.Wait()
	b.Stop()
}

func TestRouteBroadcastAdaptiveSlabSizing(t *testing.T) {
	const size, shards = 1024, 8
	want := broadcastAccesses(size * 40)
	evenSplit := adaptSlabCap(2*size/shards, size)

	// Balanced mod routing: observed ownership stays under the even-split
	// headroom, so every delivered slab keeps the initial capacity — an
	// 8-shard fan-out holds size/4 per slab instead of a full batch each.
	b := NewRouteBroadcast(FromSlice(want), modRoute(shards), size, shards, 0)
	caps := make([]map[int]bool, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		caps[i] = map[int]bool{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := b.Shard(i)
			for {
				cols, ok := f.Next()
				if !ok {
					return
				}
				caps[i][cols.Cap()] = true
			}
		}(i)
	}
	wg.Wait()
	b.Stop()
	for i := 0; i < shards; i++ {
		for c := range caps[i] {
			if c != evenSplit {
				t.Fatalf("balanced shard %d delivered a %d-cap slab, want the even-split %d", i, c, evenSplit)
			}
		}
		if got := b.Shard(i).slabCap; got != evenSplit {
			t.Fatalf("balanced shard %d target grew to %d, want %d", i, got, evenSplit)
		}
	}

	// Fully skewed routing: the owning shard's slabs must grow to the batch
	// length while the starved shards keep the initial capacity.
	skew := func(batch []Access, dst []int32) {
		for i := range batch {
			dst[i] = 0
		}
	}
	b2 := NewRouteBroadcast(FromSlice(want), skew, size, shards, 0)
	got := fanOutRouted(b2, shards)
	b2.Stop()
	if len(got[0]) != len(want) {
		t.Fatalf("skewed shard 0 saw %d accesses, want %d", len(got[0]), len(want))
	}
	if got := b2.Shard(0).slabCap; got != size {
		t.Fatalf("skewed shard 0 target = %d, want the batch length %d", got, size)
	}
	for i := 1; i < shards; i++ {
		if got := b2.Shard(i).slabCap; got != evenSplit {
			t.Fatalf("starved shard %d target = %d, want the initial %d", i, got, evenSplit)
		}
	}
}

func TestRouteBroadcastEmptySource(t *testing.T) {
	b := NewRouteBroadcast(FromSlice(nil), modRoute(2), 64, 2, 0)
	for i, got := range fanOutRouted(b, 2) {
		if len(got) != 0 {
			t.Fatalf("shard %d saw %d accesses from empty source", i, len(got))
		}
	}
	if err := b.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil", err)
	}
}
