package trace

// Batched streaming: the hot simulation path pulls accesses in fixed-size
// batches instead of one interface call per access. A Batcher owns exactly
// one reusable batch buffer, so draining a trace of any length costs a
// constant amount of memory and no per-access allocation; sources that can
// decode natively into a slice (the binary Reader) skip the per-access
// Stream.Next dispatch entirely.

// DefaultBatchSize is the batch length used when callers pass size <= 0.
// 4096 accesses (96 KiB of batch buffer) amortizes interface dispatch and
// context polls without hurting cache locality.
const DefaultBatchSize = 4096

// BatchSource is implemented by streams that can fill a caller-provided
// slice natively, without a Stream.Next call per access. ReadBatch returns
// how many accesses it decoded into dst; a short (possibly zero) count means
// the source is exhausted or failed — check Err via ErrStream.
type BatchSource interface {
	ReadBatch(dst []Access) int
}

// ErrStream is a Stream whose source can fail mid-decode (file corruption,
// truncation). A cleanly exhausted stream leaves Err nil.
type ErrStream interface {
	Stream
	Err() error
}

// decoder is the single-buffer decode core shared by Batcher and the
// broadcast fan-outs: one batch of the source at a time, through the
// fastest path the source supports — a zero-copy subslice view for
// in-memory slices, a native ReadBatch for binary readers, a per-access
// Next loop for everything else.
type decoder struct {
	src   Stream
	fast  BatchSource  // non-nil when src decodes batches natively
	slice *SliceStream // non-nil when src is an in-memory slice: zero-copy
	size  int
	buf   []Access // allocated lazily; slice sources never need it
}

// newDecoder classifies src and fixes the batch length (size <= 0 means
// DefaultBatchSize).
func newDecoder(src Stream, size int) decoder {
	if size <= 0 {
		size = DefaultBatchSize
	}
	d := decoder{src: src, size: size}
	switch s := src.(type) {
	case *SliceStream:
		d.slice = s
	case BatchSource:
		d.fast = s
	}
	return d
}

// next returns the next batch: a subslice of the backing array for slice
// sources, otherwise the refilled internal buffer. An empty batch means the
// source is exhausted or errored (check err). The returned slice is valid
// only until the next call.
func (d *decoder) next() []Access {
	if d.slice != nil {
		return d.slice.nextBatch(d.size)
	}
	if d.buf == nil {
		d.buf = make([]Access, d.size)
	}
	var n int
	if d.fast != nil {
		n = d.fast.ReadBatch(d.buf)
	} else {
		for n < len(d.buf) {
			a, ok := d.src.Next()
			if !ok {
				break
			}
			d.buf[n] = a
			n++
		}
	}
	return d.buf[:n]
}

// err surfaces the source's decode error, when the source tracks one.
func (d *decoder) err() error {
	if es, ok := d.src.(ErrStream); ok {
		return es.Err()
	}
	return nil
}

// Batcher adapts any Stream into a sequence of reusable fixed-size batches.
// The slice returned by Next aliases the Batcher's single internal buffer:
// it is valid only until the next Next call and must not be retained or
// mutated. Batchers are single-use and not safe for concurrent callers.
type Batcher struct {
	dec   decoder
	count uint64
}

// NewBatcher returns a Batcher over src with the given batch size (<= 0
// means DefaultBatchSize). For slice sources the batches are subslices of
// the backing array (no copy at all); for everything else a single batch
// buffer is allocated on first use.
func NewBatcher(src Stream, size int) *Batcher {
	return &Batcher{dec: newDecoder(src, size)}
}

// Next fills the internal buffer from the source and returns the filled
// prefix. ok is false when the source is exhausted (or errored — check Err);
// a final short batch is returned with ok true.
func (b *Batcher) Next() ([]Access, bool) {
	batch := b.dec.next()
	if len(batch) == 0 {
		return nil, false
	}
	b.count += uint64(len(batch))
	return batch, true
}

// Count returns the total number of accesses yielded so far.
func (b *Batcher) Count() uint64 { return b.count }

// Err surfaces the source's decode error, when the source tracks one. A
// Batcher over an error-free source (a generator, a slice) always returns
// nil.
func (b *Batcher) Err() error { return b.dec.err() }

// Drain pulls every remaining batch through fn. It stops on the first fn
// error, and otherwise returns the source's decode error (nil for a clean
// end of stream).
func (b *Batcher) Drain(fn func(batch []Access) error) error {
	for {
		batch, ok := b.Next()
		if !ok {
			return b.Err()
		}
		if err := fn(batch); err != nil {
			return err
		}
	}
}
