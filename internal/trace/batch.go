package trace

// Batched streaming: the hot simulation path pulls accesses in fixed-size
// batches instead of one interface call per access. A Batcher owns exactly
// one reusable batch buffer, so draining a trace of any length costs a
// constant amount of memory and no per-access allocation; sources that can
// decode natively into a slice (the binary Reader) skip the per-access
// Stream.Next dispatch entirely.

// DefaultBatchSize is the batch length used when callers pass size <= 0.
// 4096 accesses (96 KiB of batch buffer) amortizes interface dispatch and
// context polls without hurting cache locality.
const DefaultBatchSize = 4096

// BatchSource is implemented by streams that can fill a caller-provided
// slice natively, without a Stream.Next call per access. ReadBatch returns
// how many accesses it decoded into dst; a short (possibly zero) count means
// the source is exhausted or failed — check Err via ErrStream.
type BatchSource interface {
	ReadBatch(dst []Access) int
}

// ErrStream is a Stream whose source can fail mid-decode (file corruption,
// truncation). A cleanly exhausted stream leaves Err nil.
type ErrStream interface {
	Stream
	Err() error
}

// Batcher adapts any Stream into a sequence of reusable fixed-size batches.
// The slice returned by Next aliases the Batcher's single internal buffer:
// it is valid only until the next Next call and must not be retained or
// mutated. Batchers are single-use and not safe for concurrent callers.
type Batcher struct {
	src   Stream
	fast  BatchSource  // non-nil when src decodes batches natively
	slice *SliceStream // non-nil when src is an in-memory slice: zero-copy
	size  int
	buf   []Access // allocated lazily; slice sources never need it
	count uint64
}

// NewBatcher returns a Batcher over src with the given batch size (<= 0
// means DefaultBatchSize). For slice sources the batches are subslices of
// the backing array (no copy at all); for everything else a single batch
// buffer is allocated on first use.
func NewBatcher(src Stream, size int) *Batcher {
	if size <= 0 {
		size = DefaultBatchSize
	}
	b := &Batcher{src: src, size: size}
	switch s := src.(type) {
	case *SliceStream:
		b.slice = s
	case BatchSource:
		b.fast = s
	}
	return b
}

// Next fills the internal buffer from the source and returns the filled
// prefix. ok is false when the source is exhausted (or errored — check Err);
// a final short batch is returned with ok true.
func (b *Batcher) Next() ([]Access, bool) {
	if b.slice != nil {
		batch := b.slice.nextBatch(b.size)
		if len(batch) == 0 {
			return nil, false
		}
		b.count += uint64(len(batch))
		return batch, true
	}
	if b.buf == nil {
		b.buf = make([]Access, b.size)
	}
	var n int
	if b.fast != nil {
		n = b.fast.ReadBatch(b.buf)
	} else {
		for n < len(b.buf) {
			a, ok := b.src.Next()
			if !ok {
				break
			}
			b.buf[n] = a
			n++
		}
	}
	if n == 0 {
		return nil, false
	}
	b.count += uint64(n)
	return b.buf[:n], true
}

// Count returns the total number of accesses yielded so far.
func (b *Batcher) Count() uint64 { return b.count }

// Err surfaces the source's decode error, when the source tracks one. A
// Batcher over an error-free source (a generator, a slice) always returns
// nil.
func (b *Batcher) Err() error {
	if es, ok := b.src.(ErrStream); ok {
		return es.Err()
	}
	return nil
}

// Drain pulls every remaining batch through fn. It stops on the first fn
// error, and otherwise returns the source's decode error (nil for a clean
// end of stream).
func (b *Batcher) Drain(fn func(batch []Access) error) error {
	for {
		batch, ok := b.Next()
		if !ok {
			return b.Err()
		}
		if err := fn(batch); err != nil {
			return err
		}
	}
}
