package trace

// Structure-of-arrays batch slabs. A Cols holds one batch of accesses as
// five parallel column arrays instead of a []Access: the set-shard router
// reads only the address column, scans stay contiguous per field, and a
// pre-routed slab hands a consumer exactly its own accesses with no
// per-access ownership branch. Cols is the payload the RouteBroadcast rings
// circulate; like the AoS slabs of Broadcast, a fixed population of them is
// recycled decoder → consumer → free list, so steady state allocates
// nothing.

// Cols is one batch of accesses in structure-of-arrays form. The five
// columns are parallel: index i of each describes the same access. All
// columns always have equal length. Consumers must treat a delivered Cols
// as read-only — it is recycled into the producer's free list on release.
type Cols struct {
	// Addr is the byte-address column — all the router ever scans.
	Addr []uint64
	// Data is the value column (read or written, up to 8 bytes).
	Data []uint64
	// Gap is the preceding non-memory-instruction count column.
	Gap []uint32
	// Size is the access-width column (1, 2, 4, or 8 bytes).
	Size []uint8
	// Op is the read/write column.
	Op []Kind
}

// NewCols returns an empty Cols with every column pre-sized to hold
// capacity accesses, so Append never reallocates until the slab is full.
func NewCols(capacity int) *Cols {
	return &Cols{
		Addr: make([]uint64, 0, capacity),
		Data: make([]uint64, 0, capacity),
		Gap:  make([]uint32, 0, capacity),
		Size: make([]uint8, 0, capacity),
		Op:   make([]Kind, 0, capacity),
	}
}

// Len returns the number of accesses held.
func (c *Cols) Len() int { return len(c.Addr) }

// Cap returns the slab capacity in accesses.
func (c *Cols) Cap() int { return cap(c.Addr) }

// Full reports whether Append would grow the columns past their
// pre-sized capacity.
func (c *Cols) Full() bool { return len(c.Addr) == cap(c.Addr) }

// Reset empties the slab, keeping the column capacity for reuse.
func (c *Cols) Reset() {
	c.Addr = c.Addr[:0]
	c.Data = c.Data[:0]
	c.Gap = c.Gap[:0]
	c.Size = c.Size[:0]
	c.Op = c.Op[:0]
}

// Append transposes one access onto the columns.
func (c *Cols) Append(a Access) {
	c.Addr = append(c.Addr, a.Addr)
	c.Data = append(c.Data, a.Data)
	c.Gap = append(c.Gap, a.Gap)
	c.Size = append(c.Size, a.Size)
	c.Op = append(c.Op, a.Kind)
}

// AppendBatch transposes a whole AoS batch onto the columns.
func (c *Cols) AppendBatch(batch []Access) {
	for i := range batch {
		c.Append(batch[i])
	}
}

// At reassembles access i from the columns.
func (c *Cols) At(i int) Access {
	return Access{
		Addr: c.Addr[i],
		Data: c.Data[i],
		Gap:  c.Gap[i],
		Size: c.Size[i],
		Kind: c.Op[i],
	}
}

// Accesses appends every held access to dst (allocating only when dst lacks
// capacity) and returns it — the AoS escape hatch for tests and tools.
func (c *Cols) Accesses(dst []Access) []Access {
	for i := 0; i < c.Len(); i++ {
		dst = append(dst, c.At(i))
	}
	return dst
}
