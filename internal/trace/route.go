package trace

// Route-once fan-out: where a Broadcast replicates every batch to every
// subscriber (each consumer filtering for itself), a RouteBroadcast decodes
// the source once and *partitions* it — a single routing pass over each
// decoded batch assigns every access to exactly one shard and transposes it
// onto that shard's structure-of-arrays slab (Cols). Consumers therefore
// receive only their own accesses, already contiguous, with no per-access
// ownership branch; total scan work across K shards is one pass over the
// stream instead of K.
//
// Each shard owns a small ring of slabs: a delivery channel ("ring") and a
// free list, with the slab population fixed at construction. The decoder
// appends to a shard's open fill slab and publishes it only when full (or at
// end of stream), so the handshake cost is one channel operation per *slab*,
// amortized to one per batch across all shards — against the plain
// Broadcast's one send per batch per subscriber plus a refcounted release
// per batch per subscriber. Because every slab is owned by exactly one
// consumer, no reference counting is needed at all.
//
// Lifecycle of one slab (per shard):
//
//  1. the decoder takes it from the shard's free list and resets it,
//  2. the routing pass appends that shard's accesses until the slab fills,
//  3. the full slab is sent on the shard's ring,
//  4. the consumer reads it and releases it back to the free list on its
//     next Next (or on Stop).
//
// The free list is the backpressure: a shard that stops consuming holds the
// decoder up after at most ring-depth slabs of read-ahead, so memory stays
// constant for arbitrarily long streams.
//
// Slab capacity is adaptive (ROADMAP 3c). A shard's slabs start at an
// even-split guess — twice batch-length/shards, power-of-two rounded — and
// the decoder tracks each shard's peak per-batch ownership as it routes.
// When a recycled slab's capacity has fallen behind the observed peak it is
// replaced with a larger one (power-of-two steps, capped at the batch
// length) on its way out of the free list. Balanced routings therefore keep
// every shard near batch/shards of slab memory instead of a full batch per
// slab, a skewed shard grows to exactly what it owns, and because growth is
// monotone and happens only while the peak is still rising, steady state
// recycles without allocating.

import (
	"fmt"
	"sync/atomic"
)

// DefaultRouteSlabs is the per-shard ring depth used when callers pass
// slabs <= 0.
const DefaultRouteSlabs = 4

// minSlabCap floors adaptive slab capacity: below this, per-slab channel
// handshakes dominate and the memory saved is noise.
const minSlabCap = 64

// adaptSlabCap returns the adaptive slab capacity for an observed (or
// guessed) per-batch ownership peak: the smallest power-of-two multiple of
// minSlabCap that covers peak, never above the batch length (a slab can
// always hold everything one shard owns of one batch).
func adaptSlabCap(peak, size int) int {
	c := minSlabCap
	for c < peak && c < size {
		c <<= 1
	}
	if c > size {
		c = size
	}
	return c
}

// RouteFunc assigns each access of a decoded batch to a shard: called once
// per batch, it must fill dst[i] with the shard index owning batch[i], for
// every i. A negative value aborts the stream at that access with a
// *RouteError — how the set-shard router rejects accesses whose effects
// would span shards (block-straddlers). Batch-at-a-time routing keeps the
// indirect call off the per-access path and lets implementations scan the
// batch with whatever locality they like.
type RouteFunc func(batch []Access, dst []int32)

// RouteError reports that the RouteFunc refused an access (returned a
// negative shard). Accesses routed before it are still delivered.
type RouteError struct {
	// Access is the refused access.
	Access Access
}

// Error implements error.
func (e *RouteError) Error() string {
	return fmt.Sprintf("trace: access %v cannot be routed to a shard", e.Access)
}

// RouteBroadcast decodes src once and partitions it across per-shard slab
// rings. Construction starts the decoder goroutine; every shard's feed must
// either be drained to the end or stopped, or the free lists run dry and
// the decoder stalls.
type RouteBroadcast struct {
	dec   decoder
	route RouteFunc
	dst   []int32 // per-batch shard assignment, reused across batches
	owned []int   // per-shard ownership count of the current batch, reused
	feeds []*ShardFeed
	quit  chan struct{} // closed when every feed has stopped early
	done  chan struct{} // closed when the decoder goroutine exits
	live  atomic.Int32  // feeds that have not stopped
	err   error         // decode or route error; published by closing rings
}

// NewRouteBroadcast returns a running RouteBroadcast over src with shards
// feeds, batch length size (<= 0 means DefaultBatchSize), and slabs ring
// slots per shard (<= 0 means DefaultRouteSlabs). Slabs start at an
// even-split capacity guess and grow toward each shard's observed peak
// per-batch ownership as the decoder routes; a slab smaller than what a
// shard owns of one batch just publishes mid-batch, so no fill can ever
// overflow.
func NewRouteBroadcast(src Stream, route RouteFunc, size, shards, slabs int) *RouteBroadcast {
	if slabs <= 0 {
		slabs = DefaultRouteSlabs
	}
	if shards < 1 {
		shards = 1
	}
	b := &RouteBroadcast{
		dec:   newDecoder(src, size),
		route: route,
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	b.dst = make([]int32, b.dec.size)
	b.owned = make([]int, shards)
	b.feeds = make([]*ShardFeed, shards)
	// Twice the even split: routing is rarely perfectly balanced, and the
	// headroom keeps ordinary variance from triggering growth at all.
	initCap := adaptSlabCap(2*b.dec.size/shards, b.dec.size)
	for i := range b.feeds {
		f := &ShardFeed{
			b:       b,
			ring:    make(chan *Cols, slabs),
			free:    make(chan *Cols, slabs),
			slabCap: initCap,
		}
		for j := 0; j < slabs; j++ {
			f.free <- NewCols(initCap)
		}
		b.feeds[i] = f
	}
	b.live.Store(int32(shards))
	go b.pump()
	return b
}

// Shard returns shard i's feed. Each ShardFeed is single-consumer: exactly
// one goroutine may call its methods.
func (b *RouteBroadcast) Shard(i int) *ShardFeed { return b.feeds[i] }

// Err surfaces the source's decode error, or the *RouteError that aborted
// routing. Valid once every feed has returned ok == false; nil for a
// cleanly exhausted source.
func (b *RouteBroadcast) Err() error { return b.err }

// Stop stops every feed that is still open and waits for the decoder
// goroutine to finish: once Stop returns, the source is no longer being
// read and may be closed. It must only be called once no other goroutine is
// using the feeds (after joining the consumers).
func (b *RouteBroadcast) Stop() {
	for _, f := range b.feeds {
		f.Stop()
	}
	<-b.done
}

// pump is the decode-and-route loop. Closing the rings (after b.err is set)
// publishes end-of-stream, so consumers observing a closed ring also
// observe the final err value.
func (b *RouteBroadcast) pump() {
	defer func() {
		for _, f := range b.feeds {
			close(f.ring)
		}
		close(b.done)
	}()
	for {
		batch := b.dec.next()
		if len(batch) == 0 {
			b.flush()
			b.err = b.dec.err()
			return
		}
		dst := b.dst[:len(batch)]
		b.route(batch, dst)
		// Count ownership before appending so even this batch's slab
		// acquisitions see the updated density target.
		for i := range b.owned {
			b.owned[i] = 0
		}
		for _, k := range dst {
			if k >= 0 && int(k) < len(b.owned) {
				b.owned[k]++
			}
		}
		for i, f := range b.feeds {
			if b.owned[i] > f.peak {
				f.peak = b.owned[i]
				if c := adaptSlabCap(f.peak, b.dec.size); c > f.slabCap {
					f.slabCap = c
				}
			}
		}
		for i := range dst {
			k := dst[i]
			if k < 0 || int(k) >= len(b.feeds) {
				// The router refused this access. Deliver what was routed
				// before it, then abort the stream.
				b.flush()
				b.err = &RouteError{Access: batch[i]}
				return
			}
			f := b.feeds[k]
			if f.fill == nil && !f.acquire() {
				return // every consumer stopped; nobody wants the rest
			}
			f.fill.Append(batch[i])
			if f.fill.Full() {
				f.publish()
			}
		}
	}
}

// flush publishes every shard's partial fill slab.
func (b *RouteBroadcast) flush() {
	for _, f := range b.feeds {
		if f.fill != nil && f.fill.Len() > 0 {
			f.publish()
		}
	}
}

// ShardFeed is one shard's consumer side of a RouteBroadcast: a ring of
// pre-routed slabs holding only that shard's accesses. The *Cols returned
// by Next is valid until the next Next (or Stop) call and must be treated
// as read-only — it is recycled through the shard's free list.
type ShardFeed struct {
	b    *RouteBroadcast
	ring chan *Cols
	free chan *Cols
	fill *Cols // decoder-side open slab; consumers never touch it
	cur  *Cols // consumer-side slab being read
	done bool

	// Decoder-side adaptive sizing state: the peak per-batch ownership seen
	// so far and the slab capacity it implies. Slabs behind the target are
	// replaced as they leave the free list.
	peak    int
	slabCap int
}

// acquire blocks until a free slab is available (returning true) or the
// broadcast is quitting because every consumer stopped (false). Called only
// by the decoder. It cannot deadlock: a stopped feed has a drainer
// recycling its ring into its free list, and quit closes only once every
// feed has stopped.
func (f *ShardFeed) acquire() bool {
	select {
	case s := <-f.free:
		if s.Cap() < f.slabCap {
			// The shard's observed ownership outgrew this slab; swap in a
			// right-sized one. The population count is unchanged, so the
			// ring/free-list capacity invariants hold.
			s = NewCols(f.slabCap)
		} else {
			s.Reset()
		}
		f.fill = s
		return true
	case <-f.b.quit:
		return false
	}
}

// publish hands the open fill slab to the consumer. It never blocks: the
// ring's capacity equals the shard's total slab population.
func (f *ShardFeed) publish() {
	f.ring <- f.fill
	f.fill = nil
}

// Next releases the previous slab and returns the next one. ok is false
// when the stream is exhausted, errored (check the RouteBroadcast's Err),
// or the feed was stopped.
func (f *ShardFeed) Next() (*Cols, bool) {
	f.releaseCur()
	if f.done {
		return nil, false
	}
	sl, ok := <-f.ring
	if !ok {
		f.done = true
		return nil, false
	}
	f.cur = sl
	return sl, true
}

// Err surfaces the broadcast's error; valid once Next has returned
// ok == false.
func (f *ShardFeed) Err() error { return f.b.err }

// Stop abandons the feed early: the current slab is released and a drainer
// keeps the ring flowing (recycling every remaining slab) so the decoder
// never stalls on this shard's free list. Once every feed is stopped the
// decoder exits without decoding the rest of the stream. Stop is
// idempotent; a cleanly exhausted feed ignores it. Like Next, it may only
// be called by the consuming goroutine (or after that goroutine has been
// joined).
func (f *ShardFeed) Stop() {
	if f.done {
		return
	}
	f.done = true
	f.releaseCur()
	go func() {
		for sl := range f.ring {
			f.free <- sl
		}
	}()
	if f.b.live.Add(-1) == 0 {
		close(f.b.quit)
	}
}

// releaseCur recycles the consumer's current slab. The send never blocks:
// the free list's capacity equals the shard's total slab population.
func (f *ShardFeed) releaseCur() {
	if f.cur != nil {
		sl := f.cur
		f.cur = nil
		f.free <- sl
	}
}
