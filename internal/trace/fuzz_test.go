package trace

import (
	"bytes"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trace decoder: it must never
// panic, and whatever decodes must re-encode to something that decodes to
// the same accesses (decode/encode/decode fixpoint).
func FuzzReader(f *testing.F) {
	var seed bytes.Buffer
	if _, err := WriteAll(&seed, FromSlice(sampleAccesses(16)), 0); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("C8TT\x01"))
	f.Add([]byte("C8TT\x01\x00\x00\x00\x00"))
	f.Add([]byte{0x1f, 0x8b})
	f.Fuzz(func(t *testing.T, data []byte) {
		first, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return // malformed input is fine; panics are not
		}
		var buf bytes.Buffer
		if _, err := WriteAll(&buf, FromSlice(first), 0); err != nil {
			// Decoded accesses always carry valid sizes; re-encode cannot
			// fail.
			t.Fatalf("re-encode failed: %v", err)
		}
		second, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(first) != len(second) {
			t.Fatalf("fixpoint length %d != %d", len(first), len(second))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("fixpoint mismatch at %d", i)
			}
		}
	})
}
