package trace

import (
	"bytes"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trace decoder: it must never
// panic, and whatever decodes must re-encode to something that decodes to
// the same accesses (decode/encode/decode fixpoint).
func FuzzReader(f *testing.F) {
	var seed bytes.Buffer
	if _, err := WriteAll(&seed, FromSlice(sampleAccesses(16)), 0); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("C8TT\x01"))
	f.Add([]byte("C8TT\x01\x00\x00\x00\x00"))
	f.Add([]byte{0x1f, 0x8b})
	f.Fuzz(func(t *testing.T, data []byte) {
		first, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return // malformed input is fine; panics are not
		}
		var buf bytes.Buffer
		if _, err := WriteAll(&buf, FromSlice(first), 0); err != nil {
			// Decoded accesses always carry valid sizes; re-encode cannot
			// fail.
			t.Fatalf("re-encode failed: %v", err)
		}
		second, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(first) != len(second) {
			t.Fatalf("fixpoint length %d != %d", len(first), len(second))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("fixpoint mismatch at %d", i)
			}
		}
	})
}

// FuzzBatcher feeds arbitrary bytes through the batched decode path: it must
// never panic, and for every batch size it must agree access-for-access (and
// error-for-error) with the one-shot ReadAll over the same bytes — the
// differential guarantee the streaming pipeline rests on.
func FuzzBatcher(f *testing.F) {
	var seed bytes.Buffer
	if _, err := WriteAll(&seed, FromSlice(sampleAccesses(16)), 0); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes(), uint8(4))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte("C8TT\x01"), uint8(1))
	f.Add([]byte("C8TT\x01\x00\x00\x00\x00"), uint8(255))
	f.Add(seed.Bytes()[:seed.Len()-2], uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, sizeByte uint8) {
		oneShot, oneErr := ReadAll(bytes.NewReader(data))

		size := int(sizeByte%64) + 1
		b := NewBatcher(NewReader(bytes.NewReader(data)), size)
		var streamed []Access
		for {
			batch, ok := b.Next()
			if !ok {
				break
			}
			if len(batch) == 0 || len(batch) > size {
				t.Fatalf("batch length %d outside (0, %d]", len(batch), size)
			}
			streamed = append(streamed, batch...)
		}
		batchErr := b.Err()

		if (oneErr == nil) != (batchErr == nil) {
			t.Fatalf("error divergence: one-shot %v vs batched %v", oneErr, batchErr)
		}
		if oneErr != nil && oneErr.Error() != batchErr.Error() {
			t.Fatalf("error mismatch: one-shot %q vs batched %q", oneErr, batchErr)
		}
		if len(streamed) != len(oneShot) {
			t.Fatalf("decoded %d accesses batched vs %d one-shot", len(streamed), len(oneShot))
		}
		for i := range oneShot {
			if streamed[i] != oneShot[i] {
				t.Fatalf("access %d: batched %v vs one-shot %v", i, streamed[i], oneShot[i])
			}
		}
		if b.Count() != uint64(len(streamed)) {
			t.Fatalf("Count %d != %d accesses yielded", b.Count(), len(streamed))
		}
	})
}
