package trace

import (
	"testing"
)

func TestKindString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatalf("Kind strings: %s %s", Read, Write)
	}
	if got := Kind(9).String(); got != "Kind(9)" {
		t.Fatalf("invalid kind string: %s", got)
	}
}

func TestAccessInstructions(t *testing.T) {
	a := Access{Gap: 4}
	if a.Instructions() != 5 {
		t.Fatalf("Instructions = %d, want 5", a.Instructions())
	}
}

func TestAccessString(t *testing.T) {
	a := Access{Kind: Write, Addr: 0x1f40, Size: 4, Data: 0xbeef}
	if got := a.String(); got != "W 0x1f40+4 =0xbeef" {
		t.Fatalf("String = %q", got)
	}
}

func TestSliceStream(t *testing.T) {
	as := []Access{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	s := FromSlice(as)
	for i, want := range as {
		got, ok := s.Next()
		if !ok || got != want {
			t.Fatalf("access %d = %v ok=%v", i, got, ok)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream not exhausted")
	}
	s.Reset()
	if a, ok := s.Next(); !ok || a.Addr != 1 {
		t.Fatal("Reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	s := NewLimit(FromSlice([]Access{{}, {}, {}, {}}), 2)
	if got := len(Collect(s, 0)); got != 2 {
		t.Fatalf("Limit yielded %d", got)
	}
	// Limit larger than the stream just drains it.
	s = NewLimit(FromSlice([]Access{{}}), 10)
	if got := len(Collect(s, 0)); got != 1 {
		t.Fatalf("Limit over short stream yielded %d", got)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted limit stream yielded an access")
	}
}

func TestTee(t *testing.T) {
	var sink []Access
	s := NewTee(FromSlice([]Access{{Addr: 7}, {Addr: 8}}), &sink)
	Collect(s, 0)
	if len(sink) != 2 || sink[0].Addr != 7 || sink[1].Addr != 8 {
		t.Fatalf("sink = %v", sink)
	}
}

func TestCollectMax(t *testing.T) {
	s := FromSlice(make([]Access, 10))
	if got := len(Collect(s, 3)); got != 3 {
		t.Fatalf("Collect(3) = %d", got)
	}
}

func TestFuncStream(t *testing.T) {
	n := 0
	f := Func(func() (Access, bool) {
		if n >= 2 {
			return Access{}, false
		}
		n++
		return Access{Addr: uint64(n)}, true
	})
	if got := len(Collect(f, 0)); got != 2 {
		t.Fatalf("Func stream yielded %d", got)
	}
}

func TestStats(t *testing.T) {
	var st Stats
	st.Observe(Access{Kind: Read, Gap: 3})  // 4 instructions
	st.Observe(Access{Kind: Write, Gap: 0}) // 1 instruction
	st.Observe(Access{Kind: Read, Gap: 4})  // 5 instructions
	if st.Reads != 2 || st.Writes != 1 || st.Instructions != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Accesses() != 3 {
		t.Fatalf("Accesses = %d", st.Accesses())
	}
	if got := st.ReadFrac(); got != 0.2 {
		t.Fatalf("ReadFrac = %v", got)
	}
	if got := st.WriteFrac(); got != 0.1 {
		t.Fatalf("WriteFrac = %v", got)
	}
}

func TestStatsEmptyFracs(t *testing.T) {
	var st Stats
	if st.ReadFrac() != 0 || st.WriteFrac() != 0 {
		t.Fatal("empty stats fractions nonzero")
	}
}

func TestMeasureStream(t *testing.T) {
	as := []Access{
		{Kind: Read, Gap: 1}, {Kind: Write, Gap: 1}, {Kind: Write, Gap: 1},
	}
	st := MeasureStream(FromSlice(as), 0)
	if st.Reads != 1 || st.Writes != 2 {
		t.Fatalf("stats = %+v", st)
	}
	st = MeasureStream(FromSlice(as), 1)
	if st.Accesses() != 1 {
		t.Fatalf("limited measure = %+v", st)
	}
}
