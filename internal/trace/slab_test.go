package trace

import "testing"

func TestColsRoundTrip(t *testing.T) {
	in := sampleAccesses(300)
	c := NewCols(512)
	c.AppendBatch(in)
	if c.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(in))
	}
	for i := range in {
		if got := c.At(i); got != in[i] {
			t.Fatalf("At(%d) = %v, want %v", i, got, in[i])
		}
	}
	back := c.Accesses(nil)
	if len(back) != len(in) {
		t.Fatalf("Accesses returned %d, want %d", len(back), len(in))
	}
	for i := range in {
		if back[i] != in[i] {
			t.Fatalf("Accesses[%d] = %v, want %v", i, back[i], in[i])
		}
	}
}

func TestColsColumnsStayParallel(t *testing.T) {
	c := NewCols(4)
	c.Append(Access{Addr: 1, Data: 2, Gap: 3, Size: 4, Kind: Write})
	c.Append(Access{Addr: 5, Kind: Read})
	for _, n := range []int{len(c.Addr), len(c.Data), len(c.Gap), len(c.Size), len(c.Op)} {
		if n != 2 {
			t.Fatalf("column lengths diverged: %d/%d/%d/%d/%d",
				len(c.Addr), len(c.Data), len(c.Gap), len(c.Size), len(c.Op))
		}
	}
}

func TestColsFullAndReset(t *testing.T) {
	const capacity = 8
	c := NewCols(capacity)
	if c.Cap() != capacity {
		t.Fatalf("Cap = %d, want %d", c.Cap(), capacity)
	}
	for i := 0; i < capacity; i++ {
		if c.Full() {
			t.Fatalf("Full at %d/%d", i, capacity)
		}
		c.Append(Access{Addr: uint64(i)})
	}
	if !c.Full() {
		t.Fatal("not Full at capacity")
	}
	c.Reset()
	if c.Len() != 0 || c.Full() {
		t.Fatalf("after Reset: Len=%d Full=%v", c.Len(), c.Full())
	}
	// Reset keeps the pre-sized capacity: refilling must not allocate.
	if n := testing.AllocsPerRun(20, func() {
		c.Reset()
		for i := 0; i < capacity; i++ {
			c.Append(Access{Addr: uint64(i)})
		}
	}); n > 0 {
		t.Errorf("refill after Reset allocates %.1f times, want 0", n)
	}
}
