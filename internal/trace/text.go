package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Human-readable text trace format, for hand-written test inputs and
// debugging dumps:
//
//	# comment
//	R 0x1000 8            read, address, size
//	W 0x1008 8 0x2a       write, address, size, data
//	W 0x1010 8 42 gap=3   optional instruction gap
//
// Addresses and data accept 0x-hex or decimal. Read data values are not
// encoded (they are observations; only write data feeds silent-store
// detection), so a binary->text->binary round trip zeroes them.

// ParseText decodes a text trace.
func ParseText(r io.Reader) ([]Access, error) {
	tr := NewTextReader(r)
	var out []Access
	for {
		a, ok := tr.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	if err := tr.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// TextReader decodes the text trace format one record at a time, so text
// traces stream through the batched pipeline like binary ones. It implements
// ErrStream; a parse error ends the stream and is surfaced via Err.
type TextReader struct {
	sc     *bufio.Scanner
	lineNo int
	err    error
}

// NewTextReader returns a streaming decoder over r.
func NewTextReader(r io.Reader) *TextReader {
	return &TextReader{sc: bufio.NewScanner(r)}
}

// Next returns the next access. On end of input or error it reports false;
// check Err to distinguish.
func (tr *TextReader) Next() (Access, bool) {
	if tr.err != nil {
		return Access{}, false
	}
	for tr.sc.Scan() {
		tr.lineNo++
		line := tr.sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		a, err := parseTextRecord(fields)
		if err != nil {
			tr.err = fmt.Errorf("trace: line %d: %w", tr.lineNo, err)
			return Access{}, false
		}
		return a, true
	}
	tr.err = tr.sc.Err()
	return Access{}, false
}

// Err returns the first scan or parse error, nil after a clean end of input.
func (tr *TextReader) Err() error { return tr.err }

func parseTextRecord(fields []string) (Access, error) {
	var a Access
	switch strings.ToUpper(fields[0]) {
	case "R":
		a.Kind = Read
	case "W":
		a.Kind = Write
	default:
		return a, fmt.Errorf("bad kind %q (want R or W)", fields[0])
	}
	if len(fields) < 3 {
		return a, fmt.Errorf("need at least kind, address, size")
	}
	addr, err := strconv.ParseUint(fields[1], 0, 64)
	if err != nil {
		return a, fmt.Errorf("bad address %q", fields[1])
	}
	a.Addr = addr
	size, err := strconv.ParseUint(fields[2], 0, 8)
	if err != nil || (size != 1 && size != 2 && size != 4 && size != 8) {
		return a, fmt.Errorf("bad size %q (want 1/2/4/8)", fields[2])
	}
	a.Size = uint8(size)
	rest := fields[3:]
	if a.Kind == Write {
		if len(rest) == 0 {
			return a, fmt.Errorf("write needs a data value")
		}
		data, err := strconv.ParseUint(rest[0], 0, 64)
		if err != nil {
			return a, fmt.Errorf("bad data %q", rest[0])
		}
		a.Data = data
		rest = rest[1:]
	}
	for _, f := range rest {
		val, ok := strings.CutPrefix(f, "gap=")
		if !ok {
			return a, fmt.Errorf("unexpected field %q", f)
		}
		gap, err := strconv.ParseUint(val, 0, 32)
		if err != nil {
			return a, fmt.Errorf("bad gap %q", val)
		}
		a.Gap = uint32(gap)
	}
	return a, nil
}

// WriteText encodes accesses in the text format.
func WriteText(w io.Writer, accesses []Access) error {
	bw := bufio.NewWriter(w)
	for _, a := range accesses {
		var err error
		if a.Kind == Write {
			_, err = fmt.Fprintf(bw, "W 0x%x %d 0x%x", a.Addr, a.Size, a.Data)
		} else {
			_, err = fmt.Fprintf(bw, "R 0x%x %d", a.Addr, a.Size)
		}
		if err != nil {
			return err
		}
		if a.Gap != 0 {
			if _, err := fmt.Fprintf(bw, " gap=%d", a.Gap); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
