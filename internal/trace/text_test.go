package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseTextBasics(t *testing.T) {
	src := `
# a hand-written trace
R 0x1000 8
W 0x1008 8 0x2a
W 0x1010 4 42 gap=3   # trailing comment
r 512 2
`
	got, err := ParseText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := []Access{
		{Kind: Read, Addr: 0x1000, Size: 8},
		{Kind: Write, Addr: 0x1008, Size: 8, Data: 0x2a},
		{Kind: Write, Addr: 0x1010, Size: 4, Data: 42, Gap: 3},
		{Kind: Read, Addr: 512, Size: 2},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d records", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []string{
		"X 0x100 8",        // bad kind
		"R 0x100",          // missing size
		"R zz 8",           // bad address
		"R 0x100 3",        // bad size
		"W 0x100 8",        // write without data
		"W 0x100 8 zz",     // bad data
		"R 0x100 8 gap=zz", // bad gap
		"R 0x100 8 bogus",  // unexpected field
	}
	for _, src := range cases {
		if _, err := ParseText(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	in := sampleAccesses(200)
	var buf bytes.Buffer
	if err := WriteText(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip %d != %d", len(out), len(in))
	}
	for i := range in {
		want := in[i]
		if want.Kind == Read {
			// The text format deliberately omits read data values (they
			// are observations, not inputs; only write data feeds
			// silent-store detection).
			want.Data = 0
		}
		if want != out[i] {
			t.Fatalf("record %d: %+v != %+v", i, out[i], want)
		}
	}
}

func TestParseTextEmpty(t *testing.T) {
	got, err := ParseText(strings.NewReader("# only comments\n\n"))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty parse: %v, %v", got, err)
	}
}
