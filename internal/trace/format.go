package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format v1.
//
// Header: magic "C8TT", one version byte.
// Records, repeated until EOF, each:
//
//	byte 0: bit0 kind (0=read, 1=write), bits1-3 log2(size), bit4 reserved
//	uvarint: zigzag-encoded delta of Addr from previous record
//	uvarint: Gap
//	uvarint: Data
//
// Address deltas are zigzag-encoded because real request streams move both
// up and down; sequential streams compress to ~3 bytes per record.

var magic = [4]byte{'C', '8', 'T', 'T'}

const formatVersion = 1

// ErrBadMagic reports that a trace file does not start with the format magic.
var ErrBadMagic = errors.New("trace: bad magic (not a cache8t trace)")

// Writer encodes accesses into the binary trace format.
type Writer struct {
	w        *bufio.Writer
	prevAddr uint64
	count    uint64
	buf      [3 * binary.MaxVarintLen64]byte
	started  bool
}

// NewWriter returns a Writer emitting to w. The header is written lazily on
// the first Write (or by Flush).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (tw *Writer) start() error {
	if tw.started {
		return nil
	}
	tw.started = true
	if _, err := tw.w.Write(magic[:]); err != nil {
		return err
	}
	return tw.w.WriteByte(formatVersion)
}

func log2Size(size uint8) (uint8, error) {
	switch size {
	case 1:
		return 0, nil
	case 2:
		return 1, nil
	case 4:
		return 2, nil
	case 8:
		return 3, nil
	default:
		return 0, fmt.Errorf("trace: unsupported access size %d", size)
	}
}

func zigzag(d int64) uint64   { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write encodes one access.
func (tw *Writer) Write(a Access) error {
	if err := tw.start(); err != nil {
		return err
	}
	l2, err := log2Size(a.Size)
	if err != nil {
		return err
	}
	head := byte(a.Kind&1) | l2<<1
	if err := tw.w.WriteByte(head); err != nil {
		return err
	}
	n := binary.PutUvarint(tw.buf[:], zigzag(int64(a.Addr-tw.prevAddr)))
	n += binary.PutUvarint(tw.buf[n:], uint64(a.Gap))
	n += binary.PutUvarint(tw.buf[n:], a.Data)
	if _, err := tw.w.Write(tw.buf[:n]); err != nil {
		return err
	}
	tw.prevAddr = a.Addr
	tw.count++
	return nil
}

// Count returns the number of accesses written.
func (tw *Writer) Count() uint64 { return tw.count }

// Flush writes the header (if nothing was written yet) and flushes buffers.
func (tw *Writer) Flush() error {
	if err := tw.start(); err != nil {
		return err
	}
	return tw.w.Flush()
}

// Reader decodes accesses from the binary trace format. It implements Stream;
// decode errors are surfaced via Err after Next returns false.
type Reader struct {
	r        *bufio.Reader
	prevAddr uint64
	err      error
	started  bool
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (tr *Reader) startRead() error {
	if tr.started {
		return nil
	}
	tr.started = true
	var hdr [5]byte
	if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			return ErrBadMagic
		}
		return err
	}
	if [4]byte(hdr[:4]) != magic {
		return ErrBadMagic
	}
	if hdr[4] != formatVersion {
		return fmt.Errorf("trace: unsupported format version %d", hdr[4])
	}
	return nil
}

// Next returns the next access. On end of trace or error it reports false;
// check Err to distinguish.
func (tr *Reader) Next() (Access, bool) {
	if tr.err != nil {
		return Access{}, false
	}
	if err := tr.startRead(); err != nil {
		tr.err = err
		return Access{}, false
	}
	head, err := tr.r.ReadByte()
	if err != nil {
		if !errors.Is(err, io.EOF) {
			tr.err = err
		}
		return Access{}, false
	}
	delta, err := binary.ReadUvarint(tr.r)
	if err != nil {
		tr.err = truncated(err)
		return Access{}, false
	}
	gap, err := binary.ReadUvarint(tr.r)
	if err != nil {
		tr.err = truncated(err)
		return Access{}, false
	}
	data, err := binary.ReadUvarint(tr.r)
	if err != nil {
		tr.err = truncated(err)
		return Access{}, false
	}
	addr := tr.prevAddr + uint64(unzigzag(delta))
	tr.prevAddr = addr
	return Access{
		Kind: Kind(head & 1),
		Size: 1 << ((head >> 1) & 3),
		Addr: addr,
		Gap:  uint32(gap),
		Data: data,
	}, true
}

// ReadBatch decodes up to len(dst) accesses into dst and returns how many it
// produced. It implements BatchSource: a Batcher over a Reader decodes whole
// batches with one call instead of one interface dispatch per access. A
// short or zero count means end of trace or a decode error — check Err.
func (tr *Reader) ReadBatch(dst []Access) int {
	n := 0
	for n < len(dst) {
		a, ok := tr.Next()
		if !ok {
			break
		}
		dst[n] = a
		n++
	}
	return n
}

func truncated(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Err returns the first error encountered while decoding, if any. A cleanly
// terminated trace leaves Err nil.
func (tr *Reader) Err() error { return tr.err }

// WriteAll encodes every access from s (up to max; max<=0 means all) and
// flushes. It returns the number written.
func WriteAll(w io.Writer, s Stream, max int) (uint64, error) {
	tw := NewWriter(w)
	n := 0
	for max <= 0 || n < max {
		a, ok := s.Next()
		if !ok {
			break
		}
		if err := tw.Write(a); err != nil {
			return tw.Count(), err
		}
		n++
	}
	return tw.Count(), tw.Flush()
}

// ReadAll decodes an entire trace into memory.
func ReadAll(r io.Reader) ([]Access, error) {
	tr := NewReader(r)
	var out []Access
	for {
		a, ok := tr.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	return out, tr.Err()
}
