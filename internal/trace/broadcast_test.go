package trace

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func broadcastAccesses(n int) []Access {
	out := make([]Access, n)
	for i := range out {
		k := Read
		if i%3 == 0 {
			k = Write
		}
		out[i] = Access{Addr: uint64(i) * 8, Data: uint64(i), Gap: uint32(i % 7), Size: 8, Kind: k}
	}
	return out
}

// collect drains sub on the calling goroutine, copying every batch (views
// are recycled slabs and must not be retained).
func collect(sub *Subscription) []Access {
	var got []Access
	for {
		batch, ok := sub.Next()
		if !ok {
			return got
		}
		got = append(got, batch...)
	}
}

// fanOut drains every subscriber concurrently and returns what each saw.
func fanOut(b *Broadcast, nsubs int) [][]Access {
	got := make([][]Access, nsubs)
	var wg sync.WaitGroup
	for i := 0; i < nsubs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = collect(b.Sub(i))
		}(i)
	}
	wg.Wait()
	return got
}

func wantSame(t *testing.T, got, want []Access, sub int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("sub %d: got %d accesses, want %d", sub, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sub %d: access %d = %v, want %v", sub, i, got[i], want[i])
		}
	}
}

func TestBroadcastFanOutSlice(t *testing.T) {
	want := broadcastAccesses(10_000)
	b := NewBroadcast(FromSlice(want), 256, 4, 0)
	for i, got := range fanOut(b, 4) {
		wantSame(t, got, want, i)
	}
	if err := b.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil", err)
	}
}

func TestBroadcastFanOutBatchSource(t *testing.T) {
	want := broadcastAccesses(5_000)
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, FromSlice(want), 0); err != nil {
		t.Fatal(err)
	}
	b := NewBroadcast(NewReader(bytes.NewReader(buf.Bytes())), 128, 3, 2)
	for i, got := range fanOut(b, 3) {
		wantSame(t, got, want, i)
	}
	if err := b.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil", err)
	}
}

func TestBroadcastFanOutGenericStream(t *testing.T) {
	want := broadcastAccesses(3_000)
	// Limit wraps the slice in a plain Stream, forcing the per-access
	// Next fill path (no zero-copy, no ReadBatch).
	b := NewBroadcast(NewLimit(FromSlice(want), uint64(len(want))), 100, 2, 0)
	for i, got := range fanOut(b, 2) {
		wantSame(t, got, want, i)
	}
}

func TestBroadcastSingleSub(t *testing.T) {
	want := broadcastAccesses(1_000)
	b := NewBroadcast(FromSlice(want), 0, 1, 0)
	wantSame(t, collect(b.Sub(0)), want, 0)
}

func TestBroadcastSliceZeroCopy(t *testing.T) {
	want := broadcastAccesses(100)
	b := NewBroadcast(FromSlice(want), 64, 1, 0)
	batch, ok := b.Sub(0).Next()
	if !ok || len(batch) == 0 {
		t.Fatal("no first batch")
	}
	if &batch[0] != &want[0] {
		t.Error("slice-source batch is a copy; want a zero-copy view of the backing array")
	}
	b.Sub(0).Stop()
}

func TestBroadcastDecodeError(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, FromSlice(broadcastAccesses(2_000)), 0); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	b := NewBroadcast(NewReader(bytes.NewReader(full[:len(full)-1])), 64, 3, 0)
	got := fanOut(b, 3)
	if err := b.Err(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("Err() = %v, want ErrUnexpectedEOF", err)
	}
	for i := 0; i < 3; i++ {
		if err := b.Sub(i).Err(); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("sub %d Err() = %v, want ErrUnexpectedEOF", i, err)
		}
	}
	// All subscribers saw the same (truncated) prefix.
	for i := 1; i < 3; i++ {
		wantSame(t, got[i], got[0], i)
	}
}

func TestBroadcastEarlyStopOneSub(t *testing.T) {
	want := broadcastAccesses(20_000)
	b := NewBroadcast(FromSlice(want), 128, 3, 0)
	got := make([][]Access, 3)
	var wg sync.WaitGroup
	// Sub 0 abandons after one batch; the others must still see everything.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sub := b.Sub(0)
		if batch, ok := sub.Next(); !ok || len(batch) == 0 {
			t.Error("sub 0: no first batch")
		}
		sub.Stop()
		sub.Stop() // idempotent
	}()
	for i := 1; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = collect(b.Sub(i))
		}(i)
	}
	wg.Wait()
	for i := 1; i < 3; i++ {
		wantSame(t, got[i], want, i)
	}
}

func TestBroadcastAllStopEarly(t *testing.T) {
	// Every subscriber stops after the first batch; the decoder must exit
	// without draining the rest of the stream, and Stop must be safe to call
	// again on the whole Broadcast afterwards.
	src := FromSlice(broadcastAccesses(1 << 20))
	b := NewBroadcast(src, 64, 2, 0)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub := b.Sub(i)
			sub.Next()
			sub.Stop()
		}(i)
	}
	wg.Wait()
	b.Stop()
	if src.pos == len(src.accesses) {
		t.Error("decoder drained the whole stream despite every subscriber stopping")
	}
}

func TestBroadcastSteadyStateNoAlloc(t *testing.T) {
	// Slabs circulate decoder → subscriber → free list: once the first batch
	// has primed the pool, consuming the rest of the stream allocates
	// nothing on any goroutine (AllocsPerRun reads global memstats, so the
	// decoder's allocations would show up here too).
	want := broadcastAccesses(512 * 200)
	b := NewBroadcast(FromSlice(want), 512, 1, 0)
	sub := b.Sub(0)
	if _, ok := sub.Next(); !ok {
		t.Fatal("no first batch")
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, ok := sub.Next(); !ok {
			t.Fatal("stream ran dry mid-measurement")
		}
	}); n > 0 {
		t.Errorf("steady-state Next allocates %.1f times per batch, want 0", n)
	}
	b.Stop()
}

func TestBroadcastSlowSubscriberBackpressure(t *testing.T) {
	// The slab pool bounds decoder read-ahead: with k slabs the decoder is at
	// most k batches ahead of the slowest subscriber. The source counts what
	// has been decoded, and the invariant below holds at every instant, so
	// sampling it cannot flake.
	const (
		size  = 64
		slabs = 2
		total = 100_000
	)
	var produced atomic.Int64
	src := Func(func() (Access, bool) {
		n := produced.Add(1)
		if n > total {
			return Access{}, false
		}
		return Access{Addr: uint64(n), Size: 1}, true
	})
	b := NewBroadcast(src, size, 2, slabs)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		// A fast subscriber does not loosen the bound: slabs recycle only
		// when the *slowest* subscriber releases them.
		defer wg.Done()
		collect(b.Sub(1))
	}()
	sub := b.Sub(0)
	consumed := 0
	// In flight at most: every pool slab (filled or queued) plus the batch
	// the decoder is blocked filling.
	const bound = (slabs + 1) * size
	for i := 0; i < 20; i++ {
		batch, ok := sub.Next()
		if !ok {
			t.Fatal("stream ran dry during backpressure check")
		}
		consumed += len(batch)
		time.Sleep(time.Millisecond) // let the decoder run as far as it can
		if p := int(produced.Load()); p > consumed+bound {
			t.Fatalf("decoder %d accesses ahead of slowest subscriber (produced %d, consumed %d), want <= %d",
				p-consumed, p, consumed, bound)
		}
	}
	sub.Stop()
	wg.Wait()
	b.Stop()
}

func TestBroadcastStopMidBatchRecycles(t *testing.T) {
	// A subscriber stopping while it still holds a batch must release that
	// slab back into circulation: the remaining subscriber needs every slab
	// to finish a stream much longer than the pool.
	want := broadcastAccesses(50_000)
	const slabs = 2
	b := NewBroadcast(FromSlice(want), 128, 2, slabs)
	quitter := b.Sub(0)
	if _, ok := quitter.Next(); !ok {
		t.Fatal("quitter: stream ended early")
	}
	quitter.Stop() // cur still held: Stop must release it
	got := collect(b.Sub(1))
	wantSame(t, got, want, 1)
	b.Stop()
}

func TestBroadcastEmptySource(t *testing.T) {
	b := NewBroadcast(FromSlice(nil), 64, 2, 0)
	for i, got := range fanOut(b, 2) {
		if len(got) != 0 {
			t.Fatalf("sub %d saw %d accesses from empty source", i, len(got))
		}
	}
	if err := b.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil", err)
	}
}
