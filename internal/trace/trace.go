// Package trace defines the memory-request representation that flows from
// workload generators (or the pinlite instrumentation VM) into the cache
// model, plus a compact binary on-disk trace format.
//
// This is the moral equivalent of the paper's Pin tool output: a stream of
// L1 data-cache requests, each a read or a write with an address, an access
// size, the data value involved, and the count of instructions executed
// since the previous memory request (so instruction-relative frequencies,
// Figure 3, can be recovered).
package trace

import "fmt"

// Kind distinguishes reads from writes.
type Kind uint8

const (
	// Read is a data-cache load.
	Read Kind = iota
	// Write is a data-cache store.
	Write
)

// String returns "R" or "W".
func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Access is one memory request.
type Access struct {
	// Addr is the byte address of the access.
	Addr uint64
	// Data is the value read or written, up to 8 bytes. For writes it is
	// what silent-write detection compares against memory content.
	Data uint64
	// Gap is the number of non-memory instructions executed since the
	// previous memory access (the access itself counts as one more
	// instruction). Figure 3's per-instruction frequencies come from this.
	Gap uint32
	// Size is the access width in bytes (1, 2, 4, or 8).
	Size uint8
	// Kind says whether this is a Read or a Write.
	Kind Kind
}

// Instructions returns how many instructions this access accounts for:
// the access instruction itself plus the preceding non-memory gap.
func (a Access) Instructions() uint64 { return uint64(a.Gap) + 1 }

// String renders an access like "W 0x1f40+4 =0xdeadbeef".
func (a Access) String() string {
	return fmt.Sprintf("%s 0x%x+%d =0x%x", a.Kind, a.Addr, a.Size, a.Data)
}

// Stream produces a sequence of accesses. Next reports false when the stream
// is exhausted. Streams are single-use and not safe for concurrent callers.
type Stream interface {
	Next() (Access, bool)
}

// SliceStream adapts a slice of accesses into a Stream.
type SliceStream struct {
	accesses []Access
	pos      int
}

// FromSlice returns a Stream over accesses.
func FromSlice(accesses []Access) *SliceStream {
	return &SliceStream{accesses: accesses}
}

// Next returns the next access.
func (s *SliceStream) Next() (Access, bool) {
	if s.pos >= len(s.accesses) {
		return Access{}, false
	}
	a := s.accesses[s.pos]
	s.pos++
	return a, true
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// nextBatch advances past up to n accesses and returns them as a subslice of
// the backing array — the Batcher's zero-copy path for materialized traces.
// Callers must treat the result as read-only.
func (s *SliceStream) nextBatch(n int) []Access {
	if s.pos >= len(s.accesses) {
		return nil
	}
	end := s.pos + n
	if end > len(s.accesses) {
		end = len(s.accesses)
	}
	batch := s.accesses[s.pos:end]
	s.pos = end
	return batch
}

// Limit wraps a stream and stops it after n accesses.
type Limit struct {
	inner Stream
	left  uint64
}

// NewLimit returns a stream yielding at most n accesses from inner.
func NewLimit(inner Stream, n uint64) *Limit {
	return &Limit{inner: inner, left: n}
}

// Next returns the next access while the budget lasts.
func (l *Limit) Next() (Access, bool) {
	if l.left == 0 {
		return Access{}, false
	}
	a, ok := l.inner.Next()
	if !ok {
		l.left = 0
		return Access{}, false
	}
	l.left--
	return a, true
}

// Err surfaces the inner stream's decode error when it tracks one, so a
// bounded replay of a corrupt trace fails like an unbounded one instead of
// truncating silently.
func (l *Limit) Err() error {
	if es, ok := l.inner.(ErrStream); ok {
		return es.Err()
	}
	return nil
}

// Tee forwards a stream while appending every access to sink.
type Tee struct {
	inner Stream
	sink  *[]Access
}

// NewTee returns a stream that records everything it yields into sink.
func NewTee(inner Stream, sink *[]Access) *Tee {
	return &Tee{inner: inner, sink: sink}
}

// Next returns the next access, recording it.
func (t *Tee) Next() (Access, bool) {
	a, ok := t.inner.Next()
	if ok {
		*t.sink = append(*t.sink, a)
	}
	return a, ok
}

// Collect drains up to max accesses from s into a slice. max <= 0 drains the
// whole stream (dangerous for infinite generators).
func Collect(s Stream, max int) []Access {
	var out []Access
	for max <= 0 || len(out) < max {
		a, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	return out
}

// Func adapts a function into a Stream.
type Func func() (Access, bool)

// Next invokes the function.
func (f Func) Next() (Access, bool) { return f() }

// Stats accumulates the stream-level statistics the paper's Figure 3 is
// built from.
type Stats struct {
	Reads        uint64
	Writes       uint64
	Instructions uint64
}

// Observe records one access.
func (s *Stats) Observe(a Access) {
	if a.Kind == Read {
		s.Reads++
	} else {
		s.Writes++
	}
	s.Instructions += a.Instructions()
}

// Accesses returns total memory requests.
func (s *Stats) Accesses() uint64 { return s.Reads + s.Writes }

// ReadFrac returns reads as a fraction of instructions.
func (s *Stats) ReadFrac() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Reads) / float64(s.Instructions)
}

// WriteFrac returns writes as a fraction of instructions.
func (s *Stats) WriteFrac() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Writes) / float64(s.Instructions)
}

// MeasureStream drains s (up to max accesses; max<=0 means all) and returns
// its statistics.
func MeasureStream(s Stream, max int) Stats {
	var st Stats
	n := 0
	for max <= 0 || n < max {
		a, ok := s.Next()
		if !ok {
			break
		}
		st.Observe(a)
		n++
	}
	return st
}
