package trace

// Stream transformers: small composable adapters used by tools and tests to
// reshape request streams without materializing them.

// Filter yields only the accesses pred accepts.
type Filter struct {
	inner Stream
	pred  func(Access) bool
}

// NewFilter returns a filtering stream. Dropped accesses fold their
// instruction counts into the next surviving access's Gap, so
// per-instruction statistics stay meaningful.
func NewFilter(inner Stream, pred func(Access) bool) *Filter {
	return &Filter{inner: inner, pred: pred}
}

// Next returns the next accepted access.
func (f *Filter) Next() (Access, bool) {
	var carried uint64
	for {
		a, ok := f.inner.Next()
		if !ok {
			return Access{}, false
		}
		if f.pred(a) {
			gap := carried + uint64(a.Gap)
			if gap > 1<<32-1 {
				gap = 1<<32 - 1
			}
			a.Gap = uint32(gap)
			return a, true
		}
		carried += a.Instructions()
	}
}

// OnlyReads keeps loads.
func OnlyReads(inner Stream) *Filter {
	return NewFilter(inner, func(a Access) bool { return a.Kind == Read })
}

// OnlyWrites keeps stores.
func OnlyWrites(inner Stream) *Filter {
	return NewFilter(inner, func(a Access) bool { return a.Kind == Write })
}

// Remap applies an address transformation to every access.
type Remap struct {
	inner Stream
	fn    func(uint64) uint64
}

// NewRemap returns a stream with fn applied to every address. Useful for
// relocating a trace into a different region or stressing set aliasing.
func NewRemap(inner Stream, fn func(uint64) uint64) *Remap {
	return &Remap{inner: inner, fn: fn}
}

// Next returns the next remapped access.
func (m *Remap) Next() (Access, bool) {
	a, ok := m.inner.Next()
	if !ok {
		return Access{}, false
	}
	a.Addr = m.fn(a.Addr)
	return a, true
}

// Offset shifts every address by delta (wrapping uint64 arithmetic).
func Offset(inner Stream, delta uint64) *Remap {
	return NewRemap(inner, func(addr uint64) uint64 { return addr + delta })
}

// Concat plays streams back to back.
type Concat struct {
	streams []Stream
	idx     int
}

// NewConcat returns the concatenation of streams.
func NewConcat(streams ...Stream) *Concat {
	return &Concat{streams: streams}
}

// Next returns the next access from the first non-exhausted stream.
func (c *Concat) Next() (Access, bool) {
	for c.idx < len(c.streams) {
		if a, ok := c.streams[c.idx].Next(); ok {
			return a, true
		}
		c.idx++
	}
	return Access{}, false
}

// Interleave alternates accesses from several streams round-robin, one per
// turn, skipping exhausted members until all are drained.
type Interleave struct {
	streams []Stream
	done    []bool
	turn    int
	left    int
}

// NewInterleave returns a round-robin interleaving of streams.
func NewInterleave(streams ...Stream) *Interleave {
	return &Interleave{streams: streams, done: make([]bool, len(streams)), left: len(streams)}
}

// Next returns the next access in round-robin order.
func (iv *Interleave) Next() (Access, bool) {
	for iv.left > 0 {
		i := iv.turn
		iv.turn = (iv.turn + 1) % len(iv.streams)
		if iv.done[i] {
			continue
		}
		if a, ok := iv.streams[i].Next(); ok {
			return a, true
		}
		iv.done[i] = true
		iv.left--
	}
	return Access{}, false
}
