package trace

import (
	"bytes"
	"testing"
)

func sampleAccesses(n int) []Access {
	out := make([]Access, n)
	for i := range out {
		out[i] = Access{
			Kind: Kind(i & 1), Size: 8, Addr: 0x1000 + uint64(i*8),
			Gap: uint32(i % 7), Data: uint64(i * 3),
		}
	}
	return out
}

func TestGzipRoundTrip(t *testing.T) {
	in := sampleAccesses(2000)
	var buf bytes.Buffer
	n, err := WriteAllAuto(&buf, FromSlice(in), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("wrote %d", n)
	}
	out, err := ReadAllAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("access %d mismatch", i)
		}
	}
}

func TestAutoReaderHandlesPlainTraces(t *testing.T) {
	in := sampleAccesses(100)
	var buf bytes.Buffer
	if _, err := WriteAllAuto(&buf, FromSlice(in), 0, false); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAllAuto(&buf)
	if err != nil || len(out) != 100 {
		t.Fatalf("plain auto-read: %d, %v", len(out), err)
	}
}

func TestGzipActuallyCompresses(t *testing.T) {
	in := sampleAccesses(10000)
	var plain, packed bytes.Buffer
	if _, err := WriteAllAuto(&plain, FromSlice(in), 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteAllAuto(&packed, FromSlice(in), 0, true); err != nil {
		t.Fatal(err)
	}
	if packed.Len() >= plain.Len() {
		t.Errorf("gzip did not shrink the trace: %d vs %d", packed.Len(), plain.Len())
	}
}

func TestIsGzipPath(t *testing.T) {
	if !IsGzipPath("a.c8tt.gz") || !IsGzipPath("b.gzip") {
		t.Error("gz suffixes not detected")
	}
	if IsGzipPath("a.c8tt") {
		t.Error("plain suffix detected as gzip")
	}
}

func TestAutoReaderRejectsGarbage(t *testing.T) {
	if _, err := ReadAllAuto(bytes.NewReader([]byte{0x1f, 0x8b, 0xff, 0xff})); err == nil {
		t.Error("corrupt gzip accepted")
	}
	if _, err := ReadAllAuto(bytes.NewReader([]byte("XY"))); err == nil {
		t.Error("garbage accepted as trace")
	}
}

func TestAutoReaderEmptyInput(t *testing.T) {
	if _, err := ReadAllAuto(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail header validation")
	}
}
