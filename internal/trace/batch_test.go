package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// drainBatches collects every access a Batcher yields, checking batch sizing
// invariants along the way.
func drainBatches(t *testing.T, b *Batcher, size int) []Access {
	t.Helper()
	var out []Access
	for {
		batch, ok := b.Next()
		if !ok {
			break
		}
		if len(batch) == 0 {
			t.Fatal("empty batch with ok=true")
		}
		if len(batch) > size {
			t.Fatalf("batch of %d exceeds size %d", len(batch), size)
		}
		out = append(out, batch...)
	}
	return out
}

func TestBatcherMatchesSlice(t *testing.T) {
	in := sampleAccesses(1000)
	for _, size := range []int{1, 3, 64, 1000, 4096} {
		b := NewBatcher(FromSlice(in), size)
		got := drainBatches(t, b, size)
		if len(got) != len(in) {
			t.Fatalf("size %d: got %d accesses, want %d", size, len(got), len(in))
		}
		for i := range in {
			if got[i] != in[i] {
				t.Fatalf("size %d: access %d = %v, want %v", size, i, got[i], in[i])
			}
		}
		if b.Count() != uint64(len(in)) {
			t.Fatalf("size %d: Count = %d", size, b.Count())
		}
		if err := b.Err(); err != nil {
			t.Fatalf("size %d: Err = %v", size, err)
		}
	}
}

func TestBatcherUsesNativeBatchDecode(t *testing.T) {
	in := sampleAccesses(777)
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, FromSlice(in), 0); err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(NewReader(&buf), 256)
	if b.dec.fast == nil {
		t.Fatal("Batcher over *Reader did not take the BatchSource fast path")
	}
	got := drainBatches(t, b, 256)
	if len(got) != len(in) {
		t.Fatalf("got %d accesses, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("access %d = %v, want %v", i, got[i], in[i])
		}
	}
}

func TestBatcherSurfacesDecodeError(t *testing.T) {
	in := sampleAccesses(100)
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, FromSlice(in), 0); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-3]
	b := NewBatcher(NewReader(bytes.NewReader(truncated)), 32)
	got := drainBatches(t, b, 32)
	if len(got) >= len(in) {
		t.Fatalf("decoded %d accesses from a truncated trace", len(got))
	}
	if !errors.Is(b.Err(), io.ErrUnexpectedEOF) {
		t.Fatalf("Err = %v, want unexpected EOF", b.Err())
	}
}

func TestBatcherZeroAllocPerBatch(t *testing.T) {
	in := sampleAccesses(1 << 14)
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, FromSlice(in), 0); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	var b *Batcher
	var total int
	allocs := testing.AllocsPerRun(1, func() {
		// The Reader and Batcher buffers are allocated up front; the drain
		// loop itself must not allocate per batch or per access.
		b = NewBatcher(NewReader(bytes.NewReader(data)), 512)
		for {
			batch, ok := b.Next()
			if !ok {
				break
			}
			total += len(batch)
		}
	})
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	// Construction allocates a handful of buffers (bufio, batch, reader);
	// a per-access or per-batch leak would show up as hundreds.
	if allocs > 12 {
		t.Fatalf("%v allocations for a %d-access drain (want construction-only)", allocs, total)
	}
}

func TestBatcherDrain(t *testing.T) {
	in := sampleAccesses(300)
	var n int
	err := NewBatcher(FromSlice(in), 64).Drain(func(batch []Access) error {
		n += len(batch)
		return nil
	})
	if err != nil || n != len(in) {
		t.Fatalf("Drain: n=%d err=%v", n, err)
	}
	wantErr := errors.New("stop")
	err = NewBatcher(FromSlice(in), 64).Drain(func([]Access) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("Drain err = %v", err)
	}
}

func TestTextReaderStreamsAndMatchesParseText(t *testing.T) {
	src := "# header comment\nR 0x1000 8\nW 0x1008 8 0x2a gap=3\n\nW 0x1010 4 42\n"
	want, err := ParseText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTextReader(strings.NewReader(src))
	got := drainBatches(t, NewBatcher(tr, 2), 2)
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
	if len(got) != len(want) {
		t.Fatalf("got %d accesses, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTextReaderSurfacesParseError(t *testing.T) {
	tr := NewTextReader(strings.NewReader("R 0x1000 8\nbogus line\nR 0x2000 8\n"))
	var n int
	for {
		if _, ok := tr.Next(); !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("decoded %d accesses before the bad line, want 1", n)
	}
	if tr.Err() == nil || !strings.Contains(tr.Err().Error(), "line 2") {
		t.Fatalf("Err = %v, want a line-2 parse error", tr.Err())
	}
}

func TestNewAnyReaderSniffsAllFramings(t *testing.T) {
	in := sampleAccesses(50)
	// Text framing zeroes read data (documented lossy field); align the
	// fixture so all three framings decode identically.
	for i := range in {
		if in[i].Kind == Read {
			in[i].Data = 0
		}
	}

	var binBuf, gzBuf, txtBuf bytes.Buffer
	if _, err := WriteAll(&binBuf, FromSlice(in), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteAllAuto(&gzBuf, FromSlice(in), 0, true); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&txtBuf, in); err != nil {
		t.Fatal(err)
	}

	for name, data := range map[string][]byte{
		"binary": binBuf.Bytes(),
		"gzip":   gzBuf.Bytes(),
		"text":   txtBuf.Bytes(),
	} {
		r, err := NewAnyReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := Collect(r, 0)
		if r.Err() != nil {
			t.Fatalf("%s: %v", name, r.Err())
		}
		if len(got) != len(in) {
			t.Fatalf("%s: got %d accesses, want %d", name, len(got), len(in))
		}
		for i := range in {
			if got[i] != in[i] {
				t.Fatalf("%s: access %d = %v, want %v", name, i, got[i], in[i])
			}
		}
	}
}
