// Package prof wires the standard runtime/pprof file profiles into
// commands: one call to start a CPU profile, one to drop a heap snapshot,
// both keyed off flag values so an empty path means "off". Every simulation
// command exposes them the same way (-cpuprofile / -memprofile), so a hot
// path can be profiled in situ — under the exact flag combination being
// investigated — instead of reconstructing it in a micro-benchmark.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path and returns the function
// that stops it and closes the file. An empty path is a no-op (the returned
// stop still must be safe to call), so callers can defer unconditionally.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("prof: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap drops an allocation profile at path, running the GC first so
// the numbers reflect live memory, not collection timing. An empty path is
// a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	return nil
}
