// Package regress re-runs the paper's headline experiment matrix and diffs
// the resulting artifacts against checked-in golden baselines, with
// per-metric tolerance bands and bootstrap confidence intervals. It is the
// machinery behind cmd/regress and the CI golden-diff job: a refactor that
// silently drifts the reproduced figures fails here even when every unit
// test still passes.
package regress

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/engine"
	"cache8t/internal/experiments"
	"cache8t/internal/report"
	"cache8t/internal/rescache"
	"cache8t/internal/stats"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

// Options scopes one regression run.
type Options struct {
	// GoldenDir holds the golden/<check>.json baselines.
	GoldenDir string
	// N is the stream length per benchmark. Goldens are pinned at a specific
	// N; CI uses a small one so the gate stays fast.
	N int
	// Seed is the workload master seed; goldens embed it in their config, so
	// changing it fails the comparability check rather than reporting drift.
	Seed uint64
	// Workers bounds the engine fan-out (0 = one per CPU). Never affects the
	// numbers, only the wall-clock.
	Workers int
	// Update regenerates the goldens in place instead of diffing.
	Update bool
	// Full renders passing metrics in the diff tables too.
	Full bool
	// Stream rebuilds every artifact from streamed traces (constant memory)
	// instead of materialized slices. Goldens are mode-agnostic: streamed and
	// materialized runs produce byte-identical artifacts, and CI runs both to
	// prove it.
	Stream bool
	// Shards > 1 runs set-local controllers set-sharded
	// (core.RunSharded); controllers with cross-set state fall back to the
	// serial driver. Goldens are shard-agnostic — sharded runs must
	// reproduce the serial artifacts byte-identically, and CI runs both to
	// prove it.
	Shards int
	// Context cancels in-flight simulations.
	Context context.Context
	// Out receives progress lines and diff tables (default os.Stdout).
	Out io.Writer
	// Cache, when set, memoizes check artifacts by (check, n, seed): a
	// repeat run with the same result-shaping knobs decodes the stored
	// canonical bytes instead of re-simulating. Stream and Shards stay out
	// of the key — they are execution knobs that provably do not change
	// artifacts — so do not point a cached run at the CAS when the purpose
	// of the run is to prove that equivalence. Update always rebuilds.
	Cache *rescache.Cache
}

// DefaultOptions is the pinned CI configuration: small-N but large enough
// that every controller path (grouping, silent elision, bypass, premature
// write-backs) is exercised on all 25 benchmarks.
func DefaultOptions() Options {
	return Options{GoldenDir: "golden", N: 50_000, Seed: 1}
}

func (o Options) out() io.Writer {
	if o.Out != nil {
		return o.Out
	}
	return os.Stdout
}

func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// expConfig translates Options into the experiments configuration.
func (o Options) expConfig() experiments.Config {
	cfg := experiments.Default()
	cfg.AccessesPerBench = o.N
	cfg.Seed = o.Seed
	cfg.Workers = o.Workers
	cfg.Context = o.ctx()
	cfg.Stream = o.Stream
	cfg.Shards = o.Shards
	return cfg
}

// Check is one golden-backed regression: it rebuilds an artifact from
// scratch and owns the tolerance bands its metrics are judged under.
type Check struct {
	// ID names the check and its golden file (golden/<ID>.json).
	ID string
	// Title is the human description used in diff tables.
	Title string
	// Bands are the per-metric tolerances (prefix-matched; see report.Bands).
	// Metrics without a band compare exactly.
	Bands report.Bands
	// Build reruns the experiment and assembles the artifact.
	Build func(Options) (*report.Artifact, error)
}

// reductionBands is the shared tolerance set for the Figure 9/10/11 family:
// per-benchmark reductions get half a percentage point of absolute headroom
// (benign float reassociation in a refactor), means a tighter quarter point,
// and the bootstrap CI bounds the same headroom as the per-benchmark values
// they resample.
var reductionBands = report.Bands{
	"":      {Abs: 0.005},
	"mean.": {Abs: 0.0025},
	"ci95.": {Abs: 0.005},
}

// Checks returns the regression matrix in paper order: the figures whose
// numbers are the repository's reason to exist.
func Checks() []Check {
	return []Check{
		{
			ID:    "fig8",
			Title: "Figure 8 worked example — exact array-op ledger per scheme",
			// The nine-access worked example is fully deterministic and tiny;
			// everything compares exactly (the zero band).
			Bands: report.Bands{},
			Build: buildFig8,
		},
		{
			ID:    "rmw",
			Title: "§1 RMW access inflation vs conventional writes",
			Bands: report.Bands{
				"inflation.": {Abs: 0.005},
				"mean.":      {Abs: 0.0025},
				"max.":       {Abs: 0.005},
				// Raw array-access totals compare exactly: they are integer
				// event counts and any change means the controllers changed.
			},
			Build: buildRMW,
		},
		{
			ID:    "fig9",
			Title: "Figure 9 access reduction, 64KB/4w/32B",
			Bands: reductionBands,
			Build: func(o Options) (*report.Artifact, error) {
				return buildReduction(o, "fig9", cache.DefaultConfig())
			},
		},
		{
			ID:    "fig10",
			Title: "Figure 10 access reduction, 32KB/4w/64B",
			Bands: reductionBands,
			Build: func(o Options) (*report.Artifact, error) {
				shape := cache.DefaultConfig()
				shape.SizeBytes = 32 * 1024
				shape.BlockBytes = 64
				return buildReduction(o, "fig10", shape)
			},
		},
		{
			ID:    "fig11",
			Title: "Figure 11 access reduction vs capacity (32KB & 128KB, 4w/32B)",
			Bands: reductionBands,
			Build: buildFig11,
		},
		{
			ID:    "hier",
			Title: "Two-level hierarchy — L2-visible traffic per L1 scheme, TS and 9T points",
			Bands: hierBands,
			Build: buildHier,
		},
	}
}

// CheckByID resolves one check.
func CheckByID(id string) (Check, error) {
	ids := make([]string, 0, len(Checks()))
	for _, c := range Checks() {
		if c.ID == id {
			return c, nil
		}
		ids = append(ids, c.ID)
	}
	return Check{}, fmt.Errorf("regress: unknown check %q (have %v)", id, ids)
}

// Summary is the outcome of a Run.
type Summary struct {
	// Passed/Failed/Updated list check IDs by outcome.
	Passed  []string
	Failed  []string
	Updated []string
}

// OK reports whether nothing drifted.
func (s *Summary) OK() bool { return len(s.Failed) == 0 }

// Run executes the named checks (all when ids is empty) against the goldens
// under opts.GoldenDir. With opts.Update it regenerates the goldens instead.
// Drift renders a per-metric diff table on opts.Out; the error is reserved
// for harness failures (missing golden, simulation error), not drift —
// callers decide the exit code from the Summary.
func Run(opts Options, ids ...string) (*Summary, error) {
	checks := Checks()
	if len(ids) > 0 {
		checks = checks[:0:0]
		for _, id := range ids {
			c, err := CheckByID(id)
			if err != nil {
				return nil, err
			}
			checks = append(checks, c)
		}
	}
	sum := &Summary{}
	for _, c := range checks {
		start := time.Now()
		art, cached, err := buildCached(opts, c)
		if err != nil {
			return sum, fmt.Errorf("regress: %s: %w", c.ID, err)
		}
		art.WallMS = float64(time.Since(start).Microseconds()) / 1e3
		note := ""
		if cached {
			note = " (cached)"
		}
		path := filepath.Join(opts.GoldenDir, c.ID+".json")
		if opts.Update {
			if err := report.WriteFile(path, art); err != nil {
				return sum, fmt.Errorf("regress: %s: %w", c.ID, err)
			}
			fmt.Fprintf(opts.out(), "regress: %s: golden updated (%s, %d metrics, %v)\n",
				c.ID, path, len(art.Metrics), time.Since(start).Round(time.Millisecond))
			sum.Updated = append(sum.Updated, c.ID)
			continue
		}
		golden, err := report.ReadFile(path)
		if err != nil {
			return sum, fmt.Errorf("regress: %s: %w (run with -update to create goldens)", c.ID, err)
		}
		diff := report.Compare(golden, art, c.Bands)
		if diff.OK() && !opts.Full {
			fmt.Fprintf(opts.out(), "regress: %s ok — %d metrics within tolerance (%v)%s\n",
				c.ID, len(diff.Metrics), time.Since(start).Round(time.Millisecond), note)
			sum.Passed = append(sum.Passed, c.ID)
			continue
		}
		status := "DRIFT"
		if diff.OK() {
			status = "ok"
		}
		t := diff.Table(fmt.Sprintf("regress: %s [%s] — %s", c.ID, status, c.Title), opts.Full)
		if err := t.Render(opts.out()); err != nil {
			return sum, err
		}
		fmt.Fprintln(opts.out())
		if diff.OK() {
			sum.Passed = append(sum.Passed, c.ID)
		} else {
			sum.Failed = append(sum.Failed, c.ID)
		}
	}
	return sum, nil
}

// buildCached builds a check's artifact, through the result cache when one
// is attached: the stored blob is the artifact's canonical encoding, so a
// hit decodes to exactly what a rebuild would produce (content hash
// re-verified by both the CAS and report.Decode). Update runs always
// rebuild — regenerating goldens from a cache would be circular.
func buildCached(opts Options, c Check) (*report.Artifact, bool, error) {
	if opts.Cache == nil || opts.Update {
		art, err := c.Build(opts)
		return art, false, err
	}
	key, err := report.Hash(map[string]string{
		"kind":  "regress-check",
		"check": c.ID,
		"n":     fmt.Sprint(opts.N),
		"seed":  fmt.Sprint(opts.Seed),
	})
	if err != nil {
		return nil, false, err
	}
	blob, cached, err := opts.Cache.Do(opts.ctx(), key, func() ([]byte, error) {
		art, err := c.Build(opts)
		if err != nil {
			return nil, err
		}
		return report.Encode(art)
	})
	if err != nil {
		return nil, false, err
	}
	art, err := report.Decode(blob)
	return art, cached, err
}

// newArtifact stamps the run configuration shared by every check.
func newArtifact(opts Options, check string, shape cache.Config) *report.Artifact {
	a := report.New("regress", opts.Seed)
	a.SetConfig("check", check)
	a.SetConfig("n", opts.N)
	a.SetConfig("seed", opts.Seed)
	a.SetConfig("cache_size_bytes", shape.SizeBytes)
	a.SetConfig("cache_ways", shape.Ways)
	a.SetConfig("cache_block_bytes", shape.BlockBytes)
	a.SetConfig("cache_policy", shape.Policy)
	return a
}

// buildFig8 replays the §4.3 worked example through all four schemes and
// records the complete per-controller event ledgers — the most fine-grained
// drift detector in the matrix: any change to controller bookkeeping moves
// at least one exact-compared counter.
func buildFig8(opts Options) (*report.Artifact, error) {
	shape := cache.DefaultConfig()
	a := newArtifact(opts, "fig8", shape)
	g := cache.MustGeometry(shape.SizeBytes, shape.Ways, shape.BlockBytes)
	stream := experiments.Fig8Stream(g)
	a.SetConfig("stream_len", len(stream))
	for _, k := range []core.Kind{core.Conventional, core.RMW, core.WG, core.WGRB} {
		res, err := core.RunContext(opts.ctx(), k, shape, core.Options{}, trace.FromSlice(stream), 0)
		if err != nil {
			return nil, err
		}
		a.AddController(res)
		a.SetMetric(k.String()+".array_accesses", float64(res.ArrayAccesses()))
	}
	return a, nil
}

// buildRMW pins the §1 inflation claim: per-benchmark conventional and RMW
// array totals (exact) plus the relative increases (banded).
func buildRMW(opts Options) (*report.Artifact, error) {
	shape := cache.DefaultConfig()
	a := newArtifact(opts, "rmw", shape)
	rows, err := experiments.InflationMatrix(opts.expConfig())
	if err != nil {
		return nil, err
	}
	incs := make([]float64, 0, len(rows))
	for i, prof := range workload.Profiles() {
		r := rows[i]
		a.SetMetric("conventional_accesses."+prof.Name, float64(r.Conventional))
		a.SetMetric("rmw_accesses."+prof.Name, float64(r.RMW))
		a.SetMetric("inflation."+prof.Name, r.Increase)
		incs = append(incs, r.Increase)
	}
	a.SetMetric("mean.inflation", stats.Mean(incs))
	a.SetMetric("max.inflation", stats.Max(incs))
	return a, nil
}

// buildReduction pins one Figure 9/10-style shape: per-benchmark WG and
// WG+RB reductions, their means, and deterministic bootstrap CIs on the
// means (the paper's headline 27%/33% numbers are means over 25 benchmarks;
// the CI says how tight that mean is at this N).
func buildReduction(opts Options, check string, shape cache.Config) (*report.Artifact, error) {
	a := newArtifact(opts, check, shape)
	pairs, err := experiments.ReductionMatrix(opts.expConfig(), shape)
	if err != nil {
		return nil, err
	}
	addReductionMetrics(a, "", pairs, opts.Seed)
	return a, nil
}

// buildFig11 pins the capacity-sensitivity figure: the same reductions at
// 32KB and 128KB, prefixed per capacity.
func buildFig11(opts Options) (*report.Artifact, error) {
	base := cache.DefaultConfig()
	a := newArtifact(opts, "fig11", base)
	for _, size := range []struct {
		prefix string
		sizeKB int
	}{{"32k.", 32}, {"128k.", 128}} {
		shape := base
		shape.SizeBytes = size.sizeKB * 1024
		pairs, err := experiments.ReductionMatrix(opts.expConfig(), shape)
		if err != nil {
			return nil, err
		}
		addReductionMetrics(a, size.prefix, pairs, opts.Seed)
	}
	return a, nil
}

// addReductionMetrics records one shape's reduction pairs under prefix:
// per-benchmark values, means, and 95% bootstrap CIs for the means.
func addReductionMetrics(a *report.Artifact, prefix string, pairs []experiments.ReductionPair, seed uint64) {
	var wgs, rbs []float64
	for i, prof := range workload.Profiles() {
		a.SetMetric(prefix+"wg."+prof.Name, pairs[i].WG)
		a.SetMetric(prefix+"wgrb."+prof.Name, pairs[i].WGRB)
		wgs = append(wgs, pairs[i].WG)
		rbs = append(rbs, pairs[i].WGRB)
	}
	a.SetMetric(prefix+"mean.wg", stats.Mean(wgs))
	a.SetMetric(prefix+"mean.wgrb", stats.Mean(rbs))
	for name, xs := range map[string][]float64{"wg": wgs, "wgrb": rbs} {
		// Deterministic in (xs, seed): identical runs produce identical CIs,
		// so the bounds golden-compare like any other metric.
		ci, err := stats.BootstrapMeanCI(xs, 0.95, 2000, seed)
		if err != nil {
			continue
		}
		a.SetMetric(prefix+"ci95."+name+".low", ci.Low)
		a.SetMetric(prefix+"ci95."+name+".high", ci.High)
	}
}

// BenchEntry is one appended record of engine throughput: the serial-vs-
// parallel trajectory BENCH_regress.json accumulates across commits.
type BenchEntry struct {
	Schema          int     `json:"schema"`
	GitSHA          string  `json:"git_sha"`
	UnixMS          int64   `json:"unix_ms"`
	N               int     `json:"n"`
	Benchmarks      int     `json:"benchmarks"`
	SerialWallMS    float64 `json:"serial_wall_ms"`
	SerialItemsPS   float64 `json:"serial_items_per_sec"`
	ParallelWorkers int     `json:"parallel_workers"`
	ParallelWallMS  float64 `json:"parallel_wall_ms"`
	ParallelItemsPS float64 `json:"parallel_items_per_sec"`
	Speedup         float64 `json:"speedup"`
}

// Bench measures the engine's serial and parallel throughput on the Figure 9
// workload matrix (every benchmark through RMW/WG/WGRB on the baseline
// shape) and returns the comparison.
func Bench(opts Options) (BenchEntry, error) {
	shape := cache.DefaultConfig()
	profs := workload.Profiles()
	jobs := make([]engine.Job[uint64], len(profs))
	for i, p := range profs {
		p := p
		jobs[i] = engine.Job[uint64]{
			Label:  p.Name,
			Weight: 3 * int64(opts.N),
			Fn: func(ctx context.Context) (uint64, error) {
				accs, err := workload.Take(p, opts.Seed, opts.N)
				if err != nil {
					return 0, err
				}
				res, err := core.RunAllContext(ctx, []core.Kind{core.RMW, core.WG, core.WGRB}, shape, core.Options{}, accs, 1)
				if err != nil {
					return 0, err
				}
				return res[0].ArrayAccesses(), nil
			},
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := BenchEntry{
		Schema:          report.SchemaVersion,
		GitSHA:          report.GitSHA(),
		UnixMS:          time.Now().UnixMilli(),
		N:               opts.N,
		Benchmarks:      len(profs),
		ParallelWorkers: workers,
	}
	for _, mode := range []struct {
		workers int
		wall    *float64
		ips     *float64
	}{
		{1, &e.SerialWallMS, &e.SerialItemsPS},
		{workers, &e.ParallelWallMS, &e.ParallelItemsPS},
	} {
		eng := engine.New[uint64](engine.Config{Workers: mode.workers})
		outs, err := eng.Run(opts.ctx(), jobs)
		if err != nil {
			return e, err
		}
		if _, err := engine.Values(outs); err != nil {
			return e, err
		}
		snap := eng.Snapshot()
		*mode.wall = snap.Wall.Seconds() * 1e3
		*mode.ips = snap.ItemsPerSecond
	}
	if e.SerialItemsPS > 0 {
		e.Speedup = e.ParallelItemsPS / e.SerialItemsPS
	}
	return e, nil
}

// AppendBench appends entry to the throughput ledger at path; see
// AppendLedger for the file discipline.
func AppendBench(path string, entry BenchEntry) error {
	return AppendLedger(path, entry)
}
