package regress

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/report"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

// CoreBenchEntry is one appended record of hot-path throughput: the
// materialized-vs-streamed trajectory BENCH_core.json accumulates across
// commits. Both modes consume the same in-memory binary trace; "materialized"
// decodes it fully into a slice and then replays, "streamed" decodes batch by
// batch through the pipeline that handles traces larger than RAM. Ratio near
// (or above) 1.0 means streaming costs nothing over decode-then-replay.
type CoreBenchEntry struct {
	Schema     int    `json:"schema"`
	GitSHA     string `json:"git_sha"`
	UnixMS     int64  `json:"unix_ms"`
	Workload   string `json:"workload"`
	Controller string `json:"controller"`
	N          int    `json:"n"`
	BatchSize  int    `json:"batch_size"`
	// GoMaxProcs and NumCPU make parallel ratios interpretable: a
	// sharded_ratio below 1.0 measured with gomaxprocs 1 is expected
	// overhead, not a regression. Entries appended before these fields
	// existed decode with both at 0 ("unrecorded") — see TestLedgerDecodes.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	NumCPU     int `json:"num_cpu,omitempty"`

	MaterializedWallMS float64 `json:"materialized_wall_ms"`
	MaterializedAccPS  float64 `json:"materialized_accesses_per_sec"`
	StreamedWallMS     float64 `json:"streamed_wall_ms"`
	StreamedAccPS      float64 `json:"streamed_accesses_per_sec"`
	// Ratio is streamed/materialized throughput (>= 1 means streaming is at
	// least as fast).
	Ratio float64 `json:"ratio"`

	// Sharded fields are present when the bench ran with Shards > 1: the
	// same streamed decode driven through core.RunSharded set-partitions.
	// ShardedRatio is sharded/streamed throughput; > 1 means the parallel
	// path wins (expect ~1/shards overhead on a single-core host, where the
	// routing scan and goroutine switches buy nothing).
	Shards        int     `json:"shards,omitempty"`
	ShardedWallMS float64 `json:"sharded_wall_ms,omitempty"`
	ShardedAccPS  float64 `json:"sharded_accesses_per_sec,omitempty"`
	ShardedRatio  float64 `json:"sharded_ratio,omitempty"`
}

// bestOf3 runs the benchmark body three times and keeps the fastest wall
// time (the usual guard against scheduler noise in single-shot benchmarks),
// returning that run's result.
func bestOf3(run func() (core.Result, error)) (core.Result, float64, error) {
	var res core.Result
	bestWall := 0.0
	for i := 0; i < 3; i++ {
		start := time.Now()
		r, err := run()
		wall := time.Since(start).Seconds() * 1e3
		if err != nil {
			return core.Result{}, 0, err
		}
		if i == 0 || wall < bestWall {
			bestWall = wall
			res = r
		}
	}
	return res, bestWall, nil
}

// sameCoreResult reports whether two runs produced identical observable
// results (everything golden comparisons look at; the event ledger is pinned
// through ArrayReads/ArrayWrites plus Counters).
func sameCoreResult(a, b core.Result) bool {
	return a.Controller == b.Controller &&
		a.Requests == b.Requests &&
		a.Cache == b.Cache &&
		a.Counters == b.Counters &&
		a.ArrayReads == b.ArrayReads &&
		a.ArrayWrites == b.ArrayWrites
}

// CoreBench measures the controller hot path in both execution modes over the
// same trace and verifies the results are identical before reporting. Each
// mode runs three times; the best wall time is kept (the usual guard against
// scheduler noise in single-shot benchmarks). With opts.Shards > 1 a third
// mode runs the set-sharded driver over the same streamed decode; that mode
// benches the RMW controller (WG keeps cross-set state, which would silently
// fall back to serial and bench nothing), and all modes switch with it so
// the entry's three numbers stay comparable.
func CoreBench(opts Options) (CoreBenchEntry, error) {
	kind := core.WG
	if opts.Shards > 1 {
		kind = core.RMW
	}
	shape := cache.DefaultConfig()
	prof := workload.Profiles()[0]
	accs, err := workload.Take(prof, opts.Seed, opts.N)
	if err != nil {
		return CoreBenchEntry{}, err
	}
	var enc bytes.Buffer
	if _, err := trace.WriteAll(&enc, trace.FromSlice(accs), 0); err != nil {
		return CoreBenchEntry{}, err
	}
	data := enc.Bytes()

	e := CoreBenchEntry{
		Schema:     report.SchemaVersion,
		GitSHA:     report.GitSHA(),
		UnixMS:     time.Now().UnixMilli(),
		Workload:   prof.Name,
		Controller: kind.String(),
		N:          opts.N,
		BatchSize:  trace.DefaultBatchSize,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	var matRes, strRes core.Result
	matRes, e.MaterializedWallMS, err = bestOf3(func() (core.Result, error) {
		all, err := trace.ReadAll(bytes.NewReader(data))
		if err != nil {
			return core.Result{}, err
		}
		return core.RunContext(opts.ctx(), kind, shape, core.Options{}, trace.FromSlice(all), 0)
	})
	if err != nil {
		return e, err
	}
	strRes, e.StreamedWallMS, err = bestOf3(func() (core.Result, error) {
		return core.RunStreamContext(opts.ctx(), kind, shape, core.Options{}, trace.NewReader(bytes.NewReader(data)), 0, 0)
	})
	if err != nil {
		return e, err
	}
	if !sameCoreResult(matRes, strRes) {
		return e, fmt.Errorf("regress: streamed and materialized runs diverged on %s/%s", prof.Name, kind)
	}
	if opts.Shards > 1 {
		e.Shards = opts.Shards
		var shardRes core.Result
		shardRes, e.ShardedWallMS, err = bestOf3(func() (core.Result, error) {
			return core.RunShardedContext(opts.ctx(), kind, shape, core.Options{},
				trace.NewReader(bytes.NewReader(data)), 0, 0, opts.Shards)
		})
		if err != nil {
			return e, err
		}
		if !sameCoreResult(strRes, shardRes) {
			return e, fmt.Errorf("regress: sharded and streamed runs diverged on %s/%s", prof.Name, kind)
		}
		if e.ShardedWallMS > 0 {
			e.ShardedAccPS = float64(opts.N) / (e.ShardedWallMS / 1e3)
		}
		if e.StreamedWallMS > 0 {
			e.ShardedRatio = e.StreamedWallMS / e.ShardedWallMS
		}
	}
	if e.MaterializedWallMS > 0 {
		e.MaterializedAccPS = float64(opts.N) / (e.MaterializedWallMS / 1e3)
	}
	if e.StreamedWallMS > 0 {
		e.StreamedAccPS = float64(opts.N) / (e.StreamedWallMS / 1e3)
	}
	if e.MaterializedAccPS > 0 {
		e.Ratio = e.StreamedAccPS / e.MaterializedAccPS
	}
	return e, nil
}

// AppendCoreBench appends entry to the hot-path ledger at path; see
// AppendLedger for the file discipline.
func AppendCoreBench(path string, entry CoreBenchEntry) error {
	return AppendLedger(path, entry)
}

// ShardScalePoint is one shard count's timing inside a ShardScaleEntry.
type ShardScalePoint struct {
	Shards int     `json:"shards"`
	WallMS float64 `json:"wall_ms"`
	AccPS  float64 `json:"accesses_per_sec"`
	// Ratio is this point's throughput over the entry's streamed serial
	// baseline; > 1 means the sharded driver wins at this count. The
	// shards=1 point exercises the PlanShards serial fallback, so its ratio
	// is the single-shard regression (should sit within noise of 1.0).
	Ratio float64 `json:"ratio"`
}

// ShardScaleEntry is one shard-scaling sweep: the streamed serial baseline
// plus the set-sharded driver at each requested shard count, every point
// verified byte-identical to the baseline before it is reported. The Bench
// tag discriminates these records from plain CoreBench entries in the shared
// BENCH_core.json ledger.
type ShardScaleEntry struct {
	Schema     int    `json:"schema"`
	Bench      string `json:"bench"`
	GitSHA     string `json:"git_sha"`
	UnixMS     int64  `json:"unix_ms"`
	Workload   string `json:"workload"`
	Controller string `json:"controller"`
	N          int    `json:"n"`
	BatchSize  int    `json:"batch_size"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`

	StreamedWallMS float64 `json:"streamed_wall_ms"`
	StreamedAccPS  float64 `json:"streamed_accesses_per_sec"`

	Points []ShardScalePoint `json:"points"`
}

// ShardScale sweeps the set-sharded driver across counts (e.g. 1,2,4,8) on
// the RMW controller over one streamed binary trace, comparing each count's
// throughput to the serial streamed baseline. Every sharded run's Result is
// checked identical to the baseline's — the sweep refuses to report a
// speedup (or a regression) on diverged output. Counts <= 1 degrade to the
// serial driver inside core.RunShardedContext, so the shards=1 point
// measures the fallback path's overhead, not a one-shard ring.
func ShardScale(opts Options, counts []int) (ShardScaleEntry, error) {
	const kind = core.RMW // WG keeps cross-set state and would fall back serial
	shape := cache.DefaultConfig()
	prof := workload.Profiles()[0]
	accs, err := workload.Take(prof, opts.Seed, opts.N)
	if err != nil {
		return ShardScaleEntry{}, err
	}
	var enc bytes.Buffer
	if _, err := trace.WriteAll(&enc, trace.FromSlice(accs), 0); err != nil {
		return ShardScaleEntry{}, err
	}
	data := enc.Bytes()

	e := ShardScaleEntry{
		Schema:     report.SchemaVersion,
		Bench:      "shard_scale",
		GitSHA:     report.GitSHA(),
		UnixMS:     time.Now().UnixMilli(),
		Workload:   prof.Name,
		Controller: kind.String(),
		N:          opts.N,
		BatchSize:  trace.DefaultBatchSize,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	baseRes, baseWall, err := bestOf3(func() (core.Result, error) {
		return core.RunStreamContext(opts.ctx(), kind, shape, core.Options{}, trace.NewReader(bytes.NewReader(data)), 0, 0)
	})
	if err != nil {
		return e, err
	}
	e.StreamedWallMS = baseWall
	if baseWall > 0 {
		e.StreamedAccPS = float64(opts.N) / (baseWall / 1e3)
	}

	for _, shards := range counts {
		shards := shards
		res, wall, err := bestOf3(func() (core.Result, error) {
			return core.RunShardedContext(opts.ctx(), kind, shape, core.Options{},
				trace.NewReader(bytes.NewReader(data)), 0, 0, shards)
		})
		if err != nil {
			return e, err
		}
		if !sameCoreResult(baseRes, res) {
			return e, fmt.Errorf("regress: shard-scale run at %d shards diverged from streamed baseline on %s/%s",
				shards, prof.Name, kind)
		}
		p := ShardScalePoint{Shards: shards, WallMS: wall}
		if wall > 0 {
			p.AccPS = float64(opts.N) / (wall / 1e3)
			p.Ratio = baseWall / wall
		}
		e.Points = append(e.Points, p)
	}
	return e, nil
}

// AppendShardScale appends entry to the hot-path ledger at path; see
// AppendLedger for the file discipline.
func AppendShardScale(path string, entry ShardScaleEntry) error {
	return AppendLedger(path, entry)
}
