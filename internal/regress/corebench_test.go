package regress

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// oldLedger is the shape BENCH_core.json held before CoreBenchEntry grew the
// gomaxprocs/num_cpu fields — the two entries below are verbatim copies of
// the committed records. TestLedgerDecodes pins that the ledger stays
// backward-readable: old entries decode (with the new fields zero, meaning
// "unrecorded") and appending a new-schema entry never strips their fields.
const oldLedger = `[
  {
    "batch_size": 4096,
    "controller": "WG",
    "git_sha": "unknown",
    "materialized_accesses_per_sec": 4999091.690035379,
    "materialized_wall_ms": 200.036339,
    "n": 1000000,
    "ratio": 1.3992843541036266,
    "schema": 1,
    "streamed_accesses_per_sec": 6995150.786595962,
    "streamed_wall_ms": 142.956175,
    "unix_ms": 1785991948505,
    "workload": "bzip2"
  },
  {
    "batch_size": 4096,
    "controller": "RMW",
    "git_sha": "1ee3bbbac06c9c1fc53d27bd209aace6141c9044-dirty",
    "materialized_accesses_per_sec": 6160174.225989971,
    "materialized_wall_ms": 162.333071,
    "n": 1000000,
    "ratio": 1.3485603180146297,
    "schema": 1,
    "sharded_accesses_per_sec": 6915954.984353309,
    "sharded_ratio": 0.832508710593433,
    "sharded_wall_ms": 144.59319100000002,
    "shards": 4,
    "streamed_accesses_per_sec": 8307366.513226561,
    "streamed_wall_ms": 120.375091,
    "unix_ms": 1785994330838,
    "workload": "bzip2"
  }
]`

func TestLedgerDecodes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench_core.json")
	if err := os.WriteFile(path, []byte(oldLedger), 0o644); err != nil {
		t.Fatal(err)
	}

	// Appending a new-schema entry must carry the old ones through untouched.
	entry := CoreBenchEntry{
		Schema: 1, GitSHA: "new", Workload: "bzip2", Controller: "WG",
		N: 10, BatchSize: 4096, GoMaxProcs: 4, NumCPU: 8,
		MaterializedWallMS: 1, StreamedWallMS: 1, Ratio: 1,
	}
	if err := AppendCoreBench(path, entry); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"sharded_ratio"`, `"sharded_wall_ms"`, `"1ee3bbbac06c9c1fc53d27bd209aace6141c9044-dirty"`} {
		if !strings.Contains(string(b), field) {
			t.Errorf("append stripped %s from the pre-existing entries", field)
		}
	}

	var entries []CoreBenchEntry
	if err := json.Unmarshal(b, &entries); err != nil {
		t.Fatalf("ledger not decodable as []CoreBenchEntry: %v\n%s", err, b)
	}
	if len(entries) != 3 {
		t.Fatalf("decoded %d entries, want 3", len(entries))
	}
	// Old entries predate the cpu-topology fields: both decode to zero.
	for i, e := range entries[:2] {
		if e.GoMaxProcs != 0 || e.NumCPU != 0 {
			t.Errorf("old entry %d: gomaxprocs=%d num_cpu=%d, want 0/0 (unrecorded)", i, e.GoMaxProcs, e.NumCPU)
		}
	}
	if entries[1].ShardedRatio == 0 || entries[1].Shards != 4 {
		t.Errorf("old sharded entry lost fields: %+v", entries[1])
	}
	if entries[2].GoMaxProcs != 4 || entries[2].NumCPU != 8 {
		t.Errorf("new entry: gomaxprocs=%d num_cpu=%d, want 4/8", entries[2].GoMaxProcs, entries[2].NumCPU)
	}
}

func TestCoreBenchRecordsCPUTopology(t *testing.T) {
	opts := DefaultOptions()
	opts.N = 2000
	opts.Context = context.Background()
	e, err := CoreBench(opts)
	if err != nil {
		t.Fatal(err)
	}
	if e.GoMaxProcs != runtime.GOMAXPROCS(0) {
		t.Errorf("GoMaxProcs = %d, want %d", e.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
	if e.NumCPU != runtime.NumCPU() {
		t.Errorf("NumCPU = %d, want %d", e.NumCPU, runtime.NumCPU())
	}
}

func TestShardScaleSweep(t *testing.T) {
	opts := DefaultOptions()
	opts.N = 5000
	opts.Context = context.Background()
	counts := []int{1, 2, 4}
	e, err := ShardScale(opts, counts)
	if err != nil {
		t.Fatal(err)
	}
	if e.Bench != "shard_scale" {
		t.Errorf("Bench = %q, want shard_scale", e.Bench)
	}
	if e.Controller != "RMW" {
		t.Errorf("Controller = %q, want RMW (set-local sharding)", e.Controller)
	}
	if e.GoMaxProcs != runtime.GOMAXPROCS(0) || e.NumCPU != runtime.NumCPU() {
		t.Errorf("topology = %d/%d, want %d/%d", e.GoMaxProcs, e.NumCPU, runtime.GOMAXPROCS(0), runtime.NumCPU())
	}
	if e.StreamedWallMS <= 0 || e.StreamedAccPS <= 0 {
		t.Errorf("baseline not measured: wall=%v accps=%v", e.StreamedWallMS, e.StreamedAccPS)
	}
	if len(e.Points) != len(counts) {
		t.Fatalf("got %d points, want %d", len(e.Points), len(counts))
	}
	for i, p := range e.Points {
		if p.Shards != counts[i] {
			t.Errorf("point %d: shards = %d, want %d", i, p.Shards, counts[i])
		}
		if p.WallMS <= 0 || p.AccPS <= 0 || p.Ratio <= 0 {
			t.Errorf("point %d not measured: %+v", i, p)
		}
	}

	// Scale entries share the ledger with CoreBench entries; both shapes
	// must survive side by side.
	path := filepath.Join(t.TempDir(), "bench_core.json")
	if err := AppendShardScale(path, e); err != nil {
		t.Fatal(err)
	}
	if err := AppendCoreBench(path, CoreBenchEntry{Schema: 1, GitSHA: "x", N: 1}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw []json.RawMessage
	if err := json.Unmarshal(b, &raw); err != nil || len(raw) != 2 {
		t.Fatalf("ledger holds %d entries (err %v), want 2", len(raw), err)
	}
	var back ShardScaleEntry
	if err := json.Unmarshal(raw[0], &back); err != nil {
		t.Fatal(err)
	}
	if back.Bench != "shard_scale" || len(back.Points) != len(counts) {
		t.Errorf("round-tripped scale entry = %+v", back)
	}
}
