package regress

import (
	"fmt"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/energy"
	"cache8t/internal/experiments"
	"cache8t/internal/report"
	"cache8t/internal/sram"
	"cache8t/internal/stats"
	"cache8t/internal/timing"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

// hierBands tolerates float reassociation only where a metric is itself a
// float computation: per-request means, the TS replay overhead, and the 9T
// repricing ratios. Every event count compares exactly — the L2-visible
// totals are the check's point, and any change means the hierarchy bridge or
// a controller changed.
var hierBands = report.Bands{
	"mean.":              {Abs: 0.0025},
	"ts.replay_overhead": {Abs: 0.0025},
	"nine_t.":            {Rel: 1e-9},
}

// hierEnergyBench is the benchmark the TS and 9T comparison points run on:
// the write-heavy profile the paper's own worked numbers lean on.
const hierEnergyBench = "bwaves"

// buildHier pins the multi-level story in one artifact (ISSUE: PR 10):
//
//   - the L2-visible-traffic delta across L1 schemes — RMW and WG+RB sit on
//     the kind-independent functional floor, plain WG above it by exactly its
//     premature Set-Buffer write-backs (per-benchmark exact counts plus
//     banded per-request means);
//   - a TS timing-speculation comparison point — the deterministic replay
//     schedule's array-access overhead over the RMW baseline;
//   - a 9T cell-energy comparison point — the same WGRB ledger repriced
//     under the near-threshold 9T cell via energy.EvaluateCell.
//
// The build also asserts the functional floor directly (refill/write-back
// totals identical across kinds, WG's surplus exactly its premature count),
// so a bridge regression fails with a crisp error even before the golden
// diff renders.
func buildHier(opts Options) (*report.Artifact, error) {
	shape := cache.DefaultConfig()
	l2 := experiments.HierL2Shape(shape)
	a := newArtifact(opts, "hier", shape)
	a.SetConfig("l2_size_bytes", l2.SizeBytes)
	a.SetConfig("l2_ways", l2.Ways)
	a.SetConfig("l2_block_bytes", l2.BlockBytes)
	a.SetConfig("l2_controller", core.RMW.String())
	a.SetConfig("energy_bench", hierEnergyBench)

	rows, err := experiments.HierMatrix(opts.expConfig())
	if err != nil {
		return nil, err
	}
	kinds := experiments.HierKinds()
	names := []string{"rmw", "wg", "wgrb"}
	perReq := make([][]float64, len(kinds))
	for i, prof := range workload.Profiles() {
		pts := rows[i].Points
		base := pts[0]
		for j := range kinds {
			p := pts[j]
			if p.Refills != base.Refills || p.Writebacks != base.Writebacks {
				return nil, fmt.Errorf("hier: %s: %s functional stream diverged from RMW (refills %d vs %d, writebacks %d vs %d)",
					prof.Name, names[j], p.Refills, base.Refills, p.Writebacks, base.Writebacks)
			}
			if p.L2Visible != base.L2Visible+p.PrematureWBs {
				return nil, fmt.Errorf("hier: %s: %s L2-visible total %d is not floor %d + premature %d",
					prof.Name, names[j], p.L2Visible, base.L2Visible, p.PrematureWBs)
			}
			a.SetMetric(names[j]+".l2_visible."+prof.Name, float64(p.L2Visible))
			perReq[j] = append(perReq[j], p.PerRequest)
		}
		a.SetMetric("wg.premature_wbs."+prof.Name, float64(pts[1].PrematureWBs))
		a.SetMetric("l2_array_accesses."+prof.Name, float64(pts[0].L2ArrayAccesses))
	}
	for j := range kinds {
		a.SetMetric("mean.l2_visible_per_request."+names[j], stats.Mean(perReq[j]))
	}

	// Single-level comparison points on one benchmark: TS replay overhead
	// and the 9T repricing of the WGRB ledger.
	prof, err := workload.ProfileByName(hierEnergyBench)
	if err != nil {
		return nil, err
	}
	accs, err := workload.Take(prof, opts.Seed, opts.N)
	if err != nil {
		return nil, err
	}
	var rmwAcc, tsAcc uint64
	var wgrbRes core.Result
	for _, k := range []core.Kind{core.RMW, core.KindTS, core.WGRB} {
		res, err := core.RunContext(opts.ctx(), k, shape, core.Options{}, trace.FromSlice(accs), 0)
		if err != nil {
			return nil, err
		}
		switch k {
		case core.RMW:
			rmwAcc = res.ArrayAccesses()
		case core.KindTS:
			tsAcc = res.ArrayAccesses()
		case core.WGRB:
			wgrbRes = res
		}
	}
	a.SetMetric("ts.array_accesses", float64(tsAcc))
	a.SetMetric("ts.rmw_array_accesses", float64(rmwAcc))
	a.SetMetric("ts.replay_overhead", float64(tsAcc)/float64(rmwAcc)-1)

	nominal := sram.OperatingPoint{VoltageV: 1.0, FreqMHz: 2000}
	tp := timing.DefaultParams()
	baseRep, err := energy.Evaluate(wgrbRes, nominal, tp)
	if err != nil {
		return nil, err
	}
	nineRep, err := energy.EvaluateCell(wgrbRes, sram.NineT, nominal, tp)
	if err != nil {
		return nil, err
	}
	a.SetMetric("nine_t.dynamic_ratio", nineRep.DynamicJ/baseRep.DynamicJ)
	a.SetMetric("nine_t.leakage_ratio", nineRep.LeakageJ/baseRep.LeakageJ)
	a.SetMetric("nine_t.total_ratio", nineRep.TotalJ()/baseRep.TotalJ())
	return a, nil
}
