package regress

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cache8t/internal/report"
)

// testOptions keeps the end-to-end tests fast: a tiny stream into a temp
// golden dir, output captured instead of hitting stdout.
func testOptions(t *testing.T, out *bytes.Buffer) Options {
	t.Helper()
	opts := DefaultOptions()
	opts.GoldenDir = t.TempDir()
	opts.N = 2000
	opts.Workers = 2
	opts.Out = out
	return opts
}

// TestUpdateThenRunPasses is the harness's own golden round trip: -update
// writes baselines, an immediate re-run must pass every metric exactly
// (same binary, same seed — determinism is the whole premise).
func TestUpdateThenRunPasses(t *testing.T) {
	var out bytes.Buffer
	opts := testOptions(t, &out)

	opts.Update = true
	sum, err := Run(opts, "fig8", "rmw")
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Updated) != 2 {
		t.Fatalf("updated %v, want fig8 and rmw", sum.Updated)
	}
	for _, id := range []string{"fig8", "rmw"} {
		if _, err := os.Stat(filepath.Join(opts.GoldenDir, id+".json")); err != nil {
			t.Fatalf("golden for %s not written: %v", id, err)
		}
	}

	opts.Update = false
	out.Reset()
	sum, err = Run(opts, "fig8", "rmw")
	if err != nil {
		t.Fatal(err)
	}
	if !sum.OK() {
		t.Fatalf("fresh run drifted against its own goldens: failed=%v\n%s", sum.Failed, out.String())
	}
	if len(sum.Passed) != 2 {
		t.Fatalf("passed %v, want both checks", sum.Passed)
	}
}

// TestTamperedGoldenFails edits one golden metric past its tolerance and
// checks Run reports drift (not an error) with a readable diff table.
func TestTamperedGoldenFails(t *testing.T) {
	var out bytes.Buffer
	opts := testOptions(t, &out)

	opts.Update = true
	if _, err := Run(opts, "rmw"); err != nil {
		t.Fatal(err)
	}

	// Re-encode the golden with a shifted mean: the tamper has to go through
	// report.Encode so the config hash stays valid and only the metric drifts.
	path := filepath.Join(opts.GoldenDir, "rmw.json")
	art, err := report.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	art.Metrics["mean.inflation"] += 0.5 // far outside the 0.0025 abs band
	if err := report.WriteFile(path, art); err != nil {
		t.Fatal(err)
	}

	opts.Update = false
	sum, err := Run(opts, "rmw")
	if err != nil {
		t.Fatalf("drift must not be a harness error: %v", err)
	}
	if sum.OK() {
		t.Fatal("tampered golden passed")
	}
	if len(sum.Failed) != 1 || sum.Failed[0] != "rmw" {
		t.Fatalf("failed = %v, want [rmw]", sum.Failed)
	}
	rendered := out.String()
	if !strings.Contains(rendered, "mean.inflation") || !strings.Contains(rendered, "DRIFT") {
		t.Fatalf("diff table should name the drifted metric:\n%s", rendered)
	}
}

// TestMissingGoldenIsHarnessError distinguishes "no baseline yet" (error,
// with a hint) from drift.
func TestMissingGoldenIsHarnessError(t *testing.T) {
	var out bytes.Buffer
	opts := testOptions(t, &out)
	_, err := Run(opts, "fig8")
	if err == nil {
		t.Fatal("run against empty golden dir succeeded")
	}
	if !strings.Contains(err.Error(), "-update") {
		t.Fatalf("missing-golden error should hint at -update, got: %v", err)
	}
}

func TestUnknownCheckID(t *testing.T) {
	var out bytes.Buffer
	opts := testOptions(t, &out)
	if _, err := Run(opts, "fig99"); err == nil {
		t.Fatal("unknown check id accepted")
	}
}

// TestConfigMismatchReported pins that goldens recorded at one N fail the
// comparability check — not the tolerance bands — when re-run at another N.
func TestConfigMismatchReported(t *testing.T) {
	var out bytes.Buffer
	opts := testOptions(t, &out)
	opts.Update = true
	if _, err := Run(opts, "fig8"); err != nil {
		t.Fatal(err)
	}
	opts.Update = false
	opts.N = 3000
	sum, err := Run(opts, "fig8")
	if err != nil {
		t.Fatal(err)
	}
	if sum.OK() {
		t.Fatal("run at different N passed against pinned goldens")
	}
	if !strings.Contains(out.String(), "config:") {
		t.Fatalf("diff should flag the config mismatch:\n%s", out.String())
	}
}

func TestChecksHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Checks() {
		if c.ID == "" || c.Title == "" || c.Build == nil {
			t.Fatalf("check %+v incomplete", c.ID)
		}
		if seen[c.ID] {
			t.Fatalf("duplicate check id %q", c.ID)
		}
		seen[c.ID] = true
	}
	if len(seen) < 5 {
		t.Fatalf("only %d checks registered, want the fig8/rmw/fig9/fig10/fig11 matrix", len(seen))
	}
}

// TestAppendBench checks the bench ledger file is created, appended, and
// stays a valid canonical JSON array.
func TestAppendBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	e1 := BenchEntry{Schema: report.SchemaVersion, GitSHA: "abc", N: 10, SerialWallMS: 1}
	e2 := BenchEntry{Schema: report.SchemaVersion, GitSHA: "def", N: 10, SerialWallMS: 2}
	if err := AppendBench(path, e1); err != nil {
		t.Fatal(err)
	}
	if err := AppendBench(path, e2); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []BenchEntry
	if err := json.Unmarshal(b, &entries); err != nil {
		t.Fatalf("bench file not a JSON array: %v\n%s", err, b)
	}
	if len(entries) != 2 || entries[0].GitSHA != "abc" || entries[1].GitSHA != "def" {
		t.Fatalf("entries = %+v, want the two appended in order", entries)
	}
}
