package regress

import (
	"encoding/json"
	"fmt"
	"os"

	"cache8t/internal/report"
)

// AppendLedger appends entry to the JSON array at path (created when
// missing), rewriting the file canonically so the trajectory stays
// machine-readable and diff-friendly. Existing entries are carried through
// as raw JSON, so ledgers may hold heterogeneous entry shapes — e.g.
// BENCH_core.json accumulates both CoreBench records and sramload's
// service-load records — and appending one shape never strips fields from
// another.
func AppendLedger(path string, entry any) error {
	var entries []json.RawMessage
	b, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(b, &entries); err != nil {
			return fmt.Errorf("regress: %s: %w", path, err)
		}
	case os.IsNotExist(err):
	default:
		return fmt.Errorf("regress: %w", err)
	}
	enc, err := report.Canonical(entry)
	if err != nil {
		return err
	}
	entries = append(entries, enc)
	out, err := report.Canonical(entries)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return fmt.Errorf("regress: %w", err)
	}
	return nil
}
