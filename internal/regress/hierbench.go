package regress

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/experiments"
	"cache8t/internal/hier"
	"cache8t/internal/report"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

// HierBenchEntry is one appended record of two-level throughput: the
// hierarchy driver (L1 controller + listener bridge + L2 controller) over
// the same trace in materialized and streamed modes. The Bench tag
// discriminates these records from plain CoreBench and ShardScale entries in
// the shared BENCH_core.json ledger. Ratio is streamed/materialized
// throughput, the same convention as CoreBenchEntry; L2Visible records the
// run's downstream traffic so a trajectory of entries also tracks whether
// the bridge's event volume moved.
type HierBenchEntry struct {
	Schema       int    `json:"schema"`
	Bench        string `json:"bench"`
	GitSHA       string `json:"git_sha"`
	UnixMS       int64  `json:"unix_ms"`
	Workload     string `json:"workload"`
	L1Controller string `json:"l1_controller"`
	L2Controller string `json:"l2_controller"`
	N            int    `json:"n"`
	BatchSize    int    `json:"batch_size"`
	GoMaxProcs   int    `json:"gomaxprocs"`
	NumCPU       int    `json:"num_cpu"`

	MaterializedWallMS float64 `json:"materialized_wall_ms"`
	MaterializedAccPS  float64 `json:"materialized_accesses_per_sec"`
	StreamedWallMS     float64 `json:"streamed_wall_ms"`
	StreamedAccPS      float64 `json:"streamed_accesses_per_sec"`
	Ratio              float64 `json:"ratio"`

	L2Visible uint64 `json:"l2_visible"`
}

// sameHierResult reports whether two hierarchy runs produced identical
// observable results: both levels' full single-level results plus the event
// stream totals connecting them.
func sameHierResult(a, b hier.Result) bool {
	return sameCoreResult(a.L1, b.L1) && sameCoreResult(a.L2, b.L2) && a.Traffic == b.Traffic
}

// bestOf3Hier is bestOf3 for the two-level driver.
func bestOf3Hier(run func() (hier.Result, error)) (hier.Result, float64, error) {
	var res hier.Result
	bestWall := 0.0
	for i := 0; i < 3; i++ {
		start := time.Now()
		r, err := run()
		wall := time.Since(start).Seconds() * 1e3
		if err != nil {
			return hier.Result{}, 0, err
		}
		if i == 0 || wall < bestWall {
			bestWall = wall
			res = r
		}
	}
	return res, bestWall, nil
}

// HierBench measures the two-level hierarchy driver over one binary trace in
// materialized and streamed modes, verifies the two runs are identical
// (levels and traffic), and reports the throughput pair. The L1 is WG — the
// scheme whose premature write-backs exercise the bridge's on-chip event
// path — over the baseline shape, the L2 the default RMW second level.
func HierBench(opts Options) (HierBenchEntry, error) {
	cfg := hier.Config{
		L1Kind: core.WG,
		L1:     cache.DefaultConfig(),
		L2Kind: core.RMW,
		L2:     experiments.HierL2Shape(cache.DefaultConfig()),
	}
	prof := workload.Profiles()[0]
	accs, err := workload.Take(prof, opts.Seed, opts.N)
	if err != nil {
		return HierBenchEntry{}, err
	}
	var enc bytes.Buffer
	if _, err := trace.WriteAll(&enc, trace.FromSlice(accs), 0); err != nil {
		return HierBenchEntry{}, err
	}
	data := enc.Bytes()

	e := HierBenchEntry{
		Schema:       report.SchemaVersion,
		Bench:        "hier",
		GitSHA:       report.GitSHA(),
		UnixMS:       time.Now().UnixMilli(),
		Workload:     prof.Name,
		L1Controller: cfg.L1Kind.String(),
		L2Controller: cfg.L2Kind.String(),
		N:            opts.N,
		BatchSize:    trace.DefaultBatchSize,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
	}

	var matRes, strRes hier.Result
	matRes, e.MaterializedWallMS, err = bestOf3Hier(func() (hier.Result, error) {
		all, err := trace.ReadAll(bytes.NewReader(data))
		if err != nil {
			return hier.Result{}, err
		}
		return hier.RunContext(opts.ctx(), cfg, trace.FromSlice(all), 0, 0)
	})
	if err != nil {
		return e, err
	}
	strRes, e.StreamedWallMS, err = bestOf3Hier(func() (hier.Result, error) {
		return hier.RunContext(opts.ctx(), cfg, trace.NewReader(bytes.NewReader(data)), 0, 0)
	})
	if err != nil {
		return e, err
	}
	if !sameHierResult(matRes, strRes) {
		return e, fmt.Errorf("regress: streamed and materialized hierarchy runs diverged on %s/%s", prof.Name, cfg.L1Kind)
	}
	e.L2Visible = strRes.L2Visible()
	if e.MaterializedWallMS > 0 {
		e.MaterializedAccPS = float64(opts.N) / (e.MaterializedWallMS / 1e3)
	}
	if e.StreamedWallMS > 0 {
		e.StreamedAccPS = float64(opts.N) / (e.StreamedWallMS / 1e3)
	}
	if e.MaterializedAccPS > 0 {
		e.Ratio = e.StreamedAccPS / e.MaterializedAccPS
	}
	return e, nil
}

// AppendHierBench appends entry to the hot-path ledger at path; see
// AppendLedger for the file discipline.
func AppendHierBench(path string, entry HierBenchEntry) error {
	return AppendLedger(path, entry)
}
