package core

import (
	"fmt"

	"cache8t/internal/cache"
	"cache8t/internal/mem"
	"cache8t/internal/sram"
	"cache8t/internal/trace"
)

// PortOp describes the array activity one demand request triggered — the
// unit the cycle-accurate port simulator in internal/timing replays. A
// demand read is one ReadRows; an RMW write is one ReadRows plus one
// WriteRows (and this coupling is exactly why RMW blocks 1R+1W operation);
// a grouped write is all zeros; a bypassed read is one SetBufOps.
type PortOp struct {
	// IsRead marks demand reads (the core stalls on their completion).
	IsRead bool
	// Gap is the number of non-memory instructions preceding the request.
	Gap uint32
	// ReadRows, WriteRows, and SetBufOps count array row reads, array row
	// writes, and Set-Buffer accesses performed for this request.
	ReadRows  uint16
	WriteRows uint16
	SetBufOps uint16
	// Bank is the sub-array the request's row lives in (set index modulo
	// the sub-array count). The banked simulator uses it to model
	// sub-array-local write-backs (Park et al.).
	Bank uint16
}

// eventsProvider is satisfied by every controller in this package (via
// base); it exposes the live event ledger and cache geometry so a wrapper
// can compute per-request deltas and bank indices.
type eventsProvider interface {
	events() *sram.Array
	geometry() cache.Geometry
}

func (b *base) events() *sram.Array      { return b.array }
func (b *base) geometry() cache.Geometry { return b.cache.Geometry() }

// LoggedController wraps a Controller and appends one PortOp per request to
// a caller-owned slice.
type LoggedController struct {
	Controller
	arr  *sram.Array
	geom cache.Geometry
	log  *[]PortOp
}

// NewLogged wraps ctrl (which must be a controller from this package) so
// every Access appends a PortOp to log.
func NewLogged(ctrl Controller, log *[]PortOp) (*LoggedController, error) {
	ep, ok := ctrl.(eventsProvider)
	if !ok {
		return nil, fmt.Errorf("core: controller %T does not expose its event ledger", ctrl)
	}
	return &LoggedController{Controller: ctrl, arr: ep.events(), geom: ep.geometry(), log: log}, nil
}

// Access forwards the request and records the array-operation delta.
func (l *LoggedController) Access(a trace.Access) uint64 {
	r0 := l.arr.Count(sram.EvRowRead)
	w0 := l.arr.Count(sram.EvRowWrite)
	s0 := l.arr.Count(sram.EvSetBufRead) + l.arr.Count(sram.EvSetBufWrite)
	v := l.Controller.Access(a)
	cfg := l.arr.Config()
	rowsPerBank := cfg.Rows / cfg.Subarrays
	*l.log = append(*l.log, PortOp{
		IsRead:    a.Kind == trace.Read,
		Gap:       a.Gap,
		ReadRows:  uint16(l.arr.Count(sram.EvRowRead) - r0),
		WriteRows: uint16(l.arr.Count(sram.EvRowWrite) - w0),
		SetBufOps: uint16(l.arr.Count(sram.EvSetBufRead) + l.arr.Count(sram.EvSetBufWrite) - s0),
		Bank:      uint16(l.geom.SetIndex(a.Addr) / rowsPerBank),
	})
	return v
}

// RunLogged is Run plus port-op capture: it returns the result and the
// per-request operation log.
func RunLogged(kind Kind, cfg cache.Config, opts Options, s trace.Stream, max int) (Result, []PortOp, error) {
	c, err := cache.New(cfg, mem.New())
	if err != nil {
		return Result{}, nil, err
	}
	ctrl, err := New(kind, c, opts)
	if err != nil {
		return Result{}, nil, err
	}
	var log []PortOp
	logged, err := NewLogged(ctrl, &log)
	if err != nil {
		return Result{}, nil, err
	}
	n := 0
	for max <= 0 || n < max {
		a, ok := s.Next()
		if !ok {
			break
		}
		logged.Access(a)
		n++
	}
	return logged.Finalize(), log, nil
}
