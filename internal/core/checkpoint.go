package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"cache8t/internal/cache"
	"cache8t/internal/mem"
	"cache8t/internal/sram"
	"cache8t/internal/trace"
)

// Controller checkpointing: a Driver's complete simulation state — cache
// lines, replacement and Set-Buffer state, counters, array event ledgers,
// RNG state, and the dirty memory image — serialized at a batch boundary
// into one versioned blob, and restored into a fresh Driver that replays
// the remaining trace suffix. The contract is the repository's usual one:
// resume ≡ straight-through, byte-identical down to the flushed memory
// image (pinned by TestCheckpointResumeIdentity for every controller kind).
//
// The blob is self-describing: it embeds the cache.Config and Options it
// was captured under, so ResumeDriver needs nothing but the bytes. The
// format is versioned by ckptVersion; any layout change must bump it, and
// a decoder seeing an unknown version fails with ErrBadCheckpoint rather
// than guessing.

// ckptMagic guards against feeding arbitrary blobs to the decoder.
const ckptMagic = "c8tckpt\x00"

// ckptVersion is the snapshot layout version. Bump on any change.
const ckptVersion uint16 = 1

// Controller-specific state section tags.
const (
	ckptExtraNone     uint8 = 0 // direct and RMW controllers are stateless beyond base
	ckptExtraCoalesce uint8 = 1
	ckptExtraWG       uint8 = 2
	ckptExtraTS       uint8 = 3
)

// ErrBadCheckpoint wraps every decode failure: wrong magic, unknown
// version, truncated or corrupt payload, or a blob inconsistent with the
// stream it is resumed against. Callers fall back to a from-zero run.
var ErrBadCheckpoint = errors.New("core: bad checkpoint blob")

// CheckpointSink receives each serialized snapshot during a checkpointed
// run, together with the number of accesses simulated so far. A sink error
// aborts the run.
type CheckpointSink func(blob []byte, accesses uint64) error

// ckptWriter is a minimal append-only little-endian encoder.
type ckptWriter struct {
	buf []byte
}

func (w *ckptWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *ckptWriter) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *ckptWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *ckptWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *ckptWriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *ckptWriter) raw(b []byte) { w.buf = append(w.buf, b...) }

func (w *ckptWriter) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// ckptReader is the matching decoder. The first failure latches err and
// every later read returns zero values, so decode code can read straight
// through and check err once per section.
type ckptReader struct {
	buf []byte
	off int
	err error
}

func (r *ckptReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrBadCheckpoint, fmt.Sprintf(format, args...))
	}
}

func (r *ckptReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail("truncated at offset %d (want %d more bytes)", r.off, n)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *ckptReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *ckptReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *ckptReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *ckptReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *ckptReader) i64() int64 { return int64(r.u64()) }

func (r *ckptReader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("bool byte at offset %d is neither 0 nor 1", r.off-1)
		return false
	}
}

// baseHolder is how the codec reaches the shared controller state; every
// controller in this package gets it by embedding base.
type baseHolder interface {
	baseState() *base
}

func (b *base) baseState() *base { return b }

// Snapshot serializes the driver's complete state at the current (batch)
// boundary. cfg must be the cache.Config the run was built with: the blob
// embeds it so the resuming side can rebuild an identical cache, and the
// parts of it that are observable (geometry, allocation policy) are
// cross-checked here against the live cache.
func (d *Driver) Snapshot(cfg cache.Config) ([]byte, error) {
	bh, ok := d.ctrl.(baseHolder)
	if !ok {
		return nil, fmt.Errorf("core: controller %T cannot be checkpointed", d.ctrl)
	}
	b := bh.baseState()
	geom, err := cache.NewGeometry(cfg.SizeBytes, cfg.Ways, cfg.BlockBytes)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot config: %w", err)
	}
	if geom != b.geom {
		return nil, fmt.Errorf("core: snapshot config geometry %+v does not match the running cache %+v", geom, b.geom)
	}
	if cfg.NoWriteAllocate != b.cache.NoWriteAllocate() {
		return nil, fmt.Errorf("core: snapshot config allocation policy does not match the running cache")
	}

	w := &ckptWriter{buf: make([]byte, 0, 1<<16)}
	w.raw([]byte(ckptMagic))
	w.u16(ckptVersion)
	w.u8(uint8(b.kind))

	// Cache configuration (rebuild inputs for the resuming side).
	w.i64(int64(cfg.SizeBytes))
	w.i64(int64(cfg.Ways))
	w.i64(int64(cfg.BlockBytes))
	w.u8(uint8(cfg.Policy))
	w.u64(cfg.Seed)
	w.bool(cfg.NoWriteAllocate)

	// Controller options.
	w.i64(int64(b.opts.BufferDepth))
	w.bool(b.opts.DisableSilentElision)
	w.bool(b.opts.CountFillTraffic)

	// Progress and stream-level statistics.
	w.u64(d.fed)
	w.u64(b.requests.Reads)
	w.u64(b.requests.Writes)
	w.u64(b.requests.Instructions)

	// Controller counters.
	c := &b.counters
	for _, v := range []uint64{
		c.DemandReads, c.DemandWrites, c.TagProbes, c.TagHits,
		c.GroupedWrites, c.SilentWrites, c.SilentElidedWBs, c.PrematureWBs,
		c.BypassedReads, c.BufferFills, c.BufferWritebacks,
	} {
		w.u64(v)
	}
	for _, v := range c.GroupSizes {
		w.u64(v)
	}

	// SRAM array event ledger.
	counts := b.array.Counts()
	w.u32(uint32(len(counts)))
	for _, v := range counts {
		w.u64(v)
	}

	// Functional cache state: stats, replacement RNG, lines, policies.
	st := b.cache.Stats()
	for _, v := range []uint64{
		st.ReadHits, st.ReadMisses, st.WriteHits, st.WriteMisses,
		st.Fills, st.Evictions, st.Writebacks,
	} {
		w.u64(v)
	}
	for _, v := range b.cache.RNGState() {
		w.u64(v)
	}
	for s := 0; s < geom.Sets; s++ {
		for _, l := range b.cache.Set(s) {
			writeLine(w, &l)
		}
	}
	for s := 0; s < geom.Sets; s++ {
		ps := b.cache.PolicyState(s)
		w.u32(uint32(len(ps)))
		for _, word := range ps {
			w.u32(word)
		}
	}

	// Backed memory image, in deterministic (ascending base) order.
	m := b.cache.Backing()
	bases := m.Bases()
	w.u64(uint64(len(bases)))
	chunk := make([]byte, mem.ChunkSize)
	for _, base := range bases {
		w.u64(base)
		m.Read(base, chunk)
		w.raw(chunk)
	}

	// Controller-specific state.
	switch ctrl := d.ctrl.(type) {
	case *directController, *rmwController:
		w.u8(ckptExtraNone)
	case *tsController:
		w.u8(ckptExtraTS)
		w.u64(ctrl.specReads)
	case *coalesceController:
		w.u8(ckptExtraCoalesce)
		w.bool(ctrl.pendingValid)
		w.u64(ctrl.pendingBase)
		w.bool(ctrl.pendingDirty)
	case *wgController:
		w.u8(ckptExtraWG)
		w.u32(uint32(len(ctrl.buffers)))
		for i := range ctrl.buffers {
			sb := &ctrl.buffers[i]
			w.bool(sb.valid)
			if !sb.valid {
				continue
			}
			w.i64(int64(sb.set))
			w.bool(sb.dirty)
			w.u64(sb.writes)
			for j := range sb.lines {
				writeLine(w, &sb.lines[j])
			}
		}
	default:
		return nil, fmt.Errorf("core: controller %T cannot be checkpointed", d.ctrl)
	}
	return w.buf, nil
}

func writeLine(w *ckptWriter, l *cache.Line) {
	w.u64(l.Tag)
	w.bool(l.Valid)
	w.bool(l.Dirty)
	w.raw(l.Data)
}

func readLineInto(r *ckptReader, l *cache.Line, blockBytes int) {
	l.Tag = r.u64()
	l.Valid = r.bool()
	l.Dirty = r.bool()
	copy(l.Data, r.take(blockBytes))
}

// ResumeDriver reconstructs a Driver — controller, cache, replacement
// state, and memory image included — from a Snapshot blob. It returns the
// cache.Config the snapshot was captured under and how many accesses had
// been fed at capture time; the caller must skip exactly that many
// accesses of the identical stream before feeding the rest. Any
// malformation yields an error wrapping ErrBadCheckpoint.
func ResumeDriver(blob []byte) (*Driver, cache.Config, uint64, error) {
	fail := func(err error) (*Driver, cache.Config, uint64, error) {
		return nil, cache.Config{}, 0, err
	}
	r := &ckptReader{buf: blob}
	if string(r.take(len(ckptMagic))) != ckptMagic {
		r.fail("magic mismatch")
		return fail(r.err)
	}
	if v := r.u16(); r.err == nil && v != ckptVersion {
		return fail(fmt.Errorf("%w: snapshot version %d, this build reads %d", ErrBadCheckpoint, v, ckptVersion))
	}
	kind := Kind(r.u8())

	cfg := cache.Config{
		SizeBytes:  int(r.i64()),
		Ways:       int(r.i64()),
		BlockBytes: int(r.i64()),
		Policy:     cache.PolicyKind(r.u8()),
		Seed:       r.u64(),
	}
	cfg.NoWriteAllocate = r.bool()

	var opts Options
	opts.BufferDepth = int(r.i64())
	opts.DisableSilentElision = r.bool()
	opts.CountFillTraffic = r.bool()

	fed := r.u64()
	var requests trace.Stats
	requests.Reads = r.u64()
	requests.Writes = r.u64()
	requests.Instructions = r.u64()

	var counters Counters
	for _, p := range []*uint64{
		&counters.DemandReads, &counters.DemandWrites, &counters.TagProbes, &counters.TagHits,
		&counters.GroupedWrites, &counters.SilentWrites, &counters.SilentElidedWBs, &counters.PrematureWBs,
		&counters.BypassedReads, &counters.BufferFills, &counters.BufferWritebacks,
	} {
		*p = r.u64()
	}
	for i := range counters.GroupSizes {
		counters.GroupSizes[i] = r.u64()
	}

	var arrayCounts [sram.NumEvents]uint64
	if n := r.u32(); r.err == nil && int(n) != len(arrayCounts) {
		return fail(fmt.Errorf("%w: snapshot has %d array events, this build has %d", ErrBadCheckpoint, n, len(arrayCounts)))
	}
	for i := range arrayCounts {
		arrayCounts[i] = r.u64()
	}

	var stats cache.Stats
	for _, p := range []*uint64{
		&stats.ReadHits, &stats.ReadMisses, &stats.WriteHits, &stats.WriteMisses,
		&stats.Fills, &stats.Evictions, &stats.Writebacks,
	} {
		*p = r.u64()
	}
	var rngState [4]uint64
	for i := range rngState {
		rngState[i] = r.u64()
	}
	if r.err != nil {
		return fail(r.err)
	}

	// Rebuild the substrate; cache.New validates the embedded geometry.
	c, err := cache.New(cfg, mem.New())
	if err != nil {
		return fail(fmt.Errorf("%w: %v", ErrBadCheckpoint, err))
	}
	geom := c.Geometry()
	c.RestoreStats(stats)
	c.RestoreRNGState(rngState)
	for s := 0; s < geom.Sets; s++ {
		lines := c.Set(s)
		for w := range lines {
			readLineInto(r, &lines[w], geom.BlockBytes)
		}
	}
	for s := 0; s < geom.Sets; s++ {
		n := r.u32()
		if r.err == nil && int(n) > geom.Ways {
			return fail(fmt.Errorf("%w: policy state for set %d has %d words for %d ways", ErrBadCheckpoint, s, n, geom.Ways))
		}
		if r.err != nil {
			return fail(r.err)
		}
		ps := make([]uint32, n)
		for i := range ps {
			ps[i] = r.u32()
		}
		if r.err != nil {
			return fail(r.err)
		}
		if err := c.RestorePolicyState(s, ps); err != nil {
			return fail(fmt.Errorf("%w: %v", ErrBadCheckpoint, err))
		}
	}

	m := c.Backing()
	nChunks := r.u64()
	for i := uint64(0); i < nChunks; i++ {
		base := r.u64()
		chunk := r.take(mem.ChunkSize)
		if r.err != nil {
			return fail(r.err)
		}
		m.Write(base, chunk)
	}

	ctrl, err := New(kind, c, opts)
	if err != nil {
		return fail(fmt.Errorf("%w: %v", ErrBadCheckpoint, err))
	}
	bh := ctrl.(baseHolder).baseState()
	bh.requests = requests
	bh.counters = counters
	bh.array.RestoreCounts(arrayCounts)

	extra := r.u8()
	switch ctrl := ctrl.(type) {
	case *directController, *rmwController:
		if r.err == nil && extra != ckptExtraNone {
			return fail(fmt.Errorf("%w: unexpected state section %d for %v", ErrBadCheckpoint, extra, kind))
		}
	case *tsController:
		if r.err == nil && extra != ckptExtraTS {
			return fail(fmt.Errorf("%w: unexpected state section %d for %v", ErrBadCheckpoint, extra, kind))
		}
		ctrl.specReads = r.u64()
	case *coalesceController:
		if r.err == nil && extra != ckptExtraCoalesce {
			return fail(fmt.Errorf("%w: unexpected state section %d for %v", ErrBadCheckpoint, extra, kind))
		}
		ctrl.pendingValid = r.bool()
		ctrl.pendingBase = r.u64()
		ctrl.pendingDirty = r.bool()
	case *wgController:
		if r.err == nil && extra != ckptExtraWG {
			return fail(fmt.Errorf("%w: unexpected state section %d for %v", ErrBadCheckpoint, extra, kind))
		}
		if n := r.u32(); r.err == nil && int(n) != len(ctrl.buffers) {
			return fail(fmt.Errorf("%w: snapshot has %d Set-Buffer entries, options build %d", ErrBadCheckpoint, n, len(ctrl.buffers)))
		}
		for i := range ctrl.buffers {
			sb := &ctrl.buffers[i]
			sb.valid = r.bool()
			if r.err != nil || !sb.valid {
				continue
			}
			sb.set = int(r.i64())
			sb.dirty = r.bool()
			sb.writes = r.u64()
			if r.err == nil && (sb.set < 0 || sb.set >= geom.Sets) {
				return fail(fmt.Errorf("%w: Set-Buffer entry %d holds out-of-range set %d", ErrBadCheckpoint, i, sb.set))
			}
			sb.lines = make([]cache.Line, geom.Ways)
			data := make([]byte, geom.Ways*geom.BlockBytes)
			for w := range sb.lines {
				sb.lines[w].Data, data = data[:geom.BlockBytes], data[geom.BlockBytes:]
				readLineInto(r, &sb.lines[w], geom.BlockBytes)
			}
		}
	}
	if r.err != nil {
		return fail(r.err)
	}
	if r.off != len(r.buf) {
		return fail(fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoint, len(r.buf)-r.off))
	}

	d := NewDriver(ctrl)
	d.fed = fed
	return d, cfg, fed, nil
}

// RunStreamCheckpointedContext is RunStreamContext plus periodic snapshots:
// after every `every`-th fed batch the driver's state is serialized and
// handed to sink. every <= 0 or a nil sink disables checkpointing, making
// this exactly RunStreamContext.
func RunStreamCheckpointedContext(ctx context.Context, kind Kind, cfg cache.Config, opts Options, s trace.Stream, max, batchSize, every int, sink CheckpointSink) (Result, error) {
	c, err := cache.New(cfg, mem.New())
	if err != nil {
		return Result{}, err
	}
	ctrl, err := New(kind, c, opts)
	if err != nil {
		return Result{}, err
	}
	return runCheckpointed(ctx, NewDriver(ctrl), cfg, s, max, batchSize, 0, every, sink)
}

// ResumeStreamContext restores a snapshot and replays the remaining suffix
// of s, which must be the identical stream (same workload, same seed, same
// bound) the snapshot's run was fed. Checkpointing continues via every and
// sink, like RunStreamCheckpointedContext. The returned Result is
// byte-identical to what the uninterrupted run would have produced.
func ResumeStreamContext(ctx context.Context, blob []byte, s trace.Stream, max, batchSize, every int, sink CheckpointSink) (Result, error) {
	d, cfg, fed, err := ResumeDriver(blob)
	if err != nil {
		return Result{}, err
	}
	if max > 0 && fed > uint64(max) {
		return Result{}, fmt.Errorf("%w: snapshot is %d accesses in, past the %d-access budget", ErrBadCheckpoint, fed, max)
	}
	return runCheckpointed(ctx, d, cfg, s, max, batchSize, fed, every, sink)
}

// runCheckpointed is the shared drive loop: skip the already-simulated
// prefix (resume), feed the rest batch by batch, snapshot every `every`
// fed batches.
func runCheckpointed(ctx context.Context, d *Driver, cfg cache.Config, s trace.Stream, max, batchSize int, skip uint64, every int, sink CheckpointSink) (Result, error) {
	if max > 0 {
		s = trace.NewLimit(s, uint64(max))
	}
	b := trace.NewBatcher(s, batchSizeFor(max, batchSize))
	fedBatches := 0
	for {
		if ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
		batch, ok := b.Next()
		if !ok {
			break
		}
		if skip > 0 {
			if uint64(len(batch)) <= skip {
				skip -= uint64(len(batch))
				continue
			}
			batch = batch[skip:]
			skip = 0
		}
		d.Feed(batch)
		fedBatches++
		if every > 0 && sink != nil && fedBatches%every == 0 {
			blob, err := d.Snapshot(cfg)
			if err != nil {
				return Result{}, err
			}
			if err := sink(blob, d.Accesses()); err != nil {
				return Result{}, fmt.Errorf("core: checkpoint sink: %w", err)
			}
		}
	}
	if err := b.Err(); err != nil {
		return Result{}, &StreamError{Accesses: d.Accesses(), Err: err}
	}
	if skip > 0 {
		return Result{}, fmt.Errorf("%w: stream ended %d accesses short of the snapshot position", ErrBadCheckpoint, skip)
	}
	return d.Finish(), nil
}
