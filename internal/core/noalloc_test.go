package core

import (
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/trace"
)

func noAllocCfg() cache.Config {
	cfg := smallCfg()
	cfg.NoWriteAllocate = true
	return cfg
}

func TestNoAllocEquivalenceAcrossControllers(t *testing.T) {
	// The architectural contract holds under write-around too.
	for seed := uint64(120); seed < 125; seed++ {
		stream := randomStream(seed, 5000, 8192)
		for _, k := range []Kind{Conventional, WordGranularity, Coalesce, WG, WGRB} {
			if err := VerifyEquivalence(RMW, k, noAllocCfg(), Options{}, stream); err != nil {
				t.Errorf("seed %d %v: %v", seed, k, err)
			}
		}
	}
}

func TestNoAllocWriteMissBypassesArray(t *testing.T) {
	stream := []trace.Access{
		{Kind: trace.Write, Addr: 0x100, Size: 8, Data: 42}, // miss: write-around
		{Kind: trace.Read, Addr: 0x100, Size: 8},            // miss: fills, reads 42
	}
	res, err := Run(RMW, noAllocCfg(), Options{}, trace.FromSlice(stream), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Only the read touched the array.
	if res.ArrayAccesses() != 1 || res.ArrayWrites != 0 {
		t.Errorf("accesses = %d reads / %d writes, want 1/0", res.ArrayReads, res.ArrayWrites)
	}
	if res.Cache.WriteMisses != 1 {
		t.Errorf("write misses = %d", res.Cache.WriteMisses)
	}
	// Value visible after the fill.
	c, _ := cache.New(noAllocCfg(), newMem())
	ctrl, _ := New(WGRB, c, Options{})
	ctrl.Access(stream[0])
	if got := ctrl.Access(stream[1]); got != 42 {
		t.Errorf("read after write-around = %d", got)
	}
}

func TestNoAllocWriteHitStillGroups(t *testing.T) {
	// Resident writes behave exactly as under allocate: fill once, group.
	stream := []trace.Access{
		{Kind: trace.Read, Addr: 0, Size: 8}, // bring the block in
		{Kind: trace.Write, Addr: 0, Size: 8, Data: 1},
		{Kind: trace.Write, Addr: 8, Size: 8, Data: 2},
		{Kind: trace.Write, Addr: 16, Size: 8, Data: 3},
	}
	res, err := Run(WG, noAllocCfg(), Options{}, trace.FromSlice(stream), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.GroupedWrites != 2 || res.Counters.BufferFills != 1 {
		t.Errorf("counters = %+v", res.Counters)
	}
}

func TestNoAllocReducesWriteTraffic(t *testing.T) {
	// On a miss-heavy stream, write-around removes RMWs that allocate-mode
	// must perform.
	stream := randomStream(130, 6000, 1<<20) // huge footprint: mostly misses
	alloc, err := Run(RMW, smallCfg(), Options{}, trace.FromSlice(stream), 0)
	if err != nil {
		t.Fatal(err)
	}
	noalloc, err := Run(RMW, noAllocCfg(), Options{}, trace.FromSlice(stream), 0)
	if err != nil {
		t.Fatal(err)
	}
	if noalloc.ArrayWrites >= alloc.ArrayWrites {
		t.Errorf("no-allocate writes %d not below allocate %d",
			noalloc.ArrayWrites, alloc.ArrayWrites)
	}
}

func TestNoAllocStraddlingWriteAround(t *testing.T) {
	g := cache.MustGeometry(1024, 2, 32)
	straddle := uint64(g.BlockBytes - 4)
	stream := []trace.Access{
		{Kind: trace.Read, Addr: uint64(g.BlockBytes), Size: 8},                // second block resident
		{Kind: trace.Write, Addr: straddle, Size: 8, Data: 0xa1b2c3d4e5f60718}, // first block miss
		{Kind: trace.Read, Addr: straddle, Size: 8},
	}
	for _, k := range []Kind{RMW, WG, WGRB, Coalesce, Conventional} {
		if err := VerifyEquivalence(RMW, k, noAllocCfg(), Options{}, stream); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
	c, _ := cache.New(noAllocCfg(), newMem())
	ctrl, _ := New(WG, c, Options{})
	var last uint64
	for _, a := range stream {
		last = ctrl.Access(a)
	}
	if last != 0xa1b2c3d4e5f60718 {
		t.Errorf("straddling write-around read back %#x", last)
	}
}
