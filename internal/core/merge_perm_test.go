package core

import (
	"context"
	"fmt"
	"testing"

	"cache8t/internal/rng"
	"cache8t/internal/trace"
)

func TestMergeResultsPermutationInvariant(t *testing.T) {
	// The property the sweep coordinator's merge rests on one level down:
	// MergeResults is order-independent — any permutation of the per-shard
	// parts (any dispatch/completion order) merges to the identical
	// aggregate, events ledger included. Quick-check style: random route,
	// random permutations, every set-local kind.
	const shards = 5
	stream := randomStream(11, 5000, 8192)
	for _, k := range setLocalKinds(t) {
		r, err := newShardRun(k, smallCfg(), Options{}, shards)
		if err != nil {
			t.Fatal(err)
		}
		route := rng.New(17)
		for set := range r.route {
			r.route[set] = route.Intn(shards)
		}
		if err := r.run(context.Background(), trace.FromSlice(stream), 0, 512); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		parts := make([]Result, shards)
		for i, ctrl := range r.ctrls {
			parts[i] = ctrl.Finalize()
		}
		base, err := MergeResults(parts)
		if err != nil {
			t.Fatal(err)
		}
		pr := rng.New(29)
		for trial := 0; trial < 20; trial++ {
			perm := make([]Result, shards)
			copy(perm, parts)
			for i := len(perm) - 1; i > 0; i-- {
				j := pr.Intn(i + 1)
				perm[i], perm[j] = perm[j], perm[i]
			}
			got, err := MergeResults(perm)
			if err != nil {
				t.Fatalf("%v trial %d: %v", k, trial, err)
			}
			requireResultsEqual(t, fmt.Sprintf("%v permutation trial %d", k, trial), got, base)
		}
	}
}
