package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/sram"
	"cache8t/internal/trace"
)

// sameResult compares two run results field-for-field, ignoring only the
// event-ledger pointer identity (its counts are compared instead). Streamed
// runs must be *identical* to materialized runs, not merely close.
func sameResult(t *testing.T, got, want Result) {
	t.Helper()
	gc, wc := got, want
	gc.Events, wc.Events = nil, nil
	if !reflect.DeepEqual(gc, wc) {
		t.Fatalf("result mismatch:\n got %+v\nwant %+v", gc, wc)
	}
	if got.Events == nil || want.Events == nil {
		t.Fatal("missing event ledger")
	}
	for _, e := range sram.Events() {
		if got.Events.Count(e) != want.Events.Count(e) {
			t.Fatalf("event %v: got %d, want %d", e, got.Events.Count(e), want.Events.Count(e))
		}
	}
}

func TestRunStreamMatchesRunAllKindsAllBatchSizes(t *testing.T) {
	accs := randomStream(11, 6000, 8192)
	for _, kind := range Kinds() {
		want, err := Run(kind, smallCfg(), Options{}, trace.FromSlice(accs), 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, bs := range []int{1, 7, 512, 4096, 0} {
			got, err := RunStream(kind, smallCfg(), Options{}, trace.FromSlice(accs), 0, bs)
			if err != nil {
				t.Fatalf("%v batch %d: %v", kind, bs, err)
			}
			sameResult(t, got, want)
		}
	}
}

func TestRunStreamHonorsMax(t *testing.T) {
	accs := randomStream(12, 5000, 8192)
	const max = 1234
	want, err := Run(WG, smallCfg(), Options{}, trace.FromSlice(accs[:max]), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunStream(WG, smallCfg(), Options{}, trace.FromSlice(accs), max, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, want)
	if got.Requests.Accesses() != max {
		t.Fatalf("streamed %d accesses, want %d", got.Requests.Accesses(), max)
	}
}

func TestRunStreamOverBinaryTraceMatchesSlice(t *testing.T) {
	accs := randomStream(13, 3000, 8192)
	var buf bytes.Buffer
	if _, err := trace.WriteAll(&buf, trace.FromSlice(accs), 0); err != nil {
		t.Fatal(err)
	}
	want, err := Run(WGRB, smallCfg(), Options{}, trace.FromSlice(accs), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunStream(WGRB, smallCfg(), Options{}, trace.NewReader(&buf), 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, want)
}

func TestRunStreamSurfacesDecodeError(t *testing.T) {
	accs := randomStream(14, 2000, 8192)
	var buf bytes.Buffer
	if _, err := trace.WriteAll(&buf, trace.FromSlice(accs), 0); err != nil {
		t.Fatal(err)
	}
	// Dropping one byte always cuts mid-record (the shortest record is
	// several bytes), so the decode must fail rather than end cleanly.
	truncated := buf.Bytes()[:buf.Len()-1]
	_, err := RunStream(RMW, smallCfg(), Options{}, trace.NewReader(bytes.NewReader(truncated)), 0, 128)
	var se *StreamError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StreamError", err)
	}
	if !errors.Is(se, io.ErrUnexpectedEOF) {
		t.Fatalf("unwrapped err = %v, want unexpected EOF", se.Err)
	}
	if se.Accesses == 0 || se.Accesses >= uint64(len(accs)) {
		t.Fatalf("StreamError.Accesses = %d out of (0, %d)", se.Accesses, len(accs))
	}
}

func TestRunStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunStreamContext(ctx, RMW, smallCfg(), Options{},
		trace.FromSlice(randomStream(15, 100, 4096)), 0, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunEachStreamMatchesRunAll(t *testing.T) {
	accs := randomStream(16, 4000, 8192)
	kinds := Kinds()
	want, err := RunAll(kinds, smallCfg(), Options{}, accs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunEachStream(context.Background(), kinds, smallCfg(), Options{},
		func() (trace.Stream, error) { return trace.FromSlice(accs), nil }, 0, 333)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		sameResult(t, got[i], want[i])
	}
}

func TestRunEachStreamPropagatesOpenError(t *testing.T) {
	wantErr := errors.New("open failed")
	_, err := RunEachStream(context.Background(), []Kind{RMW}, smallCfg(), Options{},
		func() (trace.Stream, error) { return nil, wantErr }, 0, 0)
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestDriverCountsFeeds(t *testing.T) {
	accs := randomStream(17, 100, 4096)
	c, err := cache.New(smallCfg(), newMem())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(WG, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(ctrl)
	d.Feed(accs[:40])
	d.Feed(accs[40:])
	if d.Accesses() != uint64(len(accs)) {
		t.Fatalf("Accesses = %d, want %d", d.Accesses(), len(accs))
	}
	r := d.Finish()
	if r.Requests.Accesses() != uint64(len(accs)) {
		t.Fatalf("finalized %d requests, want %d", r.Requests.Accesses(), len(accs))
	}
}
