package core

import (
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/trace"
)

func TestLoggedControllerRecordsPerRequestOps(t *testing.T) {
	cfg := smallCfg()
	c, err := cache.New(cfg, newMem())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(RMW, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Kind() != RMW {
		t.Fatalf("Kind = %v", ctrl.Kind())
	}
	var log []PortOp
	logged, err := NewLogged(ctrl, &log)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Geometry()
	logged.Access(trace.Access{Kind: trace.Write, Addr: 0, Size: 8, Data: 1, Gap: 3})
	logged.Access(trace.Access{Kind: trace.Read, Addr: uint64(5 * g.BlockBytes), Size: 8, Gap: 1})
	if len(log) != 2 {
		t.Fatalf("logged %d ops", len(log))
	}
	w, r := log[0], log[1]
	if w.IsRead || w.ReadRows != 1 || w.WriteRows != 1 || w.Gap != 3 {
		t.Errorf("write op = %+v", w)
	}
	if !r.IsRead || r.ReadRows != 1 || r.WriteRows != 0 || r.Gap != 1 {
		t.Errorf("read op = %+v", r)
	}
	// Bank = set / rowsPerBank with 4 sub-arrays over 16 sets -> 4 rows/bank.
	if want := uint16(5 / (g.Sets / 4)); r.Bank != want {
		t.Errorf("read bank = %d, want %d", r.Bank, want)
	}
	logged.Finalize()
}

func TestRunLoggedBasics(t *testing.T) {
	stream := randomStream(7, 500, 4096)
	res, log, err := RunLogged(WGRB, smallCfg(), Options{}, trace.FromSlice(stream), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != len(stream) {
		t.Fatalf("logged %d ops for %d accesses", len(log), len(stream))
	}
	var bypassed int
	for _, op := range log {
		if op.IsRead && op.SetBufOps > 0 {
			bypassed++
		}
	}
	if uint64(bypassed) != res.Counters.BypassedReads {
		t.Errorf("logged bypasses %d != counter %d", bypassed, res.Counters.BypassedReads)
	}
	// Bad config propagates.
	bad := smallCfg()
	bad.Ways = 3
	if _, _, err := RunLogged(RMW, bad, Options{}, trace.FromSlice(stream), 0); err == nil {
		t.Error("bad config accepted")
	}
	if _, _, err := RunLogged(Kind(99), smallCfg(), Options{}, trace.FromSlice(stream), 0); err == nil {
		t.Error("bad kind accepted")
	}
}
