package core

import (
	"context"
	"fmt"
	"sync"

	"cache8t/internal/cache"
	"cache8t/internal/mem"
	"cache8t/internal/trace"
)

// Driver feeds batches of accesses into one Controller. It is the hot inner
// loop of the streaming pipeline: the per-access Stream interface dispatch,
// the context poll, and the access budget all live at batch granularity, so
// the controller's Access method is the only per-access work left.
//
// A Driver never holds more than one batch of the trace; memory stays
// constant no matter how long the stream is.
type Driver struct {
	ctrl Controller
	fed  uint64
}

// NewDriver wraps a controller for batched feeding.
func NewDriver(ctrl Controller) *Driver { return &Driver{ctrl: ctrl} }

// Feed runs every access of batch through the controller, in order.
func (d *Driver) Feed(batch []trace.Access) {
	for i := range batch {
		d.ctrl.Access(batch[i])
	}
	d.fed += uint64(len(batch))
}

// Accesses returns how many accesses have been fed.
func (d *Driver) Accesses() uint64 { return d.fed }

// Finish drains the controller's buffers and returns the run's Result. The
// driver (and its controller) must not be used afterwards.
func (d *Driver) Finish() Result { return d.ctrl.Finalize() }

// RunStream drives up to max accesses of s (max <= 0 drains the stream)
// through a freshly built cache and controller, pulling the stream in
// reusable batches of batchSize (<= 0 means trace.DefaultBatchSize). It is
// the streaming twin of Run: results are identical access-for-access, but
// the trace is never materialized and decode errors are returned rather than
// left on the stream.
func RunStream(kind Kind, cfg cache.Config, opts Options, s trace.Stream, max, batchSize int) (Result, error) {
	return RunStreamContext(context.Background(), kind, cfg, opts, s, max, batchSize)
}

// RunStreamContext is RunStream with cancellation, polled once per batch.
func RunStreamContext(ctx context.Context, kind Kind, cfg cache.Config, opts Options, s trace.Stream, max, batchSize int) (Result, error) {
	c, err := cache.New(cfg, mem.New())
	if err != nil {
		return Result{}, err
	}
	ctrl, err := New(kind, c, opts)
	if err != nil {
		return Result{}, err
	}
	if max > 0 {
		s = trace.NewLimit(s, uint64(max))
	}
	d := NewDriver(ctrl)
	b := trace.NewBatcher(s, batchSizeFor(max, batchSize))
	for {
		if ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
		batch, ok := b.Next()
		if !ok {
			break
		}
		d.Feed(batch)
	}
	if err := b.Err(); err != nil {
		return Result{}, &StreamError{Accesses: d.Accesses(), Err: err}
	}
	return d.Finish(), nil
}

// RunEachStream runs every kind over one shared decode of the stream: open
// is called once, a trace.Broadcast fans the batches out, and each kind's
// controller consumes them on its own goroutine. Results are byte-identical
// to RunEachStreamSerial (and so to RunAll over the materialized accesses)
// because every controller sees the exact same access sequence — but a
// seven-kind comparison decodes its gzip trace once instead of seven times,
// and no kind ever holds the full trace.
func RunEachStream(ctx context.Context, kinds []Kind, cfg cache.Config, opts Options, open func() (trace.Stream, error), max, batchSize int) ([]Result, error) {
	if len(kinds) <= 1 {
		return RunEachStreamSerial(ctx, kinds, cfg, opts, open, max, batchSize)
	}
	// Build every controller before opening the stream, so construction
	// errors surface without spinning up the decoder.
	drivers := make([]*Driver, len(kinds))
	for i, k := range kinds {
		c, err := cache.New(cfg, mem.New())
		if err != nil {
			return nil, err
		}
		ctrl, err := New(k, c, opts)
		if err != nil {
			return nil, err
		}
		drivers[i] = NewDriver(ctrl)
	}
	s, err := open()
	if err != nil {
		return nil, err
	}
	if max > 0 {
		s = trace.NewLimit(s, uint64(max))
	}
	bc := trace.NewBroadcast(s, batchSizeFor(max, batchSize), len(kinds), 0)
	errs := make([]error, len(kinds))
	var wg sync.WaitGroup
	for i := range kinds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub := bc.Sub(i)
			for {
				if err := ctx.Err(); err != nil {
					sub.Stop()
					errs[i] = err
					return
				}
				batch, ok := sub.Next()
				if !ok {
					return
				}
				drivers[i].Feed(batch)
			}
		}(i)
	}
	wg.Wait()
	bc.Stop()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := bc.Err(); err != nil {
		return nil, &StreamError{Accesses: drivers[0].Accesses(), Err: err}
	}
	out := make([]Result, len(kinds))
	for i, d := range drivers {
		out[i] = d.Finish()
	}
	return out, nil
}

// RunEachStreamSerial is the one-kind-at-a-time fallback behind
// RunEachStream: each kind gets its own fresh stream from open and runs to
// completion before the next starts. Callers guarantee open yields identical
// streams (a deterministic generator re-seeded per call, or a replayed
// slice). It trades the broadcast's single decode for minimal concurrency —
// and is the reference the broadcast path is tested byte-identical against.
func RunEachStreamSerial(ctx context.Context, kinds []Kind, cfg cache.Config, opts Options, open func() (trace.Stream, error), max, batchSize int) ([]Result, error) {
	out := make([]Result, len(kinds))
	for i, k := range kinds {
		s, err := open()
		if err != nil {
			return nil, err
		}
		out[i], err = RunStreamContext(ctx, k, cfg, opts, s, max, batchSize)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// batchSizeFor resolves a requested batch size against an access budget:
// size <= 0 means trace.DefaultBatchSize, and a bounded run never buffers
// more than its budget.
func batchSizeFor(max, size int) int {
	if size <= 0 {
		size = trace.DefaultBatchSize
	}
	if max > 0 && size > max {
		size = max
	}
	return size
}

// StreamError reports a trace decode failure mid-run, with how many accesses
// simulated cleanly before it.
type StreamError struct {
	Accesses uint64
	Err      error
}

// Error implements error.
func (e *StreamError) Error() string {
	return fmt.Sprintf("core: trace decode failed after %d accesses: %v", e.Accesses, e.Err)
}

// Unwrap exposes the decode error.
func (e *StreamError) Unwrap() error { return e.Err }
