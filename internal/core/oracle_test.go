package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/trace"
)

// This file is the differential oracle suite: a naive reference cache model,
// written independently of internal/cache (its own index arithmetic, its own
// LRU, a plain byte-map memory), replayed access-by-access against every
// controller. The controllers may differ arbitrarily in *array traffic* — the
// paper's subject — but must be functionally indistinguishable from the
// reference: same value per access, same final tag/valid/dirty/data state,
// same functional hit/miss/writeback statistics, same memory image.

// refLine is one block in the reference model.
type refLine struct {
	valid bool
	dirty bool
	tag   uint64
	data  []byte
}

// refModel is the oracle: a write-allocate, write-back, true-LRU
// set-associative cache over a sparse byte memory. It is deliberately naive —
// O(ways) scans, byte-at-a-time data movement, division instead of bit
// tricks — so a shared bug with the optimized implementation is implausible.
type refModel struct {
	blockBytes uint64
	sets       int
	ways       int
	mem        map[uint64]byte
	lines      [][]refLine
	order      [][]int // per-set way order, most recently used first
	stats      cache.Stats
}

func newRefModel(cfg cache.Config) *refModel {
	sets := cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes)
	m := &refModel{
		blockBytes: uint64(cfg.BlockBytes),
		sets:       sets,
		ways:       cfg.Ways,
		mem:        map[uint64]byte{},
		lines:      make([][]refLine, sets),
		order:      make([][]int, sets),
	}
	for s := range m.lines {
		m.lines[s] = make([]refLine, cfg.Ways)
		for w := range m.lines[s] {
			m.lines[s][w].data = make([]byte, cfg.BlockBytes)
		}
		m.order[s] = make([]int, cfg.Ways)
		for w := range m.order[s] {
			m.order[s][w] = w
		}
	}
	return m
}

func (m *refModel) setOf(addr uint64) int    { return int((addr / m.blockBytes) % uint64(m.sets)) }
func (m *refModel) tagOf(addr uint64) uint64 { return (addr / m.blockBytes) / uint64(m.sets) }
func (m *refModel) baseOf(addr uint64) uint64 {
	return addr - addr%m.blockBytes
}

// lineBase reconstructs the block address a (set, tag) pair names.
func (m *refModel) lineBase(set int, tag uint64) uint64 {
	return (tag*uint64(m.sets) + uint64(set)) * m.blockBytes
}

func (m *refModel) touch(set, way int) {
	ord := m.order[set]
	for i, w := range ord {
		if w == way {
			copy(ord[1:i+1], ord[:i])
			ord[0] = way
			return
		}
	}
}

// fill victimizes a way (first invalid in way order, else true-LRU) and loads
// the block at base from memory.
func (m *refModel) fill(set int, tag, base uint64) int {
	way := -1
	for w := range m.lines[set] {
		if !m.lines[set][w].valid {
			way = w
			break
		}
	}
	if way < 0 {
		ord := m.order[set]
		way = ord[len(ord)-1]
		l := &m.lines[set][way]
		if l.dirty {
			wb := m.lineBase(set, l.tag)
			for i, b := range l.data {
				m.mem[wb+uint64(i)] = b
			}
			m.stats.Writebacks++
		}
		l.valid = false
		l.dirty = false
		m.stats.Evictions++
	}
	l := &m.lines[set][way]
	for i := range l.data {
		l.data[i] = m.mem[base+uint64(i)]
	}
	l.tag = tag
	l.valid = true
	l.dirty = false
	m.stats.Fills++
	m.touch(set, way)
	return way
}

// access replays one aligned request and returns the architectural value:
// the bytes read, or the bytes now stored.
func (m *refModel) access(a trace.Access) uint64 {
	set, tag := m.setOf(a.Addr), m.tagOf(a.Addr)
	way := -1
	for w := range m.lines[set] {
		if l := &m.lines[set][w]; l.valid && l.tag == tag {
			way = w
			break
		}
	}
	isWrite := a.Kind == trace.Write
	switch {
	case way >= 0 && isWrite:
		m.stats.WriteHits++
	case way >= 0:
		m.stats.ReadHits++
	case isWrite:
		m.stats.WriteMisses++
	default:
		m.stats.ReadMisses++
	}
	if way >= 0 {
		m.touch(set, way)
	} else {
		way = m.fill(set, tag, m.baseOf(a.Addr))
	}
	l := &m.lines[set][way]
	off := int(a.Addr % m.blockBytes)
	var buf [8]byte
	if !isWrite {
		copy(buf[:a.Size], l.data[off:])
		return binary.LittleEndian.Uint64(buf[:])
	}
	binary.LittleEndian.PutUint64(buf[:], a.Data)
	for i := 0; i < int(a.Size); i++ {
		if l.data[off+i] != buf[i] {
			l.data[off+i] = buf[i]
			l.dirty = true
		}
	}
	return a.Data & sizeMask(a.Size)
}

// peekByte returns the freshest architectural byte at addr.
func (m *refModel) peekByte(addr uint64) byte {
	set, tag := m.setOf(addr), m.tagOf(addr)
	for w := range m.lines[set] {
		if l := &m.lines[set][w]; l.valid && l.tag == tag {
			return l.data[addr%m.blockBytes]
		}
	}
	return m.mem[addr]
}

// oracleCase is one (controller, options) configuration under test.
type oracleCase struct {
	kind Kind
	opts Options
	name string
}

func oracleCases() []oracleCase {
	var cases []oracleCase
	for _, k := range Kinds() {
		cases = append(cases, oracleCase{kind: k, name: k.String()})
	}
	// The Set-Buffer ablations exercise the paths most likely to corrupt
	// state: multi-entry MRU rotation and unconditional (never-elided)
	// write-backs.
	cases = append(cases,
		oracleCase{kind: WG, opts: Options{BufferDepth: 4}, name: "WG/depth4"},
		oracleCase{kind: WGRB, opts: Options{BufferDepth: 2}, name: "WG+RB/depth2"},
		oracleCase{kind: WG, opts: Options{DisableSilentElision: true}, name: "WG/nosilent"},
	)
	return cases
}

// TestOracleDifferential replays seeded random traces through every
// controller and the reference model in lockstep, then audits the final
// cache state and memory image byte by byte.
func TestOracleDifferential(t *testing.T) {
	cfg := smallCfg()
	for _, oc := range oracleCases() {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", oc.name, seed), func(t *testing.T) {
				accs := randomStream(seed, 4000, 1<<13)
				c, err := cache.New(cfg, newMem())
				if err != nil {
					t.Fatal(err)
				}
				ctrl, err := New(oc.kind, c, oc.opts)
				if err != nil {
					t.Fatal(err)
				}
				model := newRefModel(cfg)
				for i, a := range accs {
					got := ctrl.Access(a)
					want := model.access(a)
					if got != want {
						t.Fatalf("access %d (%+v): controller returned %#x, oracle %#x", i, a, got, want)
					}
				}
				res := ctrl.Finalize()

				if got, want := c.Stats(), model.stats; got != want {
					t.Errorf("functional stats diverged: controller %+v, oracle %+v", got, want)
				}
				if res.Cache != model.stats {
					t.Errorf("result stats diverged: %+v vs oracle %+v", res.Cache, model.stats)
				}
				for s := 0; s < model.sets; s++ {
					snap := c.SnapshotSet(s)
					for w := range snap {
						ref := &model.lines[s][w]
						if snap[w].Valid != ref.valid {
							t.Fatalf("set %d way %d: valid %v, oracle %v", s, w, snap[w].Valid, ref.valid)
						}
						if !ref.valid {
							continue
						}
						if snap[w].Tag != ref.tag {
							t.Fatalf("set %d way %d: tag %#x, oracle %#x", s, w, snap[w].Tag, ref.tag)
						}
						if snap[w].Dirty != ref.dirty {
							t.Fatalf("set %d way %d (tag %#x): dirty %v, oracle %v", s, w, ref.tag, snap[w].Dirty, ref.dirty)
						}
						if !bytes.Equal(snap[w].Data, ref.data) {
							t.Fatalf("set %d way %d (tag %#x): line data diverged", s, w, ref.tag)
						}
					}
				}
				// Memory image over every block the trace touched.
				bases := map[uint64]struct{}{}
				for _, a := range accs {
					bases[model.baseOf(a.Addr)] = struct{}{}
				}
				for base := range bases {
					for i := uint64(0); i < model.blockBytes; i++ {
						if got, want := byte(c.PeekWord(base+i, 1)), model.peekByte(base+i); got != want {
							t.Fatalf("memory image at %#x: %#x, oracle %#x", base+i, got, want)
						}
					}
				}
			})
		}
	}
}

// TestOracleArrayTrafficOrdering pins the paper's traffic hierarchy on random
// traces: Read Bypassing can only remove array accesses from Write Grouping,
// and Write Grouping can only remove them from the RMW baseline.
func TestOracleArrayTrafficOrdering(t *testing.T) {
	cfg := smallCfg()
	for seed := uint64(1); seed <= 5; seed++ {
		accs := randomStream(seed, 4000, 1<<13)
		byKind := map[Kind]Result{}
		for _, k := range []Kind{RMW, WG, WGRB} {
			res, err := Run(k, cfg, Options{}, trace.FromSlice(accs), 0)
			if err != nil {
				t.Fatal(err)
			}
			byKind[k] = res
		}
		if wg, rmw := byKind[WG].ArrayAccesses(), byKind[RMW].ArrayAccesses(); wg > rmw {
			t.Errorf("seed %d: WG array accesses %d exceed RMW's %d", seed, wg, rmw)
		}
		if wgrb, wg := byKind[WGRB].ArrayAccesses(), byKind[WG].ArrayAccesses(); wgrb > wg {
			t.Errorf("seed %d: WG+RB array accesses %d exceed WG's %d", seed, wgrb, wg)
		}
	}
}

// TestOracleSilentWritesNeverDirty replays an all-silent workload (zero
// stores against zeroed memory): no controller may dirty a line, write back
// to memory, or spend a Set-Buffer write-back on it.
func TestOracleSilentWritesNeverDirty(t *testing.T) {
	cfg := smallCfg()
	accs := randomStream(7, 3000, 1<<13)
	for i := range accs {
		accs[i].Data = 0 // every write stores the value already there
	}
	for _, k := range []Kind{RMW, WG, WGRB} {
		c, err := cache.New(cfg, newMem())
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := New(k, c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range accs {
			ctrl.Access(a)
		}
		res := ctrl.Finalize()
		if res.Cache.Writebacks != 0 {
			t.Errorf("%v: %d memory writebacks from silent-only writes", k, res.Cache.Writebacks)
		}
		if res.Counters.BufferWritebacks != 0 {
			t.Errorf("%v: %d Set-Buffer writebacks from silent-only writes", k, res.Counters.BufferWritebacks)
		}
		if k != RMW && res.Counters.SilentWrites != res.Counters.DemandWrites {
			t.Errorf("%v: only %d of %d writes detected silent", k, res.Counters.SilentWrites, res.Counters.DemandWrites)
		}
		for s := 0; s < c.Geometry().Sets; s++ {
			for w, l := range c.SnapshotSet(s) {
				if l.Valid && l.Dirty {
					t.Fatalf("%v: set %d way %d dirty after silent-only writes", k, s, w)
				}
			}
		}
	}
}
