package core

import (
	"cache8t/internal/trace"
)

// coalesceController models the obvious alternative to Write Grouping: a
// conventional block-granular coalescing write buffer in front of the RMW
// write path. Consecutive writes to the *same block* merge and cost nothing;
// any write to a different block — or a read to the pending block — flushes
// the buffer with one full RMW (the array is still bit-interleaved 8T, so a
// flush still pays the read phase).
//
// The comparison isolates WG's two structural advantages: the Set-Buffer
// works at *set* granularity (all ways of a row, so writes to different
// blocks of one set still group), and its fill/write-back split lets reads
// be bypassed (WG+RB) instead of forcing a flush. Silent-write elision is
// given to the coalescer too, to keep the comparison about granularity.
//
// Functionally, writes commit to the cache immediately; only the *array
// cost* is deferred, so architectural behaviour is identical to RMW (and is
// covered by the equivalence property tests).
type coalesceController struct {
	base
	pendingValid bool
	pendingBase  uint64 // block base address
	pendingDirty bool
}

// Access processes one request.
func (c *coalesceController) Access(a trace.Access) uint64 {
	c.note(a)
	g := c.geom
	base := g.BlockBase(a.Addr)
	straddles := g.BlockOffset(a.Addr)+int(a.Size) > g.BlockBytes

	if a.Kind == trace.Write {
		// No-write-allocate: a non-resident store bypasses array and
		// buffer alike (a straddling one drains the buffer first, since
		// its spill bytes may land in the pending block's line).
		if c.cache.NoWriteAllocate() {
			if _, _, hit := c.cache.Probe(a.Addr); !hit {
				if straddles {
					c.flushPending()
				}
				if v, ok := c.writeAround(a); ok {
					return v
				}
			}
		}
	}

	set, way, _ := c.cache.Ensure(a.Addr, a.Kind == trace.Write)
	if a.Kind == trace.Read {
		if c.pendingValid && (base == c.pendingBase || straddles) {
			c.flushPending()
		}
		c.array.ReadAccess()
		return c.cache.ReadWord(set, way, a.Addr, a.Size)
	}

	if straddles {
		// Conservative: drain and pay a full RMW for the odd access.
		c.flushPending()
		c.array.RMW()
		c.cache.WriteWord(set, way, a.Addr, a.Size, a.Data)
		return a.Data & sizeMask(a.Size)
	}

	if !c.pendingValid || base != c.pendingBase {
		c.flushPending()
		c.pendingValid = true
		c.pendingBase = base
		c.pendingDirty = false
		c.counters.BufferFills++
	} else {
		c.counters.GroupedWrites++
	}
	silent := c.cache.WriteWord(set, way, a.Addr, a.Size, a.Data)
	if silent {
		c.counters.SilentWrites++
	} else {
		c.pendingDirty = true
	}
	return a.Data & sizeMask(a.Size)
}

// flushPending retires the pending block. The merge into a bit-interleaved
// row always needs the RMW read phase (the buffer holds only one block of
// the row); only the write phase can be elided, when the read-out row shows
// every merged write was silent. This keeps silence detection honest: the
// coalescer, unlike the Set-Buffer, has no pre-paid row image to compare
// against before the flush.
func (c *coalesceController) flushPending() {
	if !c.pendingValid {
		return
	}
	c.pendingValid = false
	c.array.RMWReadPhase()
	if !c.pendingDirty {
		c.counters.SilentElidedWBs++
		return
	}
	c.array.RMWWritePhase()
	c.counters.BufferWritebacks++
}

// Finalize drains the buffer and returns the result.
func (c *coalesceController) Finalize() Result {
	c.flushPending()
	return c.finalize(false)
}
