package core

import (
	"encoding/binary"
	"fmt"

	"cache8t/internal/cache"
	"cache8t/internal/sram"
	"cache8t/internal/trace"
)

// setBuffer is one Set-Buffer entry: a copy of one whole cache set row (all
// ways, data and metadata) plus the Tag-Buffer bookkeeping the controller
// keeps for it (Figure 6b): the set number, the per-way tags (implicit in the
// line copies), and the Dirty bit.
type setBuffer struct {
	valid bool
	set   int
	lines []cache.Line
	dirty bool
	// writes counts stores merged into this buffer residency — the size of
	// the write group, recorded into the group-size histogram at eviction.
	writes uint64
}

// wgController implements Write Grouping (§4.1, Algorithm 1) and, with
// bypass set, Write Grouping + Read Bypassing (§4.2).
//
// Invariant maintained throughout: while a set is buffered, its structure in
// the cache (tags, valid bits) cannot change. Any request that would fill or
// evict within a buffered set first writes the buffer back and invalidates
// it. The paper's single-entry buffer generalizes to BufferDepth entries
// (ablation A2) kept in MRU order.
type wgController struct {
	base
	buffers []setBuffer
	bypass  bool
}

func newWGController(b base) (*wgController, error) {
	depth := b.opts.BufferDepth
	if depth == 0 {
		depth = 1
	}
	if depth < 0 {
		return nil, fmt.Errorf("core: negative Set-Buffer depth %d", depth)
	}
	return &wgController{
		base:    b,
		buffers: make([]setBuffer, depth),
		bypass:  b.kind == WGRB,
	}, nil
}

// findBuffer returns the index of the buffer holding set, or -1.
func (c *wgController) findBuffer(set int) int {
	for i := range c.buffers {
		if c.buffers[i].valid && c.buffers[i].set == set {
			return i
		}
	}
	return -1
}

// tagHit reports whether tag is resident in the buffered set.
func (c *wgController) tagHit(sb *setBuffer, tag uint64) bool {
	for w := range sb.lines {
		if sb.lines[w].Valid && sb.lines[w].Tag == tag {
			return true
		}
	}
	return false
}

// wayOf returns the way of tag within the buffered set; -1 if absent.
func (c *wgController) wayOf(sb *setBuffer, tag uint64) int {
	for w := range sb.lines {
		if sb.lines[w].Valid && sb.lines[w].Tag == tag {
			return w
		}
	}
	return -1
}

// touchMRU moves buffer i to the front of the MRU order.
func (c *wgController) touchMRU(i int) {
	if i == 0 {
		return
	}
	sb := c.buffers[i]
	copy(c.buffers[1:i+1], c.buffers[:i])
	c.buffers[0] = sb
}

// writeback performs the Set-Buffer write-back for buffer i if its Dirty bit
// is set: the buffered row is restored into the array with one row write
// (the write drivers already hold the full row, so no read phase is needed).
// A clear Dirty bit eliminates the write-back entirely — the silent-store
// optimization. The buffer stays valid either way; the caller decides
// whether to also invalidate.
func (c *wgController) writeback(i int, premature bool) {
	sb := &c.buffers[i]
	if !sb.valid {
		return
	}
	if !sb.dirty {
		c.counters.SilentElidedWBs++
		return
	}
	c.cache.RestoreSet(sb.set, sb.lines)
	c.array.RMWWritePhase()
	c.counters.BufferWritebacks++
	if premature {
		c.counters.PrematureWBs++
	}
	sb.dirty = false
}

// flush writes buffer i back and invalidates it, closing its write group.
func (c *wgController) flush(i int) {
	c.writeback(i, false)
	sb := &c.buffers[i]
	if sb.valid && sb.writes > 0 {
		c.counters.recordGroup(sb.writes)
	}
	sb.valid = false
	sb.writes = 0
}

// probeTagBuffer performs the Tag-Buffer lookup every request starts with,
// recording comparator activity (one compare per buffer entry).
func (c *wgController) probeTagBuffer(set int, tag uint64) (idx int, hit bool) {
	c.counters.TagProbes++
	c.array.Record(sram.EvTagCompare, uint64(len(c.buffers)))
	idx = c.findBuffer(set)
	if idx >= 0 && c.tagHit(&c.buffers[idx], tag) {
		c.counters.TagHits++
		return idx, true
	}
	return idx, false
}

// Access processes one request per Algorithm 1 (WG) or §4.2 (WG+RB).
func (c *wgController) Access(a trace.Access) uint64 {
	c.note(a)
	g := c.geom
	if g.BlockOffset(a.Addr)+int(a.Size) > g.BlockBytes {
		return c.straddleFallback(a)
	}
	set := g.SetIndex(a.Addr)
	tag := g.Tag(a.Addr)
	if a.Kind == trace.Read {
		return c.read(a, set, tag)
	}
	return c.write(a, set, tag)
}

func (c *wgController) read(a trace.Access, set int, tag uint64) uint64 {
	idx, hit := c.probeTagBuffer(set, tag)
	if hit {
		sb := &c.buffers[idx]
		if c.bypass {
			// WG+RB: the RB mux routes data straight from the Set-Buffer;
			// no premature write-back, no array read.
			c.counters.BypassedReads++
			c.array.Record(sram.EvSetBufRead, 1)
			c.cache.Ensure(a.Addr, false) // functional hit + LRU touch
			way := c.wayOf(sb, tag)
			val := lineReadWord(&sb.lines[way], c.geom, a.Addr, a.Size)
			c.touchMRU(idx)
			return val
		}
		// WG: the cache must be updated before the array read so the read
		// returns the freshest value (Algorithm 1: "Write-back the
		// Set-Buffer if the Dirty is set ... Read from SRAM arrays").
		c.writeback(idx, true)
		c.touchMRU(idx)
	} else if idx >= 0 {
		// The buffered set is being read with an unbuffered tag. If that
		// read misses in the cache it will evict within the buffered set,
		// so the buffer must be flushed first to keep its snapshot honest.
		if _, _, resident := c.cache.Probe(a.Addr); !resident {
			c.flush(idx)
		}
	}
	rs, rw, _ := c.cache.Ensure(a.Addr, false)
	c.array.ReadAccess()
	return c.cache.ReadWord(rs, rw, a.Addr, a.Size)
}

func (c *wgController) write(a trace.Access, set int, tag uint64) uint64 {
	idx, hit := c.probeTagBuffer(set, tag)
	if !hit {
		// Under no-write-allocate a non-resident write bypasses the array
		// (and therefore the Set-Buffer). The tag probe above has already
		// established it is not buffered.
		if v, ok := c.writeAround(a); ok {
			return v
		}
		if idx >= 0 {
			// Same set, tag not resident: the allocate below would change
			// the buffered set's structure. Flush first.
			c.flush(idx)
		}
		idx = c.allocateBuffer(a)
	} else {
		// The whole point: this write joins the buffered group without any
		// array access.
		c.counters.GroupedWrites++
		c.cache.Ensure(a.Addr, true) // functional hit + LRU touch
	}
	sb := &c.buffers[idx]
	sb.writes++
	way := c.wayOf(sb, tag)
	silent := lineWriteWord(&sb.lines[way], c.geom, a.Addr, a.Size, a.Data)
	c.array.Record(sram.EvSilentCompare, 1)
	if silent {
		c.counters.SilentWrites++
	}
	if !silent {
		sb.lines[way].Dirty = true
		sb.dirty = true
	} else if c.opts.DisableSilentElision {
		// A1 ablation: the controller has no comparators; every write
		// makes the buffer dirty.
		sb.dirty = true
	}
	c.touchMRU(idx)
	// The buffered line now holds the low Size bytes of Data verbatim
	// (straddles were diverted before buffering), so the stored value needs
	// no read-back.
	return a.Data & sizeMask(a.Size)
}

// allocateBuffer evicts the LRU Set-Buffer entry (writing it back if dirty),
// establishes residency of a's block, and fills the entry with one row read.
// Returns the entry index (always the MRU-front after touch by caller).
func (c *wgController) allocateBuffer(a trace.Access) int {
	victim := -1
	for i := range c.buffers {
		if !c.buffers[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = len(c.buffers) - 1
		c.flush(victim)
	}
	set, _, _ := c.cache.Ensure(a.Addr, true)
	c.array.RMWReadPhase() // "Fill the Set-Buffer by read row"
	c.counters.BufferFills++
	sb := &c.buffers[victim]
	// Refill in place: SnapshotSetInto reuses the entry's line buffers, so
	// steady-state buffer turnover allocates nothing.
	sb.lines = c.cache.SnapshotSetInto(set, sb.lines)
	sb.valid = true
	sb.set = set
	sb.dirty = false
	sb.writes = 0
	return victim
}

// straddleFallback handles the rare block-boundary-crossing access: flush
// everything and fall back to baseline RMW behaviour for this one request.
func (c *wgController) straddleFallback(a trace.Access) uint64 {
	for i := range c.buffers {
		c.flush(i)
	}
	if a.Kind == trace.Write {
		if v, ok := c.writeAround(a); ok {
			return v
		}
	}
	set, way, _ := c.cache.Ensure(a.Addr, a.Kind == trace.Write)
	if a.Kind == trace.Read {
		c.array.ReadAccess()
		return c.cache.ReadWord(set, way, a.Addr, a.Size)
	}
	c.array.RMW()
	c.cache.WriteWord(set, way, a.Addr, a.Size, a.Data)
	return a.Data & sizeMask(a.Size)
}

// Finalize drains every Set-Buffer entry and returns the run result.
func (c *wgController) Finalize() Result {
	for i := range c.buffers {
		c.flush(i)
	}
	return c.finalize(false)
}

// lineReadWord reads size bytes at addr from a buffered line copy.
func lineReadWord(l *cache.Line, g cache.Geometry, addr uint64, size uint8) uint64 {
	off := g.BlockOffset(addr)
	var buf [8]byte
	copy(buf[:size], l.Data[off:])
	return binary.LittleEndian.Uint64(buf[:])
}

// lineWriteWord writes size bytes at addr into a buffered line copy and
// reports whether the write was silent.
func lineWriteWord(l *cache.Line, g cache.Geometry, addr uint64, size uint8, data uint64) (silent bool) {
	off := g.BlockOffset(addr)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], data)
	changed := false
	for i := 0; i < int(size); i++ {
		if l.Data[off+i] != buf[i] {
			changed = true
			l.Data[off+i] = buf[i]
		}
	}
	return !changed
}
