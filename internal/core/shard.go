package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cache8t/internal/cache"
	"cache8t/internal/mem"
	"cache8t/internal/sram"
	"cache8t/internal/trace"
)

// Set-sharded parallel simulation. In a set-associative cache, sets are
// independent state machines: for a set-local controller (Kind.SetLocal)
// every observable effect of an access — line contents, replacement state,
// hit/miss counters, array events, memory traffic — depends only on the
// subsequence of accesses to that access's set. Partitioning the sets across
// K shards, replaying each shard's accesses (in stream order) through its
// own controller instance, and summing the per-shard Results therefore
// reproduces the serial Result exactly; RunSharded does that with one shard
// per goroutine, fed from a single decode of the trace via
// trace.RouteBroadcast: the decoder routes each batch once, splitting it
// into per-shard structure-of-arrays slabs, so every shard iterates only its
// own accesses — contiguously, with no per-access ownership branch — and the
// total routing work is one pass over the stream instead of one per shard.
//
// Cross-set-state controllers (the WG family's global Set-Buffer, the
// coalescer's pending-write window) and the Random replacement policy (one
// RNG stream shared by every set's policy) do not factor this way; for them
// PlanShards forces a fall back to the serial streaming driver rather than
// silently changing semantics.

// ShardPlan records how a requested shard count was resolved against a
// (controller, cache) pair's capabilities.
type ShardPlan struct {
	// Requested is the caller's shard count.
	Requested int
	// Shards is the effective count: Requested when sharding applies,
	// otherwise 1 (serial fallback).
	Shards int
	// Reason is non-empty when Shards < Requested — the logged explanation
	// for the serial fallback.
	Reason string
}

// PlanShards resolves a requested shard count. Sharding applies only to
// set-local controllers under deterministic per-set replacement, and never
// uses more shards than there are sets.
func PlanShards(kind Kind, cfg cache.Config, shards int) ShardPlan {
	p := ShardPlan{Requested: shards, Shards: shards}
	switch {
	case shards <= 1:
		p.Shards = 1
	case !kind.SetLocal():
		p.Shards = 1
		p.Reason = fmt.Sprintf("controller %v keeps cross-set state; running serially", kind)
	case cfg.Policy == cache.Random:
		p.Shards = 1
		p.Reason = "random replacement draws every set's victims from one shared RNG stream; running serially"
	default:
		if g, err := cache.NewGeometry(cfg.SizeBytes, cfg.Ways, cfg.BlockBytes); err == nil && shards > g.Sets {
			p.Shards = g.Sets
			p.Reason = fmt.Sprintf("only %d sets; clamping to %d shards", g.Sets, g.Sets)
		}
	}
	return p
}

// RunSharded drives up to max accesses of s (max <= 0 drains the stream)
// through shards concurrent controller instances, each simulating only its
// own partition of the cache's sets, and merges the per-shard Results into
// the exact aggregate a serial RunStream would have produced. The trace is
// decoded once: a broadcaster fans reference-counted batches out to every
// shard, and each shard filters the shared batch for its own sets.
//
// When the plan falls back (non-set-local controller, Random policy,
// shards <= 1) the run degrades to the serial streaming driver — results
// are identical either way; use PlanShards to surface the reason.
func RunSharded(kind Kind, cfg cache.Config, opts Options, s trace.Stream, max, batchSize, shards int) (Result, error) {
	return RunShardedContext(context.Background(), kind, cfg, opts, s, max, batchSize, shards)
}

// RunShardedContext is RunSharded with cancellation, polled once per batch
// in every shard.
func RunShardedContext(ctx context.Context, kind Kind, cfg cache.Config, opts Options, s trace.Stream, max, batchSize, shards int) (Result, error) {
	plan := PlanShards(kind, cfg, shards)
	if plan.Shards <= 1 {
		return RunStreamContext(ctx, kind, cfg, opts, s, max, batchSize)
	}
	r, err := newShardRun(kind, cfg, opts, plan.Shards)
	if err != nil {
		return Result{}, err
	}
	if err := r.run(ctx, s, max, batchSize); err != nil {
		return Result{}, err
	}
	return r.finish()
}

// shardRun is one sharded execution: K controllers over K private caches
// (each with its own backing memory), plus the set→shard route. Tests reach
// into it to randomize the route and inspect per-shard state.
type shardRun struct {
	geom   cache.Geometry
	route  []int // per-set owning shard
	caches []*cache.Cache
	mems   []*mem.Memory
	ctrls  []Controller
	fed    []uint64 // per-shard accesses simulated (for StreamError)
}

// newShardRun builds k fresh (cache, controller) pairs for kind. Every shard
// gets the full cache shape — sets outside its partition stay cold and
// contribute nothing to its Result.
func newShardRun(kind Kind, cfg cache.Config, opts Options, k int) (*shardRun, error) {
	g, err := cache.NewGeometry(cfg.SizeBytes, cfg.Ways, cfg.BlockBytes)
	if err != nil {
		return nil, err
	}
	r := &shardRun{
		geom:   g,
		route:  make([]int, g.Sets),
		caches: make([]*cache.Cache, k),
		mems:   make([]*mem.Memory, k),
		ctrls:  make([]Controller, k),
		fed:    make([]uint64, k),
	}
	for set := range r.route {
		r.route[set] = set % k
	}
	for i := 0; i < k; i++ {
		r.mems[i] = mem.New()
		c, err := cache.New(cfg, r.mems[i])
		if err != nil {
			return nil, err
		}
		ctrl, err := New(kind, c, opts)
		if err != nil {
			return nil, err
		}
		r.caches[i], r.ctrls[i] = c, ctrl
	}
	return r, nil
}

// run routes s across one goroutine per shard and joins them. The context
// is polled once per delivered slab per shard; a decode failure surfaces as
// *StreamError carrying how many accesses were simulated cleanly across all
// shards, and a block-straddling access aborts the routing pass with
// *ShardCrossSetError.
func (r *shardRun) run(ctx context.Context, s trace.Stream, max, batchSize int) error {
	if max > 0 {
		s = trace.NewLimit(s, uint64(max))
	}
	bc := trace.NewRouteBroadcast(s, r.routeBatch, batchSizeFor(max, batchSize), len(r.ctrls), 0)
	errs := make([]error, len(r.ctrls))
	var wg sync.WaitGroup
	for i := range r.ctrls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = r.consume(ctx, bc.Shard(i), i)
		}(i)
	}
	wg.Wait()
	// Consumers have been joined, so stopping any still-open feeds (there
	// are none on the happy path) is safe and frees the decoder.
	bc.Stop()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if err := bc.Err(); err != nil {
		var re *trace.RouteError
		if errors.As(err, &re) {
			// The routing pass met a block-straddling access: its spill
			// bytes belong to a set on another shard, so set-locality does
			// not hold for it and the run aborts rather than silently
			// diverging from serial. (The bundled generators emit
			// size-aligned accesses, which can never straddle.)
			return &ShardCrossSetError{Access: re.Access, Set: r.geom.SetIndex(re.Access.Addr)}
		}
		var total uint64
		for _, n := range r.fed {
			total += n
		}
		return &StreamError{Accesses: total, Err: err}
	}
	return nil
}

// routeBatch is the trace.RouteFunc of one sharded run: a single pass over
// each decoded batch computes every access's set once and assigns it to the
// owning shard. Block-straddling accesses (spilling into the next set,
// owned by another shard) are refused with a negative shard, which aborts
// the broadcast. Running on the decoder goroutine, this pass overlaps with
// the shards' controller work on multi-core hosts — and replaces the old
// filter-at-consumer scheme where all K shards re-scanned every batch.
func (r *shardRun) routeBatch(batch []trace.Access, dst []int32) {
	g := r.geom
	block := uint64(g.BlockBytes)
	offMask := block - 1
	for i := range batch {
		a := &batch[i]
		if (a.Addr&offMask)+uint64(a.Size) > block {
			dst[i] = -1
			continue
		}
		dst[i] = int32(r.route[g.SetIndex(a.Addr)])
	}
}

// consume replays shard i's pre-routed slabs: every access delivered is
// already known to belong to this shard, so the loop is nothing but
// contiguous column reads and the controller call.
func (r *shardRun) consume(ctx context.Context, feed *trace.ShardFeed, i int) error {
	ctrl := r.ctrls[i]
	for {
		if err := ctx.Err(); err != nil {
			feed.Stop()
			return err
		}
		cols, ok := feed.Next()
		if !ok {
			return nil
		}
		n := cols.Len()
		for j := 0; j < n; j++ {
			ctrl.Access(trace.Access{
				Addr: cols.Addr[j],
				Data: cols.Data[j],
				Gap:  cols.Gap[j],
				Size: cols.Size[j],
				Kind: cols.Op[j],
			})
		}
		r.fed[i] += uint64(n)
	}
}

// finish finalizes every shard and merges the parts.
func (r *shardRun) finish() (Result, error) {
	parts := make([]Result, len(r.ctrls))
	for i, ctrl := range r.ctrls {
		parts[i] = ctrl.Finalize()
	}
	return MergeResults(parts)
}

// MergeResults sums per-shard Results of one sharded run into the aggregate
// a serial run over the unpartitioned stream would have produced. All parts
// must come from the same controller kind and geometry. The merge is exact —
// every field of the Result is a sum of per-set contributions — which the
// shard property tests pin field-for-field against serial runs.
func MergeResults(parts []Result) (Result, error) {
	if len(parts) == 0 {
		return Result{}, fmt.Errorf("core: no shard results to merge")
	}
	out := parts[0]
	merged, err := sram.NewArray(parts[0].Events.Config())
	if err != nil {
		return Result{}, err
	}
	merged.AddCounts(parts[0].Events)
	out.Events = merged
	for _, p := range parts[1:] {
		if p.Controller != out.Controller || p.Geometry != out.Geometry {
			return Result{}, fmt.Errorf("core: cannot merge %v/%v shard result into %v/%v aggregate",
				p.Controller, p.Geometry, out.Controller, out.Geometry)
		}
		out.Requests.Reads += p.Requests.Reads
		out.Requests.Writes += p.Requests.Writes
		out.Requests.Instructions += p.Requests.Instructions
		addCacheStats(&out.Cache, p.Cache)
		out.Counters.add(p.Counters)
		out.ArrayReads += p.ArrayReads
		out.ArrayWrites += p.ArrayWrites
		merged.AddCounts(p.Events)
	}
	return out, nil
}

// addCacheStats accumulates functional cache counters.
func addCacheStats(dst *cache.Stats, src cache.Stats) {
	dst.ReadHits += src.ReadHits
	dst.ReadMisses += src.ReadMisses
	dst.WriteHits += src.WriteHits
	dst.WriteMisses += src.WriteMisses
	dst.Fills += src.Fills
	dst.Evictions += src.Evictions
	dst.Writebacks += src.Writebacks
}

// add accumulates another shard's counters. Every Counters field is a
// per-set (and therefore per-shard) sum; the shard property test compares
// merged and serial Counters structs wholesale, so a field added here but
// forgotten there (or vice versa) fails loudly.
func (c *Counters) add(o Counters) {
	c.DemandReads += o.DemandReads
	c.DemandWrites += o.DemandWrites
	c.TagProbes += o.TagProbes
	c.TagHits += o.TagHits
	c.GroupedWrites += o.GroupedWrites
	c.SilentWrites += o.SilentWrites
	c.SilentElidedWBs += o.SilentElidedWBs
	c.PrematureWBs += o.PrematureWBs
	c.BypassedReads += o.BypassedReads
	c.BufferFills += o.BufferFills
	c.BufferWritebacks += o.BufferWritebacks
	for i := range c.GroupSizes {
		c.GroupSizes[i] += o.GroupSizes[i]
	}
}

// ShardCrossSetError aborts a sharded run that met a block-straddling
// access: its spill bytes belong to a set on another shard, so set-locality
// does not hold for it. Rerun serially (RunStream) to simulate such traces.
type ShardCrossSetError struct {
	Access trace.Access
	Set    int
}

// Error implements error.
func (e *ShardCrossSetError) Error() string {
	return fmt.Sprintf("core: access %v straddles out of set %d; block-straddling traces cannot be set-sharded — rerun serially", e.Access, e.Set)
}
