package core

import (
	"context"
	"fmt"

	"cache8t/internal/cache"
	"cache8t/internal/mem"
	"cache8t/internal/trace"
)

// Run drives up to max accesses of s (max <= 0 drains the stream) through a
// freshly built cache and controller of the given kind, then finalizes.
// This is the one-call entry point the experiment harness and examples use.
func Run(kind Kind, cfg cache.Config, opts Options, s trace.Stream, max int) (Result, error) {
	return RunContext(context.Background(), kind, cfg, opts, s, max)
}

// RunContext is Run with cancellation: the simulation polls ctx once per
// batch (trace.DefaultBatchSize accesses) and abandons the run with ctx's
// error once it is cancelled or past its deadline. This is what gives engine
// jobs prompt, mid-simulation cancellation instead of job-boundary
// granularity.
//
// RunContext runs on the same batched Driver as RunStreamContext; the only
// difference is error handling — for compatibility with callers that check
// the reader's Err themselves, a stream that stops early is treated as
// exhausted rather than failed. New code should prefer RunStreamContext.
func RunContext(ctx context.Context, kind Kind, cfg cache.Config, opts Options, s trace.Stream, max int) (Result, error) {
	c, err := cache.New(cfg, mem.New())
	if err != nil {
		return Result{}, err
	}
	ctrl, err := New(kind, c, opts)
	if err != nil {
		return Result{}, err
	}
	if max > 0 {
		s = trace.NewLimit(s, uint64(max))
	}
	d := NewDriver(ctrl)
	b := trace.NewBatcher(s, batchSizeFor(max, 0))
	for {
		if ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
		batch, ok := b.Next()
		if !ok {
			break
		}
		d.Feed(batch)
	}
	return d.Finish(), nil
}

// RunAll runs the same access slice through several controller kinds, each
// over its own fresh cache, and returns results in kind order. Slices (not
// streams) keep the inputs bit-identical across controllers. It is the
// serial (workers=1) case of RunAllContext, so there is exactly one
// execution path for single- and multi-controller runs.
func RunAll(kinds []Kind, cfg cache.Config, opts Options, accesses []trace.Access) ([]Result, error) {
	return RunAllContext(context.Background(), kinds, cfg, opts, accesses, 1)
}

// VerifyEquivalence replays accesses through two controller kinds and checks
// the architectural contract: every read and write returns the same value
// under both, and the post-flush memory images are identical. It returns a
// non-nil diagnostic on the first divergence. This is the correctness
// invariant of DESIGN.md §5, used by property tests.
func VerifyEquivalence(a, b Kind, cfg cache.Config, opts Options, accesses []trace.Access) error {
	ca, err := cache.New(cfg, mem.New())
	if err != nil {
		return err
	}
	cb, err := cache.New(cfg, mem.New())
	if err != nil {
		return err
	}
	ctrlA, err := New(a, ca, opts)
	if err != nil {
		return err
	}
	ctrlB, err := New(b, cb, opts)
	if err != nil {
		return err
	}
	for i, acc := range accesses {
		va := ctrlA.Access(acc)
		vb := ctrlB.Access(acc)
		if va != vb {
			return &DivergenceError{Step: i, Access: acc, A: a, B: b, ValueA: va, ValueB: vb}
		}
	}
	ctrlA.Finalize()
	ctrlB.Finalize()
	ca.FlushAll()
	cb.FlushAll()
	if !ca.Backing().Equal(cb.Backing()) {
		return &DivergenceError{Step: len(accesses), A: a, B: b, MemoryImage: true}
	}
	return nil
}

// DivergenceError reports where two controllers stopped agreeing.
type DivergenceError struct {
	Step        int
	Access      trace.Access
	A, B        Kind
	ValueA      uint64
	ValueB      uint64
	MemoryImage bool
}

// Error implements error.
func (e *DivergenceError) Error() string {
	if e.MemoryImage {
		return fmt.Sprintf("core: %v and %v left different memory images", e.A, e.B)
	}
	return fmt.Sprintf("core: %v and %v diverged at step %d on %v: %#x vs %#x",
		e.A, e.B, e.Step, e.Access, e.ValueA, e.ValueB)
}
