package core

import (
	"fmt"

	"cache8t/internal/cache"
	"cache8t/internal/mem"
	"cache8t/internal/trace"
)

// Run drives up to max accesses of s (max <= 0 drains the stream) through a
// freshly built cache and controller of the given kind, then finalizes.
// This is the one-call entry point the experiment harness and examples use.
func Run(kind Kind, cfg cache.Config, opts Options, s trace.Stream, max int) (Result, error) {
	c, err := cache.New(cfg, mem.New())
	if err != nil {
		return Result{}, err
	}
	ctrl, err := New(kind, c, opts)
	if err != nil {
		return Result{}, err
	}
	n := 0
	for max <= 0 || n < max {
		a, ok := s.Next()
		if !ok {
			break
		}
		ctrl.Access(a)
		n++
	}
	return ctrl.Finalize(), nil
}

// RunAll runs the same access slice through several controller kinds, each
// over its own fresh cache, and returns results in kind order. Slices (not
// streams) keep the inputs bit-identical across controllers.
func RunAll(kinds []Kind, cfg cache.Config, opts Options, accesses []trace.Access) ([]Result, error) {
	out := make([]Result, 0, len(kinds))
	for _, k := range kinds {
		r, err := Run(k, cfg, opts, trace.FromSlice(accesses), 0)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// VerifyEquivalence replays accesses through two controller kinds and checks
// the architectural contract: every read and write returns the same value
// under both, and the post-flush memory images are identical. It returns a
// non-nil diagnostic on the first divergence. This is the correctness
// invariant of DESIGN.md §5, used by property tests.
func VerifyEquivalence(a, b Kind, cfg cache.Config, opts Options, accesses []trace.Access) error {
	ca, err := cache.New(cfg, mem.New())
	if err != nil {
		return err
	}
	cb, err := cache.New(cfg, mem.New())
	if err != nil {
		return err
	}
	ctrlA, err := New(a, ca, opts)
	if err != nil {
		return err
	}
	ctrlB, err := New(b, cb, opts)
	if err != nil {
		return err
	}
	for i, acc := range accesses {
		va := ctrlA.Access(acc)
		vb := ctrlB.Access(acc)
		if va != vb {
			return &DivergenceError{Step: i, Access: acc, A: a, B: b, ValueA: va, ValueB: vb}
		}
	}
	ctrlA.Finalize()
	ctrlB.Finalize()
	ca.FlushAll()
	cb.FlushAll()
	if !ca.Backing().Equal(cb.Backing()) {
		return &DivergenceError{Step: len(accesses), A: a, B: b, MemoryImage: true}
	}
	return nil
}

// DivergenceError reports where two controllers stopped agreeing.
type DivergenceError struct {
	Step        int
	Access      trace.Access
	A, B        Kind
	ValueA      uint64
	ValueB      uint64
	MemoryImage bool
}

// Error implements error.
func (e *DivergenceError) Error() string {
	if e.MemoryImage {
		return fmt.Sprintf("core: %v and %v left different memory images", e.A, e.B)
	}
	return fmt.Sprintf("core: %v and %v diverged at step %d on %v: %#x vs %#x",
		e.A, e.B, e.Step, e.Access, e.ValueA, e.ValueB)
}
