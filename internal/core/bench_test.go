package core

import (
	"bytes"
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/trace"
)

// The materialized/streamed pair below is the go-bench view of what
// cmd/benchcore records into BENCH_core.json: the streamed path must not
// regress against replaying a pre-materialized slice.

func benchAccesses(b *testing.B, n int) []trace.Access {
	b.Helper()
	return randomStream(99, n, 1<<16)
}

func BenchmarkRunMaterialized(b *testing.B) {
	accs := benchAccesses(b, 100_000)
	b.SetBytes(int64(len(accs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(WG, smallCfg(), Options{}, trace.FromSlice(accs), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestControllerSteadyStateNoAlloc pins the hot-path allocation contract:
// once the cache, controller, and Set-Buffer are warm (and the backing
// memory's chunks exist), replaying aligned accesses allocates nothing —
// Set-Buffer refills reuse their line buffers via SnapshotSetInto.
func TestControllerSteadyStateNoAlloc(t *testing.T) {
	accs := randomStream(42, 20_000, 1<<13)
	for _, k := range []Kind{RMW, WG, WGRB} {
		c, err := cache.New(smallCfg(), newMem())
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := New(k, c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		replay := func() {
			for _, a := range accs {
				ctrl.Access(a)
			}
		}
		replay() // warm up: fill lines, buffers, and memory chunks
		if avg := testing.AllocsPerRun(3, replay); avg > 0 {
			t.Errorf("%v: %.1f allocations per warm 20k-access replay, want 0", k, avg)
		}
	}
}

func BenchmarkRunStreamedBinary(b *testing.B) {
	accs := benchAccesses(b, 100_000)
	var buf bytes.Buffer
	if _, err := trace.WriteAll(&buf, trace.FromSlice(accs), 0); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(accs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunStream(WG, smallCfg(), Options{}, trace.NewReader(bytes.NewReader(data)), 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}
