package core

import (
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/trace"
)

// Fig8Stream reconstructs the paper's §4.3 worked example: requests to two
// sets a and b, arrival order Ra Wb Wb Rb Rb Wb Wa Rb Ra, with the single
// write to set a silent. Exported within the package for reuse by the
// experiments harness via a tiny wrapper there.
func fig8Stream(g cache.Geometry) []trace.Access {
	// Two addresses in distinct sets.
	addrA := uint64(0)            // set 0
	addrB := uint64(g.BlockBytes) // set 1
	r := func(addr uint64) trace.Access {
		return trace.Access{Kind: trace.Read, Addr: addr, Size: 4}
	}
	w := func(addr, val uint64) trace.Access {
		return trace.Access{Kind: trace.Write, Addr: addr, Size: 4, Data: val}
	}
	return []trace.Access{
		r(addrA),    // Ra: Tag-Buffer empty, cache read
		w(addrB, 1), // Wb: fill Set-Buffer (row read), non-silent
		w(addrB, 2), // Wb: grouped
		r(addrB),    // Rb: premature write-back + array read
		r(addrB),    // Rb: Dirty clear, array read only
		w(addrB, 3), // Wb: grouped, Dirty set again
		w(addrA, 0), // Wa: evicts buffer (write-back) + fill; SILENT (memory is 0)
		r(addrB),    // Rb: Tag-Buffer miss (buffer holds a), array read
		r(addrA),    // Ra: Tag-Buffer hit, Dirty clear -> no write-back
	}
}

func fig8Results(t *testing.T) map[Kind]Result {
	t.Helper()
	cfg := cache.DefaultConfig()
	stream := fig8Stream(cache.MustGeometry(cfg.SizeBytes, cfg.Ways, cfg.BlockBytes))
	out := make(map[Kind]Result)
	for _, k := range []Kind{Conventional, RMW, WG, WGRB} {
		r, err := Run(k, cfg, Options{}, trace.FromSlice(stream), 0)
		if err != nil {
			t.Fatal(err)
		}
		out[k] = r
	}
	return out
}

func TestFig8ExampleAccessTotals(t *testing.T) {
	rs := fig8Results(t)
	// 5 reads + 4 writes.
	if got := rs[Conventional].ArrayAccesses(); got != 9 {
		t.Errorf("Conventional = %d array accesses, want 9", got)
	}
	// RMW: 5 reads + 4 writes x 2.
	if got := rs[RMW].ArrayAccesses(); got != 13 {
		t.Errorf("RMW = %d array accesses, want 13", got)
	}
	// WG walkthrough (§4.3): Ra read, Wb fill, Rb write-back+read, Rb read,
	// Wa write-back+fill, Rb read, Ra nothing = 9.
	if got := rs[WG].ArrayAccesses(); got != 9 {
		t.Errorf("WG = %d array accesses, want 9", got)
	}
	// WG+RB additionally bypasses the two middle Rb and the final Ra = 5.
	if got := rs[WGRB].ArrayAccesses(); got != 5 {
		t.Errorf("WG+RB = %d array accesses, want 5", got)
	}
}

func TestFig8ExampleWGCounters(t *testing.T) {
	c := fig8Results(t)[WG].Counters
	if c.DemandReads != 5 || c.DemandWrites != 4 {
		t.Errorf("demand counts = %d/%d", c.DemandReads, c.DemandWrites)
	}
	if c.GroupedWrites != 2 {
		t.Errorf("GroupedWrites = %d, want 2 (second and third Wb)", c.GroupedWrites)
	}
	if c.SilentWrites != 1 {
		t.Errorf("SilentWrites = %d, want 1 (Wa)", c.SilentWrites)
	}
	if c.BufferFills != 2 {
		t.Errorf("BufferFills = %d, want 2 (first Wb, Wa)", c.BufferFills)
	}
	if c.BufferWritebacks != 2 {
		t.Errorf("BufferWritebacks = %d, want 2 (before Rb pair, before Wa fill)", c.BufferWritebacks)
	}
	if c.PrematureWBs != 1 {
		t.Errorf("PrematureWBs = %d, want 1 (first Rb)", c.PrematureWBs)
	}
	// Dirty-clear checks that skipped a write-back: second Rb, final Ra,
	// and the Finalize drain of the clean set-a buffer.
	if c.SilentElidedWBs != 3 {
		t.Errorf("SilentElidedWBs = %d, want 3", c.SilentElidedWBs)
	}
	if c.TagHits != 5 {
		t.Errorf("TagHits = %d, want 5 (Wb, Rb, Rb, Wb, Ra)", c.TagHits)
	}
}

func TestFig8ExampleWGRBCounters(t *testing.T) {
	c := fig8Results(t)[WGRB].Counters
	if c.BypassedReads != 3 {
		t.Errorf("BypassedReads = %d, want 3 (Rb, Rb, Ra)", c.BypassedReads)
	}
	// With the Rb pair bypassed, no premature write-back ever happens; the
	// only write-back is the one before Wa's fill.
	if c.PrematureWBs != 0 {
		t.Errorf("PrematureWBs = %d, want 0", c.PrematureWBs)
	}
	if c.BufferWritebacks != 1 {
		t.Errorf("BufferWritebacks = %d, want 1", c.BufferWritebacks)
	}
	if c.GroupedWrites != 2 || c.SilentWrites != 1 {
		t.Errorf("grouped/silent = %d/%d", c.GroupedWrites, c.SilentWrites)
	}
}

func TestFig8ReductionOrdering(t *testing.T) {
	rs := fig8Results(t)
	if !(rs[WGRB].ArrayAccesses() < rs[WG].ArrayAccesses() &&
		rs[WG].ArrayAccesses() < rs[RMW].ArrayAccesses()) {
		t.Errorf("ordering violated: RMW=%d WG=%d WGRB=%d",
			rs[RMW].ArrayAccesses(), rs[WG].ArrayAccesses(), rs[WGRB].ArrayAccesses())
	}
}

func TestFig8ArchitecturalValues(t *testing.T) {
	// Every controller must read back the values the stream wrote.
	cfg := cache.DefaultConfig()
	g := cache.MustGeometry(cfg.SizeBytes, cfg.Ways, cfg.BlockBytes)
	stream := fig8Stream(g)
	for _, k := range []Kind{Conventional, RMW, WG, WGRB} {
		c, err := cache.New(cfg, newMem())
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := New(k, c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var got []uint64
		for _, a := range stream {
			got = append(got, ctrl.Access(a))
		}
		// Rb after the third Wb must observe 3; final Ra must observe 0.
		if got[7] != 3 {
			t.Errorf("%v: Rb after Wb=3 returned %d", k, got[7])
		}
		if got[8] != 0 {
			t.Errorf("%v: final Ra returned %d", k, got[8])
		}
		ctrl.Finalize()
	}
}
