package core

import (
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/trace"
)

func TestCoalesceEquivalence(t *testing.T) {
	for seed := uint64(80); seed < 84; seed++ {
		stream := randomStream(seed, 4000, 8192)
		if err := VerifyEquivalence(RMW, Coalesce, smallCfg(), Options{}, stream); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestCoalesceMergesSameBlockWrites(t *testing.T) {
	// Four 8-byte writes filling one 32 B block: one flush RMW total.
	var stream []trace.Access
	for i := 0; i < 4; i++ {
		stream = append(stream, trace.Access{
			Kind: trace.Write, Addr: uint64(i * 8), Size: 8, Data: uint64(i + 1),
		})
	}
	res, err := Run(Coalesce, smallCfg(), Options{}, trace.FromSlice(stream), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ArrayAccesses() != 2 {
		t.Errorf("coalesced block cost %d accesses, want 2 (one RMW)", res.ArrayAccesses())
	}
	if res.Counters.GroupedWrites != 3 || res.Counters.BufferFills != 1 {
		t.Errorf("counters = %+v", res.Counters)
	}
}

func TestCoalesceSilentElision(t *testing.T) {
	stream := []trace.Access{
		{Kind: trace.Write, Addr: 0, Size: 8, Data: 0}, // silent on zeroed memory
		{Kind: trace.Write, Addr: 8, Size: 8, Data: 0},
	}
	res, err := Run(Coalesce, smallCfg(), Options{}, trace.FromSlice(stream), 0)
	if err != nil {
		t.Fatal(err)
	}
	// The flush still pays its merge read; only the row write is elided.
	if res.ArrayAccesses() != 1 {
		t.Errorf("all-silent block cost %d accesses, want 1 (merge read only)", res.ArrayAccesses())
	}
	if res.Counters.SilentElidedWBs != 1 {
		t.Errorf("elided = %d, want 1", res.Counters.SilentElidedWBs)
	}
}

func TestWGBeatsCoalescerOnSetLocality(t *testing.T) {
	// Writes walking all four blocks of one set (different tags, same set):
	// the set-granular Set-Buffer groups them after residency is
	// established; the block-granular coalescer flushes at every block
	// boundary. This is the A4 ablation's core claim.
	g := cache.MustGeometry(1024, 2, 32)
	stride := uint64(g.Sets * g.BlockBytes) // same set, next tag
	var stream []trace.Access
	// Establish residency for both ways first (reads), then write
	// alternating between the two resident blocks of set 0.
	stream = append(stream,
		trace.Access{Kind: trace.Read, Addr: 0, Size: 8},
		trace.Access{Kind: trace.Read, Addr: stride, Size: 8},
	)
	for i := 0; i < 16; i++ {
		addr := uint64(i%2) * stride
		stream = append(stream, trace.Access{
			Kind: trace.Write, Addr: addr + uint64(i/2*8)%32, Size: 8, Data: uint64(i + 1),
		})
	}
	wg, err := Run(WG, smallCfg(), Options{}, trace.FromSlice(stream), 0)
	if err != nil {
		t.Fatal(err)
	}
	co, err := Run(Coalesce, smallCfg(), Options{}, trace.FromSlice(stream), 0)
	if err != nil {
		t.Fatal(err)
	}
	if wg.ArrayAccesses() >= co.ArrayAccesses() {
		t.Errorf("WG %d accesses not below Coalesce %d on alternating-block set writes",
			wg.ArrayAccesses(), co.ArrayAccesses())
	}
}

func TestCoalesceCostBetweenConventionalAndRMW(t *testing.T) {
	for seed := uint64(90); seed < 94; seed++ {
		stream := randomStream(seed, 6000, 16384)
		res, err := RunAll([]Kind{Conventional, Coalesce, RMW}, smallCfg(), Options{}, stream)
		if err != nil {
			t.Fatal(err)
		}
		conv, co, rmw := res[0].ArrayAccesses(), res[1].ArrayAccesses(), res[2].ArrayAccesses()
		if co > rmw {
			t.Errorf("seed %d: coalescer %d worse than raw RMW %d", seed, co, rmw)
		}
		_ = conv // conventional is a 6T reference, not a bound for 8T schemes
	}
}

func TestCoalesceReadToPendingBlockFlushes(t *testing.T) {
	stream := []trace.Access{
		{Kind: trace.Write, Addr: 0, Size: 8, Data: 5},
		{Kind: trace.Read, Addr: 8, Size: 8}, // same block: must flush first
	}
	res, err := Run(Coalesce, smallCfg(), Options{}, trace.FromSlice(stream), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Flush RMW (2) + demand read (1).
	if res.ArrayAccesses() != 3 {
		t.Errorf("accesses = %d, want 3", res.ArrayAccesses())
	}
	if res.Counters.BufferWritebacks != 1 {
		t.Errorf("writebacks = %d, want 1", res.Counters.BufferWritebacks)
	}
}
