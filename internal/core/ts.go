package core

import (
	"cache8t/internal/trace"
)

// tsReplayPeriod is the deterministic mis-speculation schedule: one read in
// every tsReplayPeriod completes with wrong timing margins and replays
// through the array. 1/16 ≈ 6% sits inside the error-rate band TS Cache
// (arXiv:1904.11200) reports for aggressive low-voltage timing; being a
// fixed schedule rather than a sampled one keeps runs bit-reproducible and
// lets the replay count be derived from the ledger (ArrayReads minus
// DemandReads minus fill traffic) without a new counter.
const tsReplayPeriod = 16

// tsController models TS Cache's timing speculation on the 8T array: reads
// issue against an aggressive (under-margined) timing and speculatively
// forward their data; when speculation fails — here, deterministically on
// every tsReplayPeriod-th read — the read replays through the array at safe
// timing, costing a second full array read. Functionally the replay returns
// the same data (the first access's value was wrong only in the timing
// domain), so the controller is value-equivalent to RMW and the existing
// differential oracle applies unchanged. Writes take the plain RMW path:
// timing speculation targets the read critical path.
//
// The replay schedule counts reads globally across sets, so the controller
// is not set-local (SetLocal() is false via the Kind classification) and
// sharded runs fall back to the serial driver.
type tsController struct {
	base
	// specReads counts reads issued so far; every tsReplayPeriod-th one
	// replays. Checkpointed (ckptExtraTS) so resumed runs keep the schedule.
	specReads uint64
}

// Access processes one request.
func (c *tsController) Access(a trace.Access) uint64 {
	c.note(a)
	if a.Kind == trace.Write {
		if v, ok := c.writeAround(a); ok {
			return v
		}
	}
	set, way, _ := c.cache.Ensure(a.Addr, a.Kind == trace.Write)
	if a.Kind == trace.Read {
		c.array.ReadAccess()
		c.specReads++
		if c.specReads%tsReplayPeriod == 0 {
			// Mis-speculation: the forwarded data misses its margin and the
			// read re-executes at safe timing — a second array access on the
			// same resident line, no functional state change.
			c.array.ReadAccess()
		}
		return c.cache.ReadWord(set, way, a.Addr, a.Size)
	}
	c.array.RMW()
	c.cache.WriteWord(set, way, a.Addr, a.Size, a.Data)
	return a.Data & sizeMask(a.Size)
}

// Finalize returns the run result.
func (c *tsController) Finalize() Result {
	return c.finalize(false)
}
