package core

import (
	"context"

	"cache8t/internal/cache"
	"cache8t/internal/engine"
	"cache8t/internal/trace"
)

// Job wraps one controller run over a shared access slice as an engine job.
// Every job replays the same slice through its own fresh cache, so jobs for
// different kinds are independent and safe to run concurrently.
func Job(kind Kind, cfg cache.Config, opts Options, accesses []trace.Access) engine.Job[Result] {
	return engine.Job[Result]{
		Label:  kind.String(),
		Weight: int64(len(accesses)),
		Fn: func(ctx context.Context) (Result, error) {
			return RunContext(ctx, kind, cfg, opts, trace.FromSlice(accesses), 0)
		},
	}
}

// Jobs builds one engine job per kind, in kind order.
func Jobs(kinds []Kind, cfg cache.Config, opts Options, accesses []trace.Access) []engine.Job[Result] {
	jobs := make([]engine.Job[Result], len(kinds))
	for i, k := range kinds {
		jobs[i] = Job(k, cfg, opts, accesses)
	}
	return jobs
}

// RunAllContext is RunAll with cancellation and a worker budget: the kinds
// fan out across min(workers, kinds) engine workers and the results come
// back in kind order regardless of completion order (the engine aggregates
// by submission index), so any workers value reproduces the serial output.
func RunAllContext(ctx context.Context, kinds []Kind, cfg cache.Config, opts Options, accesses []trace.Access, workers int) ([]Result, error) {
	return engine.Map(ctx, engine.Config{Workers: workers}, Jobs(kinds, cfg, opts, accesses))
}
