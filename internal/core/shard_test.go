package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/mem"
	"cache8t/internal/rng"
	"cache8t/internal/sram"
	"cache8t/internal/trace"
)

// requireResultsEqual compares two Results field-for-field, including the
// full circuit-level event ledger.
func requireResultsEqual(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Controller != want.Controller {
		t.Errorf("%s: controller %v, want %v", label, got.Controller, want.Controller)
	}
	if got.Geometry != want.Geometry {
		t.Errorf("%s: geometry %+v, want %+v", label, got.Geometry, want.Geometry)
	}
	if got.Requests != want.Requests {
		t.Errorf("%s: requests %+v, want %+v", label, got.Requests, want.Requests)
	}
	if got.Cache != want.Cache {
		t.Errorf("%s: cache stats %+v, want %+v", label, got.Cache, want.Cache)
	}
	if got.Counters != want.Counters {
		t.Errorf("%s: counters %+v, want %+v", label, got.Counters, want.Counters)
	}
	if got.ArrayReads != want.ArrayReads || got.ArrayWrites != want.ArrayWrites {
		t.Errorf("%s: array traffic %d/%d, want %d/%d",
			label, got.ArrayReads, got.ArrayWrites, want.ArrayReads, want.ArrayWrites)
	}
	if got.LocalWriteback != want.LocalWriteback {
		t.Errorf("%s: local writeback %v, want %v", label, got.LocalWriteback, want.LocalWriteback)
	}
	for _, e := range sram.Events() {
		if g, w := got.Events.Count(e), want.Events.Count(e); g != w {
			t.Errorf("%s: event %v count %d, want %d", label, e, g, w)
		}
	}
}

func setLocalKinds(t *testing.T) []Kind {
	t.Helper()
	var out []Kind
	for _, k := range Kinds() {
		if k.SetLocal() {
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		t.Fatal("no set-local kinds")
	}
	return out
}

func TestShardedMatchesSerial(t *testing.T) {
	// The tentpole invariant: for every set-local controller, sharded
	// results are byte-identical to serial over the same stream.
	stream := randomStream(7, 6000, 8192)
	for _, k := range setLocalKinds(t) {
		serial, err := RunStream(k, smallCfg(), Options{}, trace.FromSlice(stream), 0, 0)
		if err != nil {
			t.Fatalf("%v serial: %v", k, err)
		}
		for _, shards := range []int{2, 3, 4, 7, 16} {
			got, err := RunSharded(k, smallCfg(), Options{}, trace.FromSlice(stream), 0, 0, shards)
			if err != nil {
				t.Fatalf("%v shards=%d: %v", k, shards, err)
			}
			requireResultsEqual(t, fmt.Sprintf("%v shards=%d", k, shards), got, serial)
		}
	}
}

func TestShardedRandomPartitionProperty(t *testing.T) {
	// Stronger than TestShardedMatchesSerial: any partition of the sets —
	// not just the modulo route — merges into the serial result, and the
	// merged machine state (per-set lines, flushed memory image) matches
	// byte-for-byte, not just the counters.
	const footprint = 8192
	cfg := smallCfg()
	for seed := uint64(1); seed <= 3; seed++ {
		stream := randomStream(seed*13, 5000, footprint)
		for _, k := range setLocalKinds(t) {
			// Serial reference, built by hand so its cache stays inspectable.
			sc, err := cache.New(cfg, mem.New())
			if err != nil {
				t.Fatal(err)
			}
			sctrl, err := New(k, sc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range stream {
				sctrl.Access(a)
			}
			serial := sctrl.Finalize()

			const shards = 4
			r, err := newShardRun(k, cfg, Options{}, shards)
			if err != nil {
				t.Fatal(err)
			}
			route := rng.New(seed * 31)
			for set := range r.route {
				r.route[set] = route.Intn(shards)
			}
			if err := r.run(context.Background(), trace.FromSlice(stream), 0, 512); err != nil {
				t.Fatalf("%v: %v", k, err)
			}
			merged, err := r.finish()
			if err != nil {
				t.Fatal(err)
			}
			requireResultsEqual(t, fmt.Sprintf("%v random partition seed=%d", k, seed), merged, serial)

			// Machine state: every set's lines live on exactly one shard and
			// must equal the serial cache's.
			for set := 0; set < r.geom.Sets; set++ {
				want := sc.Set(set)
				got := r.caches[r.route[set]].Set(set)
				for w := range want {
					if got[w].Tag != want[w].Tag || got[w].Valid != want[w].Valid || got[w].Dirty != want[w].Dirty {
						t.Fatalf("%v set %d way %d: line %+v, want %+v", k, set, w, got[w], want[w])
					}
					for bi := range want[w].Data {
						if got[w].Data[bi] != want[w].Data[bi] {
							t.Fatalf("%v set %d way %d byte %d: %#x, want %#x",
								k, set, w, bi, got[w].Data[bi], want[w].Data[bi])
						}
					}
				}
			}

			// Memory image: after flushing everything, each address's byte in
			// the owning shard's memory equals the serial memory's.
			sc.FlushAll()
			for _, c := range r.caches {
				c.FlushAll()
			}
			for addr := uint64(0); addr < footprint; addr++ {
				own := r.mems[r.route[r.geom.SetIndex(addr)]]
				if g, w := own.LoadByte(addr), sc.Backing().LoadByte(addr); g != w {
					t.Fatalf("%v memory byte %#x: %#x, want %#x", k, addr, g, w)
				}
			}
		}
	}
}

func TestShardedZeroSetShardIdentity(t *testing.T) {
	// A route may leave a shard owning zero sets (the routed fan-out then
	// never delivers it a slab). Its empty Result must still merge cleanly
	// and the aggregate must equal serial.
	stream := randomStream(17, 5000, 8192)
	for _, k := range setLocalKinds(t) {
		serial, err := RunStream(k, smallCfg(), Options{}, trace.FromSlice(stream), 0, 0)
		if err != nil {
			t.Fatalf("%v serial: %v", k, err)
		}
		const shards = 4
		r, err := newShardRun(k, smallCfg(), Options{}, shards)
		if err != nil {
			t.Fatal(err)
		}
		// Shard 3 owns nothing; the rest split the sets round-robin.
		for set := range r.route {
			r.route[set] = set % (shards - 1)
		}
		if err := r.run(context.Background(), trace.FromSlice(stream), 0, 256); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		merged, err := r.finish()
		if err != nil {
			t.Fatal(err)
		}
		requireResultsEqual(t, fmt.Sprintf("%v zero-set shard", k), merged, serial)
		if r.fed[3] != 0 {
			t.Errorf("%v: zero-set shard simulated %d accesses, want 0", k, r.fed[3])
		}
	}
}

func TestShardedFallbackIdentity(t *testing.T) {
	// Cross-set-state controllers must fall back to the serial driver and
	// produce exactly the serial result.
	stream := randomStream(3, 4000, 8192)
	for _, k := range Kinds() {
		if k.SetLocal() {
			continue
		}
		plan := PlanShards(k, smallCfg(), 4)
		if plan.Shards != 1 || plan.Reason == "" {
			t.Errorf("%v: plan %+v, want serial fallback with reason", k, plan)
		}
		serial, err := RunStream(k, smallCfg(), Options{}, trace.FromSlice(stream), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunSharded(k, smallCfg(), Options{}, trace.FromSlice(stream), 0, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		requireResultsEqual(t, fmt.Sprintf("%v fallback", k), got, serial)
	}
}

func TestPlanShards(t *testing.T) {
	cfg := smallCfg() // 16 sets
	random := cfg
	random.Policy = cache.Random
	cases := []struct {
		name       string
		kind       Kind
		cfg        cache.Config
		req        int
		want       int
		wantReason bool
	}{
		{"serial request", RMW, cfg, 1, 1, false},
		{"zero request", RMW, cfg, 0, 1, false},
		{"set-local", RMW, cfg, 4, 4, false},
		{"cross-set controller", WG, cfg, 4, 1, true},
		{"coalescer", Coalesce, cfg, 4, 1, true},
		{"random policy", RMW, random, 4, 1, true},
		{"clamp to sets", RMW, cfg, 32, 16, true},
	}
	for _, c := range cases {
		p := PlanShards(c.kind, c.cfg, c.req)
		if p.Shards != c.want || (p.Reason != "") != c.wantReason {
			t.Errorf("%s: PlanShards(%v, %d) = %+v, want shards=%d reason=%v",
				c.name, c.kind, c.req, p, c.want, c.wantReason)
		}
	}
}

func TestShardedStraddleAborts(t *testing.T) {
	// An access crossing a block boundary spills into another set — another
	// shard's state — so the sharded run must refuse it, not diverge.
	stream := []trace.Access{
		{Addr: 0, Size: 8, Kind: trace.Write, Data: 1},
		{Addr: 30, Size: 8, Kind: trace.Write, Data: 2}, // offset 30 + 8 > 32-byte block
	}
	_, err := RunSharded(RMW, smallCfg(), Options{}, trace.FromSlice(stream), 0, 0, 2)
	var cross *ShardCrossSetError
	if !errors.As(err, &cross) {
		t.Fatalf("err = %v, want ShardCrossSetError", err)
	}
	if cross.Access.Addr != 30 {
		t.Errorf("aborting access %v, want the straddler at 30", cross.Access)
	}
}

func TestShardedContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stream := randomStream(5, 2000, 8192)
	_, err := RunShardedContext(ctx, RMW, smallCfg(), Options{}, trace.FromSlice(stream), 0, 0, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestShardedHonorsMax(t *testing.T) {
	stream := randomStream(9, 4000, 8192)
	const max = 1500
	serial, err := RunStream(RMW, smallCfg(), Options{}, trace.FromSlice(stream), max, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSharded(RMW, smallCfg(), Options{}, trace.FromSlice(stream), max, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireResultsEqual(t, "bounded run", got, serial)
	if n := got.Requests.Accesses(); n != max {
		t.Fatalf("simulated %d accesses, want %d", n, max)
	}
}

func TestMergeResultsRejectsMismatch(t *testing.T) {
	stream := randomStream(2, 500, 4096)
	a, err := RunStream(RMW, smallCfg(), Options{}, trace.FromSlice(stream), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStream(Conventional, smallCfg(), Options{}, trace.FromSlice(stream), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeResults([]Result{a, b}); err == nil {
		t.Error("merged results from different controllers")
	}
	if _, err := MergeResults(nil); err == nil {
		t.Error("merged zero results")
	}
}

func TestRunEachStreamBroadcastMatchesSerial(t *testing.T) {
	// Satellite invariant: the single-decode broadcast path of RunEachStream
	// is byte-identical to the one-kind-at-a-time serial path, for every
	// controller kind at once.
	stream := randomStream(11, 4000, 8192)
	open := func() (trace.Stream, error) { return trace.FromSlice(stream), nil }
	kinds := Kinds()
	serial, err := RunEachStreamSerial(context.Background(), kinds, smallCfg(), Options{}, open, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunEachStream(context.Background(), kinds, smallCfg(), Options{}, open, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(serial) {
		t.Fatalf("got %d results, want %d", len(got), len(serial))
	}
	for i, k := range kinds {
		requireResultsEqual(t, fmt.Sprintf("broadcast %v", k), got[i], serial[i])
	}
}

func BenchmarkRunSharded(b *testing.B) {
	// nproc bounds the speedup this shows: with GOMAXPROCS=1 the sharded
	// path measures pure overhead (routing scan + goroutine switches); gains
	// appear once shards map onto real cores.
	cfg := cache.Config{SizeBytes: 64 * 1024, Ways: 8, BlockBytes: 64, Policy: cache.LRU}
	accs := randomStream(99, 200_000, 1<<20)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.SetBytes(int64(len(accs)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := RunSharded(RMW, cfg, Options{}, trace.FromSlice(accs), 0, 0, shards)
				if err != nil {
					b.Fatal(err)
				}
				if res.Requests.Accesses() != uint64(len(accs)) {
					b.Fatalf("simulated %d accesses, want %d", res.Requests.Accesses(), len(accs))
				}
			}
		})
	}
}
