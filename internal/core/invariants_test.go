package core

import (
	"testing"
	"testing/quick"

	"cache8t/internal/trace"
)

// The controllers' counters are not independent: the microarchitecture
// forces exact identities between them. These tests pin the identities on
// random aligned streams (the straddle fallback, which breaks them by
// design, cannot trigger on aligned accesses).

func TestWGRBCounterIdentities(t *testing.T) {
	for seed := uint64(40); seed < 46; seed++ {
		stream := randomStream(seed, 6000, 8192)
		res, err := Run(WGRB, smallCfg(), Options{}, trace.FromSlice(stream), 0)
		if err != nil {
			t.Fatal(err)
		}
		c := res.Counters
		// Every demand write either joined a group or triggered a fill.
		if c.GroupedWrites+c.BufferFills != c.DemandWrites {
			t.Errorf("seed %d: grouped %d + fills %d != writes %d",
				seed, c.GroupedWrites, c.BufferFills, c.DemandWrites)
		}
		// Array reads = demand reads that weren't bypassed + row reads
		// filling the Set-Buffer.
		if res.ArrayReads != c.DemandReads-c.BypassedReads+c.BufferFills {
			t.Errorf("seed %d: array reads %d != %d - %d + %d",
				seed, res.ArrayReads, c.DemandReads, c.BypassedReads, c.BufferFills)
		}
		// Every array write is a Set-Buffer write-back.
		if res.ArrayWrites != c.BufferWritebacks {
			t.Errorf("seed %d: array writes %d != buffer write-backs %d",
				seed, res.ArrayWrites, c.BufferWritebacks)
		}
		// Under WG+RB every read tag hit bypasses and every write tag hit
		// groups.
		if c.TagHits != c.GroupedWrites+c.BypassedReads {
			t.Errorf("seed %d: tag hits %d != grouped %d + bypassed %d",
				seed, c.TagHits, c.GroupedWrites, c.BypassedReads)
		}
		// One tag probe per request.
		if c.TagProbes != c.DemandReads+c.DemandWrites {
			t.Errorf("seed %d: probes %d != requests %d",
				seed, c.TagProbes, c.DemandReads+c.DemandWrites)
		}
		// WG+RB never writes back prematurely.
		if c.PrematureWBs != 0 {
			t.Errorf("seed %d: WG+RB premature write-backs = %d", seed, c.PrematureWBs)
		}
	}
}

func TestWGCounterIdentities(t *testing.T) {
	for seed := uint64(50); seed < 56; seed++ {
		stream := randomStream(seed, 6000, 8192)
		res, err := Run(WG, smallCfg(), Options{}, trace.FromSlice(stream), 0)
		if err != nil {
			t.Fatal(err)
		}
		c := res.Counters
		if c.GroupedWrites+c.BufferFills != c.DemandWrites {
			t.Errorf("seed %d: grouped %d + fills %d != writes %d",
				seed, c.GroupedWrites, c.BufferFills, c.DemandWrites)
		}
		// WG never bypasses: every demand read hits the array.
		if c.BypassedReads != 0 {
			t.Errorf("seed %d: WG bypassed %d reads", seed, c.BypassedReads)
		}
		if res.ArrayReads != c.DemandReads+c.BufferFills {
			t.Errorf("seed %d: array reads %d != %d + %d",
				seed, res.ArrayReads, c.DemandReads, c.BufferFills)
		}
		if res.ArrayWrites != c.BufferWritebacks {
			t.Errorf("seed %d: array writes %d != write-backs %d",
				seed, res.ArrayWrites, c.BufferWritebacks)
		}
		if c.PrematureWBs > c.BufferWritebacks {
			t.Errorf("seed %d: premature %d exceeds total write-backs %d",
				seed, c.PrematureWBs, c.BufferWritebacks)
		}
	}
}

func TestGroupSizeHistogramConsistency(t *testing.T) {
	for seed := uint64(60); seed < 64; seed++ {
		stream := randomStream(seed, 6000, 8192)
		res, err := Run(WG, smallCfg(), Options{}, trace.FromSlice(stream), 0)
		if err != nil {
			t.Fatal(err)
		}
		c := res.Counters
		var groups uint64
		for _, g := range c.GroupSizes {
			groups += g
		}
		// Every fill opens exactly one group, and Finalize closes them all.
		if groups != c.BufferFills {
			t.Errorf("seed %d: %d groups recorded, %d fills", seed, groups, c.BufferFills)
		}
		if groups > 0 {
			mean := c.MeanGroupSize()
			if mean < 1 {
				t.Errorf("seed %d: mean group size %.3f below 1", seed, mean)
			}
			// Mean must be consistent with total buffered writes.
			want := float64(c.GroupedWrites+c.BufferFills) / float64(groups)
			if mean != want {
				t.Errorf("seed %d: MeanGroupSize %.4f != %.4f", seed, mean, want)
			}
		}
	}
}

func TestRMWEventIdentities(t *testing.T) {
	stream := randomStream(70, 6000, 8192)
	res, err := Run(RMW, smallCfg(), Options{}, trace.FromSlice(stream), 0)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if res.ArrayReads != c.DemandReads+c.DemandWrites {
		t.Errorf("RMW array reads %d != reads %d + writes %d",
			res.ArrayReads, c.DemandReads, c.DemandWrites)
	}
	if res.ArrayWrites != c.DemandWrites {
		t.Errorf("RMW array writes %d != demand writes %d", res.ArrayWrites, c.DemandWrites)
	}
	if c.TagProbes != 0 || c.TagHits != 0 {
		t.Error("RMW has no Tag-Buffer but probed it")
	}
}

func TestMeanGroupSizeZeroGuard(t *testing.T) {
	if (Counters{}).MeanGroupSize() != 0 {
		t.Fatal("empty counters produced a group size")
	}
}

// TestEquivalenceQuick drives the equivalence invariant through
// testing/quick: arbitrary seeds produce arbitrary request streams, and the
// paper's controllers must stay observationally identical to RMW on all of
// them.
func TestEquivalenceQuick(t *testing.T) {
	f := func(seed uint64, depthSel uint8, noSilent bool) bool {
		stream := randomStream(seed, 800, 4096)
		opts := Options{
			BufferDepth:          []int{1, 2, 4}[depthSel%3],
			DisableSilentElision: noSilent,
		}
		for _, k := range []Kind{WG, WGRB, Coalesce} {
			if err := VerifyEquivalence(RMW, k, smallCfg(), opts, stream); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestReductionBoundsQuick: for any stream, the reductions stay within their
// provable bounds — WG and WG+RB never exceed RMW's traffic, and WG+RB's
// array reads never exceed demand reads plus fills.
func TestReductionBoundsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		stream := randomStream(seed, 1000, 8192)
		res, err := RunAll([]Kind{RMW, WG, WGRB}, smallCfg(), Options{}, stream)
		if err != nil {
			t.Log(err)
			return false
		}
		rmw, wg, rb := res[0], res[1], res[2]
		if wg.ArrayAccesses() > rmw.ArrayAccesses() || rb.ArrayAccesses() > wg.ArrayAccesses() {
			return false
		}
		c := rb.Counters
		return rb.ArrayReads <= c.DemandReads+c.BufferFills
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
