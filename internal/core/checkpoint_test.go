package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/mem"
	"cache8t/internal/trace"
)

// checkpointVariants are the (config, options) points the identity property
// is checked at: the paper baseline shape, the stochastic replacement policy
// (whose shared RNG is the subtlest piece of checkpointed state), and the
// no-write-allocate ablation with a deeper Set-Buffer.
func checkpointVariants() []struct {
	label string
	cfg   cache.Config
	opts  Options
} {
	lru := smallCfg()
	random := smallCfg()
	random.Policy = cache.Random
	random.Seed = 42
	noalloc := smallCfg()
	noalloc.Policy = cache.TreePLRU
	noalloc.NoWriteAllocate = true
	return []struct {
		label string
		cfg   cache.Config
		opts  Options
	}{
		{"lru", lru, Options{}},
		{"random-depth2", random, Options{BufferDepth: 2}},
		{"plru-noalloc", noalloc, Options{DisableSilentElision: true, CountFillTraffic: true}},
	}
}

// TestCheckpointResumeIdentity is the tentpole property: for every
// controller kind, checkpointing at any batch boundary and resuming yields
// a Result identical to the straight-through run — counters, event ledger,
// and (checked separately below) the flushed memory image.
func TestCheckpointResumeIdentity(t *testing.T) {
	const n = 6000
	const footprint = 8192
	stream := randomStream(11, n, footprint)
	ctx := context.Background()
	for _, v := range checkpointVariants() {
		for _, k := range Kinds() {
			label := fmt.Sprintf("%v/%s", k, v.label)
			// Straight-through run, collecting a snapshot at every batch
			// boundary (snapshotting must not perturb the run).
			var blobs [][]byte
			straight, err := RunStreamCheckpointedContext(ctx, k, v.cfg, v.opts,
				trace.FromSlice(stream), 0, 257, 1,
				func(blob []byte, accesses uint64) error {
					blobs = append(blobs, blob)
					return nil
				})
			if err != nil {
				t.Fatalf("%s: straight run: %v", label, err)
			}
			if len(blobs) < 3 {
				t.Fatalf("%s: only %d snapshots collected", label, len(blobs))
			}
			// Resume from the first, a middle, and the last boundary, with a
			// different batch size so resumed batch boundaries never line up
			// with the original ones.
			for _, idx := range []int{0, len(blobs) / 2, len(blobs) - 1} {
				got, err := ResumeStreamContext(ctx, blobs[idx],
					trace.FromSlice(stream), 0, 97, 0, nil)
				if err != nil {
					t.Fatalf("%s: resume from snapshot %d: %v", label, idx, err)
				}
				requireResultsEqual(t, fmt.Sprintf("%s resume@%d", label, idx), got, straight)
			}
		}
	}
}

// TestCheckpointResumeMemoryImage drives straight and resumed runs by hand
// so both caches stay inspectable, then compares the flushed memory images
// byte for byte — the part of machine state Result does not carry.
func TestCheckpointResumeMemoryImage(t *testing.T) {
	const n = 5000
	stream := randomStream(23, n, 8192)
	for _, v := range checkpointVariants() {
		for _, k := range Kinds() {
			label := fmt.Sprintf("%v/%s", k, v.label)
			sc, err := cache.New(v.cfg, mem.New())
			if err != nil {
				t.Fatal(err)
			}
			sctrl, err := New(k, sc, v.opts)
			if err != nil {
				t.Fatal(err)
			}
			sd := NewDriver(sctrl)
			var blob []byte
			for i := 0; i < n; i += 500 {
				sd.Feed(stream[i : i+500])
				if i == n/2 {
					if blob, err = sd.Snapshot(v.cfg); err != nil {
						t.Fatalf("%s: snapshot: %v", label, err)
					}
				}
			}
			straight := sd.Finish()

			rd, _, fed, err := ResumeDriver(blob)
			if err != nil {
				t.Fatalf("%s: ResumeDriver: %v", label, err)
			}
			// A snapshot of the freshly restored driver must reproduce the
			// blob byte for byte: restore loses nothing the codec captures.
			reblob, err := rd.Snapshot(v.cfg)
			if err != nil {
				t.Fatalf("%s: re-snapshot: %v", label, err)
			}
			if !bytes.Equal(reblob, blob) {
				t.Errorf("%s: re-snapshot differs from original blob", label)
			}
			rd.Feed(stream[fed:])
			resumed := rd.Finish()
			requireResultsEqual(t, label, resumed, straight)

			rc := rd.ctrl.(baseHolder).baseState().cache
			sc.FlushAll()
			rc.FlushAll()
			if !sc.Backing().Equal(rc.Backing()) {
				t.Errorf("%s: flushed memory images differ", label)
			}
		}
	}
}

// TestResumeAgainstWrongStream pins the fail-closed behaviour when the
// resumed stream is shorter than the snapshot position.
func TestResumeAgainstWrongStream(t *testing.T) {
	stream := randomStream(5, 3000, 4096)
	var blobs [][]byte
	_, err := RunStreamCheckpointedContext(context.Background(), RMW, smallCfg(), Options{},
		trace.FromSlice(stream), 0, 256, 1,
		func(blob []byte, _ uint64) error { blobs = append(blobs, blob); return nil })
	if err != nil {
		t.Fatal(err)
	}
	last := blobs[len(blobs)-1]
	_, err = ResumeStreamContext(context.Background(), last,
		trace.FromSlice(stream[:100]), 0, 0, 0, nil)
	if !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("short stream: err = %v, want ErrBadCheckpoint", err)
	}
	// A budget below the snapshot position is equally unresumable.
	_, err = ResumeStreamContext(context.Background(), last,
		trace.FromSlice(stream), 100, 0, 0, nil)
	if !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("small budget: err = %v, want ErrBadCheckpoint", err)
	}
}

// TestResumeCorruptBlob hammers the decoder with truncations and bit flips:
// it must never panic, and every rejection must wrap ErrBadCheckpoint.
func TestResumeCorruptBlob(t *testing.T) {
	stream := randomStream(9, 2000, 4096)
	var blob []byte
	_, err := RunStreamCheckpointedContext(context.Background(), WGRB, smallCfg(), Options{},
		trace.FromSlice(stream), 0, 512, 2,
		func(b []byte, _ uint64) error {
			blob = b
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ResumeDriver(nil); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("nil blob: err = %v, want ErrBadCheckpoint", err)
	}
	for cut := 0; cut < len(blob); cut += 91 {
		if _, _, _, err := ResumeDriver(blob[:cut]); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("truncation at %d: err = %v, want ErrBadCheckpoint", cut, err)
		}
	}
	for off := 0; off < len(blob); off += 137 {
		mut := bytes.Clone(blob)
		mut[off] ^= 0x5a
		// A flip may land in a data byte and still decode; the contract is
		// no panic and no non-wrapped error.
		if _, _, _, err := ResumeDriver(mut); err != nil && !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("flip at %d: err = %v, want ErrBadCheckpoint wrap", off, err)
		}
	}
	if _, _, _, err := ResumeDriver(append(bytes.Clone(blob), 0)); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("trailing byte: err = %v, want ErrBadCheckpoint", err)
	}
}
