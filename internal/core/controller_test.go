package core

import (
	"errors"
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/mem"
	"cache8t/internal/rng"
	"cache8t/internal/trace"
)

func newMem() *mem.Memory { return mem.New() }

func TestKindStringAndParse(t *testing.T) {
	for _, k := range Kinds() {
		name := k.String()
		if name == "" {
			t.Fatalf("kind %d has empty name", k)
		}
		parsed, err := ParseKind(name)
		if err != nil || parsed != k {
			t.Errorf("ParseKind(%q) = %v, %v", name, parsed, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus")
	}
	if Kind(77).String() != "Kind(77)" {
		t.Error("unknown kind string")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(RMW, nil, Options{}); err == nil {
		t.Error("nil cache accepted")
	}
	c, _ := cache.New(cache.DefaultConfig(), newMem())
	if _, err := New(Kind(99), c, Options{}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := New(WG, c, Options{BufferDepth: -1}); err == nil {
		t.Error("negative depth accepted")
	}
}

// randomStream builds a reproducible stream with realistic structure: mixed
// kinds, a small hot footprint (so sets collide), occasional repeat writes of
// the same value (silent candidates).
func randomStream(seed uint64, n int, footprint uint64) []trace.Access {
	r := rng.New(seed)
	out := make([]trace.Access, 0, n)
	sizes := []uint8{1, 2, 4, 8}
	for i := 0; i < n; i++ {
		size := sizes[r.Intn(len(sizes))]
		addr := uint64(r.Intn(int(footprint/uint64(size)))) * uint64(size)
		a := trace.Access{Addr: addr, Size: size, Gap: uint32(r.Intn(5))}
		if r.Bool(0.4) {
			a.Kind = trace.Write
			if r.Bool(0.4) {
				a.Data = 0 // often silent against zeroed memory
			} else {
				a.Data = r.Uint64()
			}
		}
		out = append(out, a)
	}
	return out
}

func smallCfg() cache.Config {
	// Tiny cache: lots of conflict misses, evictions inside buffered sets.
	return cache.Config{SizeBytes: 1024, Ways: 2, BlockBytes: 32, Policy: cache.LRU}
}

func TestEquivalenceAcrossControllers(t *testing.T) {
	// The DESIGN.md §5 correctness invariant: every controller is
	// observationally identical to the RMW baseline.
	pairs := [][2]Kind{
		{RMW, Conventional},
		{RMW, WordGranularity},
		{RMW, LocalRMW},
		{RMW, WG},
		{RMW, WGRB},
		{WG, WGRB},
	}
	for seed := uint64(1); seed <= 5; seed++ {
		stream := randomStream(seed, 4000, 8192)
		for _, p := range pairs {
			if err := VerifyEquivalence(p[0], p[1], smallCfg(), Options{}, stream); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}
	}
}

func TestEquivalenceWithDeepBuffers(t *testing.T) {
	for _, depth := range []int{1, 2, 4, 8} {
		stream := randomStream(uint64(depth)*11, 4000, 8192)
		opts := Options{BufferDepth: depth}
		if err := VerifyEquivalence(RMW, WG, smallCfg(), opts, stream); err != nil {
			t.Errorf("depth %d WG: %v", depth, err)
		}
		if err := VerifyEquivalence(RMW, WGRB, smallCfg(), opts, stream); err != nil {
			t.Errorf("depth %d WGRB: %v", depth, err)
		}
	}
}

func TestEquivalenceWithoutSilentElision(t *testing.T) {
	stream := randomStream(99, 4000, 8192)
	opts := Options{DisableSilentElision: true}
	if err := VerifyEquivalence(RMW, WGRB, smallCfg(), opts, stream); err != nil {
		t.Error(err)
	}
}

func TestAccessCountOrderingOnRandomStreams(t *testing.T) {
	// Counting invariants (DESIGN.md §5): WG <= RMW, WGRB <= WG; the
	// Conventional 6T reference is the floor.
	for seed := uint64(10); seed < 16; seed++ {
		stream := randomStream(seed, 8000, 16384)
		results, err := RunAll([]Kind{Conventional, RMW, WG, WGRB}, smallCfg(), Options{}, stream)
		if err != nil {
			t.Fatal(err)
		}
		conv, rmw, wg, wgrb := results[0], results[1], results[2], results[3]
		if wg.ArrayAccesses() > rmw.ArrayAccesses() {
			t.Errorf("seed %d: WG %d > RMW %d", seed, wg.ArrayAccesses(), rmw.ArrayAccesses())
		}
		if wgrb.ArrayAccesses() > wg.ArrayAccesses() {
			t.Errorf("seed %d: WGRB %d > WG %d", seed, wgrb.ArrayAccesses(), wg.ArrayAccesses())
		}
		if conv.ArrayAccesses() > rmw.ArrayAccesses() {
			t.Errorf("seed %d: Conventional %d > RMW %d", seed, conv.ArrayAccesses(), rmw.ArrayAccesses())
		}
		// RMW inflation: exactly one extra access per write.
		if rmw.ArrayAccesses() != conv.ArrayAccesses()+rmw.Counters.DemandWrites {
			t.Errorf("seed %d: RMW inflation mismatch", seed)
		}
	}
}

func TestRMWOccupiesBothPorts(t *testing.T) {
	stream := []trace.Access{
		{Kind: trace.Write, Addr: 0, Size: 4, Data: 1},
		{Kind: trace.Write, Addr: 64, Size: 4, Data: 2},
	}
	r, err := Run(RMW, smallCfg(), Options{}, trace.FromSlice(stream), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Events.ReadPortBusy() != 2 || r.Events.WritePortBusy() != 2 {
		t.Errorf("ports busy = %d/%d, want 2/2", r.Events.ReadPortBusy(), r.Events.WritePortBusy())
	}
}

func TestWGFreesReadPortForGroupedWrites(t *testing.T) {
	// Ten writes to the same word: RMW reads the row ten times; WG reads it
	// once (the fill) — §4.1's read-port-availability argument.
	var stream []trace.Access
	for i := 0; i < 10; i++ {
		stream = append(stream, trace.Access{Kind: trace.Write, Addr: 0, Size: 4, Data: uint64(i + 1)})
	}
	rmw, _ := Run(RMW, smallCfg(), Options{}, trace.FromSlice(stream), 0)
	wg, _ := Run(WG, smallCfg(), Options{}, trace.FromSlice(stream), 0)
	if rmw.Events.ReadPortBusy() != 10 {
		t.Errorf("RMW read-port ops = %d, want 10", rmw.Events.ReadPortBusy())
	}
	if wg.Events.ReadPortBusy() != 1 {
		t.Errorf("WG read-port ops = %d, want 1 (single fill)", wg.Events.ReadPortBusy())
	}
	if wg.Counters.GroupedWrites != 9 {
		t.Errorf("GroupedWrites = %d, want 9", wg.Counters.GroupedWrites)
	}
}

func TestSilentElisionRemovesWriteback(t *testing.T) {
	// All-silent write group: with elision the buffer never writes back;
	// without it (A1 ablation) it must.
	stream := []trace.Access{
		{Kind: trace.Write, Addr: 0, Size: 8, Data: 0},
		{Kind: trace.Write, Addr: 8, Size: 8, Data: 0},
		{Kind: trace.Write, Addr: 16, Size: 8, Data: 0},
	}
	on, _ := Run(WG, smallCfg(), Options{}, trace.FromSlice(stream), 0)
	off, _ := Run(WG, smallCfg(), Options{DisableSilentElision: true}, trace.FromSlice(stream), 0)
	if on.Counters.BufferWritebacks != 0 {
		t.Errorf("with elision: %d writebacks, want 0", on.Counters.BufferWritebacks)
	}
	if on.Counters.SilentWrites != 3 {
		t.Errorf("SilentWrites = %d, want 3", on.Counters.SilentWrites)
	}
	if off.Counters.BufferWritebacks != 1 {
		t.Errorf("without elision: %d writebacks, want 1", off.Counters.BufferWritebacks)
	}
	if off.ArrayAccesses() <= on.ArrayAccesses() {
		t.Error("ablation did not increase traffic")
	}
}

func TestDeeperBufferGroupsInterleavedSets(t *testing.T) {
	// Writes ping-pong between two sets: a single-entry buffer thrashes,
	// a two-entry buffer groups everything (ablation A2's mechanism).
	g := cache.MustGeometry(1024, 2, 32)
	var stream []trace.Access
	for i := 0; i < 20; i++ {
		addr := uint64((i % 2) * g.BlockBytes) // set 0 / set 1
		stream = append(stream, trace.Access{Kind: trace.Write, Addr: addr, Size: 4, Data: uint64(i)})
	}
	d1, _ := Run(WG, smallCfg(), Options{BufferDepth: 1}, trace.FromSlice(stream), 0)
	d2, _ := Run(WG, smallCfg(), Options{BufferDepth: 2}, trace.FromSlice(stream), 0)
	if d2.ArrayAccesses() >= d1.ArrayAccesses() {
		t.Errorf("depth 2 (%d) not better than depth 1 (%d) on ping-pong writes",
			d2.ArrayAccesses(), d1.ArrayAccesses())
	}
	if d2.Counters.GroupedWrites != 18 {
		t.Errorf("depth 2 grouped %d writes, want 18", d2.Counters.GroupedWrites)
	}
}

func TestCountFillTrafficAddsMissCosts(t *testing.T) {
	stream := randomStream(3, 2000, 65536) // big footprint: many misses
	base, _ := Run(RMW, smallCfg(), Options{}, trace.FromSlice(stream), 0)
	with, _ := Run(RMW, smallCfg(), Options{CountFillTraffic: true}, trace.FromSlice(stream), 0)
	if with.ArrayAccesses() <= base.ArrayAccesses() {
		t.Error("CountFillTraffic did not add accesses")
	}
	if base.Cache.Fills == 0 {
		t.Fatal("test stream produced no fills")
	}
}

func TestStraddlingAccessFallback(t *testing.T) {
	// A write crossing a block boundary takes the conservative RMW path and
	// stays architecturally correct.
	g := cache.MustGeometry(1024, 2, 32)
	straddle := uint64(g.BlockBytes - 2)
	stream := []trace.Access{
		{Kind: trace.Write, Addr: 0, Size: 4, Data: 7},
		{Kind: trace.Write, Addr: straddle, Size: 8, Data: 0x1122334455667788},
		{Kind: trace.Read, Addr: straddle, Size: 8},
		{Kind: trace.Read, Addr: 0, Size: 4},
	}
	if err := VerifyEquivalence(RMW, WGRB, smallCfg(), Options{}, stream); err != nil {
		t.Error(err)
	}
}

func TestEvictionInsideBufferedSetFlushesBuffer(t *testing.T) {
	// Fill a 2-way set completely, buffer a write, then read a third tag in
	// that set: the fill must not tear the buffered snapshot.
	g := cache.MustGeometry(1024, 2, 32)
	stride := uint64(g.Sets * g.BlockBytes)
	stream := []trace.Access{
		{Kind: trace.Read, Addr: 0, Size: 4},
		{Kind: trace.Read, Addr: stride, Size: 4},
		{Kind: trace.Write, Addr: 0, Size: 4, Data: 42}, // buffered
		{Kind: trace.Read, Addr: 2 * stride, Size: 4},   // evicts within the set
		{Kind: trace.Read, Addr: 0, Size: 4},            // must still see 42
	}
	if err := VerifyEquivalence(RMW, WG, smallCfg(), Options{}, stream); err != nil {
		t.Error(err)
	}
	if err := VerifyEquivalence(RMW, WGRB, smallCfg(), Options{}, stream); err != nil {
		t.Error(err)
	}
	// Direct value check.
	c, _ := cache.New(smallCfg(), newMem())
	ctrl, _ := New(WGRB, c, Options{})
	var last uint64
	for _, a := range stream {
		last = ctrl.Access(a)
	}
	if last != 42 {
		t.Errorf("read after in-set eviction = %d, want 42", last)
	}
}

func TestWriteMissInBufferedSetFlushesBuffer(t *testing.T) {
	g := cache.MustGeometry(1024, 2, 32)
	stride := uint64(g.Sets * g.BlockBytes)
	stream := []trace.Access{
		{Kind: trace.Read, Addr: 0, Size: 4},
		{Kind: trace.Read, Addr: stride, Size: 4},
		{Kind: trace.Write, Addr: 0, Size: 4, Data: 1},          // buffer set 0
		{Kind: trace.Write, Addr: 2 * stride, Size: 4, Data: 2}, // same set, new tag
		{Kind: trace.Read, Addr: 0, Size: 4},
		{Kind: trace.Read, Addr: 2 * stride, Size: 4},
	}
	if err := VerifyEquivalence(RMW, WGRB, smallCfg(), Options{}, stream); err != nil {
		t.Error(err)
	}
}

func TestResultDerivedFields(t *testing.T) {
	r := Result{ArrayReads: 6, ArrayWrites: 4}
	if r.ArrayAccesses() != 10 {
		t.Error("ArrayAccesses wrong")
	}
	if r.AccessesPerRequest() != 0 {
		t.Error("zero-request AccessesPerRequest should be 0")
	}
	r.Requests = trace.Stats{Reads: 4, Writes: 1}
	if got := r.AccessesPerRequest(); got != 2 {
		t.Errorf("AccessesPerRequest = %v", got)
	}
}

func TestDivergenceErrorMessages(t *testing.T) {
	e := &DivergenceError{Step: 3, A: RMW, B: WG, ValueA: 1, ValueB: 2,
		Access: trace.Access{Kind: trace.Read, Addr: 16, Size: 4}}
	if e.Error() == "" {
		t.Error("empty error")
	}
	me := &DivergenceError{A: RMW, B: WGRB, MemoryImage: true}
	if me.Error() == "" {
		t.Error("empty memory-image error")
	}
	var err error = e
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Error("errors.As failed")
	}
}

func TestLocalRMWMatchesRMWTrafficButFlagsLocality(t *testing.T) {
	stream := randomStream(21, 3000, 8192)
	rmw, _ := Run(RMW, smallCfg(), Options{}, trace.FromSlice(stream), 0)
	local, _ := Run(LocalRMW, smallCfg(), Options{}, trace.FromSlice(stream), 0)
	if rmw.ArrayAccesses() != local.ArrayAccesses() {
		t.Errorf("LocalRMW traffic %d != RMW traffic %d", local.ArrayAccesses(), rmw.ArrayAccesses())
	}
	if !local.LocalWriteback || rmw.LocalWriteback {
		t.Error("LocalWriteback flags wrong")
	}
}

func TestWordGranularityMatchesConventionalTraffic(t *testing.T) {
	stream := randomStream(22, 3000, 8192)
	conv, _ := Run(Conventional, smallCfg(), Options{}, trace.FromSlice(stream), 0)
	word, _ := Run(WordGranularity, smallCfg(), Options{}, trace.FromSlice(stream), 0)
	if conv.ArrayAccesses() != word.ArrayAccesses() {
		t.Errorf("WordGranularity %d != Conventional %d", word.ArrayAccesses(), conv.ArrayAccesses())
	}
	// But their arrays differ: word-granularity forgoes interleaving.
	if word.Events.Config().NeedsRMW() {
		t.Error("WordGranularity array should not need RMW")
	}
	if word.Events.Config().Cell != 0 && conv.Events.Config().Cell == word.Events.Config().Cell {
		t.Error("Conventional should use 6T, WordGranularity 8T")
	}
}

func TestRunRespectsMax(t *testing.T) {
	stream := randomStream(5, 100, 4096)
	r, err := Run(RMW, smallCfg(), Options{}, trace.FromSlice(stream), 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests.Accesses() != 10 {
		t.Errorf("processed %d, want 10", r.Requests.Accesses())
	}
}

func TestTinyCacheSubarrayClamp(t *testing.T) {
	// Regression: a 2-set cache must still build (sub-arrays clamp to the
	// set count) and stay equivalent to the baseline.
	cfg := cache.Config{SizeBytes: 512, Ways: 4, BlockBytes: 64, Policy: cache.LRU}
	stream := randomStream(99, 2000, 2048)
	for _, k := range []Kind{Conventional, WordGranularity, Coalesce, WG, WGRB} {
		if err := VerifyEquivalence(RMW, k, cfg, Options{BufferDepth: 4}, stream); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
	res, err := Run(WGRB, cfg, Options{}, trace.FromSlice(stream), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Events.Config().Subarrays; got != 2 {
		t.Errorf("subarrays = %d, want 2 (clamped to set count)", got)
	}
}
