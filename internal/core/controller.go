// Package core implements the paper's contribution: cache write-path
// controllers for 8T SRAM arrays.
//
// All controllers share the same functional substrate (a write-allocate,
// write-back cache over shadow memory) and differ only in how many SRAM
// array operations each request costs:
//
//   - Conventional: the 6T reference — every write is a single array access.
//   - RMW: the 8T baseline (Morita et al.) — every write is a read-modify-
//     write, two array accesses, occupying both ports.
//   - LocalRMW: Park et al.'s ablation — same traffic as RMW but the
//     write-back is contained in one sub-array.
//   - WordGranularity: Chang et al.'s ablation — non-interleaved array,
//     single-access writes, multi-bit-ECC/area penalty tracked elsewhere.
//   - WG: the paper's Write Grouping (§4.1, Algorithm 1).
//   - WGRB: Write Grouping + Read Bypassing (§4.2).
package core

import (
	"fmt"

	"cache8t/internal/cache"
	"cache8t/internal/sram"
	"cache8t/internal/trace"
)

// Kind identifies a controller implementation.
type Kind uint8

const (
	// Conventional is the 6T-style single-access-write reference.
	Conventional Kind = iota
	// RMW is the 8T read-modify-write baseline.
	RMW
	// LocalRMW is Park et al.'s sub-array-local write-back.
	LocalRMW
	// WordGranularity is Chang et al.'s non-interleaved organization.
	WordGranularity
	// WG is the paper's Write Grouping.
	WG
	// WGRB is Write Grouping + Read Bypassing.
	WGRB
	// Coalesce is a conventional block-granular coalescing write buffer in
	// front of RMW — the A4 ablation isolating WG's set-granularity.
	Coalesce
	// KindTS is a timing-speculation controller modeled on TS Cache
	// (arXiv:1904.11200): the rival low-voltage approach, where reads
	// complete speculatively against aggressive timing and a deterministic
	// mis-speculation model replays the offending read through the array.
	// Writes take the plain RMW path, so KindTS sits on the same
	// access-frequency axis as the paper's schemes.
	KindTS
)

// String names the controller kind.
func (k Kind) String() string {
	switch k {
	case Conventional:
		return "Conventional"
	case RMW:
		return "RMW"
	case LocalRMW:
		return "LocalRMW"
	case WordGranularity:
		return "WordGranularity"
	case WG:
		return "WG"
	case WGRB:
		return "WG+RB"
	case Coalesce:
		return "Coalesce"
	case KindTS:
		return "TS"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind converts a CLI name into a Kind.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "conventional", "6t", "Conventional":
		return Conventional, nil
	case "rmw", "RMW":
		return RMW, nil
	case "localrmw", "LocalRMW":
		return LocalRMW, nil
	case "word", "wordgranularity", "WordGranularity":
		return WordGranularity, nil
	case "wg", "WG":
		return WG, nil
	case "wgrb", "wg+rb", "WGRB", "WG+RB":
		return WGRB, nil
	case "coalesce", "Coalesce":
		return Coalesce, nil
	case "ts", "TS":
		return KindTS, nil
	default:
		return 0, fmt.Errorf("core: unknown controller %q", name)
	}
}

// Kinds returns all controller kinds in presentation order.
func Kinds() []Kind {
	return []Kind{Conventional, RMW, LocalRMW, WordGranularity, Coalesce, WG, WGRB, KindTS}
}

// SetLocal reports whether this kind's controller factors across cache sets:
// every observable effect of an access (cache mutation, counters, array
// events, memory traffic) depends only on the subsequence of accesses to
// that access's set. Set-local controllers can be sharded by set index
// (RunSharded) with byte-identical merged results. The direct (Conventional,
// WordGranularity) and RMW (RMW, LocalRMW) controllers qualify; the WG
// family's Set-Buffer and the coalescer's pending-write window carry global
// cross-set state — which set is buffered next depends on the interleaving
// of *all* sets' accesses — so they must run serially. KindTS's replay
// schedule counts reads globally (every R-th read mis-speculates regardless
// of set), so it is not set-local either.
func (k Kind) SetLocal() bool {
	switch k {
	case Conventional, WordGranularity, RMW, LocalRMW:
		return true
	default:
		return false
	}
}

// Options tune behaviours shared by every controller.
type Options struct {
	// BufferDepth is the number of Set-Buffer entries for WG/WGRB. The
	// paper uses exactly 1; larger depths are the A2 ablation. Ignored by
	// other controllers. Zero means 1.
	BufferDepth int
	// DisableSilentElision turns off the Dirty-bit silent-write
	// optimization in WG/WGRB (A1 ablation: every buffered set writes back
	// even if all its writes were silent).
	DisableSilentElision bool
	// CountFillTraffic adds miss-handling array traffic (line fills and
	// dirty evictions) to the array-access totals at Finalize. The paper's
	// Pin tool counts request traffic only, so this defaults to off.
	CountFillTraffic bool
}

// Counters are the per-run event counts a controller accumulates beyond the
// raw array event ledger.
type Counters struct {
	DemandReads  uint64 // read requests processed
	DemandWrites uint64 // write requests processed

	TagProbes uint64 // Tag-Buffer comparator activations
	TagHits   uint64 // requests whose set+tag matched a Set-Buffer entry

	GroupedWrites    uint64 // writes absorbed by an already-filled Set-Buffer
	SilentWrites     uint64 // writes detected as silent by the comparators
	SilentElidedWBs  uint64 // Set-Buffer write-backs skipped via clear Dirty
	PrematureWBs     uint64 // write-backs forced early by a read Tag-Buffer hit
	BypassedReads    uint64 // reads served from the Set-Buffer (WG+RB only)
	BufferFills      uint64 // Set-Buffer row-read fills
	BufferWritebacks uint64 // Set-Buffer row-write write-backs actually done

	// GroupSizes histograms write groups by size at buffer eviction:
	// buckets for 1, 2, 3-4, 5-8, and 9+ writes per group.
	GroupSizes [5]uint64
}

// recordGroup buckets one closed write group of n writes.
func (c *Counters) recordGroup(n uint64) {
	switch {
	case n <= 1:
		c.GroupSizes[0]++
	case n == 2:
		c.GroupSizes[1]++
	case n <= 4:
		c.GroupSizes[2]++
	case n <= 8:
		c.GroupSizes[3]++
	default:
		c.GroupSizes[4]++
	}
}

// MeanGroupSize returns buffered writes per group (groups of size >= 1).
func (c Counters) MeanGroupSize() float64 {
	var groups uint64
	for _, g := range c.GroupSizes {
		groups += g
	}
	if groups == 0 {
		return 0
	}
	return float64(c.GroupedWrites+c.BufferFills) / float64(groups)
}

// Result is the outcome of running one controller over one request stream.
type Result struct {
	Controller Kind
	Geometry   cache.Geometry
	Requests   trace.Stats
	Cache      cache.Stats
	Counters   Counters

	// ArrayReads/ArrayWrites are row-level array operations, the paper's
	// "cache accesses". ArrayAccesses = ArrayReads + ArrayWrites.
	ArrayReads  uint64
	ArrayWrites uint64

	// LocalWriteback marks results whose write phase is contained to one
	// sub-array (Park et al.), for the timing model.
	LocalWriteback bool

	// Events is the full circuit-level event ledger for energy accounting.
	Events *sram.Array
}

// ArrayAccesses returns total array operations — the quantity Figures 9-11
// report reductions of.
func (r Result) ArrayAccesses() uint64 { return r.ArrayReads + r.ArrayWrites }

// AccessesPerRequest returns array operations per demand request.
func (r Result) AccessesPerRequest() float64 {
	if n := r.Requests.Accesses(); n > 0 {
		return float64(r.ArrayAccesses()) / float64(n)
	}
	return 0
}

// Controller consumes a request stream against a cache, accounting array
// traffic according to one write-path scheme.
type Controller interface {
	// Kind identifies the scheme.
	Kind() Kind
	// Access processes one request and returns the value read (reads) or
	// the value now stored (writes); used by correctness verification.
	Access(a trace.Access) uint64
	// SetLocal reports whether the controller's effects factor across cache
	// sets (see Kind.SetLocal) — the capability the sharded driver checks
	// before partitioning a run by set index.
	SetLocal() bool
	// Finalize drains internal buffers (Set-Buffer write-back) and returns
	// the run's Result. The controller must not be used afterwards.
	Finalize() Result
}

// New builds a controller of the given kind over c.
func New(kind Kind, c *cache.Cache, opts Options) (Controller, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil cache")
	}
	arr, err := newArrayFor(kind, c.Geometry())
	if err != nil {
		return nil, err
	}
	base := base{kind: kind, cache: c, geom: c.Geometry(), array: arr, opts: opts}
	switch kind {
	case Conventional, WordGranularity:
		return &directController{base: base}, nil
	case RMW, LocalRMW:
		return &rmwController{base: base}, nil
	case Coalesce:
		return &coalesceController{base: base}, nil
	case KindTS:
		return &tsController{base: base}, nil
	case WG, WGRB:
		return newWGController(base)
	default:
		return nil, fmt.Errorf("core: unknown controller kind %d", kind)
	}
}

// newArrayFor derives the SRAM organization implied by a controller choice:
// one row per cache set, bit-interleaved by the associativity except for the
// WordGranularity scheme, which forgoes interleaving (and thereby RMW) at
// the cost of multi-bit soft-error exposure.
func newArrayFor(kind Kind, g cache.Geometry) (*sram.Array, error) {
	cell := sram.EightT
	if kind == Conventional {
		cell = sram.SixT
	}
	interleave := g.Ways
	if kind == WordGranularity {
		interleave = 1
	}
	// Sets is a power of two, so min(4, sets) always divides it.
	subarrays := 4
	if g.Sets < subarrays {
		subarrays = g.Sets
	}
	return sram.NewArray(sram.ArrayConfig{
		Cell:       cell,
		Rows:       g.Sets,
		Cols:       g.SetBytes() * 8,
		Interleave: interleave,
		Subarrays:  subarrays,
	})
}

// base carries the state every controller shares.
type base struct {
	kind  Kind
	cache *cache.Cache
	// geom is the cache geometry hoisted out of the per-access path: Access
	// runs once per trace entry, and the method call plus struct copy of
	// cache.Geometry() is measurable there.
	geom     cache.Geometry
	array    *sram.Array
	opts     Options
	requests trace.Stats
	counters Counters
}

func (b *base) Kind() Kind { return b.kind }

// PeekCounters returns a copy of the live event counters mid-run. Every
// controller in this package exposes it via base; internal/hier diffs
// successive peeks to attribute microarchitectural events (premature
// Set-Buffer write-backs) to the access that caused them, since those never
// reach backing memory and so never fire a cache.Listener.
func (b *base) PeekCounters() Counters { return b.counters }

// SetLocal implements the Controller capability from the kind's static
// classification; every controller in this package shares it via base.
func (b *base) SetLocal() bool { return b.kind.SetLocal() }

// note records stream-level statistics for one request.
func (b *base) note(a trace.Access) {
	b.requests.Observe(a)
	if a.Kind == trace.Read {
		b.counters.DemandReads++
	} else {
		b.counters.DemandWrites++
	}
}

// sizeMask selects the low size bytes of a data word. After a write commits,
// the stored value is exactly a.Data & sizeMask(a.Size) — cache.WriteWord
// stores those bytes verbatim (spill included) — so controllers return the
// mask instead of paying a ReadWord per store.
func sizeMask(size uint8) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return 1<<(8*size) - 1
}

// writeAround handles a write under the no-write-allocate policy: if the
// block is not resident, the store bypasses the SRAM array entirely (it
// heads for the next level through the miss path) and costs no array
// operation. Returns the stored value and true when it applied.
func (b *base) writeAround(a trace.Access) (uint64, bool) {
	if !b.cache.NoWriteAllocate() {
		return 0, false
	}
	if _, _, hit := b.cache.Probe(a.Addr); hit {
		return 0, false
	}
	b.cache.WriteAround(a.Addr, a.Size, a.Data)
	return b.cache.PeekWord(a.Addr, a.Size), true
}

// finalize assembles the Result shared by all controllers.
func (b *base) finalize(localWriteback bool) Result {
	r := Result{
		Controller:     b.kind,
		Geometry:       b.cache.Geometry(),
		Requests:       b.requests,
		Cache:          b.cache.Stats(),
		Counters:       b.counters,
		ArrayReads:     b.array.Count(sram.EvRowRead),
		ArrayWrites:    b.array.Count(sram.EvRowWrite),
		LocalWriteback: localWriteback,
		Events:         b.array,
	}
	if b.opts.CountFillTraffic {
		// A fill writes one block into a row (a partial-row write: RMW cost
		// on interleaved 8T arrays, direct write otherwise); a dirty
		// eviction reads the row out. Mirror that in the totals.
		fills := r.Cache.Fills
		wbs := r.Cache.Writebacks
		if b.array.Config().NeedsRMW() {
			r.ArrayReads += fills
		}
		r.ArrayWrites += fills
		r.ArrayReads += wbs
	}
	return r
}
