package core

import (
	"cache8t/internal/trace"
)

// directController serves Conventional (6T) and WordGranularity (Chang et
// al.) schemes: a read is one array read, a write is one array write. No
// buffering, no RMW.
type directController struct {
	base
}

// Access processes one request.
func (c *directController) Access(a trace.Access) uint64 {
	c.note(a)
	if a.Kind == trace.Write {
		if v, ok := c.writeAround(a); ok {
			return v
		}
	}
	set, way, _ := c.cache.Ensure(a.Addr, a.Kind == trace.Write)
	if a.Kind == trace.Read {
		c.array.ReadAccess()
		return c.cache.ReadWord(set, way, a.Addr, a.Size)
	}
	c.array.DirectWrite()
	c.cache.WriteWord(set, way, a.Addr, a.Size, a.Data)
	return a.Data & sizeMask(a.Size)
}

// Finalize returns the run result.
func (c *directController) Finalize() Result {
	return c.finalize(false)
}

// rmwController is the 8T baseline: the column-selection issue in a
// bit-interleaved 8T array forces every write through read-modify-write
// (Morita et al., §2) — the addressed row is read into latches, selected
// columns are merged from Data-in, and the whole row is written back. Each
// write therefore costs two array accesses and occupies the read port,
// making 1R+1W dual-port operation impossible during writes.
//
// With kind == LocalRMW the traffic is identical but the write-back is
// contained within one sub-array (Park et al.), which the timing model
// credits with fewer port conflicts.
type rmwController struct {
	base
}

// Access processes one request.
func (c *rmwController) Access(a trace.Access) uint64 {
	c.note(a)
	if a.Kind == trace.Write {
		if v, ok := c.writeAround(a); ok {
			return v
		}
	}
	set, way, _ := c.cache.Ensure(a.Addr, a.Kind == trace.Write)
	if a.Kind == trace.Read {
		c.array.ReadAccess()
		return c.cache.ReadWord(set, way, a.Addr, a.Size)
	}
	c.array.RMW()
	c.cache.WriteWord(set, way, a.Addr, a.Size, a.Data)
	return a.Data & sizeMask(a.Size)
}

// Finalize returns the run result.
func (c *rmwController) Finalize() Result {
	return c.finalize(c.kind == LocalRMW)
}
