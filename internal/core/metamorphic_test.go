package core

import (
	"fmt"
	"testing"

	"cache8t/internal/trace"
)

// Metamorphic properties of the write-path controllers: known-silent trace
// mutations whose effect on specific counters is provable from the protocol,
// checked over seeded random traces. Each run goes through both execution
// paths — materialized slice replay and the batched streaming pipeline — and
// the two must agree exactly before the metamorphic relation is even judged.

// runBothPaths executes accs through Run (materialized) and RunStream
// (batched, deliberately small batches so batch boundaries land mid-burst)
// and fails the test unless the results are identical.
func runBothPaths(t *testing.T, kind Kind, opts Options, accs []trace.Access) Result {
	t.Helper()
	mat, err := Run(kind, smallCfg(), opts, trace.FromSlice(accs), 0)
	if err != nil {
		t.Fatal(err)
	}
	str, err := RunStream(kind, smallCfg(), opts, trace.FromSlice(accs), 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, str, mat)
	return mat
}

// withSilentDuplicates inserts, after every write, an identical write — a
// store of bytes that are already there, hence necessarily silent.
func withSilentDuplicates(accs []trace.Access) []trace.Access {
	out := make([]trace.Access, 0, 2*len(accs))
	for _, a := range accs {
		out = append(out, a)
		if a.Kind == trace.Write {
			out = append(out, a)
		}
	}
	return out
}

// withDuplicateReads inserts, after every read, the same read again.
func withDuplicateReads(accs []trace.Access) []trace.Access {
	out := make([]trace.Access, 0, 2*len(accs))
	for _, a := range accs {
		out = append(out, a)
		if a.Kind == trace.Read {
			out = append(out, a)
		}
	}
	return out
}

// TestMetamorphicSilentWriteInsertion: inserting silent writes must not
// change any dirty write-back count — not the cache's memory write-backs,
// not the Set-Buffer's row write-backs. For the grouping controllers the
// duplicate store lands in the still-buffered set, so it must cost no array
// access at all: total array traffic is invariant too. That is the paper's
// silent-store claim in executable form.
func TestMetamorphicSilentWriteInsertion(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		base := randomStream(seed, 3000, 1<<13)
		mutated := withSilentDuplicates(base)
		for _, k := range []Kind{RMW, WG, WGRB, KindTS} {
			t.Run(fmt.Sprintf("%v/seed%d", k, seed), func(t *testing.T) {
				r0 := runBothPaths(t, k, Options{}, base)
				r1 := runBothPaths(t, k, Options{}, mutated)
				if r1.Cache.Writebacks != r0.Cache.Writebacks {
					t.Errorf("memory writebacks changed: %d -> %d", r0.Cache.Writebacks, r1.Cache.Writebacks)
				}
				if r1.Counters.BufferWritebacks != r0.Counters.BufferWritebacks {
					t.Errorf("Set-Buffer writebacks changed: %d -> %d",
						r0.Counters.BufferWritebacks, r1.Counters.BufferWritebacks)
				}
				if r1.Cache.Fills != r0.Cache.Fills || r1.Cache.Evictions != r0.Cache.Evictions {
					t.Errorf("fill/eviction schedule changed: %d/%d -> %d/%d",
						r0.Cache.Fills, r0.Cache.Evictions, r1.Cache.Fills, r1.Cache.Evictions)
				}
				// RMW and TS pay full array cost for every store, silent or
				// not; only the grouping controllers absorb them for free.
				if k != RMW && k != KindTS && r1.ArrayAccesses() != r0.ArrayAccesses() {
					t.Errorf("array accesses changed under %v: %d -> %d — silent stores are not free",
						k, r0.ArrayAccesses(), r1.ArrayAccesses())
				}
			})
		}
	}
}

// TestMetamorphicReadDuplication: repeating a read that was just served must
// not change array *write* counts anywhere — the duplicate hits (no fill, no
// eviction, no write-back), and under WG the premature write-back its first
// copy may have forced leaves the buffer clean, so the repeat elides.
func TestMetamorphicReadDuplication(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		base := randomStream(seed, 3000, 1<<13)
		mutated := withDuplicateReads(base)
		for _, k := range []Kind{RMW, WG, WGRB, KindTS} {
			t.Run(fmt.Sprintf("%v/seed%d", k, seed), func(t *testing.T) {
				r0 := runBothPaths(t, k, Options{}, base)
				r1 := runBothPaths(t, k, Options{}, mutated)
				if r1.ArrayWrites != r0.ArrayWrites {
					t.Errorf("array writes changed: %d -> %d", r0.ArrayWrites, r1.ArrayWrites)
				}
				if r1.Cache.Writebacks != r0.Cache.Writebacks {
					t.Errorf("memory writebacks changed: %d -> %d", r0.Cache.Writebacks, r1.Cache.Writebacks)
				}
				if r1.Counters.BufferWritebacks != r0.Counters.BufferWritebacks {
					t.Errorf("Set-Buffer writebacks changed: %d -> %d",
						r0.Counters.BufferWritebacks, r1.Counters.BufferWritebacks)
				}
				if r1.Cache.Fills != r0.Cache.Fills || r1.Cache.Evictions != r0.Cache.Evictions {
					t.Errorf("fill/eviction schedule changed: %d/%d -> %d/%d",
						r0.Cache.Fills, r0.Cache.Evictions, r1.Cache.Fills, r1.Cache.Evictions)
				}
			})
		}
	}
}
