package core

import (
	"cache8t/internal/cache"
	"cache8t/internal/mem"
	"cache8t/internal/trace"
)

// StreamAnalysis holds the stream-level measurements behind the paper's
// motivation section: Figure 3 (read/write frequency, via Stats), Figure 4
// (consecutive same-set scenario breakdown), and Figure 5 (silent write
// frequency).
type StreamAnalysis struct {
	Stats trace.Stats

	// Pairs counts consecutive access pairs; SameSet counts the subset
	// whose two accesses map to the same cache set. Scenario[p][c] further
	// breaks SameSet down by the (previous, current) access kinds — the
	// paper's RR/RW/WW/WR taxonomy.
	Pairs    uint64
	SameSet  uint64
	Scenario [2][2]uint64

	// SilentWrites counts writes whose value matched what memory already
	// held at that address.
	SilentWrites uint64
}

// scenario fraction helpers, each relative to all consecutive pairs — the
// paper's Figure 4 plots the four shares so that they sum to the same-set
// share (~27% on average).

// RR returns the same-set read-after-read share of all pairs.
func (a StreamAnalysis) RR() float64 { return a.frac(a.Scenario[trace.Read][trace.Read]) }

// RW returns the same-set write-after-read share of all pairs.
func (a StreamAnalysis) RW() float64 { return a.frac(a.Scenario[trace.Read][trace.Write]) }

// WR returns the same-set read-after-write share of all pairs.
func (a StreamAnalysis) WR() float64 { return a.frac(a.Scenario[trace.Write][trace.Read]) }

// WW returns the same-set write-after-write share of all pairs.
func (a StreamAnalysis) WW() float64 { return a.frac(a.Scenario[trace.Write][trace.Write]) }

// SameSetFrac returns the share of consecutive pairs landing in one set.
func (a StreamAnalysis) SameSetFrac() float64 { return a.frac(a.SameSet) }

func (a StreamAnalysis) frac(n uint64) float64 {
	if a.Pairs == 0 {
		return 0
	}
	return float64(n) / float64(a.Pairs)
}

// SilentFrac returns silent writes as a fraction of all writes (Figure 5).
func (a StreamAnalysis) SilentFrac() float64 {
	if a.Stats.Writes == 0 {
		return 0
	}
	return float64(a.SilentWrites) / float64(a.Stats.Writes)
}

// Analyze measures a request stream against a cache geometry, consuming up
// to max accesses (max <= 0 drains the stream). Silent-write detection keeps
// an exact shadow image, so results are deterministic and architectural.
func Analyze(s trace.Stream, g cache.Geometry, max int) StreamAnalysis {
	var out StreamAnalysis
	shadow := mem.New()
	havePrev := false
	var prevKind trace.Kind
	var prevSet int
	n := 0
	for max <= 0 || n < max {
		a, ok := s.Next()
		if !ok {
			break
		}
		n++
		out.Stats.Observe(a)
		set := g.SetIndex(a.Addr)
		if havePrev {
			out.Pairs++
			if set == prevSet {
				out.SameSet++
				out.Scenario[prevKind][a.Kind]++
			}
		}
		if a.Kind == trace.Write {
			if shadow.WouldBeSilent(a.Addr, a.Size, a.Data) {
				out.SilentWrites++
			}
			shadow.WriteWord(a.Addr, a.Size, a.Data)
		}
		havePrev = true
		prevKind = a.Kind
		prevSet = set
	}
	return out
}
