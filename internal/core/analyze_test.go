package core

import (
	"math"
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/trace"
)

func TestAnalyzeScenarioBreakdown(t *testing.T) {
	g := cache.MustGeometry(1024, 2, 32)
	sameSet := uint64(0)
	otherSet := uint64(g.BlockBytes) // set 1
	r := func(addr uint64) trace.Access { return trace.Access{Kind: trace.Read, Addr: addr, Size: 4} }
	w := func(addr, v uint64) trace.Access {
		return trace.Access{Kind: trace.Write, Addr: addr, Size: 4, Data: v}
	}
	stream := []trace.Access{
		r(sameSet), r(sameSet), // RR same-set
		w(sameSet, 1), w(sameSet, 2), // RW then WW same-set
		r(sameSet),     // WR same-set
		r(otherSet),    // different set: not counted in scenarios
		w(otherSet, 3), // RW same-set (both in set 1)
	}
	a := Analyze(trace.FromSlice(stream), g, 0)
	if a.Pairs != 6 {
		t.Fatalf("Pairs = %d, want 6", a.Pairs)
	}
	if a.SameSet != 5 {
		t.Fatalf("SameSet = %d, want 5", a.SameSet)
	}
	if a.Scenario[trace.Read][trace.Read] != 1 {
		t.Errorf("RR = %d", a.Scenario[trace.Read][trace.Read])
	}
	if a.Scenario[trace.Read][trace.Write] != 2 {
		t.Errorf("RW = %d", a.Scenario[trace.Read][trace.Write])
	}
	if a.Scenario[trace.Write][trace.Write] != 1 {
		t.Errorf("WW = %d", a.Scenario[trace.Write][trace.Write])
	}
	if a.Scenario[trace.Write][trace.Read] != 1 {
		t.Errorf("WR = %d", a.Scenario[trace.Write][trace.Read])
	}
	// Shares sum to the same-set share.
	sum := a.RR() + a.RW() + a.WR() + a.WW()
	if math.Abs(sum-a.SameSetFrac()) > 1e-12 {
		t.Errorf("scenario shares %.4f != same-set share %.4f", sum, a.SameSetFrac())
	}
}

func TestAnalyzeSilentWrites(t *testing.T) {
	g := cache.MustGeometry(1024, 2, 32)
	stream := []trace.Access{
		{Kind: trace.Write, Addr: 0, Size: 4, Data: 5},  // non-silent
		{Kind: trace.Write, Addr: 0, Size: 4, Data: 5},  // silent
		{Kind: trace.Write, Addr: 0, Size: 4, Data: 6},  // non-silent
		{Kind: trace.Write, Addr: 64, Size: 4, Data: 0}, // silent (zero memory)
	}
	a := Analyze(trace.FromSlice(stream), g, 0)
	if a.SilentWrites != 2 {
		t.Fatalf("SilentWrites = %d, want 2", a.SilentWrites)
	}
	if got := a.SilentFrac(); got != 0.5 {
		t.Fatalf("SilentFrac = %v, want 0.5", got)
	}
}

func TestAnalyzeEmptyAndZeroGuards(t *testing.T) {
	g := cache.MustGeometry(1024, 2, 32)
	a := Analyze(trace.FromSlice(nil), g, 0)
	if a.SameSetFrac() != 0 || a.SilentFrac() != 0 || a.RR() != 0 {
		t.Error("empty analysis produced nonzero fractions")
	}
}

func TestAnalyzeRespectsMax(t *testing.T) {
	g := cache.MustGeometry(1024, 2, 32)
	stream := make([]trace.Access, 100)
	for i := range stream {
		stream[i] = trace.Access{Kind: trace.Read, Size: 4}
	}
	a := Analyze(trace.FromSlice(stream), g, 10)
	if a.Stats.Accesses() != 10 {
		t.Fatalf("analyzed %d, want 10", a.Stats.Accesses())
	}
}

func TestAnalyzeMatchesControllerSilentCount(t *testing.T) {
	// The analyzer's silent-write count and WG's comparator count agree on
	// streams without evictions (both see the same architectural values).
	stream := randomStream(77, 2000, 2048) // fits in 64KB cache: no evictions
	cfg := cache.DefaultConfig()
	g := cache.MustGeometry(cfg.SizeBytes, cfg.Ways, cfg.BlockBytes)
	a := Analyze(trace.FromSlice(stream), g, 0)
	r, err := Run(WG, cfg, Options{}, trace.FromSlice(stream), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.SilentWrites != r.Counters.SilentWrites {
		t.Errorf("analyzer silent %d != WG silent %d", a.SilentWrites, r.Counters.SilentWrites)
	}
}
