package pinlite

import (
	"errors"
	"fmt"

	"cache8t/internal/mem"
	"cache8t/internal/trace"
)

// MemHook observes one executed memory access — the pinlite analogue of a
// Pin analysis routine registered on memory operands.
type MemHook func(a trace.Access)

// Machine executes a Program over a byte-addressable memory.
type Machine struct {
	Regs [NumRegs]uint64
	Mem  *mem.Memory

	prog  Program
	pc    int
	icnt  uint64
	hooks []MemHook

	// gap counts non-memory instructions since the last memory access, so
	// hooks receive Pin-accurate instruction spacing.
	gap uint32
}

// ErrBudget reports that Run hit its instruction budget before halting.
var ErrBudget = errors.New("pinlite: instruction budget exhausted")

// NewMachine builds a machine for prog with a fresh memory.
func NewMachine(prog Program) *Machine {
	return &Machine{Mem: mem.New(), prog: prog}
}

// AddMemHook registers an instrumentation hook, Pin-style. Hooks run in
// registration order on every load and store.
func (m *Machine) AddMemHook(h MemHook) { m.hooks = append(m.hooks, h) }

// Instructions returns the number of instructions executed so far.
func (m *Machine) Instructions() uint64 { return m.icnt }

// Run executes until halt or until budget instructions have retired
// (budget <= 0 means no limit). It returns ErrBudget if the budget ran out,
// or an execution error (bad PC) otherwise.
func (m *Machine) Run(budget uint64) error {
	for {
		if budget > 0 && m.icnt >= budget {
			return ErrBudget
		}
		if m.pc < 0 || m.pc >= len(m.prog) {
			return fmt.Errorf("pinlite: pc %d out of program (len %d)", m.pc, len(m.prog))
		}
		in := m.prog[m.pc]
		m.pc++
		m.icnt++
		switch in.Op {
		case OpHalt:
			return nil
		case OpLi:
			m.Regs[in.D] = uint64(in.Imm)
			m.gap++
		case OpMov:
			m.Regs[in.D] = m.Regs[in.A]
			m.gap++
		case OpAdd:
			m.Regs[in.D] = m.Regs[in.A] + m.Regs[in.B]
			m.gap++
		case OpSub:
			m.Regs[in.D] = m.Regs[in.A] - m.Regs[in.B]
			m.gap++
		case OpMul:
			m.Regs[in.D] = m.Regs[in.A] * m.Regs[in.B]
			m.gap++
		case OpAnd:
			m.Regs[in.D] = m.Regs[in.A] & m.Regs[in.B]
			m.gap++
		case OpOr:
			m.Regs[in.D] = m.Regs[in.A] | m.Regs[in.B]
			m.gap++
		case OpXor:
			m.Regs[in.D] = m.Regs[in.A] ^ m.Regs[in.B]
			m.gap++
		case OpAddi:
			m.Regs[in.D] = m.Regs[in.A] + uint64(in.Imm)
			m.gap++
		case OpShl:
			m.Regs[in.D] = m.Regs[in.A] << (uint64(in.Imm) & 63)
			m.gap++
		case OpShr:
			m.Regs[in.D] = m.Regs[in.A] >> (uint64(in.Imm) & 63)
			m.gap++
		case OpLd:
			m.load(in, 8)
		case OpLd4:
			m.load(in, 4)
		case OpSt:
			m.store(in, 8)
		case OpSt4:
			m.store(in, 4)
		case OpBeq:
			m.branch(m.Regs[in.A] == m.Regs[in.B], in.Imm)
		case OpBne:
			m.branch(m.Regs[in.A] != m.Regs[in.B], in.Imm)
		case OpBlt:
			m.branch(m.Regs[in.A] < m.Regs[in.B], in.Imm)
		case OpBge:
			m.branch(m.Regs[in.A] >= m.Regs[in.B], in.Imm)
		case OpJmp:
			m.pc = int(in.Imm)
			m.gap++
		case OpJal:
			m.Regs[in.D] = uint64(m.pc)
			m.pc = int(in.Imm)
			m.gap++
		case OpJr:
			m.pc = int(m.Regs[in.A])
			m.gap++
		default:
			return fmt.Errorf("pinlite: invalid opcode %v at pc %d", in.Op, m.pc-1)
		}
	}
}

func (m *Machine) branch(taken bool, target int64) {
	if taken {
		m.pc = int(target)
	}
	m.gap++
}

func (m *Machine) load(in Instr, size uint8) {
	addr := m.Regs[in.A] + uint64(in.Imm)
	val := m.Mem.ReadWord(addr, size)
	m.Regs[in.D] = val
	m.emit(trace.Access{Kind: trace.Read, Addr: addr, Size: size, Data: val})
}

func (m *Machine) store(in Instr, size uint8) {
	addr := m.Regs[in.A] + uint64(in.Imm)
	val := m.Regs[in.D]
	if size < 8 {
		val &= 1<<(8*size) - 1
	}
	a := trace.Access{Kind: trace.Write, Addr: addr, Size: size, Data: val}
	m.emit(a) // hooks observe the access before memory commits, Pin-style
	m.Mem.WriteWord(addr, size, val)
}

func (m *Machine) emit(a trace.Access) {
	a.Gap = m.gap
	m.gap = 0
	for _, h := range m.hooks {
		h(a)
	}
}

// Trace runs prog to completion (or budget) and returns the memory accesses
// it performed. setup, if non-nil, can pre-load registers and memory.
func Trace(prog Program, budget uint64, setup func(*Machine)) ([]trace.Access, error) {
	m := NewMachine(prog)
	if setup != nil {
		setup(m)
	}
	var out []trace.Access
	m.AddMemHook(func(a trace.Access) { out = append(out, a) })
	err := m.Run(budget)
	if err != nil && !errors.Is(err, ErrBudget) {
		return nil, err
	}
	return out, nil
}
