package pinlite

import (
	"errors"
	"strings"
	"testing"

	"cache8t/internal/trace"
)

func TestAssembleBasics(t *testing.T) {
	p, err := Assemble(`
		; a comment
		li r1, 10        # trailing comment
		li r2, 0x20
	loop:
		addi r1, r1, -1
		bne r1, r3, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 5 {
		t.Fatalf("assembled %d instructions, want 5", len(p))
	}
	if p[0].Op != OpLi || p[0].D != 1 || p[0].Imm != 10 {
		t.Errorf("instr 0 = %+v", p[0])
	}
	if p[1].Imm != 0x20 {
		t.Errorf("hex immediate = %d", p[1].Imm)
	}
	if p[3].Op != OpBne || p[3].Imm != 2 {
		t.Errorf("branch target = %+v", p[3])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"frobnicate r1, r2", // unknown mnemonic
		"li r99, 1",         // bad register
		"li rx, 1",          // bad register
		"li r1",             // missing operand
		"li r1, 1, 2",       // extra operand
		"li r1, zzz",        // bad immediate
		"jmp nowhere\nhalt", // undefined label
		"a b:",              // bad label
		"x:\nx:\nhalt",      // duplicate label
		"add r1, r2",        // too few for ALU
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembled invalid source %q", src)
		}
	}
}

func TestInstrStringsRoundTripMnemonics(t *testing.T) {
	p := MustAssemble(`
		li r1, 5
		mov r2, r1
		add r3, r1, r2
		addi r3, r3, 1
		shl r4, r3, 2
		ld r5, r1, 8
		st4 r5, r2, 4
		beq r1, r2, end
		jmp end
	end:
		halt
	`)
	for _, in := range p {
		s := in.String()
		mnemonic, _, _ := strings.Cut(s, " ")
		if _, ok := opByName[mnemonic]; !ok {
			t.Errorf("disassembly %q has unknown mnemonic", s)
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustAssemble("nope")
}

func TestMachineALU(t *testing.T) {
	p := MustAssemble(`
		li r1, 6
		li r2, 7
		mul r3, r1, r2
		sub r4, r3, r1
		and r5, r3, r2
		or  r6, r1, r2
		xor r7, r1, r1
		shl r8, r1, 4
		shr r9, r8, 2
		halt
	`)
	m := NewMachine(p)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	want := map[int]uint64{3: 42, 4: 36, 5: 2, 6: 7, 7: 0, 8: 96, 9: 24}
	for reg, v := range want {
		if m.Regs[reg] != v {
			t.Errorf("r%d = %d, want %d", reg, m.Regs[reg], v)
		}
	}
	if m.Instructions() != uint64(len(p)) {
		t.Errorf("retired %d instructions, want %d", m.Instructions(), len(p))
	}
}

func TestMachineLoadStore(t *testing.T) {
	p := MustAssemble(`
		li r1, 0x1000
		li r2, 0xdeadbeefcafe
		st r2, r1, 0
		ld r3, r1, 0
		st4 r2, r1, 8
		ld4 r4, r1, 8
		halt
	`)
	m := NewMachine(p)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Regs[3] != 0xdeadbeefcafe {
		t.Errorf("r3 = %#x", m.Regs[3])
	}
	if m.Regs[4] != 0xbeefcafe {
		t.Errorf("r4 = %#x (4-byte load should truncate)", m.Regs[4])
	}
}

func TestMachineBudget(t *testing.T) {
	p := MustAssemble("spin:\n jmp spin\n")
	m := NewMachine(p)
	err := m.Run(1000)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if m.Instructions() != 1000 {
		t.Errorf("retired %d, want 1000", m.Instructions())
	}
}

func TestMachineBadPC(t *testing.T) {
	// A program that runs off the end (no halt).
	p := MustAssemble("li r1, 1")
	if err := NewMachine(p).Run(0); err == nil {
		t.Fatal("running off the end did not error")
	}
}

func TestHookObservesAccessesWithGaps(t *testing.T) {
	p := MustAssemble(`
		li r1, 0x100
		li r2, 7
		st r2, r1, 0
		addi r2, r2, 1
		addi r2, r2, 1
		ld r3, r1, 0
		halt
	`)
	var got []trace.Access
	m := NewMachine(p)
	m.AddMemHook(func(a trace.Access) { got = append(got, a) })
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("observed %d accesses, want 2", len(got))
	}
	if got[0].Kind != trace.Write || got[0].Addr != 0x100 || got[0].Data != 7 {
		t.Errorf("store access = %+v", got[0])
	}
	if got[0].Gap != 2 {
		t.Errorf("store gap = %d, want 2 (two li before it)", got[0].Gap)
	}
	if got[1].Kind != trace.Read || got[1].Data != 7 {
		t.Errorf("load access = %+v", got[1])
	}
	if got[1].Gap != 2 {
		t.Errorf("load gap = %d, want 2 (two addi between)", got[1].Gap)
	}
}

func TestMemsetKernel(t *testing.T) {
	k := NewMemset(0x1000, 100, 42)
	accs, err := k.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 100 {
		t.Fatalf("memset emitted %d accesses, want 100", len(accs))
	}
	for i, a := range accs {
		if a.Kind != trace.Write || a.Data != 42 {
			t.Fatalf("access %d = %+v", i, a)
		}
		if a.Addr != 0x1000+uint64(i)*8 {
			t.Fatalf("access %d addr = %#x", i, a.Addr)
		}
	}
}

func TestMemcpyKernel(t *testing.T) {
	k := NewMemcpy(0x1000, 0x9000, 50)
	m := NewMachine(k.Prog)
	k.Setup(m)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		src := m.Mem.ReadWord(0x1000+uint64(i)*8, 8)
		dst := m.Mem.ReadWord(0x9000+uint64(i)*8, 8)
		if src != dst {
			t.Fatalf("word %d: src %#x dst %#x", i, src, dst)
		}
		if src == 0 {
			t.Fatalf("word %d: source not seeded", i)
		}
	}
}

func TestSaxpyKernelValues(t *testing.T) {
	k := NewSaxpy(0x1000, 0x9000, 10, 3)
	m := NewMachine(k.Prog)
	k.Setup(m)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		want := 3 * uint64(i+1) // y started zero
		if got := m.Mem.ReadWord(0x9000+uint64(i)*8, 8); got != want {
			t.Fatalf("y[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestSaxpyZeroIsAllSilent(t *testing.T) {
	// a == 0 over zeroed y: every store rewrites zero.
	k := NewSaxpy(0x1000, 0x9000, 64, 0)
	accs, err := k.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range accs {
		if a.Kind == trace.Write && a.Data != 0 {
			t.Fatalf("non-silent store %+v", a)
		}
	}
}

func TestMatmulKernel(t *testing.T) {
	const n = 6
	aBase, bBase, cBase := uint64(0x1000), uint64(0x3000), uint64(0x5000)
	k := NewMatmul(aBase, bBase, cBase, n)
	m := NewMachine(k.Prog)
	k.Setup(m)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	// Reference product from the seeded values.
	at := func(base uint64, i, j int) uint64 {
		return m.Mem.ReadWord(base+uint64(i*n+j)*8, 8)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want uint64
			for kk := 0; kk < n; kk++ {
				want += at(aBase, i, kk) * at(bBase, kk, j)
			}
			if got := at(cBase, i, j); got != want {
				t.Fatalf("c[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestPointerChaseKernel(t *testing.T) {
	k := NewPointerChase(0x10000, 256, 1000)
	accs, err := k.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 1000 {
		t.Fatalf("chase emitted %d accesses, want 1000", len(accs))
	}
	// Dependent loads: every access is a read, and addresses revisit (the
	// list is a cycle over 256 nodes).
	seen := map[uint64]int{}
	for _, a := range accs {
		if a.Kind != trace.Read {
			t.Fatal("chase emitted a write")
		}
		seen[a.Addr]++
	}
	if len(seen) != 256 {
		t.Errorf("chase touched %d distinct nodes, want 256", len(seen))
	}
}

func TestHistogramKernel(t *testing.T) {
	k := NewHistogram(0x1000, 0x20000, 512, 16)
	m := NewMachine(k.Prog)
	k.Setup(m)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for b := 0; b < 16; b++ {
		total += m.Mem.ReadWord(0x20000+uint64(b)*8, 8)
	}
	if total != 512 {
		t.Fatalf("histogram counted %d items, want 512", total)
	}
}

func TestKernelSuite(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			accs, err := k.Run(50_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if len(accs) == 0 {
				t.Fatal("kernel emitted no accesses")
			}
			for _, a := range accs {
				if a.Size != 4 && a.Size != 8 {
					t.Fatalf("bad access size %d", a.Size)
				}
			}
		})
	}
}
