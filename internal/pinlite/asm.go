package pinlite

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble turns assembly text into a Program.
//
// Syntax, one instruction per line:
//
//	; comment                     # comment
//	loop:                         label
//	li   r1, 0x1000               load immediate (decimal or 0x hex)
//	add  r3, r1, r2               ALU: rd, ra, rb
//	addi r1, r1, 8                immediate ALU: rd, ra, imm
//	ld   r4, r1, 0                load 8 B from [r1+0]
//	st4  r4, r2, 16               store 4 B to [r2+16]
//	blt  r1, r5, loop             branch to label
//	halt
func Assemble(src string) (Program, error) {
	type pending struct {
		instr int
		label string
		line  int
	}
	var prog Program
	labels := map[string]int{}
	var fixups []pending

	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSuffix(line, ":")
			if name == "" || strings.ContainsAny(name, " \t,") {
				return nil, fmt.Errorf("pinlite: line %d: bad label %q", lineNo+1, line)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("pinlite: line %d: duplicate label %q", lineNo+1, name)
			}
			labels[name] = len(prog)
			continue
		}
		mnemonic, rest, _ := strings.Cut(line, " ")
		op, ok := opByName[mnemonic]
		if !ok {
			return nil, fmt.Errorf("pinlite: line %d: unknown mnemonic %q", lineNo+1, mnemonic)
		}
		args := splitArgs(rest)
		in := Instr{Op: op}
		var err error
		switch op {
		case OpHalt:
			err = expectArgs(args, 0)
		case OpLi:
			if err = expectArgs(args, 2); err == nil {
				in.D, err = parseReg(args[0])
				if err == nil {
					in.Imm, err = parseImm(args[1])
				}
			}
		case OpMov:
			if err = expectArgs(args, 2); err == nil {
				in.D, err = parseReg(args[0])
				if err == nil {
					in.A, err = parseReg(args[1])
				}
			}
		case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor:
			if err = expectArgs(args, 3); err == nil {
				in.D, err = parseReg(args[0])
				if err == nil {
					in.A, err = parseReg(args[1])
				}
				if err == nil {
					in.B, err = parseReg(args[2])
				}
			}
		case OpAddi, OpShl, OpShr, OpLd, OpLd4, OpSt, OpSt4:
			if err = expectArgs(args, 3); err == nil {
				in.D, err = parseReg(args[0])
				if err == nil {
					in.A, err = parseReg(args[1])
				}
				if err == nil {
					in.Imm, err = parseImm(args[2])
				}
			}
		case OpBeq, OpBne, OpBlt, OpBge:
			if err = expectArgs(args, 3); err == nil {
				in.A, err = parseReg(args[0])
				if err == nil {
					in.B, err = parseReg(args[1])
				}
				if err == nil {
					fixups = append(fixups, pending{len(prog), args[2], lineNo + 1})
				}
			}
		case OpJmp:
			if err = expectArgs(args, 1); err == nil {
				fixups = append(fixups, pending{len(prog), args[0], lineNo + 1})
			}
		case OpJal:
			if err = expectArgs(args, 2); err == nil {
				in.D, err = parseReg(args[0])
				if err == nil {
					fixups = append(fixups, pending{len(prog), args[1], lineNo + 1})
				}
			}
		case OpJr:
			if err = expectArgs(args, 1); err == nil {
				in.A, err = parseReg(args[0])
			}
		default:
			err = fmt.Errorf("unhandled opcode %v", op)
		}
		if err != nil {
			return nil, fmt.Errorf("pinlite: line %d: %q: %v", lineNo+1, line, err)
		}
		prog = append(prog, in)
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("pinlite: line %d: undefined label %q", f.line, f.label)
		}
		prog[f.instr].Imm = int64(target)
	}
	return prog, nil
}

// MustAssemble panics on assembly errors; for the kernel library whose
// sources are compile-time constants.
func MustAssemble(src string) Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func splitArgs(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func expectArgs(args []string, n int) error {
	if len(args) != n {
		return fmt.Errorf("want %d operands, have %d", n, len(args))
	}
	return nil
}

func parseReg(s string) (uint8, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}
