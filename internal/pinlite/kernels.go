package pinlite

import "cache8t/internal/trace"

// Kernel is a ready-to-run program plus the machine setup (registers,
// initial memory) it expects — the pinlite equivalent of a benchmark binary.
type Kernel struct {
	Name        string
	Description string
	Prog        Program
	Setup       func(*Machine)
}

// Run executes the kernel and returns its memory trace.
func (k Kernel) Run(budget uint64) ([]trace.Access, error) {
	return Trace(k.Prog, budget, k.Setup)
}

// memsetSrc writes one 8-byte word per iteration: the purest WW stream —
// the pattern Write Grouping is built for.
const memsetSrc = `
; r1 = dst cursor, r2 = end, r3 = value
loop:
	st   r3, r1, 0
	addi r1, r1, 8
	blt  r1, r2, loop
	halt
`

// NewMemset builds a memset of words 8-byte words at dst storing value.
func NewMemset(dst uint64, words int, value uint64) Kernel {
	return Kernel{
		Name:        "memset",
		Description: "sequential 8B stores (pure WW stream)",
		Prog:        MustAssemble(memsetSrc),
		Setup: func(m *Machine) {
			m.Regs[1] = dst
			m.Regs[2] = dst + uint64(words)*8
			m.Regs[3] = value
		},
	}
}

const memcpySrc = `
; r1 = src cursor, r2 = dst cursor, r3 = src end
loop:
	ld   r4, r1, 0
	st   r4, r2, 0
	addi r1, r1, 8
	addi r2, r2, 8
	blt  r1, r3, loop
	halt
`

// NewMemcpy builds a copy of words 8-byte words from src to dst. Seeding
// src with data is the caller's Setup concern; the default fills it with a
// ramp so stores are non-silent.
func NewMemcpy(src, dst uint64, words int) Kernel {
	return Kernel{
		Name:        "memcpy",
		Description: "load/store copy loop (alternating RW across two regions)",
		Prog:        MustAssemble(memcpySrc),
		Setup: func(m *Machine) {
			for i := 0; i < words; i++ {
				m.Mem.WriteWord(src+uint64(i)*8, 8, uint64(i)*2654435761+1)
			}
			m.Regs[1] = src
			m.Regs[2] = dst
			m.Regs[3] = src + uint64(words)*8
		},
	}
}

const saxpySrc = `
; r1 = x cursor, r2 = y cursor, r3 = x end, r4 = a
loop:
	ld   r5, r1, 0
	mul  r5, r5, r4
	ld   r6, r2, 0
	add  r6, r6, r5
	st   r6, r2, 0
	addi r1, r1, 8
	addi r2, r2, 8
	blt  r1, r3, loop
	halt
`

// NewSaxpy builds y[i] += a*x[i] over words elements: an in-place
// read-modify-write sweep, the pattern Read Bypassing is built for.
// With a == 0 and zeroed x, every store is silent.
func NewSaxpy(x, y uint64, words int, a uint64) Kernel {
	return Kernel{
		Name:        "saxpy",
		Description: "y[i] += a*x[i] (in-place RMW sweep)",
		Prog:        MustAssemble(saxpySrc),
		Setup: func(m *Machine) {
			for i := 0; i < words; i++ {
				m.Mem.WriteWord(x+uint64(i)*8, 8, uint64(i)+1)
			}
			m.Regs[1] = x
			m.Regs[2] = y
			m.Regs[3] = x + uint64(words)*8
			m.Regs[4] = a
		},
	}
}

const reduceSrc = `
; r1 = src cursor, r2 = end, r3 = accumulator
loop:
	ld   r4, r1, 0
	add  r3, r3, r4
	addi r1, r1, 8
	blt  r1, r2, loop
	halt
`

// NewReduce builds a sum over words elements: a pure sequential read
// stream.
func NewReduce(src uint64, words int) Kernel {
	return Kernel{
		Name:        "reduce",
		Description: "sequential sum (pure RR stream)",
		Prog:        MustAssemble(reduceSrc),
		Setup: func(m *Machine) {
			for i := 0; i < words; i++ {
				m.Mem.WriteWord(src+uint64(i)*8, 8, uint64(i))
			}
			m.Regs[1] = src
			m.Regs[2] = src + uint64(words)*8
		},
	}
}

const matmulSrc = `
; r1 = a, r2 = b, r3 = c, r4 = n  (n x n int64 matrices)
	li   r5, 0              ; i
iloop:
	li   r6, 0              ; j
jloop:
	li   r7, 0              ; k
	li   r8, 0              ; acc
kloop:
	mul  r9, r5, r4
	add  r9, r9, r7
	shl  r9, r9, 3
	add  r9, r9, r1
	ld   r10, r9, 0         ; a[i][k]
	mul  r11, r7, r4
	add  r11, r11, r6
	shl  r11, r11, 3
	add  r11, r11, r2
	ld   r12, r11, 0        ; b[k][j]
	mul  r10, r10, r12
	add  r8, r8, r10
	addi r7, r7, 1
	blt  r7, r4, kloop
	mul  r9, r5, r4
	add  r9, r9, r6
	shl  r9, r9, 3
	add  r9, r9, r3
	st   r8, r9, 0          ; c[i][j]
	addi r6, r6, 1
	blt  r6, r4, jloop
	addi r5, r5, 1
	blt  r5, r4, iloop
	halt
`

// NewMatmul builds an n x n integer matrix multiply, c = a*b — the kind of
// loop nest the paper's FP benchmarks spend their time in.
func NewMatmul(a, b, c uint64, n int) Kernel {
	return Kernel{
		Name:        "matmul",
		Description: "n^3 dense matrix multiply (mixed streams + write bursts)",
		Prog:        MustAssemble(matmulSrc),
		Setup: func(m *Machine) {
			for i := 0; i < n*n; i++ {
				m.Mem.WriteWord(a+uint64(i)*8, 8, uint64(i%7+1))
				m.Mem.WriteWord(b+uint64(i)*8, 8, uint64(i%5+1))
			}
			m.Regs[1] = a
			m.Regs[2] = b
			m.Regs[3] = c
			m.Regs[4] = uint64(n)
		},
	}
}

const chaseSrc = `
; r1 = current node, r2 = remaining hops, r3 = zero
	li   r3, 0
loop:
	ld   r1, r1, 0          ; follow next pointer
	addi r2, r2, -1
	bne  r2, r3, loop
	halt
`

// NewPointerChase builds a linked-list traversal over nodes 16-byte nodes
// laid out in a shuffled order within a region starting at base. stride
// controls node spacing. hops is how many links to follow.
func NewPointerChase(base uint64, nodes, hops int) Kernel {
	return Kernel{
		Name:        "chase",
		Description: "dependent linked-list loads (no spatial locality)",
		Prog:        MustAssemble(chaseSrc),
		Setup: func(m *Machine) {
			// A maximal-period LCG walk over node slots gives a single
			// cycle through all nodes without allocation.
			const nodeSize = 64 // one node per cache block: no accidental locality
			perm := func(i int) int { return (i*5 + 3) % nodes }
			for i := 0; i < nodes; i++ {
				from := base + uint64(perm(i))*nodeSize
				to := base + uint64(perm(i+1))*nodeSize
				m.Mem.WriteWord(from, 8, to)
			}
			m.Regs[1] = base + uint64(perm(0))*nodeSize
			m.Regs[2] = uint64(hops)
		},
	}
}

const histogramSrc = `
; r1 = src cursor, r2 = src end, r3 = hist base, r4 = bucket mask
loop:
	ld   r5, r1, 0
	and  r5, r5, r4
	shl  r5, r5, 3
	add  r5, r5, r3
	ld   r6, r5, 0
	addi r6, r6, 1
	st   r6, r5, 0
	addi r1, r1, 8
	blt  r1, r2, loop
	halt
`

// NewHistogram builds a bucket-count loop: reads a source stream and
// increments one of buckets counters (buckets must be a power of two) —
// scattered read-modify-writes over a hot table.
func NewHistogram(src, hist uint64, words, buckets int) Kernel {
	return Kernel{
		Name:        "histogram",
		Description: "stream reads + scattered RMW increments on a hot table",
		Prog:        MustAssemble(histogramSrc),
		Setup: func(m *Machine) {
			for i := 0; i < words; i++ {
				m.Mem.WriteWord(src+uint64(i)*8, 8, uint64(i)*2654435761)
			}
			m.Regs[1] = src
			m.Regs[2] = src + uint64(words)*8
			m.Regs[3] = hist
			m.Regs[4] = uint64(buckets - 1)
		},
	}
}

// Kernels returns the standard kernel suite at moderate sizes, for tests
// and the writeburst/pintool examples.
func Kernels() []Kernel {
	return []Kernel{
		NewMemset(0x10000, 4096, 0xabcd),
		NewMemcpy(0x40000, 0x80000, 4096),
		NewSaxpy(0xc0000, 0x100000, 4096, 3),
		NewReduce(0x140000, 4096),
		NewMatmul(0x180000, 0x1c0000, 0x200000, 24),
		NewPointerChase(0x240000, 2048, 8192),
		NewHistogram(0x280000, 0x2c0000, 4096, 64),
		NewStencil(0x300000, 0x340000, 4096),
		NewQueue(0x380000, 64, 4096),
		NewFib(0x3c0000, 17),
	}
}
