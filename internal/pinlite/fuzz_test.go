package pinlite

import (
	"strings"
	"testing"
)

// FuzzAssemble throws arbitrary text at the assembler: it must never panic,
// and anything it accepts must disassemble to mnemonics it knows and run on
// the machine without faulting beyond the defined error cases.
func FuzzAssemble(f *testing.F) {
	f.Add("li r1, 5\nhalt")
	f.Add("loop:\n addi r1, r1, 1\n blt r1, r2, loop\n halt")
	f.Add("; comment only")
	f.Add(memsetSrc)
	f.Add(matmulSrc)
	f.Add("ld r1, r2, -8\nst r1, r2, 99999999999\nhalt")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			return
		}
		for _, in := range prog {
			s := in.String()
			mnemonic, _, _ := strings.Cut(s, " ")
			if _, ok := opByName[mnemonic]; !ok {
				t.Fatalf("accepted program disassembles to unknown %q", s)
			}
		}
		// Execution with a budget must return cleanly (nil, ErrBudget, or
		// a pc-range error) — never panic.
		m := NewMachine(prog)
		_ = m.Run(10_000)
	})
}
