package pinlite

const stencilSrc = `
; r1 = src, r2 = dst, r3 = n (elements), r4 = i (starts at 1)
	li   r4, 1
	addi r5, r3, -1         ; last interior index bound
loop:
	shl  r6, r4, 3
	add  r7, r6, r1
	ld   r8, r7, -8         ; src[i-1]
	ld   r9, r7, 0          ; src[i]
	ld   r10, r7, 8         ; src[i+1]
	add  r8, r8, r9
	add  r8, r8, r10
	add  r11, r6, r2
	st   r8, r11, 0         ; dst[i]
	addi r4, r4, 1
	blt  r4, r5, loop
	halt
`

// NewStencil builds a 1-D 3-point stencil dst[i] = src[i-1]+src[i]+src[i+1]
// over n elements: three read streams converging on one write stream, the
// canonical scientific-loop shape (leslie3d/zeusmp flavor).
func NewStencil(src, dst uint64, n int) Kernel {
	return Kernel{
		Name:        "stencil",
		Description: "3-point stencil (3 reads + 1 write per element)",
		Prog:        MustAssemble(stencilSrc),
		Setup: func(m *Machine) {
			for i := 0; i < n; i++ {
				m.Mem.WriteWord(src+uint64(i)*8, 8, uint64(i*i%97))
			}
			m.Regs[1] = src
			m.Regs[2] = dst
			m.Regs[3] = uint64(n)
		},
	}
}

const queueSrc = `
; r1 = ring base, r2 = slot mask, r3 = iterations, r4 = head, r5 = tail
; r6 = payload counter, r7 = zero
	li   r7, 0
loop:
	; produce: ring[head & mask] = payload++
	and  r8, r4, r2
	shl  r8, r8, 3
	add  r8, r8, r1
	st   r6, r8, 0
	addi r6, r6, 1
	addi r4, r4, 1
	; consume: read ring[tail & mask]
	and  r9, r5, r2
	shl  r9, r9, 3
	add  r9, r9, r1
	ld   r10, r9, 0
	addi r5, r5, 1
	addi r3, r3, -1
	bne  r3, r7, loop
	halt
`

// NewQueue builds a single-producer/single-consumer ring buffer of slots
// entries (power of two), pushing and popping iters items: a tight
// write-then-read loop over a hot region — WR/RW pairs in the same sets,
// the omnetpp/server flavor.
func NewQueue(base uint64, slots, iters int) Kernel {
	return Kernel{
		Name:        "queue",
		Description: "SPSC ring buffer (alternating W/R over a hot region)",
		Prog:        MustAssemble(queueSrc),
		Setup: func(m *Machine) {
			m.Regs[1] = base
			m.Regs[2] = uint64(slots - 1)
			m.Regs[3] = uint64(iters)
			// head starts one lap ahead so the consumer reads live data.
			m.Regs[4] = 0
			m.Regs[5] = 0
		},
	}
}

const fibSrc = `
; Recursive fib(n) with an explicit memory stack — real call/return traffic.
; r1 = stack pointer (grows down), r2 = n (argument), r3 = result,
; r14 = link register, r15 = scratch zero.
	li   r15, 0
	jal  r14, fib
	halt
fib:
	li   r4, 2
	blt  r2, r4, base       ; n < 2 -> result = n
	; push n and the link register
	addi r1, r1, -16
	st   r2, r1, 0
	st   r14, r1, 8
	; fib(n-1)
	addi r2, r2, -1
	jal  r14, fib
	; stash partial result over the saved n slot's neighbor
	addi r1, r1, -8
	st   r3, r1, 0
	; fib(n-2): reload original n
	ld   r2, r1, 8
	addi r2, r2, -2
	jal  r14, fib
	; result = partial + fib(n-2)
	ld   r5, r1, 0
	add  r3, r3, r5
	addi r1, r1, 8
	; pop n and link register
	ld   r14, r1, 8
	addi r1, r1, 16
	jr   r14
base:
	mov  r3, r2
	jr   r14
`

// NewFib builds a recursive Fibonacci of n with an explicit memory stack:
// genuine call/return spill traffic, the gamess/gobmk flavor, and a
// correctness probe for the jal/jr instructions.
func NewFib(stackTop uint64, n int) Kernel {
	return Kernel{
		Name:        "fib",
		Description: "recursive fib(n) with a memory stack (call/return spills)",
		Prog:        MustAssemble(fibSrc),
		Setup: func(m *Machine) {
			m.Regs[1] = stackTop
			m.Regs[2] = uint64(n)
		},
	}
}
