// Package pinlite is a miniature stand-in for the Pin dynamic-instrumentation
// methodology the paper uses (§5.1): a small register VM executes real
// programs (kernels written in a tiny assembly language), and an
// instrumentation hook observes every memory access — address, size, kind,
// and the data value — exactly the information the paper's Pin tool feeds
// its cache model.
//
// This closes the methodology loop end to end: examples/pintool builds a
// matmul, "instruments" it, and drives the cache controllers with a trace
// produced by actual executed code rather than a statistical generator.
package pinlite

import "fmt"

// Op is an instruction opcode.
type Op uint8

const (
	// OpHalt stops execution.
	OpHalt Op = iota
	// OpLi loads a 64-bit immediate: li rd, imm.
	OpLi
	// OpMov copies a register: mov rd, ra.
	OpMov
	// OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor are three-register ALU ops:
	// op rd, ra, rb.
	OpAdd
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	// OpAddi adds an immediate: addi rd, ra, imm.
	OpAddi
	// OpShl and OpShr shift by an immediate: shl rd, ra, imm.
	OpShl
	OpShr
	// OpLd loads 8 bytes: ld rd, ra, off. OpLd4 loads 4 bytes.
	OpLd
	OpLd4
	// OpSt stores 8 bytes: st rs, ra, off. OpSt4 stores 4 bytes.
	OpSt
	OpSt4
	// OpBeq, OpBne, OpBlt, OpBge branch on a register pair: beq ra, rb, label.
	OpBeq
	OpBne
	OpBlt
	OpBge
	// OpJmp jumps unconditionally: jmp label.
	OpJmp
	// OpJal jumps to a label, saving the return address (the next
	// instruction index) in rd: jal rd, label.
	OpJal
	// OpJr jumps to the instruction index held in ra: jr ra.
	OpJr

	numOps
)

var opNames = [numOps]string{
	"halt", "li", "mov", "add", "sub", "mul", "and", "or", "xor",
	"addi", "shl", "shr", "ld", "ld4", "st", "st4",
	"beq", "bne", "blt", "bge", "jmp", "jal", "jr",
}

// String names the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// opByName maps mnemonic to opcode.
var opByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for i, n := range opNames {
		m[n] = Op(i)
	}
	return m
}()

// NumRegs is the register-file size.
const NumRegs = 16

// Instr is one decoded instruction. Fields are used per opcode:
// D = destination (or store source), A/B = operands, Imm = immediate or
// memory offset or branch target (instruction index after assembly).
type Instr struct {
	Op  Op
	D   uint8
	A   uint8
	B   uint8
	Imm int64
}

// String disassembles the instruction.
func (i Instr) String() string {
	switch i.Op {
	case OpHalt:
		return "halt"
	case OpLi:
		return fmt.Sprintf("li r%d, %d", i.D, i.Imm)
	case OpMov:
		return fmt.Sprintf("mov r%d, r%d", i.D, i.A)
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.D, i.A, i.B)
	case OpAddi, OpShl, OpShr:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.D, i.A, i.Imm)
	case OpLd, OpLd4:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.D, i.A, i.Imm)
	case OpSt, OpSt4:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.D, i.A, i.Imm)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s r%d, r%d, @%d", i.Op, i.A, i.B, i.Imm)
	case OpJmp:
		return fmt.Sprintf("jmp @%d", i.Imm)
	case OpJal:
		return fmt.Sprintf("jal r%d, @%d", i.D, i.Imm)
	case OpJr:
		return fmt.Sprintf("jr r%d", i.A)
	default:
		return fmt.Sprintf("?%d", i.Op)
	}
}

// Program is an assembled instruction sequence.
type Program []Instr
