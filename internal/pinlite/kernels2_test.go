package pinlite

import (
	"testing"

	"cache8t/internal/trace"
)

func TestStencilKernelValues(t *testing.T) {
	const n = 64
	src, dst := uint64(0x1000), uint64(0x9000)
	k := NewStencil(src, dst, n)
	m := NewMachine(k.Prog)
	k.Setup(m)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n-1; i++ {
		want := m.Mem.ReadWord(src+uint64(i-1)*8, 8) +
			m.Mem.ReadWord(src+uint64(i)*8, 8) +
			m.Mem.ReadWord(src+uint64(i+1)*8, 8)
		if got := m.Mem.ReadWord(dst+uint64(i)*8, 8); got != want {
			t.Fatalf("dst[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestStencilAccessMix(t *testing.T) {
	k := NewStencil(0x1000, 0x9000, 128)
	accs, err := k.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	var reads, writes int
	for _, a := range accs {
		if a.Kind == trace.Read {
			reads++
		} else {
			writes++
		}
	}
	if reads != 3*writes {
		t.Fatalf("stencil mix %d reads / %d writes, want 3:1", reads, writes)
	}
}

func TestQueueKernel(t *testing.T) {
	k := NewQueue(0x4000, 16, 500)
	accs, err := k.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	// One write + one read per iteration.
	var reads, writes int
	for _, a := range accs {
		if a.Kind == trace.Read {
			reads++
		} else {
			writes++
		}
	}
	if reads != 500 || writes != 500 {
		t.Fatalf("queue emitted %d reads / %d writes, want 500/500", reads, writes)
	}
	// The consumer reads what the producer just wrote (same slot index,
	// head==tail in this kernel), so every read returns the fresh payload.
	for i := 0; i < len(accs)-1; i += 2 {
		if accs[i].Kind != trace.Write || accs[i+1].Kind != trace.Read {
			t.Fatalf("iteration %d: ops out of order", i/2)
		}
		if accs[i].Addr != accs[i+1].Addr || accs[i].Data != accs[i+1].Data {
			t.Fatalf("iteration %d: consumer saw %+v after producer %+v", i/2, accs[i+1], accs[i])
		}
	}
}

func TestQueueStaysInRegion(t *testing.T) {
	const base, slots = 0x4000, 16
	k := NewQueue(base, slots, 1000)
	accs, err := k.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range accs {
		if a.Addr < base || a.Addr >= base+slots*8 {
			t.Fatalf("access outside ring: %+v", a)
		}
	}
}

func TestJalJrRoundTrip(t *testing.T) {
	p := MustAssemble(`
		li  r1, 5
		jal r14, double
		halt
	double:
		add r1, r1, r1
		jr  r14
	`)
	m := NewMachine(p)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 10 {
		t.Fatalf("r1 = %d, want 10", m.Regs[1])
	}
}

func TestFibKernelValues(t *testing.T) {
	want := []uint64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for n, w := range want {
		k := NewFib(0x8000, n)
		m := NewMachine(k.Prog)
		k.Setup(m)
		if err := m.Run(5_000_000); err != nil {
			t.Fatalf("fib(%d): %v", n, err)
		}
		if m.Regs[3] != w {
			t.Fatalf("fib(%d) = %d, want %d", n, m.Regs[3], w)
		}
		// The stack pointer must be balanced after the outer call returns.
		if m.Regs[1] != 0x8000 {
			t.Fatalf("fib(%d): stack pointer %#x, want 0x8000", n, m.Regs[1])
		}
	}
}

func TestFibKernelEmitsStackTraffic(t *testing.T) {
	k := NewFib(0x8000, 12)
	accs, err := k.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) == 0 {
		t.Fatal("fib emitted no memory traffic")
	}
	var reads, writes int
	for _, a := range accs {
		if a.Kind == trace.Read {
			reads++
		} else {
			writes++
		}
	}
	if writes == 0 || reads == 0 {
		t.Fatalf("fib mix %d reads / %d writes", reads, writes)
	}
	// Spill/reload balance: pushes write 3 words per recursive call (n,
	// link, partial), pops read them back plus the n reload.
	if reads <= writes/2 {
		t.Fatalf("suspicious mix %d reads / %d writes", reads, writes)
	}
}
