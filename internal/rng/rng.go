// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// Every stochastic component in the repository (workload generators, random
// replacement, property tests) draws from an explicitly seeded generator so
// that each experiment is reproducible bit-for-bit. The paper notes that its
// Pin-based runs were not repeatable; determinism here is a deliberate
// improvement recorded in DESIGN.md.
package rng

import "math/bits"

// SplitMix64 is the seeding generator recommended by Vigna for initializing
// xoshiro state. It is also a perfectly good standalone generator for
// non-cryptographic simulation purposes.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 implements xoshiro256** 1.0 (Blackman & Vigna). It has a period
// of 2^256-1 and passes BigCrush; more than adequate for driving synthetic
// memory traces.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a Xoshiro256 generator seeded from seed via SplitMix64, per the
// reference initialization procedure.
func New(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// A theoretical all-zero state would be absorbing; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

// State returns the generator's internal state, for checkpointing.
func (x *Xoshiro256) State() [4]uint64 { return x.s }

// Restore replaces the internal state with one captured by State. An all-zero
// state would be absorbing, so it is rejected with the same guard New uses.
func (x *Xoshiro256) Restore(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 0x9e3779b97f4a7c15
	}
	x.s = s
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64-bit value.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		hi, lo := bits.Mul64(x.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (x *Xoshiro256) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return x.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p, i.e. the number of trials until the first success, at least
// 1. For p >= 1 it returns 1; for p <= 0 it is capped at maxGeometric to keep
// run lengths finite.
func (x *Xoshiro256) Geometric(p float64) int {
	const maxGeometric = 1 << 20
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		return maxGeometric
	}
	n := 1
	for !x.Bool(p) && n < maxGeometric {
		n++
	}
	return n
}

// Perm fills dst with a random permutation of [0, len(dst)).
func (x *Xoshiro256) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Pick returns an index in [0, len(weights)) chosen with probability
// proportional to weights[i]. Zero or negative weights are treated as zero.
// It panics if all weights are zero.
func (x *Xoshiro256) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Pick with no positive weight")
	}
	target := x.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if target < w {
			return i
		}
		target -= w
	}
	// Floating-point slop: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("rng: unreachable")
}
