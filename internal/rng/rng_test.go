package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownSequence(t *testing.T) {
	// Reference values for seed 0 from the public-domain splitmix64.c.
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	s := NewSplitMix64(0)
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("SplitMix64 value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical values out of 1000", same)
	}
}

func TestIntnRange(t *testing.T) {
	x := New(1)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := x.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	x := New(7)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[x.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d too far from expected %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	x := New(99)
	var sum float64
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %.4f, want ~0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	x := New(3)
	for i := 0; i < 100; i++ {
		if x.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !x.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	x := New(5)
	const trials = 200000
	for _, p := range []float64{0.1, 0.42, 0.77} {
		hits := 0
		for i := 0; i < trials; i++ {
			if x.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bool(%v) hit rate %.4f", p, got)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	x := New(11)
	const trials = 50000
	p := 0.25
	var sum int
	for i := 0; i < trials; i++ {
		g := x.Geometric(p)
		if g < 1 {
			t.Fatalf("Geometric returned %d < 1", g)
		}
		sum += g
	}
	mean := float64(sum) / trials
	if math.Abs(mean-1/p) > 0.2 {
		t.Errorf("Geometric(%v) mean = %.3f, want ~%.1f", p, mean, 1/p)
	}
	if g := x.Geometric(1); g != 1 {
		t.Errorf("Geometric(1) = %d, want 1", g)
	}
}

func TestPermIsPermutation(t *testing.T) {
	x := New(13)
	dst := make([]int, 64)
	x.Perm(dst)
	seen := make([]bool, len(dst))
	for _, v := range dst {
		if v < 0 || v >= len(dst) || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", dst)
		}
		seen[v] = true
	}
}

func TestPickRespectsWeights(t *testing.T) {
	x := New(17)
	weights := []float64{0, 1, 3, 0, 6}
	counts := make([]int, len(weights))
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[x.Pick(weights)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("Pick chose zero-weight bucket: %v", counts)
	}
	// Expected proportions 0.1, 0.3, 0.6.
	for i, want := range map[int]float64{1: 0.1, 2: 0.3, 4: 0.6} {
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Pick bucket %d rate %.4f, want %.1f", i, got, want)
		}
	}
}

func TestPickPanicsWithoutPositiveWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with all-zero weights did not panic")
		}
	}()
	New(1).Pick([]float64{0, 0, -1})
}

func TestIntnCoversAllValues(t *testing.T) {
	// Property: for small n, every value in [0,n) is eventually produced.
	f := func(seed uint64) bool {
		x := New(seed)
		const n = 5
		var seen [n]bool
		for i := 0; i < 500; i++ {
			seen[x.Intn(n)] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	x := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64()
	}
	_ = sink
}
