package hier

import (
	"context"
	"reflect"
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/rng"
	"cache8t/internal/trace"
)

// This file holds the hierarchy's differential oracle: a naive two-level
// reference model, written independently of internal/cache and internal/core
// (its own index arithmetic, its own LRU order lists, plain byte-map
// memories), that replays the demand trace through a reference L1 and feeds
// the same refill/write-back synthesis rule into a reference L2. The
// optimized hierarchy must match it event for event and stat for stat.

// naiveCache is a write-allocate, write-back, true-LRU set-associative cache
// over a sparse byte memory, emitting the refill/write-back event stream.
type naiveCache struct {
	block uint64
	sets  int
	ways  int
	mem   map[uint64]byte
	lines [][]naiveLine
	order [][]int // per-set way order, most recently used first
	stats cache.Stats
	onWB  func(base uint64, data []byte)
	onRF  func(base uint64)
}

type naiveLine struct {
	valid bool
	dirty bool
	tag   uint64
	data  []byte
}

func newNaiveCache(cfg cache.Config) *naiveCache {
	sets := cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes)
	n := &naiveCache{
		block: uint64(cfg.BlockBytes),
		sets:  sets,
		ways:  cfg.Ways,
		mem:   map[uint64]byte{},
		lines: make([][]naiveLine, sets),
		order: make([][]int, sets),
	}
	for s := range n.lines {
		n.lines[s] = make([]naiveLine, cfg.Ways)
		for w := range n.lines[s] {
			n.lines[s][w].data = make([]byte, cfg.BlockBytes)
		}
		n.order[s] = make([]int, cfg.Ways)
		for w := range n.order[s] {
			n.order[s][w] = w
		}
	}
	return n
}

func (n *naiveCache) set(addr uint64) int    { return int((addr / n.block) % uint64(n.sets)) }
func (n *naiveCache) tag(addr uint64) uint64 { return addr / n.block / uint64(n.sets) }
func (n *naiveCache) base(set int, tag uint64) uint64 {
	return (tag*uint64(n.sets) + uint64(set)) * n.block
}

func (n *naiveCache) touch(set, way int) {
	ord := n.order[set]
	for i, w := range ord {
		if w == way {
			copy(ord[1:i+1], ord[:i])
			ord[0] = way
			return
		}
	}
}

// ensure makes addr's block resident, updating stats, firing the victim
// write-back (if any) strictly before the refill, exactly as the real cache
// does.
func (n *naiveCache) ensure(addr uint64, isWrite bool) (set, way int) {
	set = n.set(addr)
	tag := n.tag(addr)
	for w := range n.lines[set] {
		if n.lines[set][w].valid && n.lines[set][w].tag == tag {
			if isWrite {
				n.stats.WriteHits++
			} else {
				n.stats.ReadHits++
			}
			n.touch(set, w)
			return set, w
		}
	}
	if isWrite {
		n.stats.WriteMisses++
	} else {
		n.stats.ReadMisses++
	}
	way = -1
	for w := range n.lines[set] {
		if !n.lines[set][w].valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = n.order[set][n.ways-1] // true LRU victim
		n.evict(set, way)
	}
	l := &n.lines[set][way]
	base := n.base(set, tag)
	for i := range l.data {
		l.data[i] = n.mem[base+uint64(i)]
	}
	l.valid, l.dirty, l.tag = true, false, tag
	n.stats.Fills++
	if n.onRF != nil {
		n.onRF(base)
	}
	n.touch(set, way)
	return set, way
}

func (n *naiveCache) evict(set, way int) {
	l := &n.lines[set][way]
	if !l.valid {
		return
	}
	if l.dirty {
		base := n.base(set, l.tag)
		for i, b := range l.data {
			n.mem[base+uint64(i)] = b
		}
		n.stats.Writebacks++
		if n.onWB != nil {
			n.onWB(base, l.data)
		}
	}
	l.valid, l.dirty = false, false
	n.stats.Evictions++
}

// access replays one aligned demand access (no block straddle).
func (n *naiveCache) access(a trace.Access) {
	set, way := n.ensure(a.Addr, a.Kind == trace.Write)
	l := &n.lines[set][way]
	off := a.Addr % n.block
	if a.Kind == trace.Read {
		return
	}
	for i := uint64(0); i < uint64(a.Size); i++ {
		b := byte(a.Data >> (8 * i))
		if l.data[off+i] != b {
			l.data[off+i] = b
			l.dirty = true
		}
	}
}

// runNaiveHier replays accs through the naive L1, synthesizing L2 accesses
// with the package's documented rule, and returns both models plus the
// interleaved event stream.
func runNaiveHier(l1cfg, l2cfg cache.Config, accs []trace.Access) (l1, l2 *naiveCache, events []Event, counts Counts) {
	l1 = newNaiveCache(l1cfg)
	l2 = newNaiveCache(l2cfg)
	l1.onRF = func(base uint64) {
		counts.Refills++
		events = append(events, Event{Kind: EvRefill, Addr: base})
		l2.access(trace.Access{Kind: trace.Read, Addr: base, Size: 8})
	}
	l1.onWB = func(base uint64, data []byte) {
		var word uint64
		for i := 0; i < 8; i++ {
			word |= uint64(data[i]) << (8 * i)
		}
		counts.Writebacks++
		events = append(events, Event{Kind: EvWriteback, Addr: base, Data: word})
		l2.access(trace.Access{Kind: trace.Write, Addr: base, Size: 8, Data: word})
	}
	for _, a := range accs {
		l1.access(a)
	}
	return l1, l2, events, counts
}

func hierStream(seed uint64, n int, footprint uint64) []trace.Access {
	r := rng.New(seed)
	out := make([]trace.Access, 0, n)
	sizes := []uint8{1, 2, 4, 8}
	for i := 0; i < n; i++ {
		size := sizes[r.Intn(len(sizes))]
		addr := uint64(r.Intn(int(footprint/uint64(size)))) * uint64(size)
		a := trace.Access{Addr: addr, Size: size, Gap: uint32(r.Intn(5))}
		if r.Bool(0.4) {
			a.Kind = trace.Write
			if !r.Bool(0.4) {
				a.Data = r.Uint64()
			}
		}
		out = append(out, a)
	}
	return out
}

func testConfig() Config {
	return Config{
		L1Kind: core.RMW,
		L1:     cache.Config{SizeBytes: 1024, Ways: 2, BlockBytes: 32, Policy: cache.LRU},
		L2Kind: core.RMW,
		L2:     cache.Config{SizeBytes: 4096, Ways: 4, BlockBytes: 64, Policy: cache.LRU},
	}
}

// TestDifferentialOracle is the hierarchy's §5-style contract: against the
// independent naive two-level model, the optimized run must produce the
// identical interleaved event stream (kinds, block addresses, victim words,
// in order), identical L1 and L2 functional stats, and identical traffic
// totals.
func TestDifferentialOracle(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := testConfig()
		accs := hierStream(seed, 4000, 1<<13)
		var got []Event
		cfg.Observer = func(e Event) { got = append(got, e) }
		res, err := Run(cfg, trace.FromSlice(accs), 0, 17)
		if err != nil {
			t.Fatal(err)
		}
		refL1, refL2, want, wantCounts := runNaiveHier(cfg.L1, cfg.L2, accs)
		if !reflect.DeepEqual(got, want) {
			for i := range want {
				if i >= len(got) || got[i] != want[i] {
					t.Fatalf("seed %d: event %d: got %+v want %+v (lens %d/%d)",
						seed, i, at(got, i), at(want, i), len(got), len(want))
				}
			}
			t.Fatalf("seed %d: event stream longer than reference: %d vs %d", seed, len(got), len(want))
		}
		if res.L1.Cache != refL1.stats {
			t.Errorf("seed %d: L1 stats: got %+v want %+v", seed, res.L1.Cache, refL1.stats)
		}
		if res.L2.Cache != refL2.stats {
			t.Errorf("seed %d: L2 stats: got %+v want %+v", seed, res.L2.Cache, refL2.stats)
		}
		if res.Traffic != wantCounts {
			t.Errorf("seed %d: traffic: got %+v want %+v", seed, res.Traffic, wantCounts)
		}
		if res.L2.Requests.Reads != res.Traffic.Refills || res.L2.Requests.Writes != res.Traffic.Writebacks {
			t.Errorf("seed %d: L2 demand stream %d/%d does not match traffic %+v",
				seed, res.L2.Requests.Reads, res.L2.Requests.Writes, res.Traffic)
		}
	}
}

func at(events []Event, i int) Event {
	if i < len(events) {
		return events[i]
	}
	return Event{Kind: 255}
}

// TestKindIndependentFunctionalStream: every L1 controller leaves the same
// refill/write-back stream (the architectural contract), so the L2 result is
// identical across L1 kinds; only the premature write-back component — and
// with it L2Visible — may differ, and only for the WG family.
func TestKindIndependentFunctionalStream(t *testing.T) {
	accs := hierStream(3, 6000, 1<<13)
	baseCfg := testConfig()
	baseRes, err := Run(baseCfg, trace.FromSlice(accs), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if baseRes.Traffic.PrematureWBs != 0 {
		t.Fatalf("RMW produced premature write-backs: %+v", baseRes.Traffic)
	}
	var wgPWB uint64
	for _, k := range core.Kinds() {
		cfg := testConfig()
		cfg.L1Kind = k
		res, err := Run(cfg, trace.FromSlice(accs), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Traffic.Refills != baseRes.Traffic.Refills || res.Traffic.Writebacks != baseRes.Traffic.Writebacks {
			t.Errorf("%v: functional stream diverged: %+v vs %+v", k, res.Traffic, baseRes.Traffic)
		}
		if res.L2.Cache != baseRes.L2.Cache || res.L2.ArrayReads != baseRes.L2.ArrayReads ||
			res.L2.ArrayWrites != baseRes.L2.ArrayWrites {
			t.Errorf("%v: L2 result diverged", k)
		}
		if res.Traffic.PrematureWBs != res.L1.Counters.PrematureWBs {
			t.Errorf("%v: traffic premature count %d != controller counter %d",
				k, res.Traffic.PrematureWBs, res.L1.Counters.PrematureWBs)
		}
		switch k {
		case core.WG:
			// WG pays a premature write-back for every read that interrupts
			// a buffered write group.
			wgPWB = res.Traffic.PrematureWBs
			if wgPWB == 0 {
				t.Errorf("WG: expected premature write-backs on a read/write-mixed trace")
			}
			if res.L2Visible() <= baseRes.L2Visible() {
				t.Errorf("WG: L2Visible %d not above RMW's %d", res.L2Visible(), baseRes.L2Visible())
			}
		case core.WGRB:
			// The RB mux serves interrupting reads straight from the
			// Set-Buffer, eliminating the premature write-back entirely —
			// WG+RB's downstream profile collapses back to the baseline's.
			if res.Traffic.PrematureWBs != 0 {
				t.Errorf("WGRB: read bypass left %d premature write-backs", res.Traffic.PrematureWBs)
			}
			if res.L2Visible() != baseRes.L2Visible() {
				t.Errorf("WGRB: L2Visible %d != RMW's %d", res.L2Visible(), baseRes.L2Visible())
			}
		default:
			if res.Traffic.PrematureWBs != 0 {
				t.Errorf("%v: unexpected premature write-backs: %d", k, res.Traffic.PrematureWBs)
			}
			if res.L2Visible() != baseRes.L2Visible() {
				t.Errorf("%v: L2Visible %d != RMW's %d", k, res.L2Visible(), baseRes.L2Visible())
			}
		}
	}
}

// TestDeterminism: same config, same trace, different batch sizes — results
// and event streams must be identical.
func TestDeterminism(t *testing.T) {
	accs := hierStream(7, 3000, 1<<12)
	run := func(batch int) (Result, []Event) {
		cfg := testConfig()
		cfg.L1Kind = core.WGRB
		var ev []Event
		cfg.Observer = func(e Event) { ev = append(ev, e) }
		res, err := Run(cfg, trace.FromSlice(accs), 0, batch)
		if err != nil {
			t.Fatal(err)
		}
		return res, ev
	}
	r1, e1 := run(0)
	r2, e2 := run(13)
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("results differ across batch sizes:\n%+v\n%+v", r1, r2)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Errorf("event streams differ across batch sizes: %d vs %d events", len(e1), len(e2))
	}
}

// TestLimitAndCancel: max truncates the stream; a cancelled context aborts.
func TestLimitAndCancel(t *testing.T) {
	accs := hierStream(9, 2000, 1<<12)
	cfg := testConfig()
	res, err := Run(cfg, trace.FromSlice(accs), 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.L1.Requests.Accesses(); got != 500 {
		t.Errorf("limit ignored: fed %d accesses", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, cfg, trace.FromSlice(accs), 0, 0); err == nil {
		t.Error("cancelled run returned nil error")
	}
}

// TestConfigValidation: undersized blocks and bad kinds are rejected.
func TestConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.L1.BlockBytes = 4
	if _, err := Run(cfg, trace.FromSlice(nil), 0, 0); err == nil {
		t.Error("4-byte L1 block accepted")
	}
	cfg = testConfig()
	cfg.L2Kind = core.Kind(99)
	if _, err := Run(cfg, trace.FromSlice(nil), 0, 0); err == nil {
		t.Error("bogus L2 kind accepted")
	}
}
