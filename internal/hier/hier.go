// Package hier composes two internal/core cache instances into an L1→L2
// hierarchy. The L1 controller runs the demand trace exactly as a
// single-level simulation would; its externally visible behaviour — refills,
// dirty write-backs, and the WG family's premature Set-Buffer write-backs —
// is captured as a typed Event stream, and the functional part of that
// stream (refills and write-backs) is synthesized into demand accesses that
// drive a second core controller as the L2.
//
// The synthesis rule is fixed and deliberately simple:
//
//	Refill(base)          → L2 Read  {Addr: base, Size: 8}
//	Writeback(base, data) → L2 Write {Addr: base, Size: 8, Data: data[0:8]}
//	PrematureWB           → counted, no L2 access
//
// Premature write-backs are on-chip row transfers between the Set-Buffer and
// the data array; they never carry new architectural state past the L1
// boundary, so they must not perturb the L2's functional simulation. They
// are still part of the traffic the L1 scheme presents downstream — the
// paper's WG controller pays one row write-back per read-interrupted write
// group that RMW never issues — so Result.L2Visible counts them alongside
// the refill/write-back stream. That makes the L2-visible totals
// kind-DEPENDENT even though the functional refill/write-back stream is
// kind-independent (every controller leaves identical cache.Stats and memory
// images; see DESIGN.md §5): the per-kind delta isolates exactly the
// microarchitectural component.
//
// Determinism: the L1 access order is the trace order, listener events fire
// synchronously inside the L1 cache operations that cause them (victim
// write-back strictly before the fill that displaced it), and premature
// write-backs are attributed to their causing access by diffing the L1
// controller's live counters after each access. No goroutines, no maps
// iterated for effect — a hierarchy run is bit-reproducible and
// byte-identical between daemon and in-process execution.
package hier

import (
	"context"
	"encoding/binary"
	"fmt"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/mem"
	"cache8t/internal/trace"
)

// EventKind classifies one externally visible L1 event.
type EventKind uint8

const (
	// EvRefill is a demand miss fetching a block into L1.
	EvRefill EventKind = iota
	// EvWriteback is a dirty block leaving L1 (eviction or flush).
	EvWriteback
	// EvPrematureWB is a Set-Buffer row forced back into the array early by
	// a read Tag-Buffer hit (WG family only). On-chip: no address, no L2
	// access, but counted in the L2-visible totals.
	EvPrematureWB
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvRefill:
		return "refill"
	case EvWriteback:
		return "writeback"
	case EvPrematureWB:
		return "premature-wb"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one element of the L1's externally visible stream.
type Event struct {
	Kind EventKind
	// Addr is the block base address (zero for EvPrematureWB).
	Addr uint64
	// Data is the first 8 bytes of the victim block for EvWriteback.
	Data uint64
}

// Config describes a two-level run.
type Config struct {
	// L1Kind and L1 configure the first-level controller and cache; Opts
	// applies to the L1 controller (BufferDepth, silent-elision ablation,
	// fill-traffic accounting).
	L1Kind core.Kind
	L1     cache.Config
	Opts   core.Options

	// L2Kind and L2 configure the second-level instance, driven only by the
	// synthesized refill/write-back stream. L2Opts applies to it.
	L2Kind core.Kind
	L2     cache.Config
	L2Opts core.Options

	// Observer, when non-nil, receives every Event in order. Used by tests
	// and tooling; nil adds no per-event work beyond the counters.
	Observer func(Event)
}

// Counts aggregates the typed event stream.
type Counts struct {
	Refills      uint64 `json:"refills"`
	Writebacks   uint64 `json:"writebacks"`
	PrematureWBs uint64 `json:"premature_wbs"`
}

// Total returns all events, functional and on-chip.
func (c Counts) Total() uint64 { return c.Refills + c.Writebacks + c.PrematureWBs }

// Result reports a two-level run: each level's full single-level Result plus
// the event-stream totals that connect them.
type Result struct {
	L1      core.Result
	L2      core.Result
	Traffic Counts
}

// L2Visible returns the traffic the L1 scheme presents downstream: the
// functional refill/write-back stream plus the scheme's premature
// write-backs. The functional part is identical for every L1 kind, so
// per-kind deltas of this quantity isolate the microarchitectural cost.
func (r Result) L2Visible() uint64 { return r.Traffic.Total() }

// L2VisiblePerRequest normalizes L2Visible by L1 demand requests.
func (r Result) L2VisiblePerRequest() float64 {
	if n := r.L1.Requests.Accesses(); n > 0 {
		return float64(r.L2Visible()) / float64(n)
	}
	return 0
}

// bridge is the cache.Listener that turns L1 block traffic into L2 demand
// accesses, in event order.
type bridge struct {
	l2      core.Controller
	counts  Counts
	observe func(Event)
}

// Fill handles an L1 refill: the miss fetches the block from the next
// level, which the L2 sees as a block-base read.
func (b *bridge) Fill(base uint64) {
	b.counts.Refills++
	if b.observe != nil {
		b.observe(Event{Kind: EvRefill, Addr: base})
	}
	b.l2.Access(trace.Access{Kind: trace.Read, Addr: base, Size: 8})
}

// Writeback handles a dirty block leaving L1, which the L2 sees as a
// block-base write carrying the victim's first word.
func (b *bridge) Writeback(base uint64, data []byte) {
	b.counts.Writebacks++
	word := binary.LittleEndian.Uint64(data[:8])
	if b.observe != nil {
		b.observe(Event{Kind: EvWriteback, Addr: base, Data: word})
	}
	b.l2.Access(trace.Access{Kind: trace.Write, Addr: base, Size: 8, Data: word})
}

// premature records one Set-Buffer premature write-back.
func (b *bridge) premature() {
	b.counts.PrematureWBs++
	if b.observe != nil {
		b.observe(Event{Kind: EvPrematureWB})
	}
}

// counterPeeker is the mid-run counter view every core controller provides
// (via its embedded base); hier diffs PrematureWBs across accesses to place
// on-chip events at the access that caused them.
type counterPeeker interface {
	PeekCounters() core.Counters
}

// Run drives up to max accesses of s (max <= 0 drains the stream) through a
// fresh two-level hierarchy. Hierarchy runs are serial by construction — the
// L1 listener mutates the L2 on every fill and eviction, so there is no
// set-partitioned execution to shard.
func Run(cfg Config, s trace.Stream, max, batchSize int) (Result, error) {
	return RunContext(context.Background(), cfg, s, max, batchSize)
}

// RunContext is Run with cancellation, polled once per batch like the
// single-level drivers.
func RunContext(ctx context.Context, cfg Config, s trace.Stream, max, batchSize int) (Result, error) {
	if cfg.L1.BlockBytes < 8 || cfg.L2.BlockBytes < 8 {
		return Result{}, fmt.Errorf("hier: block size must be at least 8 bytes")
	}
	l1c, err := cache.New(cfg.L1, mem.New())
	if err != nil {
		return Result{}, fmt.Errorf("hier: L1: %w", err)
	}
	l1, err := core.New(cfg.L1Kind, l1c, cfg.Opts)
	if err != nil {
		return Result{}, fmt.Errorf("hier: L1: %w", err)
	}
	l2c, err := cache.New(cfg.L2, mem.New())
	if err != nil {
		return Result{}, fmt.Errorf("hier: L2: %w", err)
	}
	l2, err := core.New(cfg.L2Kind, l2c, cfg.L2Opts)
	if err != nil {
		return Result{}, fmt.Errorf("hier: L2: %w", err)
	}
	br := &bridge{l2: l2, observe: cfg.Observer}
	l1c.SetListener(br)

	peeker, _ := l1.(counterPeeker)
	if max > 0 {
		s = trace.NewLimit(s, uint64(max))
	}
	if batchSize <= 0 {
		batchSize = trace.DefaultBatchSize
	}
	if max > 0 && batchSize > max {
		batchSize = max
	}
	b := trace.NewBatcher(s, batchSize)
	var fed, prevPWB uint64
	for {
		if ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
		batch, ok := b.Next()
		if !ok {
			break
		}
		for i := range batch {
			l1.Access(batch[i])
			if peeker != nil {
				// Attribute any premature write-backs to this access. They
				// follow the access's cache events: the Set-Buffer row
				// retires into the array before the read's data is served,
				// but after any miss handling the read triggered.
				for cur := peeker.PeekCounters().PrematureWBs; prevPWB < cur; prevPWB++ {
					br.premature()
				}
			}
		}
		fed += uint64(len(batch))
	}
	if err := b.Err(); err != nil {
		return Result{}, &core.StreamError{Accesses: fed, Err: err}
	}
	// Finalize L1 first: the WG family's Set-Buffer drain may dirty cache
	// lines but reaches no backing memory, so it emits no events. The L1
	// cache is deliberately NOT flushed — only traffic the run itself caused
	// counts, matching the single-level drivers, which never flush either.
	l1res := l1.Finalize()
	l2res := l2.Finalize()
	return Result{L1: l1res, L2: l2res, Traffic: br.counts}, nil
}
