package workload

import (
	"strings"
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/trace"
)

func TestMixValidation(t *testing.T) {
	if _, err := NewMix(nil, 1, 100); err == nil {
		t.Error("empty mix accepted")
	}
	p, _ := ProfileByName("gcc")
	if _, err := NewMix([]Profile{p}, 1, 0); err == nil {
		t.Error("zero quantum accepted")
	}
	if _, err := NewMix([]Profile{{}}, 1, 10); err == nil {
		t.Error("invalid profile accepted")
	}
	if _, err := NewMixByNames([]string{"gcc", "nope"}, 1, 10); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestMixRoundRobinQuanta(t *testing.T) {
	// Two programs in disjoint address regions: the mix must alternate in
	// exact quanta. seq-read regions are shared across profiles, so verify
	// via determinism against manual interleaving instead.
	m, err := NewMixByNames([]string{"gcc", "mcf"}, 7, 50)
	if err != nil {
		t.Fatal(err)
	}
	gcc, _ := Stream("gcc", 7)
	mcf, _ := Stream("mcf", 7)
	for i := 0; i < 500; i++ {
		var want trace.Access
		if i%100 < 50 {
			want, _ = gcc.Next()
		} else {
			want, _ = mcf.Next()
		}
		got, ok := m.Next()
		if !ok || got != want {
			t.Fatalf("access %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestMixDeterminism(t *testing.T) {
	build := func() *Mix {
		m, err := NewMixByNames([]string{"bwaves", "mcf", "gcc"}, 3, 64)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := build(), build()
	for i := 0; i < 2000; i++ {
		x, _ := a.Next()
		y, _ := b.Next()
		if x != y {
			t.Fatalf("mix diverged at %d", i)
		}
	}
}

func TestMixString(t *testing.T) {
	m, _ := NewMixByNames([]string{"gcc", "mcf"}, 1, 10)
	s := m.String()
	if !strings.Contains(s, "gcc") || !strings.Contains(s, "mcf") || !strings.Contains(s, "10") {
		t.Errorf("String = %q", s)
	}
}

func TestMixTruncatesWriteGroups(t *testing.T) {
	// Context switching hurts the single-entry Set-Buffer: the mixed
	// stream's WG reduction must fall below the mean of the solo runs, and
	// a deeper buffer must claw some of it back.
	names := []string{"bwaves", "lbm"}
	const n, quantum = 100_000, 20
	cfg := cache.DefaultConfig()

	soloSum := 0.0
	for _, name := range names {
		g, _ := Stream(name, 1)
		accs := trace.Collect(trace.NewLimit(g, n), 0)
		res, err := core.RunAll([]core.Kind{core.RMW, core.WG}, cfg, core.Options{}, accs)
		if err != nil {
			t.Fatal(err)
		}
		soloSum += 1 - float64(res[1].ArrayAccesses())/float64(res[0].ArrayAccesses())
	}
	soloMean := soloSum / float64(len(names))

	m, err := NewMixByNames(names, 1, quantum)
	if err != nil {
		t.Fatal(err)
	}
	mixed := trace.Collect(trace.NewLimit(m, n), 0)
	res, err := core.RunAll([]core.Kind{core.RMW, core.WG}, cfg, core.Options{}, mixed)
	if err != nil {
		t.Fatal(err)
	}
	mixRed := 1 - float64(res[1].ArrayAccesses())/float64(res[0].ArrayAccesses())
	if mixRed >= soloMean {
		t.Errorf("mixing did not hurt WG: mixed %.3f vs solo mean %.3f", mixRed, soloMean)
	}

	deep, err := core.Run(core.WG, cfg, core.Options{BufferDepth: 4}, trace.FromSlice(mixed), 0)
	if err != nil {
		t.Fatal(err)
	}
	rmw := res[0].ArrayAccesses()
	deepRed := 1 - float64(deep.ArrayAccesses())/float64(rmw)
	if deepRed <= mixRed {
		t.Errorf("deeper buffer did not help the mix: depth4 %.3f vs depth1 %.3f", deepRed, mixRed)
	}
}
