package workload

import (
	"fmt"

	"cache8t/internal/mem"
	"cache8t/internal/rng"
	"cache8t/internal/trace"
)

// Generator produces an infinite, deterministic request stream for one
// benchmark profile. It implements trace.Stream.
//
// Mechanics: the generator runs one pattern at a time for a geometrically
// distributed number of accesses (mean Profile.RunMean), then picks the next
// pattern by profile weight. Pattern cursors persist across runs, so an
// interrupted scan resumes where it left off — the way real loop nests
// interleave. Between memory accesses it inserts a geometric number of
// non-memory instructions so that accesses-per-instruction matches
// Profile.MemFrac. Writes consult a private shadow memory: with probability
// Profile.SilentFrac the write stores the value already present (a silent
// store); otherwise it stores a value guaranteed to differ.
type Generator struct {
	prof   Profile
	r      *rng.Xoshiro256
	shadow *mem.Memory

	pattern   Pattern
	remaining int

	seqReadCurs [maxReadStreams]uint64
	seqWriteCur uint64
	copyCur     uint64
	copyPhase   bool // false: read src next; true: write dst next
	rmwCur      uint64
	rmwPhase    bool // false: read next; true: write next
	strideCur   uint64
	stackCur    uint64

	valCounter uint64
}

// NewGenerator builds a generator for prof with the given seed. The same
// (profile, seed) pair always yields the same stream.
func NewGenerator(prof Profile, seed uint64) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		prof:   prof,
		r:      rng.New(seed ^ hashName(prof.Name)),
		shadow: mem.New(),
	}
	g.nextRun()
	return g, nil
}

// hashName folds the profile name into the seed so two profiles with the
// same numeric seed still produce unrelated streams (FNV-1a).
func hashName(name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// nextRun switches to a freshly drawn pattern run.
func (g *Generator) nextRun() {
	w := g.prof.Weights
	g.pattern = Pattern(g.r.Pick(w[:]))
	g.remaining = g.r.Geometric(1 / float64(g.prof.RunMean))
}

// gap draws the number of non-memory instructions preceding an access so
// the long-run accesses-per-instruction ratio equals MemFrac.
func (g *Generator) gap() uint32 {
	// Geometric(p) counts trials to first success; with p = MemFrac the
	// mean is 1/MemFrac instructions per access, one of which is the
	// access itself.
	n := g.r.Geometric(g.prof.MemFrac)
	return uint32(n - 1)
}

// Next emits the next access. The stream is infinite; ok is always true.
func (g *Generator) Next() (trace.Access, bool) {
	if g.remaining <= 0 {
		g.nextRun()
	}
	g.remaining--
	var a trace.Access
	switch g.pattern {
	case SeqRead:
		// A loop nest reading ReadStreams arrays in parallel (a[i]+b[i]...):
		// each access picks one stream, so consecutive reads stay in the
		// same block only 1/ReadStreams of the time.
		s := 0
		if g.prof.ReadStreams > 1 {
			s = g.r.Intn(g.prof.ReadStreams)
		}
		base := uint64(seqReadBase + s*(seqRegionBytes+setSkew))
		a = g.read(base + g.seqReadCurs[s]%seqRegionBytes)
		g.seqReadCurs[s] += elemSize
	case SeqWrite:
		a = g.write(seqWriteBase + g.seqWriteCur%seqRegionBytes)
		g.seqWriteCur += elemSize
	case Copy:
		if !g.copyPhase {
			a = g.read(copySrcBase + g.copyCur%seqRegionBytes)
		} else {
			a = g.write(copyDstBase + setSkew + g.copyCur%seqRegionBytes)
			g.copyCur += elemSize
		}
		g.copyPhase = !g.copyPhase
	case RMWSweep:
		addr := rmwBase + g.rmwCur%rmwRegionBytes
		if !g.rmwPhase {
			a = g.read(addr)
		} else {
			a = g.write(addr)
			g.rmwCur += elemSize
		}
		g.rmwPhase = !g.rmwPhase
	case PointerChase:
		slot := uint64(g.r.Intn(chaseRegionBytes/elemSize)) * elemSize
		a = g.read(chaseBase + slot)
	case StrideRead:
		a = g.read(strideBase + g.strideCur%strideRegionBytes)
		g.strideCur += strideStep
	case Stack:
		// Random walk within the hot window; ~45% writes, like spill-heavy
		// integer code. Steps span up to two blocks so consecutive stack
		// accesses change set about half the time.
		step := uint64(g.r.Intn(9)) * elemSize
		if g.r.Bool(0.5) {
			g.stackCur += step
		} else {
			g.stackCur -= step
		}
		addr := stackBase + g.stackCur%stackRegionBytes
		if g.r.Bool(0.45) {
			a = g.write(addr)
		} else {
			a = g.read(addr)
		}
	default:
		panic("workload: invalid pattern")
	}
	a.Gap = g.gap()
	return a, true
}

// read builds a read access at addr carrying the current memory value.
func (g *Generator) read(addr uint64) trace.Access {
	return trace.Access{
		Kind: trace.Read,
		Addr: addr,
		Size: elemSize,
		Data: g.shadow.ReadWord(addr, elemSize),
	}
}

// write builds a write access at addr, silent with the profile probability,
// and updates the shadow image.
func (g *Generator) write(addr uint64) trace.Access {
	old := g.shadow.ReadWord(addr, elemSize)
	data := old
	if !g.r.Bool(g.prof.SilentFrac) {
		g.valCounter++
		data = old ^ (g.valCounter<<1 | 1) // guaranteed to differ from old
		g.shadow.WriteWord(addr, elemSize, data)
	}
	return trace.Access{
		Kind: trace.Write,
		Addr: addr,
		Size: elemSize,
		Data: data,
	}
}

// Stream returns a generator for the named benchmark, or an error for an
// unknown name. Convenience for CLIs.
func Stream(name string, seed uint64) (*Generator, error) {
	p, err := ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return NewGenerator(p, seed)
}

// Take materializes the first n accesses of a fresh stream for prof. Requests
// beyond MaterializeCap fail fast instead of attempting the allocation.
func Take(prof Profile, seed uint64, n int) ([]trace.Access, error) {
	if err := CheckMaterializeCap(n); err != nil {
		return nil, fmt.Errorf("workload: materializing %q: %w", prof.Name, err)
	}
	g, err := NewGenerator(prof, seed)
	if err != nil {
		return nil, err
	}
	out := make([]trace.Access, n)
	for i := range out {
		out[i], _ = g.Next()
	}
	return out, nil
}

// ensure interface compliance.
var _ trace.Stream = (*Generator)(nil)

// String describes the generator.
func (g *Generator) String() string {
	return fmt.Sprintf("workload(%s)", g.prof.Name)
}
