package workload

import (
	"fmt"
	"sync"

	"cache8t/internal/trace"
)

// MaterializeCap bounds how many accesses a single Materialize/Take call may
// hold in memory: at 24 bytes per access the default (64 Mi accesses) is a
// 1.5 GiB slice — past that a materialized run is almost certainly a mistake
// and the streaming path (Source with streaming=true, the CLIs' -stream flag)
// is the right tool. The cap is a variable, not a constant, so callers with
// big machines can raise it deliberately.
var MaterializeCap = 1 << 26

// CheckMaterializeCap fails fast — before any allocation — when n exceeds
// MaterializeCap.
func CheckMaterializeCap(n int) error {
	if n > MaterializeCap {
		return fmt.Errorf("%d accesses exceeds the materialization cap of %d (%.1f GiB of trace): "+
			"run streamed (-stream) or raise workload.MaterializeCap",
			n, MaterializeCap, float64(n)*24/(1<<30))
	}
	return nil
}

// Source is one benchmark's trace, openable any number of times, each open
// yielding the identical access sequence. It unifies the two execution modes
// behind one type:
//
//   - materialized: the first Stream call generates and caches the slice
//     (bounded by MaterializeCap); later opens replay it with zero cost.
//   - streaming: every Stream call builds a fresh deterministic generator,
//     so no open ever holds more than one access — traces larger than RAM
//     are fine, at the cost of regenerating per open.
//
// Because generators are seeded purely by (profile, seed), the two modes
// yield byte-identical sequences; controllers driven from either produce
// identical Results.
type Source struct {
	prof      Profile
	seed      uint64
	n         int
	streaming bool

	once sync.Once
	accs []trace.Access
	err  error
}

// NewSource builds a source for the first n accesses of prof's stream.
// n <= 0 means unbounded, which forces streaming mode regardless of the flag
// (an unbounded trace cannot be materialized).
func NewSource(prof Profile, seed uint64, n int, streaming bool) *Source {
	if n <= 0 {
		streaming = true
	}
	return &Source{prof: prof, seed: seed, n: n, streaming: streaming}
}

// Profile returns the benchmark profile this source draws from.
func (s *Source) Profile() Profile { return s.prof }

// N returns the access budget per open (0 = unbounded).
func (s *Source) N() int {
	if s.n < 0 {
		return 0
	}
	return s.n
}

// Streaming reports whether opens regenerate rather than replay a cache.
func (s *Source) Streaming() bool { return s.streaming }

// Stream opens the trace from the beginning. Every call returns a stream
// yielding the same sequence.
func (s *Source) Stream() (trace.Stream, error) {
	if s.streaming {
		g, err := NewGenerator(s.prof, s.seed)
		if err != nil {
			return nil, err
		}
		if s.n <= 0 {
			return g, nil
		}
		return trace.NewLimit(g, uint64(s.n)), nil
	}
	accs, err := s.Accesses()
	if err != nil {
		return nil, err
	}
	return trace.FromSlice(accs), nil
}

// Accesses returns the materialized trace, generating it on first use. In
// streaming mode it fails: the caller asked for the whole trace in memory,
// which is exactly what streaming mode exists to avoid.
func (s *Source) Accesses() ([]trace.Access, error) {
	if s.streaming {
		return nil, fmt.Errorf("workload: source %q is streaming; no materialized accesses", s.prof.Name)
	}
	s.once.Do(func() {
		s.accs, s.err = Take(s.prof, s.seed, s.n)
	})
	return s.accs, s.err
}

// Sources builds one Source per profile, sharing seed, budget, and mode.
func Sources(profiles []Profile, seed uint64, n int, streaming bool) []*Source {
	out := make([]*Source, len(profiles))
	for i, p := range profiles {
		out[i] = NewSource(p, seed, n, streaming)
	}
	return out
}
