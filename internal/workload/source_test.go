package workload

import (
	"strings"
	"testing"

	"cache8t/internal/trace"
)

func testProfile(t *testing.T) Profile {
	t.Helper()
	ps := Profiles()
	if len(ps) == 0 {
		t.Fatal("no profiles")
	}
	return ps[0]
}

// The load-bearing property of the whole streaming pipeline: a streaming
// source and a materialized source over the same (profile, seed, n) yield
// byte-identical access sequences, every time they are opened.
func TestSourceStreamingMatchesMaterialized(t *testing.T) {
	prof := testProfile(t)
	const n = 5000
	mat := NewSource(prof, 42, n, false)
	str := NewSource(prof, 42, n, true)

	want, err := mat.Accesses()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != n {
		t.Fatalf("materialized %d accesses, want %d", len(want), n)
	}
	for open := 0; open < 3; open++ {
		s, err := str.Stream()
		if err != nil {
			t.Fatal(err)
		}
		got := trace.Collect(s, 0)
		if len(got) != n {
			t.Fatalf("open %d: streamed %d accesses, want %d", open, len(got), n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("open %d: access %d = %v, want %v", open, i, got[i], want[i])
			}
		}
	}
}

func TestSourceMaterializedCachesOneSlice(t *testing.T) {
	src := NewSource(testProfile(t), 7, 100, false)
	a, err := src.Accesses()
	if err != nil {
		t.Fatal(err)
	}
	b, err := src.Accesses()
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("second Accesses call rematerialized the trace")
	}
	s1, err := src.Stream()
	if err != nil {
		t.Fatal(err)
	}
	got := trace.Collect(s1, 0)
	if len(got) != 100 || got[0] != a[0] {
		t.Fatalf("replayed stream disagrees with slice")
	}
}

func TestSourceStreamingRefusesAccesses(t *testing.T) {
	src := NewSource(testProfile(t), 7, 100, true)
	if _, err := src.Accesses(); err == nil {
		t.Fatal("streaming source handed out a materialized slice")
	}
}

func TestSourceUnboundedForcesStreaming(t *testing.T) {
	src := NewSource(testProfile(t), 7, 0, false)
	if !src.Streaming() {
		t.Fatal("unbounded source must stream")
	}
	if src.N() != 0 {
		t.Fatalf("N = %d, want 0", src.N())
	}
}

func TestMaterializeCapFailsFast(t *testing.T) {
	old := MaterializeCap
	MaterializeCap = 1000
	defer func() { MaterializeCap = old }()

	prof := testProfile(t)
	if _, err := Take(prof, 1, 1001); err == nil || !strings.Contains(err.Error(), "-stream") {
		t.Fatalf("Take over cap: err = %v, want cap error naming -stream", err)
	}
	if _, err := Materialize([]Profile{prof}, 1, 1001); err == nil {
		t.Fatal("Materialize over cap succeeded")
	}
	if _, err := Take(prof, 1, 1000); err != nil {
		t.Fatalf("Take at cap: %v", err)
	}
	// Streaming mode is exactly how to exceed the cap.
	src := NewSource(prof, 1, 2000, true)
	s, err := src.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(trace.Collect(s, 0)); got != 2000 {
		t.Fatalf("streamed %d accesses past the cap, want 2000", got)
	}
}
