package workload

import "fmt"

// maxReadStreams bounds Profile.ReadStreams (parallel arrays a SeqRead loop
// walks).
const maxReadStreams = 4

// Profile describes one synthetic benchmark: the knobs that determine the
// four stream properties the paper's techniques are sensitive to. The table
// in Profiles covers the 25 SPEC CPU2006 benchmarks the paper simulates,
// each calibrated so the measured Figure 3/4/5 statistics land near the
// anchors the paper reports (see DESIGN.md §2 for the substitution argument
// and EXPERIMENTS.md for measured-vs-paper values).
type Profile struct {
	// Name is the SPEC benchmark this profile stands in for.
	Name string
	// MemFrac is memory accesses per executed instruction (reads+writes);
	// the paper's average is 0.40 (26% reads + 14% writes).
	MemFrac float64
	// SilentFrac is the probability a generated write stores the value
	// already in memory (Figure 5; paper average > 42%).
	SilentFrac float64
	// RunMean is the mean number of accesses a pattern run lasts before the
	// generator switches pattern; longer runs mean longer same-set bursts.
	RunMean int
	// ReadStreams is how many arrays a SeqRead run interleaves (1-4): more
	// streams dilute consecutive same-set read pairs.
	ReadStreams int
	// Weights mixes the patterns.
	Weights Weights
}

// Validate checks a profile for usability.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile with empty name")
	case p.MemFrac <= 0 || p.MemFrac > 1:
		return fmt.Errorf("workload %s: MemFrac %v out of (0,1]", p.Name, p.MemFrac)
	case p.SilentFrac < 0 || p.SilentFrac > 1:
		return fmt.Errorf("workload %s: SilentFrac %v out of [0,1]", p.Name, p.SilentFrac)
	case p.RunMean < 1:
		return fmt.Errorf("workload %s: RunMean %d < 1", p.Name, p.RunMean)
	case p.ReadStreams < 1 || p.ReadStreams > maxReadStreams:
		return fmt.Errorf("workload %s: ReadStreams %d out of [1,%d]", p.Name, p.ReadStreams, maxReadStreams)
	}
	total := 0.0
	for i, w := range p.Weights {
		if w < 0 {
			return fmt.Errorf("workload %s: negative weight for %v", p.Name, Pattern(i))
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("workload %s: all pattern weights zero", p.Name)
	}
	return nil
}

// patternWriteShare is the long-run fraction of accesses each pattern emits
// as writes.
var patternWriteShare = [NumPatterns]float64{
	SeqRead:      0,
	SeqWrite:     1,
	Copy:         0.5,
	RMWSweep:     0.5,
	PointerChase: 0,
	StrideRead:   0,
	Stack:        0.45,
}

// ImpliedWriteShare returns the expected fraction of accesses that are
// writes, from the pattern mix.
func (p Profile) ImpliedWriteShare() float64 {
	var num, den float64
	for i, w := range p.Weights {
		num += w * patternWriteShare[i]
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// ImpliedReadFrac returns the expected reads-per-instruction (Figure 3 bar).
func (p Profile) ImpliedReadFrac() float64 {
	return p.MemFrac * (1 - p.ImpliedWriteShare())
}

// ImpliedWriteFrac returns the expected writes-per-instruction.
func (p Profile) ImpliedWriteFrac() float64 {
	return p.MemFrac * p.ImpliedWriteShare()
}

// w builds a Weights value in pattern order: SeqRead, SeqWrite, Copy,
// RMWSweep, PointerChase, StrideRead, Stack.
func w(sr, sw, cp, rmw, pc, st, sk float64) Weights {
	return Weights{sr, sw, cp, rmw, pc, st, sk}
}

// profiles is the 25-benchmark table. The four benchmarks of SPEC CPU2006
// the paper omits (it runs "25 out of 29") are not identified in the text;
// we omit perlbench, dealII, tonto, and xalancbmk.
//
// Flavor notes: bwaves/wrf/lbm are the write-burst/silent-store extremes the
// paper calls out (§5.2); gamess and cactusADM carry the read-after-write
// set locality that makes WG+RB shine (§5.2); mcf/astar/omnetpp are pointer
// chasers; libquantum is a low-intensity streamer.
var profiles = []Profile{
	{Name: "bzip2", MemFrac: 0.36, SilentFrac: 0.35, RunMean: 16, ReadStreams: 2,
		Weights: w(0.30, 0.12, 0.22, 0.10, 0.08, 0.10, 0.08)},
	{Name: "gcc", MemFrac: 0.38, SilentFrac: 0.50, RunMean: 10, ReadStreams: 2,
		Weights: w(0.18, 0.15, 0.14, 0.12, 0.08, 0.05, 0.28)},
	{Name: "bwaves", MemFrac: 0.48, SilentFrac: 0.77, RunMean: 24, ReadStreams: 3,
		Weights: w(0.25, 0.30, 0.20, 0.15, 0.02, 0.05, 0.03)},
	{Name: "gamess", MemFrac: 0.39, SilentFrac: 0.45, RunMean: 12, ReadStreams: 1,
		Weights: w(0.35, 0.02, 0.04, 0.14, 0.09, 0.08, 0.28)},
	{Name: "mcf", MemFrac: 0.38, SilentFrac: 0.30, RunMean: 8, ReadStreams: 2,
		Weights: w(0.15, 0.06, 0.06, 0.14, 0.41, 0.08, 0.10)},
	{Name: "milc", MemFrac: 0.40, SilentFrac: 0.45, RunMean: 20, ReadStreams: 3,
		Weights: w(0.28, 0.14, 0.16, 0.10, 0.04, 0.22, 0.06)},
	{Name: "zeusmp", MemFrac: 0.34, SilentFrac: 0.50, RunMean: 18, ReadStreams: 3,
		Weights: w(0.24, 0.18, 0.16, 0.14, 0.04, 0.18, 0.06)},
	{Name: "gromacs", MemFrac: 0.36, SilentFrac: 0.40, RunMean: 14, ReadStreams: 2,
		Weights: w(0.30, 0.08, 0.12, 0.20, 0.06, 0.12, 0.12)},
	{Name: "cactusADM", MemFrac: 0.43, SilentFrac: 0.50, RunMean: 16, ReadStreams: 1,
		Weights: w(0.30, 0.04, 0.08, 0.22, 0.04, 0.06, 0.26)},
	{Name: "leslie3d", MemFrac: 0.40, SilentFrac: 0.45, RunMean: 18, ReadStreams: 3,
		Weights: w(0.28, 0.16, 0.16, 0.12, 0.04, 0.18, 0.06)},
	{Name: "namd", MemFrac: 0.30, SilentFrac: 0.35, RunMean: 14, ReadStreams: 2,
		Weights: w(0.34, 0.04, 0.08, 0.20, 0.06, 0.18, 0.10)},
	{Name: "gobmk", MemFrac: 0.38, SilentFrac: 0.50, RunMean: 8, ReadStreams: 2,
		Weights: w(0.20, 0.08, 0.10, 0.14, 0.12, 0.04, 0.32)},
	{Name: "soplex", MemFrac: 0.35, SilentFrac: 0.30, RunMean: 10, ReadStreams: 2,
		Weights: w(0.30, 0.06, 0.06, 0.12, 0.22, 0.12, 0.12)},
	{Name: "povray", MemFrac: 0.41, SilentFrac: 0.45, RunMean: 9, ReadStreams: 2,
		Weights: w(0.22, 0.06, 0.10, 0.12, 0.08, 0.06, 0.36)},
	{Name: "calculix", MemFrac: 0.34, SilentFrac: 0.40, RunMean: 14, ReadStreams: 2,
		Weights: w(0.32, 0.04, 0.08, 0.18, 0.06, 0.20, 0.12)},
	{Name: "hmmer", MemFrac: 0.44, SilentFrac: 0.35, RunMean: 16, ReadStreams: 2,
		Weights: w(0.24, 0.10, 0.12, 0.28, 0.04, 0.12, 0.10)},
	{Name: "sjeng", MemFrac: 0.35, SilentFrac: 0.50, RunMean: 8, ReadStreams: 2,
		Weights: w(0.20, 0.06, 0.08, 0.12, 0.14, 0.08, 0.32)},
	{Name: "GemsFDTD", MemFrac: 0.42, SilentFrac: 0.50, RunMean: 20, ReadStreams: 3,
		Weights: w(0.26, 0.18, 0.14, 0.12, 0.04, 0.20, 0.06)},
	{Name: "libquantum", MemFrac: 0.21, SilentFrac: 0.25, RunMean: 26, ReadStreams: 1,
		Weights: w(0.24, 0.16, 0.14, 0.14, 0.02, 0.26, 0.04)},
	{Name: "h264ref", MemFrac: 0.42, SilentFrac: 0.40, RunMean: 18, ReadStreams: 2,
		Weights: w(0.22, 0.10, 0.30, 0.10, 0.06, 0.14, 0.08)},
	{Name: "lbm", MemFrac: 0.30, SilentFrac: 0.60, RunMean: 28, ReadStreams: 2,
		Weights: w(0.16, 0.26, 0.24, 0.16, 0.02, 0.12, 0.04)},
	{Name: "omnetpp", MemFrac: 0.43, SilentFrac: 0.40, RunMean: 9, ReadStreams: 2,
		Weights: w(0.16, 0.16, 0.10, 0.12, 0.16, 0.04, 0.26)},
	{Name: "astar", MemFrac: 0.36, SilentFrac: 0.35, RunMean: 8, ReadStreams: 2,
		Weights: w(0.18, 0.08, 0.08, 0.16, 0.28, 0.06, 0.16)},
	{Name: "wrf", MemFrac: 0.44, SilentFrac: 0.60, RunMean: 22, ReadStreams: 3,
		Weights: w(0.24, 0.22, 0.16, 0.10, 0.04, 0.18, 0.06)},
	{Name: "sphinx3", MemFrac: 0.39, SilentFrac: 0.30, RunMean: 12, ReadStreams: 2,
		Weights: w(0.34, 0.06, 0.08, 0.16, 0.10, 0.20, 0.06)},
}

// Profiles returns the 25 benchmark profiles in table order. The slice is a
// copy; callers may mutate it freely.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// Names returns the benchmark names in table order.
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// ProfileByName returns the profile for a benchmark name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
}
