package workload

import (
	"context"
	"fmt"

	"cache8t/internal/engine"
	"cache8t/internal/trace"
)

// Resolve turns a CLI -bench argument into a profile list: the full
// 25-benchmark suite for "", or the single named profile. This is the shared
// front half of the materialization boilerplate cmd/sweep, cmd/calibrate,
// and cmd/figures used to repeat.
func Resolve(name string) ([]Profile, error) {
	if name == "" {
		return Profiles(), nil
	}
	p, err := ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return []Profile{p}, nil
}

// Materialize generates the first n accesses of every profile's stream,
// serially, in profile order. Every grid point of a sweep then replays the
// same slices, keeping inputs bit-identical across configurations.
func Materialize(profiles []Profile, seed uint64, n int) ([][]trace.Access, error) {
	return MaterializeContext(context.Background(), profiles, seed, n, 1)
}

// MaterializeContext is Materialize with cancellation and a worker budget:
// stream generation fans out across the engine (one job per profile) and
// the slices come back in profile order. Generators are seeded per profile,
// so parallel materialization is bit-identical to serial.
func MaterializeContext(ctx context.Context, profiles []Profile, seed uint64, n int, workers int) ([][]trace.Access, error) {
	if err := CheckMaterializeCap(n); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	jobs := make([]engine.Job[[]trace.Access], len(profiles))
	for i, p := range profiles {
		p := p
		jobs[i] = engine.Job[[]trace.Access]{
			Label:  p.Name,
			Weight: int64(n),
			Fn: func(context.Context) ([]trace.Access, error) {
				return Take(p, seed, n)
			},
		}
	}
	return engine.Map(ctx, engine.Config{Workers: workers}, jobs)
}
