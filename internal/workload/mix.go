package workload

import (
	"fmt"
	"strings"

	"cache8t/internal/trace"
)

// Mix interleaves several benchmark generators in round-robin time quanta —
// a multiprogrammed L1-D request stream, the situation a shared cache's
// Set-Buffer actually faces once an OS is scheduling. Context switches
// truncate write groups, so mixed streams are a stress test for WG: the
// paper evaluates single programs only, and Mix quantifies how fragile the
// single-entry Set-Buffer is to interleaving (it pairs naturally with the
// BufferDepth ablation).
type Mix struct {
	gens    []*Generator
	quantum int
	current int
	left    int
}

// NewMix builds a round-robin mix over the given profiles. quantum is the
// number of accesses each program issues before the next context switch.
// All generators derive from the same seed but remain stream-independent
// (each profile name hashes into its generator seed).
func NewMix(profs []Profile, seed uint64, quantum int) (*Mix, error) {
	if len(profs) == 0 {
		return nil, fmt.Errorf("workload: empty mix")
	}
	if quantum < 1 {
		return nil, fmt.Errorf("workload: mix quantum %d < 1", quantum)
	}
	gens := make([]*Generator, len(profs))
	for i, p := range profs {
		g, err := NewGenerator(p, seed)
		if err != nil {
			return nil, err
		}
		gens[i] = g
	}
	return &Mix{gens: gens, quantum: quantum, left: quantum}, nil
}

// NewMixByNames is NewMix over named profiles.
func NewMixByNames(names []string, seed uint64, quantum int) (*Mix, error) {
	profs := make([]Profile, len(names))
	for i, n := range names {
		p, err := ProfileByName(n)
		if err != nil {
			return nil, err
		}
		profs[i] = p
	}
	return NewMix(profs, seed, quantum)
}

// Next emits the next access; the stream is infinite.
func (m *Mix) Next() (trace.Access, bool) {
	if m.left == 0 {
		m.current = (m.current + 1) % len(m.gens)
		m.left = m.quantum
	}
	m.left--
	return m.gens[m.current].Next()
}

// String describes the mix.
func (m *Mix) String() string {
	names := make([]string, len(m.gens))
	for i, g := range m.gens {
		names[i] = g.prof.Name
	}
	return fmt.Sprintf("mix(%s, quantum=%d)", strings.Join(names, "+"), m.quantum)
}

var _ trace.Stream = (*Mix)(nil)
