// Package workload generates synthetic L1-D request streams standing in for
// the paper's Pin-instrumented SPEC CPU2006 runs.
//
// The controllers under study care about exactly four stream properties:
// the read/write mix per instruction (Figure 3), the set-level locality of
// consecutive accesses (Figure 4), the silent-write fraction (Figure 5), and
// the spatial structure of addresses (which is what makes block-size and
// cache-size sensitivity, Figures 10-11, come out mechanistically). Streams
// here are built from mixtures of recognizable program patterns — sequential
// scans, memset-style write bursts, copy loops, in-place read-modify-write
// sweeps, pointer chases, strided walks, and stack traffic — so those four
// properties emerge from structure rather than being painted on.
package workload

import "fmt"

// Pattern is one archetypal access pattern a run of the generator emits.
type Pattern uint8

const (
	// SeqRead is a sequential read scan (array traversal): long RR bursts,
	// high same-set locality within a block.
	SeqRead Pattern = iota
	// SeqWrite is a sequential write burst (memset, result-array fill):
	// long WW bursts — the pattern Write Grouping feeds on.
	SeqWrite
	// Copy alternates a read from a source region and a write to a
	// destination region (memcpy): RW/WR pairs across two sets.
	Copy
	// RMWSweep reads then writes each element in place (a[i] += k): tight
	// same-address RW/WR pairs — the pattern Read Bypassing feeds on.
	RMWSweep
	// PointerChase performs dependent random reads (linked structures):
	// negligible same-set locality.
	PointerChase
	// StrideRead reads with a large stride (column walks): touches a new
	// set almost every access.
	StrideRead
	// Stack is a random walk over a small hot region with mixed
	// reads/writes (call frames, spills): very high same-set locality.
	Stack

	// NumPatterns is the number of defined patterns.
	NumPatterns
)

var patternNames = [NumPatterns]string{
	"seq-read", "seq-write", "copy", "rmw-sweep", "pointer-chase",
	"stride-read", "stack",
}

// String names the pattern.
func (p Pattern) String() string {
	if int(p) < len(patternNames) {
		return patternNames[p]
	}
	return fmt.Sprintf("Pattern(%d)", uint8(p))
}

// Weights holds one non-negative mixing weight per pattern. They need not
// sum to 1; selection is proportional.
type Weights [NumPatterns]float64

// region layout: each pattern family works in its own disjoint address
// region so that patterns interact only through the cache, never by aliasing.
const (
	elemSize = 8 // bytes per generated access

	seqReadBase  = 0x1000_0000
	seqWriteBase = 0x2000_0000
	copySrcBase  = 0x3000_0000
	copyDstBase  = 0x3800_0000
	rmwBase      = 0x4000_0000
	chaseBase    = 0x5000_0000
	strideBase   = 0x6000_0000
	stackBase    = 0x7000_0000

	seqRegionBytes    = 4 << 20 // streams sweep far past any L1
	rmwRegionBytes    = 512 << 10
	chaseRegionBytes  = 8 << 20
	strideRegionBytes = 8 << 20
	stackRegionBytes  = 2 << 10 // a hot frame window
	strideStep        = 416     // not a power of two: avoids set aliasing artifacts

	// setSkew decorrelates regions whose cursors advance in lockstep (copy
	// src/dst, parallel read streams). Region bases are multiples of common
	// cache sizes, so without a skew equal cursors would land in equal set
	// indices and fabricate same-set locality that real programs don't have.
	// 736 = 23 blocks of 32 B, block-aligned for every supported block size
	// <= 32 B and non-aligned to any power-of-two set stride.
	setSkew = 736
)
