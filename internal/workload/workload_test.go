package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/trace"
)

const calibN = 200000

func baselineGeom() cache.Geometry {
	return cache.MustGeometry(64*1024, 4, 32)
}

func TestPatternNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Pattern(0); p < NumPatterns; p++ {
		name := p.String()
		if name == "" || strings.HasPrefix(name, "Pattern(") {
			t.Errorf("pattern %d unnamed", p)
		}
		if seen[name] {
			t.Errorf("duplicate pattern name %q", name)
		}
		seen[name] = true
	}
	if !strings.HasPrefix(Pattern(99).String(), "Pattern(") {
		t.Error("out-of-range pattern name")
	}
}

func TestProfilesTableValid(t *testing.T) {
	ps := Profiles()
	if len(ps) != 25 {
		t.Fatalf("profile table has %d entries, want 25 (paper §5.1)", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestProfileValidateRejections(t *testing.T) {
	good, _ := ProfileByName("bwaves")
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.MemFrac = 0 },
		func(p *Profile) { p.MemFrac = 1.5 },
		func(p *Profile) { p.SilentFrac = -0.1 },
		func(p *Profile) { p.SilentFrac = 1.1 },
		func(p *Profile) { p.RunMean = 0 },
		func(p *Profile) { p.ReadStreams = 0 },
		func(p *Profile) { p.ReadStreams = 9 },
		func(p *Profile) { p.Weights = Weights{} },
		func(p *Profile) { p.Weights[0] = -1 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("lbm")
	if err != nil || p.Name != "lbm" {
		t.Fatalf("ProfileByName(lbm) = %v, %v", p.Name, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if len(Names()) != 25 {
		t.Fatal("Names length mismatch")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ProfileByName("gcc")
	a, _ := Take(p, 7, 5000)
	b, _ := Take(p, 7, 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at access %d", i)
		}
	}
	c, _ := Take(p, 8, 5000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Errorf("different seeds produced %d/%d identical accesses", same, len(a))
	}
}

func TestGeneratorSeedsDifferAcrossProfiles(t *testing.T) {
	// Same numeric seed, different benchmarks: streams must differ.
	pa, _ := ProfileByName("bzip2")
	pb, _ := ProfileByName("gcc")
	a, _ := Take(pa, 1, 1000)
	b, _ := Take(pb, 1, 1000)
	same := 0
	for i := range a {
		if a[i].Addr == b[i].Addr && a[i].Kind == b[i].Kind {
			same++
		}
	}
	if same > 100 {
		t.Errorf("%d/1000 identical accesses across profiles", same)
	}
}

func TestGeneratorAccessWellFormed(t *testing.T) {
	for _, p := range Profiles() {
		accs, err := Take(p, 3, 2000)
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range accs {
			if a.Size != elemSize {
				t.Fatalf("%s access %d size %d", p.Name, i, a.Size)
			}
			if a.Addr%elemSize != 0 {
				t.Fatalf("%s access %d unaligned addr %#x", p.Name, i, a.Addr)
			}
		}
	}
}

func TestGeneratorRejectsInvalidProfile(t *testing.T) {
	if _, err := NewGenerator(Profile{}, 1); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestStreamByName(t *testing.T) {
	g, err := Stream("mcf", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.String(), "mcf") {
		t.Errorf("String = %q", g.String())
	}
	if _, err := Stream("nope", 1); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// Calibration self-checks: the measured statistics must track the profile's
// declared knobs and the paper's anchors. These are the contract between the
// workload substitute and the experiments (DESIGN.md §2).

func measure(t *testing.T, p Profile) core.StreamAnalysis {
	t.Helper()
	g, err := NewGenerator(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	return core.Analyze(g, baselineGeom(), calibN)
}

func TestSilentFractionTracksProfile(t *testing.T) {
	for _, name := range []string{"bwaves", "mcf", "lbm", "libquantum"} {
		p, _ := ProfileByName(name)
		an := measure(t, p)
		if got := an.SilentFrac(); math.Abs(got-p.SilentFrac) > 0.03 {
			t.Errorf("%s: measured silent %.3f, profile %.3f", name, got, p.SilentFrac)
		}
	}
}

func TestMemFracTracksProfile(t *testing.T) {
	for _, name := range []string{"bwaves", "gamess", "libquantum"} {
		p, _ := ProfileByName(name)
		an := measure(t, p)
		got := an.Stats.ReadFrac() + an.Stats.WriteFrac()
		if math.Abs(got-p.MemFrac) > 0.03 {
			t.Errorf("%s: measured mem/instr %.3f, profile %.3f", name, got, p.MemFrac)
		}
	}
}

func TestWriteShareTracksImplied(t *testing.T) {
	for _, name := range []string{"bwaves", "gamess", "hmmer"} {
		p, _ := ProfileByName(name)
		an := measure(t, p)
		got := float64(an.Stats.Writes) / float64(an.Stats.Accesses())
		if math.Abs(got-p.ImpliedWriteShare()) > 0.04 {
			t.Errorf("%s: measured write share %.3f, implied %.3f", name, got, p.ImpliedWriteShare())
		}
	}
}

func TestAggregateAnchorsMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	var readF, writeF, sameSet, silent []float64
	for _, p := range Profiles() {
		an := measure(t, p)
		readF = append(readF, an.Stats.ReadFrac())
		writeF = append(writeF, an.Stats.WriteFrac())
		sameSet = append(sameSet, an.SameSetFrac())
		silent = append(silent, an.SilentFrac())
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	// Paper anchors: 26% reads, 14% writes per instruction; ~27% same-set
	// consecutive accesses; >42% silent writes. Tolerances reflect that we
	// match shape, not decimals (DESIGN.md §6).
	if m := mean(readF); math.Abs(m-0.26) > 0.04 {
		t.Errorf("mean read/instr = %.3f, anchor 0.26", m)
	}
	if m := mean(writeF); math.Abs(m-0.14) > 0.04 {
		t.Errorf("mean write/instr = %.3f, anchor 0.14", m)
	}
	if m := mean(sameSet); m < 0.20 || m > 0.40 {
		t.Errorf("mean same-set = %.3f, anchor ~0.27", m)
	}
	if m := mean(silent); m < 0.38 || m > 0.50 {
		t.Errorf("mean silent = %.3f, anchor >0.42", m)
	}
}

func TestBwavesIsTheWriteExtreme(t *testing.T) {
	// Paper §3/§5.2: bwaves has >22% writes per instruction, the largest
	// WW share (~24%), and ~77% silent writes.
	var bw core.StreamAnalysis
	maxOtherWW := 0.0
	for _, p := range Profiles() {
		an := measure(t, p)
		if p.Name == "bwaves" {
			bw = an
			continue
		}
		if ww := an.WW(); ww > maxOtherWW {
			maxOtherWW = ww
		}
	}
	if got := bw.Stats.WriteFrac(); got < 0.22 {
		t.Errorf("bwaves writes/instr = %.3f, want > 0.22", got)
	}
	if got := bw.WW(); got <= maxOtherWW {
		t.Errorf("bwaves WW %.3f not the maximum (other max %.3f)", got, maxOtherWW)
	}
	if got := bw.SilentFrac(); math.Abs(got-0.77) > 0.03 {
		t.Errorf("bwaves silent = %.3f, want ~0.77", got)
	}
}

func TestRRAndWWDominatePairScenarios(t *testing.T) {
	// Paper Figure 4: "RR and WW account for the largest share of
	// consecutive accesses in almost all benchmarks." Check it holds on a
	// majority (interleaved RMW sweeps give a few benchmarks RW-heavy
	// mixes, as real codes do).
	dominant := 0
	for _, p := range Profiles() {
		an := measure(t, p)
		if an.RR() >= an.RW() && an.RR() >= an.WR() ||
			an.WW() >= an.RW() && an.WW() >= an.WR() {
			dominant++
		}
	}
	if dominant < 18 {
		t.Errorf("RR/WW dominant in only %d/25 benchmarks", dominant)
	}
}

func TestGapDistributionMatchesMemFrac(t *testing.T) {
	p, _ := ProfileByName("libquantum") // lowest MemFrac: strongest test
	accs, _ := Take(p, 2, calibN)
	var st trace.Stats
	for _, a := range accs {
		st.Observe(a)
	}
	got := float64(st.Accesses()) / float64(st.Instructions)
	if math.Abs(got-p.MemFrac) > 0.02 {
		t.Errorf("accesses/instruction = %.3f, want %.3f", got, p.MemFrac)
	}
}

func TestSilentWritesAreArchitecturallySilent(t *testing.T) {
	// Replaying the stream against a fresh shadow must find exactly the
	// writes the generator intended as silent — validates that generator
	// shadow state and architectural state agree.
	p, _ := ProfileByName("wrf")
	g, err := NewGenerator(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	an := core.Analyze(g, baselineGeom(), 50000)
	if an.SilentFrac() < p.SilentFrac-0.04 || an.SilentFrac() > p.SilentFrac+0.04 {
		t.Errorf("architectural silent frac %.3f vs profile %.3f", an.SilentFrac(), p.SilentFrac)
	}
}

func TestGeneratorQuickProperties(t *testing.T) {
	// For any profile and seed: accesses stay aligned, sized, and in the
	// designated regions; determinism holds for a prefix.
	ps := Profiles()
	f := func(seed uint64, profSel uint8) bool {
		p := ps[int(profSel)%len(ps)]
		a1, err := Take(p, seed, 300)
		if err != nil {
			return false
		}
		a2, err := Take(p, seed, 300)
		if err != nil {
			return false
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				return false
			}
			if a1[i].Size != elemSize || a1[i].Addr%elemSize != 0 {
				return false
			}
			if a1[i].Addr < seqReadBase {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
