// Package engine is the experiment-execution subsystem: it turns "run N
// independent simulations" into a first-class service with a bounded worker
// pool, context cancellation, per-job timeouts, panic containment, live
// progress, and engine-level metrics.
//
// The engine is generic over the job result type and deliberately depends on
// nothing else in this repository, so every layer — core, workload,
// experiments, the CLIs — can fan work out through it without import cycles.
// core.RunAllContext, workload.MaterializeContext, and the experiments grid
// helpers are all thin adapters over this package.
//
// # Determinism
//
// Results are aggregated by submission index: Run returns one Outcome per
// Job, in the order the jobs were submitted, regardless of the order workers
// finished them. A job function that is itself deterministic therefore
// produces byte-identical aggregate output whether the pool runs with one
// worker or many. This is the contract the rest of the repository leans on —
// a parallel sweep must reproduce the serial tables exactly.
//
// # Failure containment
//
// A job that returns an error or panics is converted into a *JobError
// recorded on its Outcome; the process never dies and the other jobs keep
// running (unless Config.FailFast cancels them). Cancellation via the parent
// context stops dispatch promptly and marks never-started jobs as skipped,
// so partial results are always well formed.
package engine
