package engine

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"
)

// metrics is the engine's cumulative counter set. All fields are atomics so
// workers update them without locks.
type metrics struct {
	submitted atomic.Int64
	started   atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	panicked  atomic.Int64
	skipped   atomic.Int64
	items     atomic.Int64
	wallNanos atomic.Int64 // wall time across Run calls
	busyNanos atomic.Int64 // summed per-job wall time
}

func (m *metrics) snapshot() Snapshot {
	s := Snapshot{
		JobsSubmitted: m.submitted.Load(),
		JobsStarted:   m.started.Load(),
		JobsCompleted: m.completed.Load(),
		JobsFailed:    m.failed.Load(),
		JobsPanicked:  m.panicked.Load(),
		JobsSkipped:   m.skipped.Load(),
		Items:         m.items.Load(),
		Wall:          time.Duration(m.wallNanos.Load()),
		Busy:          time.Duration(m.busyNanos.Load()),
	}
	if secs := s.Wall.Seconds(); secs > 0 {
		s.ItemsPerSecond = float64(s.Items) / secs
		s.Parallelism = s.Busy.Seconds() / secs
	}
	return s
}

// Snapshot is a point-in-time export of engine counters, printable for
// humans and marshalable for machines.
type Snapshot struct {
	// JobsSubmitted..JobsSkipped partition every job handed to Run:
	// completed + failed + skipped == submitted once a Run returns, and
	// panicked is the subset of failed that crashed.
	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsStarted   int64 `json:"jobs_started"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsPanicked  int64 `json:"jobs_panicked"`
	JobsSkipped   int64 `json:"jobs_skipped"`
	// Items sums the Weight of completed jobs — for simulations, accesses
	// simulated.
	Items int64 `json:"items"`
	// Wall is elapsed engine time; Busy is the summed per-job wall time, so
	// Parallelism = Busy/Wall is the effective worker utilization.
	Wall           time.Duration `json:"wall_ns"`
	Busy           time.Duration `json:"busy_ns"`
	ItemsPerSecond float64       `json:"items_per_second"`
	Parallelism    float64       `json:"parallelism"`
}

// String renders the snapshot as a one-line human summary.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"engine: %d/%d jobs ok (%d failed, %d panicked, %d skipped), %d items in %v (%.0f items/s, %.1fx parallel)",
		s.JobsCompleted, s.JobsSubmitted, s.JobsFailed, s.JobsPanicked, s.JobsSkipped,
		s.Items, s.Wall.Round(time.Millisecond), s.ItemsPerSecond, s.Parallelism)
}

// JSON renders the snapshot as indented JSON for tooling.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
