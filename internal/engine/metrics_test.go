package engine_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"cache8t/internal/engine"
)

// TestSnapshotAccounting runs a mixed batch and checks the counters
// partition cleanly: completed + failed == submitted, items sum the weights
// of successful jobs only.
func TestSnapshotAccounting(t *testing.T) {
	batch := []engine.Job[int]{
		{Label: "a", Weight: 100, Fn: func(context.Context) (int, error) { return 1, nil }},
		{Label: "b", Weight: 200, Fn: func(context.Context) (int, error) { return 2, nil }},
		{Label: "c", Weight: 400, Fn: func(context.Context) (int, error) { return 0, errors.New("x") }},
	}
	eng := engine.New[int](engine.Config{Workers: 2})
	if _, err := eng.Run(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	s := eng.Snapshot()
	if s.JobsSubmitted != 3 || s.JobsStarted != 3 || s.JobsCompleted != 2 || s.JobsFailed != 1 || s.JobsSkipped != 0 {
		t.Fatalf("snapshot counters off: %+v", s)
	}
	if s.Items != 300 {
		t.Fatalf("items = %d, want 300 (failed job's weight excluded)", s.Items)
	}
	if s.Wall <= 0 || s.Busy <= 0 {
		t.Fatalf("timers not recorded: %+v", s)
	}
	if !strings.Contains(s.String(), "2/3 jobs ok") {
		t.Fatalf("String() = %q", s.String())
	}
}

// TestSnapshotJSON checks the machine-readable export round-trips.
func TestSnapshotJSON(t *testing.T) {
	eng := engine.New[int](engine.Config{Workers: 1})
	_, err := eng.Run(context.Background(), []engine.Job[int]{
		{Label: "j", Weight: 42, Fn: func(context.Context) (int, error) { return 0, nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	js, err := eng.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back engine.Snapshot
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if back.JobsCompleted != 1 || back.Items != 42 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
}

// TestProgressCallback: OnProgress fires once per job with monotonically
// increasing Done and the full batch size in Total, in every pool mode.
func TestProgressCallback(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var events []engine.Progress
		cfg := engine.Config{
			Workers: workers,
			// Calls are serialized by the engine, so appending is safe.
			OnProgress: func(p engine.Progress) { events = append(events, p) },
		}
		batch := make([]engine.Job[int], 9)
		for i := range batch {
			batch[i] = engine.Job[int]{Fn: func(context.Context) (int, error) { return 0, nil }}
		}
		if _, err := engine.New[int](cfg).Run(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
		if len(events) != len(batch) {
			t.Fatalf("workers=%d: %d progress events for %d jobs", workers, len(events), len(batch))
		}
		for i, p := range events {
			if p.Done != i+1 || p.Total != len(batch) {
				t.Fatalf("workers=%d: event %d = %+v", workers, i, p)
			}
		}
	}
}
