package engine

import "fmt"

// JobError is the structured failure of one job: a returned error, a
// recovered panic (with stack), a timeout, or a post-cancellation skip. It
// wraps the underlying error for errors.Is/As.
type JobError struct {
	// Index and Label identify the job within its batch.
	Index int
	Label string
	// Err is the underlying cause.
	Err error
	// Panicked marks errors converted from a recovered panic; Stack then
	// holds the goroutine stack captured at recovery.
	Panicked bool
	Stack    []byte
	// Skipped marks jobs never started because the run was cancelled.
	Skipped bool
}

// Error implements error.
func (e *JobError) Error() string {
	name := e.Label
	if name == "" {
		name = fmt.Sprintf("#%d", e.Index)
	}
	switch {
	case e.Panicked:
		return fmt.Sprintf("engine: job %s panicked: %v", name, e.Err)
	case e.Skipped:
		return fmt.Sprintf("engine: job %s skipped: %v", name, e.Err)
	default:
		return fmt.Sprintf("engine: job %s: %v", name, e.Err)
	}
}

// Unwrap exposes the cause to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }
