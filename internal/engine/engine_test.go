package engine_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/engine"
	"cache8t/internal/stats"
	"cache8t/internal/workload"
)

// simJobs builds the real workload the determinism test replays: every
// controller kind over two cache shapes on one benchmark stream.
func simJobs(t *testing.T, n int) []engine.Job[core.Result] {
	t.Helper()
	prof, err := workload.ProfileByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	accs, err := workload.Take(prof, 7, n)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []engine.Job[core.Result]
	for _, shape := range []cache.Config{
		cache.DefaultConfig(),
		{SizeBytes: 8 * 1024, Ways: 2, BlockBytes: 32, Policy: cache.FIFO},
	} {
		jobs = append(jobs, core.Jobs(core.Kinds(), shape, core.Options{}, accs)...)
	}
	return jobs
}

// TestRunDeterminism is the subsystem's headline contract: a parallel run
// must be byte-identical to a serial run — same results in the same order,
// and therefore identical downstream stats aggregates.
func TestRunDeterminism(t *testing.T) {
	serialOuts, err := engine.New[core.Result](engine.Config{Workers: 1}).Run(context.Background(), simJobs(t, 20_000))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := engine.Values(serialOuts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		parOuts, err := engine.New[core.Result](engine.Config{Workers: workers}).Run(context.Background(), simJobs(t, 20_000))
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := engine.Values(parOuts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("workers=%d results differ from serial", workers)
		}
		// The aggregate a table would print must match exactly too.
		agg := func(rs []core.Result) []float64 {
			var reds []float64
			for _, r := range rs[1:] {
				reds = append(reds, stats.Reduction(r.ArrayAccesses(), rs[0].ArrayAccesses()))
			}
			return reds
		}
		if !reflect.DeepEqual(agg(serial), agg(parallel)) {
			t.Fatalf("workers=%d stats aggregates differ from serial", workers)
		}
	}
}

// TestRunAllMatchesEngine pins the satellite contract: core.RunAll (the
// serial path) and a many-worker RunAllContext agree result-for-result, in
// kind order.
func TestRunAllMatchesEngine(t *testing.T) {
	prof, err := workload.ProfileByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	accs, err := workload.Take(prof, 3, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cache.DefaultConfig()
	serial, err := core.RunAll(core.Kinds(), cfg, core.Options{}, accs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := core.RunAllContext(context.Background(), core.Kinds(), cfg, core.Options{}, accs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("RunAllContext(workers=8) differs from RunAll")
	}
	for i, k := range core.Kinds() {
		if parallel[i].Controller != k {
			t.Fatalf("kind order broken: got %v at %d, want %v", parallel[i].Controller, i, k)
		}
	}
}

// TestRunCancellation cancels mid-batch and checks Run returns promptly
// with partial, well-formed outcomes: completed jobs carry values, the rest
// are marked skipped with a structured error.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const jobs = 32
	var started atomic.Int32
	batch := make([]engine.Job[int], jobs)
	for i := range batch {
		i := i
		batch[i] = engine.Job[int]{
			Label: fmt.Sprintf("job%d", i),
			Fn: func(jctx context.Context) (int, error) {
				if started.Add(1) == 4 {
					cancel()
				}
				select {
				case <-jctx.Done():
					return 0, jctx.Err()
				case <-time.After(5 * time.Millisecond):
					return i, nil
				}
			},
		}
	}
	start := time.Now()
	outs, err := engine.New[int](engine.Config{Workers: 4}).Run(ctx, batch)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", wall)
	}
	if len(outs) != jobs {
		t.Fatalf("got %d outcomes, want %d", len(outs), jobs)
	}
	var done, skipped int
	for i, o := range outs {
		if o.Index != i {
			t.Fatalf("outcome %d has index %d", i, o.Index)
		}
		switch {
		case o.Skipped:
			skipped++
			var je *engine.JobError
			if !errors.As(o.Err, &je) || !je.Skipped {
				t.Fatalf("skipped outcome %d has error %v, want skipped JobError", i, o.Err)
			}
		case o.Err == nil:
			done++
			if o.Value != i {
				t.Fatalf("outcome %d has value %d", i, o.Value)
			}
		}
	}
	if skipped == 0 {
		t.Fatal("cancellation mid-batch skipped no jobs")
	}
	if done+skipped > jobs {
		t.Fatalf("done=%d skipped=%d exceed %d jobs", done, skipped, jobs)
	}
}

// TestPanicRecovery: one crashing job becomes a structured JobError with a
// stack; the rest of the batch completes and the process survives.
func TestPanicRecovery(t *testing.T) {
	batch := []engine.Job[string]{
		{Label: "ok-before", Fn: func(context.Context) (string, error) { return "a", nil }},
		{Label: "boom", Fn: func(context.Context) (string, error) { panic("simulated controller crash") }},
		{Label: "ok-after", Fn: func(context.Context) (string, error) { return "b", nil }},
	}
	for _, workers := range []int{1, 3} {
		eng := engine.New[string](engine.Config{Workers: workers})
		outs, err := eng.Run(context.Background(), batch)
		if err != nil {
			t.Fatal(err)
		}
		if outs[0].Err != nil || outs[2].Err != nil {
			t.Fatalf("workers=%d: healthy jobs failed: %v %v", workers, outs[0].Err, outs[2].Err)
		}
		var je *engine.JobError
		if !errors.As(outs[1].Err, &je) {
			t.Fatalf("workers=%d: panic produced %T, want *JobError", workers, outs[1].Err)
		}
		if !je.Panicked || len(je.Stack) == 0 {
			t.Fatalf("workers=%d: JobError missing panic details: %+v", workers, je)
		}
		if !strings.Contains(je.Error(), "simulated controller crash") {
			t.Fatalf("workers=%d: error text %q lacks panic value", workers, je.Error())
		}
		if s := eng.Snapshot(); s.JobsPanicked != 1 || s.JobsFailed != 1 || s.JobsCompleted != 2 {
			t.Fatalf("workers=%d: snapshot %+v, want 1 panic / 1 failed / 2 completed", workers, s)
		}
	}
}

// TestJobTimeout: a job exceeding Config.JobTimeout fails with a deadline
// error without disturbing its siblings.
func TestJobTimeout(t *testing.T) {
	batch := []engine.Job[bool]{
		{Label: "fast", Fn: func(context.Context) (bool, error) { return true, nil }},
		{Label: "slow", Fn: func(jctx context.Context) (bool, error) {
			<-jctx.Done()
			return false, jctx.Err()
		}},
	}
	outs, err := engine.New[bool](engine.Config{Workers: 2, JobTimeout: 20 * time.Millisecond}).Run(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err != nil || !outs[0].Value {
		t.Fatalf("fast job: %+v", outs[0])
	}
	if !errors.Is(outs[1].Err, context.DeadlineExceeded) {
		t.Fatalf("slow job error = %v, want deadline exceeded", outs[1].Err)
	}
}

// TestFailFast: with FailFast set, the first error stops dispatch; in
// serial mode every later job is skipped.
func TestFailFast(t *testing.T) {
	boom := errors.New("boom")
	batch := []engine.Job[int]{
		{Label: "ok", Fn: func(context.Context) (int, error) { return 1, nil }},
		{Label: "bad", Fn: func(context.Context) (int, error) { return 0, boom }},
		{Label: "never", Fn: func(context.Context) (int, error) { return 3, nil }},
	}
	outs, err := engine.New[int](engine.Config{Workers: 1, FailFast: true}).Run(context.Background(), batch)
	if err != nil {
		t.Fatalf("fail-fast is a normal completion, got %v", err)
	}
	if outs[0].Err != nil {
		t.Fatalf("first job failed: %v", outs[0].Err)
	}
	if !errors.Is(outs[1].Err, boom) {
		t.Fatalf("second job error = %v, want boom", outs[1].Err)
	}
	if !outs[2].Skipped {
		t.Fatalf("third job ran despite fail-fast: %+v", outs[2])
	}
}

// TestMapError: Map surfaces the first failing job's error in submission
// order, wrapped as a JobError naming the job.
func TestMapError(t *testing.T) {
	batch := []engine.Job[int]{
		{Label: "fine", Fn: func(context.Context) (int, error) { return 1, nil }},
		{Label: "broken", Fn: func(context.Context) (int, error) { return 0, errors.New("nope") }},
	}
	_, err := engine.Map(context.Background(), engine.Config{Workers: 2}, batch)
	var je *engine.JobError
	if !errors.As(err, &je) || je.Label != "broken" {
		t.Fatalf("Map error = %v, want JobError for %q", err, "broken")
	}
}

// TestWorkersClamp: the pool never exceeds the job count and never drops
// below one.
func TestWorkersClamp(t *testing.T) {
	e := engine.New[int](engine.Config{Workers: 64})
	if got := e.Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d with 64 configured, want 3", got)
	}
	e = engine.New[int](engine.Config{Workers: -5})
	if got := e.Workers(0); got != 1 {
		t.Fatalf("Workers(0) = %d, want 1", got)
	}
}
