package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Config tunes an Engine. The zero value is a sensible default: one worker
// per CPU (capped at the job count), no timeout, run everything.
type Config struct {
	// Workers bounds concurrent jobs. <= 0 means min(jobs, GOMAXPROCS).
	// Workers == 1 runs jobs serially on the calling goroutine — the serial
	// fallback path used by core.RunAll.
	Workers int
	// JobTimeout, when positive, bounds each job's wall time; an expired job
	// fails with a *JobError wrapping context.DeadlineExceeded.
	JobTimeout time.Duration
	// FailFast cancels the remaining jobs after the first job error. Jobs
	// already in flight still run to completion (or cancellation).
	FailFast bool
	// OnProgress, when non-nil, is invoked after every job finishes. Calls
	// are serialized; the callback must not block for long.
	OnProgress func(Progress)
}

// Job is one unit of independent work: a simulation, a stream
// materialization, a verification round.
type Job[T any] struct {
	// Label names the job in errors, progress lines, and metrics.
	Label string
	// Weight is the job's size in domain units (for the simulators:
	// accesses). It only feeds throughput metrics; zero is fine.
	Weight int64
	// Fn does the work. It must honor ctx for prompt cancellation and must
	// be safe to run concurrently with other jobs' Fn.
	Fn func(ctx context.Context) (T, error)
}

// Outcome is one job's result slot. Run returns outcomes indexed exactly
// like the submitted jobs, which is what makes parallel runs reproduce
// serial ones byte for byte.
type Outcome[T any] struct {
	// Index is the job's submission position.
	Index int
	// Label echoes Job.Label.
	Label string
	// Value is the job's return value; meaningful only when Err is nil.
	Value T
	// Err is nil on success, a *JobError on failure, panic, timeout, or
	// skip-after-cancellation.
	Err error
	// Wall is how long the job ran; zero for skipped jobs.
	Wall time.Duration
	// Skipped marks jobs never started because the run was cancelled.
	Skipped bool
}

// Progress is a point-in-time view handed to Config.OnProgress.
type Progress struct {
	// Done counts finished jobs (successes and failures), Failed the subset
	// that errored, Total the jobs submitted to this Run.
	Done, Failed, Total int
	// Index and Label identify the job that just finished.
	Index int
	Label string
	// Err is that job's error, if any.
	Err error
	// Elapsed is wall time since Run started.
	Elapsed time.Duration
}

// Engine executes batches of jobs under one Config, accumulating metrics
// across Run calls. An Engine is safe for use from multiple goroutines,
// though the usual shape is one Run per batch.
type Engine[T any] struct {
	cfg Config
	m   metrics
}

// New builds an Engine with the given configuration.
func New[T any](cfg Config) *Engine[T] {
	return &Engine[T]{cfg: cfg}
}

// Workers reports the pool size a batch of n jobs would use.
func (e *Engine[T]) Workers(n int) int {
	w := e.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes jobs and returns one Outcome per job, in submission order.
// The returned error is nil unless the parent context was cancelled (or its
// deadline passed), in which case it is that context's error and the
// outcomes still describe every job: finished ones normally, unstarted ones
// as skipped. Job-level failures never surface here — they live on the
// outcomes — so callers decide whether one bad job spoils the batch.
func (e *Engine[T]) Run(ctx context.Context, jobs []Job[T]) ([]Outcome[T], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	e.m.submitted.Add(int64(len(jobs)))

	outs := make([]Outcome[T], len(jobs))
	for i, j := range jobs {
		outs[i] = Outcome[T]{Index: i, Label: j.Label}
	}

	// FailFast needs a cancel handle of its own so a job error can stop
	// dispatch without the caller's context being touched.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		prog     progressState
		failFast = func() {}
	)
	prog.total = len(jobs)
	prog.start = start
	if e.cfg.FailFast {
		failFast = cancel
	}

	if e.Workers(len(jobs)) == 1 {
		// Serial fallback: same bookkeeping, no goroutines, deterministic
		// by construction.
		for i := range jobs {
			if runCtx.Err() != nil {
				e.skipFrom(outs, i, ctx)
				break
			}
			e.runJob(runCtx, jobs[i], &outs[i], &prog, failFast)
		}
	} else {
		e.runPool(runCtx, ctx, jobs, outs, &prog, failFast)
	}

	e.m.wallNanos.Add(int64(time.Since(start)))
	// Cancellation is reported from the caller's context, not runCtx: a
	// FailFast-triggered stop is a normal completion with failed outcomes.
	if err := ctx.Err(); err != nil {
		return outs, err
	}
	return outs, nil
}

// runPool fans jobs out to Workers goroutines via an index channel.
func (e *Engine[T]) runPool(runCtx, parent context.Context, jobs []Job[T], outs []Outcome[T], prog *progressState, failFast func()) {
	workers := e.Workers(len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				e.runJob(runCtx, jobs[i], &outs[i], prog, failFast)
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case idx <- i:
		case <-runCtx.Done():
			e.skipFrom(outs, i, parent)
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
}

// skipFrom marks outs[from:] as skipped after a cancellation. The recorded
// error prefers the parent context's cause so callers see "deadline
// exceeded" rather than a bare cancel.
func (e *Engine[T]) skipFrom(outs []Outcome[T], from int, parent context.Context) {
	cause := parent.Err()
	if cause == nil {
		cause = context.Canceled
	}
	for i := from; i < len(outs); i++ {
		outs[i].Skipped = true
		outs[i].Err = &JobError{Index: outs[i].Index, Label: outs[i].Label, Err: cause, Skipped: true}
		e.m.skipped.Add(1)
	}
}

// runJob executes one job with timeout, panic containment, and accounting.
func (e *Engine[T]) runJob(ctx context.Context, job Job[T], out *Outcome[T], prog *progressState, failFast func()) {
	jctx := ctx
	if e.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, e.cfg.JobTimeout)
		defer cancel()
	}
	e.m.started.Add(1)
	jobStart := time.Now()

	v, err := e.call(jctx, job)

	out.Wall = time.Since(jobStart)
	e.m.busyNanos.Add(int64(out.Wall))
	if err != nil {
		je, ok := err.(*JobError)
		if !ok {
			je = &JobError{Err: err}
		}
		je.Index, je.Label = out.Index, out.Label
		out.Err = je
		e.m.failed.Add(1)
		if je.Panicked {
			e.m.panicked.Add(1)
		}
		failFast()
	} else {
		out.Value = v
		e.m.completed.Add(1)
		e.m.items.Add(job.Weight)
	}
	prog.emit(e.cfg.OnProgress, out.Index, out.Label, out.Err)
}

// call invokes the job function, converting a panic into a *JobError so a
// crashed simulation cannot take down the process or the pool.
func (e *Engine[T]) call(ctx context.Context, job Job[T]) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &JobError{
				Err:      fmt.Errorf("panic: %v", r),
				Panicked: true,
				Stack:    debug.Stack(),
			}
		}
	}()
	return job.Fn(ctx)
}

// Snapshot returns the engine's cumulative counters.
func (e *Engine[T]) Snapshot() Snapshot {
	return e.m.snapshot()
}

// progressState serializes OnProgress callbacks and tracks batch counts.
type progressState struct {
	mu           sync.Mutex
	done, failed int
	total        int
	start        time.Time
}

func (p *progressState) emit(fn func(Progress), index int, label string, jobErr error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if jobErr != nil {
		p.failed++
	}
	if fn != nil {
		fn(Progress{
			Done: p.done, Failed: p.failed, Total: p.total,
			Index: index, Label: label, Err: jobErr,
			Elapsed: time.Since(p.start),
		})
	}
}

// Map is the convenience path for callers that want values, not outcomes:
// it runs jobs under a one-shot engine and unwraps the results, returning
// the first error (cancellation first, then job errors in submission order).
func Map[T any](ctx context.Context, cfg Config, jobs []Job[T]) ([]T, error) {
	outs, err := New[T](cfg).Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	return Values(outs)
}

// Values unwraps outcomes into their values, preserving submission order.
// It returns the first outcome error encountered, so a caller that needs
// all-or-nothing semantics gets it in one call.
func Values[T any](outs []Outcome[T]) ([]T, error) {
	vals := make([]T, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return nil, o.Err
		}
		vals[i] = o.Value
	}
	return vals, nil
}
