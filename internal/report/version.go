package report

import "fmt"

// Version is the one-line build identity every CLI prints for -version:
// tool name, git SHA (with -dirty suffix for modified trees), and the
// artifact schema version this build reads and writes — enough to trace any
// artifact or deployed daemon back to a commit.
func Version(tool string) string {
	return fmt.Sprintf("%s %s schema %d", tool, GitSHA(), SchemaVersion)
}
