package report

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"cache8t/internal/rng"
)

// TestCanonicalByteIdenticalAcrossMapOrder builds the same logical map with
// different insertion orders and checks the canonical bytes match: the
// property that makes goldens diffable with plain byte comparison.
func TestCanonicalByteIdenticalAcrossMapOrder(t *testing.T) {
	keys := []string{"zeta", "alpha", "mid", "beta", "omega", "kappa"}
	forward := map[string]float64{}
	for i, k := range keys {
		forward[k] = float64(i) * 1.25
	}
	backward := map[string]float64{}
	for i := len(keys) - 1; i >= 0; i-- {
		backward[keys[i]] = float64(i) * 1.25
	}
	a, err := Canonical(forward)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Canonical(backward)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical bytes differ across insertion order:\n%s\nvs\n%s", a, b)
	}
}

// TestCanonicalStableAcrossRuns encodes the same artifact many times; any
// byte difference means map iteration order leaked into the encoding.
func TestCanonicalStableAcrossRuns(t *testing.T) {
	art := testArtifact(rng.New(7))
	first, err := Encode(art)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		again, err := Encode(art)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("encode %d differs from first encode", i)
		}
	}
}

// TestCanonicalSortsNestedKeys checks deep maps sort at every level and the
// output ends with exactly one newline.
func TestCanonicalSortsNestedKeys(t *testing.T) {
	v := map[string]any{
		"b": map[string]any{"z": 1, "a": 2},
		"a": []any{map[string]any{"y": 1, "x": 2}},
	}
	got, err := Canonical(v)
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "a": [
    {
      "x": 2,
      "y": 1
    }
  ],
  "b": {
    "a": 2,
    "z": 1
  }
}
`
	if string(got) != want {
		t.Fatalf("canonical output:\n%q\nwant:\n%q", got, want)
	}
}

// TestCanonicalRejectsNaN pins the error path for unencodable floats.
func TestCanonicalRejectsNaN(t *testing.T) {
	if _, err := Canonical(map[string]float64{"x": math.NaN()}); err == nil {
		t.Fatal("canonical accepted NaN")
	}
	if _, err := Canonical(map[string]float64{"x": math.Inf(1)}); err == nil {
		t.Fatal("canonical accepted +Inf")
	}
}

// TestHashDeterministic pins that equal values hash identically and
// different values do not collide trivially.
func TestHashDeterministic(t *testing.T) {
	h1, err := Hash(map[string]string{"a": "1", "b": "2"})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Hash(map[string]string{"b": "2", "a": "1"})
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash differs for equal maps: %s vs %s", h1, h2)
	}
	h3, err := Hash(map[string]string{"a": "1", "b": "3"})
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h3 {
		t.Fatal("hash collision for different maps")
	}
}

// TestRoundTripProperty is the property test: randomized artifacts survive
// Encode → Decode with every field intact, and re-encoding the decoded
// artifact reproduces the bytes exactly (encoding is a fixed point).
func TestRoundTripProperty(t *testing.T) {
	r := rng.New(42)
	for i := 0; i < 200; i++ {
		art := testArtifact(r)
		b, err := Encode(art)
		if err != nil {
			t.Fatalf("iter %d: encode: %v", i, err)
		}
		back, err := Decode(b)
		if err != nil {
			t.Fatalf("iter %d: decode: %v\nartifact: %s", i, err, b)
		}
		if !reflect.DeepEqual(art, back) {
			t.Fatalf("iter %d: round trip mutated artifact:\nin:  %+v\nout: %+v", i, art, back)
		}
		again, err := Encode(back)
		if err != nil {
			t.Fatalf("iter %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(b, again) {
			t.Fatalf("iter %d: re-encode not a fixed point:\n%s\nvs\n%s", i, b, again)
		}
	}
}

// testArtifact draws a randomized but valid artifact: random key sets and
// values, including negative, tiny, huge, and integer-valued floats.
func testArtifact(r *rng.Xoshiro256) *Artifact {
	a := New("test", r.Uint64())
	a.GitSHA = fmt.Sprintf("%016x", r.Uint64())
	for i, n := 0, 1+r.Intn(8); i < n; i++ {
		a.SetConfig(fmt.Sprintf("key_%d", r.Intn(50)), r.Intn(1000))
	}
	for i, n := 0, 1+r.Intn(20); i < n; i++ {
		var v float64
		switch r.Intn(4) {
		case 0:
			v = float64(r.Intn(1_000_000))
		case 1:
			v = -r.Float64()
		case 2:
			v = r.Float64() * 1e-9
		default:
			v = r.Float64() * 1e12
		}
		a.SetMetric(fmt.Sprintf("metric_%d", r.Intn(100)), v)
	}
	if r.Bool(0.5) {
		counters := map[string]uint64{}
		for i, n := 0, 1+r.Intn(6); i < n; i++ {
			counters[fmt.Sprintf("c%d", r.Intn(20))] = r.Uint64() >> 12
		}
		a.Controllers = append(a.Controllers, ControllerLedger{
			Controller: fmt.Sprintf("ctrl%d", r.Intn(4)),
			Counters:   counters,
		})
	}
	a.WallMS = float64(r.Intn(100000)) / 16
	return a
}
