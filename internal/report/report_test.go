package report

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/rng"
	"cache8t/internal/workload"
)

func TestEncodeRejectsWrongSchema(t *testing.T) {
	a := New("test", 1)
	a.Schema = SchemaVersion + 1
	if _, err := Encode(a); err == nil {
		t.Fatal("encode accepted wrong schema version")
	}
	if _, err := Encode(nil); err == nil {
		t.Fatal("encode accepted nil artifact")
	}
}

func TestDecodeRejectsWrongSchema(t *testing.T) {
	a := New("test", 1)
	a.SetConfig("n", 10)
	b, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the schema field in the canonical bytes; the rest stays valid.
	tampered := bytes.Replace(b, []byte(`"schema": 1`), []byte(`"schema": 99`), 1)
	if bytes.Equal(tampered, b) {
		t.Fatal("test setup: schema field not found in encoding")
	}
	_, err = Decode(tampered)
	if err == nil {
		t.Fatal("decode accepted schema 99")
	}
	if !strings.Contains(err.Error(), "schema 99") {
		t.Fatalf("schema error should name the offending version, got: %v", err)
	}
}

func TestDecodeRejectsTamperedConfig(t *testing.T) {
	a := New("test", 1)
	a.SetConfig("n", 400000)
	b, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-edit a config value without refreshing the hash — the classic
	// "tweaked the golden by hand" mistake the hash exists to catch.
	tampered := bytes.Replace(b, []byte(`"n": "400000"`), []byte(`"n": "999999"`), 1)
	if bytes.Equal(tampered, b) {
		t.Fatal("test setup: config value not found in encoding")
	}
	_, err = Decode(tampered)
	if err == nil {
		t.Fatal("decode accepted artifact with stale config hash")
	}
	if !strings.Contains(err.Error(), "edited or corrupted") {
		t.Fatalf("hash error should explain the artifact was edited, got: %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not json")); err == nil {
		t.Fatal("decode accepted non-JSON input")
	}
}

func TestWriteReadFileRoundTrip(t *testing.T) {
	a := New("test", 9)
	a.SetConfig("shape", "32KB/4w/64B")
	a.SetMetric("miss_rate", 0.0325)
	path := filepath.Join(t.TempDir(), "nested", "dir", "artifact.json")
	if err := WriteFile(path, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tool != "test" || back.Seed != 9 || back.Metrics["miss_rate"] != 0.0325 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("ReadFile succeeded on a missing path")
	}
}

// TestLedgerMatchesResult runs a real controller and checks the flattened
// ledger agrees with the Result it came from.
func TestLedgerMatchesResult(t *testing.T) {
	gen, err := workload.Stream("lbm", 1)
	if err != nil {
		t.Fatal(err)
	}
	shape := cache.Config{SizeBytes: 32 * 1024, Ways: 4, BlockBytes: 64}
	res, err := core.Run(core.WG, shape, core.Options{}, gen, 5000)
	if err != nil {
		t.Fatal(err)
	}
	l := Ledger(res)
	if l.Controller != core.WG.String() {
		t.Fatalf("controller name %q, want %q", l.Controller, core.WG.String())
	}
	if l.Counters["array_reads"] != res.ArrayReads {
		t.Fatalf("array_reads %d, want %d", l.Counters["array_reads"], res.ArrayReads)
	}
	if l.Counters["array_writes"] != res.ArrayWrites {
		t.Fatalf("array_writes %d, want %d", l.Counters["array_writes"], res.ArrayWrites)
	}
	if l.Counters["cache_read_hits"] != res.Cache.ReadHits {
		t.Fatalf("cache_read_hits %d, want %d", l.Counters["cache_read_hits"], res.Cache.ReadHits)
	}
	for i, n := range res.Counters.GroupSizes {
		key := "group_size_bucket_" + string(rune('0'+i))
		if l.Counters[key] != n {
			t.Fatalf("%s = %d, want %d", key, l.Counters[key], n)
		}
	}
}

// TestEncodeDeterministicWithControllers pins that a full artifact — ledgers
// included — encodes byte-identically on repeat, which is what lets goldens
// be compared with git diff.
func TestEncodeDeterministicWithControllers(t *testing.T) {
	r := rng.New(3)
	a := testArtifact(r)
	gen, err := workload.Stream("mcf", 1)
	if err != nil {
		t.Fatal(err)
	}
	shape := cache.Config{SizeBytes: 32 * 1024, Ways: 4, BlockBytes: 64}
	res, err := core.Run(core.Conventional, shape, core.Options{}, gen, 2000)
	if err != nil {
		t.Fatal(err)
	}
	a.AddController(res)
	first, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("artifact with controller ledger not byte-stable")
	}
}
