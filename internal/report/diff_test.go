package report

import (
	"strings"
	"testing"
)

func TestToleranceWithin(t *testing.T) {
	cases := []struct {
		name        string
		tol         Tolerance
		golden, got float64
		want        bool
	}{
		{"exact equal", Tolerance{}, 1.5, 1.5, true},
		{"exact unequal", Tolerance{}, 1.5, 1.5000001, false},
		{"abs inside", Tolerance{Abs: 0.01}, 1.0, 1.009, true},
		{"abs outside", Tolerance{Abs: 0.01}, 1.0, 1.011, false},
		{"rel inside", Tolerance{Rel: 0.05}, 100, 104, true},
		{"rel outside", Tolerance{Rel: 0.05}, 100, 106, false},
		{"rel with negative golden", Tolerance{Rel: 0.05}, -100, -104, true},
		{"abs rescues rel at zero golden", Tolerance{Abs: 0.001, Rel: 0.05}, 0, 0.0005, true},
		{"rel useless at zero golden", Tolerance{Rel: 0.05}, 0, 0.0005, false},
	}
	for _, c := range cases {
		if got := c.tol.Within(c.golden, c.got); got != c.want {
			t.Errorf("%s: Within(%g, %g) = %v, want %v", c.name, c.golden, c.got, got, c.want)
		}
	}
}

func TestBandsLongestPrefix(t *testing.T) {
	b := Bands{
		"":           {Abs: 1},
		"mean.":      {Abs: 0.1},
		"mean.wgrb.": {Abs: 0.01},
	}
	cases := []struct {
		name string
		want float64
	}{
		{"other_metric", 1},     // default band
		{"mean.wg", 0.1},        // "mean." prefix
		{"mean.wgrb.low", 0.01}, // longest prefix wins
		{"meanwhile", 1},        // "mean" is not a prefix entry; falls to default
	}
	for _, c := range cases {
		if got := b.For(c.name).Abs; got != c.want {
			t.Errorf("For(%q).Abs = %g, want %g", c.name, got, c.want)
		}
	}
	// No bands at all → zero tolerance (exact compare).
	if tol := (Bands{}).For("anything"); tol.Abs != 0 || tol.Rel != 0 {
		t.Errorf("empty Bands.For = %+v, want zero", tol)
	}
}

func diffArtifacts(mutate func(golden, got *Artifact), bands Bands) *Diff {
	golden := New("test", 1)
	golden.SetConfig("n", 100)
	got := New("test", 1)
	got.SetConfig("n", 100)
	mutate(golden, got)
	return Compare(golden, got, bands)
}

func TestCompareCleanPass(t *testing.T) {
	d := diffArtifacts(func(golden, got *Artifact) {
		golden.SetMetric("x", 1.0)
		got.SetMetric("x", 1.0004)
	}, Bands{"": {Abs: 0.001}})
	if !d.OK() {
		t.Fatalf("in-band diff not OK: %+v", d.Failures())
	}
}

func TestCompareDrift(t *testing.T) {
	d := diffArtifacts(func(golden, got *Artifact) {
		golden.SetMetric("x", 1.0)
		got.SetMetric("x", 1.5)
	}, Bands{"": {Abs: 0.001}})
	if d.OK() {
		t.Fatal("out-of-band diff reported OK")
	}
	f := d.Failures()
	if len(f) != 1 || f[0].Name != "x" {
		t.Fatalf("failures = %+v, want single drift on x", f)
	}
}

func TestCompareMissingAndExtraMetrics(t *testing.T) {
	d := diffArtifacts(func(golden, got *Artifact) {
		golden.SetMetric("only_golden", 1)
		got.SetMetric("only_got", 2)
	}, Bands{"": {Abs: 100}}) // generous band: missing must fail regardless
	if d.OK() {
		t.Fatal("one-sided metrics reported OK")
	}
	byName := map[string]MetricDiff{}
	for _, m := range d.Metrics {
		byName[m.Name] = m
	}
	if !byName["only_golden"].MissingGot {
		t.Fatalf("only_golden should be MissingGot: %+v", byName["only_golden"])
	}
	if !byName["only_got"].MissingGolden {
		t.Fatalf("only_got should be MissingGolden: %+v", byName["only_got"])
	}
}

func TestCompareConfigMismatch(t *testing.T) {
	d := diffArtifacts(func(golden, got *Artifact) {
		got.SetConfig("n", 999) // differs from golden's 100
		got.SetConfig("extra", true)
	}, nil)
	if d.OK() {
		t.Fatal("config mismatch reported OK")
	}
	want := []string{"extra", "n"}
	if len(d.ConfigMismatch) != len(want) {
		t.Fatalf("ConfigMismatch = %v, want %v", d.ConfigMismatch, want)
	}
	for i, k := range want {
		if d.ConfigMismatch[i] != k {
			t.Fatalf("ConfigMismatch = %v, want %v", d.ConfigMismatch, want)
		}
	}
}

func TestCompareLedgerCountersExact(t *testing.T) {
	d := diffArtifacts(func(golden, got *Artifact) {
		golden.Controllers = []ControllerLedger{{
			Controller: "WG",
			Counters:   map[string]uint64{"array_writes": 100, "tag_hits": 50},
		}}
		got.Controllers = []ControllerLedger{{
			Controller: "WG",
			Counters:   map[string]uint64{"array_writes": 101, "tag_hits": 50},
		}}
	}, Bands{"": {Abs: 1000}}) // scalar bands must not leak into counters
	f := d.Failures()
	if len(f) != 1 || f[0].Name != "counter.WG.array_writes" {
		t.Fatalf("failures = %+v, want exactly counter.WG.array_writes", f)
	}
	if f[0].Tol != (Tolerance{}) {
		t.Fatalf("counter compared with non-exact tolerance %+v", f[0].Tol)
	}
}

func TestDiffTableShowsDrift(t *testing.T) {
	d := diffArtifacts(func(golden, got *Artifact) {
		golden.SetMetric("good", 1)
		got.SetMetric("good", 1)
		golden.SetMetric("bad", 1)
		got.SetMetric("bad", 2)
	}, nil)
	var sb strings.Builder
	if err := d.Table("drift check", false).Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "DRIFT") || !strings.Contains(out, "bad") {
		t.Fatalf("table missing drift row:\n%s", out)
	}
	if strings.Contains(out, "\n| good") {
		t.Fatalf("non-full table should hide passing rows:\n%s", out)
	}
	// Full mode shows the passing row too.
	sb.Reset()
	if err := d.Table("drift check", true).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "good") {
		t.Fatalf("full table missing passing row:\n%s", sb.String())
	}
}
