package report

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// Canonical renders v as canonical JSON: object keys sorted, two-space
// indentation, a trailing newline, and number literals preserved exactly as
// encoding/json produces them. Two calls on equal values yield byte-identical
// output regardless of map iteration order, which is what makes golden
// artifacts diffable with plain byte comparison and git.
//
// v is first round-tripped through encoding/json, so anything marshalable is
// accepted; NaN and infinities are rejected there with the usual
// UnsupportedValueError.
func Canonical(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("report: canonical: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, fmt.Errorf("report: canonical: %w", err)
	}
	var b bytes.Buffer
	if err := writeCanonical(&b, tree, 0); err != nil {
		return nil, err
	}
	b.WriteByte('\n')
	return b.Bytes(), nil
}

// Hash returns the hex sha256 of v's canonical encoding — the content
// address used for config/workload hashes.
func Hash(v any) (string, error) {
	b, err := Canonical(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// writeCanonical emits one JSON value. The tree comes from a json.Decoder
// with UseNumber, so the only container types are map[string]any and []any,
// and numbers arrive as json.Number literals that are written back verbatim.
func writeCanonical(b *bytes.Buffer, v any, depth int) error {
	switch t := v.(type) {
	case nil:
		b.WriteString("null")
	case bool:
		if t {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case json.Number:
		b.WriteString(t.String())
	case string:
		esc, err := json.Marshal(t)
		if err != nil {
			return fmt.Errorf("report: canonical: %w", err)
		}
		b.Write(esc)
	case []any:
		if len(t) == 0 {
			b.WriteString("[]")
			return nil
		}
		b.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				b.WriteByte(',')
			}
			newline(b, depth+1)
			if err := writeCanonical(b, e, depth+1); err != nil {
				return err
			}
		}
		newline(b, depth)
		b.WriteByte(']')
	case map[string]any:
		if len(t) == 0 {
			b.WriteString("{}")
			return nil
		}
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			newline(b, depth+1)
			esc, err := json.Marshal(k)
			if err != nil {
				return fmt.Errorf("report: canonical: %w", err)
			}
			b.Write(esc)
			b.WriteString(": ")
			if err := writeCanonical(b, t[k], depth+1); err != nil {
				return err
			}
		}
		newline(b, depth)
		b.WriteByte('}')
	default:
		return fmt.Errorf("report: canonical: unexpected decoded type %T", v)
	}
	return nil
}

func newline(b *bytes.Buffer, depth int) {
	b.WriteByte('\n')
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}
