// Package report is the run-artifact layer: every simulation command can
// emit a schema-versioned, canonically-encoded JSON description of what it
// ran (tool, git SHA, seed, hashed configuration) and what it measured
// (per-controller ledger counters, named scalar metrics, the engine's
// throughput snapshot, wall-clock). Artifacts are the currency of the
// regression harness: cmd/regress re-runs the paper's experiment matrix and
// diffs fresh artifacts against checked-in goldens with per-metric tolerance
// bands (see Compare), so "tests pass" also means "the paper's numbers still
// hold".
package report

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync"

	"cache8t/internal/core"
	"cache8t/internal/engine"
)

// SchemaVersion is the artifact schema this build reads and writes. Decode
// rejects any other version: goldens must be regenerated, not reinterpreted,
// when the schema moves.
const SchemaVersion = 1

// Artifact is one run's machine-readable record.
type Artifact struct {
	// Schema pins the encoding; see SchemaVersion.
	Schema int `json:"schema"`
	// Tool names the producing command ("sramsim", "regress", ...).
	Tool string `json:"tool"`
	// GitSHA is the vcs revision baked into the binary, "unknown" outside a
	// stamped build. Metadata only — never compared.
	GitSHA string `json:"git_sha"`
	// Seed is the master seed the run derived its randomness from.
	Seed uint64 `json:"seed"`
	// Config records the knobs that shaped the run (cache geometry, stream
	// lengths, controller options) as strings; ConfigHash is the sha256 of
	// Config's canonical encoding, stamped by Encode and verified by Decode.
	Config     map[string]string `json:"config"`
	ConfigHash string            `json:"config_hash"`
	// Controllers holds one flattened event ledger per simulated controller.
	Controllers []ControllerLedger `json:"controllers,omitempty"`
	// Metrics are the run's named scalar results — the values the regression
	// harness bands tolerances around.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Engine is the execution-engine snapshot, when the run fanned out.
	// Wall/busy times vary run to run, so compares ignore it.
	Engine *engine.Snapshot `json:"engine,omitempty"`
	// WallMS is the run's wall-clock in milliseconds. Metadata only.
	WallMS float64 `json:"wall_ms"`
}

// ControllerLedger is one controller's event counts, flattened to a sorted-
// key-friendly map so canonical encoding and exact diffing need no schema
// knowledge of individual counters.
type ControllerLedger struct {
	Controller string            `json:"controller"`
	Counters   map[string]uint64 `json:"counters"`
}

// New starts an artifact for a tool run: schema and git SHA stamped, maps
// ready to fill.
func New(tool string, seed uint64) *Artifact {
	return &Artifact{
		Schema:  SchemaVersion,
		Tool:    tool,
		GitSHA:  GitSHA(),
		Seed:    seed,
		Config:  map[string]string{},
		Metrics: map[string]float64{},
	}
}

// SetConfig records one configuration knob, formatting v with fmt.Sprint.
func (a *Artifact) SetConfig(key string, v any) {
	if a.Config == nil {
		a.Config = map[string]string{}
	}
	a.Config[key] = fmt.Sprint(v)
}

// SetMetric records one named scalar result.
func (a *Artifact) SetMetric(name string, v float64) {
	if a.Metrics == nil {
		a.Metrics = map[string]float64{}
	}
	a.Metrics[name] = v
}

// AddController appends res's full event ledger.
func (a *Artifact) AddController(res core.Result) {
	a.Controllers = append(a.Controllers, Ledger(res))
}

// Ledger flattens a controller run into its named counters: demand traffic,
// array traffic, Set-Buffer activity, group-size histogram, and functional
// cache events.
func Ledger(res core.Result) ControllerLedger {
	c := res.Counters
	counters := map[string]uint64{
		"array_reads":        res.ArrayReads,
		"array_writes":       res.ArrayWrites,
		"demand_reads":       c.DemandReads,
		"demand_writes":      c.DemandWrites,
		"instructions":       res.Requests.Instructions,
		"tag_probes":         c.TagProbes,
		"tag_hits":           c.TagHits,
		"grouped_writes":     c.GroupedWrites,
		"silent_writes":      c.SilentWrites,
		"silent_elided_wbs":  c.SilentElidedWBs,
		"premature_wbs":      c.PrematureWBs,
		"bypassed_reads":     c.BypassedReads,
		"buffer_fills":       c.BufferFills,
		"buffer_writebacks":  c.BufferWritebacks,
		"cache_read_hits":    res.Cache.ReadHits,
		"cache_read_misses":  res.Cache.ReadMisses,
		"cache_write_hits":   res.Cache.WriteHits,
		"cache_write_misses": res.Cache.WriteMisses,
		"cache_fills":        res.Cache.Fills,
		"cache_evictions":    res.Cache.Evictions,
		"cache_writebacks":   res.Cache.Writebacks,
	}
	for i, n := range c.GroupSizes {
		counters[fmt.Sprintf("group_size_bucket_%d", i)] = n
	}
	return ControllerLedger{Controller: res.Controller.String(), Counters: counters}
}

// Encode validates a, stamps its ConfigHash, and returns the canonical
// bytes.
func Encode(a *Artifact) ([]byte, error) {
	if a == nil {
		return nil, fmt.Errorf("report: nil artifact")
	}
	if a.Schema != SchemaVersion {
		return nil, fmt.Errorf("report: artifact schema %d, this build writes %d", a.Schema, SchemaVersion)
	}
	hash, err := Hash(a.Config)
	if err != nil {
		return nil, err
	}
	a.ConfigHash = hash
	return Canonical(a)
}

// Decode parses canonical artifact bytes, rejecting unsupported schema
// versions and artifacts whose config no longer matches its hash (a
// hand-edited or corrupted golden).
func Decode(b []byte) (*Artifact, error) {
	var probe struct {
		Schema int `json:"schema"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	if probe.Schema != SchemaVersion {
		return nil, fmt.Errorf("report: artifact schema %d unsupported (this build reads %d); regenerate the artifact",
			probe.Schema, SchemaVersion)
	}
	var a Artifact
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	hash, err := Hash(a.Config)
	if err != nil {
		return nil, err
	}
	if a.ConfigHash != hash {
		return nil, fmt.Errorf("report: decode: config hash %.12s does not match config (want %.12s); artifact edited or corrupted",
			a.ConfigHash, hash)
	}
	return &a, nil
}

// WriteFile encodes a canonically and writes it at path (parent directories
// created as needed).
func WriteFile(path string, a *Artifact) error {
	b, err := Encode(a)
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

// ReadFile loads and validates an artifact from path.
func ReadFile(path string) (*Artifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	a, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// GitSHA returns the revision of the working tree, with a "-dirty" suffix
// for modified trees. It asks git directly first — `go run` and `go test`
// binaries carry no stamped vcs build info, which used to leave every
// locally appended bench ledger entry attributed to "unknown" — and falls
// back to debug.ReadBuildInfo for stamped binaries running outside a
// checkout. "unknown" only when both fail. The lookup execs at most once
// per process.
func GitSHA() string {
	gitSHAOnce.Do(func() {
		if sha := gitRevParseSHA(); sha != "" {
			gitSHA = sha
		} else if sha := buildInfoSHA(); sha != "" {
			gitSHA = sha
		} else {
			gitSHA = "unknown"
		}
	})
	return gitSHA
}

var (
	gitSHAOnce sync.Once
	gitSHA     string
)

// gitRevParseSHA reads HEAD from the ambient git checkout ("" on any
// failure: no git binary, not a repository).
func gitRevParseSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	sha := strings.TrimSpace(string(out))
	if sha == "" {
		return ""
	}
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(strings.TrimSpace(string(st))) > 0 {
		sha += "-dirty"
	}
	return sha
}

// buildInfoSHA reads the vcs revision stamped into the binary ("" when the
// build carries none — tests, go run from a non-vcs dir).
func buildInfoSHA() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	sha, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			sha = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if sha == "" {
		return ""
	}
	if dirty {
		return sha + "-dirty"
	}
	return sha
}
