package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cache8t/internal/stats"
)

// Tolerance is a per-metric acceptance band: a measured value passes when it
// is within Abs of the golden value OR within Rel (a fraction of the golden
// magnitude). Counters compare exactly with the zero Tolerance.
type Tolerance struct {
	Abs float64
	Rel float64
}

// String renders like "abs 0.005 | rel 1.0%".
func (t Tolerance) String() string {
	if t.Abs == 0 && t.Rel == 0 {
		return "exact"
	}
	return fmt.Sprintf("abs %g | rel %g%%", t.Abs, t.Rel*100)
}

// Within reports whether got is acceptable against golden under t.
func (t Tolerance) Within(golden, got float64) bool {
	d := math.Abs(got - golden)
	if d <= t.Abs {
		return true
	}
	return d <= t.Rel*math.Abs(golden)
}

// Bands maps metric names to their tolerance. Longest-prefix matching lets
// one entry like "fig9." cover a whole metric family; the empty key, when
// present, is the default band.
type Bands map[string]Tolerance

// For resolves the band for a metric name: exact match first, then the
// longest prefix entry, then the zero (exact-compare) tolerance.
func (b Bands) For(name string) Tolerance {
	if t, ok := b[name]; ok {
		return t
	}
	best, bestLen := Tolerance{}, -1
	for prefix, t := range b {
		if strings.HasPrefix(name, prefix) && len(prefix) > bestLen {
			best, bestLen = t, len(prefix)
		}
	}
	if bestLen >= 0 {
		return best
	}
	return Tolerance{}
}

// MetricDiff is one compared value.
type MetricDiff struct {
	Name        string
	Golden, Got float64
	Tol         Tolerance
	// OK is true when Got is within Tol of Golden and the metric exists on
	// both sides.
	OK bool
	// MissingGot / MissingGolden flag metrics present on only one side —
	// always failures, because a silently dropped metric is drift too.
	MissingGot    bool
	MissingGolden bool
}

// Delta returns got - golden.
func (m MetricDiff) Delta() float64 { return m.Got - m.Golden }

// RelDelta returns the delta as a fraction of the golden magnitude (0 when
// the golden is 0).
func (m MetricDiff) RelDelta() float64 {
	if m.Golden == 0 {
		return 0
	}
	return m.Delta() / math.Abs(m.Golden)
}

// Diff is the outcome of comparing a fresh artifact against a golden.
type Diff struct {
	// Metrics holds every compared value in sorted name order, scalar
	// metrics first, then per-controller counters under
	// "counter.<controller>.<name>".
	Metrics []MetricDiff
	// ConfigMismatch lists config keys whose values differ — a failed run
	// comparability check, reported before any metric is judged.
	ConfigMismatch []string
}

// Compare diffs got against golden. Scalar metrics are judged under bands;
// controller ledger counters compare exactly. Config differences (other than
// hash, which Encode recomputes) are surfaced as ConfigMismatch.
func Compare(golden, got *Artifact, bands Bands) *Diff {
	d := &Diff{}
	keys := map[string]bool{}
	for k := range golden.Config {
		keys[k] = true
	}
	for k := range got.Config {
		keys[k] = true
	}
	for k := range keys {
		if golden.Config[k] != got.Config[k] {
			d.ConfigMismatch = append(d.ConfigMismatch, k)
		}
	}
	sort.Strings(d.ConfigMismatch)

	d.Metrics = append(d.Metrics, compareMaps(golden.Metrics, got.Metrics, "", bands)...)
	d.Metrics = append(d.Metrics, compareLedgers(golden.Controllers, got.Controllers)...)
	return d
}

// compareMaps diffs two metric maps under bands, prefixing names.
func compareMaps(golden, got map[string]float64, prefix string, bands Bands) []MetricDiff {
	names := map[string]bool{}
	for n := range golden {
		names[n] = true
	}
	for n := range got {
		names[n] = true
	}
	out := make([]MetricDiff, 0, len(names))
	for n := range names {
		full := prefix + n
		m := MetricDiff{Name: full, Tol: bands.For(full)}
		gv, inGolden := golden[n]
		mv, inGot := got[n]
		m.Golden, m.Got = gv, mv
		switch {
		case !inGot:
			m.MissingGot = true
		case !inGolden:
			m.MissingGolden = true
		default:
			m.OK = m.Tol.Within(gv, mv)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// compareLedgers exact-compares per-controller counters, keyed by controller
// name so ordering differences don't matter.
func compareLedgers(golden, got []ControllerLedger) []MetricDiff {
	toMap := func(ls []ControllerLedger) map[string]map[string]uint64 {
		m := map[string]map[string]uint64{}
		for _, l := range ls {
			m[l.Controller] = l.Counters
		}
		return m
	}
	gm, tm := toMap(golden), toMap(got)
	names := map[string]bool{}
	for n := range gm {
		names[n] = true
	}
	for n := range tm {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	var out []MetricDiff
	for _, ctrl := range sorted {
		gf := map[string]float64{}
		for k, v := range gm[ctrl] {
			gf[k] = float64(v)
		}
		tf := map[string]float64{}
		for k, v := range tm[ctrl] {
			tf[k] = float64(v)
		}
		// Sides missing the controller entirely produce all-missing rows.
		out = append(out, compareMaps(gf, tf, "counter."+ctrl+".", Bands{})...)
	}
	return out
}

// OK reports whether nothing drifted: configs comparable and every metric in
// band.
func (d *Diff) OK() bool {
	if len(d.ConfigMismatch) > 0 {
		return false
	}
	for _, m := range d.Metrics {
		if !m.OK {
			return false
		}
	}
	return true
}

// Failures returns the out-of-band metrics.
func (d *Diff) Failures() []MetricDiff {
	var out []MetricDiff
	for _, m := range d.Metrics {
		if !m.OK {
			out = append(out, m)
		}
	}
	return out
}

// Table renders the diff as a readable per-metric table. When full is false,
// only failing rows appear (plus a summary row), which is the CI-friendly
// shape: silence on green, a focused table on drift.
func (d *Diff) Table(title string, full bool) *stats.Table {
	t := stats.NewTable(title, "metric", "golden", "measured", "delta", "rel", "tolerance", "status")
	for _, key := range d.ConfigMismatch {
		t.AddRow("config:"+key, "", "", "", "", "", "MISMATCH")
	}
	shown, failed := 0, 0
	for _, m := range d.Metrics {
		if !m.OK {
			failed++
		}
		if m.OK && !full {
			continue
		}
		status := "ok"
		switch {
		case m.MissingGot:
			status = "MISSING (not measured)"
		case m.MissingGolden:
			status = "EXTRA (no golden)"
		case !m.OK:
			status = "DRIFT"
		}
		t.AddRow(m.Name,
			fmtVal(m.Golden, !m.MissingGolden),
			fmtVal(m.Got, !m.MissingGot),
			fmt.Sprintf("%+.6g", m.Delta()),
			fmt.Sprintf("%+.3f%%", m.RelDelta()*100),
			m.Tol.String(),
			status)
		shown++
	}
	t.AddRow(fmt.Sprintf("[%d/%d metrics shown]", shown, len(d.Metrics)),
		"", "", "", "", "", fmt.Sprintf("%d failed", failed))
	return t
}

func fmtVal(v float64, present bool) string {
	if !present {
		return "-"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.6g", v)
}
