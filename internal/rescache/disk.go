package rescache

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Disk layout under the CAS root:
//
//	format              — layout/format tag; mismatch clears the cache
//	blobs/sha256/<hex>  — blob bytes, named by their own sha256
//	keys/sha256/<hex>   — key links: "sha256:<blob digest>\n" per cache key
//	atime.log           — access journal: "<unixnano> <blob digest>\n"
//
// Blobs are content-addressed, so a read can re-verify integrity by
// re-hashing the bytes against the filename — a flipped bit is detected,
// the blob and its key links evicted, and the caller recomputes. Several
// keys may link to one blob (dedup for identical artifacts). Writes are
// crash-safe: temp file in the target directory, write, fsync, rename,
// fsync the directory; a crash leaves either the old state or the new
// state, never a torn blob, and leftover tmp-* files are swept at Open.
//
// Eviction is LRU by the atime journal: every Get appends an access
// record; when resident bytes exceed the cap, the coldest blobs (and any
// key links pointing at them) are removed until under cap. The journal is
// compacted — rewritten as one record per live blob — when it grows past
// compactLogFactor times the blob count, and on Close.

const (
	blobPrefix = "sha256:"
	// compactLogFactor bounds journal growth: compact when the journal holds
	// more than this many records per live blob.
	compactLogFactor = 8
)

// Disk is the persistent CAS tier. All methods are safe for concurrent
// use; a single mutex serializes metadata (the size and atime maps and the
// journal), which is fine because blob I/O is small compared to the
// simulations being memoized.
type Disk struct {
	root   string
	cap    int64
	format string

	mu     sync.Mutex
	sizes  map[string]int64 // live blobs: digest → byte size
	atimes map[string]int64 // digest → last access (unix nanos, logical clock)
	clock  int64            // monotonic logical time for atime ordering
	logF   *os.File         // open atime journal, append mode
	logN   int              // records written since last compaction

	evictions uint64
	corrupt   uint64
}

// OpenDisk attaches to (or initializes) the CAS rooted at dir. A directory
// written under a different format tag is cleared; a non-empty directory
// that is not a CAS at all (no format file, but has other content) is
// refused rather than clobbered.
func OpenDisk(dir string, capBytes int64, format string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rescache: create cache dir: %w", err)
	}
	fPath := filepath.Join(dir, "format")
	have, err := os.ReadFile(fPath)
	switch {
	case err == nil:
		if strings.TrimSpace(string(have)) != format {
			if err := clearCAS(dir); err != nil {
				return nil, err
			}
			if err := writeFileAtomic(fPath, []byte(format+"\n")); err != nil {
				return nil, err
			}
		}
	case os.IsNotExist(err):
		entries, rerr := os.ReadDir(dir)
		if rerr != nil {
			return nil, fmt.Errorf("rescache: read cache dir: %w", rerr)
		}
		if len(entries) > 0 {
			return nil, fmt.Errorf("rescache: %s is non-empty and has no format file; refusing to use it as a cache dir", dir)
		}
		if err := writeFileAtomic(fPath, []byte(format+"\n")); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("rescache: read format file: %w", err)
	}
	for _, sub := range []string{filepath.Join("blobs", "sha256"), filepath.Join("keys", "sha256")} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("rescache: create %s: %w", sub, err)
		}
	}

	d := &Disk{
		root:   dir,
		cap:    capBytes,
		format: format,
		sizes:  map[string]int64{},
		atimes: map[string]int64{},
	}
	if err := d.scan(); err != nil {
		return nil, err
	}
	if err := d.replayJournal(); err != nil {
		return nil, err
	}
	logF, err := os.OpenFile(d.logPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("rescache: open atime journal: %w", err)
	}
	d.logF = logF
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.logN > compactLogFactor*(len(d.sizes)+1) {
		d.compactLocked()
	}
	d.sweepLocked()
	return d, nil
}

// clearCAS removes the cache-owned entries under dir, leaving the
// directory itself (the caller may not own it).
func clearCAS(dir string) error {
	for _, name := range []string{"blobs", "keys", "atime.log", "format"} {
		if err := os.RemoveAll(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("rescache: clear stale cache: %w", err)
		}
	}
	return nil
}

// scan inventories live blobs, sweeps crashed temp files, and drops key
// links whose blob no longer exists.
func (d *Disk) scan() error {
	blobDir := d.blobDir()
	entries, err := os.ReadDir(blobDir)
	if err != nil {
		return fmt.Errorf("rescache: scan blobs: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "tmp-") {
			os.Remove(filepath.Join(blobDir, name))
			continue
		}
		if !isHexDigest(name) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		d.sizes[name] = info.Size()
		d.atimes[name] = 0 // journal replay refines this
	}
	keyDir := d.keyDir()
	kents, err := os.ReadDir(keyDir)
	if err != nil {
		return fmt.Errorf("rescache: scan keys: %w", err)
	}
	for _, e := range kents {
		name := e.Name()
		path := filepath.Join(keyDir, name)
		if strings.HasPrefix(name, "tmp-") {
			os.Remove(path)
			continue
		}
		digest, ok := d.readLink(path)
		if !ok {
			os.Remove(path)
			continue
		}
		if _, live := d.sizes[digest]; !live {
			os.Remove(path)
		}
	}
	return nil
}

// replayJournal restores blob recency from the atime log. Records for dead
// blobs are skipped; malformed lines are ignored (the journal is advisory
// — losing it only degrades eviction ordering, never correctness).
func (d *Disk) replayJournal() error {
	f, err := os.Open(d.logPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("rescache: open atime journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		d.logN++
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			continue
		}
		ts, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			continue
		}
		if _, live := d.sizes[fields[1]]; live {
			d.atimes[fields[1]] = ts
			if ts > d.clock {
				d.clock = ts
			}
		}
	}
	return nil // scanner errors degrade to partial replay, same as truncation
}

func (d *Disk) blobDir() string { return filepath.Join(d.root, "blobs", "sha256") }
func (d *Disk) keyDir() string  { return filepath.Join(d.root, "keys", "sha256") }
func (d *Disk) logPath() string { return filepath.Join(d.root, "atime.log") }

// normKey maps an arbitrary cache key onto a fixed-width hex filename. The
// server's config hashes are already 64-hex sha256 strings and pass
// through unchanged, so CAS key files line up with artifact config hashes;
// anything else is hashed first.
func normKey(key string) string {
	if isHexDigest(key) {
		return key
	}
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// isHexDigest reports whether s is a lowercase 64-hex sha256 digest.
func isHexDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// readLink parses a key-link file; ok is false when the content is not a
// well-formed "sha256:<hex>" reference.
func (d *Disk) readLink(path string) (digest string, ok bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", false
	}
	s := strings.TrimSpace(string(b))
	if !strings.HasPrefix(s, blobPrefix) {
		return "", false
	}
	digest = strings.TrimPrefix(s, blobPrefix)
	return digest, isHexDigest(digest)
}

// Get returns the blob linked from key after re-verifying its content hash
// against its filename. Corruption — a dangling or malformed link, or blob
// bytes that no longer hash to the blob's name — evicts the offending
// entries and misses, so the caller recomputes instead of consuming a
// damaged artifact.
func (d *Disk) Get(key string) ([]byte, bool) {
	kpath := filepath.Join(d.keyDir(), normKey(key))
	digest, ok := d.readLink(kpath)
	if !ok {
		if _, err := os.Stat(kpath); err == nil {
			// The link exists but is malformed — evict it.
			d.mu.Lock()
			d.corrupt++
			d.mu.Unlock()
			os.Remove(kpath)
		}
		return nil, false
	}
	blob, err := os.ReadFile(filepath.Join(d.blobDir(), digest))
	if err != nil {
		os.Remove(kpath)
		return nil, false
	}
	sum := sha256.Sum256(blob)
	if hex.EncodeToString(sum[:]) != digest {
		d.mu.Lock()
		d.corrupt++
		delete(d.sizes, digest)
		delete(d.atimes, digest)
		d.mu.Unlock()
		os.Remove(filepath.Join(d.blobDir(), digest))
		os.Remove(kpath)
		return nil, false
	}
	d.mu.Lock()
	d.touchLocked(digest)
	d.mu.Unlock()
	return blob, true
}

// Put stores blob content-addressed and links key to it, then sweeps if
// over cap. Storing an already-present blob only adds the key link.
func (d *Disk) Put(key string, blob []byte) error {
	sum := sha256.Sum256(blob)
	digest := hex.EncodeToString(sum[:])

	d.mu.Lock()
	_, have := d.sizes[digest]
	d.mu.Unlock()
	if !have {
		if err := writeFileAtomic(filepath.Join(d.blobDir(), digest), blob); err != nil {
			return err
		}
	}
	if err := writeFileAtomic(filepath.Join(d.keyDir(), normKey(key)), []byte(blobPrefix+digest+"\n")); err != nil {
		return err
	}
	d.mu.Lock()
	d.sizes[digest] = int64(len(blob))
	d.touchLocked(digest)
	d.sweepLocked()
	d.mu.Unlock()
	return nil
}

// touchLocked stamps digest as most recently used and journals the access.
// The clock is logical (monotonic per process, seeded from the replayed
// journal) so recency ordering never depends on wall-clock sanity.
func (d *Disk) touchLocked(digest string) {
	d.clock++
	d.atimes[digest] = d.clock
	if d.logF != nil {
		fmt.Fprintf(d.logF, "%d %s\n", d.clock, digest)
		d.logN++
		if d.logN > compactLogFactor*(len(d.sizes)+1) {
			d.compactLocked()
		}
	}
}

// sweepLocked evicts least-recently-used blobs until resident bytes fit
// the cap, then prunes key links left dangling by the evictions.
func (d *Disk) sweepLocked() {
	var total int64
	for _, sz := range d.sizes {
		total += sz
	}
	if total <= d.cap {
		return
	}
	type ent struct {
		digest string
		atime  int64
	}
	order := make([]ent, 0, len(d.sizes))
	for digest := range d.sizes {
		order = append(order, ent{digest, d.atimes[digest]})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].atime != order[j].atime {
			return order[i].atime < order[j].atime
		}
		return order[i].digest < order[j].digest
	})
	dropped := map[string]bool{}
	for _, e := range order {
		if total <= d.cap {
			break
		}
		os.Remove(filepath.Join(d.blobDir(), e.digest))
		total -= d.sizes[e.digest]
		delete(d.sizes, e.digest)
		delete(d.atimes, e.digest)
		dropped[e.digest] = true
		d.evictions++
	}
	if len(dropped) == 0 {
		return
	}
	if kents, err := os.ReadDir(d.keyDir()); err == nil {
		for _, ke := range kents {
			path := filepath.Join(d.keyDir(), ke.Name())
			if digest, ok := d.readLink(path); ok && dropped[digest] {
				os.Remove(path)
			}
		}
	}
}

// compactLocked rewrites the journal as one record per live blob, bounding
// its size. Best-effort: on any failure the old journal stays in place.
func (d *Disk) compactLocked() {
	var buf strings.Builder
	for digest, at := range d.atimes {
		fmt.Fprintf(&buf, "%d %s\n", at, digest)
	}
	if err := writeFileAtomic(d.logPath(), []byte(buf.String())); err != nil {
		return
	}
	if d.logF != nil {
		d.logF.Close()
	}
	logF, err := os.OpenFile(d.logPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		d.logF = nil
		return
	}
	d.logF = logF
	d.logN = len(d.atimes)
}

// Stats returns live blob count, resident bytes, cap, and cumulative
// eviction/corruption counters.
func (d *Disk) Stats() (entries int, bytes, capBytes int64, evictions, corrupt uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, sz := range d.sizes {
		bytes += sz
	}
	return len(d.sizes), bytes, d.cap, d.evictions, d.corrupt
}

// Close compacts and releases the journal.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.compactLocked()
	if d.logF != nil {
		err := d.logF.Close()
		d.logF = nil
		return err
	}
	return nil
}

// writeFileAtomic writes path crash-safely: temp file in the same
// directory, write, fsync, rename over the target, fsync the directory so
// the rename itself is durable.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("rescache: create temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("rescache: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("rescache: sync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("rescache: close temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("rescache: rename into place: %w", err)
	}
	if df, err := os.Open(dir); err == nil {
		df.Sync()
		df.Close()
	}
	return nil
}
