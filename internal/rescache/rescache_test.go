package rescache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func hexKey(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func mustOpen(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestMemoryTierHit(t *testing.T) {
	c := mustOpen(t, Config{})
	key := hexKey("k1")
	blob := []byte("artifact-bytes")

	if _, _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(key, blob)
	got, tier, ok := c.Get(key)
	if !ok || tier != TierMemory {
		t.Fatalf("Get = (%v, %q), want memory hit", ok, tier)
	}
	if string(got) != string(blob) {
		t.Fatalf("blob mismatch: %q", got)
	}
	s := c.Snapshot()
	if s.MemHits != 1 || s.DiskHits != 0 || s.BytesServed != uint64(len(blob)) {
		t.Fatalf("snapshot %+v: want 1 mem hit, %d bytes served", s, len(blob))
	}
}

func TestMemoryLRUEviction(t *testing.T) {
	m := NewMemory(100)
	a, b, cKey := hexKey("a"), hexKey("b"), hexKey("c")
	m.Put(a, make([]byte, 40))
	m.Put(b, make([]byte, 40))
	m.Get(a) // refresh a: b is now coldest
	m.Put(cKey, make([]byte, 40))

	if _, ok := m.Get(b); ok {
		t.Fatal("coldest entry b survived eviction")
	}
	if _, ok := m.Get(a); !ok {
		t.Fatal("recently-used entry a was evicted")
	}
	if _, ok := m.Get(cKey); !ok {
		t.Fatal("newest entry c was evicted")
	}
	entries, bytes, capBytes, evictions := m.Stats()
	if entries != 2 || bytes != 80 || capBytes != 100 || evictions != 1 {
		t.Fatalf("stats = (%d, %d, %d, %d), want (2, 80, 100, 1)", entries, bytes, capBytes, evictions)
	}
}

func TestMemoryOversizedBlobNotCached(t *testing.T) {
	m := NewMemory(10)
	m.Put(hexKey("big"), make([]byte, 11))
	if entries, bytes, _, _ := statsEB(m); entries != 0 || bytes != 0 {
		t.Fatalf("oversized blob was cached: %d entries, %d bytes", entries, bytes)
	}
}

func statsEB(m *Memory) (int, int64, int64, uint64) { return m.Stats() }

func TestDiskRoundTripAndPersistence(t *testing.T) {
	dir := t.TempDir()
	key := hexKey("spec")
	blob := []byte(`{"metric": 1}` + "\n")

	c1 := mustOpen(t, Config{Dir: dir})
	c1.Put(key, blob)
	if err := c1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A fresh cache over the same dir serves the blob from disk.
	c2 := mustOpen(t, Config{Dir: dir})
	got, tier, ok := c2.Get(key)
	if !ok || tier != TierDisk {
		t.Fatalf("Get after reopen = (%v, %q), want disk hit", ok, tier)
	}
	if string(got) != string(blob) {
		t.Fatalf("blob mismatch after reopen: %q", got)
	}
	// The disk hit promoted the blob to memory.
	if _, tier, ok := c2.Get(key); !ok || tier != TierMemory {
		t.Fatalf("second Get = (%v, %q), want promoted memory hit", ok, tier)
	}
	sum := sha256.Sum256(blob)
	if _, err := os.Stat(filepath.Join(dir, "blobs", "sha256", hex.EncodeToString(sum[:]))); err != nil {
		t.Fatalf("blob not content-addressed on disk: %v", err)
	}
}

func TestDiskCorruptBlobEvicted(t *testing.T) {
	dir := t.TempDir()
	key := hexKey("victim")
	blob := []byte("precious artifact bytes")
	c := mustOpen(t, Config{Dir: dir, MemBytes: 1}) // tiny memory: force the disk path
	c.Put(key, blob)

	sum := sha256.Sum256(blob)
	blobPath := filepath.Join(dir, "blobs", "sha256", hex.EncodeToString(sum[:]))
	raw, err := os.ReadFile(blobPath)
	if err != nil {
		t.Fatalf("read blob: %v", err)
	}
	raw[0] ^= 0x01 // flip one bit
	if err := os.WriteFile(blobPath, raw, 0o644); err != nil {
		t.Fatalf("corrupt blob: %v", err)
	}

	if _, _, ok := c.Get(key); ok {
		t.Fatal("corrupted blob served as a hit")
	}
	if _, err := os.Stat(blobPath); !os.IsNotExist(err) {
		t.Fatalf("corrupt blob not evicted from disk: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "keys", "sha256", key)); !os.IsNotExist(err) {
		t.Fatalf("key link to corrupt blob not evicted: %v", err)
	}
	s := c.Snapshot()
	if s.DiskCorrupt != 1 {
		t.Fatalf("DiskCorrupt = %d, want 1", s.DiskCorrupt)
	}

	// The next Do recomputes and re-stores.
	got, cached, err := c.Do(context.Background(), key, func() ([]byte, error) { return blob, nil })
	if err != nil || cached {
		t.Fatalf("Do after corruption = (cached=%v, err=%v), want fresh compute", cached, err)
	}
	if string(got) != string(blob) {
		t.Fatalf("recomputed blob mismatch: %q", got)
	}
	if _, err := os.Stat(blobPath); err != nil {
		t.Fatalf("recomputed blob not re-stored: %v", err)
	}
}

func TestDiskCorruptKeyLinkEvicted(t *testing.T) {
	dir := t.TempDir()
	key := hexKey("linked")
	c := mustOpen(t, Config{Dir: dir, MemBytes: 1})
	c.Put(key, []byte("payload"))

	kpath := filepath.Join(dir, "keys", "sha256", key)
	if err := os.WriteFile(kpath, []byte("not a digest at all\n"), 0o644); err != nil {
		t.Fatalf("mangle key link: %v", err)
	}
	if _, _, ok := c.Get(key); ok {
		t.Fatal("malformed key link served as a hit")
	}
	if _, err := os.Stat(kpath); !os.IsNotExist(err) {
		t.Fatalf("malformed key link not removed: %v", err)
	}
	if s := c.Snapshot(); s.DiskCorrupt != 1 {
		t.Fatalf("DiskCorrupt = %d, want 1", s.DiskCorrupt)
	}
}

func TestDiskEvictionSweepLRU(t *testing.T) {
	dir := t.TempDir()
	// Cap fits two 100-byte blobs but not three.
	c := mustOpen(t, Config{Dir: dir, DiskBytes: 250, MemBytes: 1})
	keys := []string{hexKey("e1"), hexKey("e2"), hexKey("e3")}
	for i, k := range keys {
		c.Put(k, []byte(strings.Repeat(fmt.Sprint(i), 100)))
	}
	// e1 was touched least recently — it must be the one swept.
	if _, _, ok := c.Get(keys[0]); ok {
		t.Fatal("LRU blob survived the eviction sweep")
	}
	for _, k := range keys[1:] {
		if _, _, ok := c.Get(k); !ok {
			t.Fatalf("recently-written blob %s was evicted", k[:8])
		}
	}
	s := c.Snapshot()
	if s.DiskEvictions == 0 {
		t.Fatal("sweep ran but DiskEvictions is 0")
	}
	if s.DiskBytes > 250 {
		t.Fatalf("DiskBytes = %d, want <= cap 250", s.DiskBytes)
	}
}

func TestDiskRecencySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	keys := []string{hexKey("r1"), hexKey("r2"), hexKey("r3")}
	c1 := mustOpen(t, Config{Dir: dir, DiskBytes: 1 << 20, MemBytes: 1})
	for i, k := range keys {
		c1.Put(k, []byte(strings.Repeat(fmt.Sprint(i), 100)))
	}
	c1.Get(keys[0]) // r1 becomes hottest
	if err := c1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen with a cap that forces one eviction: the journal must have
	// preserved that r1 is hot, so r2 (the coldest) goes.
	c2 := mustOpen(t, Config{Dir: dir, DiskBytes: 250, MemBytes: 1})
	if _, _, ok := c2.Get(keys[1]); ok {
		t.Fatal("coldest blob r2 survived the reopen sweep")
	}
	if _, _, ok := c2.Get(keys[0]); !ok {
		t.Fatal("hottest blob r1 was evicted despite journaled recency")
	}
}

func TestFormatMismatchClearsCache(t *testing.T) {
	dir := t.TempDir()
	key := hexKey("old")
	c1, err := Open(Config{Dir: dir, Format: "format-v1"})
	if err != nil {
		t.Fatalf("Open v1: %v", err)
	}
	c1.Put(key, []byte("old-format artifact"))
	c1.Close()

	c2, err := Open(Config{Dir: dir, Format: "format-v2"})
	if err != nil {
		t.Fatalf("Open v2: %v", err)
	}
	defer c2.Close()
	if _, _, ok := c2.Get(key); ok {
		t.Fatal("artifact written under the old format tag survived")
	}
	if got, _ := os.ReadFile(filepath.Join(dir, "format")); strings.TrimSpace(string(got)) != "format-v2" {
		t.Fatalf("format file = %q, want format-v2", got)
	}
}

func TestRefusesForeignDirectory(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "precious.txt"), []byte("user data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("Open clobbered a non-empty directory with no format file")
	}
	if _, err := os.Stat(filepath.Join(dir, "precious.txt")); err != nil {
		t.Fatalf("foreign file damaged: %v", err)
	}
}

func TestDoSingleflight(t *testing.T) {
	c := mustOpen(t, Config{})
	key := hexKey("flight")
	var computes atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	results := make([][]byte, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			blob, _, err := c.Do(context.Background(), key, func() ([]byte, error) {
				if computes.Add(1) == 1 {
					close(started)
				}
				<-release
				return []byte("the one result"), nil
			})
			results[i], errs[i] = blob, err
		}(i)
	}
	<-started
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if string(results[i]) != "the one result" {
			t.Fatalf("waiter %d got %q", i, results[i])
		}
	}
	s := c.Snapshot()
	if s.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", s.Misses)
	}
	if got := s.Hits() + s.Dedups; got != waiters-1 {
		t.Fatalf("hits+dedups = %d, want %d", got, waiters-1)
	}
}

func TestDoLeaderCancelledFollowerTakesOver(t *testing.T) {
	c := mustOpen(t, Config{})
	key := hexKey("takeover")

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(leaderCtx, key, func() ([]byte, error) {
			close(leaderIn)
			<-leaderCtx.Done()
			return nil, leaderCtx.Err()
		})
		leaderDone <- err
	}()
	<-leaderIn

	followerDone := make(chan struct{})
	var fBlob []byte
	var fErr error
	go func() {
		defer close(followerDone)
		fBlob, _, fErr = c.Do(context.Background(), key, func() ([]byte, error) {
			return []byte("follower result"), nil
		})
	}()

	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	<-followerDone
	if fErr != nil {
		t.Fatalf("follower err = %v, want takeover success", fErr)
	}
	if string(fBlob) != "follower result" {
		t.Fatalf("follower blob = %q", fBlob)
	}
}

func TestDoComputeErrorPropagatesAndIsNotCached(t *testing.T) {
	c := mustOpen(t, Config{})
	key := hexKey("boom")
	wantErr := errors.New("simulation exploded")
	if _, _, err := c.Do(context.Background(), key, func() ([]byte, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("Do err = %v, want %v", err, wantErr)
	}
	if _, _, ok := c.Get(key); ok {
		t.Fatal("failed computation was cached")
	}
	// A later Do recomputes successfully.
	blob, cached, err := c.Do(context.Background(), key, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || cached || string(blob) != "ok" {
		t.Fatalf("retry Do = (%q, cached=%v, err=%v)", blob, cached, err)
	}
}

func TestDoLeaderPanicReleasesFollowers(t *testing.T) {
	c := mustOpen(t, Config{})
	key := hexKey("panic")

	leaderIn := make(chan struct{})
	go func() {
		defer func() { recover() }()
		c.Do(context.Background(), key, func() ([]byte, error) {
			close(leaderIn)
			panic("contained engine panic")
		})
	}()
	<-leaderIn

	// The follower must not hang: it either retries into leadership or
	// joins after cleanup; both end in success.
	blob, _, err := c.Do(context.Background(), key, func() ([]byte, error) {
		return []byte("recovered"), nil
	})
	if err != nil {
		t.Fatalf("follower after leader panic: %v", err)
	}
	if string(blob) != "recovered" {
		t.Fatalf("follower blob = %q", blob)
	}
}

func TestPutErrorsCountedNotFatal(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("running as root: chmod cannot make the dir unwritable")
	}
	dir := t.TempDir()
	c := mustOpen(t, Config{Dir: dir})
	// Make the key dir unwritable so the disk put fails.
	keyDir := filepath.Join(dir, "keys", "sha256")
	if err := os.Chmod(keyDir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(keyDir, 0o755)
	key := hexKey("unwritable")
	c.Put(key, []byte("still served from memory"))
	if _, tier, ok := c.Get(key); !ok || tier != TierMemory {
		t.Fatalf("memory tier lost the blob after a disk put failure (ok=%v tier=%q)", ok, tier)
	}
	if s := c.Snapshot(); s.PutErrors != 1 {
		t.Fatalf("PutErrors = %d, want 1", s.PutErrors)
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, Config{Dir: dir, MemBytes: 1})
	key := hexKey("hot")
	c.Put(key, []byte("blob"))
	// Far more accesses than compactLogFactor * blobs: the journal must
	// have been compacted along the way rather than growing unboundedly.
	for i := 0; i < 200; i++ {
		if _, _, ok := c.Get(key); !ok {
			t.Fatalf("lost blob at access %d", i)
		}
	}
	c.Close()
	raw, err := os.ReadFile(filepath.Join(dir, "atime.log"))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	if lines := strings.Count(string(raw), "\n"); lines > compactLogFactor*2 {
		t.Fatalf("journal holds %d records after Close, want compacted (<= %d)", lines, compactLogFactor*2)
	}
}

func TestNonHexKeysAreHashed(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, Config{Dir: dir, MemBytes: 1})
	key := "regress-check fig8 n=50000" // arbitrary string, not a digest
	c.Put(key, []byte("check result"))
	if blob, _, ok := c.Get(key); !ok || string(blob) != "check result" {
		t.Fatalf("round-trip through non-hex key failed (ok=%v)", ok)
	}
	// The on-disk key file is the sha256 of the key string.
	if _, err := os.Stat(filepath.Join(dir, "keys", "sha256", hexKey(key))); err != nil {
		t.Fatalf("key file not stored under hashed name: %v", err)
	}
}

func TestCrashedTempFilesSweptAtOpen(t *testing.T) {
	dir := t.TempDir()
	c1 := mustOpen(t, Config{Dir: dir})
	c1.Put(hexKey("x"), []byte("x"))
	c1.Close()
	// Simulate a crash mid-write: stray temp files in both dirs.
	for _, sub := range [][]string{{"blobs", "sha256"}, {"keys", "sha256"}} {
		p := filepath.Join(dir, sub[0], sub[1], "tmp-crashed")
		if err := os.WriteFile(p, []byte("torn write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c2 := mustOpen(t, Config{Dir: dir})
	defer c2.Close()
	for _, sub := range [][]string{{"blobs", "sha256"}, {"keys", "sha256"}} {
		if _, err := os.Stat(filepath.Join(dir, sub[0], sub[1], "tmp-crashed")); !os.IsNotExist(err) {
			t.Fatalf("crashed temp file in %s not swept: %v", sub[0], err)
		}
	}
}

func TestSharedBlobSurvivesSingleKeyEviction(t *testing.T) {
	// Two keys linking the same bytes share one blob; corrupting one key
	// link must not take the other key down.
	dir := t.TempDir()
	c := mustOpen(t, Config{Dir: dir, MemBytes: 1})
	blob := []byte("shared artifact")
	k1, k2 := hexKey("alias-1"), hexKey("alias-2")
	c.Put(k1, blob)
	c.Put(k2, blob)
	if s := c.Snapshot(); s.DiskEntries != 1 {
		t.Fatalf("DiskEntries = %d, want 1 (deduplicated blob)", s.DiskEntries)
	}
	if err := os.WriteFile(filepath.Join(dir, "keys", "sha256", k1), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(k1); ok {
		t.Fatal("garbage key link served")
	}
	if got, _, ok := c.Get(k2); !ok || string(got) != string(blob) {
		t.Fatal("sibling key lost the shared blob")
	}
}
