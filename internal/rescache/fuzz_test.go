package rescache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDisk drives the CAS with fuzzer-chosen keys and blobs, optionally
// smashing on-disk state between operations, and checks the invariants the
// server leans on: a stored blob reads back byte-identical or not at all
// (never silently wrong), corruption is detected by re-hash, and the tier
// keeps serving after arbitrary damage.
func FuzzDisk(f *testing.F) {
	f.Add([]byte("k"), []byte("blob one"), byte(0), false)
	f.Add([]byte("another key"), []byte(`{"schema":1}`+"\n"), byte(7), true)
	f.Add([]byte(""), []byte(""), byte(255), false)
	f.Add(bytes.Repeat([]byte{0xff}, 80), bytes.Repeat([]byte{0x00}, 300), byte(128), true)

	f.Fuzz(func(t *testing.T, keyRaw, blob []byte, flip byte, reopen bool) {
		dir := t.TempDir()
		d, err := OpenDisk(dir, 1<<16, "fuzz-format")
		if err != nil {
			t.Fatalf("OpenDisk: %v", err)
		}
		defer d.Close()
		key := string(keyRaw)

		if _, ok := d.Get(key); ok {
			t.Fatal("hit on an empty CAS")
		}
		if err := d.Put(key, blob); err != nil {
			t.Fatalf("Put: %v", err)
		}
		got, ok := d.Get(key)
		if !ok {
			t.Fatal("miss immediately after Put")
		}
		if !bytes.Equal(got, blob) {
			t.Fatalf("read back %d bytes, stored %d", len(got), len(blob))
		}

		if reopen {
			d.Close()
			if d, err = OpenDisk(dir, 1<<16, "fuzz-format"); err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer d.Close()
			if got, ok := d.Get(key); !ok || !bytes.Equal(got, blob) {
				t.Fatalf("blob lost or changed across reopen (ok=%v)", ok)
			}
		}

		// Corrupt the stored blob at a fuzzer-chosen position: the read path
		// must detect the damage (never serve wrong bytes) and keep working.
		if len(blob) > 0 {
			sum := sha256.Sum256(blob)
			blobPath := filepath.Join(dir, "blobs", "sha256", hex.EncodeToString(sum[:]))
			raw, err := os.ReadFile(blobPath)
			if err != nil {
				t.Fatalf("read blob file: %v", err)
			}
			raw[int(flip)%len(raw)] ^= 0x01
			if err := os.WriteFile(blobPath, raw, 0o644); err != nil {
				t.Fatalf("rewrite blob: %v", err)
			}
			if served, ok := d.Get(key); ok && !bytes.Equal(served, blob) {
				t.Fatalf("served corrupted bytes: %q", served)
			}
			// Re-put must restore service regardless of what eviction did.
			if err := d.Put(key, blob); err != nil {
				t.Fatalf("re-Put: %v", err)
			}
			if got, ok := d.Get(key); !ok || !bytes.Equal(got, blob) {
				t.Fatalf("CAS did not recover after corruption + re-put (ok=%v)", ok)
			}
		}
	})
}
