package rescache

import (
	"container/list"
	"sync"
)

// Memory is the hot tier: a byte-budgeted LRU of artifact blobs. Entries
// are whole []byte values keyed by spec digest; inserting past the budget
// evicts from the cold end until the new entry fits. A blob larger than
// the entire budget is simply not cached — it would evict everything and
// then be evicted itself on the next insert.
type Memory struct {
	mu        sync.Mutex
	cap       int64
	bytes     int64
	order     *list.List // front = most recently used; values are *memEntry
	index     map[string]*list.Element
	evictions uint64
}

type memEntry struct {
	key  string
	blob []byte
}

// NewMemory builds an LRU with the given byte budget (<= 0 disables the
// tier: every Get misses, every Put is dropped).
func NewMemory(capBytes int64) *Memory {
	return &Memory{
		cap:   capBytes,
		order: list.New(),
		index: map[string]*list.Element{},
	}
}

// Get returns the blob stored under key, refreshing its recency. Callers
// must not mutate the returned bytes.
func (m *Memory) Get(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.index[key]
	if !ok {
		return nil, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*memEntry).blob, true
}

// Put stores blob under key as the most recently used entry, evicting from
// the cold end to stay under budget. Re-putting a key refreshes its bytes
// and recency.
func (m *Memory) Put(key string, blob []byte) {
	if int64(len(blob)) > m.cap {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.index[key]; ok {
		ent := el.Value.(*memEntry)
		m.bytes += int64(len(blob)) - int64(len(ent.blob))
		ent.blob = blob
		m.order.MoveToFront(el)
	} else {
		m.index[key] = m.order.PushFront(&memEntry{key: key, blob: blob})
		m.bytes += int64(len(blob))
	}
	for m.bytes > m.cap {
		back := m.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*memEntry)
		m.order.Remove(back)
		delete(m.index, ent.key)
		m.bytes -= int64(len(ent.blob))
		m.evictions++
	}
}

// Remove drops key if present (used when a blob fails integrity checks
// downstream and must not be re-served).
func (m *Memory) Remove(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.index[key]; ok {
		ent := el.Value.(*memEntry)
		m.order.Remove(el)
		delete(m.index, key)
		m.bytes -= int64(len(ent.blob))
	}
}

// Stats returns entry count, resident bytes, byte budget, and cumulative
// evictions.
func (m *Memory) Stats() (entries int, bytes, capBytes int64, evictions uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len(), m.bytes, m.cap, m.evictions
}
