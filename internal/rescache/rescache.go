// Package rescache is the content-addressed result cache: a two-tier
// memoization layer that lets the service stack (and the regression/sweep
// CLIs) skip re-running a simulation whose artifact it has already
// computed. The determinism contract makes this sound — a job's canonical
// artifact is a pure function of its normalized spec, so the sha256 of the
// artifact's config map (internal/report's config hash, with execution
// knobs excluded and the trace digest folded in for uploads) is a perfect
// cache key.
//
// Tier one is an in-memory LRU of hot artifact bytes under a configurable
// byte budget (Memory). Tier two is a crash-safe disk CAS (Disk): blobs
// live at blobs/sha256/<digest-of-bytes>, key links at keys/sha256/<key>
// point at blob digests, every read re-hashes the blob and evicts
// corruption, and a size-capped eviction sweep drops the least-recently
// used blobs by atime journal. Cache ties the tiers together behind one
// Get/Put/Do surface, with singleflight deduplication in Do so N
// concurrent identical computations run once.
//
// Accounting contract (what /metrics renders): Get counts hits only —
// every artifact served from a tier, with its bytes. Do classifies the
// rest exactly once per call: a leader that actually computes counts a
// miss; a follower that rides an in-flight identical computation counts a
// dedup. One submission therefore increments exactly one of
// hits/misses/dedups.
package rescache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cache8t/internal/report"
)

// Tier names the cache level that served a hit.
type Tier string

// Cache tiers.
const (
	TierMemory Tier = "memory"
	TierDisk   Tier = "disk"
)

// ArtifactFormat is the disk-layout format tag for caches holding
// schema-versioned canonical artifacts (and blobs derived from them). It
// folds in report.SchemaVersion, so a schema bump invalidates — clears —
// any CAS directory written by an older build instead of serving artifacts
// the new build could not have produced.
func ArtifactFormat() string {
	return fmt.Sprintf("cache8t-rescache-1-artifact-schema-%d", report.SchemaVersion)
}

// Config tunes a Cache. The zero value is a memory-only cache with a
// 64 MiB budget.
type Config struct {
	// Dir roots the disk CAS ("" = no disk tier).
	Dir string
	// MemBytes budgets the in-memory LRU (<= 0: 64 MiB).
	MemBytes int64
	// DiskBytes caps the disk CAS (<= 0: 1 GiB). Exceeding it triggers an
	// LRU eviction sweep by atime journal.
	DiskBytes int64
	// Format tags the disk layout ("" = ArtifactFormat()). Opening a CAS
	// directory written under a different format clears it — cached data is
	// derived and safe to drop, stale formats are not safe to serve.
	Format string
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.MemBytes <= 0 {
		c.MemBytes = 64 << 20
	}
	if c.DiskBytes <= 0 {
		c.DiskBytes = 1 << 30
	}
	if c.Format == "" {
		c.Format = ArtifactFormat()
	}
	return c
}

// Cache is the two-tier result cache: an in-memory LRU in front of an
// optional disk CAS, plus singleflight deduplication for in-flight
// computations. All methods are safe for concurrent use.
type Cache struct {
	mem  *Memory
	disk *Disk
	dir  string

	mu    sync.Mutex
	calls map[string]*call

	memHits     atomic.Uint64
	diskHits    atomic.Uint64
	misses      atomic.Uint64
	dedups      atomic.Uint64
	bytesServed atomic.Uint64
	putErrors   atomic.Uint64
}

// call is one in-flight computation other callers can wait on.
type call struct {
	done chan struct{}
	blob []byte
	err  error
}

// errAborted marks a computation that ended without assigning a result —
// the leader panicked out of compute. Followers treat it like a cancelled
// leader and retry.
var errAborted = errors.New("rescache: in-flight computation aborted")

// Open builds a Cache from cfg, initializing (or re-attaching to) the disk
// CAS when cfg.Dir is set.
func Open(cfg Config) (*Cache, error) {
	cfg = cfg.withDefaults()
	c := &Cache{
		mem:   NewMemory(cfg.MemBytes),
		dir:   cfg.Dir,
		calls: map[string]*call{},
	}
	if cfg.Dir != "" {
		d, err := OpenDisk(cfg.Dir, cfg.DiskBytes, cfg.Format)
		if err != nil {
			return nil, err
		}
		c.disk = d
	}
	return c, nil
}

// HasDisk reports whether the cache has a persistent disk tier — the
// property sramd's job journal requires, since specs and checkpoints must
// survive a process kill.
func (c *Cache) HasDisk() bool { return c.disk != nil }

// Get returns the blob stored under key and the tier that served it. Disk
// hits are promoted into the memory tier. Callers must not mutate the
// returned bytes. Only hits are counted; Do accounts for misses.
func (c *Cache) Get(key string) ([]byte, Tier, bool) {
	if blob, ok := c.mem.Get(key); ok {
		c.memHits.Add(1)
		c.bytesServed.Add(uint64(len(blob)))
		return blob, TierMemory, true
	}
	if c.disk != nil {
		if blob, ok := c.disk.Get(key); ok {
			c.mem.Put(key, blob)
			c.diskHits.Add(1)
			c.bytesServed.Add(uint64(len(blob)))
			return blob, TierDisk, true
		}
	}
	return nil, "", false
}

// Put stores blob under key in both tiers. Disk write failures are counted
// (Snapshot.PutErrors) but not returned: a cache that cannot persist still
// serves from memory, and the caller's result is already in hand.
func (c *Cache) Put(key string, blob []byte) {
	c.mem.Put(key, blob)
	if c.disk != nil {
		if err := c.disk.Put(key, blob); err != nil {
			c.putErrors.Add(1)
		}
	}
}

// Do returns the blob for key, computing it at most once across concurrent
// callers: a tier hit returns immediately (cached true); an in-flight
// identical computation is joined and its result shared (cached true); and
// otherwise this caller is the leader — it runs compute, stores the result
// in both tiers, and returns it (cached false).
//
// compute runs under the leader's own lifetime: if a leader is cancelled
// (its compute returns the leader's context error) or panics out, waiting
// followers retry — re-checking the tiers and electing a new leader — so
// one cancelled client never fails an identical concurrent job. A leader's
// genuine computation error propagates to every waiter. ctx bounds only
// this caller's wait, never another caller's computation.
func (c *Cache) Do(ctx context.Context, key string, compute func() ([]byte, error)) (blob []byte, cached bool, err error) {
	for {
		if blob, _, ok := c.Get(key); ok {
			return blob, true, nil
		}
		c.mu.Lock()
		if cl, ok := c.calls[key]; ok {
			c.mu.Unlock()
			select {
			case <-cl.done:
				if cl.err == nil {
					c.dedups.Add(1)
					c.bytesServed.Add(uint64(len(cl.blob)))
					return cl.blob, true, nil
				}
				if ctx.Err() != nil {
					return nil, false, ctx.Err()
				}
				if errors.Is(cl.err, context.Canceled) || errors.Is(cl.err, errAborted) {
					continue // the leader died, not the computation; take over
				}
				return nil, false, cl.err
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		cl := &call{done: make(chan struct{}), err: errAborted}
		c.calls[key] = cl
		c.mu.Unlock()

		c.misses.Add(1)
		func() {
			// The deferred cleanup runs even when compute panics (cl.err then
			// keeps errAborted), so waiters are always released and a
			// contained panic never wedges the key.
			defer func() {
				c.mu.Lock()
				delete(c.calls, key)
				c.mu.Unlock()
				close(cl.done)
			}()
			cl.blob, cl.err = compute()
		}()
		if cl.err != nil {
			return nil, false, cl.err
		}
		c.Put(key, cl.blob)
		return cl.blob, false, nil
	}
}

// Snapshot is a point-in-time view of the cache's counters and per-tier
// occupancy, rendered by the daemon's /metrics.
type Snapshot struct {
	// MemHits/DiskHits count artifacts served from a tier; Misses counts
	// leader computations; Dedups counts followers that shared an in-flight
	// computation. BytesServed sums the bytes of every hit and dedup.
	MemHits     uint64
	DiskHits    uint64
	Misses      uint64
	Dedups      uint64
	BytesServed uint64
	// PutErrors counts disk-tier writes that failed (memory still served).
	PutErrors uint64

	// Per-tier occupancy and churn.
	MemEntries   int
	MemBytes     int64
	MemCapBytes  int64
	MemEvictions uint64
	DiskEntries  int
	DiskBytes    int64
	DiskCapBytes int64
	// DiskEvictions counts blobs dropped by the size-cap sweep;
	// DiskCorrupt counts blobs or key links rejected by integrity checks.
	DiskEvictions uint64
	DiskCorrupt   uint64

	// Dir is the CAS root ("" when the disk tier is off).
	Dir string
}

// Hits sums the per-tier hit counters.
func (s Snapshot) Hits() uint64 { return s.MemHits + s.DiskHits }

// Snapshot captures the current counters and occupancy.
func (c *Cache) Snapshot() Snapshot {
	s := Snapshot{
		MemHits:     c.memHits.Load(),
		DiskHits:    c.diskHits.Load(),
		Misses:      c.misses.Load(),
		Dedups:      c.dedups.Load(),
		BytesServed: c.bytesServed.Load(),
		PutErrors:   c.putErrors.Load(),
		Dir:         c.dir,
	}
	s.MemEntries, s.MemBytes, s.MemCapBytes, s.MemEvictions = c.mem.Stats()
	if c.disk != nil {
		s.DiskEntries, s.DiskBytes, s.DiskCapBytes, s.DiskEvictions, s.DiskCorrupt = c.disk.Stats()
	}
	return s
}

// Close releases the disk tier's journal handle. The memory tier needs no
// teardown. Safe on a memory-only cache.
func (c *Cache) Close() error {
	if c.disk != nil {
		return c.disk.Close()
	}
	return nil
}
