package sram

import (
	"strings"
	"testing"
)

func TestCellBasics(t *testing.T) {
	if SixT.Transistors() != 6 || EightT.Transistors() != 8 {
		t.Fatal("transistor counts wrong")
	}
	if SixT.String() != "6T" || EightT.String() != "8T" {
		t.Fatal("cell names wrong")
	}
	if !strings.HasPrefix(CellKind(5).String(), "CellKind") {
		t.Fatal("unknown cell name")
	}
	if SixT.ReadPorts() != 0 || EightT.ReadPorts() != 1 {
		t.Fatal("port counts wrong")
	}
}

func TestVminOrdering(t *testing.T) {
	// The entire point of 8T: it operates far below the 6T floor.
	if EightT.VminVolts() >= SixT.VminVolts() {
		t.Fatalf("8T Vmin %.2f not below 6T Vmin %.2f", EightT.VminVolts(), SixT.VminVolts())
	}
}

func TestCellAreaTrend(t *testing.T) {
	// 8T pays an area premium at 65 nm but is "more compact in technology
	// nodes beyond 45nm" (§2, citing Morita et al.).
	r65, err := AreaRatio(65)
	if err != nil {
		t.Fatal(err)
	}
	r22, err := AreaRatio(22)
	if err != nil {
		t.Fatal(err)
	}
	if r65 <= 1.0 {
		t.Errorf("65nm ratio %.3f should show an 8T premium", r65)
	}
	if r22 >= 1.0 {
		t.Errorf("22nm ratio %.3f should show 8T more compact", r22)
	}
	if r22 >= r65 {
		t.Errorf("ratio should shrink with scaling: 65nm %.3f, 22nm %.3f", r65, r22)
	}
}

func TestCellAreaUnknownNode(t *testing.T) {
	if _, err := SixT.AreaUm2(90); err == nil {
		t.Fatal("90nm accepted")
	}
	if _, err := AreaRatio(14); err == nil {
		t.Fatal("14nm accepted")
	}
}

func baseConfig() ArrayConfig {
	// 64 KB cache as one logical mat: 512 rows (sets) x 1024 bits
	// (4 ways x 32 B), 4-way bit interleaving, 4 subarrays.
	return ArrayConfig{Cell: EightT, Rows: 512, Cols: 1024, Interleave: 4, Subarrays: 4}
}

func TestArrayConfigValidate(t *testing.T) {
	if err := baseConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ArrayConfig{
		{Cell: EightT, Rows: 0, Cols: 8, Interleave: 1, Subarrays: 1},
		{Cell: EightT, Rows: 8, Cols: 0, Interleave: 1, Subarrays: 1},
		{Cell: EightT, Rows: 8, Cols: 8, Interleave: 0, Subarrays: 1},
		{Cell: EightT, Rows: 8, Cols: 8, Interleave: 1, Subarrays: 0},
		{Cell: EightT, Rows: 8, Cols: 9, Interleave: 2, Subarrays: 1},
		{Cell: EightT, Rows: 9, Cols: 8, Interleave: 1, Subarrays: 2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestNeedsRMW(t *testing.T) {
	cfg := baseConfig()
	if !cfg.NeedsRMW() {
		t.Fatal("interleaved 8T array should need RMW")
	}
	cfg.Cell = SixT
	if cfg.NeedsRMW() {
		t.Fatal("6T array should not need RMW")
	}
	cfg.Cell = EightT
	cfg.Interleave = 1
	if cfg.NeedsRMW() {
		t.Fatal("non-interleaved 8T (Chang word-granularity) should not need RMW")
	}
}

func TestReadAccessEventSequence(t *testing.T) {
	a, err := NewArray(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	a.ReadAccess()
	for _, e := range []Event{EvPrecharge, EvRowRead, EvSense, EvOutputMux} {
		if a.Count(e) != 1 {
			t.Errorf("read access: %v count = %d", e, a.Count(e))
		}
	}
	if a.Count(EvRowWrite) != 0 {
		t.Error("read access fired a row write")
	}
	if a.ArrayAccesses() != 1 {
		t.Errorf("ArrayAccesses = %d", a.ArrayAccesses())
	}
}

func TestRMWEventSequence(t *testing.T) {
	a, _ := NewArray(baseConfig())
	a.RMW()
	// The read phase must NOT route data out (§2: "multiplexers do not
	// route data to the output").
	if a.Count(EvOutputMux) != 0 {
		t.Error("RMW read phase fired the output mux")
	}
	for _, e := range []Event{EvPrecharge, EvRowRead, EvSense, EvWritebackMux, EvWriteDrive, EvRowWrite} {
		if a.Count(e) != 1 {
			t.Errorf("RMW: %v count = %d", e, a.Count(e))
		}
	}
	// RMW is 2 array accesses — the paper's cost model for a write.
	if a.ArrayAccesses() != 2 {
		t.Errorf("RMW ArrayAccesses = %d, want 2", a.ArrayAccesses())
	}
	if a.ReadPortBusy() != 1 || a.WritePortBusy() != 1 {
		t.Error("RMW should occupy both ports")
	}
}

func TestDirectWriteIsOneAccess(t *testing.T) {
	a, _ := NewArray(baseConfig())
	a.DirectWrite()
	if a.ArrayAccesses() != 1 {
		t.Errorf("DirectWrite ArrayAccesses = %d, want 1", a.ArrayAccesses())
	}
	if a.ReadPortBusy() != 0 {
		t.Error("DirectWrite occupied the read port")
	}
}

func TestArrayResetAndRecord(t *testing.T) {
	a, _ := NewArray(baseConfig())
	a.Record(EvTagCompare, 10)
	if a.Count(EvTagCompare) != 10 {
		t.Fatal("Record/Count mismatch")
	}
	a.Reset()
	for _, e := range Events() {
		if a.Count(e) != 0 {
			t.Fatalf("Reset left %v = %d", e, a.Count(e))
		}
	}
}

func TestEventStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Events() {
		s := e.String()
		if s == "" || strings.HasPrefix(s, "Event(") {
			t.Errorf("event %d has no name", e)
		}
		if seen[s] {
			t.Errorf("duplicate event name %q", s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(Event(200).String(), "Event(") {
		t.Error("out-of-range event name")
	}
}

func TestNewArrayRejectsInvalid(t *testing.T) {
	if _, err := NewArray(ArrayConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}
