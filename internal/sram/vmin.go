package sram

import (
	"fmt"
	"math"
)

// Statistical Vmin model: why the array's minimum voltage rises with
// capacity, and why 8T's margin matters more the bigger the cache.
//
// Each cell has a random intrinsic failure voltage (process variation,
// dominated by threshold mismatch), modeled as a Gaussian with a
// cell-dependent mean and sigma. An array of N bits works at voltage V only
// if *every* cell's failure voltage is below V, so the array Vmin is an
// extreme-value statistic: it grows with log N. This is the quantitative
// backbone of §1's "the cache is likely the bottleneck in deciding Vmin" —
// caches have the most bits, so they see the deepest tail.

// VminModel parameterizes the per-cell failure-voltage distribution.
type VminModel struct {
	// MeanVolts is the median cell failure voltage.
	MeanVolts float64
	// SigmaVolts is the cell-to-cell standard deviation.
	SigmaVolts float64
}

// DefaultVminModel returns representative 45 nm-class distributions. The 6T
// numbers reflect read-stability limits; the 8T cell decouples read from
// hold and both its mean and spread improve (Chang et al., Verma &
// Chandrakasan). Calibrated so that a 64 KB array lands near the headline
// Vmin figures (≈0.7 V for 6T, ≈0.35 V for 8T).
func DefaultVminModel(cell CellKind) VminModel {
	if cell == EightT {
		return VminModel{MeanVolts: 0.22, SigmaVolts: 0.022}
	}
	return VminModel{MeanVolts: 0.50, SigmaVolts: 0.034}
}

// CellFailProb returns the probability one cell fails at voltage v: the
// Gaussian upper tail of its failure voltage.
func (m VminModel) CellFailProb(v float64) float64 {
	if m.SigmaVolts <= 0 {
		if v >= m.MeanVolts {
			return 0
		}
		return 1
	}
	z := (v - m.MeanVolts) / m.SigmaVolts
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// ArrayYield returns the probability that an array of bits cells has no
// failing cell at voltage v.
func (m VminModel) ArrayYield(v float64, bits int) float64 {
	if bits <= 0 {
		return 1
	}
	p := m.CellFailProb(v)
	// log-domain for numerical stability at tiny p and huge N.
	return math.Exp(float64(bits) * math.Log1p(-p))
}

// ArrayVmin solves for the lowest voltage at which the array meets the
// target yield (e.g. 0.99), by bisection over a generous voltage range.
func (m VminModel) ArrayVmin(bits int, targetYield float64) (float64, error) {
	if bits <= 0 {
		return 0, fmt.Errorf("sram: non-positive bit count %d", bits)
	}
	if targetYield <= 0 || targetYield >= 1 {
		return 0, fmt.Errorf("sram: target yield %v out of (0,1)", targetYield)
	}
	lo, hi := m.MeanVolts, m.MeanVolts+20*m.SigmaVolts
	if m.ArrayYield(hi, bits) < targetYield {
		return 0, fmt.Errorf("sram: yield %v unreachable even at %.2f V", targetYield, hi)
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if m.ArrayYield(mid, bits) >= targetYield {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// CacheVmin returns the statistical Vmin of a cache of the given byte
// capacity built from cell, at 99% array yield.
func CacheVmin(cell CellKind, capacityBytes int) (float64, error) {
	m := DefaultVminModel(cell)
	return m.ArrayVmin(capacityBytes*8, 0.99)
}
