package sram

import "fmt"

// EnergyModel prices array events in joules from a capacitance-based
// analytical model in the spirit of CACTI: per-event switched capacitance is
// derived from array geometry, and dynamic energy is C * Vdd^2 (full-swing
// nets) or C * Vdd * Vswing (limited-swing bit lines).
//
// Absolute joules are calibration-grade, not sign-off-grade; what the
// reproduction relies on is that relative costs are right — a row operation
// is two to three orders of magnitude more expensive than a Set-Buffer latch
// access, and RMW pays the read-phase bill on every write.
type EnergyModel struct {
	cfg ArrayConfig

	// VddVolts is the supply voltage.
	VddVolts float64
	// SwingVolts is the read bit-line swing (sense amps fire well before a
	// full-rail discharge).
	SwingVolts float64

	// Per-unit capacitances, farads. Defaults are representative of a 45 nm
	// process (wire ~0.2 fF/um, cell pitch ~1 um, transistor caps ~0.1 fF).
	CBitlinePerCell  float64 // drain + wire capacitance per cell on a bit line
	CWordlinePerCell float64 // gate + wire capacitance per cell on a word line
	CLatchPerBit     float64 // write-back latch / Set-Buffer storage per bit
	CDriverPerBit    float64 // write driver output per bit
	CComparePerBit   float64 // XOR-tree comparator input per bit

	// LeakagePerCellWatts is static power per bit cell at VddVolts.
	LeakagePerCellWatts float64
}

// NewEnergyModel returns an energy model for cfg at vdd with 45 nm-class
// default capacitances. The 6T and 8T cells share the baseline figures (the
// 8T read stack's extra drain cap is inside the 0.30 fF/cell budget); the 9T
// cell's leakage-cut transistor loads the read bit line a further ~10% but
// roughly halves per-cell static power — the trade arXiv:1812.10011 reports.
func NewEnergyModel(cfg ArrayConfig, vdd float64) (*EnergyModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if vdd <= 0 {
		return nil, fmt.Errorf("sram: non-positive Vdd %v", vdd)
	}
	const fF = 1e-15
	m := &EnergyModel{
		cfg:              cfg,
		VddVolts:         vdd,
		SwingVolts:       0.2 * vdd,
		CBitlinePerCell:  0.30 * fF,
		CWordlinePerCell: 0.25 * fF,
		CLatchPerBit:     0.50 * fF,
		CDriverPerBit:    0.80 * fF,
		CComparePerBit:   0.40 * fF,
		// ~10 pW/cell at nominal voltage, a 45 nm-class HVT figure.
		LeakagePerCellWatts: 10e-12,
	}
	if cfg.Cell == NineT {
		m.CBitlinePerCell *= 1.10
		m.LeakagePerCellWatts *= 0.55
	}
	return m, nil
}

// rowsPerBank returns the bit-line length in cells: arrays are broken into
// sub-arrays precisely to cap this (§2).
func (m *EnergyModel) rowsPerBank() float64 {
	return float64(m.cfg.Rows) / float64(m.cfg.Subarrays)
}

// EventEnergy returns the dynamic energy of one occurrence of e, in joules.
func (m *EnergyModel) EventEnergy(e Event) float64 {
	v := m.VddVolts
	cols := float64(m.cfg.Cols)
	selCols := cols / float64(m.cfg.Interleave)
	switch e {
	case EvPrecharge:
		// All RBLs pulled back to Vdd through the swing they lost.
		return cols * m.CBitlinePerCell * m.rowsPerBank() * v * m.SwingVolts
	case EvRowRead:
		// RWL swings full rail across the row; on average half the cells
		// discharge their RBL by the sense swing.
		wl := cols * m.CWordlinePerCell * v * v
		bl := 0.5 * cols * m.CBitlinePerCell * m.rowsPerBank() * v * m.SwingVolts
		return wl + bl
	case EvSense:
		return cols * m.CLatchPerBit * v * v
	case EvOutputMux:
		return selCols * m.CDriverPerBit * v * v
	case EvWritebackMux:
		return cols * m.CDriverPerBit * v * v
	case EvWriteDrive:
		// WBL/WBLB are full-swing differential pairs.
		return 2 * cols * m.CBitlinePerCell * m.rowsPerBank() * v * v * 0.5
	case EvRowWrite:
		wl := cols * m.CWordlinePerCell * v * v
		// On average half the cells flip state.
		flip := 0.5 * cols * m.CLatchPerBit * v * v
		return wl + flip
	case EvSetBufRead:
		return selCols * m.CLatchPerBit * v * v
	case EvSetBufWrite:
		return selCols * (m.CLatchPerBit + m.CDriverPerBit) * v * v
	case EvTagCompare:
		// Comparator sized for one tag (~34 bits baseline); charge cols-
		// independent, use a fixed 64-bit budget.
		return 64 * m.CComparePerBit * v * v
	case EvSilentCompare:
		return selCols * m.CComparePerBit * v * v
	default:
		return 0
	}
}

// DynamicEnergy returns the total dynamic energy of every event recorded in a.
func (m *EnergyModel) DynamicEnergy(a *Array) float64 {
	var total float64
	for _, e := range Events() {
		if n := a.Count(e); n > 0 {
			total += float64(n) * m.EventEnergy(e)
		}
	}
	return total
}

// LeakagePower returns static power of the whole array at the model voltage,
// in watts. Sub-threshold leakage scales super-linearly with voltage; a
// quadratic voltage dependence is a standard compact approximation over the
// DVFS range.
func (m *EnergyModel) LeakagePower() float64 {
	ratio := m.VddVolts / 1.0
	return float64(m.cfg.Bits()) * m.LeakagePerCellWatts * ratio * ratio
}

// ReadEnergy returns the dynamic energy of one full read access.
func (m *EnergyModel) ReadEnergy() float64 {
	return m.EventEnergy(EvPrecharge) + m.EventEnergy(EvRowRead) +
		m.EventEnergy(EvSense) + m.EventEnergy(EvOutputMux)
}

// RMWEnergy returns the dynamic energy of one read-modify-write.
func (m *EnergyModel) RMWEnergy() float64 {
	return m.EventEnergy(EvPrecharge) + m.EventEnergy(EvRowRead) +
		m.EventEnergy(EvSense) + m.EventEnergy(EvWritebackMux) +
		m.EventEnergy(EvWriteDrive) + m.EventEnergy(EvRowWrite)
}

// SetBufferEnergy returns the dynamic energy of one Set-Buffer access (the
// thing WG+RB substitutes for array reads; "a smaller and hence more power
// efficient structure", §5.5).
func (m *EnergyModel) SetBufferEnergy() float64 {
	return m.EventEnergy(EvSetBufRead)
}

// AtVoltage returns a copy of the model rescaled to a new supply voltage.
func (m *EnergyModel) AtVoltage(vdd float64) (*EnergyModel, error) {
	if vdd <= 0 {
		return nil, fmt.Errorf("sram: non-positive Vdd %v", vdd)
	}
	out := *m
	out.VddVolts = vdd
	out.SwingVolts = 0.2 * vdd
	return &out, nil
}
